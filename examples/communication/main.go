// Communication study (the paper's Figure 10 in miniature): train SiloFuse
// and the end-to-end distributed baseline on the same vertically
// partitioned data and compare measured transport traffic as the iteration
// budget grows. Stacked training's cost is a single latent upload per
// client — flat in iterations — while split learning pays four tensor
// transfers per client per iteration.
//
//	go run ./examples/communication
package main

import (
	"fmt"
	"log"

	"silofuse"
)

func main() {
	spec, err := silofuse.DatasetByName("abalone")
	if err != nil {
		log.Fatal(err)
	}
	train := spec.Generate(1000, 1)
	fmt.Printf("dataset %s: %d rows, %d features, 4 clients\n\n",
		spec.Name, train.Rows(), train.Schema.NumColumns())

	fmt.Printf("%12s %16s %16s\n", "iterations", "SiloFuse bytes", "E2EDistr bytes")
	for _, iters := range []int{50, 200, 800} {
		sfBytes := trainAndMeasure(train, iters, false)
		e2eBytes := trainAndMeasure(train, iters, true)
		fmt.Printf("%12d %16d %16d\n", iters, sfBytes, e2eBytes)
	}
	fmt.Println("\nSiloFuse traffic is identical at every scale: the latents cross the")
	fmt.Println("wire exactly once, so communication is O(1) in the iteration count,")
	fmt.Println("while end-to-end training is O(#iterations) (paper Figure 10).")
}

func trainAndMeasure(train *silofuse.Table, iters int, endToEnd bool) int64 {
	opts := silofuse.FastOptions()
	opts.Clients = 4
	opts.Batch = 64
	opts.AEIters = iters
	opts.DiffIters = 0
	if !endToEnd {
		// Stacked training splits the budget between the two phases.
		opts.AEIters = iters / 2
		opts.DiffIters = iters - iters/2
	}
	var model interface {
		Fit(*silofuse.Table) error
		CommStats() silofuse.TransportStats
	}
	if endToEnd {
		model = silofuse.NewE2EDistr(opts)
	} else {
		model = silofuse.NewSiloFuse(opts)
	}
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	return model.CommStats().Bytes
}
