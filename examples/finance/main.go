// Finance cross-silo scenario (the paper's Example II.2): Company A holds
// personal attributes, Company B holds financial behaviour for the same
// customers. They synthesise jointly with SiloFuse and then *share* the
// synthetic features post-generation — the convenient but riskier mode —
// and this example audits exactly the risk the paper quantifies in Table
// VI, comparing against a deliberately leaky baseline that memorises the
// training data.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silofuse"
)

func main() {
	schema := silofuse.MustSchema([]silofuse.Column{
		// Company A: personal attributes.
		{Name: "age_bracket", Kind: silofuse.Categorical, Cardinality: 6},
		{Name: "region", Kind: silofuse.Categorical, Cardinality: 8},
		{Name: "household_size", Kind: silofuse.Numeric},
		// Company B: financial behaviour.
		{Name: "income", Kind: silofuse.Numeric},
		{Name: "monthly_spend", Kind: silofuse.Numeric},
		{Name: "credit_utilisation", Kind: silofuse.Numeric},
		{Name: "defaulted", Kind: silofuse.Categorical, Cardinality: 2},
	})
	customers := generateCustomers(schema, 1200, 5)
	fmt.Printf("customer cohort: %d rows; Company A holds 3 features, Company B holds 4\n", customers.Rows())

	// Train SiloFuse across the two companies and synthesise in shared mode.
	opts := silofuse.FastOptions()
	opts.Clients = 2
	opts.Seed = 3
	model := silofuse.NewSiloFuse(opts)
	if err := model.Fit(customers); err != nil {
		log.Fatal(err)
	}
	synth, err := model.Sample(1200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic data generated and shared between companies (%d rows)\n", synth.Rows())

	// Audit the shared synthetic data with the paper's three attacks.
	cfg := silofuse.DefaultPrivacyConfig()
	rep, err := silofuse.EvaluatePrivacy(customers, synth, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprivacy audit of the shared synthetic data (higher = safer):")
	fmt.Printf("  singling-out resistance:        %.1f/100\n", rep.SinglingOut)
	fmt.Printf("  linkability resistance:         %.1f/100\n", rep.Linkability)
	fmt.Printf("  attribute-inference resistance: %.1f/100\n", rep.AttributeInference)
	fmt.Printf("  composite privacy score:        %.1f/100\n", rep.Score)

	// Contrast with a worst case: "synthetic" data that memorises the
	// training rows (tiny jitter). The attacks must flag it as far riskier.
	leaky := jitter(customers, 1e-4, 9)
	leakRep, err := silofuse.EvaluatePrivacy(customers, leaky, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame audit against a memorising generator (worst case):")
	fmt.Printf("  singling-out %.1f, linkability %.1f, inference %.1f → composite %.1f/100\n",
		leakRep.SinglingOut, leakRep.Linkability, leakRep.AttributeInference, leakRep.Score)
	if leakRep.Score < rep.Score {
		fmt.Println("\nSiloFuse's synthetic data is measurably safer than memorised data,")
		fmt.Println("matching the paper's finding that generation — not copying — is what")
		fmt.Println("makes post-generation sharing defensible.")
	}

	// Utility check: Company B can still model default risk from the shared
	// synthetic data.
	test := generateCustomers(schema, 600, 77)
	util, err := silofuse.Utility(customers, synth, test, silofuse.DefaultUtilityConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndownstream utility of the shared synthetic data: %.1f/100\n", util.Score)
}

// generateCustomers plants dependencies between the two companies' features
// through a latent affluence factor.
func generateCustomers(schema *silofuse.Schema, n int, seed int64) *silofuse.Table {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, 0, n*schema.NumColumns())
	for i := 0; i < n; i++ {
		affluence := rng.NormFloat64()
		age := clampInt(int(3+1.2*affluence+rng.NormFloat64()), 0, 5)
		region := clampInt(int(4+2*affluence+2*rng.NormFloat64()), 0, 7)
		household := 2.5 - 0.4*affluence + 0.7*rng.NormFloat64()
		income := 50000 + 22000*affluence + 5000*rng.NormFloat64()
		spend := 2000 + 900*affluence + 250*rng.NormFloat64()
		util := 0.45 - 0.12*affluence + 0.08*rng.NormFloat64()
		def := 0.0
		if -affluence+0.6*rng.NormFloat64() > 1.1 {
			def = 1
		}
		data = append(data, float64(age), float64(region), household, income, spend, util, def)
	}
	t, err := silofuse.NewTable(schema, silofuse.MatrixFromSlice(n, schema.NumColumns(), data))
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// jitter returns a near-copy of the table (memorisation stand-in).
func jitter(t *silofuse.Table, eps float64, seed int64) *silofuse.Table {
	rng := rand.New(rand.NewSource(seed))
	data := t.Data.Clone()
	for i := 0; i < data.Rows; i++ {
		for j, c := range t.Schema.Columns {
			if c.Kind == silofuse.Numeric {
				data.Set(i, j, data.At(i, j)+eps*rng.NormFloat64())
			}
		}
	}
	out, err := silofuse.NewTable(t.Schema, data)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
