// Federated downstream modelling (the paper's future-work path, §VII):
// synthesise with SiloFuse in the strong-privacy mode — synthetic features
// stay vertically partitioned — and still train a joint downstream
// classifier with vertical federated learning (split learning over the
// byte-accounted bus). Nobody ever centralises features, real or synthetic.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"silofuse"
)

func main() {
	spec, err := silofuse.DatasetByName("cardio")
	if err != nil {
		log.Fatal(err)
	}
	train := spec.Generate(1500, 1)
	holdout := spec.Generate(600, 2)
	classes := train.Schema.Columns[0].Cardinality
	fmt.Printf("dataset %s: %d rows; target column %q with %d classes\n",
		spec.Name, train.Rows(), train.Schema.Columns[0].Name, classes)

	// 1. Cross-silo synthesis, keeping partitions on-premise. Client 0's
	// partition contains the target column (column 0).
	opts := silofuse.FastOptions()
	opts.Clients = 3
	opts.Seed = 4
	model := silofuse.NewSiloFuse(opts)
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	parts, err := model.SamplePartitioned(1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised %d partitioned rows across %d silos (features never centralised)\n",
		parts[0].Rows(), len(parts))

	// 2. The target-owning silo extracts synthetic labels; every silo keeps
	// its synthetic features. Train a split-learning classifier over the
	// partitions.
	labels := parts[0].CatColumn(0)
	featureParts := make([]*silofuse.Table, len(parts))
	featureParts[0] = dropFirstColumn(parts[0])
	copy(featureParts[1:], parts[1:])

	vfl, err := silofuse.NewVFLClassifier(featureParts, silofuse.VFLConfig{
		Classes: classes, EmbedDim: 8, HeadDim: 32, LR: 2e-3, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	bus := silofuse.NewLocalBus()
	loss, err := vfl.Train(bus, featureParts, labels, 600, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vfl training done (final CE loss %.3f), %d split-learning messages\n",
		loss, bus.Stats().Messages)

	// 3. Evaluate on real held-out data, partitioned the same way.
	holdTrue := holdout.CatColumn(0)
	holdParts := partitionLike(holdout, len(parts))
	holdFeatures := make([]*silofuse.Table, len(holdParts))
	holdFeatures[0] = dropFirstColumn(holdParts[0])
	copy(holdFeatures[1:], holdParts[1:])
	pred, err := vfl.Predict(holdFeatures)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	counts := make([]int, classes)
	for i := range holdTrue {
		counts[holdTrue[i]]++
		if pred[i] == holdTrue[i] {
			correct++
		}
	}
	majority := 0
	for _, c := range counts {
		if c > majority {
			majority = c
		}
	}
	fmt.Printf("real holdout accuracy: %.3f (majority-class baseline %.3f)\n",
		float64(correct)/float64(len(holdTrue)), float64(majority)/float64(len(holdTrue)))
	fmt.Println("\ntrained entirely on partitioned *synthetic* data — combining the")
	fmt.Println("paper's strong-privacy synthesis mode with its proposed VFL follow-up.")
}

// dropFirstColumn removes the target column from a partition.
func dropFirstColumn(t *silofuse.Table) *silofuse.Table {
	idx := make([]int, 0, t.Schema.NumColumns()-1)
	for j := 1; j < t.Schema.NumColumns(); j++ {
		idx = append(idx, j)
	}
	return t.SelectColumns(idx)
}

// partitionLike splits a table into m default contiguous partitions.
func partitionLike(t *silofuse.Table, m int) []*silofuse.Table {
	parts, err := t.Schema.Partition(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	return t.VerticalPartition(parts)
}
