// Healthcare cross-silo scenario (the paper's Figure 1 motivation): a
// cardiac center and a psychiatric center hold different features about the
// same patients and cannot share raw data. They jointly train SiloFuse over
// an explicit two-silo pipeline and synthesise data that stays vertically
// partitioned — each center only ever sees its own synthetic features,
// while cross-silo correlations (e.g. heart rate ↔ stress level) survive in
// the joint distribution.
//
//	go run ./examples/healthcare
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"silofuse"
)

func main() {
	// Joint patient table. With two clients the default partitioning gives
	// the cardiac center the first three features and the psychiatric
	// center the remaining four.
	schema := silofuse.MustSchema([]silofuse.Column{
		{Name: "heart_rate", Kind: silofuse.Numeric},
		{Name: "systolic_bp", Kind: silofuse.Numeric},
		{Name: "cholesterol", Kind: silofuse.Numeric},
		{Name: "arrhythmia", Kind: silofuse.Categorical, Cardinality: 2},
		{Name: "stress_level", Kind: silofuse.Numeric},
		{Name: "sleep_hours", Kind: silofuse.Numeric},
		{Name: "diagnosis", Kind: silofuse.Categorical, Cardinality: 3},
	})
	table := generatePatients(schema, 1500, 7)
	fmt.Printf("joint cohort: %d patients, %d features across 2 centers\n", table.Rows(), schema.NumColumns())
	fmt.Printf("real heart_rate ↔ stress_level correlation: %.2f\n",
		pearson(table.NumColumn(0), table.NumColumn(4)))

	// Build the explicit two-silo pipeline: columns 0-3 at the cardiac
	// center, 4-6 at the psychiatric center.
	opts := silofuse.FastOptions()
	opts.AEIters = 800
	opts.DiffIters = 2000
	bus := silofuse.NewLocalBus()
	cfg := silofuse.PipelineConfig{
		Clients: 2,
		AE:      silofuse.AutoencoderConfig{Hidden: opts.AEHidden, Embed: opts.AEEmbed, LR: opts.LR},
		Diff: silofuse.DiffusionConfig{
			Hidden: opts.DiffHidden, Depth: opts.DiffDepth, TimeDim: opts.DiffTimeDim,
			T: opts.T, LR: opts.LR, Dropout: 0.01,
		},
		AEIters:    opts.AEIters,
		DiffIters:  opts.DiffIters,
		Batch:      opts.Batch,
		SynthSteps: opts.SynthSteps,
		Seed:       11,
	}
	pipe, err := silofuse.NewPipeline(bus, table, cfg)
	if err != nil {
		log.Fatal(err)
	}
	aeLoss, diffLoss, err := pipe.TrainStacked()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stacked training done (AE NLL %.3f, DDPM MSE %.3f), %d messages on the bus\n",
		aeLoss, diffLoss, bus.Stats().Messages)

	// The psychiatric center (client 1) requests synthesis. The result stays
	// vertically partitioned: each center decodes only its own features.
	parts, err := pipe.SynthesizePartitioned(1, 1000, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cardiac center received %d synthetic rows over %d features: %v\n",
		parts[0].Rows(), parts[0].Schema.NumColumns(), columnNames(parts[0]))
	fmt.Printf("psychiatric center received %d synthetic rows over %d features: %v\n",
		parts[1].Rows(), parts[1].Schema.NumColumns(), columnNames(parts[1]))

	// Even though neither center saw the other's features, the cross-silo
	// correlation is preserved in the (hypothetically joined) synthetic data
	// because rows stay aligned across partitions.
	synthHR := parts[0].NumColumn(0)     // cardiac: heart_rate
	synthStress := parts[1].NumColumn(1) // psychiatric: stress_level
	fmt.Printf("synthetic heart_rate ↔ stress_level correlation: %.2f\n", pearson(synthHR, synthStress))

	joined, err := silofuse.JoinVertical(pipe.Schema, pipe.Parts, parts)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := silofuse.Resemblance(table, joined, silofuse.DefaultResemblanceConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint resemblance: %.1f/100\n", rep.Score)
}

// generatePatients plants a strong cardiac ↔ psychiatric dependence through
// a shared latent health factor.
func generatePatients(schema *silofuse.Schema, n int, seed int64) *silofuse.Table {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		health := rng.NormFloat64() // shared latent factor
		hr := 70 + 12*health + 3*rng.NormFloat64()
		bp := 120 + 15*health + 5*rng.NormFloat64()
		chol := 190 + 25*health + 10*rng.NormFloat64()
		arr := 0.0
		if health+0.4*rng.NormFloat64() > 1 {
			arr = 1
		}
		stress := 5 + 2*health + 0.8*rng.NormFloat64()
		sleep := 7 - 1.2*health + 0.6*rng.NormFloat64()
		diag := 0.0
		switch {
		case health > 0.8:
			diag = 2
		case health > -0.2:
			diag = 1
		}
		rows[i] = []float64{hr, bp, chol, arr, stress, sleep, diag}
	}
	data := make([]float64, 0, n*schema.NumColumns())
	for _, r := range rows {
		data = append(data, r...)
	}
	t, err := silofuse.NewTable(schema, silofuse.MatrixFromSlice(n, schema.NumColumns(), data))
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func columnNames(t *silofuse.Table) []string {
	out := make([]string, t.Schema.NumColumns())
	for i, c := range t.Schema.Columns {
		out[i] = c.Name
	}
	return out
}

func pearson(x, y []float64) float64 {
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 { //silofuse:bitwise-ok zero-variance guard before division
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
