// Quickstart: train SiloFuse on a benchmark dataset, sample synthetic rows
// and score them with the paper's benchmark framework.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"silofuse"
)

func main() {
	// 1. Load a dataset. The nine benchmark datasets of the paper are
	// simulated with exactly their Table II schemas; Generate is
	// deterministic in (rows, seed).
	spec, err := silofuse.DatasetByName("loan")
	if err != nil {
		log.Fatal(err)
	}
	full := spec.Generate(2000, 1)
	train, test := full.Split(rand.New(rand.NewSource(42)), 0.2)
	fmt.Printf("dataset %s: %d train rows, %d test rows, %d features\n",
		spec.Name, train.Rows(), test.Rows(), train.Schema.NumColumns())

	// 2. Train the cross-silo synthesizer. Four clients each hold a
	// vertical slice of the features; training uses a single communication
	// round (Algorithm 1).
	opts := silofuse.FastOptions()
	opts.Clients = 4
	model := silofuse.NewSiloFuse(opts)
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	stats := model.CommStats()
	fmt.Printf("trained with %d messages (%d bytes) — one latent upload per client\n",
		stats.Messages, stats.Bytes)

	// 3. Sample synthetic data (shared mode: partitions joined into one
	// table).
	synth, err := model.Sample(1500)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Score it.
	res, err := silofuse.Resemblance(train, synth, silofuse.DefaultResemblanceConfig())
	if err != nil {
		log.Fatal(err)
	}
	util, err := silofuse.Utility(train, synth, test, silofuse.DefaultUtilityConfig())
	if err != nil {
		log.Fatal(err)
	}
	priv, err := silofuse.EvaluatePrivacy(train, synth, silofuse.DefaultPrivacyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resemblance %.1f/100 (column %.2f, correlation %.2f, JS %.2f, KS %.2f, propensity %.2f)\n",
		res.Score, res.ColumnSimilarity, res.CorrelationSimilarity, res.JSSimilarity, res.KSSimilarity, res.Propensity)
	fmt.Printf("utility      %.1f/100 (real %.2f vs synthetic %.2f downstream performance)\n",
		util.Score, util.RealPerf, util.SynthPerf)
	fmt.Printf("privacy      %.1f/100 (singling-out %.0f, linkability %.0f, inference %.0f)\n",
		priv.Score, priv.SinglingOut, priv.Linkability, priv.AttributeInference)
}
