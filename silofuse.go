// Package silofuse is the public API of this repository: a from-scratch Go
// implementation of "SiloFuse: Cross-silo Synthetic Data Generation with
// Latent Tabular Diffusion Models" (ICDE 2024).
//
// SiloFuse synthesises tabular data whose features are vertically
// partitioned across silos. Each client trains a private autoencoder over
// its own features; latent embeddings are uploaded to a coordinator once
// (stacked training, one communication round); the coordinator trains a
// Gaussian diffusion model over the concatenated latents; synthesis samples
// fresh latents that each client decodes locally, optionally keeping the
// synthetic features vertically partitioned.
//
// The package re-exports the data model (schemas, tables, encodings), the
// synthesizer zoo (SiloFuse plus the paper's six baselines), the benchmark
// framework (resemblance, utility, privacy attacks), the nine simulated
// benchmark datasets, and the cross-silo transport fabric. See README.md
// for a tour and DESIGN.md for the architecture.
package silofuse

import (
	"silofuse/internal/autoencoder"
	"silofuse/internal/core"
	"silofuse/internal/datagen"
	"silofuse/internal/diffusion"
	"silofuse/internal/experiments"
	"silofuse/internal/metrics"
	"silofuse/internal/obs"
	"silofuse/internal/obs/profile"
	"silofuse/internal/privacy"
	"silofuse/internal/silo"
	"silofuse/internal/silo/codec"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Data model.
type (
	// Matrix is the dense float64 matrix underlying tables and latents.
	Matrix = tensor.Matrix
	// Schema describes a mixed-type table layout.
	Schema = tabular.Schema
	// Column is one schema column (numeric or categorical).
	Column = tabular.Column
	// Kind distinguishes numeric from categorical columns.
	Kind = tabular.Kind
	// Table is a schema plus raw data.
	Table = tabular.Table
	// Encoder standardises numeric columns and one-hot encodes categorical
	// ones.
	Encoder = tabular.Encoder
)

// Column kinds.
const (
	Numeric     = tabular.Numeric
	Categorical = tabular.Categorical
)

// NewMatrix allocates a zero matrix.
var NewMatrix = tensor.New

// MatrixFromSlice wraps a flat row-major slice as a matrix.
var MatrixFromSlice = tensor.FromSlice

// MatrixFromRows copies row slices into a matrix.
var MatrixFromRows = tensor.FromRows

// NewSchema validates and builds a schema.
var NewSchema = tabular.NewSchema

// MustSchema is NewSchema that panics on invalid input.
var MustSchema = tabular.MustSchema

// NewTable validates data against a schema.
var NewTable = tabular.NewTable

// NewEncoder fits a feature encoder on a table.
var NewEncoder = tabular.NewEncoder

// ReadCSV loads a table in this package's CSV format.
var ReadCSV = tabular.ReadCSV

// JoinVertical re-assembles vertically partitioned tables.
var JoinVertical = tabular.JoinVertical

// Synthesizers.
type (
	// Synthesizer is the common fit/sample interface of every model.
	Synthesizer = core.Synthesizer
	// Options carries model hyper-parameters; start from DefaultOptions.
	Options = core.Options
	// SiloFuseModel is the paper's contribution (also covers LatentDiff).
	SiloFuseModel = core.SiloFuse
	// TabDDPMModel is the centralized one-hot-space diffusion baseline.
	TabDDPMModel = core.TabDDPM
	// E2EModel is the end-to-end (joint) training baseline.
	E2EModel = core.E2E
	// GANModel covers the GAN(linear) and GAN(conv) baselines.
	GANModel = core.GANModel
)

// DefaultOptions returns CPU-scaled hyper-parameters preserving the paper's
// architecture shape.
var DefaultOptions = core.DefaultOptions

// FastOptions returns reduced settings for quick experiments.
var FastOptions = core.FastOptions

// NewSiloFuse builds the cross-silo synthesizer.
var NewSiloFuse = core.NewSiloFuse

// NewLatentDiff builds the centralized latent-diffusion baseline.
var NewLatentDiff = core.NewLatentDiff

// NewTabDDPM builds the TabDDPM baseline.
var NewTabDDPM = core.NewTabDDPM

// NewE2E builds the centralized end-to-end baseline.
var NewE2E = core.NewE2E

// NewE2EDistr builds the distributed end-to-end baseline.
var NewE2EDistr = core.NewE2EDistr

// NewGANLinear builds the CTGAN-flavoured baseline.
var NewGANLinear = core.NewGANLinear

// NewGANConv builds the CTAB-GAN-flavoured baseline.
var NewGANConv = core.NewGANConv

// NewSynthesizer constructs any model by registry name ("silofuse",
// "latentdiff", "tabddpm", "e2e", "e2edistr", "gan-linear", "gan-conv").
var NewSynthesizer = core.New

// SynthesizerNames lists the registry names in the paper's table order.
var SynthesizerNames = core.ModelNames

// Benchmark datasets.
type (
	// DatasetSpec describes one simulated benchmark dataset (Table II).
	DatasetSpec = datagen.Spec
)

// Datasets lists the nine benchmark dataset specs.
var Datasets = datagen.All

// DatasetByName looks up a benchmark dataset spec.
var DatasetByName = datagen.ByName

// DatasetNames lists the nine dataset names.
var DatasetNames = datagen.Names

// Evaluation framework.
type (
	// ResemblanceReport holds the five-component resemblance score.
	ResemblanceReport = metrics.ResemblanceReport
	// ResemblanceConfig tunes resemblance computation.
	ResemblanceConfig = metrics.ResemblanceConfig
	// UtilityReport holds the downstream-utility score.
	UtilityReport = metrics.UtilityReport
	// UtilityConfig tunes the utility evaluation.
	UtilityConfig = metrics.UtilityConfig
	// PrivacyReport holds the three attack-resistance scores.
	PrivacyReport = privacy.Report
	// PrivacyConfig tunes the privacy attack suite.
	PrivacyConfig = privacy.Config
)

// Resemblance scores how closely synthetic data matches real data (0-100).
var Resemblance = metrics.Resemblance

// DefaultResemblanceConfig returns the harness resemblance settings.
var DefaultResemblanceConfig = metrics.DefaultResemblanceConfig

// Utility scores train-on-synthetic / test-on-real performance (0-100).
var Utility = metrics.Utility

// DefaultUtilityConfig returns the harness utility settings.
var DefaultUtilityConfig = metrics.DefaultUtilityConfig

// EvaluatePrivacy runs the singling-out, linkability and attribute-
// inference attacks (higher = more resistant).
var EvaluatePrivacy = privacy.Evaluate

// DefaultPrivacyConfig returns the harness privacy settings.
var DefaultPrivacyConfig = privacy.DefaultConfig

// AssociationMatrix computes the mixed-type association matrix.
var AssociationMatrix = metrics.AssociationMatrix

// AssociationDifference computes the Table V correlation-difference map.
var AssociationDifference = metrics.AssociationDifference

// Cross-silo fabric (for advanced use: custom transports, real TCP
// deployments, explicit partition control).
type (
	// Bus moves protocol messages between parties with byte accounting.
	Bus = silo.Bus
	// Envelope is one protocol message.
	Envelope = silo.Envelope
	// TransportStats aggregates transport traffic.
	TransportStats = silo.Stats
	// Pipeline runs stacked training / distributed synthesis over a Bus.
	Pipeline = silo.Pipeline
	// PipelineConfig configures a Pipeline.
	PipelineConfig = silo.PipelineConfig
	// AutoencoderConfig configures the per-client autoencoders.
	AutoencoderConfig = autoencoder.Config
	// DiffusionConfig configures the coordinator's DDPM backbone.
	DiffusionConfig = diffusion.ModelConfig
	// E2EPipeline is the end-to-end split-learning baseline pipeline.
	E2EPipeline = silo.E2EPipeline
	// Client is one silo actor.
	Client = silo.Client
	// Coordinator is the diffusion-backbone actor.
	Coordinator = silo.Coordinator
	// TCPHub is the coordinator-side TCP transport.
	TCPHub = silo.TCPHub
	// TCPPeer is the client-side TCP transport.
	TCPPeer = silo.TCPPeer
	// VFLClassifier models downstream tasks on vertically partitioned data
	// via split learning — the companion to partitioned synthesis.
	VFLClassifier = silo.VFLClassifier
	// VFLConfig configures a VFLClassifier.
	VFLConfig = silo.VFLConfig
	// ChaosBus injects deterministic seeded transport faults for testing.
	ChaosBus = silo.ChaosBus
	// ChaosProfile selects which fault classes a ChaosBus injects.
	ChaosProfile = silo.ChaosProfile
	// ChaosStats counts the faults a ChaosBus actually injected.
	ChaosStats = silo.ChaosStats
	// ResilientBus wraps a Bus with retries, dedup and payload checksums.
	ResilientBus = silo.ResilientBus
	// ResilientConfig tunes the ResilientBus retry policy.
	ResilientConfig = silo.ResilientConfig
	// CodecBus frames dense tensor payloads through a precision-tiered wire
	// codec (f64 lossless, f32, q8) with per-kind bytes-vs-error accounting.
	CodecBus = silo.CodecBus
	// WireCodec identifies a precision tier of the wire codec.
	WireCodec = codec.ID
	// WireKindStats is one kind's bytes-vs-error record under a wire codec.
	WireKindStats = silo.WireKindStats
	// Checkpoint captures stacked-training progress for resume.
	Checkpoint = silo.Checkpoint
	// RecoveryConfig tunes phase-level recovery from peer death.
	RecoveryConfig = silo.RecoveryConfig
	// PeerHealth is the hub-side liveness view of one TCP peer.
	PeerHealth = silo.PeerHealth
	// PeerDeadError reports which peer died; it unwraps to ErrPeerDead.
	PeerDeadError = silo.PeerDeadError
	// Federation couples a Pipeline to telemetry federation: per-party
	// metric deltas ship over the bus at deterministic phase boundaries.
	Federation = silo.Federation
)

// Typed transport failures surfaced by the fault-tolerant bus stack.
var (
	// ErrPeerDead marks a party as unreachable after the retry budget.
	ErrPeerDead = silo.ErrPeerDead
	// ErrCorruptPayload marks a payload that failed its checksum.
	ErrCorruptPayload = silo.ErrCorruptPayload
)

// NewLocalBus builds the in-process transport.
var NewLocalBus = silo.NewLocalBus

// NewPipeline builds a stacked-training pipeline over a Bus.
var NewPipeline = silo.NewPipeline

// NewE2EPipeline builds the end-to-end baseline pipeline.
var NewE2EPipeline = silo.NewE2EPipeline

// NewTCPHub starts the coordinator-side TCP transport.
var NewTCPHub = silo.NewTCPHub

// DialHub connects a client-side TCP transport to a hub.
var DialHub = silo.DialHub

// NewVFLClassifier builds a split-learning classifier over feature
// partitions.
var NewVFLClassifier = silo.NewVFLClassifier

// NewChaosBus wraps a Bus with a deterministic seeded fault injector.
var NewChaosBus = silo.NewChaosBus

// ChaosProfileByName resolves a named fault profile (drop, dup, reorder,
// delay, corrupt, flaky, blackhole, crash; "none" or "" disables).
var ChaosProfileByName = silo.ChaosProfileByName

// NewResilientBus wraps a Bus with reliable, idempotent delivery.
var NewResilientBus = silo.NewResilientBus

// DefaultResilientConfig returns the production retry policy.
var DefaultResilientConfig = silo.DefaultResilientConfig

// NewCodecBus wraps a Bus with precision-tiered tensor payload framing.
var NewCodecBus = silo.NewCodecBus

// WireCodecByName resolves a wire codec name: "" or "f64" (lossless
// default), "f32", "q8", "none" (disable framing).
var WireCodecByName = codec.ByName

// WireReportKinds lists a wire report's framed kinds in sorted order.
var WireReportKinds = silo.WireReportKinds

// Observability: pure-stdlib metrics, trace spans, and run manifests. Attach
// a Recorder via Options.Recorder (or Pipeline.SetRecorder) to collect
// per-step training telemetry, per-kind transport counters and phase spans;
// a nil Recorder disables everything at near-zero cost.
type (
	// Recorder bundles a metrics registry and a tracer; nil-safe throughout.
	Recorder = obs.Recorder
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer records hierarchical spans exportable as Chrome trace JSON.
	Tracer = obs.Tracer
	// TraceSpan is one span handle; nil-safe for disabled tracing.
	TraceSpan = obs.Span
	// EventWriter streams run events as JSON lines (events.jsonl).
	EventWriter = obs.EventWriter
	// TelemetryConfig wires the live telemetry endpoint to a run's state.
	TelemetryConfig = obs.TelemetryConfig
	// TelemetryServer is a running live telemetry HTTP endpoint
	// (/metrics, /healthz, /runs, /debug/pprof).
	TelemetryServer = obs.TelemetryServer
	// RunManifest is the machine-readable per-run record
	// (results/<run>/manifest.json).
	RunManifest = experiments.Manifest
	// RuntimeInfo pins the toolchain and machine a run executed on.
	RuntimeInfo = experiments.RuntimeInfo
	// BenchSnapshot is the perf record silofuse-bench writes
	// (BENCH_silofuse.json).
	BenchSnapshot = experiments.BenchSnapshot
	// FleetAggregator folds federated telemetry updates into a fleet-wide
	// view: per-party labelled /metrics, merged traces, federation health.
	FleetAggregator = obs.FleetAggregator
	// Federator computes one party's telemetry deltas for federation.
	Federator = obs.Federator
	// TelemetryUpdate is one party's shipped telemetry delta.
	TelemetryUpdate = obs.TelemetryUpdate
	// FlightRecorder is the fixed-capacity ring of recent operations dumped
	// as a postmortem when a run dies.
	FlightRecorder = obs.FlightRecorder
	// FlightEntry is one recorded flight-recorder operation.
	FlightEntry = obs.FlightEntry
	// PostmortemDump is the on-disk schema of a flight-recorder dump.
	PostmortemDump = obs.PostmortemDump
	// DiffThresholds sets per-metric-class regression tolerances for run
	// and bench diffing (silofuse-obs diff, the -bench-baseline gate).
	DiffThresholds = experiments.DiffThresholds
	// DiffReport is the result of comparing two metric sets.
	DiffReport = experiments.DiffReport
	// PhaseProfiler captures phase-scoped CPU/heap/mutex/block pprof
	// profiles (results/<run>/profiles, /debug/phaseprofiles).
	PhaseProfiler = profile.PhaseProfiler
	// ProfileConfig selects what a PhaseProfiler captures and where.
	ProfileConfig = profile.Config
	// ProfileEntry indexes one captured profile file.
	ProfileEntry = profile.Entry
	// PprofProfile is a decoded pprof profile (stdlib-only decoder).
	PprofProfile = profile.Profile
	// FlatProfile is a profile flattened to per-function self/cum weights.
	FlatProfile = profile.FlatProfile
)

// NewRecorder builds an enabled Recorder with a fresh registry and tracer.
var NewRecorder = obs.NewRecorder

// NewPartyRecorder builds a per-party recorder for a multi-actor run: a
// shared registry, a private tracer on its own Chrome-trace process lane.
var NewPartyRecorder = obs.NewPartyRecorder

// NewMetricsRegistry builds an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// NewTracer builds an empty tracer.
var NewTracer = obs.NewTracer

// MergeChromeTraces stitches per-process Chrome traces into one timeline.
var MergeChromeTraces = obs.MergeChromeTraces

// WritePrometheus writes a metrics snapshot in Prometheus text exposition.
var WritePrometheus = obs.WritePrometheus

// StartTelemetry serves the live telemetry endpoint until Close.
var StartTelemetry = obs.StartTelemetry

// OpenEventLog opens (appending) a streaming run-event JSONL file.
var OpenEventLog = obs.OpenEventLog

// NewRunManifest starts a run manifest.
var NewRunManifest = experiments.NewManifest

// CurrentRuntime captures this process's RuntimeInfo.
var CurrentRuntime = experiments.CurrentRuntime

// NewFleetAggregator builds an empty fleet telemetry aggregator.
var NewFleetAggregator = obs.NewFleetAggregator

// NewFederator builds a party's telemetry federator over its recorder.
var NewFederator = obs.NewFederator

// NewFlightRecorder preallocates a flight-recorder ring (default capacity
// when given a non-positive one).
var NewFlightRecorder = obs.NewFlightRecorder

// DumpPostmortem writes runDir/postmortem/<party>.json from a party's
// flight-recorder ring.
var DumpPostmortem = obs.DumpPostmortem

// ReadEvents parses an events.jsonl stream, tolerating a crash-truncated
// trailing line.
var ReadEvents = obs.ReadEvents

// ReadEventsFile is ReadEvents over a file path.
var ReadEventsFile = obs.ReadEventsFile

// ReadBenchSnapshot loads and validates a BENCH_silofuse.json.
var ReadBenchSnapshot = experiments.ReadBenchSnapshot

// DefaultDiffThresholds returns the CI regression-gate policy.
var DefaultDiffThresholds = experiments.DefaultDiffThresholds

// DiffMetrics compares two flattened metric sets under thresholds.
var DiffMetrics = experiments.DiffMetrics

// BenchMetrics flattens a bench snapshot into diffable metric keys.
var BenchMetrics = experiments.BenchMetrics

// NewPhaseProfiler builds a phase-scoped profiler from its config.
var NewPhaseProfiler = profile.New

// DefaultProfileConfig captures all profile kinds for every phase into dir.
var DefaultProfileConfig = profile.DefaultConfig

// ParsePprof decodes a pprof profile from raw or gzipped protobuf bytes
// with the stdlib-only decoder.
var ParsePprof = profile.ParsePprof

// ParsePprofFile is ParsePprof over a file path.
var ParsePprofFile = profile.ParsePprofFile

// DiffProfiles compares two flattened profiles, largest self-weight
// regression first.
var DiffProfiles = profile.Diff

// EventMetrics flattens a run's event stream into diffable metric keys.
var EventMetrics = experiments.EventMetrics
