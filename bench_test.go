// Benchmarks regenerating every table and figure of the paper's evaluation
// section at CPU-friendly scale. Each Benchmark prints the corresponding
// rows/series, so `go test -bench=. -benchmem` doubles as the reproduction
// harness; cmd/silofuse-bench runs the same experiments at larger scale.
//
// The dataset/model subsets used here keep a full -bench=. run to a few
// minutes; the shape of every result (who wins, by roughly what factor,
// where the crossovers fall) matches the full runs recorded in
// EXPERIMENTS.md.
package silofuse

import (
	"math/rand"
	"os"
	"testing"

	"silofuse/internal/diffusion"
	"silofuse/internal/experiments"
	"silofuse/internal/gbdt"
	"silofuse/internal/tensor"
)

// benchConfig returns the scaled-down experiment configuration shared by
// the table/figure benchmarks.
func benchConfig() experiments.Config {
	c := experiments.Fast()
	c.RowCap = 500
	c.SynthRows = 400
	c.Opts.AEIters = 150
	c.Opts.DiffIters = 250
	c.Opts.GANIters = 150
	c.Opts.Batch = 128
	c.UtilCfg.Boost.NumRounds = 8
	c.UtilCfg.MaxColumns = 6
	c.PrivCfg.Attacks = 80
	return c
}

// BenchmarkTableII regenerates the dataset-statistics table (Table II).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchConfig().TableII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintTableII(os.Stdout, rows)
		}
	}
}

// BenchmarkTableIII regenerates the resemblance grid (Table III) on a
// three-dataset subset with the full model zoo.
func BenchmarkTableIII(b *testing.B) {
	c := benchConfig()
	c.Datasets = []string{"loan", "cardio", "diabetes"}
	for i := 0; i < b.N; i++ {
		g, err := c.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintGrid(os.Stdout, g)
		}
	}
}

// BenchmarkTableIV regenerates the utility grid (Table IV) on the same
// subset.
func BenchmarkTableIV(b *testing.B) {
	c := benchConfig()
	c.Datasets = []string{"loan", "cardio", "diabetes"}
	for i := 0; i < b.N; i++ {
		g, err := c.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintGrid(os.Stdout, g)
		}
	}
}

// BenchmarkTableV regenerates the correlation-difference heat maps
// (Table V) for Cardio and Intrusion.
func BenchmarkTableV(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		cells, err := c.TableV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintTableV(os.Stdout, cells)
		}
	}
}

// BenchmarkTableVI regenerates the privacy grid (Table VI) on a subset.
func BenchmarkTableVI(b *testing.B) {
	c := benchConfig()
	c.Datasets = []string{"abalone", "diabetes", "loan"}
	for i := 0; i < b.N; i++ {
		g, err := c.TableVI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintGrid(os.Stdout, g)
		}
	}
}

// BenchmarkTableVII regenerates the privacy-vs-denoising-steps sweep
// (Table VII) on Abalone and Heloc.
func BenchmarkTableVII(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := c.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintTableVII(os.Stdout, rows)
		}
	}
}

// BenchmarkFigure10 regenerates the communication-cost comparison
// (Figure 10): SiloFuse flat, E2EDistr linear in iterations.
func BenchmarkFigure10(b *testing.B) {
	c := benchConfig()
	for i := 0; i < b.N; i++ {
		series, err := c.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintFigure10(os.Stdout, series)
		}
	}
}

// BenchmarkFigure11 regenerates the robustness study (Figure 11) on the
// Loan dataset (Heloc/Churn run via cmd/silofuse-bench).
func BenchmarkFigure11(b *testing.B) {
	c := benchConfig()
	c.Datasets = []string{"loan"}
	for i := 0; i < b.N; i++ {
		points, err := c.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintFigure11(os.Stdout, points)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkMatMul measures the parallel matmul kernel at the backbone's
// working size (batch 256 × hidden 256).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(256, 256).Randn(rng, 1)
	w := tensor.New(256, 256).Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, w)
	}
}

// BenchmarkDiffusionTrainStep measures one DDPM optimisation step at the
// default latent width.
func BenchmarkDiffusionTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cfg := diffusion.ModelConfig{Dim: 16, Hidden: 256, Depth: 4, TimeDim: 32, T: 200, LR: 1e-3}
	m := diffusion.NewModel(rng, cfg)
	data := tensor.New(256, 16).Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainStep(data)
	}
}

// BenchmarkGBDTFit measures the XGBoost-substitute training used by the
// propensity and utility metrics.
func BenchmarkGBDTFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1000, 20).Randn(rng, 1)
	labels := make([]int, 1000)
	for i := range labels {
		if x.At(i, 0)+x.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	p := gbdt.DefaultParams()
	p.NumRounds = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := gbdt.NewClassifier(p, 2)
		if err := clf.Fit(x, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiloFuseFitSample measures one full stacked fit + sample on the
// Loan dataset at bench scale.
func BenchmarkSiloFuseFitSample(b *testing.B) {
	c := benchConfig()
	spec, err := DatasetByName("loan")
	if err != nil {
		b.Fatal(err)
	}
	train := spec.Generate(400, 9)
	for i := 0; i < b.N; i++ {
		opts := c.Opts
		opts.Seed = int64(i + 1)
		m := NewSiloFuse(opts)
		if err := m.Fit(train); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Sample(200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations measures the quality impact of SiloFuse's design
// choices (latent whitening, decode sampling, schedule, EMA, inference
// steps), each toggled in isolation.
func BenchmarkAblations(b *testing.B) {
	c := benchConfig()
	c.Datasets = []string{"loan"}
	for i := 0; i < b.N; i++ {
		rows, err := c.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			experiments.PrintAblations(os.Stdout, rows)
		}
	}
}
