// Command silofuse-obs analyzes run telemetry offline: it summarizes a run
// directory's event stream into a per-phase table, and diffs two runs or two
// bench snapshots under configurable regression thresholds, exiting non-zero
// on regression so it can gate CI.
//
// Usage:
//
//	silofuse-obs summary <run-dir|events.jsonl>
//	silofuse-obs diff [flags] <base> <current>
//
// diff accepts run directories (their events.jsonl is read), .jsonl event
// logs, or BENCH_silofuse.json snapshots, in any combination — both sides
// are flattened to the same metric keys before comparison. Event logs may be
// crash-truncated: a partial trailing line is skipped, all prior lines
// parse.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silofuse/internal/experiments"
	"silofuse/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = runSummary(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "silofuse-obs: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "silofuse-obs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  silofuse-obs summary <run-dir|events.jsonl>
  silofuse-obs diff [flags] <base> <current>

diff flags:
  -throughput-drop  allowed fractional rows/sec drop        (default 0.60)
  -alloc-growth     allowed absolute allocs/step growth     (default 2)
  -alloc-bytes-growth allowed fractional alloc bytes growth (default 0.25)
  -wire-growth      allowed fractional wire-byte growth     (default 0.10)
  -loss-growth      allowed fractional loss growth          (default 0.25)
  -phase-growth     allowed fractional phase-time growth    (default 0 = off)
`)
}

// eventsPath resolves a run-dir-or-file argument to its events file.
func eventsPath(arg string) (string, bool) {
	st, err := os.Stat(arg)
	if err == nil && st.IsDir() {
		return filepath.Join(arg, "events.jsonl"), true
	}
	return arg, strings.HasSuffix(arg, ".jsonl")
}

// loadMetrics flattens one diff operand — run dir, events log, or bench
// snapshot — into the shared metric key space.
func loadMetrics(arg string) (map[string]float64, error) {
	if path, isEvents := eventsPath(arg); isEvents {
		events, err := obs.ReadEventsFile(path)
		if err != nil {
			return nil, err
		}
		return experiments.EventMetrics(events), nil
	}
	snap, err := experiments.ReadBenchSnapshot(arg)
	if err != nil {
		return nil, err
	}
	return experiments.BenchMetrics(snap), nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summary wants one run directory or events.jsonl")
	}
	path, _ := eventsPath(fs.Arg(0))
	events, err := obs.ReadEventsFile(path)
	if err != nil {
		return err
	}
	type phase struct {
		name        string
		start, dur  float64
		loss        float64
		hasLoss     bool
		bytesByKind map[string]float64
	}
	var phases []phase
	trainSteps := make(map[string]int)
	counts := make(map[string]int)
	for _, ev := range events {
		typ, _ := ev["type"].(string)
		counts[typ]++
		switch typ {
		case "phase":
			p := phase{}
			p.name, _ = ev["name"].(string)
			p.start, _ = ev["start_sec"].(float64)
			p.dur, _ = ev["dur_sec"].(float64)
			if attrs, ok := ev["attrs"].(map[string]any); ok {
				if l, ok := attrs["loss"].(float64); ok {
					p.loss, p.hasLoss = l, true
				}
			}
			if byKind, ok := ev["bus_bytes_by_kind"].(map[string]any); ok {
				p.bytesByKind = make(map[string]float64, len(byKind))
				for k, v := range byKind {
					if f, ok := v.(float64); ok {
						p.bytesByKind[k] = f
					}
				}
			}
			phases = append(phases, p)
		case "train":
			if stage, ok := ev["stage"].(string); ok {
				trainSteps[stage]++
			}
		}
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-8s %d\n", t, counts[t])
	}
	if len(phases) == 0 {
		fmt.Println("no phase events")
		return nil
	}
	fmt.Printf("\n%-16s  %9s  %9s  %12s  %s\n", "PHASE", "START(s)", "DUR(s)", "LOSS", "WIRE BYTES (cumulative)")
	for _, p := range phases {
		loss := "--"
		if p.hasLoss {
			loss = fmt.Sprintf("%.6g", p.loss)
		}
		var wire string
		if len(p.bytesByKind) > 0 {
			kinds := make([]string, 0, len(p.bytesByKind))
			total := 0.0
			for k, v := range p.bytesByKind {
				kinds = append(kinds, k)
				total += v
			}
			sort.Strings(kinds)
			parts := make([]string, 0, len(kinds))
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s=%.0f", k, p.bytesByKind[k]))
			}
			wire = fmt.Sprintf("%.0f (%s)", total, strings.Join(parts, " "))
		}
		fmt.Printf("%-16s  %9.3f  %9.3f  %12s  %s\n", p.name, p.start, p.dur, loss, wire)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := experiments.DefaultDiffThresholds()
	fs.Float64Var(&th.ThroughputDrop, "throughput-drop", th.ThroughputDrop, "allowed fractional rows/sec drop")
	fs.Float64Var(&th.AllocGrowth, "alloc-growth", th.AllocGrowth, "allowed absolute allocs/step growth")
	fs.Float64Var(&th.AllocBytesGrowth, "alloc-bytes-growth", th.AllocBytesGrowth, "allowed fractional alloc bytes/step growth")
	fs.Float64Var(&th.WireGrowth, "wire-growth", th.WireGrowth, "allowed fractional wire-byte growth")
	fs.Float64Var(&th.LossGrowth, "loss-growth", th.LossGrowth, "allowed fractional loss growth")
	fs.Float64Var(&th.PhaseGrowth, "phase-growth", th.PhaseGrowth, "allowed fractional phase-time growth (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants <base> and <current>")
	}
	base, err := loadMetrics(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("base: %w", err)
	}
	cur, err := loadMetrics(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	rep := experiments.DiffMetrics(base, cur, th)
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	if rep.Regressions > 0 {
		return fmt.Errorf("%d regression(s) against %s", rep.Regressions, fs.Arg(0))
	}
	return nil
}
