// Command silofuse-obs analyzes run telemetry offline: it summarizes a run
// directory's event stream into a per-phase table, renders top-N tables
// from phase-scoped pprof captures, and diffs two runs or two bench
// snapshots under configurable regression thresholds, exiting non-zero on
// regression so it can gate CI.
//
// Usage:
//
//	silofuse-obs summary <run-dir|events.jsonl>
//	silofuse-obs profile [flags] <run-dir|profiles-dir|profile.pb.gz>
//	silofuse-obs diff [flags] <base> <current>
//
// diff accepts run directories (their events.jsonl is read), .jsonl event
// logs, or BENCH_silofuse.json snapshots, in any combination — both sides
// are flattened to the same metric keys before comparison. Event logs may be
// crash-truncated: a partial trailing line is skipped, all prior lines
// parse. When both operands are run directories carrying profiles/ and a
// metric regresses, the report appends attribution tables naming the
// functions whose profile weight grew most in the regressed phase.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silofuse/internal/experiments"
	"silofuse/internal/obs"
	"silofuse/internal/obs/profile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = runSummary(os.Args[2:])
	case "profile":
		err = runProfile(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "silofuse-obs: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "silofuse-obs:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  silofuse-obs summary <run-dir|events.jsonl>
  silofuse-obs profile [flags] <run-dir|profiles-dir|profile.pb.gz>
  silofuse-obs diff [flags] <base> <current>

profile flags:
  -phase            phase to show (default: every captured phase)
  -kind             profile kind: cpu|heap|mutex|block       (default cpu)
  -sample           sample type to aggregate (default: cpu or alloc_space)
  -top              rows in the function table               (default 20)

diff flags:
  -throughput-drop  allowed fractional rows/sec drop        (default 0.60)
  -alloc-growth     allowed absolute allocs/step growth     (default 2)
  -alloc-bytes-growth allowed fractional alloc bytes growth (default 0.25)
  -wire-growth      allowed fractional wire-byte growth     (default 0.10)
  -loss-growth      allowed fractional loss growth          (default 0.25)
  -phase-growth     allowed fractional phase-time growth    (default 0 = off)
  -attr-top         functions per attribution table         (default 5)
`)
}

// eventsPath resolves a run-dir-or-file argument to its events file.
func eventsPath(arg string) (string, bool) {
	st, err := os.Stat(arg)
	if err == nil && st.IsDir() {
		return filepath.Join(arg, "events.jsonl"), true
	}
	return arg, strings.HasSuffix(arg, ".jsonl")
}

// loadMetrics flattens one diff operand — run dir, events log, or bench
// snapshot — into the shared metric key space.
func loadMetrics(arg string) (map[string]float64, error) {
	if path, isEvents := eventsPath(arg); isEvents {
		events, err := obs.ReadEventsFile(path)
		if err != nil {
			return nil, err
		}
		return experiments.EventMetrics(events), nil
	}
	snap, err := experiments.ReadBenchSnapshot(arg)
	if err != nil {
		return nil, err
	}
	return experiments.BenchMetrics(snap), nil
}

func runSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("summary wants one run directory or events.jsonl")
	}
	path, _ := eventsPath(fs.Arg(0))
	events, err := obs.ReadEventsFile(path)
	if err != nil {
		// A run dir without an event stream (crashed before the first
		// flush, or recorded with -profile-phases only) still has
		// artifacts worth reporting; degrade instead of erroring.
		if st, serr := os.Stat(fs.Arg(0)); serr == nil && st.IsDir() && os.IsNotExist(err) {
			return summarizeArtifacts(fs.Arg(0))
		}
		return err
	}
	type phase struct {
		name        string
		start, dur  float64
		loss        float64
		hasLoss     bool
		bytesByKind map[string]float64
	}
	var phases []phase
	trainSteps := make(map[string]int)
	counts := make(map[string]int)
	for _, ev := range events {
		typ, _ := ev["type"].(string)
		counts[typ]++
		switch typ {
		case "phase":
			p := phase{}
			p.name, _ = ev["name"].(string)
			p.start, _ = ev["start_sec"].(float64)
			p.dur, _ = ev["dur_sec"].(float64)
			if attrs, ok := ev["attrs"].(map[string]any); ok {
				if l, ok := attrs["loss"].(float64); ok {
					p.loss, p.hasLoss = l, true
				}
			}
			if byKind, ok := ev["bus_bytes_by_kind"].(map[string]any); ok {
				p.bytesByKind = make(map[string]float64, len(byKind))
				for k, v := range byKind {
					if f, ok := v.(float64); ok {
						p.bytesByKind[k] = f
					}
				}
			}
			phases = append(phases, p)
		case "train":
			if stage, ok := ev["stage"].(string); ok {
				trainSteps[stage]++
			}
		}
	}
	fmt.Printf("%s: %d events\n", path, len(events))
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-8s %d\n", t, counts[t])
	}
	if len(phases) == 0 {
		fmt.Println("no phase events")
		return nil
	}
	fmt.Printf("\n%-16s  %9s  %9s  %12s  %s\n", "PHASE", "START(s)", "DUR(s)", "LOSS", "WIRE BYTES (cumulative)")
	for _, p := range phases {
		loss := "--"
		if p.hasLoss {
			loss = fmt.Sprintf("%.6g", p.loss)
		}
		var wire string
		if len(p.bytesByKind) > 0 {
			kinds := make([]string, 0, len(p.bytesByKind))
			total := 0.0
			for k, v := range p.bytesByKind {
				kinds = append(kinds, k)
				total += v
			}
			sort.Strings(kinds)
			parts := make([]string, 0, len(kinds))
			for _, k := range kinds {
				parts = append(parts, fmt.Sprintf("%s=%.0f", k, p.bytesByKind[k]))
			}
			wire = fmt.Sprintf("%.0f (%s)", total, strings.Join(parts, " "))
		}
		fmt.Printf("%-16s  %9.3f  %9.3f  %12s  %s\n", p.name, p.start, p.dur, loss, wire)
	}
	return nil
}

// summarizeArtifacts reports what a run directory holds when its
// events.jsonl is absent: the manifest, postmortem dumps, and captured
// phase profiles.
func summarizeArtifacts(dir string) error {
	fmt.Printf("%s: no events.jsonl; reporting available artifacts\n", dir)
	found := false

	manPath := filepath.Join(dir, "manifest.json")
	if data, err := os.ReadFile(manPath); err == nil {
		found = true
		var man experiments.Manifest
		if jerr := json.Unmarshal(data, &man); jerr != nil {
			fmt.Printf("\nmanifest.json: unparseable (%v)\n", jerr)
		} else {
			fmt.Printf("\nmanifest.json: run %q, seed %d, created %s\n", man.Run, man.Seed, man.CreatedAt.Format("2006-01-02 15:04:05"))
			if len(man.Phases) > 0 {
				fmt.Printf("%-16s  %9s  %9s\n", "PHASE", "START(s)", "DUR(s)")
				for _, ph := range man.Phases {
					fmt.Printf("%-16s  %9.3f  %9.3f\n", ph.Name, ph.StartSec, ph.DurSec)
				}
			}
		}
	}

	if dumps, err := filepath.Glob(filepath.Join(dir, "postmortem", "*.json")); err == nil && len(dumps) > 0 {
		found = true
		sort.Strings(dumps)
		fmt.Printf("\npostmortem dumps: %d\n", len(dumps))
		for _, d := range dumps {
			fmt.Printf("  %s\n", filepath.Base(d))
		}
	}

	if entries := readProfileIndex(filepath.Join(dir, experiments.ProfilesSubdir)); len(entries) > 0 {
		found = true
		fmt.Printf("\nphase profiles: %d\n", len(entries))
		fmt.Printf("  %-16s  %-6s  %9s  %9s\n", "PHASE", "KIND", "BYTES", "DUR(s)")
		for _, e := range entries {
			fmt.Printf("  %-16s  %-6s  %9d  %9.3f\n", e.Phase, e.Kind, e.Bytes, e.DurSec)
		}
	}

	if !found {
		fmt.Println("no manifest, postmortems, or profiles either — empty run directory")
	}
	return nil
}

// readProfileIndex loads profiles/index.json (nil when absent/invalid).
func readProfileIndex(dir string) []profile.Entry {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil
	}
	var idx struct {
		Entries []profile.Entry `json:"entries"`
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil
	}
	return idx.Entries
}

// profileOperandDir resolves the profile subcommand's operand to the
// directory holding .pb.gz files ("" when the operand is itself a file).
func profileOperandDir(arg string) (string, bool) {
	st, err := os.Stat(arg)
	if err != nil || !st.IsDir() {
		return "", false
	}
	sub := filepath.Join(arg, experiments.ProfilesSubdir)
	if fi, err := os.Stat(sub); err == nil && fi.IsDir() {
		return sub, true
	}
	return arg, true
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	phase := fs.String("phase", "", "phase to show (default: every captured phase)")
	kind := fs.String("kind", profile.KindCPU, "profile kind: cpu|heap|mutex|block")
	sample := fs.String("sample", "", "sample type to aggregate (default: cpu or alloc_space)")
	top := fs.Int("top", 20, "rows in the function table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("profile wants one run dir, profiles dir, or .pb.gz file")
	}
	arg := fs.Arg(0)

	var files []string
	if dir, isDir := profileOperandDir(arg); isDir {
		if *phase != "" {
			files = []string{filepath.Join(dir, profile.EntryFileName(*phase, *kind))}
		} else {
			glob, err := filepath.Glob(filepath.Join(dir, "*."+*kind+".pb.gz"))
			if err != nil {
				return err
			}
			sort.Strings(glob)
			files = glob
		}
		if len(files) == 0 {
			return fmt.Errorf("no %s profiles under %s", *kind, dir)
		}
	} else {
		files = []string{arg}
	}

	col := *sample
	if col == "" && *kind == profile.KindHeap {
		col = "alloc_space"
	}
	for _, path := range files {
		if err := printProfileTop(path, col, *top); err != nil {
			return err
		}
	}
	return nil
}

// printProfileTop decodes one profile file and prints its top-N table.
func printProfileTop(path, sample string, top int) error {
	p, err := profile.ParsePprofFile(path)
	if err != nil {
		return err
	}
	flat, err := p.Flatten(sample)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("\n%s  (%s/%s, total %s)\n", filepath.Base(path), flat.Type, flat.Unit, profile.FormatValue(flat.Total, flat.Unit))
	rows := flat.Top(top)
	if len(rows) == 0 {
		fmt.Println("  no samples")
		return nil
	}
	width := len("FUNCTION")
	for _, st := range rows {
		if len(st.Name) > width {
			width = len(st.Name)
		}
	}
	fmt.Printf("  %-*s  %12s  %12s\n", width, "FUNCTION", "SELF", "CUM")
	for _, st := range rows {
		fmt.Printf("  %-*s  %12s  %12s\n", width, st.Name,
			profile.FormatValue(st.Self, flat.Unit), profile.FormatValue(st.Cum, flat.Unit))
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	th := experiments.DefaultDiffThresholds()
	fs.Float64Var(&th.ThroughputDrop, "throughput-drop", th.ThroughputDrop, "allowed fractional rows/sec drop")
	fs.Float64Var(&th.AllocGrowth, "alloc-growth", th.AllocGrowth, "allowed absolute allocs/step growth")
	fs.Float64Var(&th.AllocBytesGrowth, "alloc-bytes-growth", th.AllocBytesGrowth, "allowed fractional alloc bytes/step growth")
	fs.Float64Var(&th.WireGrowth, "wire-growth", th.WireGrowth, "allowed fractional wire-byte growth")
	fs.Float64Var(&th.LossGrowth, "loss-growth", th.LossGrowth, "allowed fractional loss growth")
	fs.Float64Var(&th.PhaseGrowth, "phase-growth", th.PhaseGrowth, "allowed fractional phase-time growth (0 disables)")
	attrTop := fs.Int("attr-top", 5, "functions per attribution table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants <base> and <current>")
	}
	base, err := loadMetrics(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("base: %w", err)
	}
	cur, err := loadMetrics(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	rep := experiments.DiffMetrics(base, cur, th)
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	if rep.Regressions > 0 {
		if experiments.HasProfiles(fs.Arg(0)) && experiments.HasProfiles(fs.Arg(1)) {
			atts := experiments.AttributeRegressions(rep, fs.Arg(0), fs.Arg(1), *attrTop)
			if err := experiments.WriteAttributions(os.Stdout, atts); err != nil {
				return err
			}
		} else {
			fmt.Println("(no phase profiles on both sides; capture runs with -profile-phases for attribution)")
		}
		return fmt.Errorf("%d regression(s) against %s", rep.Regressions, fs.Arg(0))
	}
	return nil
}
