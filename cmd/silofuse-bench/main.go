// Command silofuse-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	silofuse-bench -exp table3 -scale fast
//	silofuse-bench -exp all -scale standard -trials 3
//	silofuse-bench -exp fig11 -datasets heloc,loan,churn
//
// Experiments: table2, table3 (resemblance), table4 (utility), table5
// (correlation differences), table6 (privacy), table7 (privacy vs steps),
// fig10 (communication), fig11 (robustness), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"silofuse"
	"silofuse/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2..table7, quality (tables 3+4 in one pass), fig10, fig11, all")
	scale := flag.String("scale", "fast", "fast or standard")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: experiment's own)")
	models := flag.String("models", "", "comma-separated model subset (default: experiment's own)")
	trials := flag.Int("trials", 0, "override trial count")
	rows := flag.Int("rows", 0, "override dataset row cap")
	seed := flag.Int64("seed", 0, "override base seed")
	aeIters := flag.Int("ae-iters", 0, "override autoencoder iterations")
	diffIters := flag.Int("diff-iters", 0, "override diffusion iterations")
	ganIters := flag.Int("gan-iters", 0, "override GAN iterations")
	utilCols := flag.Int("util-cols", 0, "cap on utility target columns (0 = all)")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON covering every model fitted")
	metricsFlag := flag.Bool("metrics", false, "print the metrics text exposition to stderr at the end")
	runName := flag.String("run", "", "write results/<run>/manifest.json for the whole invocation")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "fast":
		cfg = experiments.Fast()
	case "standard":
		cfg = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want fast or standard)\n", *scale)
		os.Exit(2)
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *rows > 0 {
		cfg.RowCap = *rows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *aeIters > 0 {
		cfg.Opts.AEIters = *aeIters
	}
	if *diffIters > 0 {
		cfg.Opts.DiffIters = *diffIters
	}
	if *ganIters > 0 {
		cfg.Opts.GANIters = *ganIters
	}
	if *utilCols > 0 {
		cfg.UtilCfg.MaxColumns = *utilCols
	}
	var rec *silofuse.Recorder
	if *tracePath != "" || *metricsFlag || *runName != "" {
		rec = silofuse.NewRecorder()
		cfg.Opts.Recorder = rec
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table2", "quality", "table5", "table6", "table7", "fig10", "fig11"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if err := writeTelemetry(rec, *tracePath, *metricsFlag, *runName, *exp, cfg.Seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeTelemetry emits the optional trace file, metrics exposition and run
// manifest once all experiments have finished.
func writeTelemetry(rec *silofuse.Recorder, tracePath string, metrics bool, runName, exp string, seed int64) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", tracePath)
	}
	if metrics {
		if err := rec.Reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if runName != "" {
		man := silofuse.NewRunManifest(runName, seed)
		man.Config["exp"] = exp
		man.FromRecorder(rec)
		dir := filepath.Join("results", runName)
		if err := man.Write(dir); err != nil {
			return err
		}
		fmt.Printf("wrote manifest %s\n", filepath.Join(dir, "manifest.json"))
	}
	return nil
}

func run(id string, cfg experiments.Config) error {
	switch id {
	case "table2":
		rows, err := cfg.TableII()
		if err != nil {
			return err
		}
		experiments.PrintTableII(os.Stdout, rows)
	case "table3":
		g, err := cfg.TableIII()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "table4":
		g, err := cfg.TableIV()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "quality":
		res, util, err := cfg.Quality()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, res)
		fmt.Println()
		experiments.PrintGrid(os.Stdout, util)
	case "table5":
		cells, err := cfg.TableV()
		if err != nil {
			return err
		}
		experiments.PrintTableV(os.Stdout, cells)
	case "table6":
		g, err := cfg.TableVI()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "table7":
		rows, err := cfg.TableVII()
		if err != nil {
			return err
		}
		experiments.PrintTableVII(os.Stdout, rows)
	case "fig10":
		series, err := cfg.Figure10()
		if err != nil {
			return err
		}
		experiments.PrintFigure10(os.Stdout, series)
	case "fig11":
		points, err := cfg.Figure11()
		if err != nil {
			return err
		}
		experiments.PrintFigure11(os.Stdout, points)
	case "ablations":
		rows, err := cfg.Ablations()
		if err != nil {
			return err
		}
		experiments.PrintAblations(os.Stdout, rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
