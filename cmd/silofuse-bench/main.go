// Command silofuse-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	silofuse-bench -exp table3 -scale fast
//	silofuse-bench -exp all -scale standard -trials 3
//	silofuse-bench -exp fig11 -datasets heloc,loan,churn
//
// Experiments: table2, table3 (resemblance), table4 (utility), table5
// (correlation differences), table6 (privacy), table7 (privacy vs steps),
// fig10 (communication), fig11 (robustness), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"silofuse"
	"silofuse/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or comma-separated list: table2..table7, quality (tables 3+4 in one pass), fig10, fig10x (wire codec sweep), fig11, ddp (data-parallel worker scaling), all")
	scale := flag.String("scale", "fast", "fast or standard")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: experiment's own)")
	models := flag.String("models", "", "comma-separated model subset (default: experiment's own)")
	trials := flag.Int("trials", 0, "override trial count")
	rows := flag.Int("rows", 0, "override dataset row cap")
	seed := flag.Int64("seed", 0, "override base seed")
	aeIters := flag.Int("ae-iters", 0, "override autoencoder iterations")
	diffIters := flag.Int("diff-iters", 0, "override diffusion iterations")
	ganIters := flag.Int("gan-iters", 0, "override GAN iterations")
	utilCols := flag.Int("util-cols", 0, "cap on utility target columns (0 = all)")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON covering every model fitted")
	metricsFlag := flag.Bool("metrics", false, "print the metrics text exposition to stderr at the end")
	runName := flag.String("run", "", "write results/<run>/manifest.json for the whole invocation, and stream results/<run>/events.jsonl")
	listen := flag.String("listen", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address during the run")
	benchJSON := flag.String("bench-json", "BENCH_silofuse.json", "write a perf snapshot (phases, rows/sec, bytes by kind) to this path; empty disables")
	checkBench := flag.String("check-bench", "", "validate an existing bench snapshot and exit (CI smoke check)")
	benchBaseline := flag.String("bench-baseline", "", "after the run, diff the fresh -bench-json snapshot against this committed baseline and exit non-zero on regression (per-metric tolerances, per-phase delta table)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU pprof profile covering the whole run to this path (captured by the phase profiler as the \"all\" phase)")
	memProfile := flag.String("memprofile", "", "write an allocation pprof profile at the end of the run to this path (the phase profiler's final heap snapshot)")
	profilePhases := flag.Bool("profile-phases", false, "capture per-phase CPU/heap/mutex/block pprof profiles into results/<run>/profiles (requires -run)")
	debugSpin := flag.Int("debug-spin", 0, "inject N iterations of deterministic busy-work per diffusion step (wall time only; for profiling attribution tests)")
	chaosProfile := flag.String("chaos-profile", "", "inject transport faults during distributed training: drop, dup, reorder, delay, corrupt, flaky, blackhole, crash (empty disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed of the deterministic fault schedule (with -chaos-profile)")
	wireCodec := flag.String("wire-codec", "", "wire codec framing dense tensor payloads: none/gob (default), f64 (raw binary), f32 (half the payload bytes), q8 (int8 quantization); fig10x sweeps all codecs regardless")
	computePrecision := flag.String("compute-precision", "", "kernel precision for sampling and decode (training is always f64): f64 (default) or f32")
	flag.Parse()

	// One capture path: -cpuprofile/-memprofile delegate to the phase
	// profiler (whole-run capture as the "all" phase), and -profile-phases
	// adds per-phase slices under results/<run>/profiles.
	var prof *silofuse.PhaseProfiler
	if *profilePhases || *cpuProfile != "" || *memProfile != "" {
		if *profilePhases && *runName == "" {
			fmt.Fprintln(os.Stderr, "-profile-phases requires -run <name>")
			os.Exit(2)
		}
		pcfg := silofuse.ProfileConfig{CPUPath: *cpuProfile, HeapPath: *memProfile}
		if *profilePhases {
			pcfg = silofuse.DefaultProfileConfig(filepath.Join("results", *runName, "profiles"))
			pcfg.CPUPath = *cpuProfile
			pcfg.HeapPath = *memProfile
		}
		if *cpuProfile != "" {
			pcfg.CPU = true
			pcfg.WholeRunCPU = true
		}
		var err error
		if prof, err = silofuse.NewPhaseProfiler(pcfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *checkBench != "" {
		snap, err := experiments.ReadBenchSnapshot(*checkBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s ok: exp=%s scale=%s wall=%.2fs phases=%d stages=%d\n",
			*checkBench, snap.Exp, snap.Scale, snap.WallSeconds, len(snap.Phases), len(snap.StepSeconds))
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "fast":
		cfg = experiments.Fast()
	case "standard":
		cfg = experiments.Standard()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want fast or standard)\n", *scale)
		os.Exit(2)
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *models != "" {
		cfg.Models = strings.Split(*models, ",")
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *rows > 0 {
		cfg.RowCap = *rows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *aeIters > 0 {
		cfg.Opts.AEIters = *aeIters
	}
	if *diffIters > 0 {
		cfg.Opts.DiffIters = *diffIters
	}
	if *ganIters > 0 {
		cfg.Opts.GANIters = *ganIters
	}
	if *utilCols > 0 {
		cfg.UtilCfg.MaxColumns = *utilCols
	}
	if *chaosProfile != "" {
		if _, err := silofuse.ChaosProfileByName(*chaosProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Opts.ChaosProfile = *chaosProfile
		cfg.Opts.ChaosSeed = *chaosSeed
	}
	switch *wireCodec {
	case "", "none", "f64", "f32", "q8":
		cfg.Opts.WireCodec = *wireCodec
	default:
		fmt.Fprintf(os.Stderr, "unknown wire codec %q (want none, f64, f32 or q8)\n", *wireCodec)
		os.Exit(2)
	}
	switch *computePrecision {
	case "", "f64", "f32":
		cfg.Opts.ComputePrecision = *computePrecision
	default:
		fmt.Fprintf(os.Stderr, "unknown compute precision %q (want f64 or f32)\n", *computePrecision)
		os.Exit(2)
	}
	cfg.Opts.DebugSpin = *debugSpin
	var rec *silofuse.Recorder
	if *tracePath != "" || *metricsFlag || *runName != "" || *listen != "" || *benchJSON != "" || prof != nil {
		rec = silofuse.NewRecorder()
		cfg.Opts.Recorder = rec
		rec.SetProfiler(prof)
	}
	if *runName != "" {
		ew, err := silofuse.OpenEventLog(filepath.Join("results", *runName, "events.jsonl"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ew.Close()
		rec.SetEvents(ew)
		ew.Emit("run-start", map[string]any{"run": *runName, "exp": *exp, "scale": *scale, "seed": cfg.Seed})
	}
	if *listen != "" {
		srv, err := silofuse.StartTelemetry(*listen, silofuse.TelemetryConfig{
			Rec:           rec,
			RunsDir:       "results",
			PhaseProfiles: prof,
			Health: func() map[string]any {
				return map[string]any{"binary": "silofuse-bench", "exp": *exp, "scale": *scale}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s (/metrics /healthz /runs /debug/pprof /debug/phaseprofiles)\n", srv.Addr())
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table2", "quality", "table5", "table6", "table7", "fig10", "fig10x", "fig11", "ddp"}
	}
	wallStart := time.Now()
	for _, id := range ids {
		start := time.Now()
		if err := run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("\n[%s done in %s]\n\n", id, elapsed.Round(time.Millisecond))
		if rec != nil {
			rec.Events.Emit("experiment", map[string]any{"exp": id, "dur_sec": elapsed.Seconds()})
		}
	}
	// Close the profiler before any gate can exit: it stops the whole-run
	// CPU capture, writes the final heap profile and profiles/index.json.
	if err := prof.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if prof != nil && *cpuProfile != "" {
		fmt.Printf("wrote cpu profile %s\n", *cpuProfile)
	}
	if prof != nil && *memProfile != "" {
		fmt.Printf("wrote heap profile %s\n", *memProfile)
	}
	if *benchJSON != "" {
		snap := experiments.NewBenchSnapshot(*exp, *scale)
		snap.WallSeconds = time.Since(wallStart).Seconds()
		snap.FromRecorder(rec)
		if err := snap.Write(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote bench snapshot %s\n", *benchJSON)
		if *benchBaseline != "" {
			base, err := experiments.ReadBenchSnapshot(*benchBaseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep := experiments.DiffMetrics(experiments.BenchMetrics(base), experiments.BenchMetrics(snap), experiments.DefaultDiffThresholds())
			fmt.Printf("\nbench regression gate vs %s:\n", *benchBaseline)
			if err := rep.WriteTable(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rep.Regressions > 0 {
				fmt.Fprintf(os.Stderr, "bench gate: %d regression(s) vs %s\n", rep.Regressions, *benchBaseline)
				os.Exit(1)
			}
		}
	}
	if err := writeTelemetry(rec, prof, *tracePath, *metricsFlag, *runName, *exp, cfg.Seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeTelemetry emits the optional trace file, metrics exposition and run
// manifest once all experiments have finished.
func writeTelemetry(rec *silofuse.Recorder, prof *silofuse.PhaseProfiler, tracePath string, metrics bool, runName, exp string, seed int64) error {
	if rec == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", tracePath)
	}
	if metrics {
		if err := rec.Reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if runName != "" {
		man := silofuse.NewRunManifest(runName, seed)
		man.Config["exp"] = exp
		man.FromRecorder(rec)
		man.Profiles = prof.Entries()
		dir := filepath.Join("results", runName)
		if err := man.Write(dir); err != nil {
			return err
		}
		fmt.Printf("wrote manifest %s\n", filepath.Join(dir, "manifest.json"))
	}
	return nil
}

func run(id string, cfg experiments.Config) error {
	switch id {
	case "table2":
		rows, err := cfg.TableII()
		if err != nil {
			return err
		}
		experiments.PrintTableII(os.Stdout, rows)
	case "table3":
		g, err := cfg.TableIII()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "table4":
		g, err := cfg.TableIV()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "quality":
		res, util, err := cfg.Quality()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, res)
		fmt.Println()
		experiments.PrintGrid(os.Stdout, util)
	case "table5":
		cells, err := cfg.TableV()
		if err != nil {
			return err
		}
		experiments.PrintTableV(os.Stdout, cells)
	case "table6":
		g, err := cfg.TableVI()
		if err != nil {
			return err
		}
		experiments.PrintGrid(os.Stdout, g)
	case "table7":
		rows, err := cfg.TableVII()
		if err != nil {
			return err
		}
		experiments.PrintTableVII(os.Stdout, rows)
	case "ddp":
		rows, err := cfg.DDPScaling()
		if err != nil {
			return err
		}
		experiments.PrintDDPScaling(os.Stdout, rows)
	case "fig10":
		series, err := cfg.Figure10()
		if err != nil {
			return err
		}
		experiments.PrintFigure10(os.Stdout, series)
	case "fig10x":
		rows, err := cfg.Figure10X()
		if err != nil {
			return err
		}
		experiments.PrintFigure10X(os.Stdout, rows)
	case "fig11":
		points, err := cfg.Figure11()
		if err != nil {
			return err
		}
		experiments.PrintFigure11(os.Stdout, points)
	case "ablations":
		rows, err := cfg.Ablations()
		if err != nil {
			return err
		}
		experiments.PrintAblations(os.Stdout, rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
