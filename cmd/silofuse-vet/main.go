// Command silofuse-vet runs the repository's determinism and hot-path
// analyzers (internal/analysis) over a module tree and reports findings as
//
//	file:line:col: analyzer: message
//
// It exits 0 on a clean tree, 1 when any analyzer reports a diagnostic, and
// 2 on load/type-check failure. `make lint` runs it alongside go vet and
// gofmt -l, and the internal/analysis self-check test runs it over this
// repository itself, so the tree must stay clean.
//
// Usage:
//
//	silofuse-vet [-list] [-stats] [dir]
//
// dir defaults to the current directory and must contain go.mod. -stats
// prints a per-analyzer finding-count and wall-time table to stderr after
// the findings, so `make lint` surfaces analyzer cost regressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"silofuse/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall-time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: silofuse-vet [-list] [-stats] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "silofuse-vet: %v\n", err)
		os.Exit(2)
	}
	diags, perAnalyzer := analysis.RunTimed(analyzers, pkgs)
	absRoot, _ := filepath.Abs(root)
	for _, d := range diags {
		if rel, err := filepath.Rel(absRoot, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%-14s %9s %12s\n", "analyzer", "findings", "wall-time")
		for _, s := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "%-14s %9d %12s\n", s.Name, s.Findings, s.Elapsed.Round(time.Microsecond))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "silofuse-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
