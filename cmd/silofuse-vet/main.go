// Command silofuse-vet runs the repository's determinism and hot-path
// analyzers (internal/analysis) over a module tree and reports findings as
//
//	file:line:col: analyzer: message
//
// It exits 0 on a clean tree, 1 when any analyzer reports a diagnostic, and
// 2 on load/type-check failure. `make lint` runs it alongside go vet and
// gofmt -l, and the internal/analysis self-check test runs it over this
// repository itself, so the tree must stay clean.
//
// Usage:
//
//	silofuse-vet [-list] [dir]
//
// dir defaults to the current directory and must contain go.mod.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"silofuse/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: silofuse-vet [-list] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "silofuse-vet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(analyzers, pkgs)
	absRoot, _ := filepath.Abs(root)
	for _, d := range diags {
		if rel, err := filepath.Rel(absRoot, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "silofuse-vet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
