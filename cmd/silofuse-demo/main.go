// Command silofuse-demo runs the full cross-silo protocol over real TCP
// sockets on loopback: a coordinator hub and M client peers exchange the
// stacked-training and distributed-synthesis messages of Algorithms 1 and 2,
// and the demo prints the measured wire traffic — demonstrating that
// SiloFuse's single communication round is a property of the protocol, not
// of an in-process simulation.
//
// Usage:
//
//	silofuse-demo -dataset loan -clients 3 -rows 600
package main

import (
	"flag"
	"fmt"
	"os"

	"silofuse"
)

func main() {
	dataset := flag.String("dataset", "loan", "benchmark dataset name")
	clients := flag.Int("clients", 3, "number of client silos")
	rows := flag.Int("rows", 600, "training rows")
	synth := flag.Int("synth", 100, "synthetic rows to generate")
	iters := flag.Int("iters", 300, "training iterations per phase")
	flag.Parse()

	if err := run(*dataset, *clients, *rows, *synth, *iters); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(dataset string, clients, rows, synthRows, iters int) error {
	spec, err := silofuse.DatasetByName(dataset)
	if err != nil {
		return err
	}
	train := spec.Generate(rows, 1)

	hub, err := silofuse.NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer hub.Close()
	fmt.Printf("coordinator hub listening on %s\n", hub.Addr())

	peers := make(map[string]*silofuse.TCPPeer, clients)
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("c%d", i)
		p, err := silofuse.DialHub(name, hub.Addr())
		if err != nil {
			return err
		}
		defer p.Close()
		peers[name] = p
		fmt.Printf("client %s connected\n", name)
	}

	bus := &routedBus{hub: hub, peers: peers}
	opts := silofuse.FastOptions()
	opts.AEIters = iters
	opts.DiffIters = iters
	cfg := silofuse.PipelineConfig{
		Clients: clients,
		AE:      silofuse.AutoencoderConfig{Hidden: opts.AEHidden, Embed: opts.AEEmbed, LR: opts.LR},
		Diff: silofuse.DiffusionConfig{
			Hidden: opts.DiffHidden, Depth: opts.DiffDepth, TimeDim: opts.DiffTimeDim,
			T: opts.T, LR: opts.LR, Dropout: 0.01,
		},
		AEIters:    opts.AEIters,
		DiffIters:  opts.DiffIters,
		Batch:      opts.Batch,
		SynthSteps: opts.SynthSteps,
		Seed:       1,
	}
	pipe, err := silofuse.NewPipeline(bus, train, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\n== Algorithm 1: stacked training (%d AE iters, %d DDPM iters) ==\n", cfg.AEIters, cfg.DiffIters)
	aeLoss, diffLoss, err := pipe.TrainStacked()
	if err != nil {
		return err
	}
	fmt.Printf("autoencoder NLL %.4f, diffusion MSE %.4f\n", aeLoss, diffLoss)
	fmt.Printf("wire bytes after training: %d (one latent upload per client)\n", totalBytes(hub, peers))

	fmt.Printf("\n== Algorithm 2: distributed synthesis (%d rows) ==\n", synthRows)
	parts, err := pipe.SynthesizePartitioned(0, synthRows, true)
	if err != nil {
		return err
	}
	for i, p := range parts {
		fmt.Printf("client c%d holds synthetic partition: %d rows x %d features\n", i, p.Rows(), p.Schema.NumColumns())
	}
	fmt.Printf("wire bytes after synthesis: %d\n", totalBytes(hub, peers))

	joined, err := silofuse.JoinVertical(pipe.Schema, pipe.Parts, parts)
	if err != nil {
		return err
	}
	rep, err := silofuse.Resemblance(train, joined, silofuse.DefaultResemblanceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("\njoined synthetic resemblance: %.1f/100\n", rep.Score)
	return nil
}

// totalBytes sums measured wire bytes across the hub and every peer (each
// endpoint counts only what it writes to its socket).
func totalBytes(hub *silofuse.TCPHub, peers map[string]*silofuse.TCPPeer) int64 {
	total := hub.Stats().Bytes
	for _, p := range peers {
		total += p.Stats().Bytes
	}
	return total
}

// routedBus routes each party's traffic through its own TCP endpoint.
type routedBus struct {
	hub   *silofuse.TCPHub
	peers map[string]*silofuse.TCPPeer
}

func (r *routedBus) Send(e *silofuse.Envelope) error {
	if p, ok := r.peers[e.From]; ok {
		return p.Send(e)
	}
	return r.hub.Send(e)
}

func (r *routedBus) Recv(to string) (*silofuse.Envelope, error) {
	if p, ok := r.peers[to]; ok {
		return p.Recv(to)
	}
	return r.hub.Recv(to)
}

func (r *routedBus) Stats() silofuse.TransportStats { return r.hub.Stats() }
