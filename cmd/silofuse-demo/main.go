// Command silofuse-demo runs the full cross-silo protocol over real TCP
// sockets on loopback: a coordinator hub and M client peers exchange the
// stacked-training and distributed-synthesis messages of Algorithms 1 and 2,
// and the demo prints the measured wire traffic — demonstrating that
// SiloFuse's single communication round is a property of the protocol, not
// of an in-process simulation.
//
// With telemetry enabled the demo is also the distributed-observability
// showcase: every party (the coordinator and each silo) records on its own
// trace lane, message envelopes carry trace context across the sockets, and
// -trace merges everything into one Chrome-trace JSON whose process lanes
// share a single timeline with send→recv flow arrows between them.
//
// Telemetry federates over the same sockets: each client ships registry
// deltas to the coordinator as `telemetry` envelopes at phase boundaries, so
// -listen's /metrics serves the whole fleet with per-party labels and
// -fleet-metrics writes that exposition to a file after the run. Every party
// also keeps a flight recorder (a fixed-size ring of recent operations,
// served live at /debug/flightrecorder); when -chaos-profile injects faults
// and a typed transport error escapes recovery (e.g. -chaos-revive=false
// exhausts the retry budget on a crashed peer), the rings are dumped to
// results/<run>/postmortem/<party>.json for offline analysis with
// silofuse-obs.
//
// Usage:
//
//	silofuse-demo -dataset loan -clients 3 -rows 600
//	silofuse-demo -clients 3 -trace demo.json -run demo -listen 127.0.0.1:8080
//	silofuse-demo -clients 2 -run fleet -fleet-metrics fleet.prom
//	silofuse-demo -clients 2 -run crash -chaos-profile crash -chaos-revive=false
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"silofuse"
)

// config collects the parsed CLI flags.
type config struct {
	dataset            string
	clients            int
	rows, synth, iters int
	tracePath          string
	metrics            bool
	runName            string
	listen             string
	chaosProfile       string
	chaosSeed          int64
	chaosRevive        bool
	wireCodec          string
	computePrecision   string
	fleetMetrics       string
	profilePhases      bool
}

func main() {
	var c config
	flag.StringVar(&c.dataset, "dataset", "loan", "benchmark dataset name")
	flag.IntVar(&c.clients, "clients", 3, "number of client silos")
	flag.IntVar(&c.rows, "rows", 600, "training rows")
	flag.IntVar(&c.synth, "synth", 100, "synthetic rows to generate")
	flag.IntVar(&c.iters, "iters", 300, "training iterations per phase")
	flag.StringVar(&c.tracePath, "trace", "", "write a merged Chrome-trace JSON (one process lane per party) to this path")
	flag.BoolVar(&c.metrics, "metrics", false, "print the Prometheus text exposition to stderr after the run")
	flag.StringVar(&c.runName, "run", "", "write results/<run>/manifest.json and stream results/<run>/events.jsonl")
	flag.StringVar(&c.listen, "listen", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof, /debug/phaseprofiles) on this address during the run")
	flag.StringVar(&c.chaosProfile, "chaos-profile", "", "inject transport faults on top of the TCP links: drop, dup, reorder, delay, corrupt, flaky, blackhole, crash (empty disables)")
	flag.Int64Var(&c.chaosSeed, "chaos-seed", 1, "seed of the deterministic fault schedule (with -chaos-profile)")
	flag.BoolVar(&c.chaosRevive, "chaos-revive", true, "revive crashed peers during phase recovery; =false lets a crash exhaust the retry budget and dump postmortems")
	flag.StringVar(&c.wireCodec, "wire-codec", "f64", "precision tier framing tensor payloads on the wire: f64 (lossless), f32, q8")
	flag.StringVar(&c.computePrecision, "compute-precision", "f64", "kernel precision for sampling and decode (training is always f64): f64 or f32")
	flag.StringVar(&c.fleetMetrics, "fleet-metrics", "", "write the fleet-wide Prometheus exposition (per-party labels) to this file after the run")
	flag.BoolVar(&c.profilePhases, "profile-phases", false, "capture per-phase CPU/heap/mutex/block pprof profiles into results/<run>/profiles (requires -run)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(c config) error {
	spec, err := silofuse.DatasetByName(c.dataset)
	if err != nil {
		return err
	}
	train := spec.Generate(c.rows, 1)

	// One recorder per party over a shared registry: metrics aggregate under
	// their canonical names while each party keeps a private trace lane.
	var coordRec *silofuse.Recorder
	var clientRecs []*silofuse.Recorder
	var agg *silofuse.FleetAggregator
	flights := map[string]*silofuse.FlightRecorder{}
	telemetry := c.tracePath != "" || c.metrics || c.runName != "" || c.listen != "" || c.fleetMetrics != ""
	if telemetry {
		reg := silofuse.NewMetricsRegistry()
		agg = silofuse.NewFleetAggregator()
		coordRec = silofuse.NewPartyRecorder(reg, 1, "coord")
		flights["coord"] = silofuse.NewFlightRecorder(0)
		coordRec.SetFlight(flights["coord"])
		clientRecs = make([]*silofuse.Recorder, c.clients)
		for i := range clientRecs {
			name := fmt.Sprintf("c%d", i)
			clientRecs[i] = silofuse.NewPartyRecorder(reg, 2+i, name)
			flights[name] = silofuse.NewFlightRecorder(0)
			clientRecs[i].SetFlight(flights[name])
		}
	}
	var prof *silofuse.PhaseProfiler
	if c.profilePhases {
		if c.runName == "" {
			return fmt.Errorf("-profile-phases requires -run <name>")
		}
		prof, err = silofuse.NewPhaseProfiler(silofuse.DefaultProfileConfig(filepath.Join("results", c.runName, "profiles")))
		if err != nil {
			return err
		}
		// The coordinator drives the phase boundaries, so its recorder owns
		// the profiler. Close is idempotent; the deferred call flushes the
		// profile index even when the protocol errors out.
		coordRec.SetProfiler(prof)
		defer prof.Close()
	}
	if c.runName != "" {
		ew, err := silofuse.OpenEventLog(filepath.Join("results", c.runName, "events.jsonl"))
		if err != nil {
			return err
		}
		defer ew.Close()
		// All parties stream into the same events.jsonl; the writer
		// serialises concurrent emits.
		coordRec.SetEvents(ew)
		for _, r := range clientRecs {
			r.SetEvents(ew)
		}
		ew.Emit("run-start", map[string]any{
			"run": c.runName, "dataset": c.dataset, "clients": c.clients, "rows": c.rows,
		})
	}

	hub, err := silofuse.NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer hub.Close()
	hub.SetRecorder(coordRec)
	fmt.Printf("coordinator hub listening on %s\n", hub.Addr())

	peers := make(map[string]*silofuse.TCPPeer, c.clients)
	for i := 0; i < c.clients; i++ {
		name := fmt.Sprintf("c%d", i)
		p, err := silofuse.DialHub(name, hub.Addr())
		if err != nil {
			return err
		}
		defer p.Close()
		if clientRecs != nil {
			p.SetRecorder(clientRecs[i])
		}
		peers[name] = p
		stop := p.StartHeartbeat(200 * time.Millisecond)
		defer stop()
		fmt.Printf("client %s connected\n", name)
	}

	if c.listen != "" {
		srv, err := silofuse.StartTelemetry(c.listen, silofuse.TelemetryConfig{
			Rec:           coordRec,
			RunsDir:       "results",
			Fleet:         agg,
			FleetLocal:    "coord",
			Flight:        flights["coord"],
			PhaseProfiles: prof,
			Health: func() map[string]any {
				st := hub.Stats()
				peerInfo := make(map[string]any, c.clients)
				for name, ph := range hub.PeerHealth() {
					peerInfo[name] = map[string]any{
						"connected":     ph.Connected,
						"heartbeats":    ph.Heartbeats,
						"reconnects":    ph.Reconnects,
						"bytes_to_peer": st.BytesByDir["coord->"+name],
					}
				}
				return map[string]any{"binary": "silofuse-demo", "peers": peerInfo}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s (/metrics /healthz /runs /debug/pprof /debug/phaseprofiles)\n", srv.Addr())
	}

	// With a chaos profile the routed TCP bus gains the same fault-injection
	// and reliable-delivery stack the in-process runs use: a seeded ChaosBus
	// under a ResilientBus (retries, dedup, checksums). The CodecBus tops the
	// stack either way, framing tensor payloads at the selected precision
	// tier so every layer below moves the encoded blob.
	var bus silofuse.Bus = &routedBus{hub: hub, peers: peers}
	var cb *silofuse.ChaosBus
	if c.chaosProfile != "" && c.chaosProfile != "none" {
		prof, err := silofuse.ChaosProfileByName(c.chaosProfile)
		if err != nil {
			return err
		}
		cb = silofuse.NewChaosBus(bus, c.chaosSeed, prof)
		bus = silofuse.NewResilientBus(cb, silofuse.DefaultResilientConfig())
		fmt.Printf("chaos profile %q active (seed %d, revive=%v)\n", c.chaosProfile, c.chaosSeed, c.chaosRevive)
	}
	codecID, err := silofuse.WireCodecByName(c.wireCodec)
	if err != nil {
		return err
	}
	wire := silofuse.NewCodecBus(bus, codecID)
	bus = wire
	fmt.Printf("wire codec %s framing tensor payloads\n", codecID)
	opts := silofuse.FastOptions()
	opts.AEIters = c.iters
	opts.DiffIters = c.iters
	if c.computePrecision != "f64" && c.computePrecision != "f32" {
		return fmt.Errorf("unknown compute precision %q (want f64 or f32)", c.computePrecision)
	}
	if c.computePrecision == "f32" {
		fmt.Printf("compute precision f32: sampling and decode on the reduced-precision kernels\n")
	}
	cfg := silofuse.PipelineConfig{
		Clients: c.clients,
		AE: silofuse.AutoencoderConfig{
			Hidden: opts.AEHidden, Embed: opts.AEEmbed, LR: opts.LR,
			DecodePrecision: c.computePrecision,
		},
		Diff: silofuse.DiffusionConfig{
			Hidden: opts.DiffHidden, Depth: opts.DiffDepth, TimeDim: opts.DiffTimeDim,
			T: opts.T, LR: opts.LR, Dropout: 0.01, Precision: c.computePrecision,
		},
		AEIters:    opts.AEIters,
		DiffIters:  opts.DiffIters,
		Batch:      opts.Batch,
		SynthSteps: opts.SynthSteps,
		Seed:       1,
	}
	pipe, err := silofuse.NewPipeline(bus, train, cfg)
	if err != nil {
		return err
	}
	if telemetry {
		if err := pipe.SetPartyRecorders(coordRec, clientRecs); err != nil {
			return err
		}
		// Every party federates its telemetry to the coordinator over the
		// same TCP links the protocol uses; agg serves the fleet-wide
		// /metrics and merged /trace.
		pipe.EnableFederation(agg)
	}

	fmt.Printf("\n== Algorithm 1: stacked training (%d AE iters, %d DDPM iters) ==\n", cfg.AEIters, cfg.DiffIters)
	var aeLoss, diffLoss float64
	if cb != nil {
		rc := silofuse.RecoveryConfig{}
		if c.chaosRevive {
			rc.OnPeerDead = func(peer string) error {
				fmt.Printf("reviving crashed peer %s\n", peer)
				cb.Revive(peer)
				return nil
			}
		}
		aeLoss, diffLoss, _, err = pipe.TrainStackedResilient(rc)
	} else {
		aeLoss, diffLoss, err = pipe.TrainStacked()
	}
	if err != nil {
		return dumpCrash(c, flights, err)
	}
	fmt.Printf("autoencoder NLL %.4f, diffusion MSE %.4f\n", aeLoss, diffLoss)
	fmt.Printf("wire bytes after training: %d (one latent upload per client)\n", totalBytes(hub, peers))

	fmt.Printf("\n== Algorithm 2: distributed synthesis (%d rows) ==\n", c.synth)
	parts, err := pipe.SynthesizePartitioned(0, c.synth, true)
	if err != nil {
		return dumpCrash(c, flights, err)
	}
	for i, p := range parts {
		fmt.Printf("client c%d holds synthetic partition: %d rows x %d features\n", i, p.Rows(), p.Schema.NumColumns())
	}
	fmt.Printf("wire bytes after synthesis: %d\n", totalBytes(hub, peers))
	wrep := wire.WireReport()
	for _, kind := range silofuse.WireReportKinds(wrep) {
		ws := wrep[kind]
		fmt.Printf("wire codec %s %s: %d msgs, %d -> %d B (max err %.3g)\n",
			ws.Codec, kind, ws.Messages, ws.RawBytes, ws.Bytes, ws.MaxErr)
	}

	joined, err := silofuse.JoinVertical(pipe.Schema, pipe.Parts, parts)
	if err != nil {
		return err
	}
	rep, err := silofuse.Resemblance(train, joined, silofuse.DefaultResemblanceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("\njoined synthetic resemblance: %.1f/100\n", rep.Score)
	return writeTelemetry(c, hub, peers, coordRec, clientRecs, agg, prof, rep.Score)
}

// dumpCrash writes every party's flight-recorder ring to
// results/<run>/postmortem/<party>.json when a typed transport failure
// (peer death past the retry budget, a corrupt payload) escapes recovery,
// then returns the original error. Untyped errors and runs without -run
// pass through untouched.
func dumpCrash(c config, flights map[string]*silofuse.FlightRecorder, err error) error {
	if c.runName == "" || len(flights) == 0 ||
		!(errors.Is(err, silofuse.ErrPeerDead) || errors.Is(err, silofuse.ErrCorruptPayload)) {
		return err
	}
	parties := make([]string, 0, len(flights))
	for p := range flights {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	dir := filepath.Join("results", c.runName)
	for _, party := range parties {
		path, derr := silofuse.DumpPostmortem(dir, party, flights[party], err)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			continue
		}
		fmt.Printf("wrote postmortem %s\n", path)
	}
	return err
}

// writeTelemetry emits the merged trace, metrics exposition and run manifest
// once the protocol has finished.
func writeTelemetry(c config, hub *silofuse.TCPHub, peers map[string]*silofuse.TCPPeer,
	coordRec *silofuse.Recorder, clientRecs []*silofuse.Recorder, agg *silofuse.FleetAggregator,
	prof *silofuse.PhaseProfiler, resemblance float64) error {
	if coordRec == nil {
		return nil
	}
	if err := prof.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "profile close:", err)
	}
	if c.fleetMetrics != "" && agg != nil {
		f, err := os.Create(c.fleetMetrics)
		if err != nil {
			return err
		}
		if err := agg.WritePrometheus(f, "coord", coordRec.Snapshot()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote fleet metrics %s (federated parties: %s)\n", c.fleetMetrics, strings.Join(agg.Parties(), " "))
	}
	if c.tracePath != "" {
		// Each party exports its own Chrome trace (as separate processes
		// would); the merge aligns them onto one timeline with a process
		// lane per party, stitched by the envelope flow ids.
		var docs []io.Reader
		for _, r := range append([]*silofuse.Recorder{coordRec}, clientRecs...) {
			var buf bytes.Buffer
			if err := r.Trace.WriteChromeTrace(&buf); err != nil {
				return err
			}
			docs = append(docs, &buf)
		}
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		if err := silofuse.MergeChromeTraces(f, docs...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote merged trace %s (%d process lanes)\n", c.tracePath, 1+len(clientRecs))
	}
	if c.metrics {
		if err := silofuse.WritePrometheus(os.Stderr, coordRec.Snapshot()); err != nil {
			return err
		}
	}
	if c.runName != "" {
		man := silofuse.NewRunManifest(c.runName, 1)
		man.Config["dataset"] = c.dataset
		man.Config["clients"] = c.clients
		man.Config["train_rows"] = c.rows
		man.Config["synth_rows"] = c.synth
		man.Config["iters"] = c.iters
		man.Config["transport"] = "tcp"
		man.FinalMetrics["resemblance"] = resemblance
		// The registry is shared across parties, so one recorder carries the
		// complete metric snapshot and wire counters; per-link byte
		// breakdowns come from each endpoint's own measured stats.
		man.FromRecorder(coordRec)
		if prof != nil {
			man.Profiles = prof.Entries()
		}
		man.FromStats(hub.Stats())
		for _, p := range peers {
			man.FromStats(p.Stats())
		}
		dir := filepath.Join("results", c.runName)
		if err := man.Write(dir); err != nil {
			return err
		}
		fmt.Printf("wrote manifest %s\n", filepath.Join(dir, "manifest.json"))
		coordRec.Events.Emit("run-end", map[string]any{"run": c.runName, "resemblance": resemblance})
	}
	return nil
}

// totalBytes sums measured wire bytes across the hub and every peer (each
// endpoint counts only what it writes to its socket).
func totalBytes(hub *silofuse.TCPHub, peers map[string]*silofuse.TCPPeer) int64 {
	total := hub.Stats().Bytes
	for _, p := range peers {
		total += p.Stats().Bytes
	}
	return total
}

// routedBus routes each party's traffic through its own TCP endpoint.
type routedBus struct {
	hub   *silofuse.TCPHub
	peers map[string]*silofuse.TCPPeer
}

func (r *routedBus) Send(e *silofuse.Envelope) error {
	if p, ok := r.peers[e.From]; ok {
		return p.Send(e)
	}
	return r.hub.Send(e)
}

func (r *routedBus) Recv(to string) (*silofuse.Envelope, error) {
	if p, ok := r.peers[to]; ok {
		return p.Recv(to)
	}
	return r.hub.Recv(to)
}

func (r *routedBus) Stats() silofuse.TransportStats { return r.hub.Stats() }
