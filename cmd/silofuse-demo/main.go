// Command silofuse-demo runs the full cross-silo protocol over real TCP
// sockets on loopback: a coordinator hub and M client peers exchange the
// stacked-training and distributed-synthesis messages of Algorithms 1 and 2,
// and the demo prints the measured wire traffic — demonstrating that
// SiloFuse's single communication round is a property of the protocol, not
// of an in-process simulation.
//
// With telemetry enabled the demo is also the distributed-observability
// showcase: every party (the coordinator and each silo) records on its own
// trace lane, message envelopes carry trace context across the sockets, and
// -trace merges everything into one Chrome-trace JSON whose process lanes
// share a single timeline with send→recv flow arrows between them.
//
// Usage:
//
//	silofuse-demo -dataset loan -clients 3 -rows 600
//	silofuse-demo -clients 3 -trace demo.json -run demo -listen 127.0.0.1:8080
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"silofuse"
)

// config collects the parsed CLI flags.
type config struct {
	dataset            string
	clients            int
	rows, synth, iters int
	tracePath          string
	metrics            bool
	runName            string
	listen             string
}

func main() {
	var c config
	flag.StringVar(&c.dataset, "dataset", "loan", "benchmark dataset name")
	flag.IntVar(&c.clients, "clients", 3, "number of client silos")
	flag.IntVar(&c.rows, "rows", 600, "training rows")
	flag.IntVar(&c.synth, "synth", 100, "synthetic rows to generate")
	flag.IntVar(&c.iters, "iters", 300, "training iterations per phase")
	flag.StringVar(&c.tracePath, "trace", "", "write a merged Chrome-trace JSON (one process lane per party) to this path")
	flag.BoolVar(&c.metrics, "metrics", false, "print the Prometheus text exposition to stderr after the run")
	flag.StringVar(&c.runName, "run", "", "write results/<run>/manifest.json and stream results/<run>/events.jsonl")
	flag.StringVar(&c.listen, "listen", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof) on this address during the run")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(c config) error {
	spec, err := silofuse.DatasetByName(c.dataset)
	if err != nil {
		return err
	}
	train := spec.Generate(c.rows, 1)

	// One recorder per party over a shared registry: metrics aggregate under
	// their canonical names while each party keeps a private trace lane.
	var coordRec *silofuse.Recorder
	var clientRecs []*silofuse.Recorder
	telemetry := c.tracePath != "" || c.metrics || c.runName != "" || c.listen != ""
	if telemetry {
		reg := silofuse.NewMetricsRegistry()
		coordRec = silofuse.NewPartyRecorder(reg, 1, "coord")
		clientRecs = make([]*silofuse.Recorder, c.clients)
		for i := range clientRecs {
			clientRecs[i] = silofuse.NewPartyRecorder(reg, 2+i, fmt.Sprintf("c%d", i))
		}
	}
	if c.runName != "" {
		ew, err := silofuse.OpenEventLog(filepath.Join("results", c.runName, "events.jsonl"))
		if err != nil {
			return err
		}
		defer ew.Close()
		// All parties stream into the same events.jsonl; the writer
		// serialises concurrent emits.
		coordRec.SetEvents(ew)
		for _, r := range clientRecs {
			r.SetEvents(ew)
		}
		ew.Emit("run-start", map[string]any{
			"run": c.runName, "dataset": c.dataset, "clients": c.clients, "rows": c.rows,
		})
	}

	hub, err := silofuse.NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer hub.Close()
	hub.SetRecorder(coordRec)
	fmt.Printf("coordinator hub listening on %s\n", hub.Addr())

	peers := make(map[string]*silofuse.TCPPeer, c.clients)
	for i := 0; i < c.clients; i++ {
		name := fmt.Sprintf("c%d", i)
		p, err := silofuse.DialHub(name, hub.Addr())
		if err != nil {
			return err
		}
		defer p.Close()
		if clientRecs != nil {
			p.SetRecorder(clientRecs[i])
		}
		peers[name] = p
		stop := p.StartHeartbeat(200 * time.Millisecond)
		defer stop()
		fmt.Printf("client %s connected\n", name)
	}

	if c.listen != "" {
		srv, err := silofuse.StartTelemetry(c.listen, silofuse.TelemetryConfig{
			Rec:     coordRec,
			RunsDir: "results",
			Health: func() map[string]any {
				st := hub.Stats()
				peerInfo := make(map[string]any, c.clients)
				for name, ph := range hub.PeerHealth() {
					peerInfo[name] = map[string]any{
						"connected":     ph.Connected,
						"heartbeats":    ph.Heartbeats,
						"reconnects":    ph.Reconnects,
						"bytes_to_peer": st.BytesByDir["coord->"+name],
					}
				}
				return map[string]any{"binary": "silofuse-demo", "peers": peerInfo}
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s (/metrics /healthz /runs /debug/pprof)\n", srv.Addr())
	}

	bus := &routedBus{hub: hub, peers: peers}
	opts := silofuse.FastOptions()
	opts.AEIters = c.iters
	opts.DiffIters = c.iters
	cfg := silofuse.PipelineConfig{
		Clients: c.clients,
		AE:      silofuse.AutoencoderConfig{Hidden: opts.AEHidden, Embed: opts.AEEmbed, LR: opts.LR},
		Diff: silofuse.DiffusionConfig{
			Hidden: opts.DiffHidden, Depth: opts.DiffDepth, TimeDim: opts.DiffTimeDim,
			T: opts.T, LR: opts.LR, Dropout: 0.01,
		},
		AEIters:    opts.AEIters,
		DiffIters:  opts.DiffIters,
		Batch:      opts.Batch,
		SynthSteps: opts.SynthSteps,
		Seed:       1,
	}
	pipe, err := silofuse.NewPipeline(bus, train, cfg)
	if err != nil {
		return err
	}
	if telemetry {
		if err := pipe.SetPartyRecorders(coordRec, clientRecs); err != nil {
			return err
		}
	}

	fmt.Printf("\n== Algorithm 1: stacked training (%d AE iters, %d DDPM iters) ==\n", cfg.AEIters, cfg.DiffIters)
	aeLoss, diffLoss, err := pipe.TrainStacked()
	if err != nil {
		return err
	}
	fmt.Printf("autoencoder NLL %.4f, diffusion MSE %.4f\n", aeLoss, diffLoss)
	fmt.Printf("wire bytes after training: %d (one latent upload per client)\n", totalBytes(hub, peers))

	fmt.Printf("\n== Algorithm 2: distributed synthesis (%d rows) ==\n", c.synth)
	parts, err := pipe.SynthesizePartitioned(0, c.synth, true)
	if err != nil {
		return err
	}
	for i, p := range parts {
		fmt.Printf("client c%d holds synthetic partition: %d rows x %d features\n", i, p.Rows(), p.Schema.NumColumns())
	}
	fmt.Printf("wire bytes after synthesis: %d\n", totalBytes(hub, peers))

	joined, err := silofuse.JoinVertical(pipe.Schema, pipe.Parts, parts)
	if err != nil {
		return err
	}
	rep, err := silofuse.Resemblance(train, joined, silofuse.DefaultResemblanceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("\njoined synthetic resemblance: %.1f/100\n", rep.Score)
	return writeTelemetry(c, hub, peers, coordRec, clientRecs, rep.Score)
}

// writeTelemetry emits the merged trace, metrics exposition and run manifest
// once the protocol has finished.
func writeTelemetry(c config, hub *silofuse.TCPHub, peers map[string]*silofuse.TCPPeer,
	coordRec *silofuse.Recorder, clientRecs []*silofuse.Recorder, resemblance float64) error {
	if coordRec == nil {
		return nil
	}
	if c.tracePath != "" {
		// Each party exports its own Chrome trace (as separate processes
		// would); the merge aligns them onto one timeline with a process
		// lane per party, stitched by the envelope flow ids.
		var docs []io.Reader
		for _, r := range append([]*silofuse.Recorder{coordRec}, clientRecs...) {
			var buf bytes.Buffer
			if err := r.Trace.WriteChromeTrace(&buf); err != nil {
				return err
			}
			docs = append(docs, &buf)
		}
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		if err := silofuse.MergeChromeTraces(f, docs...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote merged trace %s (%d process lanes)\n", c.tracePath, 1+len(clientRecs))
	}
	if c.metrics {
		if err := silofuse.WritePrometheus(os.Stderr, coordRec.Snapshot()); err != nil {
			return err
		}
	}
	if c.runName != "" {
		man := silofuse.NewRunManifest(c.runName, 1)
		man.Config["dataset"] = c.dataset
		man.Config["clients"] = c.clients
		man.Config["train_rows"] = c.rows
		man.Config["synth_rows"] = c.synth
		man.Config["iters"] = c.iters
		man.Config["transport"] = "tcp"
		man.FinalMetrics["resemblance"] = resemblance
		// The registry is shared across parties, so one recorder carries the
		// complete metric snapshot and wire counters; per-link byte
		// breakdowns come from each endpoint's own measured stats.
		man.FromRecorder(coordRec)
		man.FromStats(hub.Stats())
		for _, p := range peers {
			man.FromStats(p.Stats())
		}
		dir := filepath.Join("results", c.runName)
		if err := man.Write(dir); err != nil {
			return err
		}
		fmt.Printf("wrote manifest %s\n", filepath.Join(dir, "manifest.json"))
		coordRec.Events.Emit("run-end", map[string]any{"run": c.runName, "resemblance": resemblance})
	}
	return nil
}

// totalBytes sums measured wire bytes across the hub and every peer (each
// endpoint counts only what it writes to its socket).
func totalBytes(hub *silofuse.TCPHub, peers map[string]*silofuse.TCPPeer) int64 {
	total := hub.Stats().Bytes
	for _, p := range peers {
		total += p.Stats().Bytes
	}
	return total
}

// routedBus routes each party's traffic through its own TCP endpoint.
type routedBus struct {
	hub   *silofuse.TCPHub
	peers map[string]*silofuse.TCPPeer
}

func (r *routedBus) Send(e *silofuse.Envelope) error {
	if p, ok := r.peers[e.From]; ok {
		return p.Send(e)
	}
	return r.hub.Send(e)
}

func (r *routedBus) Recv(to string) (*silofuse.Envelope, error) {
	if p, ok := r.peers[to]; ok {
		return p.Recv(to)
	}
	return r.hub.Recv(to)
}

func (r *routedBus) Stats() silofuse.TransportStats { return r.hub.Stats() }
