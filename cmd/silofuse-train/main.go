// Command silofuse-train trains a synthesizer on one of the benchmark
// datasets (or a CSV matching a benchmark schema) and writes a synthetic
// CSV, optionally keeping the output vertically partitioned (one CSV per
// client).
//
// Usage:
//
//	silofuse-train -dataset loan -model silofuse -rows 1000 -out synth.csv
//	silofuse-train -dataset adult -model tabddpm -out synth.csv
//	silofuse-train -dataset loan -partitioned -out synth  # synth.c0.csv ...
//	silofuse-train -dataset loan -trace trace.json -metrics -run demo
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"silofuse"
)

// config collects the parsed CLI flags.
type config struct {
	dataset, in, model string
	rows, trainRows    int
	clients, iters     int
	out                string
	partitioned        bool
	seed               int64
	saveModel          string
	loadModel          string
	tracePath          string
	metrics            bool
	runName            string
	listen             string
	chaosProfile       string
	chaosSeed          int64
	profilePhases      bool
	debugSpin          int
	wireCodec          string
	computePrecision   string
	trainWorkers       int
	trainShards        int
	batchSample        bool
}

func main() {
	var c config
	flag.StringVar(&c.dataset, "dataset", "loan", "benchmark dataset name")
	flag.StringVar(&c.in, "in", "", "optional input CSV (must match the dataset's schema); default: simulated data")
	flag.StringVar(&c.model, "model", "silofuse", "synthesizer registry name")
	flag.IntVar(&c.rows, "rows", 1000, "synthetic rows to generate")
	flag.IntVar(&c.trainRows, "train-rows", 2000, "training rows when simulating input data")
	flag.IntVar(&c.clients, "clients", 4, "silo count for distributed models")
	flag.IntVar(&c.iters, "iters", 0, "override training iterations (AE and diffusion)")
	flag.StringVar(&c.out, "out", "synthetic.csv", "output CSV path (or prefix with -partitioned)")
	flag.BoolVar(&c.partitioned, "partitioned", false, "keep output vertically partitioned (silofuse only)")
	flag.Int64Var(&c.seed, "seed", 1, "random seed")
	flag.StringVar(&c.saveModel, "save", "", "persist the trained model state to this path (silofuse only)")
	flag.StringVar(&c.loadModel, "load", "", "restore model state from this path instead of training (silofuse only)")
	flag.StringVar(&c.tracePath, "trace", "", "write a Chrome-trace JSON of the run to this path")
	flag.BoolVar(&c.metrics, "metrics", false, "print the metrics text exposition to stderr after the run")
	flag.StringVar(&c.runName, "run", "", "write results/<run>/manifest.json with config, phases and wire stats, and stream results/<run>/events.jsonl")
	flag.StringVar(&c.listen, "listen", "", "serve live telemetry (/metrics, /healthz, /runs, /debug/pprof, /debug/phaseprofiles) on this address during the run")
	flag.StringVar(&c.chaosProfile, "chaos-profile", "", "inject transport faults during distributed training: drop, dup, reorder, delay, corrupt, flaky, blackhole, crash (empty disables)")
	flag.Int64Var(&c.chaosSeed, "chaos-seed", 1, "seed of the deterministic fault schedule (with -chaos-profile)")
	flag.BoolVar(&c.profilePhases, "profile-phases", false, "capture per-phase CPU/heap/mutex/block pprof profiles into results/<run>/profiles (requires -run)")
	flag.IntVar(&c.debugSpin, "debug-spin", 0, "inject N iterations of deterministic busy-work per diffusion step (wall time only; for profiling attribution tests)")
	flag.StringVar(&c.wireCodec, "wire-codec", "f64", "precision tier framing tensor payloads on the wire: none (gob), f64 (lossless raw, default), f32, q8")
	flag.StringVar(&c.computePrecision, "compute-precision", "f64", "kernel precision for sampling and decode (training is always f64): f64 or f32")
	flag.IntVar(&c.trainWorkers, "train-workers", 0, "train the diffusion model data-parallel across N workers with a bit-identical all-reduce (0 = single-process training; silofuse only)")
	flag.IntVar(&c.trainShards, "train-shards", 0, "logical shard count for -train-workers (0 = default; the shard count, not the worker count, fixes the reduction)")
	flag.BoolVar(&c.batchSample, "batch-sample", false, "route synthesis through the batched sampler: concurrent requests stack into one denoising pass (silofuse only)")
	flag.Parse()

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(c config) error {
	spec, err := silofuse.DatasetByName(c.dataset)
	if err != nil {
		return err
	}
	var train *silofuse.Table
	if c.in != "" {
		f, err := os.Open(c.in)
		if err != nil {
			return err
		}
		defer f.Close()
		train, err = silofuse.ReadCSV(f, spec.Schema())
		if err != nil {
			return fmt.Errorf("read %s: %w", c.in, err)
		}
	} else {
		if c.trainRows > spec.PaperRows {
			c.trainRows = spec.PaperRows
		}
		train = spec.Generate(c.trainRows, c.seed)
	}

	opts := silofuse.DefaultOptions()
	opts.Seed = c.seed
	opts.Clients = c.clients
	if c.iters > 0 {
		opts.AEIters = c.iters
		opts.DiffIters = c.iters
		opts.GANIters = c.iters
	}
	if c.chaosProfile != "" {
		if _, err := silofuse.ChaosProfileByName(c.chaosProfile); err != nil {
			return err
		}
		opts.ChaosProfile = c.chaosProfile
		opts.ChaosSeed = c.chaosSeed
	}
	opts.DebugSpin = c.debugSpin
	if _, err := silofuse.WireCodecByName(c.wireCodec); err != nil {
		return err
	}
	opts.WireCodec = c.wireCodec
	if c.computePrecision != "" && c.computePrecision != "f64" && c.computePrecision != "f32" {
		return fmt.Errorf("unknown compute precision %q (want f64 or f32)", c.computePrecision)
	}
	opts.ComputePrecision = c.computePrecision
	if c.trainWorkers < 0 || c.trainShards < 0 {
		return fmt.Errorf("-train-workers and -train-shards must be >= 0")
	}
	opts.TrainWorkers = c.trainWorkers
	opts.TrainShards = c.trainShards
	opts.BatchSampling = c.batchSample
	var rec *silofuse.Recorder
	if c.tracePath != "" || c.metrics || c.runName != "" || c.listen != "" {
		rec = silofuse.NewRecorder()
		// The flight recorder keeps the last operations in a fixed ring; on a
		// typed transport failure the tail is dumped as a postmortem.
		rec.SetFlight(silofuse.NewFlightRecorder(0))
		opts.Recorder = rec
	}
	var prof *silofuse.PhaseProfiler
	if c.profilePhases {
		if c.runName == "" {
			return fmt.Errorf("-profile-phases requires -run <name>")
		}
		var err error
		prof, err = silofuse.NewPhaseProfiler(silofuse.DefaultProfileConfig(filepath.Join("results", c.runName, "profiles")))
		if err != nil {
			return err
		}
		rec.SetProfiler(prof)
		// Close is idempotent; the deferred call flushes the profile index
		// even when the run errors out before writeTelemetry.
		defer prof.Close()
	}
	if c.runName != "" {
		ew, err := silofuse.OpenEventLog(filepath.Join("results", c.runName, "events.jsonl"))
		if err != nil {
			return err
		}
		defer ew.Close()
		rec.SetEvents(ew)
		ew.Emit("run-start", map[string]any{
			"run": c.runName, "dataset": c.dataset, "model": c.model,
			"clients": c.clients, "seed": c.seed,
		})
	}
	if c.listen != "" {
		srv, err := silofuse.StartTelemetry(c.listen, silofuse.TelemetryConfig{
			Rec:           rec,
			RunsDir:       "results",
			PhaseProfiles: prof,
			Health: func() map[string]any {
				return map[string]any{"binary": "silofuse-train", "dataset": c.dataset, "model": c.model}
			},
			Flight: rec.Flight,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry listening on http://%s (/metrics /healthz /runs /debug/pprof /debug/phaseprofiles)\n", srv.Addr())
	}
	m, err := silofuse.NewSynthesizer(c.model, opts)
	if err != nil {
		return err
	}
	if c.loadModel != "" {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-load requires the silofuse model, got %s", m.Name())
		}
		f, err := os.Open(c.loadModel)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sf.Load(train, f); err != nil {
			return err
		}
		fmt.Printf("restored %s state from %s\n", m.Name(), c.loadModel)
	} else {
		fmt.Printf("training %s on %s (%d rows, %d columns)...\n", m.Name(), c.dataset, train.Rows(), train.Schema.NumColumns())
		if err := m.Fit(train); err != nil {
			return dumpCrash(c, rec, err)
		}
	}
	if c.saveModel != "" {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-save requires the silofuse model, got %s", m.Name())
		}
		f, err := os.Create(c.saveModel)
		if err != nil {
			return err
		}
		if err := sf.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model state to %s\n", c.saveModel)
	}

	final := map[string]float64{}
	if c.partitioned {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-partitioned requires the silofuse model, got %s", m.Name())
		}
		parts, err := sf.SamplePartitioned(c.rows)
		if err != nil {
			return dumpCrash(c, rec, err)
		}
		for i, p := range parts {
			path := fmt.Sprintf("%s.c%d.csv", c.out, i)
			if err := writeCSV(path, p); err != nil {
				return err
			}
			fmt.Printf("client %d: wrote %s (%d columns)\n", i, path, p.Schema.NumColumns())
		}
		return writeTelemetry(c, m, rec, prof, final)
	}

	synth, err := m.Sample(c.rows)
	if err != nil {
		return dumpCrash(c, rec, err)
	}
	if err := writeCSV(c.out, synth); err != nil {
		return err
	}
	rep, err := silofuse.Resemblance(train, synth, silofuse.DefaultResemblanceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows); resemblance %.1f/100\n", c.out, synth.Rows(), rep.Score)
	final["resemblance"] = rep.Score
	return writeTelemetry(c, m, rec, prof, final)
}

// dumpCrash writes the flight-recorder tail to
// results/<run>/postmortem/local.json when a typed transport failure (peer
// death past the retry budget, a corrupt payload) escapes recovery, then
// returns the original error.
func dumpCrash(c config, rec *silofuse.Recorder, err error) error {
	if rec == nil || c.runName == "" ||
		!(errors.Is(err, silofuse.ErrPeerDead) || errors.Is(err, silofuse.ErrCorruptPayload)) {
		return err
	}
	path, derr := silofuse.DumpPostmortem(filepath.Join("results", c.runName), "local", rec.Flight, err)
	if derr != nil {
		fmt.Fprintln(os.Stderr, derr)
	} else {
		fmt.Printf("wrote postmortem %s\n", path)
	}
	return err
}

// writeTelemetry emits the optional trace file, metrics exposition and run
// manifest once the run has finished.
func writeTelemetry(c config, m silofuse.Synthesizer, rec *silofuse.Recorder, prof *silofuse.PhaseProfiler, final map[string]float64) error {
	if rec == nil {
		return nil
	}
	if err := prof.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "profile close:", err)
	}
	if c.tracePath != "" {
		f, err := os.Create(c.tracePath)
		if err != nil {
			return err
		}
		if err := rec.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", c.tracePath)
	}
	if c.metrics {
		if err := rec.Reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if c.runName != "" {
		man := silofuse.NewRunManifest(c.runName, c.seed)
		man.Config["dataset"] = c.dataset
		man.Config["model"] = c.model
		man.Config["clients"] = c.clients
		man.Config["train_rows"] = c.trainRows
		man.Config["synth_rows"] = c.rows
		if c.iters > 0 {
			man.Config["iters"] = c.iters
		}
		for k, v := range final {
			man.FinalMetrics[k] = v
		}
		man.FromRecorder(rec)
		if prof != nil {
			man.Profiles = prof.Entries()
		}
		if cs, ok := m.(interface {
			CommStats() silofuse.TransportStats
		}); ok {
			man.FromStats(cs.CommStats())
		}
		dir := filepath.Join("results", c.runName)
		if err := man.Write(dir); err != nil {
			return err
		}
		fmt.Printf("wrote manifest %s\n", filepath.Join(dir, "manifest.json"))
	}
	if rec.Events != nil {
		fields := map[string]any{"run": c.runName}
		for k, v := range final {
			fields[k] = v
		}
		rec.Events.Emit("run-end", fields)
	}
	return nil
}

func writeCSV(path string, t *silofuse.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
