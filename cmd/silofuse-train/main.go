// Command silofuse-train trains a synthesizer on one of the benchmark
// datasets (or a CSV matching a benchmark schema) and writes a synthetic
// CSV, optionally keeping the output vertically partitioned (one CSV per
// client).
//
// Usage:
//
//	silofuse-train -dataset loan -model silofuse -rows 1000 -out synth.csv
//	silofuse-train -dataset adult -model tabddpm -out synth.csv
//	silofuse-train -dataset loan -partitioned -out synth  # synth.c0.csv ...
package main

import (
	"flag"
	"fmt"
	"os"

	"silofuse"
)

func main() {
	dataset := flag.String("dataset", "loan", "benchmark dataset name")
	in := flag.String("in", "", "optional input CSV (must match the dataset's schema); default: simulated data")
	model := flag.String("model", "silofuse", "synthesizer registry name")
	rows := flag.Int("rows", 1000, "synthetic rows to generate")
	trainRows := flag.Int("train-rows", 2000, "training rows when simulating input data")
	clients := flag.Int("clients", 4, "silo count for distributed models")
	iters := flag.Int("iters", 0, "override training iterations (AE and diffusion)")
	out := flag.String("out", "synthetic.csv", "output CSV path (or prefix with -partitioned)")
	partitioned := flag.Bool("partitioned", false, "keep output vertically partitioned (silofuse only)")
	seed := flag.Int64("seed", 1, "random seed")
	saveModel := flag.String("save", "", "persist the trained model state to this path (silofuse only)")
	loadModel := flag.String("load", "", "restore model state from this path instead of training (silofuse only)")
	flag.Parse()

	if err := run(*dataset, *in, *model, *rows, *trainRows, *clients, *iters, *out, *partitioned, *seed, *saveModel, *loadModel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(dataset, in, model string, rows, trainRows, clients, iters int, out string, partitioned bool, seed int64, saveModel, loadModel string) error {
	spec, err := silofuse.DatasetByName(dataset)
	if err != nil {
		return err
	}
	var train *silofuse.Table
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		train, err = silofuse.ReadCSV(f, spec.Schema())
		if err != nil {
			return fmt.Errorf("read %s: %w", in, err)
		}
	} else {
		if trainRows > spec.PaperRows {
			trainRows = spec.PaperRows
		}
		train = spec.Generate(trainRows, seed)
	}

	opts := silofuse.DefaultOptions()
	opts.Seed = seed
	opts.Clients = clients
	if iters > 0 {
		opts.AEIters = iters
		opts.DiffIters = iters
		opts.GANIters = iters
	}
	m, err := silofuse.NewSynthesizer(model, opts)
	if err != nil {
		return err
	}
	if loadModel != "" {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-load requires the silofuse model, got %s", m.Name())
		}
		f, err := os.Open(loadModel)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sf.Load(train, f); err != nil {
			return err
		}
		fmt.Printf("restored %s state from %s\n", m.Name(), loadModel)
	} else {
		fmt.Printf("training %s on %s (%d rows, %d columns)...\n", m.Name(), dataset, train.Rows(), train.Schema.NumColumns())
		if err := m.Fit(train); err != nil {
			return err
		}
	}
	if saveModel != "" {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-save requires the silofuse model, got %s", m.Name())
		}
		f, err := os.Create(saveModel)
		if err != nil {
			return err
		}
		if err := sf.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model state to %s\n", saveModel)
	}

	if partitioned {
		sf, ok := m.(*silofuse.SiloFuseModel)
		if !ok {
			return fmt.Errorf("-partitioned requires the silofuse model, got %s", m.Name())
		}
		parts, err := sf.SamplePartitioned(rows)
		if err != nil {
			return err
		}
		for i, p := range parts {
			path := fmt.Sprintf("%s.c%d.csv", out, i)
			if err := writeCSV(path, p); err != nil {
				return err
			}
			fmt.Printf("client %d: wrote %s (%d columns)\n", i, path, p.Schema.NumColumns())
		}
		return nil
	}

	synth, err := m.Sample(rows)
	if err != nil {
		return err
	}
	if err := writeCSV(out, synth); err != nil {
		return err
	}
	rep, err := silofuse.Resemblance(train, synth, silofuse.DefaultResemblanceConfig())
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows); resemblance %.1f/100\n", out, synth.Rows(), rep.Score)
	return nil
}

func writeCSV(path string, t *silofuse.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
