package silofuse

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade exactly as README shows:
// dataset → SiloFuse → sample → metrics → privacy, plus CSV round trip.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec, err := DatasetByName("loan")
	if err != nil {
		t.Fatal(err)
	}
	full := spec.Generate(400, 1)
	train, test := full.Split(rand.New(rand.NewSource(1)), 0.25)

	opts := FastOptions()
	opts.Clients = 2
	opts.AEIters = 80
	opts.DiffIters = 120
	model := NewSiloFuse(opts)
	if err := model.Fit(train); err != nil {
		t.Fatal(err)
	}
	if model.CommStats().Messages != 2 {
		t.Fatalf("messages = %d", model.CommStats().Messages)
	}
	synth, err := model.Sample(200)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Resemblance(train, synth, DefaultResemblanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 0 || res.Score > 100 {
		t.Fatalf("resemblance out of range: %v", res.Score)
	}
	util, err := Utility(train, synth, test, DefaultUtilityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if util.Score < 0 || util.Score > 100 {
		t.Fatalf("utility out of range: %v", util.Score)
	}
	priv, err := EvaluatePrivacy(train, synth, DefaultPrivacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if priv.Score < 0 || priv.Score > 100 {
		t.Fatalf("privacy out of range: %v", priv.Score)
	}

	var buf bytes.Buffer
	if err := synth.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, synth.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != synth.Rows() {
		t.Fatal("csv round trip lost rows")
	}
}

// TestPublicAPICustomSchema builds a user-defined table through the facade
// and runs every constructor in the registry against it.
func TestPublicAPICustomSchema(t *testing.T) {
	schema := MustSchema([]Column{
		{Name: "x", Kind: Numeric},
		{Name: "k", Kind: Categorical, Cardinality: 3},
		{Name: "y", Kind: Numeric},
	})
	rng := rand.New(rand.NewSource(2))
	data := NewMatrix(120, 3)
	for i := 0; i < 120; i++ {
		data.Set(i, 0, rng.NormFloat64())
		data.Set(i, 1, float64(rng.Intn(3)))
		data.Set(i, 2, rng.NormFloat64())
	}
	tb, err := NewTable(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SynthesizerNames() {
		opts := FastOptions()
		opts.Clients = 2
		opts.AEIters, opts.DiffIters, opts.GANIters = 30, 30, 30
		opts.Batch = 32
		m, err := NewSynthesizer(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(tb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := m.Sample(10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Rows() != 10 {
			t.Fatalf("%s: rows = %d", name, out.Rows())
		}
	}
}

// TestDatasetsExportMatchesInternal asserts the facade exposes all nine
// datasets.
func TestDatasetsExport(t *testing.T) {
	if len(Datasets) != 9 || len(DatasetNames()) != 9 {
		t.Fatalf("datasets = %d", len(Datasets))
	}
}
