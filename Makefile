GO ?= go
BENCHFLAGS ?= -benchmem

.PHONY: build vet lint lint-fixtures test test-chaos test-ddp race ci bench bench-smoke bench-baseline bench-kernels codec-smoke obs-smoke profile profile-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own determinism/hot-path/concurrency analyzers
# (silofuse-vet) plus go vet and a gofmt check. The tree must stay clean:
# silofuse-vet exits nonzero on any finding, and unformatted files fail the
# gofmt step. -stats prints per-analyzer finding counts and wall-time so an
# analyzer that suddenly gets slow or noisy is visible in the CI log.
lint:
	$(GO) run ./cmd/silofuse-vet -stats .
	$(GO) vet ./...
	@unformatted=$$(gofmt -l . | grep -v testdata); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint-fixtures runs only the `// want` fixture harness: every analyzer's
# expectations under internal/analysis/testdata, without loading the whole
# module tree. CI runs it ahead of the full lint so a broken analyzer fails
# on its own fixtures (seconds) before the self-check over the repo.
lint-fixtures:
	$(GO) test -run 'TestFixtures' -count=1 ./internal/analysis/

test:
	$(GO) test ./...

# test-chaos runs the deterministic fault-injection suite under the race
# detector: the chaos matrix (every fault class against stacked training,
# VFL and synthesis), crash recovery over TCP, and the retransmit byte
# accounting invariants.
test-chaos:
	$(GO) test -race -timeout 20m -run 'Chaos|Resilient|Recovery|Heartbeat' -count=1 ./internal/silo/

# test-ddp runs the data-parallel training proof obligations: the
# equivalence matrix (N in {1,2,3,8} workers x {gaussian, multinomial}
# bit-identical to the single-worker baseline), the grad-traffic chaos
# matrix with exact byte accounting, and the batched-sampling
# bitwise-equality and zero-alloc regression tests.
test-ddp:
	$(GO) test -run 'DDP|SampleBatch|TrainWorkers|Grad' -count=1 ./internal/diffusion/ ./internal/silo/ ./internal/core/

# The transport and telemetry layers are exercised under the race detector;
# the silo package trains real models, so give it a generous timeout. The
# tensor package is included because its worker pool is the one piece of
# hand-rolled concurrency under every training loop; core and experiments
# ride along because they drive the concurrent protocols end to end.
race:
	$(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/... ./internal/tensor/... ./internal/core/... ./internal/experiments/... ./internal/diffusion/...

# bench-smoke runs a tiny end-to-end bench invocation, validates the perf
# snapshot it writes, and gates the fresh snapshot against the committed
# baseline (per-metric tolerances, per-phase delta table), so CI catches both
# a broken bench pipeline and a perf/loss regression without paying for a
# full benchmark run. Regenerate the baseline with `make bench-baseline`.
bench-smoke:
	$(GO) run ./cmd/silofuse-bench -exp fig10,fig10x,ddp -datasets abalone -rows 300 -scale fast -bench-json /tmp/BENCH_silofuse_smoke.json -bench-baseline BENCH_silofuse.json
	$(GO) run ./cmd/silofuse-bench -check-bench /tmp/BENCH_silofuse_smoke.json

# bench-baseline refreshes the committed regression baseline with the exact
# bench-smoke invocation, so the gate always compares identical configs.
bench-baseline:
	$(GO) run ./cmd/silofuse-bench -exp fig10,fig10x,ddp -datasets abalone -rows 300 -scale fast -bench-json BENCH_silofuse.json

# codec-smoke exercises the precision-tiered wire codecs end to end:
#   1. the default f64 raw framing must produce bit-identical synthetic data
#      to the historical gob framing — codec choice is pure transport;
#   2. an f32-codec + f32-compute run must complete and emit data (tolerance
#      bounds are pinned by the unit tests; this is the CLI path);
#   3. the fig10x sweep must write a bench snapshot whose wire section
#      carries f32 and q8 accounting, with reconstruction errors recorded,
#      for both the latent path (silofuse) and activations/gradients (e2e).
CODEC_SMOKE_DIR ?= /tmp/silofuse_codec_smoke
codec-smoke:
	rm -rf $(CODEC_SMOKE_DIR) && mkdir -p $(CODEC_SMOKE_DIR)
	$(GO) build -o $(CODEC_SMOKE_DIR)/silofuse-train ./cmd/silofuse-train
	$(GO) build -o $(CODEC_SMOKE_DIR)/silofuse-bench ./cmd/silofuse-bench
	cd $(CODEC_SMOKE_DIR) && ./silofuse-train -dataset abalone -clients 2 -train-rows 300 -iters 60 -rows 50 -wire-codec none -out gob.csv
	cd $(CODEC_SMOKE_DIR) && ./silofuse-train -dataset abalone -clients 2 -train-rows 300 -iters 60 -rows 50 -wire-codec f64 -out f64.csv
	cmp $(CODEC_SMOKE_DIR)/gob.csv $(CODEC_SMOKE_DIR)/f64.csv
	cd $(CODEC_SMOKE_DIR) && ./silofuse-train -dataset abalone -clients 2 -train-rows 300 -iters 60 -rows 50 -wire-codec f32 -compute-precision f32 -out f32.csv
	test -s $(CODEC_SMOKE_DIR)/f32.csv
	cd $(CODEC_SMOKE_DIR) && ./silofuse-bench -exp fig10x -datasets abalone -rows 300 -scale fast -bench-json BENCH_codec.json
	grep -q '"f32/latents"' $(CODEC_SMOKE_DIR)/BENCH_codec.json
	grep -q '"q8/activation"' $(CODEC_SMOKE_DIR)/BENCH_codec.json
	grep -q '"max_err"' $(CODEC_SMOKE_DIR)/BENCH_codec.json

# obs-smoke exercises the fleet observability stack end to end:
#   1. a healthy federated demo run over the TCP hub must write a fleet-wide
#      Prometheus exposition with per-party labels;
#   2. a crash-profile run with peer revival disabled must exhaust the retry
#      budget, exit non-zero, and leave parseable flight-recorder postmortems
#      for every party;
#   3. silofuse-obs must summarize the (possibly truncated) event stream,
#      flag an injected throughput regression with a non-zero exit, and pass
#      the committed bench baseline cleanly.
OBS_SMOKE_DIR ?= /tmp/silofuse_obs_smoke
obs-smoke:
	rm -rf $(OBS_SMOKE_DIR) && mkdir -p $(OBS_SMOKE_DIR)
	$(GO) build -o $(OBS_SMOKE_DIR)/silofuse-demo ./cmd/silofuse-demo
	$(GO) build -o $(OBS_SMOKE_DIR)/silofuse-obs ./cmd/silofuse-obs
	cd $(OBS_SMOKE_DIR) && ./silofuse-demo -clients 2 -rows 200 -iters 40 -synth 40 -run fleet -fleet-metrics fleet.prom
	grep -q 'party="c0"' $(OBS_SMOKE_DIR)/fleet.prom
	grep -q 'party="c1"' $(OBS_SMOKE_DIR)/fleet.prom
	grep -q 'party="coord"' $(OBS_SMOKE_DIR)/fleet.prom
	cd $(OBS_SMOKE_DIR) && if ./silofuse-demo -clients 2 -rows 200 -iters 40 -synth 40 -run crash -chaos-profile crash -chaos-revive=false; then \
		echo "obs-smoke: crash run unexpectedly succeeded"; exit 1; fi
	test -s $(OBS_SMOKE_DIR)/results/crash/postmortem/c1.json
	grep -q '"cause"' $(OBS_SMOKE_DIR)/results/crash/postmortem/c1.json
	grep -q '"cause"' $(OBS_SMOKE_DIR)/results/crash/postmortem/coord.json
	$(OBS_SMOKE_DIR)/silofuse-obs summary $(OBS_SMOKE_DIR)/results/fleet
	sed -E 's/"rows_per_sec":[0-9.eE+-]+/"rows_per_sec":0.001/g' $(OBS_SMOKE_DIR)/results/fleet/events.jsonl > $(OBS_SMOKE_DIR)/regressed.jsonl
	@if $(OBS_SMOKE_DIR)/silofuse-obs diff $(OBS_SMOKE_DIR)/results/fleet/events.jsonl $(OBS_SMOKE_DIR)/regressed.jsonl >/dev/null 2>&1; then \
		echo "obs-smoke: injected throughput regression not caught"; exit 1; \
	else echo "obs-smoke: injected regression caught"; fi
	$(OBS_SMOKE_DIR)/silofuse-obs diff BENCH_silofuse.json BENCH_silofuse.json

# bench-kernels runs the hot-path microbenchmarks (tensor kernels, Linear
# forward/backward, diffusion train/sample steps) with allocation reporting.
# CI invokes it with BENCHFLAGS='-benchtime=1x' as a does-it-run smoke test;
# for real numbers use the default and prefer -count=8 medians on busy hosts.
bench-kernels:
	$(GO) test -run '^$$' -bench 'MatMul|Linear|TrainStep|SampleStep' $(BENCHFLAGS) ./internal/tensor/ ./internal/nn/ ./internal/diffusion/

# profile-smoke exercises the phase-profiling pipeline end to end:
#   1. two tiny training runs capture per-phase CPU/heap/mutex/block pprof
#      profiles, the second with -debug-spin injecting a deterministic
#      slowdown into the diffusion train step (wall time only; losses stay
#      bit-identical across the pair);
#   2. the stdlib pprof decoder must parse the captures and render a
#      function table for the diffusion-train phase;
#   3. silofuse-obs diff must flag the throughput regression (non-zero
#      exit) AND attribute it to the injected function by name;
#   4. silofuse-obs summary must degrade gracefully on a run directory
#      carrying profiles but no event stream.
PROFILE_SMOKE_DIR ?= /tmp/silofuse_profile_smoke
profile-smoke:
	rm -rf $(PROFILE_SMOKE_DIR) && mkdir -p $(PROFILE_SMOKE_DIR)
	$(GO) build -o $(PROFILE_SMOKE_DIR)/silofuse-train ./cmd/silofuse-train
	$(GO) build -o $(PROFILE_SMOKE_DIR)/silofuse-obs ./cmd/silofuse-obs
	cd $(PROFILE_SMOKE_DIR) && ./silofuse-train -dataset abalone -clients 2 -train-rows 300 -iters 100 -rows 40 -out base.csv -run profbase -profile-phases
	cd $(PROFILE_SMOKE_DIR) && ./silofuse-train -dataset abalone -clients 2 -train-rows 300 -iters 100 -rows 40 -out slow.csv -run profslow -profile-phases -debug-spin 150000000
	$(PROFILE_SMOKE_DIR)/silofuse-obs profile -phase diffusion-train $(PROFILE_SMOKE_DIR)/results/profslow
	@if $(PROFILE_SMOKE_DIR)/silofuse-obs diff -throughput-drop 0.3 $(PROFILE_SMOKE_DIR)/results/profbase $(PROFILE_SMOKE_DIR)/results/profslow > $(PROFILE_SMOKE_DIR)/diff.out 2>&1; then \
		cat $(PROFILE_SMOKE_DIR)/diff.out; echo "profile-smoke: injected slowdown not caught"; exit 1; \
	else cat $(PROFILE_SMOKE_DIR)/diff.out; fi
	grep -q 'debugSpinStep' $(PROFILE_SMOKE_DIR)/diff.out
	cp -r $(PROFILE_SMOKE_DIR)/results/profslow $(PROFILE_SMOKE_DIR)/results/noevents && rm $(PROFILE_SMOKE_DIR)/results/noevents/events.jsonl
	$(PROFILE_SMOKE_DIR)/silofuse-obs summary $(PROFILE_SMOKE_DIR)/results/noevents | grep -q 'phase profiles'

# profile captures CPU and heap profiles from a fast fig10 bench run into
# /tmp, ready for `go tool pprof`.
profile:
	$(GO) run ./cmd/silofuse-bench -exp fig10 -datasets abalone -rows 2000 -scale fast -bench-json /tmp/BENCH_silofuse_profile.json -cpuprofile /tmp/silofuse_cpu.pprof -memprofile /tmp/silofuse_mem.pprof
	@echo "profiles: /tmp/silofuse_cpu.pprof /tmp/silofuse_mem.pprof"

ci:
	$(MAKE) lint-fixtures && $(MAKE) lint && $(GO) build ./... && $(GO) test ./... && $(MAKE) race && $(MAKE) test-chaos && $(MAKE) test-ddp && $(MAKE) bench-smoke && $(MAKE) codec-smoke && $(MAKE) obs-smoke && $(MAKE) profile-smoke && $(MAKE) bench-kernels BENCHFLAGS='-benchtime=1x'

bench:
	$(GO) test -bench=. -benchmem ./...
