GO ?= go

.PHONY: build vet test race ci bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The transport and telemetry layers are exercised under the race detector;
# the silo package trains real models, so give it a generous timeout.
race:
	$(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/...

# bench-smoke runs a tiny end-to-end bench invocation and validates the perf
# snapshot it writes, so CI catches a broken bench pipeline without paying for
# a full benchmark run.
bench-smoke:
	$(GO) run ./cmd/silofuse-bench -exp fig10 -datasets abalone -rows 300 -scale fast -bench-json /tmp/BENCH_silofuse_smoke.json
	$(GO) run ./cmd/silofuse-bench -check-bench /tmp/BENCH_silofuse_smoke.json

ci:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./... && $(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/... && $(MAKE) bench-smoke

bench:
	$(GO) test -bench=. -benchmem ./...
