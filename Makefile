GO ?= go

.PHONY: build vet test race ci bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The transport and telemetry layers are exercised under the race detector;
# the silo package trains real models, so give it a generous timeout.
race:
	$(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/...

ci:
	$(GO) vet ./... && $(GO) build ./... && $(GO) test ./... && $(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem ./...
