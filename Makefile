GO ?= go
BENCHFLAGS ?= -benchmem

.PHONY: build vet lint test test-chaos race ci bench bench-smoke bench-kernels profile

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own determinism/hot-path analyzers (silofuse-vet)
# plus go vet and a gofmt check. The tree must stay clean: silofuse-vet
# exits nonzero on any finding, and unformatted files fail the gofmt step.
lint:
	$(GO) run ./cmd/silofuse-vet .
	$(GO) vet ./...
	@unformatted=$$(gofmt -l . | grep -v testdata); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# test-chaos runs the deterministic fault-injection suite under the race
# detector: the chaos matrix (every fault class against stacked training,
# VFL and synthesis), crash recovery over TCP, and the retransmit byte
# accounting invariants.
test-chaos:
	$(GO) test -race -timeout 20m -run 'Chaos|Resilient|Recovery|Heartbeat' -count=1 ./internal/silo/

# The transport and telemetry layers are exercised under the race detector;
# the silo package trains real models, so give it a generous timeout. The
# tensor package is included because its worker pool is the one piece of
# hand-rolled concurrency under every training loop.
race:
	$(GO) test -race -timeout 30m ./internal/silo/... ./internal/obs/... ./internal/tensor/...

# bench-smoke runs a tiny end-to-end bench invocation and validates the perf
# snapshot it writes, so CI catches a broken bench pipeline without paying for
# a full benchmark run.
bench-smoke:
	$(GO) run ./cmd/silofuse-bench -exp fig10 -datasets abalone -rows 300 -scale fast -bench-json /tmp/BENCH_silofuse_smoke.json
	$(GO) run ./cmd/silofuse-bench -check-bench /tmp/BENCH_silofuse_smoke.json

# bench-kernels runs the hot-path microbenchmarks (tensor kernels, Linear
# forward/backward, diffusion train/sample steps) with allocation reporting.
# CI invokes it with BENCHFLAGS='-benchtime=1x' as a does-it-run smoke test;
# for real numbers use the default and prefer -count=8 medians on busy hosts.
bench-kernels:
	$(GO) test -run '^$$' -bench 'MatMul|Linear|TrainStep|SampleStep' $(BENCHFLAGS) ./internal/tensor/ ./internal/nn/ ./internal/diffusion/

# profile captures CPU and heap profiles from a fast fig10 bench run into
# /tmp, ready for `go tool pprof`.
profile:
	$(GO) run ./cmd/silofuse-bench -exp fig10 -datasets abalone -rows 2000 -scale fast -bench-json /tmp/BENCH_silofuse_profile.json -cpuprofile /tmp/silofuse_cpu.pprof -memprofile /tmp/silofuse_mem.pprof
	@echo "profiles: /tmp/silofuse_cpu.pprof /tmp/silofuse_mem.pprof"

ci:
	$(MAKE) lint && $(GO) build ./... && $(GO) test ./... && $(MAKE) race && $(MAKE) test-chaos && $(MAKE) bench-smoke && $(MAKE) bench-kernels BENCHFLAGS='-benchtime=1x'

bench:
	$(GO) test -bench=. -benchmem ./...
