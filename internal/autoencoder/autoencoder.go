// Package autoencoder implements the per-client tabular autoencoder of the
// paper: an MLP encoder mapping one-hot + standardised features to compact
// continuous latents, and a decoder with distributional output heads — a
// Gaussian (mean, log-variance) head per numeric feature and a multinomial
// (softmax) head per categorical feature — trained by negative
// log-likelihood (paper eq. 4, following TVAE-style heads).
package autoencoder

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Config holds the autoencoder hyper-parameters. The paper uses three
// linear layers per coder with GELU, hidden width 1024 and embedding width
// 32 in the centralized model (split evenly across clients in the
// distributed one), and latent size equal to the number of raw features.
type Config struct {
	Hidden  int     // hidden layer width
	Embed   int     // bottleneck-adjacent embedding width
	Latent  int     // latent feature count (paper: = #raw features)
	LR      float64 // Adam learning rate
	Dropout float64
	// DecodePrecision selects the decoder forward tier for Decode: "" or
	// "f64" is the historical float64 path (bit-identical, the default);
	// "f32" runs the decoder MLP in float32 on the reduced-precision
	// kernels, widening once before the distributional heads (whose
	// sampling/argmax logic stays float64). Training always runs float64.
	DecodePrecision string
}

// DefaultConfig returns CPU-scaled defaults; latent must be set per client.
func DefaultConfig(latent int) Config {
	return Config{Hidden: 256, Embed: 32, Latent: latent, LR: 1e-3}
}

// headSpan locates one column's slice of the decoder head output.
type headSpan struct {
	col  int
	kind tabular.Kind
	lo   int // start offset in head output
	hi   int
}

// Autoencoder is one client's encoder/decoder pair (E_i, D_i).
type Autoencoder struct {
	Schema *tabular.Schema
	Cfg    Config
	Enc    *tabular.Encoder // input featuriser (one-hot + standardise)
	// Rec, when non-nil, receives per-step loss/throughput telemetry from
	// Train (stage "ae"). Shared safely across clients training in parallel.
	Rec *obs.Recorder
	// SkipAllocStats suppresses Train's per-loop allocation measurement.
	// The measurement reads global runtime.MemStats deltas, which count
	// every goroutine's allocations: when sibling autoencoders train
	// concurrently (the pipeline's AE phase), per-loop windows overlap
	// arbitrarily and the numbers are scheduling-dependent garbage. The
	// pipeline sets this and measures the whole parallel phase instead.
	SkipAllocStats bool

	encoder *nn.Sequential
	decoder *nn.Sequential // trunk + final head linear
	spans   []headSpan
	opt     *nn.Adam
	rng     *rand.Rand
}

// New builds an autoencoder for the columns of train and fits the input
// featuriser on it. Model weights are drawn from rng.
func New(rng *rand.Rand, train *tabular.Table, cfg Config) *Autoencoder {
	if cfg.Latent <= 0 {
		cfg.Latent = train.Schema.NumColumns()
	}
	enc := tabular.NewEncoder(train)
	in := enc.Width()

	// Head layout: [mean, logVar] per numeric column, card logits per
	// categorical column, in schema order.
	var spans []headSpan
	off := 0
	for j, c := range train.Schema.Columns {
		sp := headSpan{col: j, kind: c.Kind, lo: off}
		if c.Kind == tabular.Numeric {
			off += 2
		} else {
			off += c.Cardinality
		}
		sp.hi = off
		spans = append(spans, sp)
	}

	a := &Autoencoder{
		Schema: train.Schema,
		Cfg:    cfg,
		Enc:    enc,
		encoder: nn.NewSequential(
			nn.NewLinear(rng, in, cfg.Hidden), &nn.GELU{},
			nn.NewLinear(rng, cfg.Hidden, cfg.Embed), &nn.GELU{},
			nn.NewLinear(rng, cfg.Embed, cfg.Latent),
		),
		decoder: nn.NewSequential(
			nn.NewLinear(rng, cfg.Latent, cfg.Embed), &nn.GELU{},
			nn.NewLinear(rng, cfg.Embed, cfg.Hidden), &nn.GELU{},
			nn.NewLinear(rng, cfg.Hidden, off),
		),
		spans: spans,
		rng:   rng,
	}
	params := append(a.encoder.Params(), a.decoder.Params()...)
	a.opt = nn.NewAdam(params, cfg.LR)
	return a
}

// ParamCount returns the number of trainable scalars.
func (a *Autoencoder) ParamCount() int {
	return nn.ParamCount(a.encoder.Params()) + nn.ParamCount(a.decoder.Params())
}

// LatentDim returns the latent width s_i contributed by this client.
func (a *Autoencoder) LatentDim() int { return a.Cfg.Latent }

// TrainStep runs one optimisation step on a batch table and returns the
// total reconstruction NLL.
func (a *Autoencoder) TrainStep(batch *tabular.Table) float64 {
	x := a.Enc.Transform(batch)
	z := a.encoder.Forward(x, true)
	out := a.decoder.Forward(z, true)
	loss, grad := a.reconstructionLoss(out, batch)
	gz := a.decoder.Backward(grad)
	a.encoder.Backward(gz)
	a.opt.Step()
	return loss
}

// Train runs iters minibatch steps and returns the mean loss over the final
// 10% of iterations.
func (a *Autoencoder) Train(train *tabular.Table, iters, batch int) float64 {
	if batch > train.Rows() {
		batch = train.Rows()
	}
	tail := iters - iters/10
	var tailLoss float64
	var tailCount int
	idx := make([]int, batch)
	measureAllocs := a.Rec != nil && !a.SkipAllocStats
	var ms0 runtime.MemStats
	if measureAllocs {
		runtime.ReadMemStats(&ms0)
	}
	for it := 0; it < iters; it++ {
		for i := range idx {
			idx[i] = a.rng.Intn(train.Rows())
		}
		t0 := a.Rec.Now()
		loss := a.TrainStep(train.SelectRows(idx))
		if a.Rec != nil {
			a.Rec.TrainStep("ae", loss, batch, a.Rec.Since(t0))
		}
		if it >= tail {
			tailLoss += loss
			tailCount++
		}
	}
	if measureAllocs {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		a.Rec.TrainAllocs("ae", iters, ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
	}
	if tailCount == 0 {
		return 0
	}
	return tailLoss / float64(tailCount)
}

// reconstructionLoss computes the summed per-column NLL and the gradient
// with respect to the head outputs.
func (a *Autoencoder) reconstructionLoss(out *tensor.Matrix, batch *tabular.Table) (float64, *tensor.Matrix) {
	grad := tensor.New(out.Rows, out.Cols)
	total := 0.0
	for _, sp := range a.spans {
		if sp.kind == tabular.Numeric {
			mean := out.SliceCols(sp.lo, sp.lo+1)
			logVar := out.SliceCols(sp.lo+1, sp.hi)
			target := a.standardisedColumn(batch, sp.col)
			loss, gMean, gLV := nn.GaussianNLLLoss(mean, logVar, target)
			total += loss
			grad.SetCol(sp.lo, gMean.Col(0))
			grad.SetCol(sp.lo+1, gLV.Col(0))
		} else {
			logits := out.SliceCols(sp.lo, sp.hi)
			labels := batch.CatColumn(sp.col)
			loss, g := nn.CrossEntropyLoss(logits, labels)
			total += loss
			for k := 0; k < g.Cols; k++ {
				grad.SetCol(sp.lo+k, g.Col(k))
			}
		}
	}
	return total, grad
}

// standardisedColumn returns column col of batch standardised with the
// fitted featuriser statistics, as an (n,1) matrix.
func (a *Autoencoder) standardisedColumn(batch *tabular.Table, col int) *tensor.Matrix {
	vals := batch.NumColumn(col)
	out := tensor.New(len(vals), 1)
	for i, v := range vals {
		out.Data[i] = (v - a.Enc.Mean[col]) / a.Enc.Std[col]
	}
	return out
}

// Encode maps a table to its latent representation Z_i = E_i(X_i) in
// evaluation mode.
func (a *Autoencoder) Encode(t *tabular.Table) *tensor.Matrix {
	// The encoder's Forward output is a per-layer workspace that the next
	// Forward through the same encoder overwrites; latents are retained
	// long-term by the pipeline (and mutated in place by DP noising), so
	// hand the caller its own copy.
	return a.encoder.Forward(a.Enc.Transform(t), false).Clone()
}

// Decode maps latents back to the data space. When sample is true, numeric
// values are drawn from the Gaussian heads and categories from the softmax
// heads; otherwise the mean / arg-max is used.
func (a *Autoencoder) Decode(z *tensor.Matrix, sample bool, rng *rand.Rand) (*tabular.Table, error) {
	if z.Cols != a.Cfg.Latent {
		return nil, fmt.Errorf("autoencoder: latent width %d, expected %d", z.Cols, a.Cfg.Latent)
	}
	out, err := a.decodeForward(z)
	if err != nil {
		return nil, err
	}
	data := tensor.New(z.Rows, a.Schema.NumColumns())
	for _, sp := range a.spans {
		switch sp.kind {
		case tabular.Numeric:
			for i := 0; i < z.Rows; i++ {
				v := out.At(i, sp.lo)
				if sample {
					lv := math.Max(-10, math.Min(10, out.At(i, sp.lo+1)))
					v += math.Exp(lv/2) * rng.NormFloat64()
				}
				data.Set(i, sp.col, v*a.Enc.Std[sp.col]+a.Enc.Mean[sp.col])
			}
		case tabular.Categorical:
			logits := out.SliceCols(sp.lo, sp.hi)
			probs := nn.Softmax(logits)
			for i := 0; i < z.Rows; i++ {
				row := probs.Row(i)
				var code int
				if sample {
					code = sampleIndex(rng, row)
				} else {
					code = argmax(row)
				}
				data.Set(i, sp.col, float64(code))
			}
		}
	}
	return tabular.NewTable(a.Schema, data)
}

// decodeForward runs the decoder MLP in the configured precision tier. The
// f32 path snapshots the trained weights to float32 on every call — the
// narrowing is O(params), noise against the O(rows·params) forward — which
// keeps the snapshot trivially in sync with training, and widens the head
// outputs once so the distributional head logic stays float64.
func (a *Autoencoder) decodeForward(z *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cfg.DecodePrecision != "f32" {
		return a.decoder.Forward(z, false), nil
	}
	dec32, err := nn.NewSequential32(a.decoder)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: f32 decode: %w", err)
	}
	return tensor.To64(dec32.Forward(tensor.To32(z))), nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func sampleIndex(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(probs) - 1
}
