package autoencoder

import (
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// The methods below expose the encoder and decoder halves separately for
// split (end-to-end distributed) training, where the diffusion backbone sits
// between them on another party. Call order per iteration must be:
// ForwardEncode → DecoderLossGrad → BackwardEncoder → Step.

// ForwardEncode runs the encoder on a raw batch, caching activations for a
// later BackwardEncoder call.
func (a *Autoencoder) ForwardEncode(batch *tabular.Table, train bool) *tensor.Matrix {
	return a.encoder.Forward(a.Enc.Transform(batch), train)
}

// DecoderLossGrad runs the decoder on latents z, computes the
// reconstruction NLL against batch, accumulates decoder parameter
// gradients, and returns the loss together with dLoss/dz.
func (a *Autoencoder) DecoderLossGrad(z *tensor.Matrix, batch *tabular.Table, train bool) (float64, *tensor.Matrix) {
	out := a.decoder.Forward(z, train)
	loss, grad := a.reconstructionLoss(out, batch)
	return loss, a.decoder.Backward(grad)
}

// BackwardEncoder propagates a latent gradient through the encoder,
// accumulating its parameter gradients.
func (a *Autoencoder) BackwardEncoder(gradZ *tensor.Matrix) {
	a.encoder.Backward(gradZ)
}

// Step applies the optimiser to all accumulated gradients.
func (a *Autoencoder) Step() { a.opt.Step() }
