package autoencoder

import (
	"io"

	"silofuse/internal/nn"
)

// Save writes the encoder and decoder weights to w. The input featuriser
// statistics are part of the schema-derived architecture and are saved too
// via the parameter stream ordering; callers must rebuild the autoencoder
// with the same training table schema before Load.
func (a *Autoencoder) Save(w io.Writer) error {
	return nn.SaveParams(w, a.allParams())
}

// Load restores weights written by Save into an autoencoder constructed
// with the same configuration and schema.
func (a *Autoencoder) Load(r io.Reader) error {
	return nn.LoadParams(r, a.allParams())
}

func (a *Autoencoder) allParams() []*nn.Param {
	return append(append([]*nn.Param{}, a.encoder.Params()...), a.decoder.Params()...)
}

// SaveTraining writes the full mid-training state — weights plus the Adam
// moment estimates and step counter — so joint training (E2EDistr) can
// resume from a checkpoint bit-identically. Save alone is enough for a
// finished model; a *resumed optimiser* also needs its momenta.
func (a *Autoencoder) SaveTraining(w io.Writer) error {
	if err := nn.SaveParams(w, a.allParams()); err != nil {
		return err
	}
	return a.opt.Save(w)
}

// LoadTraining restores state written by SaveTraining and zeroes any
// accumulated gradients, discarding whatever a half-finished iteration left
// behind.
func (a *Autoencoder) LoadTraining(r io.Reader) error {
	if err := nn.LoadParams(r, a.allParams()); err != nil {
		return err
	}
	return a.opt.Load(r)
}
