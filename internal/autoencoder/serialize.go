package autoencoder

import (
	"io"

	"silofuse/internal/nn"
)

// Save writes the encoder and decoder weights to w. The input featuriser
// statistics are part of the schema-derived architecture and are saved too
// via the parameter stream ordering; callers must rebuild the autoencoder
// with the same training table schema before Load.
func (a *Autoencoder) Save(w io.Writer) error {
	return nn.SaveParams(w, a.allParams())
}

// Load restores weights written by Save into an autoencoder constructed
// with the same configuration and schema.
func (a *Autoencoder) Load(r io.Reader) error {
	return nn.LoadParams(r, a.allParams())
}

func (a *Autoencoder) allParams() []*nn.Param {
	return append(append([]*nn.Param{}, a.encoder.Params()...), a.decoder.Params()...)
}
