package autoencoder

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tabular"
)

// TestDecodeF32MatchesF64 pins the reduced-precision decode contract: a
// trained autoencoder decoding the same latents under DecodePrecision
// "f32" produces numeric values within rounding-accumulation tolerance of
// the f64 path and — on a trained model, away from logit ties — identical
// categorical codes.
func TestDecodeF32MatchesF64(t *testing.T) {
	tb := loanTable(t, 400)
	rng := rand.New(rand.NewSource(50))
	cfg := Config{Hidden: 64, Embed: 16, Latent: tb.Schema.NumColumns(), LR: 2e-3}
	a := New(rng, tb, cfg)
	a.Train(tb, 300, 128)

	z := a.Encode(tb)
	d64, err := a.Decode(z, false, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	a.Cfg.DecodePrecision = "f32"
	d32, err := a.Decode(z, false, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}

	var numDiffs int
	for j, c := range tb.Schema.Columns {
		if c.Kind == tabular.Numeric {
			for i := 0; i < d64.Rows(); i++ {
				v64 := d64.Data.At(i, j)
				v32 := d32.Data.At(i, j)
				if d := math.Abs(v32 - v64); d > 1e-3*(1+math.Abs(v64)) {
					t.Fatalf("numeric col %d row %d: f32 decode %g vs f64 %g", j, i, v32, v64)
				}
				if v32 != v64 { //silofuse:bitwise-ok counting rounding-scale differences to prove the f32 path ran
					numDiffs++
				}
			}
		} else {
			agree := 0
			for i := 0; i < d64.Rows(); i++ {
				if d64.Data.At(i, j) == d32.Data.At(i, j) { //silofuse:bitwise-ok category codes are small integers, exact by construction
					agree++
				}
			}
			// Argmax can flip only on near-ties; on a trained model that is
			// rare but not impossible, so require near-total agreement
			// rather than equality.
			if agree < d64.Rows()*99/100 {
				t.Fatalf("categorical col %d: only %d/%d codes agree across precisions", j, agree, d64.Rows())
			}
		}
	}
	if numDiffs == 0 {
		t.Fatal("f32 decode bit-identical to f64 — the f32 trunk is not being exercised")
	}
}

// TestDecodeF32Sampling checks the stochastic decode path consumes the rng
// stream identically across precisions, keeping sampled outputs aligned.
func TestDecodeF32Sampling(t *testing.T) {
	tb := loanTable(t, 150)
	rng := rand.New(rand.NewSource(52))
	a := New(rng, tb, Config{Hidden: 48, Embed: 12, Latent: tb.Schema.NumColumns(), LR: 2e-3})
	a.Train(tb, 200, 64)

	z := a.Encode(tb)
	d64, err := a.Decode(z, true, rand.New(rand.NewSource(53)))
	if err != nil {
		t.Fatal(err)
	}
	a.Cfg.DecodePrecision = "f32"
	d32, err := a.Decode(z, true, rand.New(rand.NewSource(53)))
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range tb.Schema.Columns {
		if c.Kind != tabular.Numeric {
			continue
		}
		for i := 0; i < d64.Rows(); i++ {
			v64 := d64.Data.At(i, j)
			v32 := d32.Data.At(i, j)
			// The Gaussian head adds exp(logvar/2)·noise: the same draw in
			// both runs, scaled by slightly different f32-rounded moments.
			if d := math.Abs(v32 - v64); d > 1e-2*(1+math.Abs(v64)) {
				t.Fatalf("sampled numeric col %d row %d: f32 %g vs f64 %g", j, i, v32, v64)
			}
		}
	}
}
