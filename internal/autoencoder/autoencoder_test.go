//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package autoencoder

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/datagen"
	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

func loanTable(t *testing.T, rows int) *tabular.Table {
	t.Helper()
	spec, err := datagen.ByName("loan")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(rows, 42)
}

func TestNewDefaultsLatentToFeatureCount(t *testing.T) {
	tb := loanTable(t, 100)
	a := New(rand.New(rand.NewSource(1)), tb, Config{Hidden: 32, Embed: 8, LR: 1e-3})
	if a.LatentDim() != tb.Schema.NumColumns() {
		t.Fatalf("latent dim = %d, want %d", a.LatentDim(), tb.Schema.NumColumns())
	}
}

func TestEncodeShape(t *testing.T) {
	tb := loanTable(t, 50)
	a := New(rand.New(rand.NewSource(2)), tb, DefaultConfig(6))
	z := a.Encode(tb)
	if z.Rows != 50 || z.Cols != 6 {
		t.Fatalf("latent shape %v", z)
	}
}

func TestDecodeRejectsWrongWidth(t *testing.T) {
	tb := loanTable(t, 20)
	a := New(rand.New(rand.NewSource(3)), tb, DefaultConfig(6))
	z := a.Encode(tb)
	if _, err := a.Decode(z.SliceCols(0, 3), false, rand.New(rand.NewSource(4))); err == nil {
		t.Fatal("expected width error")
	}
}

func TestDecodeProducesValidTable(t *testing.T) {
	tb := loanTable(t, 60)
	a := New(rand.New(rand.NewSource(5)), tb, DefaultConfig(0))
	z := a.Encode(tb)
	dec, err := a.Decode(z, true, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rows() != 60 {
		t.Fatalf("rows = %d", dec.Rows())
	}
	// NewTable inside Decode validates category codes; additionally check
	// numeric values are finite.
	for _, v := range dec.Data.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite decoded value")
		}
	}
}

// TestReconstruction trains the autoencoder and checks it reconstructs both
// categorical codes and numeric values well — the paper's step 1.
func TestReconstruction(t *testing.T) {
	tb := loanTable(t, 800)
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Hidden: 128, Embed: 32, Latent: tb.Schema.NumColumns(), LR: 2e-3}
	a := New(rng, tb, cfg)
	first := a.TrainStep(tb.Head(256))
	final := a.Train(tb, 600, 128)
	if final >= first {
		t.Fatalf("loss did not decrease: first %v, final %v", first, final)
	}

	dec, err := a.Decode(a.Encode(tb), false, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Categorical accuracy well above chance on the binary target column.
	codesIn := tb.CatColumn(0)
	codesOut := dec.CatColumn(0)
	correct := 0
	for i := range codesIn {
		if codesIn[i] == codesOut[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(codesIn)); acc < 0.85 {
		t.Fatalf("categorical reconstruction accuracy %v", acc)
	}
	// Numeric columns correlate strongly with their reconstructions.
	nCat := len(tb.Schema.CategoricalIndexes())
	for j := nCat; j < tb.Schema.NumColumns(); j++ {
		r := stats.Pearson(tb.NumColumn(j), dec.NumColumn(j))
		if r < 0.7 {
			t.Fatalf("numeric column %d reconstruction correlation %v", j, r)
		}
	}
}

// TestLatentsMaskValues: encoded latents must not simply copy input columns
// — the paper's privacy argument needs latents that are non-trivial
// transforms. We check no latent dimension is an exact copy of a raw
// column.
func TestLatentsMaskValues(t *testing.T) {
	tb := loanTable(t, 300)
	rng := rand.New(rand.NewSource(8))
	a := New(rng, tb, DefaultConfig(0))
	a.Train(tb, 200, 64)
	z := a.Encode(tb)
	for zc := 0; zc < z.Cols; zc++ {
		lat := z.Col(zc)
		for col := 0; col < tb.Schema.NumColumns(); col++ {
			raw := tb.Data.Col(col)
			same := true
			for i := range lat {
				if math.Abs(lat[i]-raw[i]) > 1e-6 {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("latent %d is an exact copy of column %d", zc, col)
			}
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	tb := loanTable(t, 100)
	a1 := New(rand.New(rand.NewSource(9)), tb, DefaultConfig(0))
	a2 := New(rand.New(rand.NewSource(9)), tb, DefaultConfig(0))
	l1 := a1.Train(tb, 50, 32)
	l2 := a2.Train(tb, 50, 32)
	if l1 != l2 {
		t.Fatalf("training not deterministic: %v vs %v", l1, l2)
	}
}

func TestParamCountPositive(t *testing.T) {
	tb := loanTable(t, 30)
	a := New(rand.New(rand.NewSource(10)), tb, DefaultConfig(0))
	if a.ParamCount() <= 0 {
		t.Fatal("no parameters?")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tb := loanTable(t, 150)
	a := New(rand.New(rand.NewSource(20)), tb, DefaultConfig(0))
	a.Train(tb, 100, 64)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(rand.New(rand.NewSource(99)), tb, DefaultConfig(0))
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	za := a.Encode(tb)
	zb := b.Encode(tb)
	for i := range za.Data {
		if za.Data[i] != zb.Data[i] {
			t.Fatal("loaded autoencoder produces different latents")
		}
	}
}

func TestLoadWrongArchitecture(t *testing.T) {
	tb := loanTable(t, 100)
	a := New(rand.New(rand.NewSource(21)), tb, DefaultConfig(0))
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(rand.New(rand.NewSource(22)), tb, Config{Hidden: 32, Embed: 8, LR: 1e-3})
	if err := other.Load(&buf); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}
