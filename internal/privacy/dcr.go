package privacy

import (
	"fmt"
	"math/rand"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// DCRReport summarises the distance-to-closest-record analysis — a widely
// used complement to the three attacks. For every synthetic record we find
// its nearest real training record (Gower-style mixed distance); if the
// synthetic data memorises training rows, this distribution collapses
// toward zero. The reference is the same statistic computed against a
// disjoint hold-out: safe synthetic data has SynthToTrain ≈ SynthToHoldout.
type DCRReport struct {
	SynthToTrainMedian   float64
	SynthToHoldoutMedian float64
	SynthToTrainP05      float64 // 5th percentile — the memorisation tail
	SynthToHoldoutP05    float64
	// Ratio is train-median / holdout-median: ≈1 means no memorisation;
	// values near 0 mean synthetic rows sit on top of training rows.
	Ratio float64
}

// DCR computes the distance-to-closest-record report on up to maxRows
// synthetic rows (0 = all).
func DCR(train, holdout, synth *tabular.Table, maxRows int, seed int64) (*DCRReport, error) {
	if train.Schema.NumColumns() != synth.Schema.NumColumns() || holdout.Schema.NumColumns() != synth.Schema.NumColumns() {
		return nil, fmt.Errorf("privacy: DCR schema mismatch")
	}
	if train.Rows() == 0 || holdout.Rows() == 0 || synth.Rows() == 0 {
		return nil, fmt.Errorf("privacy: DCR empty table")
	}
	metric := newMixedMetric(train)
	cols := make([]int, train.Schema.NumColumns())
	for i := range cols {
		cols[i] = i
	}
	n := synth.Rows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	rng := rand.New(rand.NewSource(seed))
	toTrain := make([]float64, n)
	toHold := make([]float64, n)
	for i := 0; i < n; i++ {
		row := synth.Data.Row(rng.Intn(synth.Rows()))
		toTrain[i] = nearestDistance(metric, row, train, cols)
		toHold[i] = nearestDistance(metric, row, holdout, cols)
	}
	rep := &DCRReport{
		SynthToTrainMedian:   stats.Median(toTrain),
		SynthToHoldoutMedian: stats.Median(toHold),
		SynthToTrainP05:      stats.Quantile(toTrain, 0.05),
		SynthToHoldoutP05:    stats.Quantile(toHold, 0.05),
	}
	if rep.SynthToHoldoutMedian > 0 {
		rep.Ratio = rep.SynthToTrainMedian / rep.SynthToHoldoutMedian
	} else {
		rep.Ratio = 1
	}
	return rep, nil
}

// nearestDistance returns the distance from needle to its closest row.
func nearestDistance(m *mixedMetric, needle []float64, haystack *tabular.Table, cols []int) float64 {
	best := 2.0 // distances are in [0,1]
	for i := 0; i < haystack.Rows(); i++ {
		d := m.distanceCols(needle, haystack.Data.Row(i), cols)
		if d < best {
			best = d
		}
	}
	return best
}
