//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package privacy

import (
	"math/rand"
	"testing"

	"silofuse/internal/datagen"
	"silofuse/internal/tabular"
)

func diabetesTables(t *testing.T) (real, fresh *tabular.Table) {
	t.Helper()
	spec, err := datagen.ByName("diabetes")
	if err != nil {
		t.Fatal(err)
	}
	real = spec.Generate(600, 1)
	fresh = spec.Generate(600, 2)
	return real, fresh
}

// jitter returns a copy of tb with tiny numeric noise — a "synthetic" table
// that essentially memorises the training data.
func jitter(t *testing.T, tb *tabular.Table, eps float64, seed int64) *tabular.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := tb.Data.Clone()
	for i := 0; i < data.Rows; i++ {
		for j, c := range tb.Schema.Columns {
			if c.Kind == tabular.Numeric {
				data.Set(i, j, data.At(i, j)+eps*rng.NormFloat64())
			}
		}
	}
	out, err := tabular.NewTable(tb.Schema, data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEvaluateReturnsBoundedScores(t *testing.T) {
	real, fresh := diabetesTables(t)
	cfg := DefaultConfig()
	cfg.Attacks = 100
	r, err := Evaluate(real, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{r.SinglingOut, r.Linkability, r.AttributeInference, r.Score} {
		if v < 0 || v > 100 {
			t.Fatalf("score out of range: %+v", r)
		}
	}
}

// TestMemorisedDataIsRiskier is the core calibration property: synthetic
// data that memorises the training set must score lower (riskier) than an
// independent fresh sample from the same distribution.
func TestMemorisedDataIsRiskier(t *testing.T) {
	real, fresh := diabetesTables(t)
	leaky := jitter(t, real, 1e-4, 3)
	cfg := DefaultConfig()
	cfg.Attacks = 200

	rFresh, err := Evaluate(real, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rLeaky, err := Evaluate(real, leaky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rLeaky.Score >= rFresh.Score {
		t.Fatalf("memorised synth should be riskier: leaky %v vs fresh %v", rLeaky.Score, rFresh.Score)
	}
	// Linkability in particular must collapse for memorised data: both
	// halves of a real record point at its clone.
	if rLeaky.Linkability >= rFresh.Linkability {
		t.Fatalf("linkability should detect memorisation: %v vs %v", rLeaky.Linkability, rFresh.Linkability)
	}
}

func TestAttributeInferenceDetectsMemorisation(t *testing.T) {
	real, fresh := diabetesTables(t)
	leaky := jitter(t, real, 1e-4, 4)
	cfg := DefaultConfig()
	cfg.Attacks = 200
	rFresh, err := Evaluate(real, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rLeaky, err := Evaluate(real, leaky, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rLeaky.AttributeInference >= rFresh.AttributeInference {
		t.Fatalf("attribute inference should detect memorisation: %v vs %v",
			rLeaky.AttributeInference, rFresh.AttributeInference)
	}
}

func TestEvaluateErrors(t *testing.T) {
	real, _ := diabetesTables(t)
	sub := real.SelectColumns([]int{0, 1})
	if _, err := Evaluate(real, sub, DefaultConfig()); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	empty := real.Head(0)
	if _, err := Evaluate(real, empty, DefaultConfig()); err == nil {
		t.Fatal("expected empty table error")
	}
}

func TestEvaluateDeterministicForSeed(t *testing.T) {
	real, fresh := diabetesTables(t)
	cfg := DefaultConfig()
	cfg.Attacks = 50
	a, err := Evaluate(real, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(real, fresh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Fatalf("same seed must give same score: %v vs %v", a.Score, b.Score)
	}
}

func TestResistanceBounds(t *testing.T) {
	if resistance(1, 0) != 0 {
		t.Fatal("always-successful attack over never-successful baseline must be 0")
	}
	if resistance(0, 0) != 1 {
		t.Fatal("no attack success must be 1")
	}
	if resistance(0.3, 0.3) != 1 {
		t.Fatal("attack no better than baseline must be 1")
	}
	if resistance(0.2, 1) != 1 {
		t.Fatal("degenerate baseline must clamp to 1")
	}
}

func TestMixedMetricProperties(t *testing.T) {
	real, _ := diabetesTables(t)
	m := newMixedMetric(real)
	cols := make([]int, real.Schema.NumColumns())
	for i := range cols {
		cols[i] = i
	}
	row := real.Data.Row(0)
	if d := m.distanceCols(row, row, cols); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	other := real.Data.Row(1)
	d := m.distanceCols(row, other, cols)
	if d < 0 || d > 1 {
		t.Fatalf("distance out of [0,1]: %v", d)
	}
	if m.distanceCols(row, other, nil) != 0 {
		t.Fatal("empty column set must give 0")
	}
	// Nearest index of a row present in the table is that row.
	if ni := m.nearestIndex(row, real, cols); ni != 0 {
		t.Fatalf("nearest of self = %d", ni)
	}
}

func TestDCRDetectsMemorisation(t *testing.T) {
	real, fresh := diabetesTables(t)
	spec, _ := datagen.ByName("diabetes")
	holdout := spec.Generate(400, 9)
	leaky := jitter(t, real, 1e-5, 10)

	repFresh, err := DCR(real, holdout, fresh, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	repLeaky, err := DCR(real, holdout, leaky, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh samples sit at similar distance from train and holdout.
	if repFresh.Ratio < 0.6 || repFresh.Ratio > 1.5 {
		t.Fatalf("fresh DCR ratio should be near 1: %v", repFresh.Ratio)
	}
	// Memorised samples sit on top of the training data.
	if repLeaky.Ratio > 0.3 {
		t.Fatalf("leaky DCR ratio should collapse: %v", repLeaky.Ratio)
	}
	if repLeaky.SynthToTrainMedian >= repFresh.SynthToTrainMedian {
		t.Fatal("memorised data should be closer to training rows")
	}
}

func TestDCRValidation(t *testing.T) {
	real, fresh := diabetesTables(t)
	sub := real.SelectColumns([]int{0})
	if _, err := DCR(real, real, sub, 10, 1); err == nil {
		t.Fatal("expected schema mismatch")
	}
	if _, err := DCR(real, real.Head(0), fresh, 10, 1); err == nil {
		t.Fatal("expected empty table error")
	}
}
