package privacy

import (
	"fmt"
	"math/rand"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// Config tunes the attack suite.
type Config struct {
	Attacks    int   // number of attack attempts per metric
	Predicates int   // attributes per singling-out predicate
	Seed       int64 // randomness for attack target selection
	// NumericWindow is the half-width (in std units) of the numeric interval
	// predicates used by the singling-out attack.
	NumericWindow float64
}

// DefaultConfig returns the harness settings.
func DefaultConfig() Config {
	return Config{Attacks: 300, Predicates: 3, Seed: 13, NumericWindow: 0.05}
}

// Report holds per-attack resistance scores (0–100 each) and their mean.
type Report struct {
	SinglingOut        float64
	Linkability        float64
	AttributeInference float64
	Score              float64
}

// Evaluate runs all three attacks of synthetic data `synth` against the
// real training table and returns the composite privacy score.
func Evaluate(real, synth *tabular.Table, cfg Config) (*Report, error) {
	if real.Schema.NumColumns() != synth.Schema.NumColumns() {
		return nil, fmt.Errorf("privacy: schema width mismatch")
	}
	if real.Rows() == 0 || synth.Rows() == 0 {
		return nil, fmt.Errorf("privacy: empty table")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Report{}
	r.SinglingOut = 100 * singlingOut(rng, real, synth, cfg)
	r.Linkability = 100 * linkability(rng, real, synth, cfg)
	r.AttributeInference = 100 * attributeInference(rng, real, synth, cfg)
	r.Score = (r.SinglingOut + r.Linkability + r.AttributeInference) / 3
	return r, nil
}

// singlingOut builds predicates from synthetic records (equality on
// categorical attributes, narrow intervals on numeric ones) and counts how
// often a predicate isolates exactly one real training record. The baseline
// uses predicates built from random attribute values instead of synthetic
// rows.
func singlingOut(rng *rand.Rand, real, synth *tabular.Table, cfg Config) float64 {
	d := real.Schema.NumColumns()
	nPred := cfg.Predicates
	if nPred > d {
		nPred = d
	}
	stds := make([]float64, d)
	for j, c := range real.Schema.Columns {
		if c.Kind == tabular.Numeric {
			s := stats.Std(real.NumColumn(j))
			if s < 1e-9 {
				s = 1
			}
			stds[j] = s
		}
	}
	matchExactlyOne := func(source []float64, cols []int) bool {
		matches := 0
		for i := 0; i < real.Rows(); i++ {
			row := real.Data.Row(i)
			ok := true
			for _, j := range cols {
				if real.Schema.Columns[j].Kind == tabular.Categorical {
					if row[j] != source[j] { //silofuse:bitwise-ok categorical codes are exact integers
						ok = false
						break
					}
				} else if abs(row[j]-source[j]) > cfg.NumericWindow*stds[j] {
					ok = false
					break
				}
			}
			if ok {
				matches++
				if matches > 1 {
					return false
				}
			}
		}
		return matches == 1
	}

	attackHits, baseHits := 0, 0
	randomRow := make([]float64, d)
	for a := 0; a < cfg.Attacks; a++ {
		cols := rng.Perm(d)[:nPred]
		src := synth.Data.Row(rng.Intn(synth.Rows()))
		if matchExactlyOne(src, cols) {
			attackHits++
		}
		// Baseline: the same predicate shape built from random values drawn
		// from each column's marginal, destroying record-level links.
		for _, j := range cols {
			randomRow[j] = real.Data.At(rng.Intn(real.Rows()), j)
		}
		if matchExactlyOne(randomRow, cols) {
			baseHits++
		}
	}
	n := float64(cfg.Attacks)
	return resistance(float64(attackHits)/n, float64(baseHits)/n)
}

// linkability splits the columns into two disjoint halves (two "parties"),
// then checks whether the nearest synthetic neighbour of a real record's A
// half coincides with the nearest synthetic neighbour of its B half — if
// so, the synthetic data links the halves of that individual. Baseline:
// probability of agreeing by chance under random neighbour assignment.
func linkability(rng *rand.Rand, real, synth *tabular.Table, cfg Config) float64 {
	d := real.Schema.NumColumns()
	if d < 2 {
		return 1
	}
	perm := rng.Perm(d)
	colsA := perm[:d/2]
	colsB := perm[d/2:]
	metric := newMixedMetric(real)

	attacks := cfg.Attacks
	if attacks > real.Rows() {
		attacks = real.Rows()
	}
	hits := 0
	for a := 0; a < attacks; a++ {
		row := real.Data.Row(rng.Intn(real.Rows()))
		na := metric.nearestIndex(row, synth, colsA)
		nb := metric.nearestIndex(row, synth, colsB)
		if na == nb {
			hits++
		}
	}
	attackRate := float64(hits) / float64(attacks)
	baseline := 1 / float64(synth.Rows())
	return resistance(attackRate, baseline)
}

// attributeInference hides one attribute of a real record; the adversary
// predicts it from the nearest synthetic neighbour on the remaining
// attributes. Success for categorical secrets is exact recovery and for
// numeric secrets recovery within a tight tolerance. Baselines guess the
// majority class / the median.
func attributeInference(rng *rand.Rand, real, synth *tabular.Table, cfg Config) float64 {
	d := real.Schema.NumColumns()
	if d < 2 {
		return 1
	}
	metric := newMixedMetric(real)

	// Precompute per-column baselines.
	majority := make([]float64, d)
	medians := make([]float64, d)
	stds := make([]float64, d)
	for j, c := range real.Schema.Columns {
		if c.Kind == tabular.Categorical {
			freq := stats.Frequencies(real.CatColumn(j), c.Cardinality)
			best := 0
			for k, f := range freq {
				if f > freq[best] {
					best = k
				}
			}
			majority[j] = float64(best)
		} else {
			col := real.NumColumn(j)
			medians[j] = stats.Median(col)
			s := stats.Std(col)
			if s < 1e-9 {
				s = 1
			}
			stds[j] = s
		}
	}
	const tol = 0.25 // numeric success: within 0.25 std

	known := make([]int, 0, d-1)
	attackHits, baseHits := 0, 0
	for a := 0; a < cfg.Attacks; a++ {
		secret := rng.Intn(d)
		known = known[:0]
		for j := 0; j < d; j++ {
			if j != secret {
				known = append(known, j)
			}
		}
		row := real.Data.Row(rng.Intn(real.Rows()))
		ni := metric.nearestIndex(row, synth, known)
		guess := synth.Data.At(ni, secret)
		truth := row[secret]
		if real.Schema.Columns[secret].Kind == tabular.Categorical {
			if guess == truth { //silofuse:bitwise-ok categorical codes are exact integers
				attackHits++
			}
			if majority[secret] == truth { //silofuse:bitwise-ok categorical codes are exact integers
				baseHits++
			}
		} else {
			if abs(guess-truth) <= tol*stds[secret] {
				attackHits++
			}
			if abs(medians[secret]-truth) <= tol*stds[secret] {
				baseHits++
			}
		}
	}
	n := float64(cfg.Attacks)
	return resistance(float64(attackHits)/n, float64(baseHits)/n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
