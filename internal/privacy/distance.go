// Package privacy quantifies the leakage of shared synthetic data with the
// three attacks of Section V-B/V-F — singling-out, linkability and
// attribute inference — following the Anonymeter evaluation structure: each
// attack's success rate is contrasted with a naive-guess baseline and
// converted to a 0–100 resistance score, whose mean is the privacy score.
package privacy

import (
	"math"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// mixedMetric computes Gower-style distances between mixed-type rows:
// numeric columns contribute |Δ|/(4σ) clamped to 1 (σ from the reference
// table), categorical columns contribute 0/1 mismatch.
type mixedMetric struct {
	schema *tabular.Schema
	scale  []float64 // per column; 0 for categorical
}

// newMixedMetric fits column scales on ref.
func newMixedMetric(ref *tabular.Table) *mixedMetric {
	m := &mixedMetric{schema: ref.Schema, scale: make([]float64, ref.Schema.NumColumns())}
	for j, c := range ref.Schema.Columns {
		if c.Kind == tabular.Numeric {
			s := stats.Std(ref.NumColumn(j))
			if s < 1e-9 {
				s = 1
			}
			m.scale[j] = 4 * s
		}
	}
	return m
}

// distanceCols computes the distance between rows a and b restricted to the
// given columns (full rows from tables sharing the metric's schema).
func (m *mixedMetric) distanceCols(a, b []float64, cols []int) float64 {
	if len(cols) == 0 {
		return 0
	}
	total := 0.0
	for _, j := range cols {
		if m.schema.Columns[j].Kind == tabular.Categorical {
			if a[j] != b[j] { //silofuse:bitwise-ok categorical codes are exact integers
				total++
			}
		} else {
			d := math.Abs(a[j]-b[j]) / m.scale[j]
			if d > 1 {
				d = 1
			}
			total += d
		}
	}
	return total / float64(len(cols))
}

// nearestIndex returns the index of the row in haystack closest to needle
// over cols.
func (m *mixedMetric) nearestIndex(needle []float64, haystack *tabular.Table, cols []int) int {
	best := -1
	bestDist := math.Inf(1)
	for i := 0; i < haystack.Rows(); i++ {
		d := m.distanceCols(needle, haystack.Data.Row(i), cols)
		if d < bestDist {
			bestDist = d
			best = i
		}
	}
	return best
}

// resistance converts an attack success rate and its naive baseline into a
// 0–1 resistance: 1 means no excess risk over guessing, 0 means the attack
// always succeeds where guessing never would.
func resistance(attackRate, baselineRate float64) float64 {
	denom := 1 - baselineRate
	if denom <= 0 {
		return 1
	}
	risk := (attackRate - baselineRate) / denom
	return stats.Clamp(1-risk, 0, 1)
}
