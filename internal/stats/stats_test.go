//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	xs := []float64{0, 1, 2, 3, 4}
	if Quantile(xs, 0) != 0 || Quantile(xs, 1) != 4 {
		t.Fatal("quantile extremes")
	}
	if Quantile(xs, 0.5) != 2 {
		t.Fatal("quantile mid")
	}
	if !approx(Quantile(xs, 0.25), 1, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if !approx(Pearson(x, y), 1, 1e-12) {
		t.Fatalf("perfect positive: %v", Pearson(x, y))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !approx(Pearson(x, neg), -1, 1e-12) {
		t.Fatalf("perfect negative: %v", Pearson(x, neg))
	}
	if Pearson(x, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Fatal("constant should give 0")
	}
}

func TestTheilsU(t *testing.T) {
	// y determines x exactly: U(x|y) = 1.
	x := []int{0, 0, 1, 1, 0, 0, 1, 1}
	y := []int{0, 0, 1, 1, 0, 0, 1, 1}
	if !approx(TheilsU(x, y, 2, 2), 1, 1e-12) {
		t.Fatalf("deterministic: %v", TheilsU(x, y, 2, 2))
	}
	// Independent: U ≈ 0.
	x2 := []int{0, 1, 0, 1, 0, 1, 0, 1}
	y2 := []int{0, 0, 1, 1, 0, 0, 1, 1}
	if !approx(TheilsU(x2, y2, 2, 2), 0, 1e-12) {
		t.Fatalf("independent: %v", TheilsU(x2, y2, 2, 2))
	}
	// Constant x: defined as 1.
	if TheilsU([]int{0, 0, 0}, []int{0, 1, 2}, 1, 3) != 1 {
		t.Fatal("constant x")
	}
}

func TestTheilsURange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		kx, ky := 2+rng.Intn(4), 2+rng.Intn(4)
		x := make([]int, n)
		y := make([]int, n)
		for i := range x {
			x[i] = rng.Intn(kx)
			y[i] = rng.Intn(ky)
		}
		u := TheilsU(x, y, kx, ky)
		return u >= -1e-12 && u <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationRatio(t *testing.T) {
	// Category fully determines the value: η = 1.
	cats := []int{0, 0, 1, 1}
	vals := []float64{1, 1, 5, 5}
	if !approx(CorrelationRatio(cats, vals, 2), 1, 1e-12) {
		t.Fatalf("η = %v", CorrelationRatio(cats, vals, 2))
	}
	// Same distribution in both groups: η = 0.
	cats2 := []int{0, 0, 1, 1}
	vals2 := []float64{1, 5, 1, 5}
	if !approx(CorrelationRatio(cats2, vals2, 2), 0, 1e-12) {
		t.Fatalf("η = %v", CorrelationRatio(cats2, vals2, 2))
	}
}

func TestTVD(t *testing.T) {
	if TVD([]float64{1, 0}, []float64{0, 1}) != 1 {
		t.Fatal("disjoint TVD should be 1")
	}
	if TVD([]float64{0.5, 0.5}, []float64{0.5, 0.5}) != 0 {
		t.Fatal("identical TVD should be 0")
	}
}

func TestJSDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	if JSDivergence(p, p) != 0 {
		t.Fatal("JSD(p,p) must be 0")
	}
	d := JSDivergence([]float64{1, 0}, []float64{0, 1})
	if !approx(d, 1, 1e-12) {
		t.Fatalf("disjoint base-2 JSD = %v, want 1", d)
	}
	if JSDistance([]float64{1, 0}, []float64{0, 1}) != 1 {
		t.Fatal("JS distance of disjoint must be 1")
	}
}

func TestJSDivergenceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		p := make([]float64, k)
		q := make([]float64, k)
		var sp, sq float64
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
			sp += p[i]
			sq += q[i]
		}
		for i := range p {
			p[i] /= sp
			q[i] /= sq
		}
		d1, d2 := JSDivergence(p, q), JSDivergence(q, p)
		return approx(d1, d2, 1e-12) && d1 >= 0 && d1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKSStatistic(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if KSStatistic(same, same) != 0 {
		t.Fatal("identical samples must have KS 0")
	}
	d := KSStatistic([]float64{1, 2, 3}, []float64{10, 11, 12})
	if d != 1 {
		t.Fatalf("disjoint supports: KS = %v, want 1", d)
	}
	if KSStatistic(nil, same) != 1 {
		t.Fatal("empty sample treated as maximal distance")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 0, 2, 2)
	if !approx(h[0]+h[1], 1, 1e-12) {
		t.Fatal("histogram must normalise")
	}
	if !approx(h[0], 0.4, 1e-12) {
		t.Fatalf("bin 0 = %v", h[0])
	}
	// Out-of-range values clamp.
	h2 := Histogram([]float64{-5, 10}, 0, 1, 4)
	if h2[0] != 0.5 || h2[3] != 0.5 {
		t.Fatalf("clamping failed: %v", h2)
	}
}

func TestFrequencies(t *testing.T) {
	f := Frequencies([]int{0, 1, 1, 2}, 3)
	if !approx(f[1], 0.5, 1e-12) {
		t.Fatalf("freq = %v", f)
	}
	// Out-of-range categories ignored.
	f2 := Frequencies([]int{0, 7}, 2)
	if f2[0] != 0.5 {
		t.Fatalf("out-of-range not ignored: %v", f2)
	}
}

func TestQuantileCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 500)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	// Same distribution → Q-Q correlation near 1.
	if qc := QuantileCorrelation(x, y, 50); qc < 0.98 {
		t.Fatalf("same-dist Q-Q corr = %v", qc)
	}
}

func TestMacroF1(t *testing.T) {
	yt := []int{0, 0, 1, 1}
	if MacroF1(yt, yt, 2) != 1 {
		t.Fatal("perfect prediction must be 1")
	}
	yp := []int{1, 1, 0, 0}
	if MacroF1(yt, yp, 2) != 0 {
		t.Fatal("fully wrong must be 0")
	}
	// Skips classes absent from truth and prediction.
	if MacroF1([]int{0, 0}, []int{0, 0}, 5) != 1 {
		t.Fatal("absent classes must be skipped")
	}
}

func TestD2AbsoluteError(t *testing.T) {
	yt := []float64{1, 2, 3, 4}
	if D2AbsoluteError(yt, yt) != 1 {
		t.Fatal("perfect prediction must be 1")
	}
	med := Median(yt)
	pred := []float64{med, med, med, med}
	if D2AbsoluteError(yt, pred) != 0 {
		t.Fatal("median baseline must be 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp wrong")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SortedCopy(xs)
	if xs[0] != 3 {
		t.Fatal("input mutated")
	}
	if s[0] != 1 || s[2] != 3 {
		t.Fatal("not sorted")
	}
}
