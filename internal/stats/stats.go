// Package stats provides the statistical primitives used by the benchmark
// framework: correlation and association measures, distribution distances,
// histogram utilities and classification/regression scores.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// Quantile returns the q-th quantile of xs (linear interpolation), q in [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either side has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 { //silofuse:bitwise-ok zero-variance guard before division
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// entropy returns the Shannon entropy (nats) of a count vector.
func entropy(counts []float64, total float64) float64 {
	if total == 0 { //silofuse:bitwise-ok zero-total guard
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log(p)
		}
	}
	return h
}

// TheilsU returns the uncertainty coefficient U(x|y): the fraction of the
// entropy of x explained by knowing y. Asymmetric, in [0, 1].
func TheilsU(x, y []int, kx, ky int) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	joint := make([]float64, kx*ky)
	margX := make([]float64, kx)
	margY := make([]float64, ky)
	for i := range x {
		joint[x[i]*ky+y[i]]++
		margX[x[i]]++
		margY[y[i]]++
	}
	n := float64(len(x))
	hx := entropy(margX, n)
	if hx == 0 { //silofuse:bitwise-ok zero-entropy guard
		return 1 // x is constant: fully "explained"
	}
	// H(X|Y) = Σ_y p(y) H(X | Y=y)
	hxy := 0.0
	for j := 0; j < ky; j++ {
		if margY[j] == 0 { //silofuse:bitwise-ok skip empty marginal cell
			continue
		}
		col := make([]float64, kx)
		for i := 0; i < kx; i++ {
			col[i] = joint[i*ky+j]
		}
		hxy += margY[j] / n * entropy(col, margY[j])
	}
	return (hx - hxy) / hx
}

// CorrelationRatio returns η (eta): the square root of the between-group
// variance fraction of values grouped by cats. In [0, 1].
func CorrelationRatio(cats []int, values []float64, k int) float64 {
	if len(cats) != len(values) || len(values) == 0 {
		return 0
	}
	sums := make([]float64, k)
	counts := make([]float64, k)
	for i, c := range cats {
		sums[c] += values[i]
		counts[c]++
	}
	grand := Mean(values)
	var between, total float64
	for j := 0; j < k; j++ {
		if counts[j] > 0 {
			d := sums[j]/counts[j] - grand
			between += counts[j] * d * d
		}
	}
	for _, v := range values {
		d := v - grand
		total += d * d
	}
	if total == 0 { //silofuse:bitwise-ok zero-variance guard before division
		return 0
	}
	return math.Sqrt(between / total)
}

// TVD returns the total variation distance between two probability vectors.
func TVD(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// JSDivergence returns the Jensen–Shannon divergence (base-2 logs, so the
// result is in [0, 1]) between probability vectors p and q.
func JSDivergence(p, q []float64) float64 {
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				s += a[i] * math.Log2(a[i]/b[i])
			}
		}
		return s
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	return 0.5*kl(p, m) + 0.5*kl(q, m)
}

// JSDistance returns the Jensen–Shannon distance, the square root of the
// divergence; it is a metric in [0, 1].
func JSDistance(p, q []float64) float64 {
	d := JSDivergence(p, q)
	if d < 0 {
		d = 0
	}
	return math.Sqrt(d)
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between empirical CDFs.
func KSStatistic(x, y []float64) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 1
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var i, j int
	var d float64
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] < ys[j]:
			i++
		case xs[i] > ys[j]:
			j++
		default:
			// Advance past the tied value in both samples.
			v := xs[i]
			for i < len(xs) && xs[i] == v { //silofuse:bitwise-ok tie detection on sorted samples
				i++
			}
			for j < len(ys) && ys[j] == v { //silofuse:bitwise-ok tie detection on sorted samples
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// Histogram bins values into bins equal-width buckets over [lo, hi] and
// returns the normalised frequency vector. Values outside the range clamp to
// the boundary bins.
func Histogram(values []float64, lo, hi float64, bins int) []float64 {
	out := make([]float64, bins)
	if len(values) == 0 || bins == 0 {
		return out
	}
	width := (hi - lo) / float64(bins)
	for _, v := range values {
		var b int
		if width <= 0 {
			b = 0
		} else {
			b = int((v - lo) / width)
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
		}
		out[b]++
	}
	n := float64(len(values))
	for i := range out {
		out[i] /= n
	}
	return out
}

// Frequencies returns the normalised frequency vector of integer categories.
func Frequencies(cats []int, k int) []float64 {
	out := make([]float64, k)
	if len(cats) == 0 {
		return out
	}
	for _, c := range cats {
		if c >= 0 && c < k {
			out[c]++
		}
	}
	n := float64(len(cats))
	for i := range out {
		out[i] /= n
	}
	return out
}

// SortedCopy returns an ascending-sorted copy of xs.
func SortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

// QuantileCorrelation resamples both sorted samples onto a common grid and
// returns their Pearson correlation — a Q–Q plot linearity score used as the
// numeric column-similarity metric.
func QuantileCorrelation(x, y []float64, points int) float64 {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	qx := make([]float64, points)
	qy := make([]float64, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		qx[i] = Quantile(x, q)
		qy[i] = Quantile(y, q)
	}
	return Pearson(qx, qy)
}

// MacroF1 returns the macro-averaged F1 score of predictions over k classes.
// Classes absent from both truth and prediction are skipped.
func MacroF1(yTrue, yPred []int, k int) float64 {
	tp := make([]float64, k)
	fp := make([]float64, k)
	fn := make([]float64, k)
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			tp[yTrue[i]]++
		} else {
			fp[yPred[i]]++
			fn[yTrue[i]]++
		}
	}
	var sum float64
	var classes int
	for c := 0; c < k; c++ {
		if tp[c]+fp[c]+fn[c] == 0 { //silofuse:bitwise-ok skip class with no observations
			continue
		}
		classes++
		denom := 2*tp[c] + fp[c] + fn[c]
		if denom > 0 {
			sum += 2 * tp[c] / denom
		}
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

// D2AbsoluteError returns the D² score based on absolute error:
// 1 − MAE(pred)/MAE(median baseline). 1 is perfect; ≤ 0 means no better
// than predicting the median.
func D2AbsoluteError(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	med := Median(yTrue)
	var mae, maeBase float64
	for i := range yTrue {
		mae += math.Abs(yTrue[i] - yPred[i])
		maeBase += math.Abs(yTrue[i] - med)
	}
	if maeBase == 0 { //silofuse:bitwise-ok zero-baseline guard
		if mae == 0 { //silofuse:bitwise-ok zero-baseline guard
			return 1
		}
		return 0
	}
	return 1 - mae/maeBase
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
