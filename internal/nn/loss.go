package nn

import (
	"math"

	"silofuse/internal/tensor"
)

// MSELoss returns the mean-squared error between pred and target and the
// gradient dLoss/dPred. The mean is taken over all elements, matching the
// diffusion objective (2)/(5) in the paper.
func MSELoss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := tensor.New(pred.Rows, pred.Cols)
	return MSELossInto(pred, target, grad), grad
}

// MSELossInto is the destination-passing form of MSELoss: the gradient is
// written into grad (which must match pred's shape) and the loss returned.
//
//silofuse:noalloc
func MSELossInto(pred, target, grad *tensor.Matrix) float64 {
	if grad.Rows != pred.Rows || grad.Cols != pred.Cols {
		panic("nn: MSELossInto grad shape mismatch")
	}
	n := float64(len(pred.Data))
	loss := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n
}

// Softmax computes row-wise softmax of logits into a new matrix.
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		orow := out.Row(i)
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - max)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// CrossEntropyLoss computes the mean categorical cross-entropy of logits
// against integer class labels, returning the loss and dLoss/dLogits
// (softmax - onehot)/batch.
func CrossEntropyLoss(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	probs := Softmax(logits)
	n := float64(logits.Rows)
	loss := 0.0
	grad := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		p := probs.Row(i)
		g := grad.Row(i)
		y := labels[i]
		loss -= math.Log(math.Max(p[y], 1e-12))
		for j := range g {
			g[j] = p[j] / n
		}
		g[y] -= 1 / n
	}
	return loss / n, grad
}

// BCEWithLogitsLoss computes the mean binary cross-entropy of logits against
// 0/1 targets, returning the loss and dLoss/dLogits (σ(x)-y)/batch. It is
// numerically stable via the log-sum-exp identity.
func BCEWithLogitsLoss(logits *tensor.Matrix, targets []float64) (float64, *tensor.Matrix) {
	n := float64(logits.Rows)
	loss := 0.0
	grad := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		x := logits.Data[i]
		y := targets[i]
		// log(1+e^x) computed stably.
		var softplus float64
		if x > 0 {
			softplus = x + math.Log1p(math.Exp(-x))
		} else {
			softplus = math.Log1p(math.Exp(x))
		}
		loss += softplus - x*y
		sig := 1 / (1 + math.Exp(-x))
		grad.Data[i] = (sig - y) / n
	}
	return loss / n, grad
}

// GaussianNLLLoss computes the mean negative log-likelihood of target under
// per-element Normal(mean, exp(logVar)). It returns the loss and the
// gradients with respect to mean and logVar. Used by the autoencoder's
// continuous output heads (loss (4) in the paper).
func GaussianNLLLoss(mean, logVar, target *tensor.Matrix) (float64, *tensor.Matrix, *tensor.Matrix) {
	n := float64(len(mean.Data))
	gMean := tensor.New(mean.Rows, mean.Cols)
	gLV := tensor.New(mean.Rows, mean.Cols)
	loss := 0.0
	const logVarClamp = 10
	for i := range mean.Data {
		lv := math.Max(-logVarClamp, math.Min(logVarClamp, logVar.Data[i]))
		inv := math.Exp(-lv)
		d := mean.Data[i] - target.Data[i]
		loss += 0.5 * (lv + d*d*inv)
		gMean.Data[i] = d * inv / n
		if logVar.Data[i] == lv { //silofuse:bitwise-ok inside clamp: gradient flows
			gLV.Data[i] = 0.5 * (1 - d*d*inv) / n
		}
	}
	return loss / n, gMean, gLV
}

// KLStandardNormal computes the KL divergence of N(mu, exp(logVar)) from
// N(0, I), averaged over the batch, and its gradients. Used for the optional
// VAE-style regularisation of autoencoder latents.
func KLStandardNormal(mu, logVar *tensor.Matrix) (float64, *tensor.Matrix, *tensor.Matrix) {
	n := float64(mu.Rows)
	gMu := tensor.New(mu.Rows, mu.Cols)
	gLV := tensor.New(mu.Rows, mu.Cols)
	loss := 0.0
	for i := range mu.Data {
		lv := logVar.Data[i]
		v := math.Exp(lv)
		loss += 0.5 * (v + mu.Data[i]*mu.Data[i] - 1 - lv)
		gMu.Data[i] = mu.Data[i] / n
		gLV.Data[i] = 0.5 * (v - 1) / n
	}
	return loss / n, gMu, gLV
}
