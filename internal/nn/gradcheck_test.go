//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package nn

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// checkLayerGradients verifies Backward against central finite differences
// for both the input gradient and all parameter gradients, using the scalar
// loss L = Σ output ⊙ R for a fixed random R.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Matrix, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	out := l.Forward(x, false)
	r := tensor.New(out.Rows, out.Cols).Randn(rng, 1)
	ZeroGrads(l.Params())
	gradIn := l.Backward(r.Clone())

	loss := func() float64 {
		o := l.Forward(x, false)
		s := 0.0
		for i := range o.Data {
			s += o.Data[i] * r.Data[i]
		}
		return s
	}

	const h = 1e-5
	// Input gradient.
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad mismatch at %d: analytic %g vs numeric %g", i, gradIn.Data[i], num)
		}
	}
	// Parameter gradients.
	for _, p := range l.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := loss()
			p.Value.Data[i] = orig - h
			lm := loss()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s grad mismatch at %d: analytic %g vs numeric %g", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 5, 3)
	x := tensor.New(4, 5).Randn(rng, 1)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestGELUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(3, 6).Randn(rng, 1.5)
	checkLayerGradients(t, &GELU{}, x, 1e-5)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(3, 6).Randn(rng, 1.5)
	checkLayerGradients(t, NewLeakyReLU(0.2), x, 1e-5)
}

func TestTanhGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(3, 4).Randn(rng, 1)
	checkLayerGradients(t, &Tanh{}, x, 1e-5)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(3, 4).Randn(rng, 1)
	checkLayerGradients(t, &Sigmoid{}, x, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Keep values away from the kink at 0 for finite differences.
	x := tensor.New(3, 5).Randn(rng, 1)
	x.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.1
		}
		return v
	})
	checkLayerGradients(t, &ReLU{}, x, 1e-5)
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLayerNorm(7)
	// Non-trivial gamma/beta so their gradients are exercised.
	l.Gamma.Value.Randn(rng, 1)
	l.Beta.Value.Randn(rng, 1)
	x := tensor.New(4, 7).Randn(rng, 2)
	checkLayerGradients(t, l, x, 1e-4)
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv1D(rng, 2, 3, 3, 2, 1) // inC=2, outC=3, k=3, stride=2, pad=1
	x := tensor.New(2, 2*8).Randn(rng, 1)
	checkLayerGradients(t, c, x, 1e-4)
}

func TestConvTranspose1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := NewConvTranspose1D(rng, 3, 2, 4, 2, 1)
	x := tensor.New(2, 3*5).Randn(rng, 1)
	checkLayerGradients(t, c, x, 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := NewSequential(NewLinear(rng, 4, 8), &GELU{}, NewLinear(rng, 8, 3), &Tanh{})
	x := tensor.New(3, 4).Randn(rng, 1)
	checkLayerGradients(t, seq, x, 1e-4)
}

func TestDiffusionMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDiffusionMLP(rng, 4, 8, 4, 2, 8, 0)
	x := tensor.New(3, 4).Randn(rng, 1)
	ts := []int{1, 5, 9}

	out := d.Forward(x, ts, false)
	r := tensor.New(out.Rows, out.Cols).Randn(rng, 1)
	ZeroGrads(d.Params())
	gradIn := d.Backward(r.Clone())

	loss := func() float64 {
		o := d.Forward(x, ts, false)
		s := 0.0
		for i := range o.Data {
			s += o.Data[i] * r.Data[i]
		}
		return s
	}
	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("input grad mismatch at %d: %g vs %g", i, gradIn.Data[i], num)
		}
	}
	for _, p := range d.Params() {
		for i := 0; i < len(p.Value.Data); i += 7 { // sample every 7th for speed
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lp := loss()
			p.Value.Data[i] = orig - h
			lm := loss()
			p.Value.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s grad mismatch at %d: %g vs %g", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

// checkLossGradients verifies a loss function's gradient numerically.
func checkLossGrad(t *testing.T, name string, f func(x *tensor.Matrix) (float64, *tensor.Matrix), x *tensor.Matrix, tol float64) {
	t.Helper()
	_, grad := f(x)
	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp, _ := f(x)
		x.Data[i] = orig - h
		lm, _ := f(x)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s grad mismatch at %d: analytic %g vs numeric %g", name, i, grad.Data[i], num)
		}
	}
}

func TestMSELossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	target := tensor.New(3, 4).Randn(rng, 1)
	x := tensor.New(3, 4).Randn(rng, 1)
	checkLossGrad(t, "mse", func(x *tensor.Matrix) (float64, *tensor.Matrix) {
		return MSELoss(x, target)
	}, x, 1e-5)
}

func TestCrossEntropyLossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.New(5, 3).Randn(rng, 1)
	labels := []int{0, 2, 1, 1, 0}
	checkLossGrad(t, "ce", func(x *tensor.Matrix) (float64, *tensor.Matrix) {
		return CrossEntropyLoss(x, labels)
	}, x, 1e-4)
}

func TestBCEWithLogitsLossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := tensor.New(6, 1).Randn(rng, 2)
	targets := []float64{0, 1, 1, 0, 1, 0}
	checkLossGrad(t, "bce", func(x *tensor.Matrix) (float64, *tensor.Matrix) {
		return BCEWithLogitsLoss(x, targets)
	}, x, 1e-5)
}

func TestGaussianNLLGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	target := tensor.New(3, 4).Randn(rng, 1)
	mean := tensor.New(3, 4).Randn(rng, 1)
	logVar := tensor.New(3, 4).Randn(rng, 0.5)

	_, gm, glv := GaussianNLLLoss(mean, logVar, target)
	const h = 1e-6
	for i := range mean.Data {
		orig := mean.Data[i]
		mean.Data[i] = orig + h
		lp, _, _ := GaussianNLLLoss(mean, logVar, target)
		mean.Data[i] = orig - h
		lm, _, _ := GaussianNLLLoss(mean, logVar, target)
		mean.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gm.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("gaussian nll mean grad mismatch at %d: %g vs %g", i, gm.Data[i], num)
		}
	}
	for i := range logVar.Data {
		orig := logVar.Data[i]
		logVar.Data[i] = orig + h
		lp, _, _ := GaussianNLLLoss(mean, logVar, target)
		logVar.Data[i] = orig - h
		lm, _, _ := GaussianNLLLoss(mean, logVar, target)
		logVar.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-glv.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("gaussian nll logvar grad mismatch at %d: %g vs %g", i, glv.Data[i], num)
		}
	}
}

func TestKLStandardNormalGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	mu := tensor.New(3, 4).Randn(rng, 1)
	lv := tensor.New(3, 4).Randn(rng, 0.5)
	_, gMu, gLV := KLStandardNormal(mu, lv)
	const h = 1e-6
	for i := range mu.Data {
		orig := mu.Data[i]
		mu.Data[i] = orig + h
		lp, _, _ := KLStandardNormal(mu, lv)
		mu.Data[i] = orig - h
		lm, _, _ := KLStandardNormal(mu, lv)
		mu.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gMu.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("kl mu grad mismatch at %d", i)
		}
	}
	for i := range lv.Data {
		orig := lv.Data[i]
		lv.Data[i] = orig + h
		lp, _, _ := KLStandardNormal(mu, lv)
		lv.Data[i] = orig - h
		lm, _, _ := KLStandardNormal(mu, lv)
		lv.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gLV.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("kl logvar grad mismatch at %d", i)
		}
	}
}

// checkWarmMatchesCold proves the workspace-reuse path is bit-identical to
// the cold-start path: a layer that has already run (and whose buffers are
// dirty with previous results) must produce exactly the same output, input
// gradient and parameter gradients as a freshly constructed twin. Compared
// with ==, not a tolerance — the bench snapshot's losses must not move when
// workspaces warm up.
func checkWarmMatchesCold(t *testing.T, name string, mk func() Layer, x, g *tensor.Matrix) {
	t.Helper()
	cold := mk()
	yCold := cold.Forward(x, true).Clone()
	ginCold := cold.Backward(g).Clone()

	warm := mk()
	// Dirty every workspace with one full step, then reset gradients as an
	// optimiser would.
	warm.Forward(x, true)
	warm.Backward(g)
	ZeroGrads(warm.Params())
	yWarm := warm.Forward(x, true)
	ginWarm := warm.Backward(g)

	for i := range yCold.Data {
		if yCold.Data[i] != yWarm.Data[i] {
			t.Fatalf("%s: warm output differs at %d: %v vs %v", name, i, yCold.Data[i], yWarm.Data[i])
		}
	}
	for i := range ginCold.Data {
		if ginCold.Data[i] != ginWarm.Data[i] {
			t.Fatalf("%s: warm input grad differs at %d: %v vs %v", name, i, ginCold.Data[i], ginWarm.Data[i])
		}
	}
	cp, wp := cold.Params(), warm.Params()
	for pi := range cp {
		for i := range cp[pi].Grad.Data {
			if cp[pi].Grad.Data[i] != wp[pi].Grad.Data[i] {
				t.Fatalf("%s: warm grad of %s differs at %d", name, cp[pi].Name, i)
			}
		}
	}
}

func TestWorkspaceReuseBitIdentical(t *testing.T) {
	dataRng := rand.New(rand.NewSource(41))
	x := tensor.New(9, 12).Randn(dataRng, 1)
	g := tensor.New(9, 12).Randn(dataRng, 1)
	gHalf := tensor.New(9, 6).Randn(dataRng, 1)

	mkRng := func() *rand.Rand { return rand.New(rand.NewSource(42)) }
	cases := []struct {
		name string
		mk   func() Layer
		g    *tensor.Matrix
	}{
		{"Linear", func() Layer { return NewLinear(mkRng(), 12, 6) }, gHalf},
		{"GELU", func() Layer { return &GELU{} }, g},
		{"ReLU", func() Layer { return &ReLU{} }, g},
		{"LeakyReLU", func() Layer { return NewLeakyReLU(0.2) }, g},
		{"Tanh", func() Layer { return &Tanh{} }, g},
		{"Sigmoid", func() Layer { return &Sigmoid{} }, g},
		{"LayerNorm", func() Layer { return NewLayerNorm(12) }, g},
		{"BatchNorm", func() Layer { return NewBatchNorm(12) }, g},
		{"Conv1D", func() Layer { return NewConv1D(mkRng(), 2, 2, 3, 1, 1) }, g},
		{"ConvTranspose1D", func() Layer { return NewConvTranspose1D(mkRng(), 2, 2, 3, 1, 1) }, g},
		{"Sequential", func() Layer {
			rng := mkRng()
			return NewSequential(NewLinear(rng, 12, 12), &GELU{}, NewLinear(rng, 12, 12))
		}, g},
	}
	for _, c := range cases {
		checkWarmMatchesCold(t, c.name, c.mk, x.Clone(), c.g.Clone())
	}
}

// TestDropoutWorkspaceKeepsRNGStream verifies two things at once: the
// reused-mask path draws exactly one rng.Float64 per element in the same
// order as the cold path, and a shape change falls back to fresh buffers.
// Two same-seeded instances see the same element counts, so their streams —
// and therefore their masks — must stay aligned even though one of them is
// forced through a workspace reallocation.
func TestDropoutWorkspaceKeepsRNGStream(t *testing.T) {
	dataRng := rand.New(rand.NewSource(43))
	x := tensor.New(6, 4).Randn(dataRng, 1)
	warmup := tensor.New(6, 4).Randn(dataRng, 1)   // same shape: warm reuse
	reshaped := tensor.New(4, 6).Randn(dataRng, 1) // same count, new shape: cold restart

	dWarm := NewDropout(rand.New(rand.NewSource(44)), 0.3)
	dWarm.Forward(warmup, true)
	yWarm := dWarm.Forward(x, true)

	dCold := NewDropout(rand.New(rand.NewSource(44)), 0.3)
	dCold.Forward(reshaped, true)
	yCold := dCold.Forward(x, true)

	for i := range yWarm.Data {
		if yWarm.Data[i] != yCold.Data[i] {
			t.Fatalf("dropout mask diverged at %d: %v vs %v", i, yWarm.Data[i], yCold.Data[i])
		}
	}
}

// TestLinearSteadyStateAllocs pins the zero-allocation contract for the
// densest layer on the hot path.
func TestLinearSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	l := NewLinear(rng, 64, 64)
	x := tensor.New(128, 64).Randn(rng, 1)
	g := tensor.New(128, 64).Randn(rng, 1)
	l.Forward(x, true)
	l.Backward(g)
	if allocs := testing.AllocsPerRun(50, func() {
		l.Forward(x, true)
		l.Backward(g)
	}); allocs != 0 {
		t.Fatalf("warm Linear step performs %v allocs, want 0", allocs)
	}
}

func BenchmarkLinearForward(b *testing.B) {
	rng := rand.New(rand.NewSource(46))
	l := NewLinear(rng, 64, 64)
	x := tensor.New(128, 64).Randn(rng, 1)
	l.Forward(x, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
	}
}

func BenchmarkLinearBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	l := NewLinear(rng, 64, 64)
	x := tensor.New(128, 64).Randn(rng, 1)
	g := tensor.New(128, 64).Randn(rng, 1)
	l.Forward(x, true)
	l.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Backward(g)
	}
}
