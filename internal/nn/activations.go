package nn

import (
	"math"

	"silofuse/internal/tensor"
)

const invSqrt2 = 0.7071067811865476 // 1/sqrt(2)

// GELU is the exact Gaussian error linear unit used by the paper's
// autoencoders and diffusion backbones: gelu(x) = x·Φ(x).
type GELU struct {
	input *tensor.Matrix
}

// Forward applies gelu elementwise.
func (g *GELU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	g.input = x
	return x.Map(func(v float64) float64 {
		return 0.5 * v * (1 + math.Erf(v*invSqrt2))
	})
}

// Backward multiplies by gelu'(x) = Φ(x) + x·φ(x).
func (g *GELU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for i, v := range g.input.Data {
		cdf := 0.5 * (1 + math.Erf(v*invSqrt2))
		pdf := math.Exp(-0.5*v*v) / math.Sqrt(2*math.Pi)
		out.Data[i] *= cdf + v*pdf
	}
	return out
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// LeakyReLU with negative slope Alpha, used by the GAN baselines.
type LeakyReLU struct {
	Alpha float64
	input *tensor.Matrix
}

// NewLeakyReLU creates a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies max(x, αx) elementwise.
func (l *LeakyReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	l.input = x
	a := l.Alpha
	return x.Map(func(v float64) float64 {
		if v >= 0 {
			return v
		}
		return a * v
	})
}

// Backward multiplies by 1 or α depending on the input sign.
func (l *LeakyReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for i, v := range l.input.Data {
		if v < 0 {
			out.Data[i] *= l.Alpha
		}
	}
	return out
}

// Params returns nil; LeakyReLU has no parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// ReLU rectified linear unit.
type ReLU struct {
	input *tensor.Matrix
}

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	r.input = x
	return x.Map(func(v float64) float64 { return math.Max(0, v) })
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for i, v := range r.input.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh hyperbolic tangent activation.
type Tanh struct {
	output *tensor.Matrix
}

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	t.output = x.Map(math.Tanh)
	return t.output
}

// Backward multiplies by 1 - tanh(x)^2.
func (t *Tanh) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for i, y := range t.output.Data {
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid logistic activation.
type Sigmoid struct {
	output *tensor.Matrix
}

// Forward applies 1/(1+e^-x) elementwise.
func (s *Sigmoid) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	s.output = x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	return s.output
}

// Backward multiplies by σ(x)(1-σ(x)).
func (s *Sigmoid) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	out := gradOut.Clone()
	for i, y := range s.output.Data {
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params returns nil; Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }
