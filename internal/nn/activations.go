package nn

import (
	"math"

	"silofuse/internal/tensor"
)

const invSqrt2 = 0.7071067811865476 // 1/sqrt(2)

// Every activation keeps two persistent workspaces (forward output,
// backward grad) reused across steps while the batch shape is unchanged.
// The elementwise expressions are byte-for-byte the ones the old
// Map/Clone-based paths evaluated, so outputs stay bit-identical.

// GELU is the exact Gaussian error linear unit used by the paper's
// autoencoders and diffusion backbones: gelu(x) = x·Φ(x).
type GELU struct {
	input    *tensor.Matrix
	out, gin *tensor.Matrix
}

// Forward applies gelu elementwise.
func (g *GELU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	g.input = x
	g.out = tensor.Ensure(g.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		g.out.Data[i] = 0.5 * v * (1 + math.Erf(v*invSqrt2))
	}
	return g.out
}

// Backward multiplies by gelu'(x) = Φ(x) + x·φ(x).
func (g *GELU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g.gin = tensor.Ensure(g.gin, gradOut.Rows, gradOut.Cols)
	for i, v := range g.input.Data {
		cdf := 0.5 * (1 + math.Erf(v*invSqrt2))
		pdf := math.Exp(-0.5*v*v) / math.Sqrt(2*math.Pi)
		g.gin.Data[i] = gradOut.Data[i] * (cdf + v*pdf)
	}
	return g.gin
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// LeakyReLU with negative slope Alpha, used by the GAN baselines.
type LeakyReLU struct {
	Alpha    float64
	input    *tensor.Matrix
	out, gin *tensor.Matrix
}

// NewLeakyReLU creates a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies max(x, αx) elementwise.
func (l *LeakyReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	l.input = x
	l.out = tensor.Ensure(l.out, x.Rows, x.Cols)
	a := l.Alpha
	for i, v := range x.Data {
		if v >= 0 {
			l.out.Data[i] = v
		} else {
			l.out.Data[i] = a * v
		}
	}
	return l.out
}

// Backward multiplies by 1 or α depending on the input sign.
func (l *LeakyReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	l.gin = tensor.Ensure(l.gin, gradOut.Rows, gradOut.Cols)
	for i, v := range l.input.Data {
		if v < 0 {
			l.gin.Data[i] = gradOut.Data[i] * l.Alpha
		} else {
			l.gin.Data[i] = gradOut.Data[i]
		}
	}
	return l.gin
}

// Params returns nil; LeakyReLU has no parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// ReLU rectified linear unit.
type ReLU struct {
	input    *tensor.Matrix
	out, gin *tensor.Matrix
}

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	r.input = x
	r.out = tensor.Ensure(r.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		r.out.Data[i] = math.Max(0, v)
	}
	return r.out
}

// Backward zeroes gradients where the input was negative.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	r.gin = tensor.Ensure(r.gin, gradOut.Rows, gradOut.Cols)
	for i, v := range r.input.Data {
		if v <= 0 {
			r.gin.Data[i] = 0
		} else {
			r.gin.Data[i] = gradOut.Data[i]
		}
	}
	return r.gin
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Tanh hyperbolic tangent activation.
type Tanh struct {
	output *tensor.Matrix
	gin    *tensor.Matrix
}

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	t.output = tensor.Ensure(t.output, x.Rows, x.Cols)
	for i, v := range x.Data {
		t.output.Data[i] = math.Tanh(v)
	}
	return t.output
}

// Backward multiplies by 1 - tanh(x)^2.
func (t *Tanh) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	t.gin = tensor.Ensure(t.gin, gradOut.Rows, gradOut.Cols)
	for i, y := range t.output.Data {
		t.gin.Data[i] = gradOut.Data[i] * (1 - y*y)
	}
	return t.gin
}

// Params returns nil; Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Sigmoid logistic activation.
type Sigmoid struct {
	output *tensor.Matrix
	gin    *tensor.Matrix
}

// Forward applies 1/(1+e^-x) elementwise.
func (s *Sigmoid) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	s.output = tensor.Ensure(s.output, x.Rows, x.Cols)
	for i, v := range x.Data {
		s.output.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.output
}

// Backward multiplies by σ(x)(1-σ(x)).
func (s *Sigmoid) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	s.gin = tensor.Ensure(s.gin, gradOut.Rows, gradOut.Cols)
	for i, y := range s.output.Data {
		s.gin.Data[i] = gradOut.Data[i] * (y * (1 - y))
	}
	return s.gin
}

// Params returns nil; Sigmoid has no parameters.
func (s *Sigmoid) Params() []*Param { return nil }
