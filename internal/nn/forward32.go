package nn

import (
	"fmt"
	"math"

	"silofuse/internal/tensor"
)

// This file implements the reduced-precision inference path: float32
// forward-only snapshots of trained float64 modules, built where
// bit-exactness is not contracted (diffusion sampling, decode-side
// autoencoder trunks). Training never touches these types — gradients,
// optimiser state and every Backward stay float64 — so the snapshots carry
// no Param machinery, only weight copies and persistent workspaces.
//
// Snapshots are taken from live layers (NewLinear32FromLinear narrows
// whatever the Param currently holds), so callers that use EMA-averaged
// weights must snapshot while the average is applied.

// Linear32 is a forward-only float32 copy of a Linear layer: y = xW + b.
type Linear32 struct {
	W, B *tensor.Matrix32
	out  *tensor.Matrix32
}

// NewLinear32FromLinear narrows the layer's current weights to float32.
func NewLinear32FromLinear(l *Linear) *Linear32 {
	return &Linear32{W: tensor.To32(l.W.Value), B: tensor.To32(l.B.Value)}
}

// Forward computes xW + b with the f32 fused kernel.
//
//silofuse:noalloc
func (l *Linear32) Forward(x *tensor.Matrix32) *tensor.Matrix32 {
	l.out = tensor.Ensure32(l.out, x.Rows, l.W.Cols)
	return tensor.MatMulAddRow32Into(l.out, x, l.W, l.B)
}

// GELU32 is the forward-only float32 GELU. The erf itself is evaluated in
// float64 (Go has no float32 erf) and rounded once — the same
// transcendental the f64 path computes, so the only precision loss is the
// float32 representation of inputs and outputs.
type GELU32 struct {
	out *tensor.Matrix32
}

// Forward applies gelu elementwise.
//
//silofuse:noalloc
func (g *GELU32) Forward(x *tensor.Matrix32) *tensor.Matrix32 {
	g.out = tensor.Ensure32(g.out, x.Rows, x.Cols)
	for i, v := range x.Data {
		vf := float64(v)                                                //silofuse:precision-ok erf is evaluated in float64 and rounded once
		g.out.Data[i] = float32(0.5 * vf * (1 + math.Erf(vf*invSqrt2))) //silofuse:precision-ok erf is evaluated in float64 and rounded once
	}
	return g.out
}

// forward32Layer is one stage of a float32 inference trunk.
type forward32Layer interface {
	Forward(x *tensor.Matrix32) *tensor.Matrix32
}

// Sequential32 chains forward-only float32 layers.
type Sequential32 struct {
	Layers []forward32Layer
}

// NewSequential32 snapshots an inference trunk: Linear layers are narrowed,
// GELU maps to GELU32, and Dropout — identity in evaluation mode — is
// dropped entirely. Any other layer kind is a bug in the caller: the f32
// path only backs the MLP trunks this repository samples and decodes with.
func NewSequential32(s *Sequential) (*Sequential32, error) {
	out := &Sequential32{}
	for _, l := range s.Layers {
		switch l := l.(type) {
		case *Linear:
			out.Layers = append(out.Layers, NewLinear32FromLinear(l))
		case *GELU:
			out.Layers = append(out.Layers, &GELU32{})
		case *Dropout:
			// eval-mode identity
		default:
			return nil, fmt.Errorf("nn: no float32 forward for layer %T", l)
		}
	}
	return out, nil
}

// Forward applies every layer in order.
//
//silofuse:noalloc
func (s *Sequential32) Forward(x *tensor.Matrix32) *tensor.Matrix32 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// DiffusionMLP32 is the forward-only float32 snapshot of a DiffusionMLP,
// used by the reduced-precision sampling loop. Structure mirrors the f64
// Forward exactly: input projection plus projected sinusoidal timestep
// features, the hidden trunk, and the output projection.
type DiffusionMLP32 struct {
	In, TimeDim int

	inProj   *Linear32
	timeProj *Linear32
	blocks   *Sequential32
	outProj  *Linear32

	embed [][]float32 // narrowed sinusoidal rows, indexed by timestep
	tfeat *tensor.Matrix32
	hsum  *tensor.Matrix32
}

// Snapshot32 narrows the backbone's current weights into a forward-only
// float32 twin. Call it after EMA.Apply when sampling with averaged
// weights; the snapshot does not track later weight updates.
func (d *DiffusionMLP) Snapshot32() (*DiffusionMLP32, error) {
	blocks, err := NewSequential32(d.blocks)
	if err != nil {
		return nil, err
	}
	s := &DiffusionMLP32{
		In: d.In, TimeDim: d.TimeDim,
		inProj:   NewLinear32FromLinear(d.inProj),
		timeProj: NewLinear32FromLinear(d.timeProj),
		blocks:   blocks,
		outProj:  NewLinear32FromLinear(d.outProj),
		embed:    make([][]float32, len(d.embed)),
	}
	for t, row := range d.embed {
		if row != nil {
			s.embed[t] = tensor.VecTo32(row)
		}
	}
	return s, nil
}

// embedRow32 returns the narrowed sinusoidal embedding for timestep t,
// computing it on first use for timesteps outside the snapshotted table.
func (d *DiffusionMLP32) embedRow32(t int) []float32 {
	if t >= len(d.embed) {
		grown := make([][]float32, t+1)
		copy(grown, d.embed)
		d.embed = grown
	}
	if d.embed[t] == nil {
		row := make([]float64, d.TimeDim)
		SinusoidalEmbedding(t, row)
		d.embed[t] = tensor.VecTo32(row)
	}
	return d.embed[t]
}

// Forward predicts the noise for inputs x at per-row timesteps ts, in
// evaluation mode (dropout off).
//
//silofuse:noalloc
func (d *DiffusionMLP32) Forward(x *tensor.Matrix32, ts []int) *tensor.Matrix32 {
	d.tfeat = tensor.Ensure32(d.tfeat, len(ts), d.TimeDim)
	for i, t := range ts {
		copy(d.tfeat.Row(i), d.embedRow32(t))
	}
	h := d.inProj.Forward(x)
	te := d.timeProj.Forward(d.tfeat)
	d.hsum = tensor.Ensure32(d.hsum, h.Rows, h.Cols)
	h = tensor.Add32Into(d.hsum, h, te)
	h = d.blocks.Forward(h)
	return d.outProj.Forward(h)
}
