package nn

import (
	"math/rand"

	"silofuse/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout). It is the identity at
// inference time.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask *tensor.Matrix
}

// NewDropout creates a Dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies the dropout mask when train is true.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	d.mask = tensor.New(x.Rows, x.Cols)
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			out.Data[i] = v / keep
		}
	}
	return out
}

// Backward applies the same mask to the incoming gradient.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return gradOut
	}
	out := gradOut.Clone()
	return out.MulElem(out, d.mask)
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
