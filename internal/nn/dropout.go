package nn

import (
	"math/rand"

	"silofuse/internal/tensor"
)

// Dropout zeroes each activation with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout). It is the identity at
// inference time.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask *tensor.Matrix

	out, gin *tensor.Matrix // persistent workspaces
}

// NewDropout creates a Dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout { return &Dropout{P: p, rng: rng} }

// Forward applies the dropout mask when train is true. The rng is consumed
// once per element in data order, so a reused workspace draws exactly the
// same mask sequence as the old allocating path.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	d.mask = tensor.Ensure(d.mask, x.Rows, x.Cols)
	d.out = tensor.Ensure(d.out, x.Rows, x.Cols)
	out := d.out
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = 1 / keep
			out.Data[i] = v / keep
		} else {
			d.mask.Data[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward applies the same mask to the incoming gradient.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return gradOut
	}
	d.gin = tensor.Ensure(d.gin, gradOut.Rows, gradOut.Cols)
	return tensor.MulElemInto(d.gin, gradOut, d.mask)
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// SetRng swaps the rng that draws dropout masks. Data-parallel training
// pins the whole of an iteration's randomness to a per-shard stream, so the
// shard driver redirects every dropout layer at it before each TrainStep.
func (d *Dropout) SetRng(rng *rand.Rand) { d.rng = rng }
