package nn

import (
	"math"

	"silofuse/internal/tensor"
)

// SinusoidalEmbedding fills out with the transformer-style sinusoidal
// position features for timestep t: pairs of (sin, cos) at geometrically
// spaced frequencies. dim must be even.
func SinusoidalEmbedding(t int, out []float64) {
	dim := len(out)
	half := dim / 2
	for i := 0; i < half; i++ {
		freq := math.Exp(-math.Log(10000) * float64(i) / float64(half))
		out[i] = math.Sin(float64(t) * freq)
		out[half+i] = math.Cos(float64(t) * freq)
	}
}

// TimestepFeatures returns the (batch, dim) matrix of sinusoidal embeddings
// for a batch of timesteps.
func TimestepFeatures(ts []int, dim int) *tensor.Matrix {
	out := tensor.New(len(ts), dim)
	for i, t := range ts {
		SinusoidalEmbedding(t, out.Row(i))
	}
	return out
}
