package nn

import (
	"math"
	"sync"

	"silofuse/internal/tensor"
)

// The geometric frequency ladder depends only on the embedding width, so it
// is computed once per dim and cached for the life of the process instead
// of paying a math.Exp per element per row per step.
var (
	freqMu    sync.Mutex
	freqCache = map[int][]float64{}
)

func timestepFreqs(half int) []float64 {
	freqMu.Lock()
	defer freqMu.Unlock()
	if f, ok := freqCache[half]; ok {
		return f
	}
	f := make([]float64, half)
	for i := 0; i < half; i++ {
		f[i] = math.Exp(-math.Log(10000) * float64(i) / float64(half))
	}
	freqCache[half] = f
	return f
}

// SinusoidalEmbedding fills out with the transformer-style sinusoidal
// position features for timestep t: pairs of (sin, cos) at geometrically
// spaced frequencies. dim must be even.
func SinusoidalEmbedding(t int, out []float64) {
	half := len(out) / 2
	freqs := timestepFreqs(half)
	tf := float64(t)
	for i, freq := range freqs {
		out[i] = math.Sin(tf * freq)
		out[half+i] = math.Cos(tf * freq)
	}
}

// TimestepFeatures returns the (batch, dim) matrix of sinusoidal embeddings
// for a batch of timesteps.
func TimestepFeatures(ts []int, dim int) *tensor.Matrix {
	out := tensor.New(len(ts), dim)
	for i, t := range ts {
		SinusoidalEmbedding(t, out.Row(i))
	}
	return out
}
