package nn

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// The f32 forward path is a lossy twin of the f64 eval path: same
// structure, same transcendentals, float32 storage and accumulation. These
// tests pin that the divergence stays at rounding scale for the shapes this
// repository runs, and that the steady-state forward allocates nothing.

func assertClose32(t *testing.T, op string, want *tensor.Matrix, got *tensor.Matrix32, tol float64) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", op, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	g64 := tensor.To64(got)
	for i, v := range want.Data {
		if d := math.Abs(g64.Data[i] - v); d > tol*(1+math.Abs(v)) {
			t.Fatalf("%s: diff %g at %d (want %g, got %g) exceeds tol %g", op, d, i, v, g64.Data[i], tol)
		}
	}
}

func TestLinear32MatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	l := NewLinear(rng, 12, 20)
	l32 := NewLinear32FromLinear(l)
	x := tensor.New(9, 12).Randn(rng, 1)
	want := l.Forward(x, false)
	got := l32.Forward(tensor.To32(x))
	assertClose32(t, "Linear32", want, got, 1e-5)
}

func TestSequential32DropsDropoutAndMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seq := NewSequential(
		NewLinear(rng, 8, 24), &GELU{},
		NewDropout(rng, 0.5), // identity in eval mode, dropped in the snapshot
		NewLinear(rng, 24, 5),
	)
	seq32, err := NewSequential32(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq32.Layers) != 3 {
		t.Fatalf("snapshot kept %d layers, want 3 (dropout dropped)", len(seq32.Layers))
	}
	x := tensor.New(7, 8).Randn(rng, 1)
	want := seq.Forward(x, false)
	got := seq32.Forward(tensor.To32(x))
	assertClose32(t, "Sequential32", want, got, 1e-5)
}

func TestSequential32RejectsUnsupportedLayer(t *testing.T) {
	if _, err := NewSequential32(NewSequential(&Tanh{})); err == nil {
		t.Fatal("expected error for layer without an f32 forward")
	}
}

func TestDiffusionMLP32MatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d := NewDiffusionMLP(rng, 6, 48, 6, 3, 8, 0.01)
	d.WarmTimesteps(50)
	d32, err := d.Snapshot32()
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(11, 6).Randn(rng, 1)
	ts := make([]int, 11)
	for i := range ts {
		ts[i] = 1 + rng.Intn(50)
	}
	want := d.Forward(x, ts, false)
	got := d32.Forward(tensor.To32(x), ts)
	assertClose32(t, "DiffusionMLP32", want, got, 1e-4)

	// A timestep beyond the warmed table is computed on demand.
	ts2 := []int{120}
	x2 := tensor.New(1, 6).Randn(rng, 1)
	want2 := d.Forward(x2, ts2, false)
	got2 := d32.Forward(tensor.To32(x2), ts2)
	assertClose32(t, "DiffusionMLP32 cold timestep", want2, got2, 1e-4)
}

// TestForward32SteadyStateAllocs pins the noalloc contract of the f32
// inference path: after one warm call, Forward reuses every workspace.
func TestForward32SteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := NewDiffusionMLP(rng, 6, 32, 6, 2, 8, 0)
	d.WarmTimesteps(50)
	d32, err := d.Snapshot32()
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.To32(tensor.New(8, 6).Randn(rng, 1))
	ts := []int{3, 7, 11, 19, 23, 31, 41, 47}
	d32.Forward(x, ts)                                                                   // warm workspaces
	if allocs := testing.AllocsPerRun(100, func() { d32.Forward(x, ts) }); allocs != 0 { //silofuse:bitwise-ok alloc counts are exact integers
		t.Errorf("DiffusionMLP32.Forward: %v allocs per run, want 0", allocs)
	}
}
