package nn

import (
	"math"

	"silofuse/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and zeroes the gradients.
	Step()
	// ZeroGrads clears gradients without updating.
	ZeroGrads()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR, Momentum float64
	params       []*Param
	velocity     []*tensor.Matrix
}

// NewSGD creates an SGD optimiser over params.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	vel := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		vel[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return &SGD{LR: lr, Momentum: momentum, params: params, velocity: vel}
}

// Step applies v = m·v - lr·g; w += v, then zeroes gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.velocity[i]
		for j := range p.Value.Data {
			v.Data[j] = s.Momentum*v.Data[j] - s.LR*p.Grad.Data[j]
			p.Value.Data[j] += v.Data[j]
		}
	}
	s.ZeroGrads()
}

// ZeroGrads clears all parameter gradients.
func (s *SGD) ZeroGrads() { ZeroGrads(s.params) }

// Adam implements the Adam optimiser (Kingma & Ba) with bias correction.
// The paper trains every model with Adam at lr=1e-3.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// ClipNorm, when > 0, rescales the global gradient norm to at most this
	// value before the update (gradient clipping for GAN stability).
	ClipNorm float64

	params []*Param
	m, v   []*tensor.Matrix
	t      int
}

// NewAdam creates an Adam optimiser with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	m := make([]*tensor.Matrix, len(params))
	v := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		m[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		v[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params, m: m, v: v}
}

// Step applies one Adam update and zeroes gradients.
func (a *Adam) Step() {
	a.t++
	if a.ClipNorm > 0 {
		total := 0.0
		for _, p := range a.params {
			for _, g := range p.Grad.Data {
				total += g * g
			}
		}
		norm := math.Sqrt(total)
		if norm > a.ClipNorm {
			scale := a.ClipNorm / norm
			for _, p := range a.params {
				p.Grad.Scale(scale)
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mHat := m.Data[j] / bc1
			vHat := v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	a.ZeroGrads()
}

// ZeroGrads clears all parameter gradients.
func (a *Adam) ZeroGrads() { ZeroGrads(a.params) }
