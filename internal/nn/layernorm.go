package nn

import (
	"math"

	"silofuse/internal/tensor"
)

// LayerNorm normalises each row to zero mean / unit variance and applies a
// learned affine transform, as used in the GAN baselines ("layer norm").
type LayerNorm struct {
	Gamma, Beta *Param
	Eps         float64

	xhat   *tensor.Matrix // cached normalised input
	invStd []float64      // cached per-row 1/sqrt(var+eps)

	out, gin *tensor.Matrix // persistent workspaces
}

// NewLayerNorm creates a LayerNorm over feature dimension dim.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{
		Gamma: NewParam("ln.gamma", tensor.New(1, dim).Fill(1)),
		Beta:  NewParam("ln.beta", tensor.New(1, dim)),
		Eps:   1e-5,
	}
}

// Forward normalises each row and applies gamma/beta.
func (l *LayerNorm) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	n := float64(x.Cols)
	l.xhat = tensor.Ensure(l.xhat, x.Rows, x.Cols)
	l.invStd = tensor.EnsureVec(l.invStd, x.Rows)
	l.out = tensor.Ensure(l.out, x.Rows, x.Cols)
	out := l.out
	g := l.Gamma.Value.Data
	b := l.Beta.Value.Data
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		vr := 0.0
		for _, v := range row {
			d := v - mean
			vr += d * d
		}
		vr /= n
		is := 1 / math.Sqrt(vr+l.Eps)
		l.invStd[i] = is
		xh := l.xhat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * is
			orow[j] = xh[j]*g[j] + b[j]
		}
	}
	return out
}

// Backward implements the standard layer-norm gradient.
func (l *LayerNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	n := float64(gradOut.Cols)
	l.gin = tensor.Ensure(l.gin, gradOut.Rows, gradOut.Cols)
	out := l.gin
	g := l.Gamma.Value.Data
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		xh := l.xhat.Row(i)
		// Accumulate parameter gradients.
		for j, gv := range grow {
			l.Gamma.Grad.Data[j] += gv * xh[j]
			l.Beta.Grad.Data[j] += gv
		}
		// dL/dxhat = gradOut * gamma
		sumDxh := 0.0
		sumDxhXh := 0.0
		for j, gv := range grow {
			d := gv * g[j]
			sumDxh += d
			sumDxhXh += d * xh[j]
		}
		is := l.invStd[i]
		orow := out.Row(i)
		for j, gv := range grow {
			d := gv * g[j]
			orow[j] = (d - sumDxh/n - xh[j]*sumDxhXh/n) * is
		}
	}
	return out
}

// Params returns gamma and beta.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }
