//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package nn

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout(rng, 0.5)
	x := tensor.New(10, 10).Fill(1)
	outTrain := d.Forward(x, true)
	zeros := 0
	for _, v := range outTrain.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("surviving activation not rescaled: %v", v)
		}
	}
	if zeros == 0 || zeros == len(outTrain.Data) {
		t.Fatalf("dropout mask degenerate: %d zeros of %d", zeros, len(outTrain.Data))
	}
	outEval := d.Forward(x, false)
	for _, v := range outEval.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at eval time")
		}
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(rng, 0.5)
	x := tensor.New(4, 4).Fill(1)
	out := d.Forward(x, true)
	g := tensor.New(4, 4).Fill(1)
	gin := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (gin.Data[i] == 0) {
			t.Fatal("backward mask must match forward mask")
		}
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float64{5}))
	opt := NewSGD([]*Param{p}, 0.1, 0.9)
	for i := 0; i < 200; i++ {
		p.Grad.Data[0] = 2 * p.Value.Data[0] // d/dw w^2
		opt.Step()
	}
	if math.Abs(p.Value.Data[0]) > 1e-3 {
		t.Fatalf("SGD failed to minimise w^2: w=%v", p.Value.Data[0])
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 2, []float64{5, -3}))
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		for j := range p.Value.Data {
			p.Grad.Data[j] = 2 * p.Value.Data[j]
		}
		opt.Step()
	}
	for _, v := range p.Value.Data {
		if math.Abs(v) > 1e-3 {
			t.Fatalf("Adam failed to minimise: %v", p.Value.Data)
		}
	}
}

func TestAdamGradClipping(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float64{0}))
	opt := NewAdam([]*Param{p}, 0.001)
	opt.ClipNorm = 1
	p.Grad.Data[0] = 1000
	opt.Step()
	// After clipping, the first Adam step magnitude is ≈ lr.
	if math.Abs(p.Value.Data[0]) > 0.0011 {
		t.Fatalf("clipped step too large: %v", p.Value.Data[0])
	}
}

// TestMLPLearnsXOR trains a small MLP on the XOR function — an end-to-end
// sanity check that forward, backward and Adam compose correctly.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(NewLinear(rng, 2, 16), &Tanh{}, NewLinear(rng, 16, 1))
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []float64{0, 1, 1, 0}
	opt := NewAdam(net.Params(), 0.05)
	var loss float64
	for i := 0; i < 500; i++ {
		out := net.Forward(x, true)
		var grad *tensor.Matrix
		loss, grad = BCEWithLogitsLoss(out, y)
		net.Backward(grad)
		opt.Step()
	}
	if loss > 0.05 {
		t.Fatalf("MLP failed to learn XOR: loss %v", loss)
	}
	out := net.Forward(x, false)
	for i, target := range y {
		p := 1 / (1 + math.Exp(-out.Data[i]))
		if math.Abs(p-target) > 0.2 {
			t.Fatalf("XOR prediction %d: p=%v want %v", i, p, target)
		}
	}
}

func TestSinusoidalEmbeddingProperties(t *testing.T) {
	a := make([]float64, 16)
	b := make([]float64, 16)
	SinusoidalEmbedding(3, a)
	SinusoidalEmbedding(3, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding must be deterministic")
		}
		if a[i] < -1 || a[i] > 1 {
			t.Fatalf("embedding out of [-1,1]: %v", a[i])
		}
	}
	SinusoidalEmbedding(4, b)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different timesteps must embed differently")
	}
	// t=0: all sines 0, all cosines 1.
	SinusoidalEmbedding(0, a)
	for i := 0; i < 8; i++ {
		if a[i] != 0 || a[8+i] != 1 {
			t.Fatalf("t=0 embedding wrong: %v", a)
		}
	}
}

func TestTimestepFeaturesShape(t *testing.T) {
	f := TimestepFeatures([]int{1, 2, 3}, 8)
	if f.Rows != 3 || f.Cols != 8 {
		t.Fatalf("wrong shape %v", f)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(5, 7).Randn(rng, 3)
	p := Softmax(x)
	for i := 0; i < p.Rows; i++ {
		s := 0.0
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.FromRows([][]float64{{1000, 1001, 999}})
	p := Softmax(x)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflow with large logits")
		}
	}
}

func TestParamCountAndZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(rng, 3, 2)
	if got := ParamCount(l.Params()); got != 3*2+2 {
		t.Fatalf("ParamCount = %d", got)
	}
	l.W.Grad.Fill(1)
	ZeroGrads(l.Params())
	if l.W.Grad.Sum() != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}

// TestDiffusionMLPLearnsIdentityNoise checks the backbone can regress a
// simple target that depends on the timestep, verifying time conditioning
// actually influences the output.
func TestDiffusionMLPTimeConditioning(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDiffusionMLP(rng, 2, 32, 2, 2, 16, 0)
	opt := NewAdam(d.Params(), 0.01)
	x := tensor.New(16, 2).Randn(rng, 1)
	// Target: output = sign depends on timestep parity.
	tsA := make([]int, 16)
	tsB := make([]int, 16)
	for i := range tsB {
		tsB[i] = 50
	}
	targetA := tensor.New(16, 2).Fill(1)
	targetB := tensor.New(16, 2).Fill(-1)
	for i := 0; i < 400; i++ {
		out := d.Forward(x, tsA, true)
		_, g := MSELoss(out, targetA)
		d.Backward(g)
		out = d.Forward(x, tsB, true)
		_, g = MSELoss(out, targetB)
		d.Backward(g)
		opt.Step()
	}
	// Forward reuses the backbone's workspaces, so capture the first mean
	// before the second call overwrites the returned buffer.
	meanA := d.Forward(x, tsA, false).Mean()
	meanB := d.Forward(x, tsB, false).Mean()
	if meanA < 0.5 || meanB > -0.5 {
		t.Fatalf("time conditioning not learned: %v vs %v", meanA, meanB)
	}
}

func TestConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConv1D(rng, 1, 4, 3, 2, 1)
	x := tensor.New(2, 10).Randn(rng, 1)
	out := c.Forward(x, false)
	wantLen := c.OutLen(10)
	if out.Cols != 4*wantLen {
		t.Fatalf("conv out cols %d, want %d", out.Cols, 4*wantLen)
	}
	ct := NewConvTranspose1D(rng, 4, 1, 4, 2, 1)
	out2 := ct.Forward(out, false)
	if out2.Cols != ct.OutLen(wantLen) {
		t.Fatalf("convT out cols %d, want %d", out2.Cols, ct.OutLen(wantLen))
	}
}

func TestBatchNormTrainStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bn := NewBatchNorm(3)
	x := tensor.New(64, 3).Randn(rng, 2)
	x.AddRowVector([]float64{5, -3, 0})
	out := bn.Forward(x, true)
	// Per-feature: zero mean, unit variance after normalisation.
	for j := 0; j < 3; j++ {
		col := out.Col(j)
		var mean, v float64
		for _, u := range col {
			mean += u
		}
		mean /= float64(len(col))
		for _, u := range col {
			d := u - mean
			v += d * d
		}
		v /= float64(len(col))
		if math.Abs(mean) > 1e-9 || math.Abs(v-1) > 1e-2 {
			t.Fatalf("feature %d: mean %v var %v", j, mean, v)
		}
	}
	// Running stats move toward the batch stats.
	if bn.runMean[0] == 0 {
		t.Fatal("running mean not updated")
	}
	// Inference mode uses running stats and is deterministic. Clone the
	// first output: the layer's workspace is reused by the second call.
	a := bn.Forward(x, false).Clone()
	b := bn.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("inference forward not deterministic")
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	bn := NewBatchNorm(4)
	bn.Gamma.Value.Randn(rng, 1)
	bn.Beta.Value.Randn(rng, 1)
	// Freeze running-stat updates' effect on the loss by checking gradients
	// within a single forward/backward pair.
	bn.Momentum = 0
	x := tensor.New(6, 4).Randn(rng, 1.5)
	checkLayerGradients(t, bn, x, 1e-4)
}
