// Package nn is a minimal neural-network substrate with hand-derived
// backpropagation, built on internal/tensor. It provides the layers, losses
// and optimisers needed by the autoencoders, diffusion backbones and GAN
// baselines in this repository.
//
// Layers are stateful: Forward caches whatever Backward needs, so each
// Forward call must be paired with at most one Backward call before the next
// Forward. Parameter gradients accumulate across Backward calls until the
// optimiser zeroes them; this enables multi-head losses that share trunks.
//
// Layers also own persistent workspaces: Forward and Backward return
// buffers that are reused verbatim on the next call with the same batch
// shape, so in steady state a training step performs no heap allocation.
// The corollary is that a returned matrix is only valid until the layer's
// next Forward/Backward — callers that need a result to survive a later
// call through the same layer must Clone it. A shape change transparently
// falls back to a fresh allocation (the cold-start path).
package nn

import "silofuse/internal/tensor"

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// NewParam allocates a parameter and a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Matrix) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows, value.Cols)}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return len(p.Value.Data) }

// Layer is one differentiable module.
type Layer interface {
	// Forward computes the layer output for x. train toggles behaviour of
	// layers like Dropout.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// dL/d(params) into the layer's Param.Grad fields.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies every layer in order.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient through all layers in reverse order.
func (s *Sequential) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of scalar parameters in ps.
func ParamCount(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Size()
	}
	return n
}

// ZeroGrads clears the gradient of every parameter.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}
