package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the gob wire format for one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams writes the parameter values (not gradients) to w in order.
// Load must be given the same architecture so shapes line up.
func SaveParams(w io.Writer, ps []*Param) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(len(ps)); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	for _, p := range ps {
		blob := paramBlob{Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols, Data: p.Value.Data}
		if err := enc.Encode(blob); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
	}
	return nil
}

// LoadParams reads values saved by SaveParams into ps, verifying count and
// shapes.
func LoadParams(r io.Reader, ps []*Param) error {
	dec := gob.NewDecoder(r)
	var n int
	if err := dec.Decode(&n); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if n != len(ps) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", n, len(ps))
	}
	for i, p := range ps {
		var blob paramBlob
		if err := dec.Decode(&blob); err != nil {
			return fmt.Errorf("nn: load param %d: %w", i, err)
		}
		if blob.Rows != p.Value.Rows || blob.Cols != p.Value.Cols {
			return fmt.Errorf("nn: param %d (%s) shape %dx%d, snapshot %dx%d",
				i, p.Name, p.Value.Rows, p.Value.Cols, blob.Rows, blob.Cols)
		}
		copy(p.Value.Data, blob.Data)
	}
	return nil
}

// adamBlob is the gob wire format for Adam optimiser state.
type adamBlob struct {
	T    int
	M, V [][]float64
}

// Save writes the optimiser's moment estimates and step counter to w, so a
// training run restored from a checkpoint replays bit-identically: Adam's
// bias correction depends on t, and the updates depend on m and v.
func (a *Adam) Save(w io.Writer) error {
	blob := adamBlob{T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		blob.M[i] = a.m[i].Data
		blob.V[i] = a.v[i].Data
	}
	if err := gob.NewEncoder(w).Encode(blob); err != nil {
		return fmt.Errorf("nn: save adam: %w", err)
	}
	return nil
}

// Load restores state written by Save into an optimiser built over the same
// parameter set, and zeroes the parameter gradients so a half-finished
// iteration cannot leak accumulated gradient into the resumed run.
func (a *Adam) Load(r io.Reader) error {
	var blob adamBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return fmt.Errorf("nn: load adam: %w", err)
	}
	if len(blob.M) != len(a.m) || len(blob.V) != len(a.v) {
		return fmt.Errorf("nn: adam snapshot has %d/%d moments, optimiser has %d", len(blob.M), len(blob.V), len(a.m))
	}
	for i := range a.m {
		if len(blob.M[i]) != len(a.m[i].Data) || len(blob.V[i]) != len(a.v[i].Data) {
			return fmt.Errorf("nn: adam moment %d size %d/%d, optimiser %d", i, len(blob.M[i]), len(blob.V[i]), len(a.m[i].Data))
		}
		copy(a.m[i].Data, blob.M[i])
		copy(a.v[i].Data, blob.V[i])
	}
	a.t = blob.T
	a.ZeroGrads()
	return nil
}

// EMA maintains an exponential moving average of a parameter set — the
// standard stabiliser for diffusion model weights. Apply swaps the averaged
// values into the live parameters (keeping a restore copy), Restore undoes
// the swap.
type EMA struct {
	Decay   float64
	params  []*Param
	shadow  [][]float64
	backup  [][]float64 // persistent workspace, valid only while applied
	applied bool
}

// NewEMA creates an EMA tracker initialised to the current values.
func NewEMA(params []*Param, decay float64) *EMA {
	e := &EMA{Decay: decay, params: params, shadow: make([][]float64, len(params))}
	for i, p := range params {
		e.shadow[i] = append([]float64(nil), p.Value.Data...)
	}
	return e
}

// Update folds the current parameter values into the average. Call after
// every optimiser step.
func (e *EMA) Update() {
	d := e.Decay
	for i, p := range e.params {
		s := e.shadow[i]
		for j, v := range p.Value.Data {
			s[j] = d*s[j] + (1-d)*v
		}
	}
}

// Apply swaps the averaged values into the live parameters. The restore
// copy lives in a persistent workspace, so a warm Apply/Restore bracket —
// every batched sampling call runs one — does not allocate.
func (e *EMA) Apply() {
	if e.backup == nil {
		e.backup = make([][]float64, len(e.params))
	}
	for i, p := range e.params {
		e.backup[i] = append(e.backup[i][:0], p.Value.Data...)
		copy(p.Value.Data, e.shadow[i])
	}
	e.applied = true
}

// Restore puts the live training values back after Apply.
func (e *EMA) Restore() {
	if !e.applied {
		return
	}
	for i, p := range e.params {
		copy(p.Value.Data, e.backup[i])
	}
	e.applied = false
}
