//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

func TestSaveLoadParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := NewSequential(NewLinear(rng, 4, 8), &GELU{}, NewLinear(rng, 8, 3))
	dst := NewSequential(NewLinear(rand.New(rand.NewSource(2)), 4, 8), &GELU{}, NewLinear(rand.New(rand.NewSource(2)), 8, 3))

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 4).Randn(rng, 1)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model differs from saved model")
		}
	}
}

func TestLoadParamsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := NewLinear(rng, 4, 8)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	wrong := NewLinear(rng, 4, 9)
	if err := LoadParams(&buf, wrong.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadParamsCountMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewLinear(rng, 2, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	two := NewSequential(NewLinear(rng, 2, 2), NewLinear(rng, 2, 2))
	if err := LoadParams(&buf, two.Params()); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestEMATracksAverage(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float64{0}))
	e := NewEMA([]*Param{p}, 0.5)
	// Shadow starts at 0; set value to 1 and update repeatedly: shadow
	// converges geometrically to 1.
	p.Value.Data[0] = 1
	for i := 0; i < 10; i++ {
		e.Update()
	}
	if got := e.shadow[0][0]; got < 0.99 {
		t.Fatalf("shadow = %v", got)
	}
}

func TestEMAApplyRestore(t *testing.T) {
	p := NewParam("w", tensor.FromSlice(1, 1, []float64{5}))
	e := NewEMA([]*Param{p}, 0.9)
	p.Value.Data[0] = 10
	e.Update() // shadow = 0.9*5 + 0.1*10 = 5.5
	e.Apply()
	if p.Value.Data[0] != 5.5 {
		t.Fatalf("Apply: value = %v", p.Value.Data[0])
	}
	e.Restore()
	if p.Value.Data[0] != 10 {
		t.Fatalf("Restore: value = %v", p.Value.Data[0])
	}
	// Restore without Apply is a no-op.
	e.Restore()
	if p.Value.Data[0] != 10 {
		t.Fatal("double Restore corrupted value")
	}
}
