package nn

import (
	"math"

	"silofuse/internal/tensor"
)

// BatchNorm normalises each feature over the batch dimension with learned
// scale/shift, keeping running statistics for inference — the batch-norm
// variant CTGAN-style generators commonly use as an alternative to layer
// norm.
type BatchNorm struct {
	Gamma, Beta *Param
	Eps         float64
	Momentum    float64 // running-stat update rate

	runMean, runVar []float64

	// caches for Backward. invStd stays nil after an inference-mode
	// Forward (that is the mode signal Backward keys on); the reusable
	// buffer lives in invStdBuf.
	xhat   *tensor.Matrix
	invStd []float64

	// persistent workspaces
	invStdBuf, meanBuf, vrBuf, sumD, sumDXh []float64
	out, gin                                *tensor.Matrix
}

// NewBatchNorm creates a BatchNorm over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:    NewParam("bn.gamma", tensor.New(1, dim).Fill(1)),
		Beta:     NewParam("bn.beta", tensor.New(1, dim)),
		Eps:      1e-5,
		Momentum: 0.1,
		runMean:  make([]float64, dim),
		runVar:   make([]float64, dim),
	}
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Forward normalises per feature using batch statistics when train is true
// and running statistics otherwise.
func (b *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	d := x.Cols
	b.out = tensor.Ensure(b.out, x.Rows, d)
	out := b.out
	g := b.Gamma.Value.Data
	bt := b.Beta.Value.Data

	if !train || x.Rows < 2 {
		// Running statistics are constants here, but the normalised input is
		// still cached so Backward can accumulate gamma/beta gradients.
		b.xhat = tensor.Ensure(b.xhat, x.Rows, d)
		b.invStd = nil
		for i := 0; i < x.Rows; i++ {
			src, dst := x.Row(i), out.Row(i)
			xh := b.xhat.Row(i)
			for j := range dst {
				xh[j] = (src[j] - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.Eps)
				dst[j] = xh[j]*g[j] + bt[j]
			}
		}
		return out
	}

	n := float64(x.Rows)
	b.meanBuf = tensor.EnsureVec(b.meanBuf, d)
	b.vrBuf = tensor.EnsureVec(b.vrBuf, d)
	mean, vr := b.meanBuf, b.vrBuf
	clear(mean)
	clear(vr)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			dlt := v - mean[j]
			vr[j] += dlt * dlt
		}
	}
	b.invStdBuf = tensor.EnsureVec(b.invStdBuf, d)
	b.invStd = b.invStdBuf
	for j := range vr {
		vr[j] /= n
		b.invStd[j] = 1 / math.Sqrt(vr[j]+b.Eps)
		b.runMean[j] = (1-b.Momentum)*b.runMean[j] + b.Momentum*mean[j]
		b.runVar[j] = (1-b.Momentum)*b.runVar[j] + b.Momentum*vr[j]
	}
	b.xhat = tensor.Ensure(b.xhat, x.Rows, d)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		xh := b.xhat.Row(i)
		dst := out.Row(i)
		for j := range dst {
			xh[j] = (src[j] - mean[j]) * b.invStd[j]
			dst[j] = xh[j]*g[j] + bt[j]
		}
	}
	return out
}

// Backward implements the batch-norm gradient (training mode only; after an
// inference-mode Forward it degrades to the affine gradient).
func (b *BatchNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	d := gradOut.Cols
	g := b.Gamma.Value.Data
	b.gin = tensor.Ensure(b.gin, gradOut.Rows, d)
	out := b.gin

	if b.invStd == nil {
		// Inference-mode forward: running stats are constants, so the input
		// gradient is a per-feature rescale; gamma/beta still learn.
		for i := 0; i < gradOut.Rows; i++ {
			src, dst := gradOut.Row(i), out.Row(i)
			xh := b.xhat.Row(i)
			for j := range dst {
				b.Gamma.Grad.Data[j] += src[j] * xh[j]
				b.Beta.Grad.Data[j] += src[j]
				dst[j] = src[j] * g[j] / math.Sqrt(b.runVar[j]+b.Eps)
			}
		}
		return out
	}

	n := float64(gradOut.Rows)
	b.sumD = tensor.EnsureVec(b.sumD, d)
	b.sumDXh = tensor.EnsureVec(b.sumDXh, d)
	sumD, sumDXh := b.sumD, b.sumDXh
	clear(sumD)
	clear(sumDXh)
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		xh := b.xhat.Row(i)
		for j, gv := range grow {
			b.Gamma.Grad.Data[j] += gv * xh[j]
			b.Beta.Grad.Data[j] += gv
			dxh := gv * g[j]
			sumD[j] += dxh
			sumDXh[j] += dxh * xh[j]
		}
	}
	for i := 0; i < gradOut.Rows; i++ {
		grow := gradOut.Row(i)
		xh := b.xhat.Row(i)
		dst := out.Row(i)
		for j, gv := range grow {
			dxh := gv * g[j]
			dst[j] = (dxh - sumD[j]/n - xh[j]*sumDXh[j]/n) * b.invStd[j]
		}
	}
	return out
}

// Params returns gamma and beta.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }
