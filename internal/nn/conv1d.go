package nn

import (
	"fmt"
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// Conv1D is a 1-D convolution over tabular feature vectors, used by the
// GAN(conv) baseline (CTAB-GAN style backbone). Activations are stored as
// (batch, channels*length) matrices with channel-major layout: element
// (c, p) lives at column c*length + p.
type Conv1D struct {
	InC, OutC, K, Stride, Pad int

	W, B  *Param // W: (OutC, InC*K)
	input *tensor.Matrix
	inLen int

	out, gin *tensor.Matrix // persistent workspaces
}

// NewConv1D creates a Conv1D layer with Kaiming-uniform initialisation.
func NewConv1D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv1D {
	fanIn := float64(inC * k)
	bound := math.Sqrt(1.0 / fanIn)
	w := tensor.New(outC, inC*k).RandUniform(rng, -bound, bound)
	b := tensor.New(1, outC).RandUniform(rng, -bound, bound)
	return &Conv1D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: NewParam("conv.W", w), B: NewParam("conv.b", b)}
}

// OutLen returns the output length for an input of length l.
func (c *Conv1D) OutLen(l int) int { return (l+2*c.Pad-c.K)/c.Stride + 1 }

// Forward applies the convolution to every row of x.
func (c *Conv1D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols%c.InC != 0 {
		panic(fmt.Sprintf("nn: Conv1D input cols %d not divisible by channels %d", x.Cols, c.InC))
	}
	c.input = x
	c.inLen = x.Cols / c.InC
	ol := c.OutLen(c.inLen)
	if ol <= 0 {
		panic(fmt.Sprintf("nn: Conv1D non-positive output length for input length %d", c.inLen))
	}
	c.out = tensor.Ensure(c.out, x.Rows, c.OutC*ol)
	out := c.out // every element is overwritten below, so reuse needs no clear
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		or := out.Row(r)
		for oc := 0; oc < c.OutC; oc++ {
			wrow := c.W.Value.Row(oc)
			bias := c.B.Value.Data[oc]
			for op := 0; op < ol; op++ {
				s := bias
				base := op*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					for k := 0; k < c.K; k++ {
						ip := base + k
						if ip < 0 || ip >= c.inLen {
							continue
						}
						s += wrow[ic*c.K+k] * xr[ic*c.inLen+ip]
					}
				}
				or[oc*ol+op] = s
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv1D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	ol := c.OutLen(c.inLen)
	c.gin = tensor.Ensure(c.gin, c.input.Rows, c.input.Cols)
	gin := c.gin.Zero() // the loop below accumulates with +=
	for r := 0; r < c.input.Rows; r++ {
		xr := c.input.Row(r)
		gr := gradOut.Row(r)
		gi := gin.Row(r)
		for oc := 0; oc < c.OutC; oc++ {
			wrow := c.W.Value.Row(oc)
			gwrow := c.W.Grad.Row(oc)
			for op := 0; op < ol; op++ {
				g := gr[oc*ol+op]
				if g == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
					continue
				}
				c.B.Grad.Data[oc] += g
				base := op*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					for k := 0; k < c.K; k++ {
						ip := base + k
						if ip < 0 || ip >= c.inLen {
							continue
						}
						gwrow[ic*c.K+k] += g * xr[ic*c.inLen+ip]
						gi[ic*c.inLen+ip] += g * wrow[ic*c.K+k]
					}
				}
			}
		}
	}
	return gin
}

// Params returns the convolution weights and bias.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// ConvTranspose1D is the transposed (fractionally strided) convolution used
// by the GAN(conv) generator to upsample from a compact noise tensor.
// Layout conventions match Conv1D.
type ConvTranspose1D struct {
	InC, OutC, K, Stride, Pad int

	W, B  *Param // W: (InC, OutC*K)
	input *tensor.Matrix
	inLen int

	out, gin *tensor.Matrix // persistent workspaces
}

// NewConvTranspose1D creates a transposed convolution layer.
func NewConvTranspose1D(rng *rand.Rand, inC, outC, k, stride, pad int) *ConvTranspose1D {
	fanIn := float64(inC * k)
	bound := math.Sqrt(1.0 / fanIn)
	w := tensor.New(inC, outC*k).RandUniform(rng, -bound, bound)
	b := tensor.New(1, outC).RandUniform(rng, -bound, bound)
	return &ConvTranspose1D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: NewParam("convT.W", w), B: NewParam("convT.b", b)}
}

// OutLen returns the output length for an input of length l.
func (c *ConvTranspose1D) OutLen(l int) int { return (l-1)*c.Stride - 2*c.Pad + c.K }

// Forward applies the transposed convolution to every row of x.
func (c *ConvTranspose1D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols%c.InC != 0 {
		panic(fmt.Sprintf("nn: ConvTranspose1D input cols %d not divisible by channels %d", x.Cols, c.InC))
	}
	c.input = x
	c.inLen = x.Cols / c.InC
	ol := c.OutLen(c.inLen)
	if ol <= 0 {
		panic(fmt.Sprintf("nn: ConvTranspose1D non-positive output length for input length %d", c.inLen))
	}
	c.out = tensor.Ensure(c.out, x.Rows, c.OutC*ol)
	out := c.out // every position is seeded with the bias below, so reuse needs no clear
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		or := out.Row(r)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Value.Data[oc]
			for op := 0; op < ol; op++ {
				or[oc*ol+op] = bias
			}
		}
		for ic := 0; ic < c.InC; ic++ {
			wrow := c.W.Value.Row(ic)
			for ip := 0; ip < c.inLen; ip++ {
				xv := xr[ic*c.inLen+ip]
				if xv == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
					continue
				}
				for oc := 0; oc < c.OutC; oc++ {
					for k := 0; k < c.K; k++ {
						op := ip*c.Stride + k - c.Pad
						if op < 0 || op >= ol {
							continue
						}
						or[oc*ol+op] += xv * wrow[oc*c.K+k]
					}
				}
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *ConvTranspose1D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	ol := c.OutLen(c.inLen)
	c.gin = tensor.Ensure(c.gin, c.input.Rows, c.input.Cols)
	gin := c.gin.Zero() // the loop below accumulates with +=
	for r := 0; r < c.input.Rows; r++ {
		xr := c.input.Row(r)
		gr := gradOut.Row(r)
		gi := gin.Row(r)
		for oc := 0; oc < c.OutC; oc++ {
			for op := 0; op < ol; op++ {
				c.B.Grad.Data[oc] += gr[oc*ol+op]
			}
		}
		for ic := 0; ic < c.InC; ic++ {
			wrow := c.W.Value.Row(ic)
			gwrow := c.W.Grad.Row(ic)
			for ip := 0; ip < c.inLen; ip++ {
				xv := xr[ic*c.inLen+ip]
				gsum := 0.0
				for oc := 0; oc < c.OutC; oc++ {
					for k := 0; k < c.K; k++ {
						op := ip*c.Stride + k - c.Pad
						if op < 0 || op >= ol {
							continue
						}
						g := gr[oc*ol+op]
						gwrow[oc*c.K+k] += g * xv
						gsum += g * wrow[oc*c.K+k]
					}
				}
				gi[ic*c.inLen+ip] += gsum
			}
		}
	}
	return gin
}

// Params returns the transposed-convolution weights and bias.
func (c *ConvTranspose1D) Params() []*Param { return []*Param{c.W, c.B} }
