package nn

// Flat gradient (de)serialisation for data-parallel training. Gradients
// cross the bus as one contiguous []float64 per shard; the layout is the
// Params() order with each parameter's Grad.Data appended row-major, so a
// flattened vector round-trips through SetGrads without reordering.

// GradSize returns the total element count of the parameters' gradients —
// the length a flat gradient buffer must have.
func GradSize(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Size()
	}
	return n
}

// FlattenGradsInto copies every parameter's accumulated gradient into dst
// in Params() order. dst must have length GradSize(ps).
//
//silofuse:noalloc
func FlattenGradsInto(dst []float64, ps []*Param) {
	if len(dst) != GradSize(ps) {
		panic("nn: FlattenGradsInto length mismatch")
	}
	off := 0
	for _, p := range ps {
		copy(dst[off:off+p.Size()], p.Grad.Data)
		off += p.Size()
	}
}

// SetGrads overwrites every parameter's gradient from the flat vector src,
// the inverse of FlattenGradsInto. src must have length GradSize(ps).
//
//silofuse:noalloc
func SetGrads(ps []*Param, src []float64) {
	if len(src) != GradSize(ps) {
		panic("nn: SetGrads length mismatch")
	}
	off := 0
	for _, p := range ps {
		copy(p.Grad.Data, src[off:off+p.Size()])
		off += p.Size()
	}
}
