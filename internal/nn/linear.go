package nn

import (
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// Linear is a fully connected layer: y = xW + b, with W of shape (in, out).
type Linear struct {
	W, B  *Param
	input *tensor.Matrix // cached for Backward
}

// NewLinear creates a Linear layer with Kaiming-uniform initialised weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	bound := math.Sqrt(1.0 / float64(in))
	w := tensor.New(in, out).RandUniform(rng, -bound, bound)
	b := tensor.New(1, out).RandUniform(rng, -bound, bound)
	return &Linear{W: NewParam("linear.W", w), B: NewParam("linear.b", b)}
}

// Forward computes xW + b.
func (l *Linear) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	l.input = x
	out := tensor.MatMul(x, l.W.Value)
	out.AddRowVector(l.B.Value.Data)
	return out
}

// Backward accumulates dW = xᵀg, db = Σ_rows g and returns g Wᵀ.
func (l *Linear) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	dW := tensor.MatMulT1(l.input, gradOut)
	l.W.Grad.Add(l.W.Grad, dW)
	bs := gradOut.ColSums()
	for j, v := range bs {
		l.B.Grad.Data[j] += v
	}
	return tensor.MatMulT2(gradOut, l.W.Value)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
