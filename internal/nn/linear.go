package nn

import (
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// Linear is a fully connected layer: y = xW + b, with W of shape (in, out).
type Linear struct {
	W, B  *Param
	input *tensor.Matrix // cached for Backward

	// Persistent workspaces, reused verbatim while the batch shape is
	// unchanged; see the layer contract in layer.go.
	out, dW, gin *tensor.Matrix
	bsums        []float64
}

// NewLinear creates a Linear layer with Kaiming-uniform initialised weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	bound := math.Sqrt(1.0 / float64(in))
	w := tensor.New(in, out).RandUniform(rng, -bound, bound)
	b := tensor.New(1, out).RandUniform(rng, -bound, bound)
	return &Linear{W: NewParam("linear.W", w), B: NewParam("linear.b", b)}
}

// Forward computes xW + b.
//
//silofuse:noalloc
func (l *Linear) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	l.input = x
	l.out = tensor.Ensure(l.out, x.Rows, l.W.Value.Cols)
	return tensor.MatMulAddRowInto(l.out, x, l.W.Value, l.B.Value)
}

// Backward accumulates dW = xᵀg, db = Σ_rows g and returns g Wᵀ.
//
//silofuse:noalloc
func (l *Linear) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	l.dW = tensor.Ensure(l.dW, l.W.Value.Rows, l.W.Value.Cols)
	tensor.MatMulT1Into(l.dW, l.input, gradOut)
	l.W.Grad.Add(l.W.Grad, l.dW)
	// Two-phase bias reduction: column sums land in a scratch vector first
	// and are added to the grad in one pass, preserving the FP accumulation
	// order of the old ColSums-then-add code across repeated Backwards.
	l.bsums = tensor.EnsureVec(l.bsums, gradOut.Cols)
	gradOut.ColSumsInto(l.bsums)
	for j, v := range l.bsums {
		l.B.Grad.Data[j] += v
	}
	l.gin = tensor.Ensure(l.gin, gradOut.Rows, l.W.Value.Rows)
	return tensor.MatMulT2Into(l.gin, gradOut, l.W.Value)
}

// Params returns the weight and bias parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }
