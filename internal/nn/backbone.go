package nn

import (
	"math/rand"

	"silofuse/internal/tensor"
)

// DiffusionMLP is the timestep-conditioned denoising backbone used by every
// DDPM in this repository: an input projection, a stack of
// Linear→GELU→Dropout blocks (the paper's "eight layers with GELU activation
// and a dropout factor of 0.01"), and an output projection back to the data
// dimension. Timestep conditioning enters as a learned projection of the
// sinusoidal embedding added to the post-input-projection activations.
type DiffusionMLP struct {
	In, Hidden, Out, TimeDim int

	inProj   *Linear
	timeProj *Linear
	blocks   *Sequential
	outProj  *Linear

	tfeat *tensor.Matrix // cached sinusoidal features for Backward
}

// NewDiffusionMLP builds a backbone with depth hidden blocks. timeDim is the
// sinusoidal embedding width (must be even).
func NewDiffusionMLP(rng *rand.Rand, in, hidden, out, depth, timeDim int, dropout float64) *DiffusionMLP {
	var layers []Layer
	for i := 0; i < depth; i++ {
		layers = append(layers, NewLinear(rng, hidden, hidden), &GELU{})
		if dropout > 0 {
			layers = append(layers, NewDropout(rng, dropout))
		}
	}
	return &DiffusionMLP{
		In: in, Hidden: hidden, Out: out, TimeDim: timeDim,
		inProj:   NewLinear(rng, in, hidden),
		timeProj: NewLinear(rng, timeDim, hidden),
		blocks:   NewSequential(layers...),
		outProj:  NewLinear(rng, hidden, out),
	}
}

// Forward predicts the noise for inputs x at per-row timesteps ts.
func (d *DiffusionMLP) Forward(x *tensor.Matrix, ts []int, train bool) *tensor.Matrix {
	d.tfeat = TimestepFeatures(ts, d.TimeDim)
	h := d.inProj.Forward(x, train)
	te := d.timeProj.Forward(d.tfeat, train)
	h = h.Clone().Add(h, te)
	h = d.blocks.Forward(h, train)
	return d.outProj.Forward(h, train)
}

// Backward propagates the output gradient, accumulating parameter gradients,
// and returns dL/dx.
func (d *DiffusionMLP) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := d.outProj.Backward(gradOut)
	g = d.blocks.Backward(g)
	// The add node fans the gradient to both the input and time projections.
	d.timeProj.Backward(g) // gradient w.r.t. sinusoidal features is discarded
	return d.inProj.Backward(g)
}

// Params returns all trainable parameters of the backbone.
func (d *DiffusionMLP) Params() []*Param {
	ps := append([]*Param{}, d.inProj.Params()...)
	ps = append(ps, d.timeProj.Params()...)
	ps = append(ps, d.blocks.Params()...)
	ps = append(ps, d.outProj.Params()...)
	return ps
}
