package nn

import (
	"math/rand"

	"silofuse/internal/tensor"
)

// DiffusionMLP is the timestep-conditioned denoising backbone used by every
// DDPM in this repository: an input projection, a stack of
// Linear→GELU→Dropout blocks (the paper's "eight layers with GELU activation
// and a dropout factor of 0.01"), and an output projection back to the data
// dimension. Timestep conditioning enters as a learned projection of the
// sinusoidal embedding added to the post-input-projection activations.
type DiffusionMLP struct {
	In, Hidden, Out, TimeDim int

	inProj   *Linear
	timeProj *Linear
	blocks   *Sequential
	outProj  *Linear

	tfeat *tensor.Matrix // cached sinusoidal features for Backward

	// embed caches one sinusoidal row per timestep (grown on demand, or
	// all at once via WarmTimesteps), so a steady-state Forward only
	// copies precomputed rows. hsum is the add-node workspace.
	embed [][]float64
	hsum  *tensor.Matrix
}

// NewDiffusionMLP builds a backbone with depth hidden blocks. timeDim is the
// sinusoidal embedding width (must be even).
func NewDiffusionMLP(rng *rand.Rand, in, hidden, out, depth, timeDim int, dropout float64) *DiffusionMLP {
	var layers []Layer
	for i := 0; i < depth; i++ {
		layers = append(layers, NewLinear(rng, hidden, hidden), &GELU{})
		if dropout > 0 {
			layers = append(layers, NewDropout(rng, dropout))
		}
	}
	return &DiffusionMLP{
		In: in, Hidden: hidden, Out: out, TimeDim: timeDim,
		inProj:   NewLinear(rng, in, hidden),
		timeProj: NewLinear(rng, timeDim, hidden),
		blocks:   NewSequential(layers...),
		outProj:  NewLinear(rng, hidden, out),
	}
}

// embedRow returns the cached sinusoidal embedding for timestep t,
// computing and caching it on first use.
func (d *DiffusionMLP) embedRow(t int) []float64 {
	if t >= len(d.embed) {
		grown := make([][]float64, t+1)
		copy(grown, d.embed)
		d.embed = grown
	}
	if d.embed[t] == nil {
		row := make([]float64, d.TimeDim)
		SinusoidalEmbedding(t, row)
		d.embed[t] = row
	}
	return d.embed[t]
}

// WarmTimesteps precomputes the sinusoidal embedding table for timesteps
// 0..maxT so the first training step is already allocation-free.
func (d *DiffusionMLP) WarmTimesteps(maxT int) {
	for t := 0; t <= maxT; t++ {
		d.embedRow(t)
	}
}

// Forward predicts the noise for inputs x at per-row timesteps ts.
//
//silofuse:noalloc
func (d *DiffusionMLP) Forward(x *tensor.Matrix, ts []int, train bool) *tensor.Matrix {
	d.tfeat = tensor.Ensure(d.tfeat, len(ts), d.TimeDim)
	for i, t := range ts {
		copy(d.tfeat.Row(i), d.embedRow(t))
	}
	h := d.inProj.Forward(x, train)
	te := d.timeProj.Forward(d.tfeat, train)
	d.hsum = tensor.Ensure(d.hsum, h.Rows, h.Cols)
	h = tensor.AddInto(d.hsum, h, te)
	h = d.blocks.Forward(h, train)
	return d.outProj.Forward(h, train)
}

// Backward propagates the output gradient, accumulating parameter gradients,
// and returns dL/dx.
//
//silofuse:noalloc
func (d *DiffusionMLP) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	g := d.outProj.Backward(gradOut)
	g = d.blocks.Backward(g)
	// The add node fans the gradient to both the input and time projections.
	d.timeProj.Backward(g) // gradient w.r.t. sinusoidal features is discarded
	return d.inProj.Backward(g)
}

// Params returns all trainable parameters of the backbone.
func (d *DiffusionMLP) Params() []*Param {
	ps := append([]*Param{}, d.inProj.Params()...)
	ps = append(ps, d.timeProj.Params()...)
	ps = append(ps, d.blocks.Params()...)
	ps = append(ps, d.outProj.Params()...)
	return ps
}

// SetDropoutRng points every dropout layer in the backbone at rng. The DDP
// shard step calls this before each forward pass so mask draws come from
// the per-shard stream rather than the construction-time rng, keeping the
// step a pure function of (params, batch, shard rng).
func (d *DiffusionMLP) SetDropoutRng(rng *rand.Rand) {
	for _, l := range d.blocks.Layers {
		if drop, ok := l.(*Dropout); ok {
			drop.SetRng(rng)
		}
	}
}
