package gbdt

// FeatureImportance returns per-feature split counts normalised to sum to
// 1 — the "weight" importance XGBoost reports. Useful for inspecting which
// features a downstream-utility model actually uses.
func (r *Regressor) FeatureImportance(numFeatures int) []float64 {
	counts := make([]float64, numFeatures)
	for _, t := range r.trees {
		accumulateSplits(t, counts)
	}
	return normaliseImportance(counts)
}

// FeatureImportance returns normalised split counts for a classifier.
func (c *Classifier) FeatureImportance(numFeatures int) []float64 {
	counts := make([]float64, numFeatures)
	for _, round := range c.trees {
		for _, t := range round {
			accumulateSplits(t, counts)
		}
	}
	return normaliseImportance(counts)
}

func accumulateSplits(t *Tree, counts []float64) {
	for _, n := range t.nodes {
		if !n.isLeaf && n.feature < len(counts) {
			counts[n.feature]++
		}
	}
}

func normaliseImportance(counts []float64) []float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 { //silofuse:bitwise-ok zero-total guard before normalisation
		return counts
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = c / total
	}
	return out
}
