package gbdt

import (
	"fmt"
	"math"
	"time"

	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// Params configures a boosted ensemble.
type Params struct {
	Tree         TreeParams
	NumRounds    int
	LearningRate float64
}

// DefaultParams returns defaults tuned for the benchmark tables (fast, yet
// competitive on a few thousand rows).
func DefaultParams() Params {
	return Params{Tree: DefaultTreeParams(), NumRounds: 40, LearningRate: 0.2}
}

// Regressor is a gradient-boosted regressor with squared loss.
type Regressor struct {
	P Params
	// Rec, when non-nil, receives per-boosting-round telemetry from Fit
	// (stage "gbdt"; the recorded loss is the mean squared residual).
	Rec   *obs.Recorder
	base  float64
	trees []*Tree
}

// NewRegressor creates a regressor with params p.
func NewRegressor(p Params) *Regressor { return &Regressor{P: p} }

// Fit trains on features x and targets y.
func (r *Regressor) Fit(x *tensor.Matrix, y []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("gbdt: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return fmt.Errorf("gbdt: empty training set")
	}
	r.base = 0
	for _, v := range y {
		r.base += v
	}
	r.base /= float64(len(y))

	bn := newBinner(x, r.P.Tree.Bins)
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = r.base
	}
	idx := allIndexes(x.Rows)
	g := make([]float64, len(y))
	h := make([]float64, len(y))
	r.trees = r.trees[:0]
	for round := 0; round < r.P.NumRounds; round++ {
		var t0 time.Time
		if r.Rec != nil {
			t0 = time.Now()
		}
		for i := range y {
			g[i] = pred[i] - y[i] // d/dpred ½(pred-y)²
			h[i] = 1
		}
		tree := buildTree(x, g, h, idx, bn, r.P.Tree)
		r.trees = append(r.trees, tree)
		for i := range pred {
			pred[i] += r.P.LearningRate * tree.predictRow(x.Row(i))
		}
		if r.Rec != nil {
			mse := 0.0
			for i := range y {
				d := pred[i] - y[i]
				mse += d * d
			}
			r.Rec.TrainStep("gbdt", mse/float64(len(y)), len(y), time.Since(t0))
		}
	}
	return nil
}

// Predict returns predictions for every row of x.
func (r *Regressor) Predict(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := range out {
		p := r.base
		row := x.Row(i)
		for _, t := range r.trees {
			p += r.P.LearningRate * t.predictRow(row)
		}
		out[i] = p
	}
	return out
}

// Classifier is a gradient-boosted classifier: logistic loss for two
// classes, one-tree-per-class softmax for more.
type Classifier struct {
	P          Params
	NumClasses int
	// Rec, when non-nil, receives per-boosting-round telemetry from Fit
	// (stage "gbdt"; the recorded loss is the mean log-loss).
	Rec   *obs.Recorder
	base  []float64
	trees [][]*Tree // per round, per class (one entry for binary)
}

// NewClassifier creates a classifier for numClasses classes.
func NewClassifier(p Params, numClasses int) *Classifier {
	return &Classifier{P: p, NumClasses: numClasses}
}

// Fit trains on features x and integer labels in [0, NumClasses).
func (c *Classifier) Fit(x *tensor.Matrix, labels []int) error {
	if x.Rows != len(labels) {
		return fmt.Errorf("gbdt: %d rows but %d labels", x.Rows, len(labels))
	}
	if x.Rows == 0 {
		return fmt.Errorf("gbdt: empty training set")
	}
	if c.NumClasses < 2 {
		return fmt.Errorf("gbdt: need at least 2 classes, got %d", c.NumClasses)
	}
	for i, l := range labels {
		if l < 0 || l >= c.NumClasses {
			return fmt.Errorf("gbdt: label %d at row %d out of range [0,%d)", l, i, c.NumClasses)
		}
	}
	bn := newBinner(x, c.P.Tree.Bins)
	idx := allIndexes(x.Rows)
	n := x.Rows

	if c.NumClasses == 2 {
		pos := 0
		for _, l := range labels {
			pos += l
		}
		p := (float64(pos) + 0.5) / (float64(n) + 1)
		c.base = []float64{math.Log(p / (1 - p))}
		logit := make([]float64, n)
		for i := range logit {
			logit[i] = c.base[0]
		}
		g := make([]float64, n)
		h := make([]float64, n)
		c.trees = c.trees[:0]
		for round := 0; round < c.P.NumRounds; round++ {
			var t0 time.Time
			if c.Rec != nil {
				t0 = time.Now()
			}
			for i := range logit {
				s := 1 / (1 + math.Exp(-logit[i]))
				g[i] = s - float64(labels[i])
				h[i] = math.Max(s*(1-s), 1e-6)
			}
			tree := buildTree(x, g, h, idx, bn, c.P.Tree)
			c.trees = append(c.trees, []*Tree{tree})
			for i := range logit {
				logit[i] += c.P.LearningRate * tree.predictRow(x.Row(i))
			}
			if c.Rec != nil {
				c.Rec.TrainStep("gbdt", binaryLogLoss(logit, labels), n, time.Since(t0))
			}
		}
		return nil
	}

	// Multiclass softmax boosting.
	k := c.NumClasses
	c.base = make([]float64, k)
	counts := make([]float64, k)
	for _, l := range labels {
		counts[l]++
	}
	for j := range c.base {
		c.base[j] = math.Log((counts[j] + 0.5) / float64(n+1))
	}
	logits := tensor.New(n, k)
	for i := 0; i < n; i++ {
		copy(logits.Row(i), c.base)
	}
	g := make([]float64, n)
	h := make([]float64, n)
	c.trees = c.trees[:0]
	probs := make([]float64, k)
	for round := 0; round < c.P.NumRounds; round++ {
		var t0 time.Time
		if c.Rec != nil {
			t0 = time.Now()
		}
		roundTrees := make([]*Tree, k)
		// Compute softmax once per round, then fit one tree per class.
		probMat := tensor.New(n, k)
		for i := 0; i < n; i++ {
			softmaxInto(logits.Row(i), probs)
			copy(probMat.Row(i), probs)
		}
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				p := probMat.At(i, j)
				y := 0.0
				if labels[i] == j {
					y = 1
				}
				g[i] = p - y
				h[i] = math.Max(p*(1-p), 1e-6)
			}
			roundTrees[j] = buildTree(x, g, h, idx, bn, c.P.Tree)
		}
		c.trees = append(c.trees, roundTrees)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			lrow := logits.Row(i)
			for j := 0; j < k; j++ {
				lrow[j] += c.P.LearningRate * roundTrees[j].predictRow(row)
			}
		}
		if c.Rec != nil {
			c.Rec.TrainStep("gbdt", softmaxLogLoss(logits, labels, probs), n, time.Since(t0))
		}
	}
	return nil
}

// binaryLogLoss is the mean negative log-likelihood of labels under the
// current logits (telemetry only; never on the no-recorder path).
func binaryLogLoss(logit []float64, labels []int) float64 {
	total := 0.0
	for i, l := range logit {
		s := 1 / (1 + math.Exp(-l))
		p := s
		if labels[i] == 0 {
			p = 1 - s
		}
		total += -math.Log(math.Max(p, 1e-12))
	}
	return total / float64(len(logit))
}

// softmaxLogLoss is the mean multiclass negative log-likelihood; scratch is
// reused for the per-row softmax.
func softmaxLogLoss(logits *tensor.Matrix, labels []int, scratch []float64) float64 {
	total := 0.0
	for i := 0; i < logits.Rows; i++ {
		softmaxInto(logits.Row(i), scratch)
		total += -math.Log(math.Max(scratch[labels[i]], 1e-12))
	}
	return total / float64(logits.Rows)
}

// PredictProba returns the (rows, NumClasses) class-probability matrix.
func (c *Classifier) PredictProba(x *tensor.Matrix) *tensor.Matrix {
	n := x.Rows
	if c.NumClasses == 2 {
		out := tensor.New(n, 2)
		for i := 0; i < n; i++ {
			logit := c.base[0]
			row := x.Row(i)
			for _, rt := range c.trees {
				logit += c.P.LearningRate * rt[0].predictRow(row)
			}
			p := 1 / (1 + math.Exp(-logit))
			out.Set(i, 0, 1-p)
			out.Set(i, 1, p)
		}
		return out
	}
	k := c.NumClasses
	out := tensor.New(n, k)
	logits := make([]float64, k)
	for i := 0; i < n; i++ {
		copy(logits, c.base)
		row := x.Row(i)
		for _, rt := range c.trees {
			for j := 0; j < k; j++ {
				logits[j] += c.P.LearningRate * rt[j].predictRow(row)
			}
		}
		softmaxInto(logits, out.Row(i))
	}
	return out
}

// Predict returns the arg-max class per row.
func (c *Classifier) Predict(x *tensor.Matrix) []int {
	probs := c.PredictProba(x)
	out := make([]int, x.Rows)
	for i := range out {
		row := probs.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

func softmaxInto(logits, out []float64) {
	max := math.Inf(-1)
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for j, v := range logits {
		e := math.Exp(v - max)
		out[j] = e
		sum += e
	}
	for j := range out {
		out[j] /= sum
	}
}

func allIndexes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
