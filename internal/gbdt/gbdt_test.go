package gbdt

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/stats"
	"silofuse/internal/tensor"
)

func TestRegressorLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 600
	x := tensor.New(n, 3).Randn(rng, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 2*x.At(i, 0) - x.At(i, 1) + 0.1*rng.NormFloat64()
	}
	r := NewRegressor(DefaultParams())
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := r.Predict(x)
	if d2 := stats.D2AbsoluteError(y, pred); d2 < 0.7 {
		t.Fatalf("regressor too weak: D2 = %v", d2)
	}
}

func TestRegressorLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 800
	x := tensor.New(n, 2).Randn(rng, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = math.Sin(2*x.At(i, 0)) + x.At(i, 1)*x.At(i, 1)
	}
	p := DefaultParams()
	p.NumRounds = 80
	r := NewRegressor(p)
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if d2 := stats.D2AbsoluteError(y, r.Predict(x)); d2 < 0.6 {
		t.Fatalf("nonlinear fit too weak: D2 = %v", d2)
	}
}

func TestRegressorErrors(t *testing.T) {
	r := NewRegressor(DefaultParams())
	if err := r.Fit(tensor.New(3, 2), []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := r.Fit(tensor.New(0, 2), nil); err == nil {
		t.Fatal("expected empty set error")
	}
}

func TestBinaryClassifierLearnsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 600
	x := tensor.New(n, 2).Randn(rng, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0)+0.5*x.At(i, 1) > 0 {
			labels[i] = 1
		}
	}
	c := NewClassifier(DefaultParams(), 2)
	if err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	pred := c.Predict(x)
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("binary accuracy %v", acc)
	}
}

func TestBinaryProbabilitiesCalibratedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 400
	x := tensor.New(n, 1).Randn(rng, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	c := NewClassifier(DefaultParams(), 2)
	if err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	probs := c.PredictProba(x)
	for i := 0; i < n; i++ {
		p0, p1 := probs.At(i, 0), probs.At(i, 1)
		if p0 < 0 || p1 < 0 || math.Abs(p0+p1-1) > 1e-9 {
			t.Fatalf("invalid probability row: %v %v", p0, p1)
		}
	}
}

func TestMulticlassClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 900
	x := tensor.New(n, 2).Randn(rng, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := x.At(i, 0), x.At(i, 1)
		switch {
		case a > 0.3:
			labels[i] = 0
		case b > 0.3:
			labels[i] = 1
		default:
			labels[i] = 2
		}
	}
	c := NewClassifier(DefaultParams(), 3)
	if err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	pred := c.Predict(x)
	if f1 := stats.MacroF1(labels, pred, 3); f1 < 0.85 {
		t.Fatalf("multiclass macro F1 = %v", f1)
	}
	probs := c.PredictProba(x)
	for i := 0; i < 10; i++ {
		s := 0.0
		for _, v := range probs.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probabilities don't sum to 1: %v", s)
		}
	}
}

func TestClassifierErrors(t *testing.T) {
	c := NewClassifier(DefaultParams(), 2)
	if err := c.Fit(tensor.New(2, 1), []int{0}); err == nil {
		t.Fatal("expected length mismatch")
	}
	if err := c.Fit(tensor.New(2, 1), []int{0, 5}); err == nil {
		t.Fatal("expected label range error")
	}
	bad := NewClassifier(DefaultParams(), 1)
	if err := bad.Fit(tensor.New(2, 1), []int{0, 0}); err == nil {
		t.Fatal("expected class count error")
	}
}

func TestTreeHandlesConstantFeatures(t *testing.T) {
	n := 100
	x := tensor.New(n, 2) // all zeros
	y := make([]float64, n)
	for i := range y {
		y[i] = 5
	}
	r := NewRegressor(DefaultParams())
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := r.Predict(x)
	for _, p := range pred {
		if math.Abs(p-5) > 1e-6 {
			t.Fatalf("constant target not learned: %v", p)
		}
	}
}

func TestRegressorGeneralises(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 1000
	x := tensor.New(n, 3).Randn(rng, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = x.At(i, 0) * x.At(i, 1)
	}
	xTr := x.SliceRows(0, 800)
	xTe := x.SliceRows(800, n)
	p := DefaultParams()
	p.NumRounds = 60
	r := NewRegressor(p)
	if err := r.Fit(xTr, y[:800]); err != nil {
		t.Fatal(err)
	}
	if d2 := stats.D2AbsoluteError(y[800:], r.Predict(xTe)); d2 < 0.3 {
		t.Fatalf("held-out D2 = %v", d2)
	}
}

func TestRegressorFeatureImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 500
	x := tensor.New(n, 4).Randn(rng, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = 3 * x.At(i, 2) // only feature 2 matters
	}
	r := NewRegressor(DefaultParams())
	if err := r.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp := r.FeatureImportance(4)
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance must normalise: %v", imp)
	}
	for j, v := range imp {
		if j != 2 && v >= imp[2] {
			t.Fatalf("feature 2 should dominate: %v", imp)
		}
	}
}

func TestClassifierFeatureImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 500
	x := tensor.New(n, 3).Randn(rng, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	c := NewClassifier(DefaultParams(), 2)
	if err := c.Fit(x, labels); err != nil {
		t.Fatal(err)
	}
	imp := c.FeatureImportance(3)
	if imp[0] < imp[1] || imp[0] < imp[2] {
		t.Fatalf("feature 0 should dominate: %v", imp)
	}
}
