// Package gbdt implements histogram-based gradient-boosted decision trees —
// the stand-in for XGBoost in the paper's benchmark framework (propensity
// discriminator and downstream-utility models). Trees are grown depth-wise
// on first/second-order gradients with L2 leaf regularisation, following the
// XGBoost objective.
package gbdt

import (
	"math"
	"sort"

	"silofuse/internal/tensor"
)

// TreeParams controls growth of a single regression tree.
type TreeParams struct {
	MaxDepth      int     // maximum tree depth (root = depth 0)
	MinChildCount int     // minimum samples per leaf
	Lambda        float64 // L2 regularisation on leaf weights
	Bins          int     // histogram bins per feature
	Gamma         float64 // minimum gain to accept a split
}

// DefaultTreeParams returns sensible defaults for tabular benchmarks.
func DefaultTreeParams() TreeParams {
	return TreeParams{MaxDepth: 4, MinChildCount: 5, Lambda: 1, Bins: 32, Gamma: 1e-6}
}

type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	leaf      float64
	isLeaf    bool
}

// Tree is one fitted regression tree over gradient statistics.
type Tree struct {
	nodes []node
}

// binner holds per-feature histogram bin edges, computed once per dataset.
type binner struct {
	edges [][]float64 // per feature, ascending candidate thresholds
}

// newBinner computes up to bins-1 quantile-based candidate thresholds per
// feature.
func newBinner(x *tensor.Matrix, bins int) *binner {
	b := &binner{edges: make([][]float64, x.Cols)}
	for f := 0; f < x.Cols; f++ {
		col := x.Col(f)
		sort.Float64s(col)
		var edges []float64
		prev := math.NaN()
		for k := 1; k < bins; k++ {
			pos := k * (len(col) - 1) / bins
			v := col[pos]
			if v != prev { //silofuse:bitwise-ok deduplicate identical candidate bin edges
				edges = append(edges, v)
				prev = v
			}
		}
		b.edges[f] = edges
	}
	return b
}

// buildTree grows one tree on samples idx using gradients g and hessians h.
func buildTree(x *tensor.Matrix, g, h []float64, idx []int, bn *binner, p TreeParams) *Tree {
	t := &Tree{}
	t.grow(x, g, h, idx, bn, p, 0)
	return t
}

// grow appends the subtree for idx and returns its node index.
func (t *Tree) grow(x *tensor.Matrix, g, h []float64, idx []int, bn *binner, p TreeParams, depth int) int {
	var sumG, sumH float64
	for _, i := range idx {
		sumG += g[i]
		sumH += h[i]
	}
	me := len(t.nodes)
	t.nodes = append(t.nodes, node{})

	makeLeaf := func() int {
		t.nodes[me] = node{isLeaf: true, leaf: -sumG / (sumH + p.Lambda)}
		return me
	}
	if depth >= p.MaxDepth || len(idx) < 2*p.MinChildCount {
		return makeLeaf()
	}

	bestGain := p.Gamma
	bestFeat := -1
	var bestThr float64
	parentScore := sumG * sumG / (sumH + p.Lambda)

	for f := 0; f < x.Cols; f++ {
		edges := bn.edges[f]
		if len(edges) == 0 {
			continue
		}
		// Histogram of gradient stats per bin: bin k collects samples with
		// value <= edges[k] (k < len(edges)); overflow bin holds the rest.
		nb := len(edges) + 1
		hg := make([]float64, nb)
		hh := make([]float64, nb)
		hc := make([]int, nb)
		for _, i := range idx {
			v := x.At(i, f)
			k := sort.SearchFloat64s(edges, v) // first edge >= v
			hg[k] += g[i]
			hh[k] += h[i]
			hc[k]++
		}
		var gl, hl float64
		cl := 0
		for k := 0; k < nb-1; k++ {
			gl += hg[k]
			hl += hh[k]
			cl += hc[k]
			cr := len(idx) - cl
			if cl < p.MinChildCount || cr < p.MinChildCount {
				continue
			}
			gr := sumG - gl
			hr := sumH - hl
			gain := gl*gl/(hl+p.Lambda) + gr*gr/(hr+p.Lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = edges[k]
			}
		}
	}
	if bestFeat < 0 {
		return makeLeaf()
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeat) <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return makeLeaf()
	}
	l := t.grow(x, g, h, leftIdx, bn, p, depth+1)
	r := t.grow(x, g, h, rightIdx, bn, p, depth+1)
	t.nodes[me] = node{feature: bestFeat, threshold: bestThr, left: l, right: r}
	return me
}

// predictRow evaluates the tree for one feature row.
func (t *Tree) predictRow(row []float64) float64 {
	n := 0
	for {
		nd := t.nodes[n]
		if nd.isLeaf {
			return nd.leaf
		}
		if row[nd.feature] <= nd.threshold {
			n = nd.left
		} else {
			n = nd.right
		}
	}
}
