//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package datagen

import (
	"math"
	"testing"

	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

// TestTableIISchemas verifies every simulated dataset matches the paper's
// Table II exactly: row count, feature counts, and one-hot expansion size.
func TestTableIISchemas(t *testing.T) {
	want := map[string]struct {
		rows, cat, num, before, after int
		incr                          float64
	}{
		"loan":      {5000, 7, 6, 13, 23, 1.77},
		"adult":     {48842, 9, 5, 14, 108, 7.71},
		"cardio":    {70000, 7, 5, 12, 21, 1.75},
		"abalone":   {4177, 2, 8, 10, 39, 3.9},
		"churn":     {10000, 8, 6, 14, 2964, 211.71},
		"diabetes":  {768, 2, 7, 9, 26, 2.89},
		"cover":     {581012, 45, 10, 55, 104, 1.89},
		"intrusion": {22544, 22, 20, 42, 268, 6.38},
		"heloc":     {10250, 12, 12, 24, 239, 9.96},
	}
	if len(All) != len(want) {
		t.Fatalf("expected %d datasets, have %d", len(want), len(All))
	}
	for _, spec := range All {
		w, ok := want[spec.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", spec.Name)
		}
		if spec.PaperRows != w.rows {
			t.Errorf("%s: rows %d, want %d", spec.Name, spec.PaperRows, w.rows)
		}
		if len(spec.CatCards) != w.cat {
			t.Errorf("%s: cat cols %d, want %d", spec.Name, len(spec.CatCards), w.cat)
		}
		if spec.NumCols != w.num {
			t.Errorf("%s: num cols %d, want %d", spec.Name, spec.NumCols, w.num)
		}
		s := spec.Schema()
		if got := s.NumColumns(); got != w.before {
			t.Errorf("%s: before %d, want %d", spec.Name, got, w.before)
		}
		if got := s.OneHotWidth(); got != w.after {
			t.Errorf("%s: after %d, want %d", spec.Name, got, w.after)
		}
		incr := float64(s.OneHotWidth()) / float64(s.NumColumns())
		if math.Abs(incr-w.incr) > 0.01 {
			t.Errorf("%s: increase %.2fx, want %.2fx", spec.Name, incr, w.incr)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("abalone")
	if err != nil || s.Name != "abalone" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if len(Names()) != 9 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec, _ := ByName("loan")
	a := spec.Generate(200, 7)
	b := spec.Generate(200, 7)
	for i := range a.Data.Data {
		if a.Data.Data[i] != b.Data.Data[i] {
			t.Fatal("generation not deterministic for equal seeds")
		}
	}
	c := spec.Generate(200, 8)
	same := true
	for i := range a.Data.Data {
		if a.Data.Data[i] != c.Data.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateValidCategoryCodes(t *testing.T) {
	spec, _ := ByName("churn")
	tb := spec.Generate(300, 1)
	for ci, card := range spec.CatCards {
		for _, code := range tb.CatColumn(ci) {
			if code < 0 || code >= card {
				t.Fatalf("col %d: code %d out of range [0,%d)", ci, code, card)
			}
		}
	}
}

// TestPlantedStructure verifies the latent-factor model actually plants
// dependencies: the target column must be predictable from numeric columns
// (nonzero correlation ratio) and numeric columns must correlate with each
// other more than chance.
func TestPlantedStructure(t *testing.T) {
	spec, _ := ByName("cardio")
	tb := spec.Generate(4000, 3)
	nCat := len(spec.CatCards)
	target := tb.CatColumn(0)

	maxEta := 0.0
	for j := 0; j < spec.NumCols; j++ {
		eta := stats.CorrelationRatio(target, tb.NumColumn(nCat+j), spec.CatCards[0])
		if eta > maxEta {
			maxEta = eta
		}
	}
	if maxEta < 0.15 {
		t.Fatalf("target not predictable from numerics: max η = %v", maxEta)
	}

	maxCorr := 0.0
	for a := 0; a < spec.NumCols; a++ {
		for b := a + 1; b < spec.NumCols; b++ {
			c := math.Abs(stats.Pearson(tb.NumColumn(nCat+a), tb.NumColumn(nCat+b)))
			if c > maxCorr {
				maxCorr = c
			}
		}
	}
	if maxCorr < 0.2 {
		t.Fatalf("numeric columns uncorrelated: max |r| = %v", maxCorr)
	}
}

func TestGenerateDefaultCaps(t *testing.T) {
	spec, _ := ByName("cover")
	tb := spec.GenerateDefault(500)
	if tb.Rows() != 500 {
		t.Fatalf("cap ignored: rows = %d", tb.Rows())
	}
	small, _ := ByName("diabetes")
	tb2 := small.GenerateDefault(5000)
	if tb2.Rows() != 768 {
		t.Fatalf("small dataset should use paper rows: %d", tb2.Rows())
	}
}

func TestSchemaColumnOrder(t *testing.T) {
	spec, _ := ByName("adult")
	s := spec.Schema()
	for i := 0; i < len(spec.CatCards); i++ {
		if s.Columns[i].Kind != tabular.Categorical {
			t.Fatalf("column %d should be categorical", i)
		}
	}
	for i := len(spec.CatCards); i < s.NumColumns(); i++ {
		if s.Columns[i].Kind != tabular.Numeric {
			t.Fatalf("column %d should be numeric", i)
		}
	}
}
