// Package datagen simulates the nine benchmark datasets of the paper's
// evaluation (Table II). Real UCI/Kaggle files are unavailable offline, so
// each dataset is replaced by a seeded synthetic generator with exactly the
// paper's schema — row count, number of categorical and numeric features,
// and per-column cardinalities chosen so the one-hot expansion sizes match
// Table II's "#Aft." column (including Churn's 211.71× blow-up).
//
// Data is drawn from a latent-factor model: a low-dimensional Gaussian
// factor z drives every column, giving the cross-column correlation
// structure that resemblance, utility and the privacy attacks all measure.
// The first categorical column acts as a strongly predictable target so the
// downstream-utility metric is meaningful.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Spec describes one simulated benchmark dataset.
type Spec struct {
	Name      string
	PaperRows int   // row count reported in Table II
	CatCards  []int // cardinality per categorical column
	NumCols   int   // number of numeric columns
	Factors   int   // latent factor dimension
	NoiseStd  float64
	Seed      int64 // default generation seed
}

// All lists the nine benchmark datasets in the paper's alphabetical order.
// Cardinalities are chosen so that Σcards + NumCols equals Table II's
// one-hot size exactly.
var All = []Spec{
	{Name: "abalone", PaperRows: 4177, CatCards: []int{3, 28}, NumCols: 8, Factors: 4, NoiseStd: 0.35, Seed: 101},
	{Name: "adult", PaperRows: 48842, CatCards: []int{2, 9, 16, 7, 15, 6, 5, 41, 2}, NumCols: 5, Factors: 5, NoiseStd: 0.4, Seed: 102},
	{Name: "cardio", PaperRows: 70000, CatCards: []int{2, 2, 2, 2, 2, 3, 3}, NumCols: 5, Factors: 4, NoiseStd: 0.35, Seed: 103},
	{Name: "churn", PaperRows: 10000, CatCards: []int{2, 2, 2, 3, 3, 7, 7, 2932}, NumCols: 6, Factors: 5, NoiseStd: 0.4, Seed: 104},
	{Name: "cover", PaperRows: 581012, CatCards: coverCards(), NumCols: 10, Factors: 6, NoiseStd: 0.4, Seed: 105},
	{Name: "diabetes", PaperRows: 768, CatCards: []int{2, 17}, NumCols: 7, Factors: 4, NoiseStd: 0.35, Seed: 106},
	{Name: "heloc", PaperRows: 10250, CatCards: []int{8, 8, 8, 9, 9, 9, 24, 24, 32, 32, 32, 32}, NumCols: 12, Factors: 6, NoiseStd: 0.45, Seed: 107},
	{Name: "intrusion", PaperRows: 22544, CatCards: intrusionCards(), NumCols: 20, Factors: 6, NoiseStd: 0.45, Seed: 108},
	{Name: "loan", PaperRows: 5000, CatCards: []int{2, 2, 2, 2, 2, 3, 4}, NumCols: 6, Factors: 4, NoiseStd: 0.35, Seed: 109},
}

// coverCards returns Cover's 45 categorical cardinalities: 43 binary
// (wilderness/soil indicator flags) plus two 4-way columns, summing to 94.
func coverCards() []int {
	cards := make([]int, 45)
	for i := 0; i < 43; i++ {
		cards[i] = 2
	}
	cards[43] = 4
	cards[44] = 4
	return cards
}

// intrusionCards returns Intrusion's 22 cardinalities (protocol=3,
// service=66, flag=11, sixteen binary indicators, three wide columns),
// summing to 248.
func intrusionCards() []int {
	cards := []int{3, 66, 11}
	for i := 0; i < 16; i++ {
		cards = append(cards, 2)
	}
	return append(cards, 40, 46, 50)
}

// ByName looks a spec up by dataset name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Names returns every dataset name in order.
func Names() []string {
	out := make([]string, len(All))
	for i, s := range All {
		out[i] = s.Name
	}
	return out
}

// Schema builds the tabular schema: categorical columns first ("c00"…),
// then numeric ("n00"…), mirroring the paper's per-type feature grouping.
func (s Spec) Schema() *tabular.Schema {
	var cols []tabular.Column
	for i, k := range s.CatCards {
		cols = append(cols, tabular.Column{Name: fmt.Sprintf("c%02d", i), Kind: tabular.Categorical, Cardinality: k})
	}
	for i := 0; i < s.NumCols; i++ {
		cols = append(cols, tabular.Column{Name: fmt.Sprintf("n%02d", i), Kind: tabular.Numeric})
	}
	return tabular.MustSchema(cols)
}

// Generate draws rows samples with the given seed. The latent-factor model
// parameters are fixed by the spec's own Seed, so different generation
// seeds draw different samples from the *same* underlying distribution —
// exactly what train/test splits and "fresh sample" baselines require.
// Generation is deterministic in (spec, rows, seed).
func (s Spec) Generate(rows int, seed int64) *tabular.Table {
	paramRng := rand.New(rand.NewSource(s.Seed))
	rng := rand.New(rand.NewSource(seed))
	schema := s.Schema()
	nCat := len(s.CatCards)
	d := schema.NumColumns()

	// Model parameters, fixed per dataset.
	catW := make([][]float64, nCat) // flattened (card x factors) logit weights
	catB := make([][]float64, nCat)
	for c, card := range s.CatCards {
		catW[c] = randSlice(paramRng, card*s.Factors, 1.2)
		catB[c] = randSlice(paramRng, card, 0.8)
	}
	// The first categorical column is the downstream target: sharpen its
	// dependence on the factors so it is predictable from other features.
	for i := range catW[0] {
		catW[0][i] *= 2.5
	}
	numW := make([][]float64, s.NumCols)
	for j := range numW {
		numW[j] = randSlice(paramRng, s.Factors, 1)
	}

	data := tensor.New(rows, d)
	z := make([]float64, s.Factors)
	for i := 0; i < rows; i++ {
		for f := range z {
			z[f] = rng.NormFloat64()
		}
		row := data.Row(i)
		for c, card := range s.CatCards {
			row[c] = float64(sampleCategory(rng, catW[c], catB[c], z, card, s.Factors))
		}
		for j := 0; j < s.NumCols; j++ {
			raw := dot(numW[j], z) + s.NoiseStd*rng.NormFloat64()
			row[nCat+j] = numericTransform(j, raw)
		}
	}
	t, err := tabular.NewTable(schema, data)
	if err != nil {
		panic(fmt.Sprintf("datagen: internal inconsistency: %v", err))
	}
	return t
}

// GenerateDefault draws min(cap, PaperRows) rows with the spec's seed.
// cap <= 0 means the full paper row count.
func (s Spec) GenerateDefault(cap int) *tabular.Table {
	rows := s.PaperRows
	if cap > 0 && rows > cap {
		rows = cap
	}
	return s.Generate(rows, s.Seed)
}

func randSlice(rng *rand.Rand, n int, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * std
	}
	return out
}

func dot(w, z []float64) float64 {
	s := 0.0
	for i := range w {
		s += w[i] * z[i]
	}
	return s
}

// sampleCategory draws from softmax(Wz + b) over card choices.
func sampleCategory(rng *rand.Rand, w, b, z []float64, card, factors int) int {
	max := math.Inf(-1)
	logits := make([]float64, card)
	for k := 0; k < card; k++ {
		l := b[k] + dot(w[k*factors:(k+1)*factors], z)
		logits[k] = l
		if l > max {
			max = l
		}
	}
	sum := 0.0
	for k := range logits {
		logits[k] = math.Exp(logits[k] - max)
		sum += logits[k]
	}
	u := rng.Float64() * sum
	acc := 0.0
	for k, e := range logits {
		acc += e
		if u <= acc {
			return k
		}
	}
	return card - 1
}

// numericTransform applies a mild monotone nonlinearity that varies by
// column index, giving a mix of symmetric, skewed and heavy-tailed marginals
// like real tabular data.
func numericTransform(j int, v float64) float64 {
	switch j % 3 {
	case 0:
		return v
	case 1:
		return math.Exp(v / 2) // log-normal-ish skew
	default:
		return v * math.Abs(v) / 2 // signed quadratic: heavier tails
	}
}
