package diffusion

import (
	"io"
	"math"
	"math/rand"
	"runtime"
	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// ModelConfig configures a Gaussian DDPM with an MLP backbone.
type ModelConfig struct {
	Dim       int     // data dimension
	Hidden    int     // backbone hidden width
	Depth     int     // backbone hidden blocks (paper: 8)
	TimeDim   int     // sinusoidal embedding width
	T         int     // training timesteps (paper: 200)
	LR        float64 // Adam learning rate (paper: 1e-3)
	Dropout   float64 // backbone dropout (paper: 0.01)
	CosineSch bool    // cosine schedule instead of linear
	// EMADecay, when > 0, maintains an exponential moving average of the
	// backbone weights and samples with the averaged weights — the standard
	// diffusion training stabiliser.
	EMADecay float64
	// PredictX0 switches the network parameterisation from ε-prediction
	// (the paper's eq. 2) to x0-prediction: the backbone regresses the
	// clean input directly and sampling converts its output back to an
	// implied ε. Useful at very low step counts where ε-prediction is
	// ill-conditioned near t≈T.
	PredictX0 bool
	// DebugSpin, when > 0, burns that many iterations of deterministic
	// arithmetic after every training step. It changes nothing but wall
	// time — losses stay bit-identical — and exists so the profiling
	// attribution path (silofuse-obs diff, make profile-smoke) can inject
	// a slowdown with a known culprit function.
	DebugSpin int
	// Precision selects the sampling compute tier: "" or "f64" runs the
	// historical float64 path (bit-identical, the default); "f32" runs the
	// DDIM sampling loop — backbone forward, ping-pong buffers and
	// per-element update — in float32 on the reduced-precision kernels.
	// Training is always float64 regardless of this setting.
	Precision string
}

// DefaultModelConfig returns the paper's backbone configuration scaled to
// CPU-friendly widths; dim must be set by the caller.
func DefaultModelConfig(dim int) ModelConfig {
	return ModelConfig{Dim: dim, Hidden: 256, Depth: 8, TimeDim: 32, T: 200, LR: 1e-3, Dropout: 0.01}
}

// Model couples the Gaussian process mechanics with a trainable noise
// predictor and its optimiser — the coordinator's generative backbone 𝒢.
type Model struct {
	G         *Gaussian
	Net       *nn.DiffusionMLP
	Opt       *nn.Adam
	EMA       *nn.EMA // nil unless cfg.EMADecay > 0
	PredictX0 bool
	// Rec, when non-nil, receives per-step loss/throughput telemetry from
	// Train (stage "diffusion"). nil means telemetry off at zero cost.
	Rec *obs.Recorder
	rng *rand.Rand

	// precision is ModelConfig.Precision; "f32" routes Sample through the
	// float32 kernel path.
	precision string

	// debugSpin/spinSink implement ModelConfig.DebugSpin; the sink lives on
	// the model (not a package global) so concurrent models stay race-free.
	debugSpin int
	spinSink  float64

	// Persistent training/sampling workspaces: reused across steps while
	// the batch shape is unchanged, so a steady-state TrainStep allocates
	// nothing.
	tsBuf                            []int
	epsBuf, xtBuf, gradBuf, batchBuf *tensor.Matrix
	predEps                          *tensor.Matrix

	// Batched-sampling workspaces (SampleBatchWithRngs): the stacked
	// ping-pong matrices, the shared timestep slice, and the strided
	// inference schedule cached by step count (StridedTimesteps allocates,
	// so the warm path reuses the last schedule while steps is unchanged).
	sbX, sbBuf *tensor.Matrix
	sbTs       []int
	sbSeq      []int
	sbSteps    int
}

// NewModel builds a model from cfg, drawing initial weights from rng.
func NewModel(rng *rand.Rand, cfg ModelConfig) *Model {
	var sch *Schedule
	if cfg.CosineSch {
		sch = CosineSchedule(cfg.T)
	} else {
		sch = LinearSchedule(cfg.T, 1e-4, 0.02)
	}
	net := nn.NewDiffusionMLP(rng, cfg.Dim, cfg.Hidden, cfg.Dim, cfg.Depth, cfg.TimeDim, cfg.Dropout)
	net.WarmTimesteps(cfg.T)
	m := &Model{
		G:         NewGaussian(sch),
		Net:       net,
		Opt:       nn.NewAdam(net.Params(), cfg.LR),
		PredictX0: cfg.PredictX0,
		rng:       rng,
		debugSpin: cfg.DebugSpin,
		precision: cfg.Precision,
	}
	if cfg.EMADecay > 0 {
		m.EMA = nn.NewEMA(net.Params(), cfg.EMADecay)
	}
	return m
}

// TrainStep performs one optimisation step on a batch of clean data x0:
// sample t and ε, noise to x_t, predict ε, minimise MSE (paper eq. 5).
// It returns the batch loss.
//
//silofuse:noalloc
func (m *Model) TrainStep(x0 *tensor.Matrix) float64 {
	m.tsBuf = tensor.EnsureInts(m.tsBuf, x0.Rows)
	ts := m.tsBuf
	m.G.SampleTimestepsInto(m.rng, ts)
	m.epsBuf = tensor.Ensure(m.epsBuf, x0.Rows, x0.Cols)
	eps := m.epsBuf.Randn(m.rng, 1)
	m.xtBuf = tensor.Ensure(m.xtBuf, x0.Rows, x0.Cols)
	xt := m.G.QSampleInto(m.xtBuf, x0, ts, eps)
	pred := m.Net.Forward(xt, ts, true)
	target := eps
	if m.PredictX0 {
		target = x0
	}
	m.gradBuf = tensor.Ensure(m.gradBuf, pred.Rows, pred.Cols)
	loss := nn.MSELossInto(pred, target, m.gradBuf)
	m.Net.Backward(m.gradBuf)
	m.Opt.Step()
	if m.EMA != nil {
		m.EMA.Update()
	}
	return loss
}

// TrainStepGrad is the gradient half of TrainStep for data-parallel
// training: it draws (t, ε) and any dropout masks from the supplied rng —
// not the model's own stream — noises the batch, and accumulates parameter
// gradients without stepping the optimiser. The caller flattens the grads,
// all-reduces them, and applies the averaged update via ApplyUpdate. The
// step is a pure function of (params, x0, rng), which is what makes the
// N-worker schedule bit-reproducible.
//
//silofuse:noalloc
func (m *Model) TrainStepGrad(rng *rand.Rand, x0 *tensor.Matrix) float64 {
	m.Net.SetDropoutRng(rng)
	m.tsBuf = tensor.EnsureInts(m.tsBuf, x0.Rows)
	ts := m.tsBuf
	m.G.SampleTimestepsInto(rng, ts)
	m.epsBuf = tensor.Ensure(m.epsBuf, x0.Rows, x0.Cols)
	eps := m.epsBuf.Randn(rng, 1)
	m.xtBuf = tensor.Ensure(m.xtBuf, x0.Rows, x0.Cols)
	xt := m.G.QSampleInto(m.xtBuf, x0, ts, eps)
	pred := m.Net.Forward(xt, ts, true)
	target := eps
	if m.PredictX0 {
		target = x0
	}
	m.gradBuf = tensor.Ensure(m.gradBuf, pred.Rows, pred.Cols)
	loss := nn.MSELossInto(pred, target, m.gradBuf)
	m.Net.Backward(m.gradBuf)
	return loss
}

// ApplyUpdate steps the optimiser on whatever gradients are currently
// loaded into the parameters (a reduced gradient set via nn.SetGrads) and
// advances the EMA — the second half of a data-parallel TrainStep.
func (m *Model) ApplyUpdate() {
	m.Opt.Step()
	if m.EMA != nil {
		m.EMA.Update()
	}
}

// Train runs iters optimisation steps with minibatches of size batch drawn
// uniformly from data, returning the mean loss of the final 10% of steps.
func (m *Model) Train(data *tensor.Matrix, iters, batch int) float64 {
	if batch > data.Rows {
		batch = data.Rows
	}
	tail := iters - iters/10
	var tailLoss float64
	var tailCount int
	idx := make([]int, batch)
	m.batchBuf = tensor.Ensure(m.batchBuf, batch, data.Cols)
	var ms0 runtime.MemStats
	if m.Rec != nil {
		runtime.ReadMemStats(&ms0)
	}
	for it := 0; it < iters; it++ {
		for i := range idx {
			idx[i] = m.rng.Intn(data.Rows)
		}
		t0 := m.Rec.Now()
		loss := m.TrainStep(data.GatherRowsInto(m.batchBuf, idx))
		if m.debugSpin > 0 {
			m.debugSpinStep()
		}
		if m.Rec != nil {
			m.Rec.TrainStep("diffusion", loss, batch, m.Rec.Since(t0))
		}
		if it >= tail {
			tailLoss += loss
			tailCount++
		}
	}
	if m.Rec != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		m.Rec.TrainAllocs("diffusion", iters, ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
	}
	if tailCount == 0 {
		return 0
	}
	return tailLoss / float64(tailCount)
}

// debugSpinStep burns DebugSpin iterations of deterministic float
// arithmetic. Kept out of line so CPU profiles attribute the injected
// slowdown to exactly this frame.
//
//go:noinline
func (m *Model) debugSpinStep() {
	x := m.spinSink + 1
	for i := 0; i < m.debugSpin; i++ {
		x += float64(i&7) * 1e-12
	}
	m.spinSink = x
}

// Predict implements NoisePredictor in evaluation mode (no dropout). Under
// x0-parameterisation the network output x̂0 is converted to the implied
// noise ε̂ = (x_t − sqrt(ᾱ)·x̂0)/sqrt(1−ᾱ), so the DDIM sampler works
// unchanged.
func (m *Model) Predict(x *tensor.Matrix, ts []int) *tensor.Matrix {
	out := m.Net.Forward(x, ts, false)
	if !m.PredictX0 {
		return out
	}
	m.predEps = tensor.Ensure(m.predEps, out.Rows, out.Cols)
	eps := m.predEps
	for i := 0; i < out.Rows; i++ {
		ab := m.G.S.AlphaBar[ts[i]]
		sa := math.Sqrt(ab)
		sb := math.Sqrt(1 - ab)
		if sb < 1e-6 {
			sb = 1e-6
		}
		xr, or, er := x.Row(i), out.Row(i), eps.Row(i)
		for j := range er {
			er[j] = (xr[j] - sa*or[j]) / sb
		}
	}
	return eps
}

// Sample draws n synthetic rows using steps inference timesteps. When EMA
// is enabled the averaged weights are used for the whole sampling loop.
func (m *Model) Sample(n, steps int) *tensor.Matrix {
	return m.SampleWithRng(m.rng, n, steps)
}

// SampleWithRng is Sample with an explicit randomness source, for callers
// that need reproducible draws independent of training state.
//
//silofuse:noalloc
func (m *Model) SampleWithRng(rng *rand.Rand, n, steps int) *tensor.Matrix {
	if m.EMA != nil {
		m.EMA.Apply()
		defer m.EMA.Restore()
	}
	if m.precision == "f32" {
		return tensor.To64(m.sample32(rng, n, steps))
	}
	return m.G.Sample(rng, m, n, m.Net.In, steps, 0)
}

// sample32 runs the reduced-precision sampling loop. The backbone weights
// are snapshotted to float32 here — after EMA.Apply, so averaged weights
// are what the snapshot narrows — and the result stays float32 until the
// caller converts it once at the boundary.
func (m *Model) sample32(rng *rand.Rand, n, steps int) *tensor.Matrix32 {
	net32, err := m.Net.Snapshot32()
	if err != nil {
		// The backbone trunk is Linear/GELU/Dropout by construction; any
		// other layer reaching here is a programming error, not a runtime
		// condition.
		panic(err)
	}
	p := &predictor32{g: m.G, net: net32, predictX0: m.PredictX0}
	return m.G.Sample32(rng, p, n, m.Net.In, steps, 0)
}

// predictor32 adapts the float32 backbone snapshot to NoisePredictor32,
// including the x0→ε conversion under x0-parameterisation (the float32
// rendering of Model.Predict).
type predictor32 struct {
	g         *Gaussian
	net       *nn.DiffusionMLP32
	predictX0 bool
	eps       *tensor.Matrix32
}

func (p *predictor32) Predict32(x *tensor.Matrix32, ts []int) *tensor.Matrix32 {
	out := p.net.Forward(x, ts)
	if !p.predictX0 {
		return out
	}
	p.eps = tensor.Ensure32(p.eps, out.Rows, out.Cols)
	eps := p.eps
	for i := 0; i < out.Rows; i++ {
		ab := p.g.S.AlphaBar[ts[i]]
		sa := float32(math.Sqrt(ab)) //silofuse:precision-ok schedule constants computed in float64, narrowed once per row
		sbf := math.Sqrt(1 - ab)
		if sbf < 1e-6 {
			sbf = 1e-6
		}
		sb := float32(sbf) //silofuse:precision-ok schedule constants computed in float64, narrowed once per row
		xr, or, er := x.Row(i), out.Row(i), eps.Row(i)
		for j := range er {
			er[j] = (xr[j] - sa*or[j]) / sb
		}
	}
	return eps
}

// Save writes the backbone weights to w.
func (m *Model) Save(w io.Writer) error { return nn.SaveParams(w, m.Net.Params()) }

// Load restores backbone weights written by Save into a model built with
// the same configuration.
func (m *Model) Load(r io.Reader) error { return nn.LoadParams(r, m.Net.Params()) }
