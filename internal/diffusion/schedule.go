// Package diffusion implements the denoising-diffusion mechanics used by
// every DDPM in this repository: variance schedules, the Gaussian forward
// process and DDIM-style strided sampling (the paper trains with T=200 and
// samples with 25 inference steps), and the multinomial diffusion used by
// the TabDDPM baseline for categorical features.
package diffusion

import (
	"fmt"
	"math"
)

// Schedule holds a variance schedule over T timesteps. Arrays are indexed
// 1..T; index 0 is the identity point (AlphaBar[0] = 1).
type Schedule struct {
	T        int
	Beta     []float64 // β_t, len T+1
	Alpha    []float64 // α_t = 1 - β_t
	AlphaBar []float64 // ᾱ_t = Π_{j<=t} α_j
}

// LinearSchedule builds the classic Ho et al. linear β schedule from beta1
// to betaT over T steps.
func LinearSchedule(T int, beta1, betaT float64) *Schedule {
	if T < 1 {
		panic(fmt.Sprintf("diffusion: T must be >= 1, got %d", T))
	}
	s := &Schedule{
		T:        T,
		Beta:     make([]float64, T+1),
		Alpha:    make([]float64, T+1),
		AlphaBar: make([]float64, T+1),
	}
	s.AlphaBar[0] = 1
	s.Alpha[0] = 1
	for t := 1; t <= T; t++ {
		var b float64
		if T == 1 {
			b = beta1
		} else {
			b = beta1 + (betaT-beta1)*float64(t-1)/float64(T-1)
		}
		s.Beta[t] = b
		s.Alpha[t] = 1 - b
		s.AlphaBar[t] = s.AlphaBar[t-1] * s.Alpha[t]
	}
	return s
}

// CosineSchedule builds the Nichol–Dhariwal cosine ᾱ schedule, which noises
// more gently early on — better suited to low-dimensional latents.
func CosineSchedule(T int) *Schedule {
	if T < 1 {
		panic(fmt.Sprintf("diffusion: T must be >= 1, got %d", T))
	}
	const offset = 0.008
	f := func(t float64) float64 {
		v := math.Cos((t/float64(T) + offset) / (1 + offset) * math.Pi / 2)
		return v * v
	}
	s := &Schedule{
		T:        T,
		Beta:     make([]float64, T+1),
		Alpha:    make([]float64, T+1),
		AlphaBar: make([]float64, T+1),
	}
	s.AlphaBar[0] = 1
	s.Alpha[0] = 1
	f0 := f(0)
	for t := 1; t <= T; t++ {
		ab := f(float64(t)) / f0
		beta := 1 - ab/s.AlphaBar[t-1]
		beta = math.Min(math.Max(beta, 1e-5), 0.999)
		s.Beta[t] = beta
		s.Alpha[t] = 1 - beta
		s.AlphaBar[t] = s.AlphaBar[t-1] * s.Alpha[t]
	}
	return s
}

// StridedTimesteps returns a descending subsequence of steps timesteps from
// T down to 1, used for accelerated (25-step) inference.
func (s *Schedule) StridedTimesteps(steps int) []int {
	if steps < 1 {
		steps = 1
	}
	if steps > s.T {
		steps = s.T
	}
	out := make([]int, steps)
	for i := 0; i < steps; i++ {
		// Evenly spaced in [1, T], descending, endpoints included.
		out[i] = 1 + (s.T-1)*(steps-1-i)/maxInt(steps-1, 1)
	}
	if steps == 1 {
		out[0] = s.T
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
