package diffusion

import (
	"math/rand"

	"silofuse/internal/nn"
	"silofuse/internal/tensor"
)

// CatModel is a trainable multinomial DDPM over a single categorical
// feature with K categories: the TabDDPM-style categorical half reduced to
// a standalone model so the data-parallel driver can be proven equivalent
// on both diffusion families, not just the Gaussian latent path. The
// backbone consumes the one-hot corrupted code and regresses x0 logits
// (x0-parameterisation, cross-entropy surrogate).
type CatModel struct {
	M   *Multinomial
	Net *nn.DiffusionMLP
	Opt *nn.Adam
	K   int

	tsBuf []int
	xtBuf *tensor.Matrix
}

// CatModelConfig configures a CatModel.
type CatModelConfig struct {
	K       int     // category count
	Hidden  int     // backbone hidden width
	Depth   int     // backbone hidden blocks
	TimeDim int     // sinusoidal embedding width
	T       int     // training timesteps
	LR      float64 // Adam learning rate
	Dropout float64 // backbone dropout
}

// DefaultCatModelConfig returns a CPU-friendly categorical model
// configuration; K must be set by the caller.
func DefaultCatModelConfig(k int) CatModelConfig {
	return CatModelConfig{K: k, Hidden: 64, Depth: 2, TimeDim: 16, T: 100, LR: 1e-3, Dropout: 0.01}
}

// NewCatModel builds a categorical model from cfg, drawing initial weights
// from rng.
func NewCatModel(rng *rand.Rand, cfg CatModelConfig) *CatModel {
	sch := LinearSchedule(cfg.T, 1e-4, 0.02)
	net := nn.NewDiffusionMLP(rng, cfg.K, cfg.Hidden, cfg.K, cfg.Depth, cfg.TimeDim, cfg.Dropout)
	net.WarmTimesteps(cfg.T)
	return &CatModel{
		M:   NewMultinomial(sch, cfg.K),
		Net: net,
		Opt: nn.NewAdam(net.Params(), cfg.LR),
		K:   cfg.K,
	}
}

// TrainStepGrad accumulates gradients for one batch of clean codes, drawing
// every random quantity — timesteps, corruption draws, dropout masks — from
// rng, without stepping the optimiser. The categorical counterpart of
// Model.TrainStepGrad.
func (c *CatModel) TrainStepGrad(rng *rand.Rand, codes []int) float64 {
	n := len(codes)
	c.Net.SetDropoutRng(rng)
	c.tsBuf = tensor.EnsureInts(c.tsBuf, n)
	ts := c.tsBuf
	for i := range ts {
		ts[i] = 1 + rng.Intn(c.M.S.T)
	}
	c.xtBuf = tensor.Ensure(c.xtBuf, n, c.K)
	xt := c.xtBuf
	for i := range xt.Data {
		xt.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		xt.Set(i, c.M.QSampleCode(rng, codes[i], ts[i]), 1)
	}
	logits := c.Net.Forward(xt, ts, true)
	loss, g := nn.CrossEntropyLoss(logits, codes)
	c.Net.Backward(g)
	return loss
}

// ApplyUpdate steps the optimiser on the currently loaded gradients.
func (c *CatModel) ApplyUpdate() { c.Opt.Step() }

// MultinomialShardStepper adapts a CatModel replica and its code column to
// the ShardStepper interface.
type MultinomialShardStepper struct {
	M     *CatModel
	Codes []int

	batch []int
}

// NewMultinomialShardStepper wraps m and codes for DDP training.
func NewMultinomialShardStepper(m *CatModel, codes []int) *MultinomialShardStepper {
	return &MultinomialShardStepper{M: m, Codes: codes}
}

// ShardStep implements ShardStepper for the categorical model.
func (s *MultinomialShardStepper) ShardStep(rng *rand.Rand, lo, hi, micro int) float64 {
	s.batch = tensor.EnsureInts(s.batch, micro)
	for i := 0; i < micro; i++ {
		s.batch[i] = s.Codes[lo+rng.Intn(hi-lo)]
	}
	return s.M.TrainStepGrad(rng, s.batch)
}

// Params implements ShardStepper.
func (s *MultinomialShardStepper) Params() []*nn.Param { return s.M.Net.Params() }

// ApplyUpdate implements ShardStepper.
func (s *MultinomialShardStepper) ApplyUpdate() { s.M.ApplyUpdate() }
