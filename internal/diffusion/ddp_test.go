//silofuse:bitwise-ok equivalence tests pin bit-identical N-worker training with exact comparisons
package diffusion

import (
	"bytes"
	"math/rand"
	"testing"

	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// ddpModelConfig is the small Gaussian backbone the equivalence matrix
// trains: big enough that Adam moments and dropout masks are exercised,
// small enough that the 4-point worker matrix stays fast.
func ddpModelConfig(dim int) ModelConfig {
	return ModelConfig{Dim: dim, Hidden: 32, Depth: 2, TimeDim: 8, T: 50, LR: 1e-3, Dropout: 0.01, EMADecay: 0.99}
}

// runGaussianDDP trains `workers` identically seeded Gaussian replicas
// data-parallel over a ChanTransport and returns the per-iteration losses
// plus the serialized bytes of replica 0's final parameters.
func runGaussianDDP(t *testing.T, workers, iters int) (*DDPResult, []byte) {
	t.Helper()
	const rows, dim = 100, 4
	data := tensor.New(rows, dim).Randn(rand.New(rand.NewSource(99)), 1)
	steppers := make([]ShardStepper, workers)
	for w := range steppers {
		m := NewModel(rand.New(rand.NewSource(7)), ddpModelConfig(dim))
		steppers[w] = NewGaussianShardStepper(m, data)
	}
	res, err := TrainDDP(steppers, NewChanTransport(workers, DefaultShards), DDPConfig{
		Workers: workers, Shards: DefaultShards, Iters: iters, Batch: 32, Rows: rows, Seed: 42,
	})
	if err != nil {
		t.Fatalf("TrainDDP (N=%d): %v", workers, err)
	}
	return res, paramBytes(t, steppers[0].Params())
}

// runMultinomialDDP is runGaussianDDP for the categorical diffusion family.
func runMultinomialDDP(t *testing.T, workers, iters int) (*DDPResult, []byte) {
	t.Helper()
	const rows, k = 90, 5
	crng := rand.New(rand.NewSource(101))
	codes := make([]int, rows)
	for i := range codes {
		codes[i] = crng.Intn(k)
	}
	cfg := CatModelConfig{K: k, Hidden: 32, Depth: 2, TimeDim: 8, T: 50, LR: 1e-3, Dropout: 0.01}
	steppers := make([]ShardStepper, workers)
	for w := range steppers {
		steppers[w] = NewMultinomialShardStepper(NewCatModel(rand.New(rand.NewSource(7)), cfg), codes)
	}
	res, err := TrainDDP(steppers, NewChanTransport(workers, DefaultShards), DDPConfig{
		Workers: workers, Shards: DefaultShards, Iters: iters, Batch: 32, Rows: rows, Seed: 43,
	})
	if err != nil {
		t.Fatalf("TrainDDP multinomial (N=%d): %v", workers, err)
	}
	return res, paramBytes(t, steppers[0].Params())
}

func paramBytes(t *testing.T, ps []*nn.Param) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, ps); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	return buf.Bytes()
}

// requireSameRun pins the equivalence contract: the N-worker run must match
// the baseline bit for bit — every per-iteration reduced loss and every
// byte of the final serialized parameters.
func requireSameRun(t *testing.T, workers int, base, got *DDPResult, baseParams, gotParams []byte) {
	t.Helper()
	if len(base.IterLosses) != len(got.IterLosses) {
		t.Fatalf("N=%d: %d iteration losses, baseline has %d", workers, len(got.IterLosses), len(base.IterLosses))
	}
	for it := range base.IterLosses {
		if base.IterLosses[it] != got.IterLosses[it] {
			t.Fatalf("N=%d iter %d: loss %v differs from baseline %v", workers, it, got.IterLosses[it], base.IterLosses[it])
		}
	}
	if got.TailLoss != base.TailLoss {
		t.Fatalf("N=%d: tail loss %v differs from baseline %v", workers, got.TailLoss, base.TailLoss)
	}
	if !bytes.Equal(baseParams, gotParams) {
		t.Fatalf("N=%d: final parameters differ from single-worker baseline", workers)
	}
}

// TestDDPEquivalenceGaussian is the Gaussian half of the equivalence
// matrix: training with N ∈ {2, 3, 8} workers is bit-identical — losses and
// final parameters — to the N=1 baseline, because the fixed logical shard
// count, the per-shard rng derivation and the ascending reduce order make
// worker count a pure scheduling choice.
func TestDDPEquivalenceGaussian(t *testing.T) {
	const iters = 40
	base, baseParams := runGaussianDDP(t, 1, iters)
	for _, n := range []int{2, 3, 8} {
		res, params := runGaussianDDP(t, n, iters)
		requireSameRun(t, n, base, res, baseParams, params)
	}
}

// TestDDPEquivalenceMultinomial is the categorical half of the equivalence
// matrix: the same N-invariance holds for multinomial diffusion.
func TestDDPEquivalenceMultinomial(t *testing.T) {
	const iters = 40
	base, baseParams := runMultinomialDDP(t, 1, iters)
	for _, n := range []int{2, 3, 8} {
		res, params := runMultinomialDDP(t, n, iters)
		requireSameRun(t, n, base, res, baseParams, params)
	}
}

// TestDDPShardRange checks the shard ranges partition the row space: every
// row belongs to exactly one shard, shards are contiguous and ascending,
// and sizes differ by at most one.
func TestDDPShardRange(t *testing.T) {
	for _, tc := range []struct{ rows, shards int }{{100, 8}, {7, 7}, {13, 8}, {8, 3}} {
		next, minSz, maxSz := 0, tc.rows, 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardRange(tc.rows, tc.shards, s)
			if lo != next || hi <= lo {
				t.Fatalf("rows=%d shards=%d: shard %d spans [%d,%d), want contiguous from %d", tc.rows, tc.shards, s, lo, hi, next)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = hi
		}
		if next != tc.rows {
			t.Fatalf("rows=%d shards=%d: shards cover %d rows", tc.rows, tc.shards, next)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("rows=%d shards=%d: shard sizes range %d..%d, want spread <= 1", tc.rows, tc.shards, minSz, maxSz)
		}
	}
}

// TestDDPRngDerivation pins the stream-separation properties the shard rng
// derivation relies on: distinct (shard, iter) pairs land on distinct
// streams, the mapping is not symmetric in its arguments, and the lane tag
// keeps sampling lanes off the training streams.
func TestDDPRngDerivation(t *testing.T) {
	seen := make(map[int64]bool)
	for shard := 0; shard < 8; shard++ {
		for iter := 0; iter < 8; iter++ {
			v := ShardRng(5, shard, iter).Int63()
			if seen[v] {
				t.Fatalf("shard rng collision: (%d,%d) repeats an earlier pair's draw %d", shard, iter, v)
			}
			seen[v] = true
		}
	}
	if ShardRng(5, 1, 2).Int63() == ShardRng(5, 2, 1).Int63() {
		t.Fatal("shard rng is symmetric in (shard, iter)")
	}
	if LaneRng(5, 3).Int63() == ShardRng(5, 3, 0).Int63() {
		t.Fatal("lane 3 shares a stream with shard 3")
	}
}

// TestDDPHammer is the race-detector stress run: 4 workers' goroutines
// train concurrently against the reduce root for 200+ iterations with obs
// recording on, and the per-shard loss ledger must reproduce every reduced
// loss exactly — the ascending fold over ShardLosses[it] divided by S is
// the number the root reported, proving the concurrent schedule never
// perturbed the reduction.
func TestDDPHammer(t *testing.T) {
	const rows, dim, iters, shards = 64, 4, 220, 8
	data := tensor.New(rows, dim).Randn(rand.New(rand.NewSource(17)), 1)
	steppers := make([]ShardStepper, 4)
	for w := range steppers {
		m := NewModel(rand.New(rand.NewSource(3)), ddpModelConfig(dim))
		steppers[w] = NewGaussianShardStepper(m, data)
	}
	rec := obs.NewRecorder()
	res, err := TrainDDP(steppers, NewChanTransport(len(steppers), shards), DDPConfig{
		Workers: len(steppers), Shards: shards, Iters: iters, Batch: 32, Rows: rows, Seed: 9, Rec: rec,
	})
	if err != nil {
		t.Fatalf("TrainDDP: %v", err)
	}
	if len(res.IterLosses) != iters || len(res.ShardLosses) != iters {
		t.Fatalf("got %d/%d loss rows, want %d", len(res.IterLosses), len(res.ShardLosses), iters)
	}
	for it := 0; it < iters; it++ {
		if len(res.ShardLosses[it]) != shards {
			t.Fatalf("iter %d: %d shard losses, want %d", it, len(res.ShardLosses[it]), shards)
		}
		sum := 0.0
		for s := 0; s < shards; s++ {
			sum += res.ShardLosses[it][s]
		}
		if want := sum * (1 / float64(shards)); res.IterLosses[it] != want {
			t.Fatalf("iter %d: reduced loss %v, ascending shard fold gives %v", it, res.IterLosses[it], want)
		}
	}
}

// TestDDPWarmPathAllocs pins the zero-allocation contract of the per-shard
// gradient step and the reduce/flatten kernels it feeds: once workspaces
// are warm, one full shard step — gather, TrainStepGrad, flatten, zero,
// ascending reduce, scale, load — touches the heap zero times.
func TestDDPWarmPathAllocs(t *testing.T) {
	const rows, dim = 64, 4
	rng := rand.New(rand.NewSource(21))
	data := tensor.New(rows, dim).Randn(rng, 1)
	m := NewModel(rng, ddpModelConfig(dim))
	st := NewGaussianShardStepper(m, data)
	ps := st.Params()
	g := make([]float64, nn.GradSize(ps))
	acc := make([]float64, len(g))
	st.ShardStep(rng, 0, rows, 8)
	nn.ZeroGrads(ps)

	allocs := testing.AllocsPerRun(20, func() {
		st.ShardStep(rng, 0, rows, 8)
		nn.FlattenGradsInto(g, ps)
		nn.ZeroGrads(ps)
		tensor.ReduceZero(acc)
		tensor.ReduceAccumulate(acc, g)
		tensor.ReduceScale(acc, 1.0/8)
		nn.SetGrads(ps, acc)
	})
	if allocs != 0 {
		t.Fatalf("warm DDP shard step performs %v allocs, want 0", allocs)
	}
}
