package diffusion

import (
	"math/rand"

	"silofuse/internal/tensor"
)

// Batched sampling: K concurrent synthesis requests stack into one
// denoising ping-pong over a single batch matrix. Each request is a "lane"
// with its own rng (derive with LaneRng); the backbone forward and the
// eta=0 DDIM update are both row-independent, so lane k of the batch is
// bit-identical to a sequential SampleWithRng call with the same rng and
// row count — the property the batched-sampling equivalence test pins.

// SampleBatchWithRngs draws len(rngs) lanes in one stacked denoising loop:
// lane k contributes ns[k] rows filled from rngs[k], and the returned
// matrix holds the lanes vertically in lane order. Deterministic DDIM
// (eta=0) only, which is the repository's sole sampling mode; the lanes
// would couple through a shared noise stream otherwise. The returned
// matrix aliases a persistent workspace — callers that keep the rows must
// Clone. Under f32 precision the lanes fall back to sequential
// per-lane sampling (the float32 path has its own snapshot workflow).
//
//silofuse:noalloc
func (m *Model) SampleBatchWithRngs(rngs []*rand.Rand, ns []int, steps int) *tensor.Matrix {
	if len(rngs) != len(ns) {
		panic("diffusion: SampleBatchWithRngs rngs/ns length mismatch")
	}
	if m.precision == "f32" {
		return m.sampleBatchSequential(rngs, ns, steps)
	}
	total := 0
	for _, n := range ns {
		total += n
	}
	dim := m.Net.In
	if m.EMA != nil {
		m.EMA.Apply()
		defer m.EMA.Restore()
	}
	m.sbX = tensor.Ensure(m.sbX, total, dim)
	m.sbBuf = tensor.Ensure(m.sbBuf, total, dim)
	// Initial noise, one lane at a time: lane k's row block consumes
	// rngs[k] in row-major data order, exactly as Randn would for a
	// sequential n=ns[k] call (std=1, and ×1.0 is bitwise exact).
	lo := 0
	for k, cnt := range ns {
		data := m.sbX.Data[lo*dim : (lo+cnt)*dim]
		for i := range data {
			data[i] = rngs[k].NormFloat64()
		}
		lo += cnt
	}
	if m.sbSeq == nil || m.sbSteps != steps {
		m.sbSeq = m.G.S.StridedTimesteps(steps)
		m.sbSteps = steps
	}
	seq := m.sbSeq
	m.sbTs = tensor.EnsureInts(m.sbTs, total)
	x, buf := m.sbX, m.sbBuf
	for si, t := range seq {
		tPrev := 0
		if si+1 < len(seq) {
			tPrev = seq[si+1]
		}
		for i := range m.sbTs {
			m.sbTs[i] = t
		}
		epsPred := m.Predict(x, m.sbTs)
		// eta=0: sigma is exactly 0, so the rng is never consumed and nil
		// is safe — lane independence depends on it.
		m.G.ddimStep(nil, x, epsPred, buf, t, tPrev, 0)
		x, buf = buf, x
	}
	m.sbX, m.sbBuf = x, buf
	return x
}

// sampleBatchSequential is the f32 fallback: per-lane SampleWithRng calls
// (each manages its own EMA apply/restore and float32 snapshot) stacked
// into one output matrix.
func (m *Model) sampleBatchSequential(rngs []*rand.Rand, ns []int, steps int) *tensor.Matrix {
	total := 0
	for _, n := range ns {
		total += n
	}
	out := tensor.New(total, m.Net.In)
	lo := 0
	for k, cnt := range ns {
		z := m.SampleWithRng(rngs[k], cnt, steps)
		copy(out.Data[lo*m.Net.In:(lo+cnt)*m.Net.In], z.Data)
		lo += cnt
	}
	return out
}
