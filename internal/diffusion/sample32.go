package diffusion

import (
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// Reduced-precision DDIM sampling: the ping-pong buffers, the noise
// predictions and the per-element update all run in float32, halving the
// sampling loop's memory traffic and FLOP width. The schedule-derived
// step coefficients are still computed in float64 — they involve
// catastrophic cancellation near ᾱ→1 — and narrowed once per step, so the
// per-element arithmetic is float32 against well-conditioned constants.
// Training is never routed through this file: bit-exactness of the
// training path is contracted, sampling precision is not.

// NoisePredictor32 is the float32 twin of NoisePredictor.
type NoisePredictor32 interface {
	Predict32(x *tensor.Matrix32, ts []int) *tensor.Matrix32
}

// ddimStep32 applies one DDIM update from timestep t to tPrev in float32,
// mirroring ddimStep's arithmetic with step constants narrowed once.
func (g *Gaussian) ddimStep32(rng *rand.Rand, x, epsPred, next *tensor.Matrix32, t, tPrev int, eta float64) {
	ab := g.S.AlphaBar[t]
	abPrev := g.S.AlphaBar[tPrev]
	sigma := eta * math.Sqrt((1-abPrev)/(1-ab)) * math.Sqrt(1-ab/abPrev)
	c1 := float32(math.Sqrt(abPrev))                            //silofuse:precision-ok step constants computed in float64, narrowed once per step
	c2 := float32(math.Sqrt(math.Max(1-abPrev-sigma*sigma, 0))) //silofuse:precision-ok step constants computed in float64, narrowed once per step
	sqab := float32(math.Sqrt(ab))                              //silofuse:precision-ok step constants computed in float64, narrowed once per step
	sq1ab := float32(math.Sqrt(1 - ab))                         //silofuse:precision-ok step constants computed in float64, narrowed once per step
	for i := 0; i < x.Rows; i++ {
		xr := x.Row(i)
		er := epsPred.Row(i)
		nr := next.Row(i)
		for j := range nr {
			x0 := (xr[j] - sq1ab*er[j]) / sqab
			nr[j] = c1*x0 + c2*er[j]
			if sigma > 0 {
				nr[j] += float32(sigma * rng.NormFloat64()) //silofuse:precision-ok stochastic term drawn in float64 to keep the rng stream aligned with the f64 path
			}
		}
	}
}

// Sample32 is the float32 twin of Sample: DDIM-style strided sampling from
// pure noise with two reusable ping-pong buffers. The initial noise draws
// consume the rng stream exactly as the float64 path would, so switching
// precision never desynchronises downstream random decisions.
func (g *Gaussian) Sample32(rng *rand.Rand, net NoisePredictor32, n, dim, steps int, eta float64) *tensor.Matrix32 {
	x := tensor.New32(n, dim).Randn32(rng, 1)
	buf := tensor.New32(n, dim)
	seq := g.S.StridedTimesteps(steps)
	ts := make([]int, n)
	for si, t := range seq {
		tPrev := 0
		if si+1 < len(seq) {
			tPrev = seq[si+1]
		}
		for i := range ts {
			ts[i] = t
		}
		epsPred := net.Predict32(x, ts)
		g.ddimStep32(rng, x, epsPred, buf, t, tPrev, eta)
		x, buf = buf, x
	}
	return x
}
