//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package diffusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"silofuse/internal/stats"
	"silofuse/internal/tensor"
)

func TestLinearScheduleInvariants(t *testing.T) {
	s := LinearSchedule(200, 1e-4, 0.02)
	if s.AlphaBar[0] != 1 {
		t.Fatal("AlphaBar[0] must be 1")
	}
	for tt := 1; tt <= s.T; tt++ {
		if s.Beta[tt] <= 0 || s.Beta[tt] >= 1 {
			t.Fatalf("beta[%d] = %v out of (0,1)", tt, s.Beta[tt])
		}
		if s.AlphaBar[tt] >= s.AlphaBar[tt-1] {
			t.Fatalf("AlphaBar must strictly decrease at %d", tt)
		}
	}
	if s.Beta[1] != 1e-4 || math.Abs(s.Beta[s.T]-0.02) > 1e-12 {
		t.Fatal("endpoints wrong")
	}
	// After 200 steps nearly all signal is destroyed.
	if s.AlphaBar[s.T] > 0.2 {
		t.Fatalf("terminal AlphaBar too high: %v", s.AlphaBar[s.T])
	}
}

func TestCosineScheduleInvariants(t *testing.T) {
	s := CosineSchedule(100)
	for tt := 1; tt <= s.T; tt++ {
		if s.Beta[tt] <= 0 || s.Beta[tt] > 0.999 {
			t.Fatalf("beta[%d] = %v", tt, s.Beta[tt])
		}
		if s.AlphaBar[tt] >= s.AlphaBar[tt-1] {
			t.Fatalf("AlphaBar must decrease at %d", tt)
		}
	}
	if s.AlphaBar[s.T] > 0.05 {
		t.Fatalf("cosine terminal AlphaBar = %v", s.AlphaBar[s.T])
	}
}

func TestStridedTimesteps(t *testing.T) {
	s := LinearSchedule(200, 1e-4, 0.02)
	seq := s.StridedTimesteps(25)
	if len(seq) != 25 {
		t.Fatalf("len = %d", len(seq))
	}
	if seq[0] != 200 || seq[len(seq)-1] != 1 {
		t.Fatalf("endpoints: %d..%d", seq[0], seq[len(seq)-1])
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] >= seq[i-1] {
			t.Fatal("sequence must be strictly descending")
		}
	}
	// Degenerate cases.
	if got := s.StridedTimesteps(1); len(got) != 1 || got[0] != 200 {
		t.Fatalf("steps=1: %v", got)
	}
	if got := s.StridedTimesteps(1000); len(got) != 200 {
		t.Fatalf("steps>T should clamp: %d", len(got))
	}
}

func TestQSampleEndpoints(t *testing.T) {
	s := LinearSchedule(100, 1e-4, 0.02)
	g := NewGaussian(s)
	rng := rand.New(rand.NewSource(1))
	x0 := tensor.New(4, 3).Randn(rng, 1)
	eps := tensor.New(4, 3).Randn(rng, 1)

	// At t=1 output is close to x0 (tiny beta).
	xt := g.QSample(x0, []int{1, 1, 1, 1}, eps)
	for i := range xt.Data {
		if math.Abs(xt.Data[i]-x0.Data[i]) > 0.05*(1+math.Abs(x0.Data[i]))+0.05 {
			t.Fatalf("t=1 should barely change x0: %v vs %v", xt.Data[i], x0.Data[i])
		}
	}
	// At t=T the signal coefficient is sqrt(AlphaBar[T]).
	xT := g.QSample(x0, []int{100, 100, 100, 100}, eps)
	sa := math.Sqrt(s.AlphaBar[100])
	sb := math.Sqrt(1 - s.AlphaBar[100])
	for i := range xT.Data {
		want := sa*x0.Data[i] + sb*eps.Data[i]
		if math.Abs(xT.Data[i]-want) > 1e-12 {
			t.Fatal("closed form mismatch at t=T")
		}
	}
}

func TestSampleTimestepsRange(t *testing.T) {
	g := NewGaussian(LinearSchedule(50, 1e-4, 0.02))
	rng := rand.New(rand.NewSource(2))
	ts := g.SampleTimesteps(rng, 1000)
	seen1, seenT := false, false
	for _, v := range ts {
		if v < 1 || v > 50 {
			t.Fatalf("timestep %d out of range", v)
		}
		if v == 1 {
			seen1 = true
		}
		if v == 50 {
			seenT = true
		}
	}
	if !seen1 || !seenT {
		t.Fatal("timestep sampling should cover both endpoints over 1000 draws")
	}
}

// zeroPredictor predicts zero noise, so DDIM sampling reduces to
// deterministic rescaling — lets us test the sampler mechanics in isolation.
type zeroPredictor struct{}

func (zeroPredictor) Predict(x *tensor.Matrix, _ []int) *tensor.Matrix {
	return tensor.New(x.Rows, x.Cols)
}

func TestSampleWithZeroNoisePredictor(t *testing.T) {
	g := NewGaussian(LinearSchedule(50, 1e-4, 0.02))
	rng := rand.New(rand.NewSource(3))
	out := g.Sample(rng, zeroPredictor{}, 8, 4, 10, 0)
	if out.Rows != 8 || out.Cols != 4 {
		t.Fatalf("shape %v", out)
	}
	// With eps_pred = 0, x0_pred = x_t / sqrt(ab) and each step rescales;
	// the final output is finite and scaled-up noise.
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("sampler produced non-finite values")
		}
	}
}

func TestMultinomialQSampleEndpoints(t *testing.T) {
	s := LinearSchedule(200, 1e-4, 0.02)
	m := NewMultinomial(s, 5)
	rng := rand.New(rand.NewSource(4))
	// At t=1, ᾱ≈1: category almost always kept.
	kept := 0
	for i := 0; i < 1000; i++ {
		if m.QSampleCode(rng, 3, 1) == 3 {
			kept++
		}
	}
	if kept < 990 {
		t.Fatalf("t=1 should keep the code almost surely: %d/1000", kept)
	}
	// At t=T, mostly resampled uniformly: expect 1/K + ᾱ_T fraction.
	kept = 0
	for i := 0; i < 5000; i++ {
		if m.QSampleCode(rng, 3, 200) == 3 {
			kept++
		}
	}
	frac := float64(kept) / 5000
	want := s.AlphaBar[200] + (1-s.AlphaBar[200])/5
	if math.Abs(frac-want) > 0.03 {
		t.Fatalf("t=T keep fraction %v, want ≈ %v", frac, want)
	}
}

func TestMultinomialPosteriorIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		s := LinearSchedule(50, 1e-4, 0.02)
		m := NewMultinomial(s, k)
		x0 := make([]float64, k)
		sum := 0.0
		for i := range x0 {
			x0[i] = rng.Float64()
			sum += x0[i]
		}
		for i := range x0 {
			x0[i] /= sum
		}
		tt := 2 + rng.Intn(48)
		post := m.PosteriorProbs(rng.Intn(k), tt, x0)
		total := 0.0
		for _, p := range post {
			if p < 0 {
				return false
			}
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMultinomialPosteriorBehaviour(t *testing.T) {
	s := LinearSchedule(100, 1e-4, 0.02)
	m := NewMultinomial(s, 4)
	// At small t corruption is unlikely, so the posterior must follow x_t
	// regardless of the x0 prediction.
	x0 := []float64{0.01, 0.01, 0.97, 0.01}
	post := m.PosteriorProbs(0, 2, x0)
	if post[0] < 0.9 {
		t.Fatalf("posterior should follow x_t at small t: %v", post)
	}
	// When x_t agrees with a confident x0 prediction, the posterior is even
	// more concentrated on that category.
	agree := m.PosteriorProbs(2, 50, x0)
	if agree[2] < 0.9 {
		t.Fatalf("agreement case should concentrate on the category: %v", agree)
	}
	// With a uniform x0 prediction, the posterior still leans toward x_t.
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	lean := m.PosteriorProbs(1, 50, uniform)
	for j, p := range lean {
		if j != 1 && p >= lean[1] {
			t.Fatalf("posterior should lean toward x_t: %v", lean)
		}
	}
}

func TestSampleCategorical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 3)
	probs := []float64{0.2, 0.5, 0.3}
	for i := 0; i < 10000; i++ {
		counts[SampleCategorical(rng, probs)]++
	}
	for j, p := range probs {
		frac := float64(counts[j]) / 10000
		if math.Abs(frac-p) > 0.02 {
			t.Fatalf("category %d: %v, want %v", j, frac, p)
		}
	}
}

// TestModelLearnsBimodalDistribution is the end-to-end check: a DDPM
// trained on a two-cluster 2-D distribution must generate samples whose
// marginals match (KS) and that recover both modes.
func TestModelLearnsBimodalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 512
	data := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		c := 1.5
		if i%2 == 0 {
			c = -1.5
		}
		data.Set(i, 0, c+0.2*rng.NormFloat64())
		data.Set(i, 1, -c+0.2*rng.NormFloat64())
	}
	cfg := ModelConfig{Dim: 2, Hidden: 64, Depth: 3, TimeDim: 16, T: 100, LR: 2e-3, Dropout: 0}
	m := NewModel(rand.New(rand.NewSource(7)), cfg)
	loss := m.Train(data, 1500, 128)
	if loss > 0.6 {
		t.Fatalf("training loss did not drop: %v", loss)
	}
	out := m.Sample(512, 25)
	ks0 := stats.KSStatistic(data.Col(0), out.Col(0))
	ks1 := stats.KSStatistic(data.Col(1), out.Col(1))
	if ks0 > 0.25 || ks1 > 0.25 {
		t.Fatalf("marginals off: KS %v %v", ks0, ks1)
	}
	// Both modes present.
	neg, pos := 0, 0
	for i := 0; i < out.Rows; i++ {
		if out.At(i, 0) > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos < out.Rows/5 || neg < out.Rows/5 {
		t.Fatalf("mode collapse: %d positive, %d negative", pos, neg)
	}
	// Anti-correlation preserved.
	if c := stats.Pearson(out.Col(0), out.Col(1)); c > -0.5 {
		t.Fatalf("correlation not preserved: %v", c)
	}
}

func TestDenoiseFromIntermediateStep(t *testing.T) {
	g := NewGaussian(LinearSchedule(50, 1e-4, 0.02))
	rng := rand.New(rand.NewSource(8))
	xt := tensor.New(4, 3).Randn(rng, 1)
	out := g.Denoise(rng, zeroPredictor{}, xt, 25, 5, 0)
	if out.Rows != 4 || out.Cols != 3 {
		t.Fatalf("shape %v", out)
	}
	// tStart=0 returns input unchanged.
	same := g.Denoise(rng, zeroPredictor{}, xt, 0, 5, 0)
	for i := range xt.Data {
		if same.Data[i] != xt.Data[i] {
			t.Fatal("tStart=0 must be identity")
		}
	}
}

// TestModelX0Parameterisation trains an x0-predicting model on the same
// bimodal target and checks samples recover both modes — verifying the
// x̂0 → ε̂ conversion in Predict.
func TestModelX0Parameterisation(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 512
	data := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		c := 1.5
		if i%2 == 0 {
			c = -1.5
		}
		data.Set(i, 0, c+0.2*rng.NormFloat64())
		data.Set(i, 1, -c+0.2*rng.NormFloat64())
	}
	cfg := ModelConfig{Dim: 2, Hidden: 64, Depth: 3, TimeDim: 16, T: 100, LR: 2e-3, PredictX0: true}
	m := NewModel(rand.New(rand.NewSource(17)), cfg)
	m.Train(data, 1500, 128)
	out := m.Sample(512, 25)
	pos, neg := 0, 0
	for i := 0; i < out.Rows; i++ {
		if out.At(i, 0) > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos < out.Rows/5 || neg < out.Rows/5 {
		t.Fatalf("x0-parameterised model collapsed: %d/%d", pos, neg)
	}
	if ks := stats.KSStatistic(data.Col(0), out.Col(0)); ks > 0.3 {
		t.Fatalf("x0 marginal KS = %v", ks)
	}
}

// TestEMASamplingDiffersFromLive verifies EMA weights are actually applied
// during sampling and restored afterwards.
func TestEMASamplingAppliesAndRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	cfg := ModelConfig{Dim: 2, Hidden: 16, Depth: 1, TimeDim: 8, T: 20, LR: 5e-2, EMADecay: 0.99}
	m := NewModel(rng, cfg)
	data := tensor.New(64, 2).Randn(rng, 1)
	m.Train(data, 50, 32)
	// Live weights after aggressive training differ from the EMA shadow.
	live := append([]float64(nil), m.Net.Params()[0].Value.Data...)
	_ = m.Sample(4, 5)
	after := m.Net.Params()[0].Value.Data
	for i := range live {
		if live[i] != after[i] {
			t.Fatal("sampling must restore live weights")
		}
	}
}
