package diffusion

import (
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// NoisePredictor is the denoising network interface: given noisy inputs and
// per-row timesteps, it predicts the base noise ε (the paper's ε_θ(X^t, t)).
type NoisePredictor interface {
	Predict(x *tensor.Matrix, ts []int) *tensor.Matrix
}

// Gaussian wraps the continuous forward/backward diffusion processes for a
// given schedule (the paper's function F and the backbone's sampling loop).
type Gaussian struct {
	S *Schedule
}

// NewGaussian creates Gaussian process mechanics over schedule s.
func NewGaussian(s *Schedule) *Gaussian { return &Gaussian{S: s} }

// QSample computes the closed-form forward process (paper eq. 1):
// x_t = sqrt(ᾱ_t)·x0 + sqrt(1-ᾱ_t)·ε, with per-row timesteps ts and noise
// eps of the same shape as x0.
func (g *Gaussian) QSample(x0 *tensor.Matrix, ts []int, eps *tensor.Matrix) *tensor.Matrix {
	return g.QSampleInto(tensor.New(x0.Rows, x0.Cols), x0, ts, eps)
}

// QSampleInto is the destination-passing form of QSample: the noised batch
// is written into dst (same shape as x0) and returned.
//
//silofuse:noalloc
func (g *Gaussian) QSampleInto(dst, x0 *tensor.Matrix, ts []int, eps *tensor.Matrix) *tensor.Matrix {
	for i := 0; i < x0.Rows; i++ {
		ab := g.S.AlphaBar[ts[i]]
		sa := math.Sqrt(ab)
		sb := math.Sqrt(1 - ab)
		src := x0.Row(i)
		ns := eps.Row(i)
		dr := dst.Row(i)
		for j := range dr {
			dr[j] = sa*src[j] + sb*ns[j]
		}
	}
	return dst
}

// SampleTimesteps draws one uniform timestep in [1, T] per row.
func (g *Gaussian) SampleTimesteps(rng *rand.Rand, n int) []int {
	ts := make([]int, n)
	g.SampleTimestepsInto(rng, ts)
	return ts
}

// SampleTimestepsInto fills ts with uniform timesteps in [1, T].
//
//silofuse:noalloc
func (g *Gaussian) SampleTimestepsInto(rng *rand.Rand, ts []int) {
	for i := range ts {
		ts[i] = 1 + rng.Intn(g.S.T)
	}
}

// ddimStep applies one DDIM update from timestep t to tPrev, writing the
// denoised batch into next: x0 is recovered from the noise prediction, then
// re-noised toward tPrev with optional eta-scaled stochasticity. This is
// the single inner update shared by Sample and Denoise.
func (g *Gaussian) ddimStep(rng *rand.Rand, x, epsPred, next *tensor.Matrix, t, tPrev int, eta float64) {
	ab := g.S.AlphaBar[t]
	abPrev := g.S.AlphaBar[tPrev]
	sigma := eta * math.Sqrt((1-abPrev)/(1-ab)) * math.Sqrt(1-ab/abPrev)
	c1 := math.Sqrt(abPrev)
	c2 := math.Sqrt(math.Max(1-abPrev-sigma*sigma, 0))
	sqab := math.Sqrt(ab)
	sq1ab := math.Sqrt(1 - ab)
	for i := 0; i < x.Rows; i++ {
		xr := x.Row(i)
		er := epsPred.Row(i)
		nr := next.Row(i)
		for j := range nr {
			x0 := (xr[j] - sq1ab*er[j]) / sqab
			nr[j] = c1*x0 + c2*er[j]
			if sigma > 0 {
				nr[j] += sigma * rng.NormFloat64()
			}
		}
	}
}

// Sample runs DDIM-style strided ancestral sampling: starting from pure
// Gaussian noise it denoises over steps strided timesteps using net's noise
// predictions. eta=0 gives deterministic DDIM; eta=1 recovers DDPM-like
// stochastic sampling. Two ping-pong buffers are reused across all steps,
// so the per-step loop performs no allocation.
func (g *Gaussian) Sample(rng *rand.Rand, net NoisePredictor, n, dim, steps int, eta float64) *tensor.Matrix {
	x := tensor.New(n, dim).Randn(rng, 1)
	buf := tensor.New(n, dim)
	seq := g.S.StridedTimesteps(steps)
	ts := make([]int, n)
	for si, t := range seq {
		tPrev := 0
		if si+1 < len(seq) {
			tPrev = seq[si+1]
		}
		for i := range ts {
			ts[i] = t
		}
		epsPred := net.Predict(x, ts)
		g.ddimStep(rng, x, epsPred, buf, t, tPrev, eta)
		x, buf = buf, x
	}
	return x
}

// Denoise runs the reverse process starting from the provided noisy matrix
// at timestep tStart instead of pure noise — used by the paper's privacy
// sensitivity experiment (Table VII) and the end-to-end baselines, where
// training reconstructs partially noised latents.
func (g *Gaussian) Denoise(rng *rand.Rand, net NoisePredictor, xt *tensor.Matrix, tStart, steps int, eta float64) *tensor.Matrix {
	x := xt.Clone()
	if tStart < 1 {
		return x
	}
	// Build a strided descending sequence from tStart.
	if steps > tStart {
		steps = tStart
	}
	seq := make([]int, steps)
	for i := 0; i < steps; i++ {
		seq[i] = 1 + (tStart-1)*(steps-1-i)/maxInt(steps-1, 1)
	}
	if steps == 1 {
		seq[0] = tStart
	}
	n := x.Rows
	buf := tensor.New(n, x.Cols)
	ts := make([]int, n)
	for si, t := range seq {
		tPrev := 0
		if si+1 < len(seq) {
			tPrev = seq[si+1]
		}
		for i := range ts {
			ts[i] = t
		}
		epsPred := net.Predict(x, ts)
		g.ddimStep(rng, x, epsPred, buf, t, tPrev, eta)
		x, buf = buf, x
	}
	return x
}
