//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package diffusion

import (
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// perfModel builds a small model at the fast-scale backbone shape with
// dropout off — dropout draws per-element randomness but does not allocate,
// so leaving it out keeps the test focused without changing what is pinned.
func perfModel(seed int64) (*Model, *tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	cfg := ModelConfig{Dim: 8, Hidden: 64, Depth: 3, TimeDim: 16, T: 100, LR: 1e-3}
	m := NewModel(rng, cfg)
	x0 := tensor.New(32, cfg.Dim).Randn(rng, 1)
	return m, x0
}

// TestTrainStepSteadyStateAllocs pins the headline contract of the
// zero-allocation hot path: once the model's workspaces are warm, a full
// optimisation step (noise, forward, MSE, backward, Adam) touches the heap
// zero times.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	m, x0 := perfModel(48)
	for i := 0; i < 3; i++ {
		m.TrainStep(x0)
	}
	if allocs := testing.AllocsPerRun(20, func() { m.TrainStep(x0) }); allocs != 0 {
		t.Fatalf("warm TrainStep performs %v allocs, want 0", allocs)
	}
}

// TestSamplePerStepAllocs bounds sampling allocations: Sample allocates a
// fixed handful of buffers per call (output, ping-pong scratch, timestep
// sequence) but nothing per denoising step, so allocations per call must not
// grow with the step count. Amortised over the steps of one call, the
// per-step cost stays below one allocation.
func TestSamplePerStepAllocs(t *testing.T) {
	m, _ := perfModel(49)
	const n, steps = 32, 50
	m.SampleWithRng(rand.New(rand.NewSource(1)), n, steps)

	rng := rand.New(rand.NewSource(2))
	perCall := testing.AllocsPerRun(5, func() { m.SampleWithRng(rng, n, steps) })
	if perStep := perCall / steps; perStep >= 1 {
		t.Fatalf("sampling allocates %v per call (%v per step over %d steps), want < 1 per step",
			perCall, perStep, steps)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	m, x0 := perfModel(50)
	m.TrainStep(x0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainStep(x0)
	}
}

// BenchmarkSampleStep measures one DDIM denoising step by timing a full
// Sample call and dividing the work across its steps via b.N scaling.
func BenchmarkSampleStep(b *testing.B) {
	m, _ := perfModel(51)
	const n, steps = 32, 50
	rng := rand.New(rand.NewSource(3))
	m.SampleWithRng(rng, n, steps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += steps {
		m.SampleWithRng(rng, n, steps)
	}
}
