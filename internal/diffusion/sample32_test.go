package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// The f32 sampling path promises: same structure, same rng stream, rounding
// -scale divergence from the f64 path. Two models with identical weights
// and seeds — one per precision — must therefore produce samples that agree
// within an accumulated-rounding tolerance, for both parameterisations.

func trainedPair(t *testing.T, predictX0 bool) (*Model, *Model) {
	t.Helper()
	cfg := ModelConfig{
		Dim: 4, Hidden: 32, Depth: 2, TimeDim: 8, T: 50,
		LR: 1e-3, EMADecay: 0.99, PredictX0: predictX0,
	}
	cfg32 := cfg
	cfg32.Precision = "f32"
	m64 := NewModel(rand.New(rand.NewSource(40)), cfg)
	m32 := NewModel(rand.New(rand.NewSource(40)), cfg32)

	// Identical training in float64 for both (Precision only affects
	// sampling), so the weights stay bit-identical.
	data := tensor.New(256, 4).Randn(rand.New(rand.NewSource(41)), 1)
	l64 := m64.Train(data, 60, 64)
	l32 := m32.Train(data, 60, 64)
	if math.Float64bits(l64) != math.Float64bits(l32) { //silofuse:bitwise-ok training is contracted bit-identical across precision settings
		t.Fatalf("training diverged across precision settings: %v vs %v", l64, l32)
	}
	return m64, m32
}

func sampleDiff(t *testing.T, m64, m32 *Model, n, steps int) (maxDiff, scale float64) {
	t.Helper()
	s64 := m64.SampleWithRng(rand.New(rand.NewSource(42)), n, steps)
	s32 := m32.SampleWithRng(rand.New(rand.NewSource(42)), n, steps)
	if s64.Rows != s32.Rows || s64.Cols != s32.Cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", s64.Rows, s64.Cols, s32.Rows, s32.Cols)
	}
	for i, v := range s64.Data {
		if d := math.Abs(s32.Data[i] - v); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	return maxDiff, scale
}

func TestSample32MatchesF64WithinTolerance(t *testing.T) {
	m64, m32 := trainedPair(t, false)
	maxDiff, scale := sampleDiff(t, m64, m32, 64, 10)
	if maxDiff == 0 { //silofuse:bitwise-ok a zero max diff proves the f32 path was skipped, not a tolerance check
		t.Fatal("f32 sampling is bit-identical to f64 — the f32 path is not being exercised")
	}
	// ~10 DDIM steps of float32 forward passes and updates: divergence
	// stays orders of magnitude below the data scale.
	if maxDiff > 1e-2*(1+scale) {
		t.Fatalf("f32 sample diverged: max diff %g at scale %g", maxDiff, scale)
	}
}

func TestSample32MatchesF64PredictX0(t *testing.T) {
	m64, m32 := trainedPair(t, true)
	maxDiff, scale := sampleDiff(t, m64, m32, 64, 10)
	if maxDiff > 1e-2*(1+scale) {
		t.Fatalf("f32 x0-parameterised sample diverged: max diff %g at scale %g", maxDiff, scale)
	}
}

func TestSample32DefaultPrecisionUnchanged(t *testing.T) {
	// "" and "f64" are the same path: bit-identical samples.
	cfg := ModelConfig{Dim: 3, Hidden: 16, Depth: 1, TimeDim: 4, T: 20, LR: 1e-3}
	cfgExplicit := cfg
	cfgExplicit.Precision = "f64"
	a := NewModel(rand.New(rand.NewSource(43)), cfg)
	b := NewModel(rand.New(rand.NewSource(43)), cfgExplicit)
	sa := a.SampleWithRng(rand.New(rand.NewSource(44)), 16, 5)
	sb := b.SampleWithRng(rand.New(rand.NewSource(44)), 16, 5)
	for i := range sa.Data {
		if math.Float64bits(sa.Data[i]) != math.Float64bits(sb.Data[i]) {
			t.Fatalf("explicit f64 diverged from default at %d", i)
		}
	}
}

func TestSample32StochasticEtaStreamAligned(t *testing.T) {
	// With eta > 0 the stochastic term draws one NormFloat64 per element,
	// in the same order as the f64 path; the outputs must stay close.
	cfg := ModelConfig{Dim: 4, Hidden: 24, Depth: 2, TimeDim: 8, T: 50, LR: 1e-3}
	m := NewModel(rand.New(rand.NewSource(45)), cfg)
	net32, err := m.Net.Snapshot32()
	if err != nil {
		t.Fatal(err)
	}
	p := &predictor32{g: m.G, net: net32}
	s64 := m.G.Sample(rand.New(rand.NewSource(46)), m, 32, 4, 8, 1.0)
	s32 := tensor.To64(m.G.Sample32(rand.New(rand.NewSource(46)), p, 32, 4, 8, 1.0))
	var maxDiff, scale float64
	for i, v := range s64.Data {
		if d := math.Abs(s32.Data[i] - v); d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if maxDiff > 1e-2*(1+scale) {
		t.Fatalf("eta=1 f32 sample diverged: max diff %g at scale %g", maxDiff, scale)
	}
}
