package diffusion

import (
	"fmt"
	"math/rand"
	"sync"

	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// Data-parallel DDPM training with a bit-identical all-reduce.
//
// The latent table is split into a fixed number of logical shards S that
// does NOT depend on the worker count: worker w owns shards {s : s%N == w}
// and processes them in ascending shard id. Every source of randomness in a
// shard's gradient step — minibatch indices, timesteps, noise, dropout
// masks — comes from a per-shard stream derived with the splitmix64
// finaliser from (seed, shard, iter), so the shard gradient is a pure
// function of (params, data, shard, iter) no matter which worker computes
// it. The root folds the S shard gradients in ascending shard order and
// applies the single 1/S scale once; float addition is non-associative, so
// the fixed count and fixed order are exactly what make an N-worker run
// bit-identical to the single-worker baseline.

// DefaultShards is the fixed logical shard count. Worker counts above it
// leave the excess workers idle; the equivalence guarantee needs S, not N,
// to be the constant.
const DefaultShards = 8

// ddpShardTag and ddpLaneTag separate the shard-rng and sampling-lane-rng
// derivation streams so a shard id can never collide with a lane id.
const (
	ddpShardTag uint64 = 0x5348415244444450 // "SHARDDDP"
	ddpLaneTag  uint64 = 0x4c414e4553414d50 // "LANESAMP"
)

// mix64 is the splitmix64 finaliser — the same full-avalanche mix the chaos
// bus uses for fault decisions (internal/silo/chaos.go); duplicated here
// because diffusion cannot import silo.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardRng derives the rng for one (shard, iter) gradient step. The chain
// of mixes is order-sensitive, so (shard=1, iter=2) and (shard=2, iter=1)
// land on unrelated streams.
func ShardRng(seed int64, shard, iter int) *rand.Rand {
	h := mix64(uint64(seed) ^ ddpShardTag)
	h = mix64(h ^ uint64(shard))
	h = mix64(h ^ uint64(iter))
	return rand.New(rand.NewSource(int64(h)))
}

// LaneRng derives the rng for one batched-sampling lane. Distinct tag from
// ShardRng: lane k of a synthesis batch never shares a stream with shard k
// of training.
func LaneRng(seed int64, lane int) *rand.Rand {
	h := mix64(uint64(seed) ^ ddpLaneTag)
	h = mix64(h ^ uint64(lane))
	return rand.New(rand.NewSource(int64(h)))
}

// ShardRange returns the contiguous row range [lo, hi) of shard s when rows
// rows are split across shards shards: the first rows%shards shards take
// one extra row.
func ShardRange(rows, shards, s int) (lo, hi int) {
	base, rem := rows/shards, rows%shards
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// ShardGrad is one shard's unreduced contribution for one iteration.
type ShardGrad struct {
	Worker int
	Shard  int
	Iter   int
	Loss   float64
	Grad   []float64
}

// ReducedUpdate is the root's averaged gradient broadcast back to a worker.
type ReducedUpdate struct {
	Iter int
	Loss float64
	Grad []float64
}

// GradTransport carries gradient traffic between the shard workers and the
// reduce root. The in-process ChanTransport backs the equivalence and race
// tests; silo.BusGradTransport runs the same protocol over the message bus
// so gradient traffic shares the resilience and accounting machinery of
// every other envelope kind.
type GradTransport interface {
	// SendGrad ships one shard gradient from a worker to the root.
	SendGrad(g *ShardGrad) error
	// RecvGrad receives the next shard gradient at the root, in arrival
	// order (the root indexes by Shard, so ordering does not matter).
	RecvGrad() (*ShardGrad, error)
	// SendReduced ships the averaged update from the root to one worker.
	SendReduced(worker int, u *ReducedUpdate) error
	// RecvReduced receives the averaged update at worker w.
	RecvReduced(worker int) (*ReducedUpdate, error)
}

// ChanTransport is the in-process GradTransport: one buffered gradient
// channel into the root and one capacity-1 reduced channel per worker. The
// phase-barriered driver sends at most S gradients and one reduced update
// per worker before the matching receives, so no send ever blocks.
type ChanTransport struct {
	grads   chan *ShardGrad
	reduced []chan *ReducedUpdate
}

// NewChanTransport sizes the channels for workers workers and shards
// logical shards.
func NewChanTransport(workers, shards int) *ChanTransport {
	t := &ChanTransport{
		grads:   make(chan *ShardGrad, shards),
		reduced: make([]chan *ReducedUpdate, workers),
	}
	for w := range t.reduced {
		t.reduced[w] = make(chan *ReducedUpdate, 1)
	}
	return t
}

func (t *ChanTransport) SendGrad(g *ShardGrad) error { t.grads <- g; return nil }

func (t *ChanTransport) RecvGrad() (*ShardGrad, error) { return <-t.grads, nil }

func (t *ChanTransport) SendReduced(worker int, u *ReducedUpdate) error {
	t.reduced[worker] <- u
	return nil
}

func (t *ChanTransport) RecvReduced(worker int) (*ReducedUpdate, error) {
	return <-t.reduced[worker], nil
}

// ShardStepper is one worker's model replica as the DDP driver sees it:
// compute a shard gradient, expose the parameters for flatten/load, apply
// the reduced update. Every worker's replica must be built identically
// (same constructor seed) so parameters stay bit-equal across workers.
type ShardStepper interface {
	// ShardStep accumulates gradients for one micro-batch of micro rows
	// drawn (with replacement) from the shard's row range [lo, hi) using
	// rng for every random draw, and returns the micro-batch loss.
	// Gradients must start from zero: the driver flattens and re-zeroes
	// them between shards.
	ShardStep(rng *rand.Rand, lo, hi, micro int) float64
	// Params returns the replica's trainable parameters.
	Params() []*nn.Param
	// ApplyUpdate steps the replica's optimiser on the currently loaded
	// gradients (and advances EMA where configured).
	ApplyUpdate()
}

// GaussianShardStepper adapts a Gaussian Model replica and its data table
// to the ShardStepper interface.
type GaussianShardStepper struct {
	M    *Model
	Data *tensor.Matrix

	idx   []int
	batch *tensor.Matrix
}

// NewGaussianShardStepper wraps m and data for DDP training.
func NewGaussianShardStepper(m *Model, data *tensor.Matrix) *GaussianShardStepper {
	return &GaussianShardStepper{M: m, Data: data}
}

// ShardStep implements ShardStepper: gather micro rows from [lo, hi) and
// run the gradient half of a train step.
func (g *GaussianShardStepper) ShardStep(rng *rand.Rand, lo, hi, micro int) float64 {
	g.idx = tensor.EnsureInts(g.idx, micro)
	for i := range g.idx {
		g.idx[i] = lo + rng.Intn(hi-lo)
	}
	g.batch = tensor.Ensure(g.batch, micro, g.Data.Cols)
	return g.M.TrainStepGrad(rng, g.Data.GatherRowsInto(g.batch, g.idx))
}

// Params implements ShardStepper.
func (g *GaussianShardStepper) Params() []*nn.Param { return g.M.Net.Params() }

// ApplyUpdate implements ShardStepper.
func (g *GaussianShardStepper) ApplyUpdate() { g.M.ApplyUpdate() }

// DDPConfig parameterises one data-parallel training run.
type DDPConfig struct {
	Workers int   // worker (replica) count N
	Shards  int   // logical shard count S; 0 means DefaultShards
	Iters   int   // training iterations
	Batch   int   // global batch size; each shard draws max(Batch/S, 1) rows
	Rows    int   // row count of the sharded table
	Seed    int64 // shard-rng derivation seed
	// Rec, when non-nil, receives per-worker step telemetry (stages
	// obs.WorkerStage(w)) and the root's reduced-loss stream (stage
	// "diffusion"). nil means telemetry off.
	Rec *obs.Recorder
}

// shards returns the effective logical shard count: the configured (or
// default) count, capped by the row count so no shard is empty. The cap
// depends only on Rows, never on Workers.
func (c DDPConfig) shards() int {
	s := c.Shards
	if s <= 0 {
		s = DefaultShards
	}
	if c.Rows > 0 && s > c.Rows {
		s = c.Rows
	}
	return s
}

// DDPResult reports a data-parallel training run.
type DDPResult struct {
	// TailLoss is the mean reduced loss over the final 10% of iterations,
	// mirroring Model.Train's return value.
	TailLoss float64
	// IterLosses[it] is the reduced (shard-averaged) loss of iteration it,
	// folded in ascending shard order.
	IterLosses []float64
	// ShardLosses[it][s] is shard s's unreduced micro-batch loss at
	// iteration it, as received by the root.
	ShardLosses [][]float64
}

// TrainDDP trains the worker replicas data-parallel for cfg.Iters
// iterations. Each iteration runs four barrier-separated phases: (A) the
// workers compute their owned shards' gradients in ascending shard order
// and send them; (B) the root receives all S gradients and folds them in
// ascending shard order; (C) the root broadcasts the averaged update in
// ascending worker order; (D) the workers load the update and step their
// optimisers. Every blocking receive is preceded by the completion of all
// matching sends, so the schedule cannot deadlock even when the transport
// retries internally.
func TrainDDP(steppers []ShardStepper, tr GradTransport, cfg DDPConfig) (*DDPResult, error) {
	n := len(steppers)
	if n == 0 {
		return nil, fmt.Errorf("diffusion: TrainDDP needs at least one worker")
	}
	if cfg.Workers != 0 && cfg.Workers != n {
		return nil, fmt.Errorf("diffusion: TrainDDP worker mismatch: cfg %d vs %d steppers", cfg.Workers, n)
	}
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("diffusion: TrainDDP needs Rows > 0")
	}
	s := cfg.shards()
	micro := cfg.Batch / s
	if micro < 1 {
		micro = 1
	}
	gradSize := nn.GradSize(steppers[0].Params())

	res := &DDPResult{
		IterLosses:  make([]float64, cfg.Iters),
		ShardLosses: make([][]float64, cfg.Iters),
	}
	acc := make([]float64, gradSize)
	pending := make([]*ShardGrad, s)
	errs := make([]error, n)
	tail := cfg.Iters - cfg.Iters/10
	var tailLoss float64
	var tailCount int

	for it := 0; it < cfg.Iters; it++ {
		iterStart := cfg.Rec.Now()
		// Phase A: workers compute and send their shards' gradients.
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = runWorkerGrads(steppers[w], tr, cfg, w, n, s, micro, it, gradSize)
			}(w)
		}
		wg.Wait()
		if err := firstErr(errs); err != nil {
			return nil, err
		}

		// Phase B: root gathers all S shard gradients and reduces them in
		// ascending shard order.
		for i := range pending {
			pending[i] = nil
		}
		for k := 0; k < s; k++ {
			g, err := tr.RecvGrad()
			if err != nil {
				return nil, fmt.Errorf("ddp recv grad (iter %d): %w", it, err)
			}
			if g.Iter != it {
				return nil, fmt.Errorf("ddp grad iter skew: got %d want %d", g.Iter, it)
			}
			if g.Shard < 0 || g.Shard >= s || pending[g.Shard] != nil {
				return nil, fmt.Errorf("ddp grad shard %d invalid or duplicated (iter %d)", g.Shard, it)
			}
			if len(g.Grad) != gradSize {
				return nil, fmt.Errorf("ddp grad size %d want %d (shard %d iter %d)", len(g.Grad), gradSize, g.Shard, it)
			}
			pending[g.Shard] = g
		}
		loss := reduceShards(acc, pending)
		res.IterLosses[it] = loss
		res.ShardLosses[it] = shardLossRow(pending)
		if it >= tail {
			tailLoss += loss
			tailCount++
		}

		// Phase C: root broadcasts the averaged update, ascending worker id.
		upd := &ReducedUpdate{Iter: it, Loss: loss, Grad: acc}
		for w := 0; w < n; w++ {
			if err := tr.SendReduced(w, upd); err != nil {
				return nil, fmt.Errorf("ddp send reduced to worker %d (iter %d): %w", w, it, err)
			}
		}

		// Phase D: workers load the reduced gradient and step.
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = applyWorkerUpdate(steppers[w], tr, w, it, gradSize)
			}(w)
		}
		wg.Wait()
		if err := firstErr(errs); err != nil {
			return nil, err
		}
		if cfg.Rec != nil {
			cfg.Rec.TrainStep("diffusion", loss, micro*s, cfg.Rec.Since(iterStart))
		}
	}
	if tailCount > 0 {
		res.TailLoss = tailLoss / float64(tailCount)
	}
	return res, nil
}

// runWorkerGrads is phase A for one worker: ascending owned shards, derive
// the shard rng, accumulate and flatten the gradient, send it.
func runWorkerGrads(st ShardStepper, tr GradTransport, cfg DDPConfig, w, n, s, micro, it, gradSize int) error {
	for shard := w; shard < s; shard += n {
		rng := ShardRng(cfg.Seed, shard, it)
		lo, hi := ShardRange(cfg.Rows, s, shard)
		t0 := cfg.Rec.Now()
		loss := st.ShardStep(rng, lo, hi, micro)
		if cfg.Rec != nil {
			cfg.Rec.TrainStep(obs.WorkerStage(w), loss, micro, cfg.Rec.Since(t0))
		}
		g := make([]float64, gradSize)
		nn.FlattenGradsInto(g, st.Params())
		nn.ZeroGrads(st.Params())
		if err := tr.SendGrad(&ShardGrad{Worker: w, Shard: shard, Iter: it, Loss: loss, Grad: g}); err != nil {
			return fmt.Errorf("ddp send grad (worker %d shard %d iter %d): %w", w, shard, it, err)
		}
	}
	return nil
}

// applyWorkerUpdate is phase D for one worker: receive the reduced
// gradient, load it, step the optimiser.
func applyWorkerUpdate(st ShardStepper, tr GradTransport, w, it, gradSize int) error {
	u, err := tr.RecvReduced(w)
	if err != nil {
		return fmt.Errorf("ddp recv reduced (worker %d iter %d): %w", w, it, err)
	}
	if u.Iter != it {
		return fmt.Errorf("ddp reduced iter skew at worker %d: got %d want %d", w, u.Iter, it)
	}
	if len(u.Grad) != gradSize {
		return fmt.Errorf("ddp reduced size %d want %d (worker %d iter %d)", len(u.Grad), gradSize, w, it)
	}
	nn.SetGrads(st.Params(), u.Grad)
	st.ApplyUpdate()
	return nil
}

// reduceShards folds the per-shard gradients and losses into acc in
// ascending shard order, applies the single 1/S scale, and returns the
// averaged loss. This is the all-reduce's only accumulation site; the
// ascending fold with one trailing scale is what the fixedreduce vet rule
// pins.
//
//silofuse:fixedreduce
func reduceShards(acc []float64, pending []*ShardGrad) float64 {
	tensor.ReduceZero(acc)
	loss := 0.0
	for s := 0; s < len(pending); s++ {
		tensor.ReduceAccumulate(acc, pending[s].Grad)
		loss += pending[s].Loss
	}
	inv := 1 / float64(len(pending))
	tensor.ReduceScale(acc, inv)
	return loss * inv
}

// shardLossRow copies the received per-shard losses in shard order.
func shardLossRow(pending []*ShardGrad) []float64 {
	row := make([]float64, len(pending))
	for s, g := range pending {
		row[s] = g.Loss
	}
	return row
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
