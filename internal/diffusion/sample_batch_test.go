//silofuse:bitwise-ok batched-vs-sequential sampling equality is a bitwise contract
package diffusion

import (
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// batchSampleModel builds a briefly trained small model so sampling runs
// over non-trivial weights (EMA on, exercising the batched path's
// apply/restore bracket).
func batchSampleModel(t *testing.T, seed int64) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := ModelConfig{Dim: 4, Hidden: 32, Depth: 2, TimeDim: 8, T: 50, LR: 1e-3, EMADecay: 0.99}
	m := NewModel(rng, cfg)
	x0 := tensor.New(48, cfg.Dim).Randn(rng, 1)
	for i := 0; i < 30; i++ {
		m.TrainStep(x0)
	}
	return m
}

// TestSampleBatchMatchesSequential pins the batched-sampling property: K
// stacked lanes drawn in one denoising ping-pong are row-for-row
// bit-identical to K sequential SampleWithRng calls with the same per-lane
// rngs — the backbone forward and the eta=0 DDIM update are
// row-independent, so stacking is a pure scheduling choice.
func TestSampleBatchMatchesSequential(t *testing.T) {
	m := batchSampleModel(t, 31)
	const seed, steps = 77, 20
	ns := []int{3, 5, 2}

	rngs := make([]*rand.Rand, len(ns))
	for k := range rngs {
		rngs[k] = LaneRng(seed, k)
	}
	batched := m.SampleBatchWithRngs(rngs, ns, steps).Clone()

	lo := 0
	for k, cnt := range ns {
		seq := m.SampleWithRng(LaneRng(seed, k), cnt, steps)
		for i := 0; i < cnt; i++ {
			for j := 0; j < seq.Cols; j++ {
				b, s := batched.At(lo+i, j), seq.At(i, j)
				if math.Float64bits(b) != math.Float64bits(s) {
					t.Fatalf("lane %d row %d col %d: batched %v, sequential %v", k, i, j, b, s)
				}
			}
		}
		lo += cnt
	}
	if lo != batched.Rows {
		t.Fatalf("batched output has %d rows, lanes sum to %d", batched.Rows, lo)
	}
}

// TestSampleBatchSingleLaneMatchesSample checks the degenerate K=1 batch
// against the plain sampler, so batched synthesis can transparently replace
// the single-request path.
func TestSampleBatchSingleLaneMatchesSample(t *testing.T) {
	m := batchSampleModel(t, 33)
	const n, steps = 6, 15
	batched := m.SampleBatchWithRngs([]*rand.Rand{rand.New(rand.NewSource(5))}, []int{n}, steps).Clone()
	seq := m.SampleWithRng(rand.New(rand.NewSource(5)), n, steps)
	for i := range seq.Data {
		if math.Float64bits(batched.Data[i]) != math.Float64bits(seq.Data[i]) {
			t.Fatalf("element %d: batched %v, sequential %v", i, batched.Data[i], seq.Data[i])
		}
	}
}

// TestSampleBatchWarmAllocs pins the zero-allocation steady state of the
// batched sampler: after the first call warms the ping-pong workspaces and
// the cached timestep sequence, a same-shape batched call touches the heap
// zero times.
func TestSampleBatchWarmAllocs(t *testing.T) {
	m := batchSampleModel(t, 35)
	const steps = 20
	ns := []int{3, 5, 2}
	rngs := make([]*rand.Rand, len(ns))
	for k := range rngs {
		rngs[k] = rand.New(rand.NewSource(int64(k)))
	}
	m.SampleBatchWithRngs(rngs, ns, steps)

	allocs := testing.AllocsPerRun(10, func() {
		m.SampleBatchWithRngs(rngs, ns, steps)
	})
	if allocs != 0 {
		t.Fatalf("warm SampleBatchWithRngs performs %v allocs, want 0", allocs)
	}
}
