package diffusion

import (
	"math/rand"
)

// Multinomial implements the categorical forward process of Hoogeboom et
// al. for one feature with K categories: at each step the category is kept
// with probability 1-β_t or resampled uniformly. The TabDDPM baseline uses
// one Multinomial per categorical column.
//
// Training uses the x0-parameterisation with a cross-entropy surrogate for
// the multinomial KL term (the two coincide at t=1 and the surrogate is the
// standard practical choice); sampling uses the exact categorical posterior
// q(x_{t-1} | x_t, x̂0).
type Multinomial struct {
	S *Schedule
	K int
}

// NewMultinomial creates multinomial mechanics for K categories.
func NewMultinomial(s *Schedule, k int) *Multinomial { return &Multinomial{S: s, K: k} }

// QSampleCode corrupts a single category code to timestep t using the
// closed-form marginal: keep with probability ᾱ_t, else uniform.
func (m *Multinomial) QSampleCode(rng *rand.Rand, code, t int) int {
	if rng.Float64() < m.S.AlphaBar[t] {
		return code
	}
	return rng.Intn(m.K)
}

// QSampleCodes corrupts a batch of codes with per-row timesteps.
func (m *Multinomial) QSampleCodes(rng *rand.Rand, codes []int, ts []int) []int {
	out := make([]int, len(codes))
	for i, c := range codes {
		out[i] = m.QSampleCode(rng, c, ts[i])
	}
	return out
}

// PosteriorProbs returns q(x_{t-1} | x_t = xt, x̂0 = x0Probs) as a length-K
// probability vector: the normalised product of the one-step-back likelihood
// term and the ᾱ_{t-1}-smoothed x0 prediction.
func (m *Multinomial) PosteriorProbs(xt, t int, x0Probs []float64) []float64 {
	k := float64(m.K)
	alpha := m.S.Alpha[t]
	beta := m.S.Beta[t]
	abPrev := m.S.AlphaBar[t-1]
	out := make([]float64, m.K)
	sum := 0.0
	for j := 0; j < m.K; j++ {
		// Likelihood of reaching xt from category j in one step.
		like := beta / k
		if j == xt {
			like += alpha
		}
		// Prior of being at category j at t-1 given x0 prediction.
		prior := abPrev*x0Probs[j] + (1-abPrev)/k
		out[j] = like * prior
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// PosteriorProbsStrided generalises PosteriorProbs to a strided jump from
// timestep t to tPrev < t: the one-step transition is replaced by the
// effective multi-step transition with keep probability ᾱ_t/ᾱ_{tPrev}.
func (m *Multinomial) PosteriorProbsStrided(xt, t, tPrev int, x0Probs []float64) []float64 {
	k := float64(m.K)
	alphaEff := m.S.AlphaBar[t] / m.S.AlphaBar[tPrev]
	betaEff := 1 - alphaEff
	abPrev := m.S.AlphaBar[tPrev]
	out := make([]float64, m.K)
	sum := 0.0
	for j := 0; j < m.K; j++ {
		like := betaEff / k
		if j == xt {
			like += alphaEff
		}
		prior := abPrev*x0Probs[j] + (1-abPrev)/k
		out[j] = like * prior
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// SampleStepStrided draws x_{tPrev} for a strided jump; at tPrev=0 it
// samples x0 directly from the predicted distribution.
func (m *Multinomial) SampleStepStrided(rng *rand.Rand, xt, t, tPrev int, x0Probs []float64) int {
	if tPrev <= 0 {
		return SampleCategorical(rng, x0Probs)
	}
	return SampleCategorical(rng, m.PosteriorProbsStrided(xt, t, tPrev, x0Probs))
}

// SampleStep draws x_{t-1} from the posterior; at t=1 it samples x0
// directly from the predicted distribution.
func (m *Multinomial) SampleStep(rng *rand.Rand, xt, t int, x0Probs []float64) int {
	var probs []float64
	if t <= 1 {
		probs = x0Probs
	} else {
		probs = m.PosteriorProbs(xt, t, x0Probs)
	}
	return SampleCategorical(rng, probs)
}

// SampleCategorical draws an index from an (assumed normalised) probability
// vector.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for j, p := range probs {
		acc += p
		if u <= acc {
			return j
		}
	}
	return len(probs) - 1
}
