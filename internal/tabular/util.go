package tabular

import "silofuse/internal/tensor"

// fromRows builds a matrix from row slices, tolerating zero rows by using
// the provided column count.
func fromRows(rows [][]float64, cols int) *tensor.Matrix {
	m := tensor.New(len(rows), cols)
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}
