package tabular

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// ColumnSummary holds descriptive statistics for one column.
type ColumnSummary struct {
	Name string
	Kind Kind
	// Numeric statistics (zero for categorical columns).
	Mean, Std, Min, Median, Max float64
	// Categorical statistics (zero/nil for numeric columns).
	Cardinality int
	TopCode     int
	TopFraction float64
	Entropy     float64 // nats
}

// Describe computes per-column descriptive statistics.
func (t *Table) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, t.Schema.NumColumns())
	for j, c := range t.Schema.Columns {
		s := ColumnSummary{Name: c.Name, Kind: c.Kind}
		if c.Kind == Numeric {
			col := t.NumColumn(j)
			if len(col) > 0 {
				for _, v := range col {
					s.Mean += v
				}
				s.Mean /= float64(len(col))
				for _, v := range col {
					d := v - s.Mean
					s.Std += d * d
				}
				s.Std = math.Sqrt(s.Std / float64(len(col)))
				sorted := append([]float64(nil), col...)
				sort.Float64s(sorted)
				s.Min = sorted[0]
				s.Max = sorted[len(sorted)-1]
				if n := len(sorted); n%2 == 1 {
					s.Median = sorted[n/2]
				} else {
					s.Median = 0.5 * (sorted[n/2-1] + sorted[n/2])
				}
			}
		} else {
			s.Cardinality = c.Cardinality
			counts := make([]float64, c.Cardinality)
			for _, code := range t.CatColumn(j) {
				counts[code]++
			}
			n := float64(t.Rows())
			for code, cnt := range counts {
				if cnt > counts[s.TopCode] {
					s.TopCode = code
				}
				if cnt > 0 && n > 0 {
					p := cnt / n
					s.Entropy -= p * math.Log(p)
				}
			}
			if n > 0 {
				s.TopFraction = counts[s.TopCode] / n
			}
		}
		out = append(out, s)
	}
	return out
}

// PrintDescribe renders the summaries as an aligned table.
func PrintDescribe(w io.Writer, summaries []ColumnSummary) {
	fmt.Fprintf(w, "%-12s %-12s %31s %31s\n", "Column", "Kind", "numeric (mean/std/min/med/max)", "categorical (card/top/frac/H)")
	for _, s := range summaries {
		if s.Kind == Numeric {
			fmt.Fprintf(w, "%-12s %-12s %7.3g %7.3g %7.3g %7.3g %7.3g\n",
				s.Name, s.Kind, s.Mean, s.Std, s.Min, s.Median, s.Max)
		} else {
			fmt.Fprintf(w, "%-12s %-12s %31s card=%d top=%d frac=%.2f H=%.2f\n",
				s.Name, s.Kind, "", s.Cardinality, s.TopCode, s.TopFraction, s.Entropy)
		}
	}
}
