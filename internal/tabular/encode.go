package tabular

import (
	"fmt"
	"math"

	"silofuse/internal/tensor"
)

// Span locates one source column inside an encoded feature matrix.
type Span struct {
	Col  int // source column index
	Lo   int // first encoded column
	Hi   int // one past the last encoded column
	Kind Kind
}

// Encoder maps a Table to the dense feature matrix used for model training:
// numeric columns are standardised to zero mean / unit variance; categorical
// columns are one-hot encoded (the mainstream encoding the paper's baselines
// use). The encoder is fitted on one table and can then transform and
// inverse-transform any table with the same schema.
type Encoder struct {
	Schema *Schema
	Spans  []Span
	Mean   []float64 // per source column; 0 for categorical
	Std    []float64 // per source column; 1 for categorical
	width  int
}

// NewEncoder fits an encoder on t.
func NewEncoder(t *Table) *Encoder {
	s := t.Schema
	e := &Encoder{
		Schema: s,
		Mean:   make([]float64, s.NumColumns()),
		Std:    make([]float64, s.NumColumns()),
	}
	off := 0
	for j, c := range s.Columns {
		span := Span{Col: j, Lo: off, Kind: c.Kind}
		if c.Kind == Categorical {
			off += c.Cardinality
			e.Std[j] = 1
		} else {
			off++
			col := t.NumColumn(j)
			mean, std := momentsOf(col)
			e.Mean[j] = mean
			e.Std[j] = std
		}
		span.Hi = off
		e.Spans = append(e.Spans, span)
	}
	e.width = off
	return e
}

func momentsOf(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 1
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	if std < 1e-9 {
		std = 1
	}
	return mean, std
}

// Width returns the encoded feature size (Table II's "#Aft.").
func (e *Encoder) Width() int { return e.width }

// Transform encodes t into a (rows, Width) matrix.
func (e *Encoder) Transform(t *Table) *tensor.Matrix {
	if t.Schema.NumColumns() != e.Schema.NumColumns() {
		panic(fmt.Sprintf("tabular: encoder fitted on %d cols, got %d", e.Schema.NumColumns(), t.Schema.NumColumns()))
	}
	out := tensor.New(t.Rows(), e.width)
	for i := 0; i < t.Rows(); i++ {
		src := t.Data.Row(i)
		dst := out.Row(i)
		for _, sp := range e.Spans {
			if sp.Kind == Categorical {
				dst[sp.Lo+int(src[sp.Col])] = 1
			} else {
				dst[sp.Lo] = (src[sp.Col] - e.Mean[sp.Col]) / e.Std[sp.Col]
			}
		}
	}
	return out
}

// Inverse decodes an encoded matrix back into a Table: categorical spans
// take the arg-max; numeric spans are de-standardised.
func (e *Encoder) Inverse(m *tensor.Matrix) (*Table, error) {
	if m.Cols != e.width {
		return nil, fmt.Errorf("tabular: inverse expects width %d, got %d", e.width, m.Cols)
	}
	out := tensor.New(m.Rows, e.Schema.NumColumns())
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		for _, sp := range e.Spans {
			if sp.Kind == Categorical {
				best, bv := sp.Lo, math.Inf(-1)
				for k := sp.Lo; k < sp.Hi; k++ {
					if src[k] > bv {
						bv = src[k]
						best = k
					}
				}
				dst[sp.Col] = float64(best - sp.Lo)
			} else {
				dst[sp.Col] = src[sp.Lo]*e.Std[sp.Col] + e.Mean[sp.Col]
			}
		}
	}
	return NewTable(e.Schema, out)
}
