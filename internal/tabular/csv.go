package tabular

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table with a header row. Categorical codes are written
// as integers, numeric values with full float precision.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.NumColumns())
	for j, c := range t.Schema.Columns {
		header[j] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tabular: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i := 0; i < t.Rows(); i++ {
		row := t.Data.Row(i)
		for j, c := range t.Schema.Columns {
			if c.Kind == Categorical {
				rec[j] = strconv.Itoa(int(row[j]))
			} else {
				rec[j] = strconv.FormatFloat(row[j], 'g', -1, 64)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("tabular: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV (header plus rows) using the
// provided schema. Column order must match the schema.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tabular: read header: %w", err)
	}
	if len(header) != schema.NumColumns() {
		return nil, fmt.Errorf("tabular: header has %d columns, schema has %d", len(header), schema.NumColumns())
	}
	for j, c := range schema.Columns {
		if header[j] != c.Name {
			return nil, fmt.Errorf("tabular: header column %d is %q, schema says %q", j, header[j], c.Name)
		}
	}
	var rows [][]float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tabular: read row %d: %w", len(rows), err)
		}
		row := make([]float64, len(rec))
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("tabular: row %d col %d: %w", len(rows), j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	m := fromRows(rows, schema.NumColumns())
	return NewTable(schema, m)
}
