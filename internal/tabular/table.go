package tabular

import (
	"fmt"
	"math"
	"math/rand"

	"silofuse/internal/tensor"
)

// Table is a dataset: a schema plus a raw value matrix of shape
// (rows, len(schema.Columns)). Categorical cells store the category code as
// a float64; numeric cells store the value directly.
type Table struct {
	Schema *Schema
	Data   *tensor.Matrix
}

// NewTable wraps data with schema after validating shape and category codes.
func NewTable(schema *Schema, data *tensor.Matrix) (*Table, error) {
	if data.Cols != schema.NumColumns() {
		return nil, fmt.Errorf("tabular: data has %d cols, schema has %d", data.Cols, schema.NumColumns())
	}
	for j, c := range schema.Columns {
		if c.Kind != Categorical {
			continue
		}
		for i := 0; i < data.Rows; i++ {
			v := data.At(i, j)
			code := int(v)
			if float64(code) != v || code < 0 || code >= c.Cardinality { //silofuse:bitwise-ok integrality check of category code
				return nil, fmt.Errorf("tabular: row %d col %q: invalid category code %v (cardinality %d)", i, c.Name, v, c.Cardinality)
			}
		}
	}
	return &Table{Schema: schema, Data: data}, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.Data.Rows }

// CatColumn returns column j decoded as integer category codes. It panics if
// the column is not categorical.
func (t *Table) CatColumn(j int) []int {
	if t.Schema.Columns[j].Kind != Categorical {
		panic(fmt.Sprintf("tabular: column %d is not categorical", j))
	}
	out := make([]int, t.Rows())
	for i := range out {
		out[i] = int(t.Data.At(i, j))
	}
	return out
}

// NumColumn returns numeric column j as a copy. It panics if the column is
// not numeric.
func (t *Table) NumColumn(j int) []float64 {
	if t.Schema.Columns[j].Kind != Numeric {
		panic(fmt.Sprintf("tabular: column %d is not numeric", j))
	}
	return t.Data.Col(j)
}

// SelectColumns returns a new table with the chosen columns, copying data.
func (t *Table) SelectColumns(idx []int) *Table {
	out := tensor.New(t.Rows(), len(idx))
	for i := 0; i < t.Rows(); i++ {
		row := t.Data.Row(i)
		dst := out.Row(i)
		for k, j := range idx {
			dst[k] = row[j]
		}
	}
	return &Table{Schema: t.Schema.Select(idx), Data: out}
}

// SelectRows returns a new table with the chosen rows, copying data.
func (t *Table) SelectRows(idx []int) *Table {
	return &Table{Schema: t.Schema, Data: t.Data.GatherRows(idx)}
}

// Head returns the first n rows (or fewer if the table is smaller).
func (t *Table) Head(n int) *Table {
	if n > t.Rows() {
		n = t.Rows()
	}
	return &Table{Schema: t.Schema, Data: t.Data.SliceRows(0, n)}
}

// Split shuffles rows with rng and returns train and test tables where test
// receives ceil(testFrac * rows) rows.
func (t *Table) Split(rng *rand.Rand, testFrac float64) (train, test *Table) {
	n := t.Rows()
	perm := rng.Perm(n)
	nTest := int(math.Ceil(testFrac * float64(n)))
	if nTest > n {
		nTest = n
	}
	test = t.SelectRows(perm[:nTest])
	train = t.SelectRows(perm[nTest:])
	return train, test
}

// VerticalPartition splits the table across parts (as produced by
// Schema.Partition), returning one table per client. Rows stay aligned: row
// i of every part corresponds to row i of the original — the paper's aligned
// vertical partitioning after private set intersection.
func (t *Table) VerticalPartition(parts [][]int) []*Table {
	out := make([]*Table, len(parts))
	for i, p := range parts {
		out[i] = t.SelectColumns(p)
	}
	return out
}

// JoinVertical re-concatenates vertically partitioned tables in client order
// with the column order given by parts, producing a table whose columns are
// back in the original schema order of base.
func JoinVertical(base *Schema, parts [][]int, tables []*Table) (*Table, error) {
	if len(parts) != len(tables) {
		return nil, fmt.Errorf("tabular: %d parts but %d tables", len(parts), len(tables))
	}
	rows := tables[0].Rows()
	out := tensor.New(rows, base.NumColumns())
	for pi, p := range parts {
		tb := tables[pi]
		if tb.Rows() != rows {
			return nil, fmt.Errorf("tabular: part %d has %d rows, want %d", pi, tb.Rows(), rows)
		}
		if len(p) != tb.Schema.NumColumns() {
			return nil, fmt.Errorf("tabular: part %d has %d cols, assignment has %d", pi, tb.Schema.NumColumns(), len(p))
		}
		for k, j := range p {
			for i := 0; i < rows; i++ {
				out.Set(i, j, tb.Data.At(i, k))
			}
		}
	}
	return NewTable(base, out)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	return &Table{Schema: t.Schema, Data: t.Data.Clone()}
}
