//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package tabular

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"silofuse/internal/tensor"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "age", Kind: Numeric},
		{Name: "color", Kind: Categorical, Cardinality: 3},
		{Name: "income", Kind: Numeric},
		{Name: "flag", Kind: Categorical, Cardinality: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTable(t *testing.T) *Table {
	t.Helper()
	data := tensor.FromRows([][]float64{
		{25, 0, 50000, 1},
		{30, 1, 60000, 0},
		{35, 2, 70000, 1},
		{40, 1, 80000, 0},
	})
	tb, err := NewTable(testSchema(t), data)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty name", []Column{{Name: "", Kind: Numeric}}},
		{"dup name", []Column{{Name: "a", Kind: Numeric}, {Name: "a", Kind: Numeric}}},
		{"numeric with cardinality", []Column{{Name: "a", Kind: Numeric, Cardinality: 3}}},
		{"cat cardinality 1", []Column{{Name: "a", Kind: Categorical, Cardinality: 1}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.cols); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestOneHotWidth(t *testing.T) {
	s := testSchema(t)
	if got := s.OneHotWidth(); got != 2+3+2 {
		t.Fatalf("OneHotWidth = %d", got)
	}
}

func TestCategoricalAndNumericIndexes(t *testing.T) {
	s := testSchema(t)
	ci := s.CategoricalIndexes()
	ni := s.NumericIndexes()
	if len(ci) != 2 || ci[0] != 1 || ci[1] != 3 {
		t.Fatalf("cat idx = %v", ci)
	}
	if len(ni) != 2 || ni[0] != 0 || ni[1] != 2 {
		t.Fatalf("num idx = %v", ni)
	}
}

func TestNewTableRejectsBadCodes(t *testing.T) {
	s := testSchema(t)
	bad := tensor.FromRows([][]float64{{25, 5, 100, 0}}) // color code 5 out of range
	if _, err := NewTable(s, bad); err == nil {
		t.Fatal("expected invalid category code error")
	}
	frac := tensor.FromRows([][]float64{{25, 0.5, 100, 0}}) // non-integer code
	if _, err := NewTable(s, frac); err == nil {
		t.Fatal("expected non-integer code error")
	}
}

func TestColumnAccessors(t *testing.T) {
	tb := testTable(t)
	cc := tb.CatColumn(1)
	if cc[2] != 2 {
		t.Fatalf("CatColumn = %v", cc)
	}
	nc := tb.NumColumn(0)
	if nc[3] != 40 {
		t.Fatalf("NumColumn = %v", nc)
	}
}

func TestSelectColumnsAndRows(t *testing.T) {
	tb := testTable(t)
	sub := tb.SelectColumns([]int{3, 0})
	if sub.Schema.Columns[0].Name != "flag" || sub.Data.At(0, 1) != 25 {
		t.Fatal("SelectColumns wrong")
	}
	rows := tb.SelectRows([]int{2})
	if rows.Rows() != 1 || rows.Data.At(0, 0) != 35 {
		t.Fatal("SelectRows wrong")
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	tb := testTable(t)
	train, test := tb.Split(rand.New(rand.NewSource(1)), 0.25)
	if train.Rows()+test.Rows() != tb.Rows() {
		t.Fatal("split loses rows")
	}
	if test.Rows() != 1 {
		t.Fatalf("test rows = %d", test.Rows())
	}
}

func TestPartitionDefault(t *testing.T) {
	s := testSchema(t)
	parts, err := s.Partition(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || len(parts[0]) != 2 || len(parts[1]) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	// Remainder goes to the last client.
	s5 := MustSchema([]Column{
		{Name: "a", Kind: Numeric}, {Name: "b", Kind: Numeric}, {Name: "c", Kind: Numeric},
		{Name: "d", Kind: Numeric}, {Name: "e", Kind: Numeric},
	})
	parts, err = s5.Partition(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0]) != 2 || len(parts[1]) != 3 {
		t.Fatalf("remainder assignment wrong: %v", parts)
	}
}

func TestPartitionErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Partition(0, nil); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := s.Partition(5, nil); err == nil {
		t.Fatal("expected error for m > columns")
	}
	if _, err := s.Partition(2, []int{0, 1}); err == nil {
		t.Fatal("expected error for short permutation")
	}
}

func TestVerticalPartitionJoinRoundTrip(t *testing.T) {
	tb := testTable(t)
	perm := []int{2, 0, 3, 1}
	parts, err := tb.Schema.Partition(2, perm)
	if err != nil {
		t.Fatal(err)
	}
	silos := tb.VerticalPartition(parts)
	joined, err := JoinVertical(tb.Schema, parts, silos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Data.Data {
		if joined.Data.Data[i] != tb.Data.Data[i] {
			t.Fatal("join does not invert partition")
		}
	}
}

// Property: partition + join round-trips for random schemas/permutations.
func TestPartitionJoinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(10)
		cols := make([]Column, d)
		for i := range cols {
			if rng.Intn(2) == 0 {
				cols[i] = Column{Name: string(rune('a' + i)), Kind: Numeric}
			} else {
				cols[i] = Column{Name: string(rune('a' + i)), Kind: Categorical, Cardinality: 2 + rng.Intn(4)}
			}
		}
		s := MustSchema(cols)
		n := 1 + rng.Intn(20)
		data := tensor.New(n, d)
		for i := 0; i < n; i++ {
			for j, c := range cols {
				if c.Kind == Categorical {
					data.Set(i, j, float64(rng.Intn(c.Cardinality)))
				} else {
					data.Set(i, j, rng.NormFloat64())
				}
			}
		}
		tb, err := NewTable(s, data)
		if err != nil {
			return false
		}
		m := 1 + rng.Intn(d)
		perm := s.RandomPermutation(rng)
		parts, err := s.Partition(m, perm)
		if err != nil {
			return false
		}
		joined, err := JoinVertical(s, parts, tb.VerticalPartition(parts))
		if err != nil {
			return false
		}
		for i := range tb.Data.Data {
			if joined.Data.Data[i] != tb.Data.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	tb := testTable(t)
	enc := NewEncoder(tb)
	if enc.Width() != tb.Schema.OneHotWidth() {
		t.Fatalf("Width = %d, want %d", enc.Width(), tb.Schema.OneHotWidth())
	}
	m := enc.Transform(tb)
	back, err := enc.Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Data.Data {
		if math.Abs(back.Data.Data[i]-tb.Data.Data[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, back.Data.Data[i], tb.Data.Data[i])
		}
	}
}

func TestEncoderStandardisesNumeric(t *testing.T) {
	tb := testTable(t)
	enc := NewEncoder(tb)
	m := enc.Transform(tb)
	// Column 0 of the encoding is standardised age: mean 0, std 1.
	col := m.Col(0)
	mean := 0.0
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("standardised mean = %v", mean)
	}
}

func TestEncoderOneHot(t *testing.T) {
	tb := testTable(t)
	enc := NewEncoder(tb)
	m := enc.Transform(tb)
	// Row 2 has color=2: one-hot columns 1..4 (after age) are [0,0,1].
	sp := enc.Spans[1]
	row := m.Row(2)
	if row[sp.Lo] != 0 || row[sp.Lo+1] != 0 || row[sp.Lo+2] != 1 {
		t.Fatalf("one-hot wrong: %v", row[sp.Lo:sp.Hi])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := testTable(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != tb.Rows() {
		t.Fatalf("rows = %d", back.Rows())
	}
	for i := range tb.Data.Data {
		if back.Data.Data[i] != tb.Data.Data[i] {
			t.Fatal("csv round trip mismatch")
		}
	}
}

func TestReadCSVHeaderMismatch(t *testing.T) {
	tb := testTable(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustSchema([]Column{
		{Name: "x", Kind: Numeric},
		{Name: "color", Kind: Categorical, Cardinality: 3},
		{Name: "income", Kind: Numeric},
		{Name: "flag", Kind: Categorical, Cardinality: 2},
	})
	if _, err := ReadCSV(&buf, other); err == nil {
		t.Fatal("expected header mismatch error")
	}
}

func TestHeadClamps(t *testing.T) {
	tb := testTable(t)
	if tb.Head(100).Rows() != 4 {
		t.Fatal("Head should clamp to table size")
	}
	if tb.Head(2).Rows() != 2 {
		t.Fatal("Head(2) wrong")
	}
}

func TestDescribe(t *testing.T) {
	tb := testTable(t)
	sums := tb.Describe()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	age := sums[0]
	if age.Kind != Numeric || age.Mean != 32.5 || age.Min != 25 || age.Max != 40 {
		t.Fatalf("age summary wrong: %+v", age)
	}
	if age.Median != 32.5 {
		t.Fatalf("age median = %v", age.Median)
	}
	color := sums[1]
	if color.Kind != Categorical || color.Cardinality != 3 {
		t.Fatalf("color summary wrong: %+v", color)
	}
	if color.TopCode != 1 || math.Abs(color.TopFraction-0.5) > 1e-12 {
		t.Fatalf("color top wrong: %+v", color)
	}
	if color.Entropy <= 0 {
		t.Fatal("entropy should be positive for a non-degenerate column")
	}
	var buf bytes.Buffer
	PrintDescribe(&buf, sums)
	if !strings.Contains(buf.String(), "age") {
		t.Fatal("printout incomplete")
	}
}
