//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package tabular

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"silofuse/internal/tensor"
)

func skewedTable(t *testing.T, n int, seed int64) *Table {
	t.Helper()
	s := MustSchema([]Column{
		{Name: "skew", Kind: Numeric},
		{Name: "cat", Kind: Categorical, Cardinality: 3},
		{Name: "normal", Kind: Numeric},
	})
	rng := rand.New(rand.NewSource(seed))
	data := tensor.New(n, 3)
	for i := 0; i < n; i++ {
		data.Set(i, 0, math.Exp(rng.NormFloat64())) // log-normal
		data.Set(i, 1, float64(rng.Intn(3)))
		data.Set(i, 2, rng.NormFloat64())
	}
	tb, err := NewTable(s, data)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-6} {
		x := normalQuantile(p)
		back := normalCDF(x)
		if math.Abs(back-p) > 1e-8 {
			t.Fatalf("Φ(Φ⁻¹(%v)) = %v", p, back)
		}
	}
	if normalQuantile(0.5) != 0 && math.Abs(normalQuantile(0.5)) > 1e-12 {
		t.Fatalf("median quantile = %v", normalQuantile(0.5))
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Fatal("boundary behaviour wrong")
	}
}

func TestQuantileTransformGaussianises(t *testing.T) {
	tb := skewedTable(t, 2000, 1)
	qt := NewQuantileTransformer(tb, 0)
	tr, err := qt.Transform(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Transformed skewed column should be ~N(0,1): near-zero mean and
	// skewness, unit-ish variance.
	col := tr.NumColumn(0)
	var mean, m2, m3 float64
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	for _, v := range col {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= float64(len(col))
	m3 /= float64(len(col))
	skew := m3 / math.Pow(m2, 1.5)
	if math.Abs(mean) > 0.05 || math.Abs(m2-1) > 0.15 || math.Abs(skew) > 0.15 {
		t.Fatalf("not gaussianised: mean %v, var %v, skew %v", mean, m2, skew)
	}
	// Categorical column untouched.
	orig := tb.CatColumn(1)
	trc := tr.CatColumn(1)
	for i := range orig {
		if orig[i] != trc[i] {
			t.Fatal("categorical column was modified")
		}
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	tb := skewedTable(t, 1000, 2)
	qt := NewQuantileTransformer(tb, 0)
	tr, err := qt.Transform(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := qt.Inverse(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 2} {
		orig := tb.NumColumn(j)
		rec := back.NumColumn(j)
		for i := range orig {
			scale := math.Abs(orig[i]) + 0.1
			if math.Abs(orig[i]-rec[i]) > 0.05*scale {
				t.Fatalf("col %d row %d: %v -> %v", j, i, orig[i], rec[i])
			}
		}
	}
}

func TestQuantileTransformerMaxRefs(t *testing.T) {
	tb := skewedTable(t, 2000, 3)
	qt := NewQuantileTransformer(tb, 100)
	if len(qt.refs[0]) != 100 {
		t.Fatalf("refs = %d", len(qt.refs[0]))
	}
	tr, err := qt.Transform(tb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := qt.Inverse(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Coarser references still give a decent round trip.
	orig := tb.NumColumn(0)
	rec := back.NumColumn(0)
	var mae float64
	for i := range orig {
		mae += math.Abs(orig[i] - rec[i])
	}
	mae /= float64(len(orig))
	if mae > 0.2 {
		t.Fatalf("coarse round-trip MAE = %v", mae)
	}
}

// Property: the transform is monotone — order of values is preserved.
func TestQuantileTransformMonotoneProperty(t *testing.T) {
	tb := skewedTable(t, 300, 4)
	qt := NewQuantileTransformer(tb, 0)
	tr, err := qt.Transform(tb)
	if err != nil {
		t.Fatal(err)
	}
	orig := tb.NumColumn(0)
	mapped := tr.NumColumn(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		i, j := rng.Intn(len(orig)), rng.Intn(len(orig))
		if orig[i] < orig[j] {
			return mapped[i] <= mapped[j]
		}
		if orig[i] > orig[j] {
			return mapped[i] >= mapped[j]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
