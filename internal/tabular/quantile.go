package tabular

import (
	"fmt"
	"math"
	"sort"
)

// QuantileTransformer maps a numeric column to an approximately standard
// normal distribution through its empirical CDF — the preprocessing TabDDPM
// applies to numeric features, which makes heavy-tailed or skewed marginals
// tractable for Gaussian diffusion. Inverse restores the original scale.
type QuantileTransformer struct {
	// refs holds the sorted reference sample per transformed column.
	refs [][]float64
	cols []int // transformed (numeric) column indexes
}

// NewQuantileTransformer fits on the numeric columns of t, keeping at most
// maxRefs reference quantiles per column (0 means all rows).
func NewQuantileTransformer(t *Table, maxRefs int) *QuantileTransformer {
	q := &QuantileTransformer{cols: t.Schema.NumericIndexes()}
	for _, j := range q.cols {
		col := append([]float64(nil), t.NumColumn(j)...)
		sort.Float64s(col)
		if maxRefs > 0 && len(col) > maxRefs {
			sub := make([]float64, maxRefs)
			for i := range sub {
				sub[i] = col[i*(len(col)-1)/(maxRefs-1)]
			}
			col = sub
		}
		q.refs = append(q.refs, col)
	}
	return q
}

// Transform returns a copy of t with numeric columns mapped through
// Φ⁻¹(rank/(n+1)) — approximately N(0,1) marginals. Categorical columns are
// untouched.
func (q *QuantileTransformer) Transform(t *Table) (*Table, error) {
	out := t.Clone()
	for ci, j := range q.cols {
		ref := q.refs[ci]
		for i := 0; i < out.Rows(); i++ {
			v := out.Data.At(i, j)
			out.Data.Set(i, j, normalQuantile(empiricalCDF(ref, v)))
		}
	}
	return out, nil
}

// Inverse maps transformed values back through the reference quantiles.
func (q *QuantileTransformer) Inverse(t *Table) (*Table, error) {
	out := t.Clone()
	for ci, j := range q.cols {
		ref := q.refs[ci]
		if len(ref) == 0 {
			return nil, fmt.Errorf("tabular: quantile transformer has empty reference for column %d", j)
		}
		for i := 0; i < out.Rows(); i++ {
			p := normalCDF(out.Data.At(i, j))
			out.Data.Set(i, j, referenceQuantile(ref, p))
		}
	}
	return out, nil
}

// empiricalCDF returns the clipped empirical CDF of v in the sorted sample.
func empiricalCDF(sorted []float64, v float64) float64 {
	n := len(sorted)
	rank := sort.SearchFloat64s(sorted, v)
	// Midpoint correction for ties/interior values.
	p := (float64(rank) + 0.5) / float64(n+1)
	return clamp01(p, 1.0/float64(2*(n+1)))
}

// referenceQuantile interpolates the p-th quantile of the sorted sample
// using the same plotting positions as empiricalCDF (p_i = (i+0.5)/(n+1)),
// so Transform followed by Inverse reproduces sample points exactly.
func referenceQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := p*float64(n+1) - 0.5
	if pos <= 0 {
		return sorted[0]
	}
	if pos >= float64(n-1) {
		return sorted[n-1]
	}
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func clamp01(p, eps float64) float64 {
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// normalCDF is Φ, the standard normal CDF.
func normalCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// normalQuantile is Φ⁻¹ via the Acklam rational approximation (|ε| < 1e-9
// over (0,1)), refined with one Halley step.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := normalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
