// Package tabular provides the data model for mixed-type tables: schemas
// with categorical and numeric columns, encodings (one-hot, standardised),
// vertical partitioning for the cross-silo setting, splits, and CSV I/O.
package tabular

import (
	"fmt"
	"math/rand"
)

// Kind distinguishes column types.
type Kind int

const (
	// Numeric columns hold continuous values.
	Numeric Kind = iota
	// Categorical columns hold integer category codes in [0, Cardinality).
	Categorical
)

// String renders the kind for diagnostics.
func (k Kind) String() string {
	if k == Numeric {
		return "numeric"
	}
	return "categorical"
}

// Column describes one table column.
type Column struct {
	Name        string
	Kind        Kind
	Cardinality int // number of categories; 0 for numeric columns
}

// Schema is an ordered list of column descriptions.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema and validates it.
func NewSchema(cols []Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tabular: column %d has empty name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("tabular: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		switch c.Kind {
		case Numeric:
			if c.Cardinality != 0 {
				return nil, fmt.Errorf("tabular: numeric column %q has cardinality %d", c.Name, c.Cardinality)
			}
		case Categorical:
			if c.Cardinality < 2 {
				return nil, fmt.Errorf("tabular: categorical column %q needs cardinality >= 2, got %d", c.Name, c.Cardinality)
			}
		default:
			return nil, fmt.Errorf("tabular: column %q has unknown kind %d", c.Name, c.Kind)
		}
	}
	return &Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error, for static schema literals.
func MustSchema(cols []Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the total number of columns (paper's d, pre-one-hot).
func (s *Schema) NumColumns() int { return len(s.Columns) }

// CategoricalIndexes returns the indexes of categorical columns.
func (s *Schema) CategoricalIndexes() []int {
	var out []int
	for i, c := range s.Columns {
		if c.Kind == Categorical {
			out = append(out, i)
		}
	}
	return out
}

// NumericIndexes returns the indexes of numeric columns.
func (s *Schema) NumericIndexes() []int {
	var out []int
	for i, c := range s.Columns {
		if c.Kind == Numeric {
			out = append(out, i)
		}
	}
	return out
}

// OneHotWidth returns the encoded feature size (paper's "#Aft."): the sum of
// categorical cardinalities plus the number of numeric columns.
func (s *Schema) OneHotWidth() int {
	w := 0
	for _, c := range s.Columns {
		if c.Kind == Categorical {
			w += c.Cardinality
		} else {
			w++
		}
	}
	return w
}

// Select returns a new schema containing the given columns in order.
func (s *Schema) Select(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Partition splits column indexes into m contiguous blocks, the paper's
// default assignment: equal sizes with the remainder going to the last
// client. If perm is non-nil it is applied to the column order first
// (the "permuted" robustness setting).
func (s *Schema) Partition(m int, perm []int) ([][]int, error) {
	d := len(s.Columns)
	if m < 1 || m > d {
		return nil, fmt.Errorf("tabular: cannot partition %d columns into %d parts", d, m)
	}
	order := make([]int, d)
	if perm != nil {
		if len(perm) != d {
			return nil, fmt.Errorf("tabular: permutation length %d != columns %d", len(perm), d)
		}
		copy(order, perm)
	} else {
		for i := range order {
			order[i] = i
		}
	}
	per := d / m
	parts := make([][]int, m)
	off := 0
	for i := 0; i < m; i++ {
		size := per
		if i == m-1 {
			size = d - off // remainder to the last client, per the paper
		}
		parts[i] = append([]int(nil), order[off:off+size]...)
		off += size
	}
	return parts, nil
}

// RandomPermutation returns a feature permutation drawn from rng, used by
// the Fig. 11 robustness experiment (the paper uses seed 12343).
func (s *Schema) RandomPermutation(rng *rand.Rand) []int {
	return rng.Perm(len(s.Columns))
}
