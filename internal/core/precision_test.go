package core

import (
	"math"
	"testing"
)

// TestComputePrecisionF32EndToEnd trains SiloFuse under the reduced-
// precision compute tier and checks the full pipeline — stacked training
// (always float64), f32 sampling and f32 decode — produces a valid table
// that tracks the f64 run closely.
func TestComputePrecisionF32EndToEnd(t *testing.T) {
	tb := loanTable(t, 300)
	run := func(precision string) [][]float64 {
		opts := tinyOptions()
		opts.AEIters = 60
		opts.DiffIters = 80
		opts.ComputePrecision = precision
		m := NewSiloFuse(opts)
		if err := m.Fit(tb); err != nil {
			t.Fatal(err)
		}
		out, err := m.Sample(50)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rows() != 50 || out.Schema.NumColumns() != tb.Schema.NumColumns() {
			t.Fatalf("bad output shape %dx%d", out.Rows(), out.Schema.NumColumns())
		}
		rows := make([][]float64, out.Rows())
		for i := range rows {
			rows[i] = append([]float64(nil), out.Data.Row(i)...)
		}
		return rows
	}
	f64Rows := run("")
	f32Rows := run("f32")
	var maxDiff, scale float64
	for i := range f64Rows {
		for j := range f64Rows[i] {
			if d := math.Abs(f32Rows[i][j] - f64Rows[i][j]); d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(f64Rows[i][j]); a > scale {
				scale = a
			}
		}
	}
	// Training is bit-identical across tiers, so the only divergence is
	// f32 sampling + decode rounding. Categorical argmax flips on near-tie
	// logits can move a code by an integer, so bound the numeric drift by
	// the data scale rather than rounding scale.
	if maxDiff > 0.05*(1+scale) {
		t.Fatalf("f32 synthesis diverged from f64: max diff %g at scale %g", maxDiff, scale)
	}
}

func TestComputePrecisionRejectsUnknown(t *testing.T) {
	opts := tinyOptions()
	opts.ComputePrecision = "bf16"
	if err := NewSiloFuse(opts).Fit(loanTable(t, 80)); err == nil {
		t.Fatal("expected error for unknown compute precision")
	}
}
