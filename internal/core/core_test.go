//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package core

import (
	"bytes"
	"testing"

	"silofuse/internal/datagen"
	"silofuse/internal/stats"
	"silofuse/internal/tabular"
)

func loanTable(t *testing.T, rows int) *tabular.Table {
	t.Helper()
	spec, err := datagen.ByName("loan")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(rows, 33)
}

func tinyOptions() Options {
	o := FastOptions()
	o.AEIters = 150
	o.DiffIters = 250
	o.GANIters = 150
	o.Batch = 64
	return o
}

func TestRegistryConstructsAllModels(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := New(name, tinyOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() == "" {
			t.Fatalf("%s: empty display name", name)
		}
	}
	if _, err := New("bogus", tinyOptions()); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestSampleBeforeFitErrors(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := New(name, tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Sample(5); err == nil {
			t.Fatalf("%s: Sample before Fit should error", name)
		}
	}
}

// TestAllModelsFitAndSample is the integration smoke test: every model in
// the zoo trains briefly on the loan dataset and produces a valid table
// with the right schema.
func TestAllModelsFitAndSample(t *testing.T) {
	tb := loanTable(t, 300)
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := tinyOptions()
			opts.AEIters = 60
			opts.DiffIters = 80
			opts.GANIters = 60
			m, err := New(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Fit(tb); err != nil {
				t.Fatal(err)
			}
			out, err := m.Sample(40)
			if err != nil {
				t.Fatal(err)
			}
			if out.Rows() != 40 {
				t.Fatalf("rows = %d", out.Rows())
			}
			if out.Schema.NumColumns() != tb.Schema.NumColumns() {
				t.Fatal("schema width mismatch")
			}
			for j, c := range out.Schema.Columns {
				if c.Name != tb.Schema.Columns[j].Name {
					t.Fatal("column names lost")
				}
			}
		})
	}
}

// TestSiloFuseQuality trains SiloFuse a bit longer and checks the synthetic
// marginals genuinely resemble the real data (mean KS below a loose bound),
// separating it from noise.
func TestSiloFuseQuality(t *testing.T) {
	tb := loanTable(t, 800)
	opts := tinyOptions()
	opts.AEIters = 400
	opts.DiffIters = 800
	m := NewSiloFuse(opts)
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	out, err := m.Sample(800)
	if err != nil {
		t.Fatal(err)
	}
	nCat := len(tb.Schema.CategoricalIndexes())
	var ks float64
	for j := nCat; j < tb.Schema.NumColumns(); j++ {
		ks += stats.KSStatistic(tb.NumColumn(j), out.NumColumn(j))
	}
	ks /= float64(tb.Schema.NumColumns() - nCat)
	if ks > 0.45 {
		t.Fatalf("SiloFuse marginals too far from real: mean KS %v", ks)
	}
	// Target column should show both classes (no mode collapse).
	freq := stats.Frequencies(out.CatColumn(0), tb.Schema.Columns[0].Cardinality)
	for c, f := range freq {
		if f == 1 {
			t.Fatalf("mode collapse onto class %d", c)
		}
	}
}

func TestSiloFusePartitionedSampling(t *testing.T) {
	tb := loanTable(t, 300)
	m := NewSiloFuse(tinyOptions())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	parts, err := m.SamplePartitioned(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != m.Opts.Clients {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		if p.Rows() != 25 {
			t.Fatal("row mismatch")
		}
		total += p.Schema.NumColumns()
	}
	if total != tb.Schema.NumColumns() {
		t.Fatal("partitions do not cover the schema")
	}
}

func TestSiloFuseCommStatsSingleRound(t *testing.T) {
	tb := loanTable(t, 200)
	m := NewSiloFuse(tinyOptions())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	st := m.CommStats()
	if st.Messages != int64(m.Opts.Clients) {
		t.Fatalf("training messages = %d, want %d", st.Messages, m.Opts.Clients)
	}
}

func TestLatentDiffIsCentralized(t *testing.T) {
	m := NewLatentDiff(tinyOptions())
	if m.Opts.Clients != 1 {
		t.Fatal("LatentDiff must have one client")
	}
	if m.Name() != "LatentDiff" {
		t.Fatal("wrong name")
	}
}

func TestSetSynthSteps(t *testing.T) {
	tb := loanTable(t, 200)
	m := NewSiloFuse(tinyOptions())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	m.SetSynthSteps(2)
	out, err := m.Sample(10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 10 {
		t.Fatal("sampling with 2 steps failed")
	}
}

func TestTabDDPMCategoricalValidity(t *testing.T) {
	tb := loanTable(t, 300)
	m := NewTabDDPM(tinyOptions())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	out, err := m.Sample(100)
	if err != nil {
		t.Fatal(err)
	}
	// NewTable validation inside Sample/Inverse guarantees codes; verify
	// the distribution is not degenerate on the target column.
	freq := stats.Frequencies(out.CatColumn(0), tb.Schema.Columns[0].Cardinality)
	nonzero := 0
	for _, f := range freq {
		if f > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Fatalf("TabDDPM collapsed to one category: %v", freq)
	}
}

func TestE2EDistrUsesConfiguredClients(t *testing.T) {
	tb := loanTable(t, 200)
	opts := tinyOptions()
	opts.Clients = 3
	opts.AEIters = 20
	opts.DiffIters = 20
	m := NewE2EDistr(opts)
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	st := m.CommStats()
	// 4 messages per client per iteration.
	wantMsgs := int64(4 * 3 * (opts.AEIters + opts.DiffIters))
	if st.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", st.Messages, wantMsgs)
	}
}

func TestPermutationChangesPartitioning(t *testing.T) {
	tb := loanTable(t, 200)
	opts := tinyOptions()
	opts.Permutation = []int{12, 0, 3, 7, 1, 9, 2, 11, 4, 10, 5, 8, 6}
	m := NewSiloFuse(opts)
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	out, err := m.Sample(20)
	if err != nil {
		t.Fatal(err)
	}
	// Even under permutation, the joined output restores schema order.
	for j, c := range out.Schema.Columns {
		if c.Name != tb.Schema.Columns[j].Name {
			t.Fatal("permuted partitioning broke column restoration")
		}
	}
}

// TestSiloFuseSaveLoadRoundTrip persists a trained model and verifies the
// restored copy produces identical deterministic output (mean decoding,
// fresh seeded sampler).
func TestSiloFuseSaveLoadRoundTrip(t *testing.T) {
	tb := loanTable(t, 250)
	opts := tinyOptions()
	opts.DecodeSampling = false
	m := NewSiloFuse(opts)
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewSiloFuse(opts)
	if _, err := m2.Sample(1); err == nil {
		t.Fatal("unfitted model should not sample")
	}
	if err := m2.Load(tb, &buf); err != nil {
		t.Fatal(err)
	}
	out, err := m2.Sample(30)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 30 || out.Schema.NumColumns() != tb.Schema.NumColumns() {
		t.Fatal("restored model sampling failed")
	}
	// Restored weights must match: encode the training table through both
	// models' first-client autoencoder via partitioned synthesis decoding
	// determinism — compare a fresh sample under identical sampler seeds is
	// not possible (internal rngs advanced), so instead verify Save is
	// stable: saving the restored model reproduces identical bytes.
	var buf2 bytes.Buffer
	if err := m2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := m.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("restored state diverges from saved state")
	}
}

func TestSiloFuseSaveBeforeFit(t *testing.T) {
	m := NewSiloFuse(tinyOptions())
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("expected Save-before-Fit error")
	}
}
