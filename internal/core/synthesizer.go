// Package core contains the paper's primary contribution — the SiloFuse
// cross-silo latent diffusion synthesizer — together with the six baselines
// of the evaluation (LatentDiff, TabDDPM, E2E, E2EDistr, GAN(linear),
// GAN(conv)), all behind one Synthesizer interface so the benchmark
// framework treats them uniformly.
package core

import (
	"fmt"

	"silofuse/internal/obs"
	"silofuse/internal/tabular"
)

// Synthesizer is a tabular generative model: fit on real data, then sample
// synthetic tables with the same schema.
type Synthesizer interface {
	// Name returns the model's display name as used in the paper's tables.
	Name() string
	// Fit trains the model on the given table.
	Fit(train *tabular.Table) error
	// Sample draws n synthetic rows.
	Sample(n int) (*tabular.Table, error)
}

// Options carries the shared hyper-parameters of all models. The zero value
// is not usable; start from DefaultOptions. The paper's full-scale settings
// (hidden 1024, embed 32, batch 512, 500k iterations, T=200, 25 inference
// steps, 4 clients) are reachable by overriding fields; defaults are scaled
// for CPU-only runs.
type Options struct {
	// Distribution settings (used by SiloFuse / E2EDistr).
	Clients     int
	Permutation []int // optional feature permutation before partitioning
	SplitWidths bool  // divide AE widths evenly across clients (paper setup)

	Seed  int64
	Batch int

	// Autoencoder settings.
	AEHidden int
	AEEmbed  int
	AEIters  int

	// Diffusion settings.
	DiffHidden  int
	DiffDepth   int
	DiffTimeDim int
	T           int // training timesteps
	SynthSteps  int // inference denoising steps
	DiffIters   int
	// EMADecay > 0 samples with exponentially averaged backbone weights.
	EMADecay float64
	// CosineSchedule switches the diffusion variance schedule from linear
	// to cosine.
	CosineSchedule bool
	// DisableLatentWhitening turns off the coordinator's per-dimension
	// latent standardisation (ablation: the diffusion prior then mismatches
	// the latent scale).
	DisableLatentWhitening bool
	// LatentNoiseStd adds Gaussian noise to uploaded latents before they
	// reach the coordinator — a differential-privacy style knob.
	LatentNoiseStd float64

	// GAN settings.
	GANIters  int
	GANHidden int
	GANLatent int

	LR float64
	// DecodeSampling draws from the decoder output heads instead of taking
	// the mean / arg-max, adding sample diversity.
	DecodeSampling bool

	// Recorder, when non-nil, receives per-step training telemetry, phase
	// spans and transport message telemetry from the fitted model (see
	// internal/obs). nil disables telemetry at near-zero cost.
	Recorder *obs.Recorder

	// ChaosProfile, when set to a profile name (see
	// silo.ChaosProfileByName; "" or "none" disables), makes the distributed
	// models train over a fault-injecting transport: the in-process bus is
	// wrapped in a seeded ChaosBus plus a ResilientBus, and stacked training
	// runs with phase-level recovery. Used to demonstrate the
	// recovery-equals-baseline guarantee under benchmark conditions.
	ChaosProfile string
	// ChaosSeed seeds the deterministic fault schedule.
	ChaosSeed int64

	// WireCodec selects the precision tier framing dense tensor payloads on
	// the bus (see internal/silo/codec): "" or "f64" (lossless, default —
	// bit-identical accounting and results), "f32" (half the payload bytes,
	// round-to-nearest), "q8" (per-column int8 quantization, roughly a
	// quarter of the payload bytes). The per-kind bytes-vs-error accounting
	// lands in the wire_* metrics and WireReport.
	WireCodec string
	// ComputePrecision selects the kernel precision on compute paths where
	// bit-exactness is not contracted (the sampling/denoise ping-pong and
	// the decode-side autoencoder forward): "" or "f64" (default,
	// bit-identical) or "f32" (float32 kernels, ~2x memory bandwidth).
	// Training always runs in float64.
	ComputePrecision string

	// TrainWorkers > 0 trains the coordinator's diffusion model
	// data-parallel across that many workers with a fixed-reduction-order
	// all-reduce over the bus (KindGrad envelopes). Results are
	// bit-identical across worker counts for a fixed TrainShards; 0 keeps
	// the single-worker in-process path.
	TrainWorkers int
	// TrainShards fixes the logical shard count of data-parallel training
	// (0 means diffusion.DefaultShards). It — not TrainWorkers — decides
	// the reduction geometry.
	TrainShards int
	// BatchSampling routes Sample through the batched sampler: concurrent
	// synthesis requests stack into one denoising ping-pong (SampleBatch),
	// and single Sample calls run as a one-lane batch.
	BatchSampling bool

	// DebugSpin, when > 0, injects that many iterations of deterministic
	// busy-work after every diffusion training step (see
	// diffusion.ModelConfig.DebugSpin). Wall time only; results are
	// bit-identical. Exists for the profiling attribution smoke tests.
	DebugSpin int
}

// DefaultOptions returns CPU-scaled settings that preserve the paper's
// architecture shape.
func DefaultOptions() Options {
	return Options{
		Clients:        4,
		Seed:           1,
		Batch:          256,
		AEHidden:       256,
		AEEmbed:        32,
		AEIters:        1500,
		DiffHidden:     256,
		DiffDepth:      4,
		DiffTimeDim:    32,
		T:              200,
		SynthSteps:     25,
		DiffIters:      2500,
		GANIters:       1500,
		GANHidden:      128,
		GANLatent:      32,
		LR:             1e-3,
		DecodeSampling: true,
	}
}

// FastOptions returns heavily reduced settings for tests and testing.B
// benchmarks; rankings remain stable but absolute quality is lower.
func FastOptions() Options {
	o := DefaultOptions()
	o.Batch = 128
	o.AEHidden = 64
	o.AEEmbed = 16
	o.AEIters = 300
	o.DiffHidden = 64
	o.DiffDepth = 3
	o.T = 100
	o.SynthSteps = 15
	o.DiffIters = 500
	o.GANIters = 400
	o.GANHidden = 64
	return o
}

// ModelNames lists the registry names in the paper's table order.
func ModelNames() []string {
	return []string{"gan-conv", "gan-linear", "e2e", "e2edistr", "tabddpm", "latentdiff", "silofuse"}
}

// New constructs a synthesizer by registry name.
func New(name string, opts Options) (Synthesizer, error) {
	switch name {
	case "silofuse":
		return NewSiloFuse(opts), nil
	case "latentdiff":
		return NewLatentDiff(opts), nil
	case "tabddpm":
		return NewTabDDPM(opts), nil
	case "e2e":
		return NewE2E(opts), nil
	case "e2edistr":
		return NewE2EDistr(opts), nil
	case "gan-linear":
		return NewGANLinear(opts), nil
	case "gan-conv":
		return NewGANConv(opts), nil
	default:
		return nil, fmt.Errorf("core: unknown synthesizer %q", name)
	}
}
