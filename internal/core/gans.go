package core

import (
	"fmt"
	"math/rand"

	"silofuse/internal/gan"
	"silofuse/internal/tabular"
)

// GANModel wraps the centralized GAN baselines as Synthesizers.
type GANModel struct {
	Opts Options
	name string
	back gan.Backbone
	g    *gan.GAN
}

// NewGANLinear builds the CTGAN-flavoured baseline (paper's GAN(linear)).
func NewGANLinear(opts Options) *GANModel {
	return &GANModel{Opts: opts, name: "GAN(linear)", back: gan.Linear}
}

// NewGANConv builds the CTAB-GAN-flavoured baseline (paper's GAN(conv)).
func NewGANConv(opts Options) *GANModel {
	return &GANModel{Opts: opts, name: "GAN(conv)", back: gan.Conv}
}

// Name implements Synthesizer.
func (m *GANModel) Name() string { return m.name }

// Fit implements Synthesizer.
func (m *GANModel) Fit(train *tabular.Table) error {
	cfg := gan.DefaultConfig(m.back)
	cfg.Hidden = m.Opts.GANHidden
	cfg.LatentDim = m.Opts.GANLatent
	rng := rand.New(rand.NewSource(m.Opts.Seed + 17))
	m.g = gan.New(rng, train, cfg)
	m.g.Rec = m.Opts.Recorder
	m.g.Train(train, m.Opts.GANIters, m.Opts.Batch)
	return nil
}

// Sample implements Synthesizer.
func (m *GANModel) Sample(n int) (*tabular.Table, error) {
	if m.g == nil {
		return nil, fmt.Errorf("%s: Sample before Fit", m.name)
	}
	return m.g.Sample(n)
}
