package core

import (
	"fmt"
	"math"
	"math/rand"

	"silofuse/internal/diffusion"
	"silofuse/internal/nn"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// TabDDPM is the centralized state-of-the-art baseline (Kotelnikov et al.):
// a diffusion model operating directly in the one-hot + standardised data
// space, combining a Gaussian process over numeric columns with a
// multinomial process per categorical column (paper eq. 3). It requires no
// autoencoders, but pays the one-hot feature expansion of Table II.
type TabDDPM struct {
	Opts Options

	schema *tabular.Schema
	enc    *tabular.Encoder
	gauss  *diffusion.Gaussian
	multis []*diffusion.Multinomial // one per categorical column, span order
	net    *nn.DiffusionMLP
	opt    *nn.Adam
	rng    *rand.Rand

	catSpans []tabular.Span
	numSpans []tabular.Span
}

// NewTabDDPM builds the baseline with the given options.
func NewTabDDPM(opts Options) *TabDDPM {
	return &TabDDPM{Opts: opts, rng: rand.New(rand.NewSource(opts.Seed + 31))}
}

// Name implements Synthesizer.
func (m *TabDDPM) Name() string { return "TabDDPM" }

// Fit implements Synthesizer.
func (m *TabDDPM) Fit(train *tabular.Table) error {
	m.schema = train.Schema
	m.enc = tabular.NewEncoder(train)
	sch := diffusion.LinearSchedule(m.Opts.T, 1e-4, 0.02)
	m.gauss = diffusion.NewGaussian(sch)
	m.catSpans = m.catSpans[:0]
	m.numSpans = m.numSpans[:0]
	m.multis = m.multis[:0]
	for _, sp := range m.enc.Spans {
		if sp.Kind == tabular.Categorical {
			m.catSpans = append(m.catSpans, sp)
			m.multis = append(m.multis, diffusion.NewMultinomial(sch, sp.Hi-sp.Lo))
		} else {
			m.numSpans = append(m.numSpans, sp)
		}
	}
	width := m.enc.Width()
	// The paper gives TabDDPM a 6-layer MLP backbone with hidden 256.
	m.net = nn.NewDiffusionMLP(m.rng, width, m.Opts.DiffHidden, width, m.Opts.DiffDepth, m.Opts.DiffTimeDim, 0)
	m.net.WarmTimesteps(m.Opts.T)
	m.opt = nn.NewAdam(m.net.Params(), m.Opts.LR)

	iters := m.Opts.DiffIters
	batch := m.Opts.Batch
	if batch > train.Rows() {
		batch = train.Rows()
	}
	idx := make([]int, batch)
	rec := m.Opts.Recorder
	for it := 0; it < iters; it++ {
		for i := range idx {
			idx[i] = m.rng.Intn(train.Rows())
		}
		t0 := rec.Now()
		loss := m.trainStep(train.SelectRows(idx))
		if rec != nil {
			rec.TrainStep("tabddpm", loss, batch, rec.Since(t0))
		}
	}
	return nil
}

// trainStep runs one combined Gaussian+multinomial diffusion step.
func (m *TabDDPM) trainStep(batch *tabular.Table) float64 {
	n := batch.Rows()
	x0 := m.enc.Transform(batch)
	ts := m.gauss.SampleTimesteps(m.rng, n)

	// Build the noisy input: Gaussian q-sample on numeric spans, multinomial
	// category corruption (re-one-hotted) on categorical spans.
	input := tensor.New(n, x0.Cols)
	eps := tensor.New(n, x0.Cols) // only numeric positions used
	for _, sp := range m.numSpans {
		ab := 0.0
		for i := 0; i < n; i++ {
			ab = m.gauss.S.AlphaBar[ts[i]]
			e := m.rng.NormFloat64()
			eps.Set(i, sp.Lo, e)
			input.Set(i, sp.Lo, math.Sqrt(ab)*x0.At(i, sp.Lo)+math.Sqrt(1-ab)*e)
		}
	}
	for ci, sp := range m.catSpans {
		codes := batch.CatColumn(sp.Col)
		noisy := m.multis[ci].QSampleCodes(m.rng, codes, ts)
		for i := 0; i < n; i++ {
			input.Set(i, sp.Lo+noisy[i], 1)
		}
	}

	out := m.net.Forward(input, ts, true)

	// Loss and gradient assembly: MSE on numeric spans (ε-prediction),
	// cross-entropy on categorical spans (x0-parameterisation).
	grad := tensor.New(n, x0.Cols)
	total := 0.0
	if len(m.numSpans) > 0 {
		cnt := float64(n * len(m.numSpans))
		for _, sp := range m.numSpans {
			for i := 0; i < n; i++ {
				d := out.At(i, sp.Lo) - eps.At(i, sp.Lo)
				total += d * d / cnt
				grad.Set(i, sp.Lo, 2*d/cnt)
			}
		}
	}
	for _, sp := range m.catSpans {
		logits := out.SliceCols(sp.Lo, sp.Hi)
		codes := batch.CatColumn(sp.Col)
		loss, g := nn.CrossEntropyLoss(logits, codes)
		scale := 1 / float64(len(m.catSpans))
		total += loss * scale
		for k := 0; k < g.Cols; k++ {
			col := g.Col(k)
			for i := 0; i < n; i++ {
				grad.Set(i, sp.Lo+k, col[i]*scale)
			}
		}
	}
	m.net.Backward(grad)
	m.opt.Step()
	return total
}

// Sample implements Synthesizer: numeric columns follow DDIM updates while
// categorical columns follow strided multinomial posterior sampling.
func (m *TabDDPM) Sample(n int) (*tabular.Table, error) {
	if m.net == nil {
		return nil, fmt.Errorf("TabDDPM: Sample before Fit")
	}
	width := m.enc.Width()
	seq := m.gauss.S.StridedTimesteps(m.Opts.SynthSteps)

	// Initialise: numeric ~ N(0,1); categories uniform.
	num := tensor.New(n, width)
	for _, sp := range m.numSpans {
		for i := 0; i < n; i++ {
			num.Set(i, sp.Lo, m.rng.NormFloat64())
		}
	}
	codes := make([][]int, len(m.catSpans))
	for ci, sp := range m.catSpans {
		codes[ci] = make([]int, n)
		k := sp.Hi - sp.Lo
		for i := 0; i < n; i++ {
			codes[ci][i] = m.rng.Intn(k)
		}
	}

	ts := make([]int, n)
	for si, t := range seq {
		tPrev := 0
		if si+1 < len(seq) {
			tPrev = seq[si+1]
		}
		input := tensor.New(n, width)
		for _, sp := range m.numSpans {
			for i := 0; i < n; i++ {
				input.Set(i, sp.Lo, num.At(i, sp.Lo))
			}
		}
		for ci, sp := range m.catSpans {
			for i := 0; i < n; i++ {
				input.Set(i, sp.Lo+codes[ci][i], 1)
			}
		}
		for i := range ts {
			ts[i] = t
		}
		out := m.net.Forward(input, ts, false)

		// Numeric DDIM update (η=0).
		ab := m.gauss.S.AlphaBar[t]
		abPrev := m.gauss.S.AlphaBar[tPrev]
		c1 := math.Sqrt(abPrev)
		c2 := math.Sqrt(1 - abPrev)
		sqab := math.Sqrt(ab)
		sq1ab := math.Sqrt(1 - ab)
		for _, sp := range m.numSpans {
			for i := 0; i < n; i++ {
				e := out.At(i, sp.Lo)
				x0 := (num.At(i, sp.Lo) - sq1ab*e) / sqab
				num.Set(i, sp.Lo, c1*x0+c2*e)
			}
		}
		// Categorical posterior step.
		for ci, sp := range m.catSpans {
			logits := out.SliceCols(sp.Lo, sp.Hi)
			probs := nn.Softmax(logits)
			for i := 0; i < n; i++ {
				codes[ci][i] = m.multis[ci].SampleStepStrided(m.rng, codes[ci][i], t, tPrev, probs.Row(i))
			}
		}
	}

	// Assemble the final encoded matrix and decode.
	final := tensor.New(n, width)
	for _, sp := range m.numSpans {
		for i := 0; i < n; i++ {
			final.Set(i, sp.Lo, num.At(i, sp.Lo))
		}
	}
	for ci, sp := range m.catSpans {
		for i := 0; i < n; i++ {
			final.Set(i, sp.Lo+codes[ci][i], 1)
		}
	}
	return m.enc.Inverse(final)
}
