//silofuse:bitwise-ok ddp option tests pin bit-reproducible outputs with exact comparisons
package core

import (
	"testing"

	"silofuse/internal/tabular"
)

// ddpOptions scales the fast options down to a quick DDP fit.
func ddpOptions(workers int) Options {
	o := FastOptions()
	o.AEIters = 40
	o.DiffIters = 60
	o.Batch = 64
	o.TrainWorkers = workers
	o.TrainShards = 8
	return o
}

func fitSiloFuse(t *testing.T, opts Options) *SiloFuse {
	t.Helper()
	s := NewSiloFuse(opts)
	if err := s.Fit(loanTable(t, 150)); err != nil {
		t.Fatal(err)
	}
	return s
}

func sameCoreTable(t *testing.T, label string, a, b *tabular.Table) {
	t.Helper()
	if a.Data.Rows != b.Data.Rows || a.Data.Cols != b.Data.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, b.Data.Rows, b.Data.Cols, a.Data.Rows, a.Data.Cols)
	}
	for i, v := range a.Data.Data {
		if b.Data.Data[i] != v {
			t.Fatalf("%s: element %d diverges: %v vs %v", label, i, b.Data.Data[i], v)
		}
	}
}

// TestOptionsTrainWorkersEquivalence pins the public-API form of the
// worker-invariance guarantee: fitting with TrainWorkers set to any count
// yields bit-identical samples to the single-worker fit.
func TestOptionsTrainWorkersEquivalence(t *testing.T) {
	base, err := fitSiloFuse(t, ddpOptions(1)).Sample(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		out, err := fitSiloFuse(t, ddpOptions(n)).Sample(25)
		if err != nil {
			t.Fatal(err)
		}
		sameCoreTable(t, "train-workers", base, out)
	}
}

// TestSampleBatchAPI pins the batched-sampling surface: with BatchSampling
// on, Sample(n) runs as a one-lane batch and matches SampleBatch([n])[0]
// from an identically fitted model, requests keep their row counts and
// schema, and the per-call lane-seed counter advances so consecutive
// batches draw fresh rows.
func TestSampleBatchAPI(t *testing.T) {
	opts := ddpOptions(2)
	opts.BatchSampling = true

	s := fitSiloFuse(t, opts)
	tables, err := s.SampleBatch([]int{4, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range []int{4, 7, 3} {
		if tables[k].Data.Rows != n {
			t.Fatalf("request %d got %d rows, want %d", k, tables[k].Data.Rows, n)
		}
	}
	again, err := s.SampleBatch([]int{4, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	identical := true
	for i, v := range tables[0].Data.Data {
		if again[0].Data.Data[i] != v {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("consecutive SampleBatch calls returned identical rows; lane-seed counter did not advance")
	}

	s2 := fitSiloFuse(t, opts)
	one, err := s2.Sample(6)
	if err != nil {
		t.Fatal(err)
	}
	s3 := fitSiloFuse(t, opts)
	batch, err := s3.SampleBatch([]int{6})
	if err != nil {
		t.Fatal(err)
	}
	sameCoreTable(t, "sample-vs-batch", batch[0], one)
}
