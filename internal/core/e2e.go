package core

import (
	"fmt"

	"silofuse/internal/silo"
	"silofuse/internal/tabular"
)

// E2E wraps the end-to-end split pipeline as a Synthesizer. With one client
// it is the centralized E2E baseline (paper Fig. 8); with several it is
// E2EDistr (Fig. 9), whose communication grows with the iteration count.
type E2E struct {
	Opts Options
	name string

	bus  silo.Bus
	wire *silo.CodecBus
	pipe *silo.E2EPipeline
}

// NewE2E builds the centralized end-to-end baseline.
func NewE2E(opts Options) *E2E {
	opts.Clients = 1
	opts.Permutation = nil
	opts.SplitWidths = false
	return &E2E{Opts: opts, name: "E2E"}
}

// NewE2EDistr builds the distributed end-to-end baseline.
func NewE2EDistr(opts Options) *E2E {
	if opts.Clients < 1 {
		opts.Clients = 1
	}
	return &E2E{Opts: opts, name: "E2EDistr"}
}

// Name implements Synthesizer.
func (e *E2E) Name() string { return e.name }

// Fit implements Synthesizer: joint training of encoders, backbone and
// decoders. The iteration budget is AEIters+DiffIters to match the stacked
// models' total optimisation work.
func (e *E2E) Fit(train *tabular.Table) error {
	bus, cb, wire, err := chaosBus(e.Opts)
	if err != nil {
		return fmt.Errorf("%s: %w", e.name, err)
	}
	e.bus = bus
	e.wire = wire
	sf := SiloFuse{Opts: e.Opts}
	cfg := sf.pipelineConfig()
	pipe, err := silo.NewE2EPipeline(e.bus, train, cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.name, err)
	}
	pipe.SetRecorder(e.Opts.Recorder)
	e.pipe = pipe
	iters := e.Opts.AEIters + e.Opts.DiffIters
	if cb != nil {
		rc := silo.RecoveryConfig{OnPeerDead: func(peer string) error {
			cb.Revive(peer)
			return nil
		}}
		if _, err := pipe.TrainResilient(iters, 0, rc); err != nil {
			return fmt.Errorf("%s: train: %w", e.name, err)
		}
		return nil
	}
	if _, err := pipe.Train(iters); err != nil {
		return fmt.Errorf("%s: train: %w", e.name, err)
	}
	return nil
}

// Sample implements Synthesizer.
func (e *E2E) Sample(n int) (*tabular.Table, error) {
	if e.pipe == nil {
		return nil, fmt.Errorf("%s: Sample before Fit", e.name)
	}
	return e.pipe.Synthesize(n, e.Opts.DecodeSampling)
}

// CommStats returns the transport statistics accumulated so far.
func (e *E2E) CommStats() silo.Stats {
	if e.bus == nil {
		return silo.Stats{}
	}
	return e.bus.Stats()
}

// WireReport returns the per-kind bytes-vs-error accounting of the wire
// codec layer (nil before Fit).
func (e *E2E) WireReport() map[string]silo.WireKindStats {
	if e.wire == nil {
		return nil
	}
	return e.wire.WireReport()
}
