package core

import (
	"fmt"
	"io"

	"silofuse/internal/autoencoder"
	"silofuse/internal/diffusion"
	"silofuse/internal/silo"
	"silofuse/internal/tabular"
)

// SiloFuse is the paper's contribution: stacked distributed training of
// per-client tabular autoencoders and a coordinator-side latent Gaussian
// DDPM, with synthesis that can stay vertically partitioned. It is also the
// basis of the LatentDiff baseline (the single-client centralized variant).
type SiloFuse struct {
	Opts Options
	name string

	bus  silo.Bus
	pipe *silo.Pipeline
}

// chaosBus builds the training transport for opts: a plain LocalBus, or —
// when a chaos profile is configured — a LocalBus wrapped in a seeded
// ChaosBus (fault injection) and a ResilientBus (retries, dedup,
// checksums). The returned ChaosBus is non-nil only in the latter case; it
// is needed for crash recovery (Revive).
func chaosBus(opts Options) (silo.Bus, *silo.ChaosBus, error) {
	base := silo.NewLocalBus()
	if opts.ChaosProfile == "" || opts.ChaosProfile == "none" {
		return base, nil, nil
	}
	prof, err := silo.ChaosProfileByName(opts.ChaosProfile)
	if err != nil {
		return nil, nil, err
	}
	cb := silo.NewChaosBus(base, opts.ChaosSeed, prof)
	return silo.NewResilientBus(cb, silo.DefaultResilientConfig()), cb, nil
}

// NewSiloFuse builds the distributed model over Opts.Clients silos.
func NewSiloFuse(opts Options) *SiloFuse {
	if opts.Clients < 1 {
		opts.Clients = 1
	}
	return &SiloFuse{Opts: opts, name: "SiloFuse"}
}

// NewLatentDiff builds the centralized latent diffusion baseline: the same
// architecture with all features in one silo and full-width autoencoders.
func NewLatentDiff(opts Options) *SiloFuse {
	opts.Clients = 1
	opts.Permutation = nil
	opts.SplitWidths = false
	s := NewSiloFuse(opts)
	s.name = "LatentDiff"
	return s
}

// Name implements Synthesizer.
func (s *SiloFuse) Name() string { return s.name }

// pipelineConfig translates Options into the silo pipeline configuration.
func (s *SiloFuse) pipelineConfig() silo.PipelineConfig {
	return silo.PipelineConfig{
		Clients:     s.Opts.Clients,
		Permutation: s.Opts.Permutation,
		AE:          autoencoder.Config{Hidden: s.Opts.AEHidden, Embed: s.Opts.AEEmbed, LR: s.Opts.LR},
		Diff: diffusion.ModelConfig{
			Hidden: s.Opts.DiffHidden, Depth: s.Opts.DiffDepth,
			TimeDim: s.Opts.DiffTimeDim, T: s.Opts.T, LR: s.Opts.LR, Dropout: 0.01,
			EMADecay: s.Opts.EMADecay, CosineSch: s.Opts.CosineSchedule,
			DebugSpin: s.Opts.DebugSpin,
		},
		DisableLatentWhitening: s.Opts.DisableLatentWhitening,
		LatentNoiseStd:         s.Opts.LatentNoiseStd,
		AEIters:                s.Opts.AEIters,
		DiffIters:              s.Opts.DiffIters,
		Batch:                  s.Opts.Batch,
		SynthSteps:             s.Opts.SynthSteps,
		Seed:                   s.Opts.Seed,
		SplitWidths:            s.Opts.SplitWidths,
	}
}

// Fit implements Synthesizer: it runs Algorithm 1 over an in-process bus.
// With a chaos profile configured the bus injects faults and training runs
// with phase-level recovery (reviving crashed peers between attempts).
func (s *SiloFuse) Fit(train *tabular.Table) error {
	bus, cb, err := chaosBus(s.Opts)
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	s.bus = bus
	pipe, err := silo.NewPipeline(s.bus, train, s.pipelineConfig())
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	pipe.SetRecorder(s.Opts.Recorder)
	s.pipe = pipe
	if cb != nil {
		rc := silo.RecoveryConfig{OnPeerDead: func(peer string) error {
			cb.Revive(peer)
			return nil
		}}
		if _, _, _, err := pipe.TrainStackedResilient(rc); err != nil {
			return fmt.Errorf("%s: train: %w", s.name, err)
		}
		return nil
	}
	if _, _, err := pipe.TrainStacked(); err != nil {
		return fmt.Errorf("%s: train: %w", s.name, err)
	}
	return nil
}

// Sample implements Synthesizer using the share-post-generation mode.
func (s *SiloFuse) Sample(n int) (*tabular.Table, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("%s: Sample before Fit", s.name)
	}
	return s.pipe.SynthesizeShared(0, n, s.Opts.DecodeSampling)
}

// SamplePartitioned draws n rows but keeps the result vertically
// partitioned per client — the paper's strong-privacy synthesis mode.
func (s *SiloFuse) SamplePartitioned(n int) ([]*tabular.Table, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("%s: SamplePartitioned before Fit", s.name)
	}
	return s.pipe.SynthesizePartitioned(0, n, s.Opts.DecodeSampling)
}

// CommStats returns the transport statistics accumulated so far.
func (s *SiloFuse) CommStats() silo.Stats {
	if s.bus == nil {
		return silo.Stats{}
	}
	return s.bus.Stats()
}

// SetSynthSteps changes the number of inference denoising steps after
// fitting (used by the Table VII privacy-sensitivity sweep).
func (s *SiloFuse) SetSynthSteps(steps int) {
	s.Opts.SynthSteps = steps
	if s.pipe != nil {
		s.pipe.Cfg.SynthSteps = steps
	}
}

// Save persists the trained model state (all client autoencoders, the
// coordinator backbone and latent scaler) to w.
func (s *SiloFuse) Save(w io.Writer) error {
	if s.pipe == nil {
		return fmt.Errorf("%s: Save before Fit", s.name)
	}
	return s.pipe.SaveState(w)
}

// Load restores state written by Save. It requires the original training
// table (which supplies the schema and the featuriser statistics the
// architectures were built with) and the same Options.
func (s *SiloFuse) Load(train *tabular.Table, r io.Reader) error {
	s.bus = silo.NewLocalBus() // restored models synthesize fault-free
	pipe, err := silo.NewPipeline(s.bus, train, s.pipelineConfig())
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	if err := pipe.LoadState(r); err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	pipe.SetRecorder(s.Opts.Recorder)
	s.pipe = pipe
	return nil
}
