package core

import (
	"fmt"
	"io"

	"silofuse/internal/autoencoder"
	"silofuse/internal/diffusion"
	"silofuse/internal/silo"
	"silofuse/internal/silo/codec"
	"silofuse/internal/tabular"
)

// SiloFuse is the paper's contribution: stacked distributed training of
// per-client tabular autoencoders and a coordinator-side latent Gaussian
// DDPM, with synthesis that can stay vertically partitioned. It is also the
// basis of the LatentDiff baseline (the single-client centralized variant).
type SiloFuse struct {
	Opts Options
	name string

	bus  silo.Bus
	wire *silo.CodecBus
	pipe *silo.Pipeline

	// sampleCalls counts batched-sampling invocations; each call derives a
	// distinct lane-rng seed from it so successive Sample calls draw fresh
	// rows while staying reproducible for a fixed call sequence.
	sampleCalls int64
}

// chaosBus builds the training transport for opts: a LocalBus, optionally
// wrapped — when a chaos profile is configured — in a seeded ChaosBus
// (fault injection) and a ResilientBus (retries, dedup, checksums), and
// always topped by a CodecBus framing dense tensor payloads through the
// configured wire codec (f64 by default, which is bit-lossless and keeps
// byte accounting identical to the native payload model). The returned
// ChaosBus is non-nil only under a chaos profile; it is needed for crash
// recovery (Revive). The CodecBus is returned for its per-kind
// bytes-vs-error report.
// validComputePrecision rejects anything but the two supported compute
// tiers, so a typo fails loudly at Fit instead of silently running f64.
func validComputePrecision(p string) error {
	switch p {
	case "", "f64", "f32":
		return nil
	}
	return fmt.Errorf("unknown compute precision %q (want f64 or f32)", p)
}

func chaosBus(opts Options) (silo.Bus, *silo.ChaosBus, *silo.CodecBus, error) {
	id, err := codec.ByName(opts.WireCodec)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := validComputePrecision(opts.ComputePrecision); err != nil {
		return nil, nil, nil, err
	}
	var bus silo.Bus = silo.NewLocalBus()
	var cb *silo.ChaosBus
	if opts.ChaosProfile != "" && opts.ChaosProfile != "none" {
		prof, err := silo.ChaosProfileByName(opts.ChaosProfile)
		if err != nil {
			return nil, nil, nil, err
		}
		cb = silo.NewChaosBus(bus, opts.ChaosSeed, prof)
		bus = silo.NewResilientBus(cb, silo.DefaultResilientConfig())
	}
	wire := silo.NewCodecBus(bus, id)
	return wire, cb, wire, nil
}

// NewSiloFuse builds the distributed model over Opts.Clients silos.
func NewSiloFuse(opts Options) *SiloFuse {
	if opts.Clients < 1 {
		opts.Clients = 1
	}
	return &SiloFuse{Opts: opts, name: "SiloFuse"}
}

// NewLatentDiff builds the centralized latent diffusion baseline: the same
// architecture with all features in one silo and full-width autoencoders.
func NewLatentDiff(opts Options) *SiloFuse {
	opts.Clients = 1
	opts.Permutation = nil
	opts.SplitWidths = false
	s := NewSiloFuse(opts)
	s.name = "LatentDiff"
	return s
}

// Name implements Synthesizer.
func (s *SiloFuse) Name() string { return s.name }

// pipelineConfig translates Options into the silo pipeline configuration.
func (s *SiloFuse) pipelineConfig() silo.PipelineConfig {
	return silo.PipelineConfig{
		Clients:     s.Opts.Clients,
		Permutation: s.Opts.Permutation,
		AE: autoencoder.Config{
			Hidden: s.Opts.AEHidden, Embed: s.Opts.AEEmbed, LR: s.Opts.LR,
			DecodePrecision: s.Opts.ComputePrecision,
		},
		Diff: diffusion.ModelConfig{
			Hidden: s.Opts.DiffHidden, Depth: s.Opts.DiffDepth,
			TimeDim: s.Opts.DiffTimeDim, T: s.Opts.T, LR: s.Opts.LR, Dropout: 0.01,
			EMADecay: s.Opts.EMADecay, CosineSch: s.Opts.CosineSchedule,
			DebugSpin: s.Opts.DebugSpin, Precision: s.Opts.ComputePrecision,
		},
		DisableLatentWhitening: s.Opts.DisableLatentWhitening,
		LatentNoiseStd:         s.Opts.LatentNoiseStd,
		AEIters:                s.Opts.AEIters,
		DiffIters:              s.Opts.DiffIters,
		Batch:                  s.Opts.Batch,
		SynthSteps:             s.Opts.SynthSteps,
		Seed:                   s.Opts.Seed,
		SplitWidths:            s.Opts.SplitWidths,
		TrainWorkers:           s.Opts.TrainWorkers,
		TrainShards:            s.Opts.TrainShards,
	}
}

// Fit implements Synthesizer: it runs Algorithm 1 over an in-process bus.
// With a chaos profile configured the bus injects faults and training runs
// with phase-level recovery (reviving crashed peers between attempts).
func (s *SiloFuse) Fit(train *tabular.Table) error {
	bus, cb, wire, err := chaosBus(s.Opts)
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	s.bus = bus
	s.wire = wire
	pipe, err := silo.NewPipeline(s.bus, train, s.pipelineConfig())
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	pipe.SetRecorder(s.Opts.Recorder)
	s.pipe = pipe
	if cb != nil {
		rc := silo.RecoveryConfig{OnPeerDead: func(peer string) error {
			cb.Revive(peer)
			return nil
		}}
		if _, _, _, err := pipe.TrainStackedResilient(rc); err != nil {
			return fmt.Errorf("%s: train: %w", s.name, err)
		}
		return nil
	}
	if _, _, err := pipe.TrainStacked(); err != nil {
		return fmt.Errorf("%s: train: %w", s.name, err)
	}
	return nil
}

// Sample implements Synthesizer using the share-post-generation mode. With
// BatchSampling enabled the call runs as a one-lane batch through the
// batched sampler.
func (s *SiloFuse) Sample(n int) (*tabular.Table, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("%s: Sample before Fit", s.name)
	}
	if s.Opts.BatchSampling {
		tables, err := s.SampleBatch([]int{n})
		if err != nil {
			return nil, err
		}
		return tables[0], nil
	}
	return s.pipe.SynthesizeShared(0, n, s.Opts.DecodeSampling)
}

// SampleBatch serves len(ns) concurrent synthesis requests in one stacked
// denoising round; request k receives ns[k] rows. Each call advances the
// lane-seed counter, so repeated batches draw fresh rows while a fixed call
// sequence stays reproducible.
func (s *SiloFuse) SampleBatch(ns []int) ([]*tabular.Table, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("%s: SampleBatch before Fit", s.name)
	}
	seed := s.Opts.Seed + s.sampleCalls<<32
	s.sampleCalls++
	return s.pipe.SynthesizeSharedBatch(0, seed, ns, s.Opts.DecodeSampling)
}

// SamplePartitioned draws n rows but keeps the result vertically
// partitioned per client — the paper's strong-privacy synthesis mode.
func (s *SiloFuse) SamplePartitioned(n int) ([]*tabular.Table, error) {
	if s.pipe == nil {
		return nil, fmt.Errorf("%s: SamplePartitioned before Fit", s.name)
	}
	return s.pipe.SynthesizePartitioned(0, n, s.Opts.DecodeSampling)
}

// CommStats returns the transport statistics accumulated so far.
func (s *SiloFuse) CommStats() silo.Stats {
	if s.bus == nil {
		return silo.Stats{}
	}
	return s.bus.Stats()
}

// WireReport returns the per-kind bytes-vs-error accounting of the wire
// codec layer (nil before Fit).
func (s *SiloFuse) WireReport() map[string]silo.WireKindStats {
	if s.wire == nil {
		return nil
	}
	return s.wire.WireReport()
}

// SetSynthSteps changes the number of inference denoising steps after
// fitting (used by the Table VII privacy-sensitivity sweep).
func (s *SiloFuse) SetSynthSteps(steps int) {
	s.Opts.SynthSteps = steps
	if s.pipe != nil {
		s.pipe.Cfg.SynthSteps = steps
	}
}

// Save persists the trained model state (all client autoencoders, the
// coordinator backbone and latent scaler) to w.
func (s *SiloFuse) Save(w io.Writer) error {
	if s.pipe == nil {
		return fmt.Errorf("%s: Save before Fit", s.name)
	}
	return s.pipe.SaveState(w)
}

// Load restores state written by Save. It requires the original training
// table (which supplies the schema and the featuriser statistics the
// architectures were built with) and the same Options.
func (s *SiloFuse) Load(train *tabular.Table, r io.Reader) error {
	id, err := codec.ByName(s.Opts.WireCodec)
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	// Restored models synthesize fault-free; the codec layer still frames
	// synthesis traffic so byte accounting matches a trained instance.
	s.wire = silo.NewCodecBus(silo.NewLocalBus(), id)
	s.bus = s.wire
	pipe, err := silo.NewPipeline(s.bus, train, s.pipelineConfig())
	if err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	if err := pipe.LoadState(r); err != nil {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	pipe.SetRecorder(s.Opts.Recorder)
	s.pipe = pipe
	return nil
}
