//silofuse:bitwise-ok merge/delta contracts pin exact count, sum, and bound arithmetic
package obs

import (
	"math"
	"testing"
)

// TestQuantileEdgeCases pins the histogram's boundary behavior: empty
// histograms report zeros everywhere, and a single observation reports
// itself at every quantile (bucket interpolation clamped to exact bounds).
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if s := h.Stats(); s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty stats = %+v, want zero value", s)
	}

	h.Observe(0.37)
	s := h.Stats()
	if s.Count != 1 || s.Min != 0.37 || s.Max != 0.37 {
		t.Fatalf("single-observation stats = %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0.37 {
			t.Fatalf("single-observation q%.2f = %v, want exactly 0.37", q, got)
		}
	}

	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}
}

// TestMergeHistogramStats checks the federation merge: counts and sums add
// exactly, min/max are preserved exactly, quantiles stay within the merged
// bounds, and an empty side is the identity.
func TestMergeHistogramStats(t *testing.T) {
	a := HistogramStats{Count: 3, Sum: 0.6, Min: 0.1, Max: 0.3, P50: 0.2, P95: 0.3, P99: 0.3}
	b := HistogramStats{Count: 1, Sum: 0.9, Min: 0.9, Max: 0.9, P50: 0.9, P95: 0.9, P99: 0.9}

	m := MergeHistogramStats(a, b)
	if m.Count != 4 || math.Abs(m.Sum-1.5) > 1e-12 {
		t.Fatalf("merged count/sum = %d/%v, want 4/1.5", m.Count, m.Sum)
	}
	if m.Min != 0.1 || m.Max != 0.9 {
		t.Fatalf("merged bounds = [%v, %v], want [0.1, 0.9] preserved exactly", m.Min, m.Max)
	}
	for name, q := range map[string]float64{"p50": m.P50, "p95": m.P95, "p99": m.P99} {
		if q < m.Min || q > m.Max {
			t.Fatalf("merged %s = %v escapes [%v, %v]", name, q, m.Min, m.Max)
		}
	}

	if got := MergeHistogramStats(HistogramStats{}, a); got != a {
		t.Fatalf("merge with empty left = %+v, want right unchanged", got)
	}
	if got := MergeHistogramStats(a, HistogramStats{}); got != a {
		t.Fatalf("merge with empty right = %+v, want left unchanged", got)
	}
	if got := MergeHistogramStats(HistogramStats{}, HistogramStats{}); got.Count != 0 {
		t.Fatalf("merge of empties = %+v, want zero value", got)
	}
}

// TestDeltaHistogramStats checks the flush-delta contract: exact count/sum
// differences, a zero-value result when nothing new was observed, and the
// full summary when there is no previous baseline.
func TestDeltaHistogramStats(t *testing.T) {
	prev := HistogramStats{Count: 2, Sum: 0.4, Min: 0.1, Max: 0.3, P50: 0.2}
	cur := HistogramStats{Count: 5, Sum: 1.4, Min: 0.1, Max: 0.5, P50: 0.25}

	d := DeltaHistogramStats(prev, cur)
	if d.Count != 3 || math.Abs(d.Sum-1.0) > 1e-12 {
		t.Fatalf("delta count/sum = %d/%v, want 3/1.0", d.Count, d.Sum)
	}
	if d.Max != 0.5 || d.P50 != 0.25 {
		t.Fatalf("delta must carry cur's bounds/quantiles: %+v", d)
	}

	if d := DeltaHistogramStats(cur, cur); d.Count != 0 {
		t.Fatalf("idle delta = %+v, want zero value", d)
	}
	if d := DeltaHistogramStats(HistogramStats{}, cur); d != cur {
		t.Fatalf("delta without baseline = %+v, want cur", d)
	}
}
