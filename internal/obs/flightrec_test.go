package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFlightRecorderRing checks the ring semantics: entries before capacity
// come back in order, and past capacity the oldest are overwritten so the
// ring always holds the most recent tail.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 3; i++ {
		fr.Note("send", fmt.Sprintf("kind%d", i), "", float64(i))
	}
	if fr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", fr.Len())
	}
	es := fr.Entries()
	if len(es) != 3 || es[0].Name != "kind0" || es[2].Name != "kind2" {
		t.Fatalf("pre-wrap entries = %+v", es)
	}

	for i := 3; i < 10; i++ {
		fr.Note("send", fmt.Sprintf("kind%d", i), "", float64(i))
	}
	if fr.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want capacity 4", fr.Len())
	}
	es = fr.Entries()
	for i, e := range es {
		want := fmt.Sprintf("kind%d", 6+i)
		if e.Name != want {
			t.Fatalf("entry %d = %q, want %q (oldest-first tail)", i, e.Name, want)
		}
		if i > 0 && es[i].Seq != es[i-1].Seq+1 {
			t.Fatalf("sequence not monotonic across wrap: %+v", es)
		}
	}
}

// TestFlightRecorderNilSafe checks the package's nil-recorder contract.
func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Note("send", "latents", "", 1)
	if fr.Len() != 0 || fr.Entries() != nil {
		t.Fatal("nil flight recorder must be inert")
	}
	var buf bytes.Buffer
	if err := fr.WriteDump(&buf, "c0", "test"); err != nil {
		t.Fatal(err)
	}
	var d PostmortemDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("nil dump is not valid JSON: %v", err)
	}
	if d.Party != "c0" || len(d.Entries) != 0 {
		t.Fatalf("nil dump = %+v, want empty c0 document", d)
	}
}

// TestDumpPostmortem checks the on-disk dump: the file lands at
// runDir/postmortem/<party>.json and parses back with cause and entries.
func TestDumpPostmortem(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(8)
	fr.Note("send", "latents", "", 2048)
	fr.Note("peer-down", "", "c1", 0)

	path, err := DumpPostmortem(dir, "coord", fr, fmt.Errorf("silo: peer c1 dead"))
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "postmortem", "coord.json"); path != want {
		t.Fatalf("path = %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d PostmortemDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("postmortem is not valid JSON: %v", err)
	}
	if d.Party != "coord" || d.Cause != "silo: peer c1 dead" {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Entries) != 2 || d.Entries[1].Op != "peer-down" || d.Entries[1].Peer != "c1" {
		t.Fatalf("dump entries = %+v", d.Entries)
	}
}

// TestRecorderFlightIntegration checks that recorder telemetry calls land in
// the attached flight ring with their operation labels.
func TestRecorderFlightIntegration(t *testing.T) {
	rec := NewRecorder()
	fr := NewFlightRecorder(16)
	rec.SetFlight(fr)

	rec.Message("latents", 1000, 0)
	rec.PeerDown("c2")
	rec.StartSpan("ae-train").End()

	ops := map[string]bool{}
	for _, e := range fr.Entries() {
		ops[e.Op] = true
	}
	for _, want := range []string{"send", "peer-down", "span"} {
		if !ops[want] {
			t.Errorf("flight ring missing op %q (have %v)", want, ops)
		}
	}
}
