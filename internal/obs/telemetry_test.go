//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"silofuse/internal/obs/profile"
)

// TestWritePrometheusGolden pins the exposition format: # HELP and # TYPE
// headers, name sanitisation of message-kind suffixes, exact quantiles for a
// constant histogram, and deterministic family ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus_bytes_total_synth-req").Add(96)
	r.Gauge("diffusion_loss").Set(0.5)
	for i := 0; i < 10; i++ {
		r.Histogram("ae_step_seconds").Observe(0.25)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP ae_step_seconds silofuse metric ae_step_seconds",
		"# TYPE ae_step_seconds summary",
		`ae_step_seconds{quantile="0.5"} 0.25`,
		`ae_step_seconds{quantile="0.95"} 0.25`,
		`ae_step_seconds{quantile="0.99"} 0.25`,
		"ae_step_seconds_sum 2.5",
		"ae_step_seconds_count 10",
		"# HELP bus_bytes_total_synth_req modeled wire bytes through the silo bus",
		"# TYPE bus_bytes_total_synth_req counter",
		"bus_bytes_total_synth_req 96",
		"# HELP diffusion_loss silofuse metric diffusion_loss",
		"# TYPE diffusion_loss gauge",
		"diffusion_loss 0.5",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPromNameSanitisation(t *testing.T) {
	for in, want := range map[string]string{
		"bus_bytes_total_synth-req": "bus_bytes_total_synth_req",
		"ok_name:with_colon":        "ok_name:with_colon",
		"9starts_with_digit":        "_9starts_with_digit",
		"spaces and.dots":           "spaces_and_dots",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTelemetryEndpoints starts the live endpoint on an ephemeral port and
// exercises /metrics, /healthz, /runs and the path-traversal guard.
func TestTelemetryEndpoints(t *testing.T) {
	runs := t.TempDir()
	dir := filepath.Join(runs, "demo")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"run":"demo"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(`{"type":"run-start"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A directory without a manifest must not be listed as a run.
	if err := os.MkdirAll(filepath.Join(runs, "stray"), 0o755); err != nil {
		t.Fatal(err)
	}

	prof, err := profile.New(profile.Config{Dir: t.TempDir(), Heap: true, Phases: []string{"ae-train"}})
	if err != nil {
		t.Fatal(err)
	}
	prof.Start("ae-train")
	prof.Stop("ae-train")

	rec := NewRecorder()
	rec.Message("latents", 4096, time.Millisecond)
	rec.TrainStep("diffusion", 0.5, 32, time.Millisecond)
	srv, err := StartTelemetry("127.0.0.1:0", TelemetryConfig{
		Rec:           rec,
		RunsDir:       runs,
		PhaseProfiles: prof,
		Health:        func() map[string]any { return map[string]any{"peers": 3} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"bus_bytes_total_latents 4096",
		"# TYPE diffusion_step_seconds summary",
		`diffusion_step_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health["status"] != "ok" || health["peers"] != float64(3) {
		t.Fatalf("/healthz = %v", health)
	}
	if _, ok := health["go_version"]; !ok {
		t.Fatalf("/healthz missing go_version: %v", health)
	}

	code, body, _ = get("/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs status = %d", code)
	}
	var runsResp struct{ Runs []string }
	if err := json.Unmarshal([]byte(body), &runsResp); err != nil {
		t.Fatal(err)
	}
	if len(runsResp.Runs) != 1 || runsResp.Runs[0] != "demo" {
		t.Fatalf("/runs = %v, want [demo]", runsResp.Runs)
	}

	if code, body, _ = get("/runs/demo"); code != http.StatusOK || !strings.Contains(body, `"run"`) {
		t.Fatalf("/runs/demo = %d %q", code, body)
	}
	if code, body, _ = get("/runs/demo/events"); code != http.StatusOK || !strings.Contains(body, "run-start") {
		t.Fatalf("/runs/demo/events = %d %q", code, body)
	}
	for _, path := range []string{"/runs/../secret", "/runs/%2e%2e/secret", "/runs/a/b/c"} {
		if code, _, _ = get(path); code == http.StatusOK {
			t.Fatalf("GET %s = 200, want rejection", path)
		}
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", code)
	}

	code, body, _ = get("/debug/phaseprofiles")
	if code != http.StatusOK || !strings.Contains(body, "ae-train.heap.pb.gz") {
		t.Fatalf("/debug/phaseprofiles = %d %q", code, body)
	}
	if code, body, _ = get("/debug/phaseprofiles/ae-train.heap.pb.gz"); code != http.StatusOK {
		t.Fatalf("/debug/phaseprofiles/ae-train.heap.pb.gz = %d %q", code, body)
	}
}

func TestEventWriter(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Emit("run-start", map[string]any{"run": "x"})
	ew.Emit("train", map[string]any{"loss": 0.5, "type": "overridden"})
	var nilEW *EventWriter
	nilEW.Emit("ignored", nil) // nil sink must be a no-op
	if err := nilEW.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["seq"] != float64(i) {
			t.Fatalf("line %d seq = %v, want %d", i, rec["seq"], i)
		}
		if _, err := time.Parse(time.RFC3339Nano, rec["time"].(string)); err != nil {
			t.Fatalf("line %d time: %v", i, err)
		}
		if _, ok := rec["t_sec"].(float64); !ok {
			t.Fatalf("line %d missing t_sec: %v", i, rec)
		}
	}
	var second map[string]any
	_ = json.Unmarshal([]byte(lines[1]), &second)
	if second["type"] != "train" {
		t.Fatalf("reserved key type not enforced: %v", second)
	}
}

func TestEventWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ew.Emit("train", map[string]any{"i": i})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	seen := make(map[float64]bool)
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %v", err)
		}
		seq := rec["seq"].(float64)
		if seen[seq] {
			t.Fatalf("duplicate seq %v", seq)
		}
		seen[seq] = true
	}
}

// TestOpenEventLogAppends: successive writers on the same path accumulate.
func TestOpenEventLogAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "events.jsonl")
	for i := 0; i < 2; i++ {
		ew, err := OpenEventLog(path)
		if err != nil {
			t.Fatal(err)
		}
		ew.Emit("run-start", nil)
		if err := ew.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("appended lines = %d, want 2", n)
	}
}

// TestRecorderEvents: SetEvents streams train records at the configured
// cadence and phase records when spans end.
func TestRecorderEvents(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder()
	r.EventEvery = 2
	r.SetEvents(NewEventWriter(&buf))
	sp := r.StartSpan("ae-train")
	for i := 0; i < 4; i++ {
		r.TrainStep("ae", 1.0, 32, time.Millisecond)
	}
	r.Message("latents", 2048, time.Microsecond)
	sp.SetAttr("clients", 2)
	sp.End()

	var train, phase int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec["type"] {
		case "train":
			train++
			if rec["stage"] != "ae" {
				t.Fatalf("train event stage = %v", rec["stage"])
			}
		case "phase":
			phase++
			if rec["name"] != "ae-train" {
				t.Fatalf("phase event name = %v", rec["name"])
			}
			byKind, ok := rec["bus_bytes_by_kind"].(map[string]any)
			if !ok || byKind["latents"] != float64(2048) {
				t.Fatalf("phase event bus_bytes_by_kind = %v", rec["bus_bytes_by_kind"])
			}
		}
	}
	if train != 2 { // steps 2 and 4 with EventEvery=2
		t.Fatalf("train events = %d, want 2", train)
	}
	if phase != 1 {
		t.Fatalf("phase events = %d, want 1", phase)
	}
}

// TestNextFlowUnique: flow ids never collide across parties because the pid
// occupies the high bits.
func TestNextFlowUnique(t *testing.T) {
	reg := NewRegistry()
	a := NewPartyRecorder(reg, 1, "coord")
	b := NewPartyRecorder(reg, 2, "c0")
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		for _, r := range []*Recorder{a, b} {
			id := r.NextFlow()
			if id == 0 || seen[id] {
				t.Fatalf("flow id %d duplicated or zero", id)
			}
			seen[id] = true
		}
	}
	var nilRec *Recorder
	if nilRec.NextFlow() != 0 {
		t.Fatal("nil recorder must issue zero flow ids")
	}
}

// mergeFixture builds a trace document with a fixed epoch for deterministic
// merge tests.
func mergeFixture(t *testing.T, pid int, name string, epoch int64, flowID uint64, send bool) *bytes.Buffer {
	t.Helper()
	tr := NewTracer()
	tr.SetProcess(pid, name)
	tr.epoch = epoch // fixed for determinism; fields are package-internal
	sp := tr.StartSpan("work")
	if send {
		tr.FlowSend("latents", flowID)
	} else {
		tr.FlowRecv("latents", flowID)
	}
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestMergeChromeTraces: two per-party traces merge into one document with
// both process lanes labelled, timestamps aligned by epoch, and the flow
// start/finish pair stitched by id.
func TestMergeChromeTraces(t *testing.T) {
	const flowID = uint64(1)<<32 | 7
	coord := mergeFixture(t, 1, "coord", 1_000_000, flowID, true)
	client := mergeFixture(t, 2, "c0", 1_500_000, flowID, false)

	var out bytes.Buffer
	if err := MergeChromeTraces(&out, coord, client); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int            `json:"pid"`
			ID    uint64         `json:"id"`
			BP    string         `json:"bp"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		EpochMicros int64 `json:"epochMicros"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.EpochMicros != 1_000_000 {
		t.Fatalf("merged epoch = %d, want the earliest input epoch", doc.EpochMicros)
	}

	pids := make(map[int]bool)
	lanes := make(map[string]int)
	var flowPhases []string
	minTSByPID := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		if ev.Phase == "M" && ev.Name == "process_name" {
			lanes[ev.Args["name"].(string)] = ev.PID
		}
		if ev.ID == flowID {
			flowPhases = append(flowPhases, ev.Phase)
			if ev.Phase == "f" && ev.BP != "e" {
				t.Fatalf("flow finish bp = %q, want e", ev.BP)
			}
		}
		if ev.Phase != "M" {
			if cur, ok := minTSByPID[ev.PID]; !ok || ev.TS < cur {
				minTSByPID[ev.PID] = ev.TS
			}
		}
	}
	if len(pids) != 2 || !pids[1] || !pids[2] {
		t.Fatalf("merged pids = %v, want {1, 2}", pids)
	}
	if lanes["coord"] != 1 || lanes["c0"] != 2 {
		t.Fatalf("process lanes = %v", lanes)
	}
	if len(flowPhases) != 2 {
		t.Fatalf("flow events = %v, want one s and one f", flowPhases)
	}
	// The later-starting process's events shift by the epoch delta (500ms).
	if minTSByPID[2] < 500_000 {
		t.Fatalf("client events not shifted: min ts = %v", minTSByPID[2])
	}
	// Events are globally sorted by timestamp.
	prev := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.TS < prev {
			t.Fatalf("merged ts not sorted: %v after %v", ev.TS, prev)
		}
		prev = ev.TS
	}
}

// TestMergeChromeTracesPIDCollision: inputs that reused the same pid are
// remapped onto distinct lanes instead of being conflated.
func TestMergeChromeTracesPIDCollision(t *testing.T) {
	a := mergeFixture(t, 1, "a", 1_000_000, 0, true)
	b := mergeFixture(t, 1, "b", 1_000_000, 0, true)
	var out bytes.Buffer
	if err := MergeChromeTraces(&out, a, b); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("colliding inputs share lanes: pids = %v", pids)
	}
}

// TestWriteChromeTraceProcessName: SetProcess prepends exactly one metadata
// record, and the default tracer emits none (pinned by TestChromeTraceShape).
func TestWriteChromeTraceProcessName(t *testing.T) {
	tr := NewTracer()
	tr.SetProcess(4, "c2")
	tr.StartSpan("x").End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want metadata + B + E", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Phase != "M" || meta.Name != "process_name" || meta.PID != 4 ||
		fmt.Sprint(meta.Args["name"]) != "c2" {
		t.Fatalf("metadata record = %+v", meta)
	}
	for _, ev := range doc.TraceEvents[1:] {
		if ev.PID != 4 {
			t.Fatalf("span event pid = %d, want 4", ev.PID)
		}
	}
}
