package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestFleetAggregatorConcurrentIngest drives one writer goroutine per party
// (monotonic Seq, so no gap counting) against concurrent readers walking
// every query surface. Under -race this exercises the aggregator's lock; the
// final assertion pins that counter deltas accumulate without loss.
func TestFleetAggregatorConcurrentIngest(t *testing.T) {
	const parties, updates = 4, 250
	agg := NewFleetAggregator()

	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			party := fmt.Sprintf("c%d", p)
			for seq := uint64(1); seq <= updates; seq++ {
				agg.Ingest(&TelemetryUpdate{
					Party:    party,
					Seq:      seq,
					Counters: map[string]int64{"bus.messages": 3},
					Gauges:   map[string]float64{"epoch": float64(seq)},
				})
			}
		}(p)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				agg.FleetHealth()
				agg.Faults()
				for _, party := range agg.Parties() {
					agg.PartySnapshot(party)
				}
				_ = agg.WritePrometheus(io.Discard, "coord", Snapshot{})
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := len(agg.Parties()); got != parties {
		t.Fatalf("Parties() reported %d parties, want %d", got, parties)
	}
	for p := 0; p < parties; p++ {
		party := fmt.Sprintf("c%d", p)
		snap := agg.PartySnapshot(party)
		if got, want := snap.Counters["bus.messages"], int64(3*updates); got != want {
			t.Fatalf("party %s counter bus.messages = %d, want %d", party, got, want)
		}
		//silofuse:bitwise-ok gauge values are stored verbatim, so the final write must match exactly
		if got := snap.Gauges["epoch"]; got != float64(updates) {
			t.Fatalf("party %s gauge epoch = %v, want %v", party, got, float64(updates))
		}
	}
	health := agg.FleetHealth()
	if got, ok := health["parties"]; ok {
		if n, isInt := got.(int); isInt && n != parties {
			t.Fatalf("FleetHealth parties = %d, want %d", n, parties)
		}
	}
}
