package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadEventsTruncated pins the crash-truncation contract: every
// newline-terminated line must parse, a partial trailing line (the write a
// crash interrupted) is dropped silently, and a complete trailing line that
// merely lost its newline is still recovered.
func TestReadEventsTruncated(t *testing.T) {
	full := `{"type":"run-start","run":"x"}` + "\n" + `{"type":"train","loss":1.5}` + "\n"

	events, err := ReadEvents(strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("clean log: %d events, want 2", len(events))
	}

	// Crash mid-write: the trailing fragment is not valid JSON.
	events, err = ReadEvents(strings.NewReader(full + `{"type":"tra`))
	if err != nil {
		t.Fatalf("truncated trailing line must not error: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("truncated log: %d events, want 2 (fragment dropped)", len(events))
	}

	// Crash between the write and the newline: the trailing line is complete
	// JSON and must be kept.
	events, err = ReadEvents(strings.NewReader(full + `{"type":"phase","name":"synthesis"}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[2]["name"] != "synthesis" {
		t.Fatalf("complete unterminated line dropped: %d events %v", len(events), events)
	}

	// A malformed interior line is corruption, not truncation: error out.
	if _, err := ReadEvents(strings.NewReader(`{"type":"a"}` + "\n" + `garbage` + "\n" + `{"type":"b"}` + "\n")); err == nil {
		t.Fatal("malformed interior line must error")
	}

	if events, err := ReadEvents(strings.NewReader("")); err != nil || len(events) != 0 {
		t.Fatalf("empty log: events=%v err=%v", events, err)
	}
}

// TestReadEventsFile checks the file wrapper against a real truncated log.
func TestReadEventsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	data := `{"type":"run-start"}` + "\n" + `{"type":"train","stage":"ae"}` + "\n" + `{"type":"pha`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEventsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1]["stage"] != "ae" {
		t.Fatalf("events = %v, want the 2 complete lines", events)
	}
}

// TestEventWriterSyncOnRunEnd checks that a run-end emit forces the log to
// durable storage: the file contents are complete immediately after Emit,
// before Close.
func TestEventWriterSyncOnRunEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ew, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ew.Close()
	ew.Emit("run-start", map[string]any{"run": "x"})
	ew.Emit("run-end", map[string]any{"run": "x"})

	events, err := ReadEventsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1]["type"] != "run-end" {
		t.Fatalf("events after run-end sync = %v, want both lines on disk", events)
	}
}
