package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"silofuse/internal/obs/profile"
)

// promName sanitises a registry metric name into the Prometheus exposition
// charset [a-zA-Z0-9_:] (message-kind suffixes like "synth-req" carry '-').
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// helpHints maps metric-name prefixes to exposition help text. Registry
// metrics are created ad hoc by name, so help is keyed on the naming
// conventions the recorder uses rather than a central declaration table.
var helpHints = []struct{ prefix, help string }{
	{"bus_bytes", "modeled wire bytes through the silo bus"},
	{"bus_messages", "messages through the silo bus"},
	{"bus_retries", "resilient-bus retransmissions"},
	{"bus_redeliveries", "duplicate deliveries suppressed by the resilient bus"},
	{"bus_corrupt", "payload checksum failures detected on receive"},
	{"bus_reconnects", "transport reconnect attempts"},
	{"peer_down", "peer-down transitions observed"},
	{"train_step", "training step latency in seconds"},
	{"train_loss", "training loss by phase"},
	{"rows_synth", "synthetic rows produced"},
	{"alloc_", "allocation telemetry from the benchmark harness"},
	{"telemetry_", "telemetry federation bookkeeping"},
}

// helpFor returns the # HELP text for a (sanitised) metric family name.
func helpFor(name string) string {
	for _, h := range helpHints {
		if strings.HasPrefix(name, h.prefix) {
			return h.help
		}
	}
	return "silofuse metric " + name
}

// WritePrometheus writes the snapshot in Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples with # HELP and
// # TYPE headers, histograms as summaries with p50/p95/p99 quantile samples
// plus the conventional _sum and _count series. Families are sorted by name,
// so the output is deterministic for a given snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	type family struct{ name, text string }
	fams := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		n := promName(name)
		fams = append(fams, family{n, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, helpFor(n), n, n, v)})
	}
	for name, v := range s.Gauges {
		n := promName(name)
		fams = append(fams, family{n, fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %s\n", n, helpFor(n), n, n, promFloat(v))})
	}
	for name, h := range s.Histograms {
		n := promName(name)
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", n, helpFor(n), n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", n, promFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %s\n", n, promFloat(h.P95))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", n, promFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		fams = append(fams, family{n, b.String()})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := io.WriteString(w, f.text); err != nil {
			return err
		}
	}
	return nil
}

// TelemetryConfig wires a live telemetry endpoint to a run's state.
type TelemetryConfig struct {
	// Rec supplies /metrics; nil serves an empty exposition.
	Rec *Recorder
	// Health, when non-nil, contributes fields to /healthz (e.g. per-peer
	// liveness derived from transport stats). Called per request.
	Health func() map[string]any
	// RunsDir is the directory holding per-run subdirectories
	// (results/<run>/manifest.json); empty disables /runs.
	RunsDir string
	// Fleet, when non-nil, turns /metrics into the fleet-wide exposition
	// (every series labelled with its party), makes /trace serve the live
	// merged Chrome trace, and adds federation liveness to /healthz.
	Fleet *FleetAggregator
	// FleetLocal names the party whose series come from Rec's own registry in
	// the fleet exposition (usually the coordinator); empty means federated
	// parties only.
	FleetLocal string
	// Flight, when non-nil, enables /debug/flightrecorder: an on-demand dump
	// of the recent-operations ring.
	Flight *FlightRecorder
	// PhaseProfiles, when non-nil, enables /debug/phaseprofiles: the live
	// index of phase-scoped profiles and the captured .pb.gz files.
	PhaseProfiles *profile.PhaseProfiler
}

// NewTelemetryMux builds the live telemetry handler set:
//
//	/metrics            Prometheus text exposition of the recorder's registry
//	/healthz            JSON liveness (uptime, runtime, caller health fields)
//	/runs               JSON list of runs under RunsDir
//	/runs/<name>        the run's manifest.json
//	/runs/<name>/events the run's events.jsonl stream
//	/debug/phaseprofiles  live index + files of phase-scoped profiles
//	/debug/pprof/...    net/http/pprof profiles
func NewTelemetryMux(cfg TelemetryConfig) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var snap Snapshot
		if cfg.Rec != nil {
			snap = cfg.Rec.Snapshot()
		}
		if cfg.Fleet != nil {
			_ = cfg.Fleet.WritePrometheus(w, cfg.FleetLocal, snap)
			return
		}
		_ = WritePrometheus(w, snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var tr *Tracer
		if cfg.Rec != nil {
			tr = cfg.Rec.Trace
		}
		if cfg.Fleet != nil {
			_ = cfg.Fleet.WriteChromeTrace(w, tr)
			return
		}
		_ = tr.WriteChromeTraceLive(w)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Flight == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		party := cfg.FleetLocal
		if party == "" {
			party = "local"
		}
		_ = cfg.Flight.WriteDump(w, party, "")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
			"go_version":     runtime.Version(),
			"num_goroutine":  runtime.NumGoroutine(),
		}
		if cfg.Health != nil {
			for k, v := range cfg.Health() {
				h[k] = v
			}
		}
		if cfg.Fleet != nil {
			h["fleet"] = cfg.Fleet.FleetHealth()
			if faults := cfg.Fleet.Faults(); len(faults) > 0 {
				h["fleet_faults"] = faults
			}
		}
		writeJSON(w, h)
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		if cfg.RunsDir == "" {
			http.NotFound(w, r)
			return
		}
		entries, err := os.ReadDir(cfg.RunsDir)
		if err != nil && !os.IsNotExist(err) {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		runs := []string{}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			if _, err := os.Stat(filepath.Join(cfg.RunsDir, e.Name(), "manifest.json")); err == nil {
				runs = append(runs, e.Name())
			}
		}
		writeJSON(w, map[string]any{"runs": runs})
	})
	mux.HandleFunc("/runs/", func(w http.ResponseWriter, r *http.Request) {
		if cfg.RunsDir == "" {
			http.NotFound(w, r)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/runs/")
		name, sub, _ := strings.Cut(rest, "/")
		// The run name must be a single clean path element.
		if name == "" || name != filepath.Base(filepath.Clean(name)) || name == ".." || name == "." {
			http.NotFound(w, r)
			return
		}
		switch sub {
		case "", "manifest", "manifest.json":
			w.Header().Set("Content-Type", "application/json")
			http.ServeFile(w, r, filepath.Join(cfg.RunsDir, name, "manifest.json"))
		case "events", "events.jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			http.ServeFile(w, r, filepath.Join(cfg.RunsDir, name, "events.jsonl"))
		default:
			http.NotFound(w, r)
		}
	})
	if cfg.PhaseProfiles != nil {
		mux.Handle("/debug/phaseprofiles", http.StripPrefix("/debug/phaseprofiles", cfg.PhaseProfiles.Handler()))
		mux.Handle("/debug/phaseprofiles/", http.StripPrefix("/debug/phaseprofiles", cfg.PhaseProfiles.Handler()))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// TelemetryServer is a running live telemetry endpoint.
type TelemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartTelemetry binds addr (e.g. "127.0.0.1:8080", or ":0" for an ephemeral
// port) and serves the telemetry mux until Close.
func StartTelemetry(addr string, cfg TelemetryConfig) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen: %w", err)
	}
	srv := &http.Server{Handler: NewTelemetryMux(cfg)}
	//silofuse:fire-and-forget Serve returns as soon as Close closes the listener
	go func() { _ = srv.Serve(ln) }()
	return &TelemetryServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address ("" on a nil server).
func (s *TelemetryServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Closing a nil server is a no-op.
func (s *TelemetryServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
