package obs

import (
	"math"
	"sync"
)

// Histogram geometry: exponential buckets covering [histMin, histMax) with
// ~10% relative width, plus an underflow bucket (index 0, values <= histMin
// including zero and negatives) and an overflow bucket. The quantile error
// is bounded by the bucket growth factor (~10% relative) and further tightened
// by clamping estimates to the exactly tracked min/max.
const (
	histMin    = 1e-9
	histMax    = 1e12
	histGrowth = 1.1
)

var (
	histLogGrowth = math.Log(histGrowth)
	histNumBucket = 2 + int(math.Ceil(math.Log(histMax/histMin)/histLogGrowth))
)

// Histogram is a streaming histogram for non-negative observations
// (durations in seconds, byte sizes, losses). It records count, sum and
// exact min/max alongside exponential buckets for quantile estimation.
// All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]int64, histNumBucket), min: math.Inf(1), max: math.Inf(-1)}
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin || math.IsNaN(v) {
		return 0
	}
	idx := 1 + int(math.Log(v/histMin)/histLogGrowth)
	if idx >= histNumBucket {
		return histNumBucket - 1
	}
	return idx
}

// bucketLo returns the lower bound of bucket idx (0 for the underflow
// bucket).
func bucketLo(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	return histMin * math.Pow(histGrowth, float64(idx-1))
}

// Observe records one value. A nil histogram (from a nil registry) is a
// no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// HistogramStats is a histogram summary with streaming quantile estimates.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats summarises the histogram. Quantiles are interpolated within their
// bucket and clamped to the observed [min, max], so a constant stream
// reports the constant exactly.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistogramStats{}
	}
	return HistogramStats{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
}

// MergeHistogramStats combines two histogram summaries from independent
// sources (e.g. the same metric observed by two parties of a federated run).
// Count and Sum add exactly and Min/Max are preserved exactly; the quantile
// fields cannot be reconstructed from summaries alone, so they are combined
// as the count-weighted average of the inputs' estimates, clamped to the
// merged [Min, Max] — the same bounded-error contract the streaming
// histogram itself offers. Merging with an empty summary returns the other
// side unchanged.
func MergeHistogramStats(a, b HistogramStats) HistogramStats {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := HistogramStats{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   math.Min(a.Min, b.Min),
		Max:   math.Max(a.Max, b.Max),
	}
	wa := float64(a.Count) / float64(out.Count)
	wb := float64(b.Count) / float64(out.Count)
	clamp := func(v float64) float64 {
		if v < out.Min {
			return out.Min
		}
		if v > out.Max {
			return out.Max
		}
		return v
	}
	out.P50 = clamp(wa*a.P50 + wb*b.P50)
	out.P95 = clamp(wa*a.P95 + wb*b.P95)
	out.P99 = clamp(wa*a.P99 + wb*b.P99)
	return out
}

// DeltaHistogramStats returns the increment from prev (an earlier summary of
// the same histogram) to cur: Count and Sum are exact differences, while
// Min/Max/quantiles carry cur's values (a histogram's min/max only widen, so
// cur's bounds are correct for the union; per-window bounds are not
// recoverable from summaries). A delta with Count 0 means nothing new was
// observed.
func DeltaHistogramStats(prev, cur HistogramStats) HistogramStats {
	if prev.Count == 0 {
		return cur
	}
	d := cur
	d.Count = cur.Count - prev.Count
	d.Sum = cur.Sum - prev.Sum
	if d.Count <= 0 {
		return HistogramStats{}
	}
	return d
}

// Quantile estimates the q-th quantile (q in [0,1]); 0 on a nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	rank := q * float64(h.count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketLo(i), bucketLo(i+1)
			frac := (rank - cum) / float64(n)
			est := lo + (hi-lo)*frac
			// Exact bounds beat bucket bounds at the tails.
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
		cum = next
	}
	return h.max
}
