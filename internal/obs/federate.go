package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Telemetry federation: parties of a distributed run periodically serialize
// their local telemetry — metric deltas, completed trace spans, transport
// fault counters — into TelemetryUpdate records shipped to the coordinator,
// which folds them into a FleetAggregator. The coordinator's /metrics then
// exposes one pane of glass for the whole fleet (every series labelled with
// its party), and /trace serves a live merged Chrome trace across party
// lanes.
//
// Updates are flushed at deterministic protocol points (phase boundaries,
// iteration counts) — never from timers — so a federated run stays
// bit-identical to a non-federated one on the application message stream,
// and federation traffic occupies its own accounting bucket.

// TelemetryUpdate is one party's telemetry increment since its previous
// flush. Counters and Hists are deltas (they add across updates); Gauges
// carry current values (last write wins); Spans lists trace spans completed
// since the previous flush. Seq numbers a party's updates from 1 so the
// aggregator can spot gaps after a recovery.
type TelemetryUpdate struct {
	Party       string                    `json:"party"`
	Seq         uint64                    `json:"seq"`
	PID         int                       `json:"pid,omitempty"`
	EpochMicros int64                     `json:"epoch_micros,omitempty"`
	Counters    map[string]int64          `json:"counters,omitempty"`
	Gauges      map[string]float64        `json:"gauges,omitempty"`
	Hists       map[string]HistogramStats `json:"hists,omitempty"`
	Spans       []SpanInfo                `json:"spans,omitempty"`
	// Faults carries transport fault counters (injected chaos faults, retry
	// totals) when the party has a fault source attached.
	Faults map[string]int64 `json:"faults,omitempty"`
}

// EncodeTelemetryUpdate serialises an update for transport (JSON: stable,
// debuggable, and schema'd in EXPERIMENTS.md).
func EncodeTelemetryUpdate(u *TelemetryUpdate) ([]byte, error) {
	return json.Marshal(u)
}

// DecodeTelemetryUpdate parses bytes produced by EncodeTelemetryUpdate.
func DecodeTelemetryUpdate(b []byte) (*TelemetryUpdate, error) {
	var u TelemetryUpdate
	if err := json.Unmarshal(b, &u); err != nil {
		return nil, fmt.Errorf("obs: telemetry update decode: %w", err)
	}
	if u.Party == "" {
		return nil, fmt.Errorf("obs: telemetry update without party")
	}
	return &u, nil
}

// Federator computes one party's telemetry deltas between flushes. It holds
// the party's recorder, remembers the snapshot it last shipped, and collects
// span ends via a tracer hook. A nil Federator is a no-op (federation off).
type Federator struct {
	mu    sync.Mutex
	rec   *Recorder
	party string // immutable after NewFederator
	seq   uint64 //silofuse:guardedby mu

	//silofuse:guardedby mu
	lastCounters map[string]int64
	//silofuse:guardedby mu
	lastHists map[string]HistogramStats
	spans     []SpanInfo //silofuse:guardedby mu

	// faults, when non-nil, supplies transport fault counters per flush
	// (cumulative; the aggregator keeps the latest).
	faults func() map[string]int64
}

// NewFederator builds the federation source for one party over its
// recorder. It registers a span-end hook on the recorder's tracer, so spans
// that finish between flushes ride the next update.
func NewFederator(party string, rec *Recorder) *Federator {
	f := &Federator{
		rec:          rec,
		party:        party,
		lastCounters: make(map[string]int64),
		lastHists:    make(map[string]HistogramStats),
	}
	if rec != nil {
		rec.Trace.AddOnSpanEnd(func(sp SpanInfo) {
			f.mu.Lock()
			f.spans = append(f.spans, sp)
			f.mu.Unlock()
		})
	}
	return f
}

// SetFaultSource attaches fn as the update's fault-counter supplier
// (e.g. a ChaosBus's FaultStats plus a ResilientBus's retry totals).
func (f *Federator) SetFaultSource(fn func() map[string]int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.faults = fn
	f.mu.Unlock()
}

// Party returns the federator's party name ("" on nil).
func (f *Federator) Party() string {
	if f == nil {
		return ""
	}
	return f.party
}

// Flush produces the update covering everything since the previous flush
// and advances the baseline. It never returns nil on an enabled federator —
// an empty update still carries the party identity and sequence number, so
// the aggregator's liveness view ticks even when nothing changed. A nil
// federator returns nil.
func (f *Federator) Flush() *TelemetryUpdate {
	if f == nil {
		return nil
	}
	snap := f.rec.Snapshot()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	u := &TelemetryUpdate{
		Party:       f.party,
		Seq:         f.seq,
		PID:         f.rec.Trace.PID(),
		EpochMicros: f.rec.Trace.Epoch(),
	}
	for name, v := range snap.Counters {
		if d := v - f.lastCounters[name]; d != 0 {
			if u.Counters == nil {
				u.Counters = make(map[string]int64)
			}
			u.Counters[name] = d
		}
		f.lastCounters[name] = v
	}
	if len(snap.Gauges) > 0 {
		u.Gauges = make(map[string]float64, len(snap.Gauges))
		for name, v := range snap.Gauges {
			u.Gauges[name] = v
		}
	}
	for name, h := range snap.Histograms {
		if d := DeltaHistogramStats(f.lastHists[name], h); d.Count > 0 {
			if u.Hists == nil {
				u.Hists = make(map[string]HistogramStats)
			}
			u.Hists[name] = d
		}
		f.lastHists[name] = h
	}
	u.Spans = f.spans
	f.spans = nil
	if f.faults != nil {
		u.Faults = f.faults()
	}
	return u
}

// partyState is the aggregator's view of one party.
type partyState struct {
	pid         int
	epochMicros int64
	lastSeq     uint64
	updates     int64
	gaps        int64 // sequence discontinuities observed
	counters    map[string]int64
	gauges      map[string]float64
	hists       map[string]HistogramStats
	faults      map[string]int64
	spans       []SpanInfo
}

// FleetAggregator is the coordinator-side sink of telemetry federation: it
// folds per-party updates into cumulative per-party metric views and span
// collections, and renders fleet-wide Prometheus exposition and merged
// Chrome traces. All methods are safe for concurrent use, and a nil
// aggregator is a no-op everywhere, matching the package's recorder
// contract.
type FleetAggregator struct {
	mu sync.Mutex
	//silofuse:guardedby mu
	parties map[string]*partyState
	// maxSpans bounds the per-party span collection (oldest dropped).
	//silofuse:guardedby mu
	maxSpans int
}

// fleetMaxSpansDefault bounds each party's retained span list; a multi-day
// run must not grow the coordinator's memory without bound.
const fleetMaxSpansDefault = 4096

// NewFleetAggregator builds an empty fleet view.
func NewFleetAggregator() *FleetAggregator {
	return &FleetAggregator{parties: make(map[string]*partyState), maxSpans: fleetMaxSpansDefault}
}

// Ingest folds one update into the fleet view: counter and histogram deltas
// accumulate, gauges overwrite, spans append (bounded), fault counters
// overwrite (they arrive cumulative). Nil aggregators and nil updates are
// ignored.
func (a *FleetAggregator) Ingest(u *TelemetryUpdate) {
	if a == nil || u == nil || u.Party == "" {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ps := a.parties[u.Party]
	if ps == nil {
		ps = &partyState{
			counters: make(map[string]int64),
			gauges:   make(map[string]float64),
			hists:    make(map[string]HistogramStats),
			faults:   make(map[string]int64),
		}
		a.parties[u.Party] = ps
	}
	if u.PID != 0 {
		ps.pid = u.PID
	}
	if u.EpochMicros != 0 {
		ps.epochMicros = u.EpochMicros
	}
	if u.Seq != 0 && ps.lastSeq != 0 && u.Seq != ps.lastSeq+1 {
		ps.gaps++
	}
	if u.Seq != 0 {
		ps.lastSeq = u.Seq
	}
	ps.updates++
	for name, d := range u.Counters {
		ps.counters[name] += d
	}
	for name, v := range u.Gauges {
		ps.gauges[name] = v
	}
	for name, d := range u.Hists {
		ps.hists[name] = MergeHistogramStats(ps.hists[name], d)
	}
	for name, v := range u.Faults {
		ps.faults[name] = v
	}
	ps.spans = append(ps.spans, u.Spans...)
	if over := len(ps.spans) - a.maxSpans; over > 0 {
		ps.spans = append(ps.spans[:0:0], ps.spans[over:]...)
	}
}

// IngestLocal is the coordinator's own federation path: it flushes fed and
// folds the update in directly, no transport involved.
func (a *FleetAggregator) IngestLocal(fed *Federator) {
	if a == nil || fed == nil {
		return
	}
	a.Ingest(fed.Flush())
}

// Parties lists the parties seen so far, sorted.
func (a *FleetAggregator) Parties() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	names := make([]string, 0, len(a.parties))
	for name := range a.parties {
		names = append(names, name)
	}
	a.mu.Unlock()
	sort.Strings(names)
	return names
}

// PartySnapshot returns the cumulative metric view of one party (zero value
// when unknown).
func (a *FleetAggregator) PartySnapshot(party string) Snapshot {
	if a == nil {
		return Snapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	ps := a.parties[party]
	if ps == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Counters:   make(map[string]int64, len(ps.counters)),
		Gauges:     make(map[string]float64, len(ps.gauges)),
		Histograms: make(map[string]HistogramStats, len(ps.hists)),
	}
	for k, v := range ps.counters {
		s.Counters[k] = v
	}
	for k, v := range ps.gauges {
		s.Gauges[k] = v
	}
	for k, v := range ps.hists {
		s.Histograms[k] = v
	}
	return s
}

// FleetHealth summarises federation liveness per party: updates ingested,
// last sequence number, and observed sequence gaps — the payload a /healthz
// endpoint embeds.
func (a *FleetAggregator) FleetHealth() map[string]any {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]any, len(a.parties))
	for name, ps := range a.parties {
		out[name] = map[string]any{
			"updates":  ps.updates,
			"last_seq": ps.lastSeq,
			"seq_gaps": ps.gaps,
			"spans":    len(ps.spans),
		}
	}
	return out
}

// Faults returns the latest fault counters per party (party -> counter ->
// value).
func (a *FleetAggregator) Faults() map[string]map[string]int64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]map[string]int64)
	for name, ps := range a.parties {
		if len(ps.faults) == 0 {
			continue
		}
		m := make(map[string]int64, len(ps.faults))
		for k, v := range ps.faults {
			m[k] = v
		}
		out[name] = m
	}
	return out
}

// WritePrometheus renders the fleet view in Prometheus text exposition:
// every series carries a party label, families are grouped (one # HELP and
// # TYPE header each) and sorted, parties sorted within a family. local,
// when non-empty, names a party whose series come from localSnap rather
// than from federation — the coordinator passes its own registry snapshot
// here so the fleet exposition covers every party including itself.
func (a *FleetAggregator) WritePrometheus(w io.Writer, local string, localSnap Snapshot) error {
	if a == nil {
		return nil
	}
	type series struct {
		party string
		text  string // lines for this party within the family, sans name prefix
	}
	type family struct {
		typ    string
		series []series
	}
	fams := make(map[string]*family)
	addSnap := func(party string, s Snapshot) {
		for name, v := range s.Counters {
			n := promName(name)
			f := fams[n]
			if f == nil {
				f = &family{typ: "counter"}
				fams[n] = f
			}
			f.series = append(f.series, series{party, fmt.Sprintf("%s{party=%q} %d\n", n, party, v)})
		}
		for name, v := range s.Gauges {
			n := promName(name)
			f := fams[n]
			if f == nil {
				f = &family{typ: "gauge"}
				fams[n] = f
			}
			f.series = append(f.series, series{party, fmt.Sprintf("%s{party=%q} %s\n", n, party, promFloat(v))})
		}
		for name, h := range s.Histograms {
			n := promName(name)
			f := fams[n]
			if f == nil {
				f = &family{typ: "summary"}
				fams[n] = f
			}
			var b []byte
			b = fmt.Appendf(b, "%s{party=%q,quantile=\"0.5\"} %s\n", n, party, promFloat(h.P50))
			b = fmt.Appendf(b, "%s{party=%q,quantile=\"0.95\"} %s\n", n, party, promFloat(h.P95))
			b = fmt.Appendf(b, "%s{party=%q,quantile=\"0.99\"} %s\n", n, party, promFloat(h.P99))
			b = fmt.Appendf(b, "%s_sum{party=%q} %s\n", n, party, promFloat(h.Sum))
			b = fmt.Appendf(b, "%s_count{party=%q} %d\n", n, party, h.Count)
			f.series = append(f.series, series{party, string(b)})
		}
	}
	if local != "" {
		addSnap(local, localSnap)
	}
	for _, party := range a.Parties() {
		if party == local {
			continue // the coordinator's own registry wins over stale federated copies
		}
		addSnap(party, a.PartySnapshot(party))
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].party < f.series[j].party })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, helpFor(n), n, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if _, err := io.WriteString(w, s.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteChromeTrace renders the live merged fleet trace: the coordinator's
// own tracer document plus one synthesized document per federated party
// (complete "X" events built from its shipped spans, on its own process
// lane), aligned on one timeline via each party's tracer epoch. local may
// be nil (fleet lanes only).
func (a *FleetAggregator) WriteChromeTrace(w io.Writer, local *Tracer) error {
	if a == nil {
		return local.WriteChromeTraceLive(w)
	}
	var readers []io.Reader
	if local != nil {
		var buf bytes.Buffer
		if err := local.WriteChromeTraceLive(&buf); err != nil {
			return err
		}
		readers = append(readers, &buf)
	}
	a.mu.Lock()
	names := make([]string, 0, len(a.parties))
	for name := range a.parties {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := a.parties[name]
		doc := chromeTrace{DisplayTimeUnit: "ms", EpochMicros: ps.epochMicros}
		pid := ps.pid
		if pid == 0 {
			pid = 1
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 1,
			Args: map[string]any{"name": name},
		})
		for _, sp := range ps.spans {
			doc.TraceEvents = append(doc.TraceEvents, traceEvent{
				Name: sp.Name, Cat: "silofuse", Phase: "X",
				TS: sp.StartSec * 1e6, Dur: sp.DurSec * 1e6,
				PID: pid, TID: 1, Args: sp.Attrs,
			})
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(doc); err != nil {
			a.mu.Unlock()
			return err
		}
		readers = append(readers, &buf)
	}
	a.mu.Unlock()
	if len(readers) == 0 {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	return MergeChromeTraces(w, readers...)
}
