package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
)

// Pure-stdlib decoder for the pprof profile.proto wire format. The Go
// runtime emits gzipped protobuf (pprof.Profile debug=0); this file parses
// exactly the subset the attribution engine needs — sample types, samples,
// locations, lines, functions, and the string table — with a hand-rolled
// varint walker so the module gains no protobuf dependency (the same
// philosophy as silofuse-vet's source-importer loader).
//
// Field numbers follow
// github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 10 duration_nanos,
//	          11 period_type, 12 period, 14 default_sample_type
//	Sample:   1 location_id (repeated, may be packed), 2 value (repeated)
//	Location: 1 id, 4 line
//	Line:     1 function_id, 2 line
//	Function: 1 id, 2 name, 3 system_name, 4 filename
//
// Repeated scalar fields arrive packed (wire type 2) from the Go runtime
// but the decoder also accepts the unpacked encoding.

// ValueType names one sample dimension ("cpu"/"nanoseconds",
// "inuse_space"/"bytes", ...).
type ValueType struct {
	Type string
	Unit string
}

// Profile is a decoded pprof profile, resolved against its string table.
type Profile struct {
	SampleTypes       []ValueType
	DefaultSampleType string
	TimeNanos         int64
	DurationNanos     int64
	PeriodType        ValueType
	Period            int64
	Samples           []Sample

	locations map[uint64]location
	functions map[uint64]function
	strtab    []string
}

// Sample is one stack sample: values per SampleType and the stack's
// location ids, leaf first.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

type location struct {
	id    uint64
	lines []line
}

type line struct {
	functionID uint64
	line       int64
}

type function struct {
	id   uint64
	name int64 // string table index
}

// ParsePprof decodes a pprof profile from raw or gzipped protobuf bytes.
func ParsePprof(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof gzip: %w", err)
		}
		defer zr.Close()
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pprof gzip: %w", err)
		}
		data = raw
	}
	return parseProfileMessage(data)
}

// ParsePprofFile reads and decodes one captured profile file.
func ParsePprofFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePprof(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// --- protobuf wire walker -------------------------------------------------

// varint decodes one base-128 varint.
func varint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * uint(i))
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("truncated varint")
}

// walkFields iterates a protobuf message's fields. For wire type 0 the
// value arrives in v; for type 2 in data; fixed 64/32-bit fields (types
// 1/5) are skipped — profile.proto does not use them.
func walkFields(msg []byte, fn func(num int, wire int, data []byte, v uint64) error) error {
	for len(msg) > 0 {
		key, n, err := varint(msg)
		if err != nil {
			return err
		}
		msg = msg[n:]
		num := int(key >> 3)
		wire := int(key & 7)
		switch wire {
		case 0:
			v, n, err := varint(msg)
			if err != nil {
				return err
			}
			msg = msg[n:]
			if err := fn(num, wire, nil, v); err != nil {
				return err
			}
		case 1:
			if len(msg) < 8 {
				return fmt.Errorf("truncated fixed64 field %d", num)
			}
			msg = msg[8:]
		case 2:
			ln, n, err := varint(msg)
			if err != nil {
				return err
			}
			msg = msg[n:]
			if uint64(len(msg)) < ln {
				return fmt.Errorf("truncated bytes field %d", num)
			}
			if err := fn(num, wire, msg[:ln], 0); err != nil {
				return err
			}
			msg = msg[ln:]
		case 5:
			if len(msg) < 4 {
				return fmt.Errorf("truncated fixed32 field %d", num)
			}
			msg = msg[4:]
		default:
			return fmt.Errorf("unsupported wire type %d (field %d)", wire, num)
		}
	}
	return nil
}

// packedUints appends a repeated scalar field's values: a packed payload
// (wire 2) or one unpacked value (wire 0).
func packedUints(dst []uint64, wire int, data []byte, v uint64) ([]uint64, error) {
	if wire == 0 {
		return append(dst, v), nil
	}
	for len(data) > 0 {
		u, n, err := varint(data)
		if err != nil {
			return nil, err
		}
		dst = append(dst, u)
		data = data[n:]
	}
	return dst, nil
}

// --- message parsers ------------------------------------------------------

func parseProfileMessage(data []byte) (*Profile, error) {
	p := &Profile{
		locations: make(map[uint64]location),
		functions: make(map[uint64]function),
	}
	var strtab []string
	var sampleTypeIdx []valueTypeIdx
	var periodTypeIdx valueTypeIdx
	var defaultSampleIdx int64
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1: // sample_type
			vt, err := parseValueType(data)
			if err != nil {
				return err
			}
			sampleTypeIdx = append(sampleTypeIdx, vt)
		case 2: // sample
			s, err := parseSample(data)
			if err != nil {
				return err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			loc, err := parseLocation(data)
			if err != nil {
				return err
			}
			p.locations[loc.id] = loc
		case 5: // function
			fn, err := parseFunction(data)
			if err != nil {
				return err
			}
			p.functions[fn.id] = fn
		case 6: // string_table
			strtab = append(strtab, string(data))
		case 9:
			p.TimeNanos = int64(v)
		case 10:
			p.DurationNanos = int64(v)
		case 11:
			vt, err := parseValueType(data)
			if err != nil {
				return err
			}
			periodTypeIdx = vt
		case 12:
			p.Period = int64(v)
		case 14:
			defaultSampleIdx = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pprof decode: %w", err)
	}
	str := func(i int64) string {
		if i < 0 || i >= int64(len(strtab)) {
			return ""
		}
		return strtab[i]
	}
	for _, vt := range sampleTypeIdx {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodTypeIdx.typ), Unit: str(periodTypeIdx.unit)}
	p.DefaultSampleType = str(defaultSampleIdx)
	p.resolveFunctionNames(strtab)
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("pprof decode: no sample types (not a pprof proto?)")
	}
	return p, nil
}

// resolveFunctionNames rewrites function name indices into funcNames.
func (p *Profile) resolveFunctionNames(strtab []string) {
	for id, fn := range p.functions {
		if fn.name < 0 || fn.name >= int64(len(strtab)) {
			fn.name = 0
		}
		p.functions[id] = fn
	}
	p.strtab = strtab
}

// valueTypeIdx is a ValueType before string-table resolution.
type valueTypeIdx struct{ typ, unit int64 }

func parseValueType(data []byte) (valueTypeIdx, error) {
	var vt valueTypeIdx
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1:
			vt.typ = int64(v)
		case 2:
			vt.unit = int64(v)
		}
		return nil
	})
	return vt, err
}

func parseSample(data []byte) (Sample, error) {
	var s Sample
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1: // location_id
			ids, err := packedUints(s.LocationIDs, wire, data, v)
			if err != nil {
				return err
			}
			s.LocationIDs = ids
		case 2: // value
			var vals []uint64
			vals, err := packedUints(nil, wire, data, v)
			if err != nil {
				return err
			}
			for _, u := range vals {
				s.Values = append(s.Values, int64(u))
			}
		}
		return nil
	})
	return s, err
}

func parseLocation(data []byte) (location, error) {
	var loc location
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1:
			loc.id = v
		case 4:
			ln, err := parseLine(data)
			if err != nil {
				return err
			}
			loc.lines = append(loc.lines, ln)
		}
		return nil
	})
	return loc, err
}

func parseLine(data []byte) (line, error) {
	var ln line
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1:
			ln.functionID = v
		case 2:
			ln.line = int64(v)
		}
		return nil
	})
	return ln, err
}

func parseFunction(data []byte) (function, error) {
	var fn function
	err := walkFields(data, func(num, wire int, data []byte, v uint64) error {
		switch num {
		case 1:
			fn.id = v
		case 2:
			fn.name = int64(v)
		}
		return nil
	})
	return fn, err
}

// FuncName resolves a function id to its name ("" when unknown).
func (p *Profile) FuncName(id uint64) string {
	if p == nil {
		return ""
	}
	fn, ok := p.functions[id]
	if !ok {
		return ""
	}
	if fn.name < 0 || fn.name >= int64(len(p.strtab)) {
		return ""
	}
	return p.strtab[fn.name]
}

// SampleIndex picks the value column to aggregate: an explicit type name,
// or (for "") the profile's default — preferring cpu, then inuse_space,
// then the declared default_sample_type, then the last column (the pprof
// tool's own fallback).
func (p *Profile) SampleIndex(typ string) (int, error) {
	if p == nil || len(p.SampleTypes) == 0 {
		return 0, fmt.Errorf("profile has no sample types")
	}
	if typ != "" {
		for i, st := range p.SampleTypes {
			if st.Type == typ {
				return i, nil
			}
		}
		return 0, fmt.Errorf("no sample type %q (have %v)", typ, p.SampleTypes)
	}
	for _, want := range []string{"cpu", "inuse_space", p.DefaultSampleType} {
		if want == "" {
			continue
		}
		for i, st := range p.SampleTypes {
			if st.Type == want {
				return i, nil
			}
		}
	}
	return len(p.SampleTypes) - 1, nil
}

// FuncStat aggregates one function's weight in a flattened profile.
type FuncStat struct {
	Name string
	Self int64 // weight of samples where this function is the leaf frame
	Cum  int64 // weight of samples anywhere on whose stack it appears
}

// FlatProfile is a profile flattened to per-function self/cum totals.
type FlatProfile struct {
	Type  string // sample type aggregated ("cpu", "inuse_space", ...)
	Unit  string // its unit ("nanoseconds", "bytes", ...)
	Total int64
	funcs map[string]*FuncStat
}

// Flatten aggregates the chosen sample-type column ("" = default) into
// per-function self and cumulative totals. Self weight goes to the
// innermost inline frame of the leaf location; cumulative weight counts
// each function once per sample however often it recurses.
func (p *Profile) Flatten(sampleType string) (*FlatProfile, error) {
	if p == nil {
		return nil, fmt.Errorf("nil profile")
	}
	idx, err := p.SampleIndex(sampleType)
	if err != nil {
		return nil, err
	}
	fp := &FlatProfile{
		Type:  p.SampleTypes[idx].Type,
		Unit:  p.SampleTypes[idx].Unit,
		funcs: make(map[string]*FuncStat),
	}
	seen := make(map[string]bool)
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Values[idx]
		fp.Total += v
		for k := range seen {
			delete(seen, k)
		}
		for li, locID := range s.LocationIDs {
			loc := p.locations[locID]
			// Line[0] is the innermost inline frame; the sample's true
			// leaf is the first line of the first location.
			for fi, ln := range loc.lines {
				name := p.FuncName(ln.functionID)
				if name == "" {
					continue
				}
				st, ok := fp.funcs[name]
				if !ok {
					st = &FuncStat{Name: name}
					fp.funcs[name] = st
				}
				if li == 0 && fi == 0 {
					st.Self += v
				}
				if !seen[name] {
					seen[name] = true
					st.Cum += v
				}
			}
		}
	}
	return fp, nil
}

// Lookup returns the stat for a function name (zero value when absent).
func (f *FlatProfile) Lookup(name string) FuncStat {
	if f == nil {
		return FuncStat{Name: name}
	}
	if st, ok := f.funcs[name]; ok {
		return *st
	}
	return FuncStat{Name: name}
}

// Top returns the n heaviest functions by self weight (cum breaks ties).
func (f *FlatProfile) Top(n int) []FuncStat {
	if f == nil {
		return nil
	}
	out := make([]FuncStat, 0, len(f.funcs))
	for _, st := range f.funcs {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// FuncDelta is one function's movement between two flattened profiles.
type FuncDelta struct {
	Name      string
	BaseSelf  int64
	CurSelf   int64
	DeltaSelf int64
	BaseCum   int64
	CurCum    int64
	DeltaCum  int64
}

// Diff compares two flattened profiles function-by-function, sorted by
// self-weight growth (largest regression first). Functions present on only
// one side diff against zero.
func Diff(base, cur *FlatProfile) []FuncDelta {
	names := make(map[string]bool)
	if base != nil {
		for name := range base.funcs {
			names[name] = true
		}
	}
	if cur != nil {
		for name := range cur.funcs {
			names[name] = true
		}
	}
	out := make([]FuncDelta, 0, len(names))
	for name := range names {
		b := base.Lookup(name)
		c := cur.Lookup(name)
		out = append(out, FuncDelta{
			Name:      name,
			BaseSelf:  b.Self,
			CurSelf:   c.Self,
			DeltaSelf: c.Self - b.Self,
			BaseCum:   b.Cum,
			CurCum:    c.Cum,
			DeltaCum:  c.Cum - b.Cum,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeltaSelf != out[j].DeltaSelf {
			return out[i].DeltaSelf > out[j].DeltaSelf
		}
		if out[i].DeltaCum != out[j].DeltaCum {
			return out[i].DeltaCum > out[j].DeltaCum
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FormatValue renders a sample value in its natural unit for tables.
func FormatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	case "bytes":
		return fmt.Sprintf("%.1fkB", float64(v)/1024)
	case "microseconds":
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
