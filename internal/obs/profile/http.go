package profile

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
)

// Handler serves the live profile index and the captured files:
//
//	GET <mount>            → JSON {dir, entries, errors}
//	GET <mount>/<file>     → the raw .pb.gz (pprof-compatible)
//
// Mount it with http.StripPrefix so the trailing path is the file name.
// A nil profiler serves an empty index, matching the nil-off contract.
func (p *PhaseProfiler) Handler() http.Handler {
	if p == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte("{\"entries\":[]}\n"))
		})
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(r.URL.Path, "/")
		if name == "" {
			idx := struct {
				Dir     string   `json:"dir,omitempty"`
				Entries []Entry  `json:"entries"`
				Errors  []string `json:"errors,omitempty"`
			}{Dir: p.Dir(), Entries: p.Entries(), Errors: p.Errs()}
			if idx.Entries == nil {
				idx.Entries = []Entry{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(idx)
			return
		}
		for _, e := range p.Entries() {
			if e.File != name {
				continue
			}
			path, err := IndexEntryPath(p.Dir(), name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
		http.Error(w, "no such profile (see index at the mount root)", http.StatusNotFound)
	})
}
