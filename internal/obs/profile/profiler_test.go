package profile

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// spinSink defeats dead-code elimination of the spin loops below.
var spinSink float64

// profileSpinHot is the deliberately hot function the CPU round-trip test
// expects to find by name in the decoded profile.
//
//go:noinline
func profileSpinHot(iters int) float64 {
	x := 1.0
	for i := 0; i < iters; i++ {
		x += float64(i&15) * 1e-12
	}
	return x
}

// profileAllocHot allocates enough to clear the heap sampler's 512KB
// default rate many times over.
//
//go:noinline
func profileAllocHot() [][]byte {
	out := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		out = append(out, make([]byte, 1<<20))
	}
	return out
}

// TestCPURoundTrip pins the acceptance criterion: a phase-scoped capture of
// real runtime/pprof output decodes with the stdlib-only parser and the hot
// function appears in the flattened table.
func TestCPURoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, CPU: true, Heap: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start("diffusion-train")
	for i := 0; i < 60; i++ {
		spinSink += profileSpinHot(2_000_000)
	}
	p.Stop("diffusion-train")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, EntryFileName("diffusion-train", KindCPU))
	prof, err := ParsePprofFile(path)
	if err != nil {
		t.Fatalf("decoding captured CPU profile: %v", err)
	}
	if len(prof.SampleTypes) == 0 {
		t.Fatal("no sample types decoded")
	}
	flat, err := prof.Flatten("")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Type != "cpu" || flat.Unit != "nanoseconds" {
		t.Fatalf("default sample column = %s/%s, want cpu/nanoseconds", flat.Type, flat.Unit)
	}
	if flat.Total == 0 {
		t.Skip("no CPU samples collected (SIGPROF unavailable in this environment)")
	}
	st := flat.Lookup("silofuse/internal/obs/profile.profileSpinHot")
	if st.Self == 0 {
		for _, top := range flat.Top(10) {
			t.Logf("top: %-60s self=%d cum=%d", top.Name, top.Self, top.Cum)
		}
		t.Fatal("profileSpinHot has zero self weight in decoded profile")
	}
	if st.Cum < st.Self {
		t.Fatalf("cum %d < self %d", st.Cum, st.Self)
	}
}

// TestHeapRoundTrip decodes a real heap profile and finds the allocator.
func TestHeapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Heap: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start("ae-train")
	sink := profileAllocHot()
	p.Stop("ae-train")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_ = sink

	prof, err := ParsePprofFile(filepath.Join(dir, EntryFileName("ae-train", KindHeap)))
	if err != nil {
		t.Fatalf("decoding captured heap profile: %v", err)
	}
	flat, err := prof.Flatten("alloc_space")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Unit != "bytes" {
		t.Fatalf("alloc_space unit = %q, want bytes", flat.Unit)
	}
	st := flat.Lookup("silofuse/internal/obs/profile.profileAllocHot")
	if st.Cum == 0 {
		t.Fatal("profileAllocHot not attributed any alloc_space")
	}
}

// TestPhaseIndexAndEntries checks the on-disk index and entry bookkeeping.
func TestPhaseIndexAndEntries(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, CPU: true, Heap: true, Mutex: true, Block: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start("ae-train")
	p.Start("nested") // must be skipped, not corrupt the active capture
	spinSink += profileSpinHot(1000)
	p.Stop("nested")
	p.Stop("ae-train")
	p.Start("ae-train") // repeated phase: captures counter increments
	p.Stop("ae-train")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	entries := p.Entries()
	byKey := make(map[string]Entry)
	for _, e := range entries {
		byKey[e.Phase+"/"+e.Kind] = e
	}
	for _, want := range []string{"ae-train/cpu", "ae-train/heap", "ae-train/mutex", "ae-train/block", "all/heap"} {
		if _, ok := byKey[want]; !ok {
			t.Errorf("missing index entry %s (have %v)", want, entries)
		}
	}
	if got := byKey["ae-train/heap"].Captures; got != 2 {
		t.Errorf("ae-train/heap captures = %d, want 2", got)
	}
	if _, ok := byKey["nested/heap"]; ok {
		t.Error("overlapping phase was captured; want skipped")
	}
	if errs := p.Errs(); len(errs) == 0 || !strings.Contains(errs[0], "nested") {
		t.Errorf("overlap skip not surfaced in Errs: %v", errs)
	}

	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Entries []Entry `json:"entries"`
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) != len(entries) {
		t.Errorf("index.json has %d entries, Entries() %d", len(idx.Entries), len(entries))
	}
	for _, e := range idx.Entries {
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("indexed file missing: %v", err)
		}
	}
}

// TestWholeRunDelegation pins the -cpuprofile/-memprofile contract: the
// whole-run CPU capture lands at CPUPath as the "all" phase, per-phase heap
// snapshots still happen, and HeapPath receives the final heap profile.
func TestWholeRunDelegation(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	p, err := New(Config{
		Dir: filepath.Join(dir, "profiles"), CPU: true, Heap: true,
		WholeRunCPU: true, CPUPath: cpuPath, HeapPath: memPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start("diffusion-train")
	spinSink += profileSpinHot(200_000)
	p.Stop("diffusion-train")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpuPath, memPath, filepath.Join(dir, "profiles", "diffusion-train.heap.pb.gz")} {
		if _, err := ParsePprofFile(path); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
	for _, e := range p.Entries() {
		if e.Kind == KindCPU && e.Phase != WholeRunPhase {
			t.Errorf("per-phase CPU entry %v captured while whole-run CPU held the profiler", e)
		}
	}
}

// TestNilProfiler pins the nil-off contract shared with obs.Recorder.
func TestNilProfiler(t *testing.T) {
	var p *PhaseProfiler
	p.Start("x")
	p.Stop("x")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Entries() != nil || p.Dir() != "" || p.Errs() != nil {
		t.Error("nil profiler leaked state")
	}
	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "entries") {
		t.Errorf("nil handler: code=%d body=%q", rr.Code, rr.Body.String())
	}
}

// TestHandlerServesIndexAndFiles drives the /debug/phaseprofiles surface.
func TestHandlerServesIndexAndFiles(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Heap: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Start("synthesis")
	p.Stop("synthesis")

	rr := httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	var idx struct {
		Entries []Entry `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index not JSON: %v (%s)", err, rr.Body.String())
	}
	if len(idx.Entries) == 0 {
		t.Fatal("live index empty after a captured phase")
	}

	rr = httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/"+idx.Entries[0].File, nil))
	if rr.Code != 200 {
		t.Fatalf("file fetch: %d %s", rr.Code, rr.Body.String())
	}
	if _, err := ParsePprof(rr.Body.Bytes()); err != nil {
		t.Fatalf("served profile does not decode: %v", err)
	}

	rr = httptest.NewRecorder()
	p.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/../escape", nil))
	if rr.Code == 200 {
		t.Error("path escape served")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
