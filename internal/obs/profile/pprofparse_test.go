package profile

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// Hand-assembled profile.proto messages exercise the wire walker on both
// repeated-scalar encodings (the Go runtime emits packed; older writers
// emit unpacked) without depending on runtime/pprof behaviour.

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, num, wire int) []byte {
	return appendVarint(b, uint64(num)<<3|uint64(wire))
}

func appendBytesField(b []byte, num int, payload []byte) []byte {
	b = appendTag(b, num, 2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendUintField(b []byte, num int, v uint64) []byte {
	b = appendTag(b, num, 0)
	return appendVarint(b, v)
}

// buildTestProfile assembles: strings ["","cpu","nanoseconds","fnLeaf",
// "fnCaller"], one sample type cpu/nanoseconds, two functions, two
// single-line locations, and one sample [leaf, caller] with value 7.
// packed selects the sample's repeated-field encoding.
func buildTestProfile(packed bool) []byte {
	var msg []byte
	vt := appendUintField(appendUintField(nil, 1, 1), 2, 2)
	msg = appendBytesField(msg, 1, vt)

	var sample []byte
	if packed {
		sample = appendBytesField(sample, 1, appendVarint(appendVarint(nil, 1), 2))
		sample = appendBytesField(sample, 2, appendVarint(nil, 7))
	} else {
		sample = appendUintField(sample, 1, 1)
		sample = appendUintField(sample, 1, 2)
		sample = appendUintField(sample, 2, 7)
	}
	msg = appendBytesField(msg, 2, sample)

	for i, fnName := range []uint64{3, 4} {
		id := uint64(i + 1)
		loc := appendUintField(nil, 1, id)
		line := appendUintField(nil, 1, id) // function_id
		line = appendUintField(line, 2, 42)
		loc = appendBytesField(loc, 4, line)
		msg = appendBytesField(msg, 4, loc)

		fn := appendUintField(nil, 1, id)
		fn = appendUintField(fn, 2, fnName)
		msg = appendBytesField(msg, 5, fn)
	}
	for _, s := range []string{"", "cpu", "nanoseconds", "fnLeaf", "fnCaller"} {
		msg = appendBytesField(msg, 6, []byte(s))
	}
	msg = appendUintField(msg, 10, 123456) // duration_nanos
	msg = appendUintField(msg, 12, 10000)  // period
	return msg
}

func TestParseHandBuilt(t *testing.T) {
	for _, tc := range []struct {
		name   string
		packed bool
		gz     bool
	}{
		{"packed-raw", true, false},
		{"unpacked-raw", false, false},
		{"packed-gzip", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := buildTestProfile(tc.packed)
			if tc.gz {
				var buf bytes.Buffer
				zw := gzip.NewWriter(&buf)
				zw.Write(data)
				zw.Close()
				data = buf.Bytes()
			}
			p, err := ParsePprof(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.SampleTypes) != 1 || p.SampleTypes[0] != (ValueType{"cpu", "nanoseconds"}) {
				t.Fatalf("sample types = %v", p.SampleTypes)
			}
			if p.DurationNanos != 123456 || p.Period != 10000 {
				t.Fatalf("duration/period = %d/%d", p.DurationNanos, p.Period)
			}
			flat, err := p.Flatten("")
			if err != nil {
				t.Fatal(err)
			}
			if flat.Total != 7 {
				t.Fatalf("total = %d, want 7", flat.Total)
			}
			leaf, caller := flat.Lookup("fnLeaf"), flat.Lookup("fnCaller")
			if leaf.Self != 7 || leaf.Cum != 7 {
				t.Errorf("fnLeaf = %+v, want self=cum=7", leaf)
			}
			if caller.Self != 0 || caller.Cum != 7 {
				t.Errorf("fnCaller = %+v, want self=0 cum=7", caller)
			}
		})
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		{},
		[]byte("not a profile"),
		{0x1f, 0x8b, 0x00}, // truncated gzip
	} {
		if _, err := ParsePprof(data); err == nil {
			t.Errorf("ParsePprof(%q) succeeded on garbage", data)
		}
	}
}

func flatFromPairs(unit string, pairs map[string][2]int64) *FlatProfile {
	fp := &FlatProfile{Type: "cpu", Unit: unit, funcs: make(map[string]*FuncStat)}
	for name, sc := range pairs {
		fp.funcs[name] = &FuncStat{Name: name, Self: sc[0], Cum: sc[1]}
		fp.Total += sc[0]
	}
	return fp
}

func TestDiffOrdersByRegression(t *testing.T) {
	base := flatFromPairs("nanoseconds", map[string][2]int64{
		"stable": {100, 100},
		"gone":   {50, 50},
	})
	cur := flatFromPairs("nanoseconds", map[string][2]int64{
		"stable":  {105, 105},
		"newSpin": {900, 900},
	})
	deltas := Diff(base, cur)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	if deltas[0].Name != "newSpin" || deltas[0].DeltaSelf != 900 {
		t.Errorf("top delta = %+v, want newSpin +900", deltas[0])
	}
	if deltas[len(deltas)-1].Name != "gone" || deltas[len(deltas)-1].DeltaSelf != -50 {
		t.Errorf("bottom delta = %+v, want gone -50", deltas[len(deltas)-1])
	}
}

func TestDiffNilSides(t *testing.T) {
	cur := flatFromPairs("bytes", map[string][2]int64{"alloc": {10, 10}})
	deltas := Diff(nil, cur)
	if len(deltas) != 1 || deltas[0].DeltaSelf != 10 {
		t.Fatalf("diff vs nil base = %+v", deltas)
	}
	if got := Diff(nil, nil); len(got) != 0 {
		t.Fatalf("diff of nils = %+v", got)
	}
}

func TestTopLimitsAndSorts(t *testing.T) {
	fp := flatFromPairs("nanoseconds", map[string][2]int64{
		"a": {5, 10}, "b": {20, 20}, "c": {1, 30},
	})
	top := fp.Top(2)
	if len(top) != 2 || top[0].Name != "b" || top[1].Name != "a" {
		t.Fatalf("top = %+v", top)
	}
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		unit string
		want string
	}{
		{2_500_000, "nanoseconds", "2.5ms"},
		{2048, "bytes", "2.0kB"},
		{3, "count", "3"},
	} {
		if got := FormatValue(tc.v, tc.unit); got != tc.want {
			t.Errorf("FormatValue(%d, %s) = %q, want %q", tc.v, tc.unit, got, tc.want)
		}
	}
}
