// Package profile implements phase-scoped continuous profiling for the
// SiloFuse pipeline. A PhaseProfiler captures CPU, heap, and (for the bus)
// mutex/block profiles bracketed to each pipeline phase — ae-train,
// latent-ship, diffusion-train, synthesis, e2e-train — and writes them as
// standard pprof protos to <dir>/<phase>.<kind>.pb.gz, indexed in
// index.json so run manifests and the /debug/phaseprofiles endpoint can
// enumerate them.
//
// The package mirrors the obs nil-safety contract: a nil *PhaseProfiler is
// "profiling off" and every exported pointer method is a no-op on it, so
// capture hooks can sit at phase boundaries unconditionally. It imports
// only the standard library; the decoder half (pprofparse.go) parses the
// captured protos back without any pprof dependency.
package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// Profile kinds captured per phase.
const (
	KindCPU   = "cpu"
	KindHeap  = "heap"
	KindMutex = "mutex"
	KindBlock = "block"
)

// WholeRunPhase is the pseudo-phase covering New..Close. It preserves the
// semantics of silofuse-bench's -cpuprofile/-memprofile flags, which
// delegate whole-run capture to this package so there is one capture path.
const WholeRunPhase = "all"

// Config selects what a PhaseProfiler captures and where it lands.
type Config struct {
	// Dir receives <phase>.<kind>.pb.gz files and index.json. Empty
	// disables per-phase capture (only CPUPath/HeapPath whole-run output).
	Dir string
	// CPU/Heap/Mutex/Block enable the respective profile kinds.
	CPU   bool
	Heap  bool
	Mutex bool
	Block bool
	// Phases, when non-empty, restricts capture to the named phases.
	Phases []string
	// WholeRunCPU captures one CPU profile spanning New..Close as the
	// "all" phase instead of per-phase CPU slices (the Go runtime allows
	// only one active CPU profile).
	WholeRunCPU bool
	// CPUPath, when set with WholeRunCPU, is where the whole-run CPU
	// profile is written (the -cpuprofile contract). Defaults to
	// Dir/all.cpu.pb.gz.
	CPUPath string
	// HeapPath, when set, receives a final post-GC heap profile at Close
	// (the -memprofile contract).
	HeapPath string
	// MutexFraction and BlockRateNanos tune runtime sampling while the
	// profiler is live; zero values take sensible defaults (1 and 100µs).
	MutexFraction  int
	BlockRateNanos int
}

// DefaultConfig captures all four kinds for every phase into dir.
func DefaultConfig(dir string) Config {
	return Config{Dir: dir, CPU: true, Heap: true, Mutex: true, Block: true}
}

// Entry indexes one captured profile file. The slice of entries is
// embedded in run manifests and served at /debug/phaseprofiles.
type Entry struct {
	Phase    string  `json:"phase"`
	Kind     string  `json:"kind"`
	File     string  `json:"file"` // base name inside the profiles dir
	Bytes    int64   `json:"bytes"`
	DurSec   float64 `json:"dur_sec,omitempty"` // phase wall time (cpu entries)
	Captures int     `json:"captures"`          // times the phase ran; file holds the last
}

// PhaseProfiler brackets pprof captures to pipeline phases. Safe for
// concurrent use; overlapping phases are resolved by "first phase wins" —
// a Start while another phase is active is recorded as skipped rather than
// corrupting the single process-wide CPU profile.
type PhaseProfiler struct {
	mu  sync.Mutex
	cfg Config // immutable after New
	//silofuse:guardedby mu
	active string    // phase currently holding per-phase capture
	start  time.Time //silofuse:guardedby mu
	//silofuse:guardedby mu
	openedAt time.Time
	//silofuse:guardedby mu
	cpuHolder string   // phase (or WholeRunPhase) owning runtime CPU profiling
	cpuFile   *os.File //silofuse:guardedby mu
	//silofuse:guardedby mu
	entries map[string]*Entry // phase+"/"+kind
	order   []string          //silofuse:guardedby mu
	errs    []string          //silofuse:guardedby mu
	//silofuse:guardedby mu
	prevMutex int
	closed    bool //silofuse:guardedby mu
}

// New creates the profiler, makes cfg.Dir, raises the runtime mutex/block
// sampling rates if those kinds are enabled, and — under WholeRunCPU —
// immediately starts the "all" CPU capture.
func New(cfg Config) (*PhaseProfiler, error) {
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("profile dir: %w", err)
		}
	}
	p := &PhaseProfiler{cfg: cfg, entries: make(map[string]*Entry), openedAt: time.Now()}
	if cfg.Mutex {
		frac := cfg.MutexFraction
		if frac <= 0 {
			frac = 1
		}
		p.prevMutex = runtime.SetMutexProfileFraction(frac)
	}
	if cfg.Block {
		rate := cfg.BlockRateNanos
		if rate <= 0 {
			rate = 100_000 // sample blocking events >= 100µs on average
		}
		runtime.SetBlockProfileRate(rate)
	}
	if cfg.WholeRunCPU && cfg.CPU {
		dest := cfg.CPUPath
		if dest == "" && cfg.Dir != "" {
			dest = filepath.Join(cfg.Dir, WholeRunPhase+"."+KindCPU+".pb.gz")
		}
		if dest != "" {
			f, err := os.Create(dest)
			if err != nil {
				return nil, fmt.Errorf("cpu profile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpu profile: %w", err)
			}
			p.cpuHolder = WholeRunPhase
			p.cpuFile = f
		}
	}
	return p, nil
}

// Start begins capture for phase. Under per-phase CPU mode it acquires the
// process CPU profiler; heap/mutex/block snapshots are taken at Stop. A
// nil receiver, an unlisted phase, or an already-active phase is a no-op.
func (p *PhaseProfiler) Start(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !p.phaseEnabled(phase) {
		return
	}
	if p.active != "" {
		p.errs = append(p.errs, fmt.Sprintf("phase %q started while %q active; skipped", phase, p.active))
		return
	}
	p.active = phase
	p.start = time.Now()
	if p.cfg.CPU && p.cfg.Dir != "" && p.cpuHolder == "" {
		name := phase + "." + KindCPU + ".pb.gz"
		f, err := os.Create(filepath.Join(p.cfg.Dir, name))
		if err != nil {
			p.errs = append(p.errs, err.Error())
			return
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			// Another subsystem owns the CPU profiler; keep heap et al.
			p.errs = append(p.errs, fmt.Sprintf("phase %q: %v", phase, err))
			f.Close()
			os.Remove(f.Name())
			return
		}
		p.cpuHolder = phase
		p.cpuFile = f
	}
}

// Stop ends capture for phase: releases the CPU profile if this phase owns
// it and snapshots the enabled heap/mutex/block profiles. Mismatched or
// nil calls are no-ops, so Stop can sit on every exit path of a phase.
func (p *PhaseProfiler) Stop(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.active != phase {
		return
	}
	p.active = ""
	dur := time.Since(p.start).Seconds()
	if p.cpuHolder == phase {
		pprof.StopCPUProfile()
		p.finishCPUFileLocked(phase, dur)
	}
	p.snapshotLocked(phase, dur)
}

// finishCPUFileLocked closes the active CPU destination and, when it lives
// inside the profiles dir, indexes it (a -cpuprofile redirect outside the
// dir is the caller's file, not a run artifact).
//
//silofuse:locked mu
func (p *PhaseProfiler) finishCPUFileLocked(phase string, dur float64) {
	f := p.cpuFile
	p.cpuHolder = ""
	p.cpuFile = nil
	if f == nil {
		return
	}
	if err := f.Close(); err != nil {
		p.errs = append(p.errs, err.Error())
		return
	}
	if p.cfg.Dir == "" || filepath.Dir(f.Name()) != filepath.Clean(p.cfg.Dir) {
		return
	}
	var bytes int64
	if fi, err := os.Stat(f.Name()); err == nil {
		bytes = fi.Size()
	}
	p.indexLocked(phase, KindCPU, filepath.Base(f.Name()), bytes, dur)
}

// snapshotLocked writes the point-in-time profiles for a finished phase.
//
//silofuse:locked mu
func (p *PhaseProfiler) snapshotLocked(phase string, dur float64) {
	if p.cfg.Dir == "" {
		return
	}
	kinds := []struct {
		kind    string
		lookup  string
		enabled bool
	}{
		{KindHeap, "heap", p.cfg.Heap},
		{KindMutex, "mutex", p.cfg.Mutex},
		{KindBlock, "block", p.cfg.Block},
	}
	for _, k := range kinds {
		if !k.enabled {
			continue
		}
		prof := pprof.Lookup(k.lookup)
		if prof == nil {
			continue
		}
		name := phase + "." + k.kind + ".pb.gz"
		path := filepath.Join(p.cfg.Dir, name)
		f, err := os.Create(path)
		if err != nil {
			p.errs = append(p.errs, err.Error())
			continue
		}
		err = prof.WriteTo(f, 0) // debug=0: gzipped protobuf
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			p.errs = append(p.errs, err.Error())
			continue
		}
		var bytes int64
		if fi, serr := os.Stat(path); serr == nil {
			bytes = fi.Size()
		}
		p.indexLocked(phase, k.kind, name, bytes, dur)
	}
}

// indexLocked records (or refreshes) the entry for phase/kind.
//
//silofuse:locked mu
func (p *PhaseProfiler) indexLocked(phase, kind, file string, bytes int64, dur float64) {
	key := phase + "/" + kind
	e, ok := p.entries[key]
	if !ok {
		e = &Entry{Phase: phase, Kind: kind}
		p.entries[key] = e
		p.order = append(p.order, key)
	}
	e.File = file
	e.Bytes = bytes
	e.DurSec = dur
	e.Captures++
}

// phaseEnabled applies the allowlist; per-phase capture also needs a Dir.
func (p *PhaseProfiler) phaseEnabled(phase string) bool {
	if p.cfg.Dir == "" {
		return false
	}
	if len(p.cfg.Phases) == 0 {
		return true
	}
	for _, want := range p.cfg.Phases {
		if want == phase {
			return true
		}
	}
	return false
}

// Close stops any live capture, writes the whole-run heap profile(s) and
// the index, and restores the runtime sampling rates. Idempotent.
func (p *PhaseProfiler) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	wallDur := time.Since(p.openedAt).Seconds()
	if p.active != "" {
		ph := p.active
		p.active = ""
		if p.cpuHolder == ph {
			pprof.StopCPUProfile()
			p.finishCPUFileLocked(ph, time.Since(p.start).Seconds())
		}
	}
	if p.cpuHolder == WholeRunPhase {
		pprof.StopCPUProfile()
		p.finishCPUFileLocked(WholeRunPhase, wallDur)
	}
	p.finalHeapLocked(wallDur)
	if p.cfg.Mutex {
		runtime.SetMutexProfileFraction(p.prevMutex)
	}
	if p.cfg.Block {
		runtime.SetBlockProfileRate(0)
	}
	return p.writeIndexLocked()
}

// finalHeapLocked writes the post-GC whole-run heap profile to Dir and/or
// the -memprofile destination.
//
//silofuse:locked mu
func (p *PhaseProfiler) finalHeapLocked(dur float64) {
	if !p.cfg.Heap && p.cfg.HeapPath == "" {
		return
	}
	prof := pprof.Lookup("heap")
	if prof == nil {
		return
	}
	runtime.GC() // settle live-object accounting, matching `go test -memprofile`
	dests := make([]string, 0, 2)
	if p.cfg.Heap && p.cfg.Dir != "" {
		dests = append(dests, filepath.Join(p.cfg.Dir, WholeRunPhase+"."+KindHeap+".pb.gz"))
	}
	if p.cfg.HeapPath != "" {
		dests = append(dests, p.cfg.HeapPath)
	}
	for _, path := range dests {
		f, err := os.Create(path)
		if err != nil {
			p.errs = append(p.errs, err.Error())
			continue
		}
		err = prof.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			p.errs = append(p.errs, err.Error())
			continue
		}
		if filepath.Dir(path) == filepath.Clean(p.cfg.Dir) {
			var bytes int64
			if fi, serr := os.Stat(path); serr == nil {
				bytes = fi.Size()
			}
			p.indexLocked(WholeRunPhase, KindHeap, filepath.Base(path), bytes, dur)
		}
	}
}

// writeIndexLocked persists index.json next to the profiles.
//
//silofuse:locked mu
func (p *PhaseProfiler) writeIndexLocked() error {
	if p.cfg.Dir == "" {
		return nil
	}
	idx := struct {
		Entries []Entry  `json:"entries"`
		Errors  []string `json:"errors,omitempty"`
	}{Entries: p.entriesLocked(), Errors: p.errs}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(p.cfg.Dir, "index.json"), append(data, '\n'), 0o644)
}

// entriesLocked returns the index sorted by phase then kind.
//
//silofuse:locked mu
func (p *PhaseProfiler) entriesLocked() []Entry {
	out := make([]Entry, 0, len(p.order))
	for _, key := range p.order {
		out = append(out, *p.entries[key])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Entries returns the captured-profile index so far, sorted by phase then
// kind. Safe on a nil receiver (returns nil).
func (p *PhaseProfiler) Entries() []Entry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entriesLocked()
}

// Dir returns the profiles directory ("" when per-phase capture is off).
func (p *PhaseProfiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.cfg.Dir
}

// Errs returns capture problems accumulated so far (skipped overlapping
// phases, I/O failures). Capture is best-effort: errors never abort a run.
func (p *PhaseProfiler) Errs() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.errs...)
}

// IndexEntryPath resolves an indexed file name inside dir, rejecting path
// escapes. Shared by the HTTP handler and CLI loaders.
func IndexEntryPath(dir, file string) (string, error) {
	if file == "" || file != filepath.Base(file) {
		return "", fmt.Errorf("invalid profile file name %q", file)
	}
	return filepath.Join(dir, file), nil
}

// EntryFileName is the canonical file name for a phase/kind pair.
func EntryFileName(phase, kind string) string {
	return phase + "." + kind + ".pb.gz"
}
