package obs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Property: for any stream of non-negative observations, each quantile
// estimate must land inside the bucket that contains the true order
// statistic. The histogram promises ~10% relative error from its bucket
// geometry; this pins that contract across distributions and stream sizes
// rather than against hand-picked expectations.
//
// The true q-quantile under quantileLocked's rank convention is the
// ceil(max(1, q*n))-th smallest observation; the estimate interpolates
// within (and is clamped to exact min/max inside) that value's bucket, so
// it must lie in [bucketLo(b), bucketLo(b+1)] for b = bucketIndex(true).
func TestHistogramQuantileBucketBound(t *testing.T) {
	type gen struct {
		name string
		draw func(r *rand.Rand) float64
	}
	gens := []gen{
		{"uniform01", func(r *rand.Rand) float64 { return r.Float64() }},
		// Log-uniform across 12 decades exercises nearly every bucket.
		{"loguniform", func(r *rand.Rand) float64 {
			return math.Pow(10, -6+12*r.Float64())
		}},
		// Exponential durations: heavy ties near zero, long tail.
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 1e-3 }},
		// Zeros and sub-histMin values land in the underflow bucket.
		{"withzeros", func(r *rand.Rand) float64 {
			if r.Intn(4) == 0 {
				return 0
			}
			return r.Float64() * 1e-8
		}},
		// Beyond histMax lands in the overflow bucket; estimates clamp to max.
		{"overflow", func(r *rand.Rand) float64 { return 1e11 + 1e12*r.Float64() }},
	}
	quantiles := []float64{0.50, 0.95, 0.99}
	sizes := []int{1, 2, 7, 100, 1000}
	for _, g := range gens {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("%s/n=%d", g.name, n), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(n)*1000 + int64(len(g.name))))
				h := NewHistogram()
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = g.draw(r)
					h.Observe(vals[i])
				}
				sort.Float64s(vals)
				for _, q := range quantiles {
					rank := q * float64(n)
					if rank < 1 {
						rank = 1
					}
					truth := vals[int(math.Ceil(rank))-1]
					b := bucketIndex(truth)
					lo, hi := bucketLo(b), bucketLo(b+1)
					got := h.Quantile(q)
					if got < lo || got > hi {
						t.Errorf("P%.0f = %g outside bucket [%g, %g] of true quantile %g",
							q*100, got, lo, hi, truth)
					}
				}
			})
		}
	}
}

// A constant stream must report the constant exactly at every quantile:
// min/max clamping collapses the bucket interpolation to the single
// observed value.
func TestHistogramQuantileConstantExact(t *testing.T) {
	for _, c := range []float64{0, 1e-12, 3.7e-4, 1.0, 2.5e13} {
		h := NewHistogram()
		for i := 0; i < 50; i++ {
			h.Observe(c)
		}
		st := h.Stats()
		for _, got := range []float64{st.P50, st.P95, st.P99} {
			if got != c { //silofuse:bitwise-ok min/max clamping promises exact constants
				t.Errorf("constant stream %g: quantile %g, want exact constant", c, got)
			}
		}
		if st.Min != c || st.Max != c { //silofuse:bitwise-ok min/max track observations exactly
			t.Errorf("constant stream %g: min/max %g/%g", c, st.Min, st.Max)
		}
	}
}

// Quantile estimates are monotone in q: P50 <= P95 <= P99 on any stream.
func TestHistogramQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 500; i++ {
		h.Observe(r.ExpFloat64())
	}
	st := h.Stats()
	if !(st.P50 <= st.P95 && st.P95 <= st.P99) {
		t.Errorf("quantiles not monotone: P50=%g P95=%g P99=%g", st.P50, st.P95, st.P99)
	}
	if st.P50 < st.Min || st.P99 > st.Max {
		t.Errorf("quantiles escape [min, max]: [%g, %g] vs P50=%g P99=%g", st.Min, st.Max, st.P50, st.P99)
	}
}
