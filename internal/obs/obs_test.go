//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps").Add(5)
	r.Counter("steps").Inc()
	if got := r.Counter("steps").Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	r.Gauge("loss").Set(1.5)
	r.Gauge("loss").Set(0.25)
	if got := r.Gauge("loss").Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Stats().Count; got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

// TestHistogramQuantilesUniform checks the streaming quantile estimates on a
// known distribution: uniform 1..10000 has p50≈5000, p95≈9500, p99≈9900.
// The exponential buckets guarantee ~10% relative error.
func TestHistogramQuantilesUniform(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		h.Observe(1 + rng.Float64()*9999)
	}
	st := h.Stats()
	for _, tc := range []struct {
		got, want float64
	}{
		{st.P50, 5000}, {st.P95, 9500}, {st.P99, 9900},
	} {
		if rel := math.Abs(tc.got-tc.want) / tc.want; rel > 0.15 {
			t.Fatalf("quantile %v, want %v (rel err %.3f)", tc.got, tc.want, rel)
		}
	}
	if st.Count != 50000 {
		t.Fatalf("count = %d", st.Count)
	}
	wantMean := 5000.5
	if mean := st.Sum / float64(st.Count); math.Abs(mean-wantMean) > 100 {
		t.Fatalf("mean = %v, want ≈%v", mean, wantMean)
	}
}

// TestHistogramQuantilesExponential covers a heavy-tailed fixture:
// Exp(rate=1) has p50=ln2≈0.693, p95≈2.996, p99≈4.605.
func TestHistogramQuantilesExponential(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		h.Observe(rng.ExpFloat64())
	}
	st := h.Stats()
	for _, tc := range []struct {
		got, want float64
	}{
		{st.P50, math.Ln2}, {st.P95, 2.9957}, {st.P99, 4.6052},
	} {
		if rel := math.Abs(tc.got-tc.want) / tc.want; rel > 0.15 {
			t.Fatalf("quantile %v, want %v (rel err %.3f)", tc.got, tc.want, rel)
		}
	}
}

// TestHistogramConstant: min/max clamping makes a constant stream exact.
func TestHistogramConstant(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(0.125)
	}
	st := h.Stats()
	if st.P50 != 0.125 || st.P95 != 0.125 || st.P99 != 0.125 {
		t.Fatalf("constant quantiles = %+v, want exactly 0.125", st)
	}
	if st.Min != 0.125 || st.Max != 0.125 {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
}

func TestHistogramEmptyAndEdgeValues(t *testing.T) {
	h := NewHistogram()
	if st := h.Stats(); st.Count != 0 || st.P99 != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	// Zero, negative and NaN-adjacent values land in the underflow bucket
	// without panicking.
	h.Observe(0)
	h.Observe(-3)
	h.Observe(1e30) // beyond histMax -> overflow bucket
	if st := h.Stats(); st.Count != 3 {
		t.Fatalf("count = %d", st.Count)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ae_steps_total").Add(3)
	r.Gauge("ae_loss").Set(1.25)
	r.Histogram("ae_step_seconds").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ae_steps_total 3",
		"ae_loss 1.25",
		"ae_step_seconds_count 1",
		"ae_step_seconds_sum 0.5",
		`ae_step_seconds{quantile="0.5"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text exposition missing %q:\n%s", want, out)
		}
	}
	// Lines are sorted.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("lines not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus_bytes_total_latents").Add(1024)
	r.Gauge("diffusion_loss").Set(0.5)
	r.Histogram("h").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["bus_bytes_total_latents"] != 1024 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["diffusion_loss"] != 0.5 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histograms = %v", s.Histograms)
	}
}

// chromeFile mirrors the Chrome trace JSON envelope for test parsing.
type chromeFile struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TS    float64        `json:"ts"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestChromeTraceShape verifies the satellite requirements on the trace
// output: valid JSON, non-decreasing timestamps, and strictly matched B/E
// pairs under stack discipline.
func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("stacked-train")
	a := root.Child("ae-train")
	a.SetAttr("clients", 4)
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("diffusion-train")
	b.End()
	root.End()
	leftOpen := tr.StartSpan("synthesis") // auto-closed at export
	_ = leftOpen

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 8 {
		t.Fatalf("events = %d, want 8 (4 spans x B/E)", len(f.TraceEvents))
	}
	prev := -1.0
	var stack []string
	for _, ev := range f.TraceEvents {
		if ev.TS < prev {
			t.Fatalf("ts not monotonic: %v after %v", ev.TS, prev)
		}
		prev = ev.TS
		switch ev.Phase {
		case "B":
			stack = append(stack, ev.Name)
		case "E":
			if len(stack) == 0 {
				t.Fatalf("E event %q without matching B", ev.Name)
			}
			if top := stack[len(stack)-1]; top != ev.Name {
				t.Fatalf("E event %q does not match open span %q", ev.Name, top)
			}
			stack = stack[:len(stack)-1]
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed B events: %v", stack)
	}
}

func TestTracerSpansHierarchy(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("run")
	c := root.Child("phase-1")
	c.SetAttr("rows", 100)
	c.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "run" || spans[1].Name != "phase-1" {
		t.Fatalf("span order = %v", spans)
	}
	if spans[1].Parent != "run" {
		t.Fatalf("child parent = %q", spans[1].Parent)
	}
	if spans[1].Attrs["rows"] != 100 && spans[1].Attrs["rows"] != float64(100) {
		t.Fatalf("attrs = %v", spans[1].Attrs)
	}
	if spans[0].DurSec < spans[1].DurSec {
		t.Fatal("parent duration should cover child")
	}
}

// TestRecorderNilSafe: a nil recorder and all handles derived from it are
// valid no-ops — this is the contract the hot paths rely on.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.TrainStep("diffusion", 1.0, 32, time.Millisecond)
	r.Message("latents", 100, time.Microsecond)
	sp := r.StartSpan("phase")
	sp.SetAttr("k", "v")
	child := sp.Child("sub")
	child.End()
	sp.End()
	if snap := r.Snapshot(); snap.Counters != nil {
		t.Fatal("nil recorder snapshot should be zero")
	}
	var tr *Tracer
	if tr.StartSpan("x") != nil {
		t.Fatal("nil tracer should hand out nil spans")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer Spans should be nil")
	}
}

func TestRecorderMetrics(t *testing.T) {
	r := NewRecorder()
	r.TrainStep("ae", 2.5, 64, 2*time.Millisecond)
	r.TrainStep("ae", 2.0, 64, 2*time.Millisecond)
	r.Message("latents", 4096, time.Millisecond)
	s := r.Snapshot()
	if s.Counters["ae_steps_total"] != 2 || s.Counters["ae_rows_total"] != 128 {
		t.Fatalf("train counters = %v", s.Counters)
	}
	if s.Gauges["ae_loss"] != 2.0 {
		t.Fatalf("loss gauge = %v", s.Gauges)
	}
	if s.Counters["bus_bytes_total_latents"] != 4096 {
		t.Fatalf("bus counters = %v", s.Counters)
	}
	if h := s.Histograms["ae_step_seconds"]; h.Count != 2 || h.Sum < 0.003 {
		t.Fatalf("step histogram = %+v", h)
	}
}
