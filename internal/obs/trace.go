package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer collects hierarchical spans and exports them in Chrome trace
// format, so a training run can be opened directly in chrome://tracing or
// https://ui.perfetto.dev. Spans are recorded as begin/end ("B"/"E") event
// pairs in the order they actually happen, which keeps exported timestamps
// monotonic by construction.
//
// The tracer targets coarse, phase-level tracing (ae-train, latent-ship,
// diffusion-train, synthesis, ...). Parentage is tracked via the stack of
// currently open spans, so strictly nested use yields an exact hierarchy;
// concurrent span creation is safe but attributed best-effort.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	epoch  int64 // wall-clock tracer start, microseconds since the Unix epoch
	pid    int
	proc   string
	events []traceEvent
	open   []*Span
	nextID int
	onEnd  []func(SpanInfo)
}

type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds since tracer start
	Dur   float64        `json:"dur,omitempty"` // complete ("X") event duration, microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"` // flow event binding id
	BP    string         `json:"bp,omitempty"` // flow binding point
	Scope string         `json:"s,omitempty"`  // instant event scope
	Args  map[string]any `json:"args,omitempty"`
}

// Span is one timed region. A nil *Span is a valid no-op: every method
// guards the nil receiver, so span handles from a disabled tracer cost
// nothing to use.
type Span struct {
	tr     *Tracer
	id     int
	parent int // span id, -1 for roots
	name   string
	start  time.Duration
	end    time.Duration
	attrs  map[string]any
	ended  bool
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	now := time.Now()
	return &Tracer{start: now, epoch: now.UnixMicro(), pid: 1}
}

// SetProcess assigns the tracer a Chrome-trace process lane: every event is
// stamped with pid, and the exported trace carries a process_name metadata
// record so viewers label the lane. Use distinct pids per party (coordinator,
// each silo) so merged traces render one lane per process. Call before any
// spans are recorded; a nil tracer ignores the call.
func (t *Tracer) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pid = pid
	t.proc = name
}

// PID returns the tracer's process lane (1 for the default lane, 0 on nil).
func (t *Tracer) PID() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pid
}

// SetOnSpanEnd registers fn as the only span-end hook, replacing any hooks
// registered before. Hooks run after every span ends (outside the tracer's
// lock), with the finished span's summary. The Recorder uses this to stream
// phase records to an event log.
func (t *Tracer) SetOnSpanEnd(fn func(SpanInfo)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEnd = []func(SpanInfo){fn}
}

// AddOnSpanEnd registers fn alongside any existing span-end hooks, so
// several consumers (an event log, a telemetry federator, a flight
// recorder) can observe span ends independently.
func (t *Tracer) AddOnSpanEnd(fn func(SpanInfo)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEnd = append(t.onEnd, fn)
}

// Epoch returns the tracer's wall-clock start in microseconds since the
// Unix epoch (0 on a nil tracer) — the alignment key MergeChromeTraces and
// the telemetry federation use to place traces from different processes on
// one timeline.
func (t *Tracer) Epoch() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// StartSpan opens a span named name. The caller must End it. Calling on a
// nil tracer returns a nil (no-op) span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: t.nextID, parent: -1, name: name, start: time.Since(t.start)}
	t.nextID++
	if n := len(t.open); n > 0 {
		s.parent = t.open[n-1].id
	}
	t.open = append(t.open, s)
	t.events = append(t.events, traceEvent{
		Name: name, Cat: "silofuse", Phase: "B",
		TS: float64(s.start) / float64(time.Microsecond), PID: t.pid, TID: 1,
	})
	return s
}

// FlowSend marks a cross-party message departure: an instant marker on this
// tracer's lane plus a Chrome flow-start event carrying id. The matching
// FlowRecv on the receiver's tracer closes the flow, so a merged trace draws
// an arrow between the two process lanes. A nil tracer ignores the call.
func (t *Tracer) FlowSend(name string, id uint64) {
	if t == nil {
		return
	}
	t.flowEvent(name, id, "s", "send")
}

// FlowRecv marks the arrival of the message whose FlowSend carried the same
// id. A nil tracer ignores the call.
func (t *Tracer) FlowRecv(name string, id uint64) {
	if t == nil {
		return
	}
	t.flowEvent(name, id, "f", "recv")
}

func (t *Tracer) flowEvent(name string, id uint64, phase, verb string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := float64(time.Since(t.start)) / float64(time.Microsecond)
	bp := ""
	if phase == "f" {
		bp = "e" // bind the flow finish to the enclosing slice
	}
	t.events = append(t.events,
		traceEvent{Name: verb + " " + name, Cat: "bus", Phase: "i",
			TS: ts, PID: t.pid, TID: 1, Scope: "t"},
		traceEvent{Name: "msg " + name, Cat: "bus", Phase: phase,
			TS: ts, PID: t.pid, TID: 1, ID: id, BP: bp})
}

// Child opens a sub-span of s. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(name)
}

// SetAttr attaches a key/value attribute to the span; attributes are
// exported as Chrome trace "args" on the span's end event.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span. Ending twice (or ending a nil span) is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	info, ok := s.endLocked()
	fns := append([]func(SpanInfo){}, s.tr.onEnd...)
	s.tr.mu.Unlock()
	if ok {
		for _, fn := range fns {
			fn(info)
		}
	}
}

func (s *Span) endLocked() (SpanInfo, bool) {
	if s.ended {
		return SpanInfo{}, false
	}
	s.ended = true
	s.end = time.Since(s.tr.start)
	if s.end < s.start {
		s.end = s.start
	}
	for i, o := range s.tr.open {
		if o == s {
			s.tr.open = append(s.tr.open[:i], s.tr.open[i+1:]...)
			break
		}
	}
	s.tr.events = append(s.tr.events, traceEvent{
		Name: s.name, Cat: "silofuse", Phase: "E",
		TS: float64(s.end) / float64(time.Microsecond), PID: s.tr.pid, TID: 1,
		Args: s.attrs,
	})
	return SpanInfo{
		Name:     s.name,
		StartSec: s.start.Seconds(),
		DurSec:   (s.end - s.start).Seconds(),
		Attrs:    s.attrs,
	}, true
}

// SpanInfo is an exported span summary (for run manifests).
type SpanInfo struct {
	Name     string         `json:"name"`
	Parent   string         `json:"parent,omitempty"`
	StartSec float64        `json:"start_sec"`
	DurSec   float64        `json:"dur_sec"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// chromeTrace is the Chrome trace file envelope (JSON Object Format).
// EpochMicros is this repository's extension (trace viewers ignore unknown
// top-level keys): the tracer's wall-clock start, which lets MergeChromeTraces
// align traces written by different processes onto one timeline.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	EpochMicros     int64        `json:"epochMicros,omitempty"`
}

// WriteChromeTrace writes the collected events as Chrome trace JSON. Spans
// still open are closed at the current time first (innermost first), so the
// output always has matched B/E pairs. When SetProcess named the lane, a
// process_name metadata record is prepended so viewers label it.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var infos []SpanInfo
	for len(t.open) > 0 {
		if info, ok := t.open[len(t.open)-1].endLocked(); ok {
			infos = append(infos, info)
		}
	}
	events := make([]traceEvent, 0, len(t.events)+1)
	if t.proc != "" {
		events = append(events, traceEvent{
			Name: "process_name", Phase: "M", PID: t.pid, TID: 1,
			Args: map[string]any{"name": t.proc},
		})
	}
	events = append(events, t.events...)
	out := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms", EpochMicros: t.epoch}
	fns := append([]func(SpanInfo){}, t.onEnd...)
	t.mu.Unlock()
	for _, fn := range fns {
		for _, info := range infos {
			fn(info)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTraceLive writes the trace as it stands right now: spans still
// open are emitted with a synthetic end at the current time but remain open
// in the tracer. This is the non-destructive variant of WriteChromeTrace
// for live endpoints — serving /trace mid-run must not end the run's spans.
func (t *Tracer) WriteChromeTraceLive(w io.Writer) error {
	if t == nil {
		return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"})
	}
	t.mu.Lock()
	events := make([]traceEvent, 0, len(t.events)+len(t.open)+1)
	if t.proc != "" {
		events = append(events, traceEvent{
			Name: "process_name", Phase: "M", PID: t.pid, TID: 1,
			Args: map[string]any{"name": t.proc},
		})
	}
	events = append(events, t.events...)
	now := float64(time.Since(t.start)) / float64(time.Microsecond)
	for i := len(t.open) - 1; i >= 0; i-- {
		s := t.open[i]
		events = append(events, traceEvent{
			Name: s.name, Cat: "silofuse", Phase: "E",
			TS: now, PID: t.pid, TID: 1, Args: s.attrs,
		})
	}
	out := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms", EpochMicros: t.epoch}
	t.mu.Unlock()
	return json.NewEncoder(w).Encode(out)
}

// MergeChromeTraces stitches several Chrome trace JSON documents (each
// written by WriteChromeTrace, typically one per process of a distributed
// run) into a single trace sharing one timeline. Timestamps are aligned via
// each document's epochMicros (traces lacking it are left unshifted), and
// colliding pids are remapped so every input keeps its own process lane.
// Flow events stitched by trace-context ids then connect lanes end to end.
func MergeChromeTraces(w io.Writer, traces ...io.Reader) error {
	docs := make([]chromeTrace, len(traces))
	for i, r := range traces {
		if err := json.NewDecoder(r).Decode(&docs[i]); err != nil {
			return fmt.Errorf("obs: merge trace %d: %w", i, err)
		}
	}
	var minEpoch int64
	for _, d := range docs {
		if d.EpochMicros > 0 && (minEpoch == 0 || d.EpochMicros < minEpoch) {
			minEpoch = d.EpochMicros
		}
	}
	used := make(map[int]bool)
	nextPID := 1
	var merged []traceEvent
	for _, d := range docs {
		shift := 0.0
		if d.EpochMicros > 0 && minEpoch > 0 {
			shift = float64(d.EpochMicros - minEpoch)
		}
		remap := make(map[int]int)
		for _, ev := range d.TraceEvents {
			pid, ok := remap[ev.PID]
			if !ok {
				pid = ev.PID
				for used[pid] {
					nextPID++
					pid = nextPID
				}
				used[pid] = true
				remap[ev.PID] = pid
			}
			ev.PID = pid
			if ev.Phase != "M" {
				ev.TS += shift
			}
			merged = append(merged, ev)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].TS < merged[j].TS })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: merged, DisplayTimeUnit: "ms", EpochMicros: minEpoch})
}

// Spans lists every ended span in start order, reconstructed from the B/E
// event log. Spans still open are excluded; call after the traced work
// finishes (or after WriteChromeTrace, which closes stragglers).
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanInfo
	var stack []int // indexes into out of currently open spans
	ended := make([]bool, 0)
	for _, ev := range t.events {
		switch ev.Phase {
		case "B":
			info := SpanInfo{Name: ev.Name, StartSec: ev.TS / 1e6}
			if len(stack) > 0 {
				info.Parent = out[stack[len(stack)-1]].Name
			}
			out = append(out, info)
			ended = append(ended, false)
			stack = append(stack, len(out)-1)
		case "E":
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out[top].DurSec = ev.TS/1e6 - out[top].StartSec
			out[top].Attrs = ev.Args
			ended[top] = true
		}
	}
	res := make([]SpanInfo, 0, len(out))
	for i, s := range out {
		if ended[i] {
			res = append(res, s)
		}
	}
	return res
}
