package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer collects hierarchical spans and exports them in Chrome trace
// format, so a training run can be opened directly in chrome://tracing or
// https://ui.perfetto.dev. Spans are recorded as begin/end ("B"/"E") event
// pairs in the order they actually happen, which keeps exported timestamps
// monotonic by construction.
//
// The tracer targets coarse, phase-level tracing (ae-train, latent-ship,
// diffusion-train, synthesis, ...). Parentage is tracked via the stack of
// currently open spans, so strictly nested use yields an exact hierarchy;
// concurrent span creation is safe but attributed best-effort.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []traceEvent
	open   []*Span
	nextID int
}

type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since tracer start
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Span is one timed region. A nil *Span is a valid no-op: every method
// guards the nil receiver, so span handles from a disabled tracer cost
// nothing to use.
type Span struct {
	tr     *Tracer
	id     int
	parent int // span id, -1 for roots
	name   string
	start  time.Duration
	end    time.Duration
	attrs  map[string]any
	ended  bool
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// StartSpan opens a span named name. The caller must End it. Calling on a
// nil tracer returns a nil (no-op) span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: t.nextID, parent: -1, name: name, start: time.Since(t.start)}
	t.nextID++
	if n := len(t.open); n > 0 {
		s.parent = t.open[n-1].id
	}
	t.open = append(t.open, s)
	t.events = append(t.events, traceEvent{
		Name: name, Cat: "silofuse", Phase: "B",
		TS: float64(s.start) / float64(time.Microsecond), PID: 1, TID: 1,
	})
	return s
}

// Child opens a sub-span of s. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.StartSpan(name)
}

// SetAttr attaches a key/value attribute to the span; attributes are
// exported as Chrome trace "args" on the span's end event.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End closes the span. Ending twice (or ending a nil span) is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.endLocked()
}

func (s *Span) endLocked() {
	if s.ended {
		return
	}
	s.ended = true
	s.end = time.Since(s.tr.start)
	if s.end < s.start {
		s.end = s.start
	}
	for i, o := range s.tr.open {
		if o == s {
			s.tr.open = append(s.tr.open[:i], s.tr.open[i+1:]...)
			break
		}
	}
	s.tr.events = append(s.tr.events, traceEvent{
		Name: s.name, Cat: "silofuse", Phase: "E",
		TS: float64(s.end) / float64(time.Microsecond), PID: 1, TID: 1,
		Args: s.attrs,
	})
}

// SpanInfo is an exported span summary (for run manifests).
type SpanInfo struct {
	Name     string         `json:"name"`
	Parent   string         `json:"parent,omitempty"`
	StartSec float64        `json:"start_sec"`
	DurSec   float64        `json:"dur_sec"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// chromeTrace is the Chrome trace file envelope (JSON Object Format).
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the collected events as Chrome trace JSON. Spans
// still open are closed at the current time first (innermost first), so the
// output always has matched B/E pairs.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	for len(t.open) > 0 {
		t.open[len(t.open)-1].endLocked()
	}
	out := chromeTrace{TraceEvents: append([]traceEvent(nil), t.events...), DisplayTimeUnit: "ms"}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Spans lists every ended span in start order, reconstructed from the B/E
// event log. Spans still open are excluded; call after the traced work
// finishes (or after WriteChromeTrace, which closes stragglers).
func (t *Tracer) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanInfo
	var stack []int // indexes into out of currently open spans
	ended := make([]bool, 0)
	for _, ev := range t.events {
		switch ev.Phase {
		case "B":
			info := SpanInfo{Name: ev.Name, StartSec: ev.TS / 1e6}
			if len(stack) > 0 {
				info.Parent = out[stack[len(stack)-1]].Name
			}
			out = append(out, info)
			ended = append(ended, false)
			stack = append(stack, len(out)-1)
		case "E":
			if len(stack) == 0 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out[top].DurSec = ev.TS/1e6 - out[top].StartSec
			out[top].Attrs = ev.Args
			ended[top] = true
		}
	}
	res := make([]SpanInfo, 0, len(out))
	for i, s := range out {
		if ended[i] {
			res = append(res, s)
		}
	}
	return res
}
