package obs

import "time"

// Recorder bundles a metrics registry and a tracer into the single
// telemetry sink that instrumented code holds. A nil *Recorder is the
// default and means "telemetry off": every method (and every span it hands
// out) guards the nil receiver, so hot paths pay one pointer comparison and
// nothing else. Instrumented loops should also skip their time.Now calls
// when the recorder is nil:
//
//	var t0 time.Time
//	if m.Rec != nil {
//		t0 = time.Now()
//	}
//	loss := step()
//	if m.Rec != nil {
//		m.Rec.TrainStep("diffusion", loss, batch, time.Since(t0))
//	}
type Recorder struct {
	Reg   *Registry
	Trace *Tracer
}

// NewRecorder creates an enabled recorder with a fresh registry and tracer.
func NewRecorder() *Recorder {
	return &Recorder{Reg: NewRegistry(), Trace: NewTracer()}
}

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// TrainStep records one optimisation step of the named training stage
// ("ae", "diffusion", "gan", "gbdt", "e2e"): it bumps
// <stage>_steps_total and <stage>_rows_total, sets the <stage>_loss gauge,
// and observes the step duration in <stage>_step_seconds — enough to derive
// loss curves and rows/sec throughput from a snapshot.
func (r *Recorder) TrainStep(stage string, loss float64, rows int, d time.Duration) {
	if r == nil {
		return
	}
	r.Reg.Counter(stage + "_steps_total").Inc()
	r.Reg.Counter(stage + "_rows_total").Add(int64(rows))
	r.Reg.Gauge(stage + "_loss").Set(loss)
	r.Reg.Histogram(stage + "_step_seconds").Observe(d.Seconds())
}

// Message records one transport send of the given message kind: it bumps
// bus_messages_total_<kind> and bus_bytes_total_<kind> and observes the
// send latency in bus_send_seconds_<kind>.
func (r *Recorder) Message(kind string, bytes int64, d time.Duration) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_messages_total_" + kind).Inc()
	r.Reg.Counter("bus_bytes_total_" + kind).Add(bytes)
	r.Reg.Histogram("bus_send_seconds_" + kind).Observe(d.Seconds())
}

// StartSpan opens a trace span (nil span when disabled).
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Trace.StartSpan(name)
}

// Snapshot returns the metric snapshot (zero value when disabled).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.Reg.Snapshot()
}
