package obs

import (
	"strings"
	"sync/atomic"
	"time"

	"silofuse/internal/obs/profile"
)

// Recorder bundles a metrics registry and a tracer into the single
// telemetry sink that instrumented code holds. A nil *Recorder is the
// default and means "telemetry off": every method (and every span it hands
// out) guards the nil receiver, so hot paths pay one pointer comparison and
// nothing else. Instrumented loops read the clock through the recorder's
// nil-gated Now/Since, which keeps the deterministic packages free of
// direct time.Now calls (pinned by the walltime analyzer):
//
//	t0 := m.Rec.Now() // zero Time when telemetry is off
//	loss := step()
//	if m.Rec != nil {
//		m.Rec.TrainStep("diffusion", loss, batch, m.Rec.Since(t0))
//	}
type Recorder struct {
	Reg   *Registry
	Trace *Tracer
	// Events, when non-nil, receives streaming run records: one "train"
	// event every EventEvery optimisation steps per stage, and one "phase"
	// event per finished trace span. Attach it with SetEvents so the phase
	// hook is installed too.
	Events *EventWriter
	// EventEvery is the per-stage step interval between "train" events.
	// Zero means the default (50); negative disables train events.
	EventEvery int
	// Flight, when non-nil, receives a bounded trail of recent operations
	// (train steps, span ends, bus traffic) for post-mortem dumps. Attach it
	// with SetFlight so the span-end hook is installed too.
	Flight *FlightRecorder
	// Prof, when non-nil, captures phase-scoped pprof profiles. The
	// pipeline calls ProfilePhaseStart/ProfilePhaseEnd at its phase
	// boundaries; both are no-ops when the profiler (or recorder) is nil.
	Prof *profile.PhaseProfiler

	flow atomic.Uint64
}

// NewRecorder creates an enabled recorder with a fresh registry and tracer.
func NewRecorder() *Recorder {
	return &Recorder{Reg: NewRegistry(), Trace: NewTracer()}
}

// NewPartyRecorder builds a recorder for one party of a multi-actor run: it
// shares reg — so metrics from every party aggregate under their canonical
// names — but owns a private tracer on its own Chrome-trace process lane
// (pid, labelled name). Merge the parties' traces with MergeChromeTraces.
func NewPartyRecorder(reg *Registry, pid int, name string) *Recorder {
	tr := NewTracer()
	tr.SetProcess(pid, name)
	return &Recorder{Reg: reg, Trace: tr}
}

// SetEvents attaches the event sink and installs the span-end hook that
// streams "phase" records (name, duration, attributes, cumulative wire bytes
// by kind). Several recorders may share one EventWriter; it serialises
// internally. The hook is added alongside any other span-end consumers
// (flight recorder, telemetry federator) — call SetEvents once per recorder.
// A nil recorder or nil sink is a no-op.
func (r *Recorder) SetEvents(ew *EventWriter) {
	if r == nil || ew == nil {
		return
	}
	r.Events = ew
	r.Trace.AddOnSpanEnd(func(sp SpanInfo) {
		fields := map[string]any{
			"name":      sp.Name,
			"start_sec": sp.StartSec,
			"dur_sec":   sp.DurSec,
		}
		if len(sp.Attrs) > 0 {
			fields["attrs"] = sp.Attrs
		}
		if byKind := r.wireBytesByKind(); len(byKind) > 0 {
			fields["bus_bytes_by_kind"] = byKind
		}
		ew.Emit("phase", fields)
	})
}

// SetFlight attaches the flight recorder and installs the span-end hook
// that notes finished spans, so a post-mortem dump shows which phases
// completed before the failure. A nil recorder or nil ring is a no-op.
func (r *Recorder) SetFlight(fr *FlightRecorder) {
	if r == nil || fr == nil {
		return
	}
	r.Flight = fr
	r.Trace.AddOnSpanEnd(func(sp SpanInfo) {
		fr.Note("span", sp.Name, "", sp.DurSec)
	})
}

// SetProfiler attaches the phase profiler. A nil recorder is a no-op; a
// nil profiler detaches.
func (r *Recorder) SetProfiler(p *profile.PhaseProfiler) {
	if r == nil {
		return
	}
	r.Prof = p
}

// ProfilePhaseStart begins phase-scoped profile capture. It sits directly
// at phase boundaries (never inside step loops), so the disabled cost is
// one nil check here and one inside the profiler.
func (r *Recorder) ProfilePhaseStart(phase string) {
	if r == nil {
		return
	}
	r.Prof.Start(phase)
}

// ProfilePhaseEnd finishes phase-scoped capture and snapshots the
// point-in-time profiles (heap, mutex, block) for the phase. Safe on every
// exit path: mismatched or repeated calls are no-ops.
func (r *Recorder) ProfilePhaseEnd(phase string) {
	if r == nil {
		return
	}
	r.Prof.Stop(phase)
}

// FlightNote forwards one operation to the attached flight recorder; a nil
// recorder or absent ring ignores the call. Transport code uses this for
// receive-side notes that have no metric counterpart.
func (r *Recorder) FlightNote(op, name, peer string, value float64) {
	if r == nil {
		return
	}
	r.Flight.Note(op, name, peer, value)
}

// wireBytesByKind snapshots the cumulative bus_bytes_total_* counters.
func (r *Recorder) wireBytesByKind() map[string]int64 {
	out := make(map[string]int64)
	for name, v := range r.Reg.Snapshot().Counters {
		if kind, ok := strings.CutPrefix(name, "bus_bytes_total_"); ok {
			out[kind] = v
		}
	}
	return out
}

// NextFlow issues a flow id for cross-party message stitching, unique across
// processes because the tracer's pid is folded into the high bits. Zero (from
// a nil recorder) means "no trace context".
func (r *Recorder) NextFlow() uint64 {
	if r == nil {
		return 0
	}
	return uint64(r.Trace.PID())<<32 | (r.flow.Add(1) & 0xffffffff)
}

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Now reads the wall clock, or returns the zero Time on a nil recorder. The
// deterministic packages (tensor, nn, diffusion, autoencoder, core, silo)
// read time only through an enabled recorder, so a telemetry-off run never
// observes the clock at all.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since returns the time elapsed since a t0 captured by Now. A nil recorder
// or a zero t0 (telemetry was off at the start of the measured region)
// yields zero.
func (r *Recorder) Since(t0 time.Time) time.Duration {
	if r == nil || t0.IsZero() {
		return 0
	}
	return time.Since(t0)
}

// TrainStep records one optimisation step of the named training stage
// ("ae", "diffusion", "gan", "gbdt", "e2e"): it bumps
// <stage>_steps_total and <stage>_rows_total, sets the <stage>_loss gauge,
// and observes the step duration in <stage>_step_seconds — enough to derive
// loss curves and rows/sec throughput from a snapshot.
func (r *Recorder) TrainStep(stage string, loss float64, rows int, d time.Duration) {
	if r == nil {
		return
	}
	steps := r.Reg.Counter(stage + "_steps_total")
	steps.Inc()
	r.Reg.Counter(stage + "_rows_total").Add(int64(rows))
	r.Reg.Gauge(stage + "_loss").Set(loss)
	r.Reg.Histogram(stage + "_step_seconds").Observe(d.Seconds())
	r.Flight.Note("train", stage, "", loss)
	if r.Events != nil {
		every := r.EventEvery
		if every == 0 {
			every = 50
		}
		if n := steps.Value(); every > 0 && n%int64(every) == 0 {
			rps := 0.0
			if d > 0 {
				rps = float64(rows) / d.Seconds()
			}
			r.Events.Emit("train", map[string]any{
				"stage":        stage,
				"step":         n,
				"loss":         loss,
				"rows":         rows,
				"rows_per_sec": rps,
				"step_seconds": d.Seconds(),
			})
		}
	}
}

// TrainAllocs records the heap-allocation cost of a finished training loop
// of the named stage: allocs and bytes are runtime.MemStats deltas
// (Mallocs, TotalAlloc) measured across steps optimisation steps. They land
// in the <stage>_allocs_per_step and <stage>_alloc_bytes_per_step gauges,
// the perf counterpart to <stage>_step_seconds. Training loops re-running
// within one process overwrite the gauges, so a snapshot reflects the most
// recent loop — steady state, once workspaces are warm.
func (r *Recorder) TrainAllocs(stage string, steps int, allocs, bytes uint64) {
	if r == nil || steps <= 0 {
		return
	}
	r.Reg.Gauge(stage + "_allocs_per_step").Set(float64(allocs) / float64(steps))
	r.Reg.Gauge(stage + "_alloc_bytes_per_step").Set(float64(bytes) / float64(steps))
}

// Message records one transport send of the given message kind: it bumps
// bus_messages_total_<kind> and bus_bytes_total_<kind> and observes the
// send latency in bus_send_seconds_<kind>.
func (r *Recorder) Message(kind string, bytes int64, d time.Duration) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_messages_total_" + kind).Inc()
	r.Reg.Counter("bus_bytes_total_" + kind).Add(bytes)
	r.Reg.Histogram("bus_send_seconds_" + kind).Observe(d.Seconds())
	r.Flight.Note("send", kind, "", float64(bytes))
}

// WireCodec records one codec-framed transport send: raw is the modelled
// native-float64 wire cost, enc the encoded bytes actually framed, and
// maxErr/meanErr the caller's RUNNING error aggregates for this
// (codec, kind) stream — the caller accumulates, the recorder just stores.
// Metrics land under wire_<field>_<codec>_<kind> (codec names carry no
// underscore, so consumers split on the first "_" after the prefix):
// wire_messages_total_, wire_raw_bytes_total_, wire_bytes_total_ counters
// and wire_err_max_, wire_err_mean_ gauges.
func (r *Recorder) WireCodec(codec, kind string, raw, enc int64, maxErr, meanErr float64) {
	if r == nil {
		return
	}
	suffix := codec + "_" + kind
	r.Reg.Counter("wire_messages_total_" + suffix).Inc()
	r.Reg.Counter("wire_raw_bytes_total_" + suffix).Add(raw)
	r.Reg.Counter("wire_bytes_total_" + suffix).Add(enc)
	r.Reg.Gauge("wire_err_max_" + suffix).Set(maxErr)
	r.Reg.Gauge("wire_err_mean_" + suffix).Set(meanErr)
}

// Retry records one transport retransmission of the given message kind
// after a backoff of d: it bumps bus_retries_total_<kind> and observes the
// backoff in bus_backoff_seconds_<kind>. Retransmitted bytes themselves are
// accounted by Message under the "retransmit" kind, keeping goodput
// counters invariant under faults.
func (r *Recorder) Retry(kind string, d time.Duration) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_retries_total_" + kind).Inc()
	r.Reg.Histogram("bus_backoff_seconds_" + kind).Observe(d.Seconds())
	r.Flight.Note("retry", kind, "", d.Seconds())
}

// Redelivery records a receiver-side duplicate discard (an envelope whose
// sequence number was already delivered): bus_redeliveries_total_<kind>.
func (r *Recorder) Redelivery(kind string) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_redeliveries_total_" + kind).Inc()
	r.Flight.Note("redelivery", kind, "", 0)
}

// CorruptPayload records a checksum-failed envelope:
// bus_corrupt_total_<kind>.
func (r *Recorder) CorruptPayload(kind string) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_corrupt_total_" + kind).Inc()
	r.Flight.Note("corrupt", kind, "", 0)
}

// Reconnect records a transport reconnect for the named peer:
// bus_reconnects_total_<peer>.
func (r *Recorder) Reconnect(peer string) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_reconnects_total_" + peer).Inc()
	r.Flight.Note("reconnect", "", peer, 0)
}

// PeerDown records a peer-death detection for the named peer:
// bus_peer_down_total_<peer>.
func (r *Recorder) PeerDown(peer string) {
	if r == nil {
		return
	}
	r.Reg.Counter("bus_peer_down_total_" + peer).Inc()
	r.Flight.Note("peer-down", "", peer, 0)
}

// StartSpan opens a trace span (nil span when disabled).
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.Trace.StartSpan(name)
}

// Snapshot returns the metric snapshot (zero value when disabled).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return r.Reg.Snapshot()
}
