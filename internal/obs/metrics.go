// Package obs is the repository's telemetry layer: a concurrency-safe
// metrics registry (counters, gauges, streaming histograms with quantile
// estimates), hierarchical trace spans exportable in Chrome trace format
// (chrome://tracing, Perfetto), and a nil-safe Recorder that the training
// loops and the silo transport fabric thread through their hot paths.
//
// Everything is pure stdlib and allocation-light: a disabled (nil) Recorder
// costs one pointer comparison per call site, so instrumented code pays
// nothing when telemetry is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. A nil counter (from a nil registry) is a
// no-op.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric holding the most recent value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. A nil gauge (from a nil registry) is a no-op.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the most recently stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a concurrency-safe collection of named metrics. Metric
// accessors create on first use, so call sites never pre-register.
type Registry struct {
	mu sync.Mutex
	//silofuse:guardedby mu
	counters map[string]*Counter
	//silofuse:guardedby mu
	gauges map[string]*Gauge
	//silofuse:guardedby mu
	hists map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric, JSON-marshalable for
// run manifests and machine consumers.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value (zero value on a nil
// registry).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. A nil registry writes an
// empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		r = NewRegistry()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes every metric in a Prometheus-flavoured line format,
// sorted by metric name: counters and gauges as `name value`, histograms as
// `name_count`, `name_sum` and `name{quantile="..."}` lines.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_sum %g", name, h.Sum),
			fmt.Sprintf("%s{quantile=\"0.5\"} %g", name, h.P50),
			fmt.Sprintf("%s{quantile=\"0.95\"} %g", name, h.P95),
			fmt.Sprintf("%s{quantile=\"0.99\"} %g", name, h.P99),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
