package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPrometheusConformance validates WritePrometheus against the text
// exposition format (version 0.0.4): every family has exactly one # HELP
// followed by exactly one # TYPE with a legal type, families appear in
// sorted order, every sample line parses as name{labels} value with the name
// in the legal charset, and every sample belongs to the family announced
// above it.
func TestPrometheusConformance(t *testing.T) {
	rec := NewRecorder()
	rec.Message("latents", 4096, time.Millisecond)
	rec.Message("synth-req", 64, time.Millisecond)
	rec.TrainStep("ae", 2.5, 32, time.Millisecond)
	rec.TrainStep("diffusion", 0.9, 32, 2*time.Millisecond)
	rec.Reg.Gauge("alloc_bytes_per_step_ae").Set(128)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	legalTypes := map[string]bool{"counter": true, "gauge": true, "summary": true, "histogram": true, "untyped": true}

	var families []string
	currentFamily := ""
	sawHelp := map[string]bool{}
	sawType := map[string]bool{}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[3] == "" {
				t.Fatalf("line %d: HELP without text: %q", i+1, line)
			}
			name := parts[2]
			if sawHelp[name] {
				t.Fatalf("family %s: # HELP emitted twice", name)
			}
			sawHelp[name] = true
			families = append(families, name)
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("family %s: # HELP not immediately followed by its # TYPE", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 || !legalTypes[parts[3]] {
				t.Fatalf("line %d: bad TYPE line: %q", i+1, line)
			}
			name := parts[2]
			if sawType[name] {
				t.Fatalf("family %s: # TYPE emitted twice", name)
			}
			sawType[name] = true
			currentFamily = name
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: not a valid sample: %q", i+1, line)
			}
			if !nameRe.MatchString(m[1]) {
				t.Fatalf("line %d: illegal metric name %q", i+1, m[1])
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("line %d: unparseable value %q", i+1, m[3])
			}
			// _sum and _count samples belong to the summary family.
			base := strings.TrimSuffix(strings.TrimSuffix(m[1], "_sum"), "_count")
			if base != currentFamily && m[1] != currentFamily {
				t.Fatalf("line %d: sample %s outside its family %s", i+1, m[1], currentFamily)
			}
		}
	}
	if len(families) == 0 {
		t.Fatal("no families emitted")
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] > families[i] {
			t.Fatalf("families out of order: %s after %s", families[i], families[i-1])
		}
	}
	for name := range sawHelp {
		if !sawType[name] {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
	}
}
