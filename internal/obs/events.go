package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// EventWriter streams run events as JSON lines (one object per line) to an
// append-only sink, so a long training run is tailable while it happens and
// a crash-truncated log keeps every completed line readable. Each line
// carries a monotonically increasing "seq", the wall-clock "time", seconds
// since the writer opened ("t_sec"), a "type" tag, and the caller's fields.
//
// Emit serialises under a mutex and issues a single Write per event, so one
// writer can be shared by every party of a multi-actor run. A nil
// *EventWriter is a valid no-op sink.
type EventWriter struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	start time.Time
	seq   int64
}

// NewEventWriter wraps an arbitrary sink (e.g. a bytes.Buffer in tests).
func NewEventWriter(w io.Writer) *EventWriter {
	ew := &EventWriter{w: w, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		ew.c = c
	}
	return ew
}

// OpenEventLog creates path's directory if needed and opens the file in
// append mode, so successive runs with the same run name accumulate.
func OpenEventLog(path string) (*EventWriter, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: event log dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: event log: %w", err)
	}
	return NewEventWriter(f), nil
}

// Emit appends one event of the given type. fields may be nil; reserved keys
// (seq, time, t_sec, type) are overwritten. Marshal or write errors are
// dropped — telemetry must never fail the run it observes.
func (ew *EventWriter) Emit(typ string, fields map[string]any) {
	if ew == nil {
		return
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	rec := make(map[string]any, len(fields)+4)
	for k, v := range fields {
		rec[k] = v
	}
	rec["seq"] = ew.seq
	rec["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["t_sec"] = time.Since(ew.start).Seconds()
	rec["type"] = typ
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	ew.seq++
	_, _ = ew.w.Write(append(line, '\n'))
}

// Close closes the underlying sink when it supports closing.
func (ew *EventWriter) Close() error {
	if ew == nil || ew.c == nil {
		return nil
	}
	return ew.c.Close()
}
