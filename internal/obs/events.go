package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// EventWriter streams run events as JSON lines (one object per line) to an
// append-only sink, so a long training run is tailable while it happens and
// a crash-truncated log keeps every completed line readable. Each line
// carries a monotonically increasing "seq", the wall-clock "time", seconds
// since the writer opened ("t_sec"), a "type" tag, and the caller's fields.
//
// Emit serialises under a mutex and issues a single Write per event, so one
// writer can be shared by every party of a multi-actor run. A nil
// *EventWriter is a valid no-op sink.
type EventWriter struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	start time.Time
	seq   int64
}

// NewEventWriter wraps an arbitrary sink (e.g. a bytes.Buffer in tests).
func NewEventWriter(w io.Writer) *EventWriter {
	ew := &EventWriter{w: w, start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		ew.c = c
	}
	return ew
}

// OpenEventLog creates path's directory if needed and opens the file in
// append mode, so successive runs with the same run name accumulate.
func OpenEventLog(path string) (*EventWriter, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: event log dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: event log: %w", err)
	}
	return NewEventWriter(f), nil
}

// Emit appends one event of the given type. fields may be nil; reserved keys
// (seq, time, t_sec, type) are overwritten. Marshal or write errors are
// dropped — telemetry must never fail the run it observes.
func (ew *EventWriter) Emit(typ string, fields map[string]any) {
	if ew == nil {
		return
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	rec := make(map[string]any, len(fields)+4)
	for k, v := range fields {
		rec[k] = v
	}
	rec["seq"] = ew.seq
	rec["time"] = time.Now().UTC().Format(time.RFC3339Nano)
	rec["t_sec"] = time.Since(ew.start).Seconds()
	rec["type"] = typ
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	ew.seq++
	_, _ = ew.w.Write(append(line, '\n'))
	if typ == "run-end" {
		ew.syncLocked()
	}
}

// Sync forces buffered data to stable storage when the sink supports it
// (os.File does). Emit calls it automatically on the "run-end" event, so a
// clean shutdown never loses the final line even if the process is killed
// before Close.
func (ew *EventWriter) Sync() error {
	if ew == nil {
		return nil
	}
	ew.mu.Lock()
	defer ew.mu.Unlock()
	return ew.syncLocked()
}

func (ew *EventWriter) syncLocked() error {
	if s, ok := ew.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close closes the underlying sink when it supports closing.
func (ew *EventWriter) Close() error {
	if ew == nil || ew.c == nil {
		return nil
	}
	return ew.c.Close()
}

// ReadEvents parses a JSON-lines event stream with crash tolerance: every
// newline-terminated line must parse (a malformed interior line is a real
// error), while a trailing fragment without a newline — the signature of a
// crash mid-write — is silently dropped unless it happens to be complete
// JSON. This is the one reader contract shared by the obs package and the
// silofuse-obs analyzer, pinned by TestReadEventsTruncated.
func ReadEvents(r io.Reader) ([]map[string]any, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("obs: read events: %w", err)
	}
	var out []map[string]any
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		terminated := false
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data, terminated = data[:i], data[i+1:], true
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			if !terminated {
				break // crash-truncated final fragment
			}
			return nil, fmt.Errorf("obs: events line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// ReadEventsFile is ReadEvents over a file path.
func ReadEventsFile(path string) ([]map[string]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEvents(f)
}
