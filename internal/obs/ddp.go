package obs

import "strconv"

// ddpStages precomputes the stage names for small worker ids so the DDP
// hot loop's per-step telemetry does not build a string per record.
var ddpStages = [16]string{
	"ddp_w0", "ddp_w1", "ddp_w2", "ddp_w3", "ddp_w4", "ddp_w5", "ddp_w6", "ddp_w7",
	"ddp_w8", "ddp_w9", "ddp_w10", "ddp_w11", "ddp_w12", "ddp_w13", "ddp_w14", "ddp_w15",
}

// WorkerStage names the telemetry stage of data-parallel training worker w
// ("ddp_w3"): underscore-separated so derived metric names stay
// Prometheus-safe, and stable so bench snapshots can key on them.
func WorkerStage(w int) string {
	if w >= 0 && w < len(ddpStages) {
		return ddpStages[w]
	}
	return "ddp_w" + strconv.Itoa(w)
}
