//silofuse:bitwise-ok federation determinism tests pin exact delta arithmetic
package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestFederatorFlushDeltas checks the core federation contract: counters and
// histogram stats ship as deltas between flushes, gauges as current values,
// and the sequence number advances per flush.
func TestFederatorFlushDeltas(t *testing.T) {
	rec := NewRecorder()
	fed := NewFederator("c0", rec)

	rec.Reg.Counter("bus_bytes_total").Add(100)
	rec.Reg.Gauge("ae_loss").Set(2.5)
	rec.Reg.Histogram("ae_step_seconds").Observe(0.1)
	rec.Reg.Histogram("ae_step_seconds").Observe(0.3)

	u1 := fed.Flush()
	if u1 == nil {
		t.Fatal("flush returned nil on enabled federator")
	}
	if u1.Party != "c0" || u1.Seq != 1 {
		t.Fatalf("update identity = %q seq %d, want c0 seq 1", u1.Party, u1.Seq)
	}
	if u1.Counters["bus_bytes_total"] != 100 {
		t.Fatalf("counter delta = %d, want 100", u1.Counters["bus_bytes_total"])
	}
	if u1.Gauges["ae_loss"] != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", u1.Gauges["ae_loss"])
	}
	if h := u1.Hists["ae_step_seconds"]; h.Count != 2 {
		t.Fatalf("hist delta count = %d, want 2", h.Count)
	}

	rec.Reg.Counter("bus_bytes_total").Add(40)
	rec.Reg.Gauge("ae_loss").Set(1.25)
	u2 := fed.Flush()
	if u2.Seq != 2 {
		t.Fatalf("second flush seq = %d, want 2", u2.Seq)
	}
	if u2.Counters["bus_bytes_total"] != 40 {
		t.Fatalf("second counter delta = %d, want 40 (only the increment)", u2.Counters["bus_bytes_total"])
	}
	if u2.Gauges["ae_loss"] != 1.25 {
		t.Fatalf("second gauge = %v, want the current value 1.25", u2.Gauges["ae_loss"])
	}
	if _, ok := u2.Hists["ae_step_seconds"]; ok {
		t.Fatal("unchanged histogram must not ship a delta")
	}

	// An idle flush still carries identity and sequence (liveness tick).
	u3 := fed.Flush()
	if u3 == nil || u3.Party != "c0" || u3.Seq != 3 {
		t.Fatalf("idle flush = %+v, want identity-only update seq 3", u3)
	}
	if len(u3.Counters) != 0 {
		t.Fatalf("idle flush shipped counters: %v", u3.Counters)
	}
}

// TestFederatorCollectsSpans checks the tracer hook: spans ending between
// flushes ride the next update and are then cleared.
func TestFederatorCollectsSpans(t *testing.T) {
	rec := NewRecorder()
	fed := NewFederator("c1", rec)
	rec.StartSpan("ae-train").End()
	u := fed.Flush()
	if len(u.Spans) != 1 || u.Spans[0].Name != "ae-train" {
		t.Fatalf("spans = %+v, want one ae-train span", u.Spans)
	}
	if u2 := fed.Flush(); len(u2.Spans) != 0 {
		t.Fatalf("spans not cleared after flush: %+v", u2.Spans)
	}
}

// TestTelemetryUpdateRoundTrip checks encode/decode plus the aggregator's
// accumulation semantics: counters add, gauges overwrite, hist deltas merge,
// sequence gaps are counted.
func TestTelemetryUpdateRoundTrip(t *testing.T) {
	rec := NewRecorder()
	fed := NewFederator("c0", rec)
	fed.SetFaultSource(func() map[string]int64 { return map[string]int64{"drops": 3} })
	rec.Reg.Counter("rows_synth_total").Add(10)
	rec.Reg.Histogram("ae_step_seconds").Observe(0.2)

	agg := NewFleetAggregator()
	for i := 0; i < 2; i++ {
		blob, err := EncodeTelemetryUpdate(fed.Flush())
		if err != nil {
			t.Fatal(err)
		}
		u, err := DecodeTelemetryUpdate(blob)
		if err != nil {
			t.Fatal(err)
		}
		agg.Ingest(u)
		rec.Reg.Counter("rows_synth_total").Add(10)
	}

	snap := agg.PartySnapshot("c0")
	if snap.Counters["rows_synth_total"] != 20 {
		t.Fatalf("aggregated counter = %d, want 20 (two delta-10 updates)", snap.Counters["rows_synth_total"])
	}
	if h := snap.Histograms["ae_step_seconds"]; h.Count != 1 {
		t.Fatalf("aggregated hist count = %d, want 1", h.Count)
	}
	if faults := agg.Faults()["c0"]; faults["drops"] != 3 {
		t.Fatalf("faults = %v, want drops=3", faults)
	}

	// A gap in the sequence (an update lost to a crash) is recorded.
	agg.Ingest(&TelemetryUpdate{Party: "c0", Seq: 9})
	health, ok := agg.FleetHealth()["c0"].(map[string]any)
	if !ok {
		t.Fatalf("fleet health missing c0: %v", agg.FleetHealth())
	}
	if gaps := health["seq_gaps"].(int64); gaps != 1 {
		t.Fatalf("seq_gaps = %d, want 1", gaps)
	}

	if _, err := DecodeTelemetryUpdate([]byte(`{"seq":1}`)); err == nil {
		t.Fatal("decode accepted an update without a party")
	}
}

// TestFleetPrometheusExposition checks the fleet-wide exposition: every
// series carries its party label, each family emits exactly one # HELP and
// one # TYPE line, families are sorted, and the local party's registry wins
// over its stale federated copy.
func TestFleetPrometheusExposition(t *testing.T) {
	agg := NewFleetAggregator()
	for _, party := range []string{"c1", "c0"} {
		rec := NewRecorder()
		fed := NewFederator(party, rec)
		rec.Reg.Counter("bus_bytes_total_latents").Add(500)
		rec.Reg.Gauge("ae_loss").Set(3.0)
		rec.Reg.Histogram("ae_step_seconds").Observe(0.25)
		agg.Ingest(fed.Flush())
	}
	// A stale federated copy of the local party: the live snapshot must win.
	agg.Ingest(&TelemetryUpdate{Party: "coord", Seq: 1, Gauges: map[string]float64{"diffusion_loss": 99}})

	local := NewRegistry()
	local.Gauge("diffusion_loss").Set(0.5)
	var buf bytes.Buffer
	if err := agg.WritePrometheus(&buf, "coord", local.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		`bus_bytes_total_latents{party="c0"} 500`,
		`bus_bytes_total_latents{party="c1"} 500`,
		`ae_loss{party="c0"} 3`,
		`ae_step_seconds_count{party="c1"} 1`,
		`diffusion_loss{party="coord"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `diffusion_loss{party="coord"} 99`) {
		t.Error("stale federated copy of the local party leaked into the exposition")
	}

	// Conformance: # HELP and # TYPE exactly once per family, HELP first,
	// families in sorted order, no unlabelled series.
	var families []string
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			families = append(families, name)
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Errorf("family %s: # HELP not followed by its # TYPE", name)
			}
		} else if !strings.HasPrefix(line, "#") && !strings.Contains(line, `party="`) {
			t.Errorf("unlabelled series in fleet exposition: %q", line)
		}
	}
	seen := map[string]bool{}
	for i, name := range families {
		if seen[name] {
			t.Errorf("family %s emitted twice", name)
		}
		seen[name] = true
		if i > 0 && families[i-1] > name {
			t.Errorf("families out of order: %s after %s", name, families[i-1])
		}
	}
	if len(families) == 0 {
		t.Fatal("no families in exposition")
	}
}

// TestFleetChromeTrace checks the live merged trace: one process lane per
// federated party plus the local tracer, all in one valid Chrome-trace doc.
func TestFleetChromeTrace(t *testing.T) {
	agg := NewFleetAggregator()
	rec := NewRecorder()
	fed := NewFederator("c0", rec)
	rec.StartSpan("ae-train").End()
	agg.Ingest(fed.Flush())

	local := NewTracer()
	sp := local.StartSpan("diffusion-train")
	time.Sleep(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := agg.WriteChromeTrace(&buf, local); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fleet trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, _ := ev["name"].(string); n != "" {
			names[n] = true
		}
	}
	for _, want := range []string{"ae-train", "diffusion-train"} {
		if !names[want] {
			t.Errorf("fleet trace missing span %q (have %v)", want, names)
		}
	}
}
