package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FlightRecorder is a fixed-capacity, allocation-bounded ring buffer of
// recent telemetry operations — train events, span ends, bus
// send/recv/retry traffic. It exists for the moment a run dies: when a typed
// transport error escapes recovery, the last flightCapDefault operations of
// every party are dumped to results/<run>/postmortem/<party>.json, turning
// "the run crashed" into a readable tail of what each process was doing.
//
// The ring is preallocated at construction; Note overwrites the oldest slot
// in place, so steady-state recording allocates nothing and costs one mutex
// acquisition plus a struct store. A nil *FlightRecorder is a no-op,
// matching the package's recorder contract.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time //silofuse:guardedby mu
	//silofuse:guardedby mu
	entries []FlightEntry
	next    int    //silofuse:guardedby mu
	seq     uint64 //silofuse:guardedby mu
	full    bool   //silofuse:guardedby mu
}

// FlightEntry is one recorded operation. Op names the operation ("train",
// "span", "send", "recv", "retry", "redelivery", "corrupt", "reconnect",
// "peer-down", "event", ...); Name and Peer carry its labels (message kind,
// span name, peer id); Value carries its number (bytes, seconds, loss).
type FlightEntry struct {
	Seq   uint64  `json:"seq"`
	TSec  float64 `json:"t_sec"`
	Op    string  `json:"op"`
	Name  string  `json:"name,omitempty"`
	Peer  string  `json:"peer,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// flightCapDefault is the ring capacity when NewFlightRecorder is given a
// non-positive one: enough to cover the last few phases of a smoke run
// without holding a long run's whole history.
const flightCapDefault = 512

// NewFlightRecorder preallocates a ring of the given capacity
// (flightCapDefault when cap <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = flightCapDefault
	}
	return &FlightRecorder{start: time.Now(), entries: make([]FlightEntry, capacity)}
}

// Note records one operation, overwriting the oldest slot when the ring is
// full. Safe for concurrent use; a nil recorder ignores the call.
func (fr *FlightRecorder) Note(op, name, peer string, value float64) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	e := &fr.entries[fr.next]
	e.Seq = fr.seq
	e.TSec = time.Since(fr.start).Seconds()
	e.Op = op
	e.Name = name
	e.Peer = peer
	e.Value = value
	fr.seq++
	fr.next++
	if fr.next == len(fr.entries) {
		fr.next = 0
		fr.full = true
	}
	fr.mu.Unlock()
}

// Len reports how many entries the ring currently holds.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.full {
		return len(fr.entries)
	}
	return fr.next
}

// Entries returns the recorded operations oldest-first (a copy; the ring
// keeps recording).
func (fr *FlightRecorder) Entries() []FlightEntry {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if !fr.full {
		return append([]FlightEntry{}, fr.entries[:fr.next]...)
	}
	out := make([]FlightEntry, 0, len(fr.entries))
	out = append(out, fr.entries[fr.next:]...)
	out = append(out, fr.entries[:fr.next]...)
	return out
}

// PostmortemDump is the on-disk schema of a flight-recorder dump
// (results/<run>/postmortem/<party>.json).
type PostmortemDump struct {
	Party   string        `json:"party"`
	Cause   string        `json:"cause,omitempty"`
	Time    string        `json:"time"`
	Entries []FlightEntry `json:"entries"`
}

// WriteDump writes the ring as an indented PostmortemDump document. cause
// is the error (or reason) that triggered the dump; empty means on-demand.
func (fr *FlightRecorder) WriteDump(w io.Writer, party, cause string) error {
	if fr == nil {
		fr = &FlightRecorder{} // dump an empty document rather than nothing
	}
	d := PostmortemDump{
		Party:   party,
		Cause:   cause,
		Time:    time.Now().UTC().Format(time.RFC3339Nano),
		Entries: fr.Entries(),
	}
	if d.Entries == nil {
		d.Entries = []FlightEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DumpPostmortem writes runDir/postmortem/<party>.json from the ring and
// returns the written path. cause may be nil (on-demand dump).
func DumpPostmortem(runDir, party string, fr *FlightRecorder, cause error) (string, error) {
	dir := filepath.Join(runDir, "postmortem")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: postmortem dir: %w", err)
	}
	path := filepath.Join(dir, party+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: postmortem: %w", err)
	}
	reason := ""
	if cause != nil {
		reason = cause.Error()
	}
	if err := fr.WriteDump(f, party, reason); err != nil {
		f.Close()
		return "", fmt.Errorf("obs: postmortem write: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("obs: postmortem close: %w", err)
	}
	return path, nil
}
