package silo

import (
	"testing"

	"silofuse/internal/datagen"
)

// TestVFLClassifierLearnsOnPartitionedData trains the split classifier on
// vertically partitioned real data: the coordinator holds only labels,
// clients hold feature slices, and accuracy must beat the majority class.
func TestVFLClassifierLearnsOnPartitionedData(t *testing.T) {
	spec, err := datagen.ByName("cardio")
	if err != nil {
		t.Fatal(err)
	}
	tb := spec.Generate(1200, 3)
	labels := tb.CatColumn(0) // target column
	// Feature partitions exclude the target.
	featIdx := make([]int, 0, tb.Schema.NumColumns()-1)
	for j := 1; j < tb.Schema.NumColumns(); j++ {
		featIdx = append(featIdx, j)
	}
	features := tb.SelectColumns(featIdx)
	parts, err := features.Schema.Partition(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	silos := features.VerticalPartition(parts)

	cfg := VFLConfig{Classes: tb.Schema.Columns[0].Cardinality, EmbedDim: 8, HeadDim: 32, LR: 2e-3, Seed: 1}
	v, err := NewVFLClassifier(silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewLocalBus()
	if _, err := v.Train(bus, silos, labels, 400, 128); err != nil {
		t.Fatal(err)
	}
	pred, err := v.Predict(silos)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	counts := make([]int, cfg.Classes)
	for i := range labels {
		counts[labels[i]]++
		if pred[i] == labels[i] {
			correct++
		}
	}
	majority := 0
	for _, c := range counts {
		if c > majority {
			majority = c
		}
	}
	acc := float64(correct) / float64(len(labels))
	base := float64(majority) / float64(len(labels))
	if acc <= base+0.05 {
		t.Fatalf("vfl accuracy %v not above majority baseline %v", acc, base)
	}
	// Split learning traffic: 2 messages per client per iteration.
	if got := bus.Stats().Messages; got != int64(2*3*400) {
		t.Fatalf("vfl messages = %d, want %d", got, 2*3*400)
	}
}

func TestVFLValidation(t *testing.T) {
	spec, _ := datagen.ByName("loan")
	tb := spec.Generate(50, 1)
	parts, _ := tb.Schema.Partition(2, nil)
	silos := tb.VerticalPartition(parts)
	if _, err := NewVFLClassifier(silos, VFLConfig{Classes: 1}); err == nil {
		t.Fatal("expected class-count error")
	}
	v, err := NewVFLClassifier(silos, VFLConfig{Classes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Train(NewLocalBus(), silos[:1], nil, 1, 8); err == nil {
		t.Fatal("expected part-count error")
	}
	if _, err := v.Train(NewLocalBus(), silos, []int{0}, 1, 8); err == nil {
		t.Fatal("expected label-length error")
	}
	if _, err := v.Predict(silos[:1]); err == nil {
		t.Fatal("expected predict part-count error")
	}
}

// TestLatentNoiseKnob verifies the DP-style noise option changes uploaded
// latents but keeps the pipeline functional.
func TestLatentNoiseKnob(t *testing.T) {
	tb := loanTable(t, 200)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 30, 30
	cfg.LatentNoiseStd = 0.5
	p, err := NewPipeline(NewLocalBus(), tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	out, err := p.SynthesizeShared(0, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 20 {
		t.Fatal("noisy-latent pipeline failed to synthesise")
	}
}
