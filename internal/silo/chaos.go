package silo

import (
	"errors"
	"math"
	"sync"

	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// ErrDropped models a delivery deadline expiring on a lossy link: the
// ChaosBus returns it from Send instead of delivering the envelope, exactly
// as a sender with a per-message ack timeout would observe a drop. It is
// transient — the ResilientBus retries it — unlike the terminal ErrPeerDead.
var ErrDropped = errors.New("silo: message dropped (delivery deadline exceeded)")

// ChaosProfile describes a seeded fault schedule. Probabilities are in
// permille (0–1000) and are evaluated by a pure hash of (seed, link,
// sequence, fault lane), so a given seed injects the same faults on the
// same messages regardless of goroutine interleaving — no wall clock, no
// math/rand.
type ChaosProfile struct {
	Name string

	// DropPermille is the per-message probability that delivery fails with
	// ErrDropped. A dropped message stays dropped for up to
	// MaxConsecutiveDrops attempts (hash-chosen per message), then goes
	// through — keeping recoverable profiles within the resilient layer's
	// retry budget.
	DropPermille        int
	MaxConsecutiveDrops int

	// DupPermille delivers the message twice (network duplication).
	DupPermille int

	// ReorderPermille swaps the message with the next one already pending in
	// the recipient's inbox.
	ReorderPermille int

	// DelayPermille holds the message back for up to MaxDelayRecvs of the
	// recipient's subsequent receives, letting later messages overtake it.
	DelayPermille int
	MaxDelayRecvs int

	// CorruptPermille flips one payload bit in flight.
	CorruptPermille int

	// CrashPeer, when non-empty, kills that party after it has issued
	// CrashAfterSends application sends: the triggering send and all later
	// traffic to or from the peer fail with a PeerDeadError, and each party
	// in NotifyPeers receives a KindPeerDown notice so blocked receivers
	// wake. Revive clears the crash (the peer "restarts").
	CrashPeer       string
	CrashAfterSends int
	NotifyPeers     []string
}

// ChaosProfileByName resolves the named fault profiles exposed by the
// -chaos-profile flag. Recoverable profiles keep MaxConsecutiveDrops below
// the resilient layer's default retry budget; "blackhole" intentionally
// exceeds it to exercise the ErrPeerDead path, and "crash" kills client c1
// after its first upload.
func ChaosProfileByName(name string) (ChaosProfile, error) {
	switch name {
	case "", "none":
		return ChaosProfile{Name: "none"}, nil
	case "drop":
		return ChaosProfile{Name: name, DropPermille: 250, MaxConsecutiveDrops: 2}, nil
	case "dup":
		return ChaosProfile{Name: name, DupPermille: 300}, nil
	case "reorder":
		return ChaosProfile{Name: name, ReorderPermille: 300}, nil
	case "delay":
		return ChaosProfile{Name: name, DelayPermille: 300, MaxDelayRecvs: 3}, nil
	case "corrupt":
		return ChaosProfile{Name: name, CorruptPermille: 120}, nil
	case "flaky":
		return ChaosProfile{
			Name:         name,
			DropPermille: 150, MaxConsecutiveDrops: 2,
			DupPermille:     150,
			ReorderPermille: 150,
			DelayPermille:   150, MaxDelayRecvs: 2,
		}, nil
	case "blackhole":
		return ChaosProfile{Name: name, DropPermille: 1000, MaxConsecutiveDrops: 1 << 30}, nil
	case "crash":
		return ChaosProfile{Name: name, CrashPeer: "c1", CrashAfterSends: 1, NotifyPeers: []string{"coord"}}, nil
	default:
		return ChaosProfile{}, errors.New("silo: unknown chaos profile " + name)
	}
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Drops, Dups, Reorders, Delays, Corrupts, Crashes int64
}

// stashed is one receive-side held-back envelope: age is the number of the
// recipient's remaining receives it may sit out.
type stashed struct {
	e   *Envelope
	age int
}

// ChaosBus wraps a Bus and injects faults from the profile's seeded
// schedule. Send-side decisions (drop, duplicate, corrupt, crash) are pure
// functions of the message identity and therefore bit-deterministic;
// receive-side faults (reorder, delay) have a seeded decision schedule but
// act only on messages already in flight, so they can never block a
// delivery that the protocol is waiting for — liveness is unconditional.
type ChaosBus struct {
	inner Bus
	seed  uint64
	prof  ChaosProfile

	mu sync.Mutex
	//silofuse:guardedby mu
	pseudo map[string]uint64 // per-link seq for unsequenced envelopes
	//silofuse:guardedby mu
	attempts map[chaosKey]int // delivery attempts per message identity
	sends    int              //silofuse:guardedby mu
	fired    bool             //silofuse:guardedby mu
	//silofuse:guardedby mu
	crashed map[string]bool
	//silofuse:guardedby mu
	stash map[string][]stashed // held-back envelopes per recipient
	stats ChaosStats           //silofuse:guardedby mu
}

// chaosKey identifies one logical message on one link.
type chaosKey struct {
	link string
	seq  uint64
}

// Fault decision lanes: each fault class hashes the same message identity
// through a distinct lane so decisions are independent.
const (
	laneDrop = 1 + iota
	laneDropCount
	laneDup
	laneReorder
	laneDelay
	laneCorrupt
	laneCorruptBit
)

// NewChaosBus wraps inner with the seeded fault schedule.
func NewChaosBus(inner Bus, seed int64, prof ChaosProfile) *ChaosBus {
	return &ChaosBus{
		inner:    inner,
		seed:     uint64(seed),
		prof:     prof,
		pseudo:   make(map[string]uint64),
		attempts: make(map[chaosKey]int),
		crashed:  make(map[string]bool),
		stash:    make(map[string][]stashed),
	}
}

// SetRecorder implements RecorderSetter by forwarding to the inner bus.
func (c *ChaosBus) SetRecorder(rec *obs.Recorder) {
	if rs, ok := c.inner.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// splitmix64 is the finaliser of the splitmix64 generator — a full-avalanche
// 64-bit mix used to turn message identities into fault decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide hashes one message identity through a fault lane.
func (c *ChaosBus) decide(link string, seq, lane uint64) uint64 {
	h := c.seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(link); i++ {
		h = (h ^ uint64(link[i])) * 0x100000001b3
	}
	h ^= splitmix64(seq)
	return splitmix64(h ^ lane*0xc4ceb9fe1a85ec53)
}

// hit evaluates a permille probability on a decision hash.
func hit(h uint64, permille int) bool { return int(h%1000) < permille }

// key derives the message identity: the resilient layer's sequence number
// when present (stable across retransmissions), else a per-link counter.
func (c *ChaosBus) key(e *Envelope) chaosKey {
	link := e.From + "->" + e.To
	if e.Seq != 0 {
		return chaosKey{link: link, seq: e.Seq}
	}
	c.mu.Lock()
	c.pseudo[link]++
	k := chaosKey{link: link, seq: c.pseudo[link] | 1<<63}
	c.mu.Unlock()
	return k
}

// Send implements Bus, applying send-side faults.
func (c *ChaosBus) Send(e *Envelope) error {
	if e.Kind == KindHeartbeat || e.Kind == KindPeerDown {
		return c.inner.Send(e)
	}
	if dead, err := c.checkCrash(e); dead {
		return err
	}
	k := c.key(e)
	c.mu.Lock()
	c.attempts[k]++
	attempt := c.attempts[k]
	c.mu.Unlock()
	if c.prof.DropPermille > 0 && hit(c.decide(k.link, k.seq, laneDrop), c.prof.DropPermille) {
		drops := 1
		if c.prof.MaxConsecutiveDrops > 1 {
			drops = 1 + int(c.decide(k.link, k.seq, laneDropCount)%uint64(c.prof.MaxConsecutiveDrops))
		}
		if attempt <= drops {
			c.mu.Lock()
			c.stats.Drops++
			c.mu.Unlock()
			return ErrDropped
		}
	}
	send := e
	if c.prof.CorruptPermille > 0 && corruptible(e) &&
		hit(c.decide(k.link, k.seq, laneCorrupt), c.prof.CorruptPermille) && attempt == 1 {
		send = c.corrupt(e, k)
	}
	if err := c.inner.Send(send); err != nil {
		return err
	}
	if c.prof.DupPermille > 0 && hit(c.decide(k.link, k.seq, laneDup), c.prof.DupPermille) && attempt == 1 {
		c.mu.Lock()
		c.stats.Dups++
		c.mu.Unlock()
		// A network duplicate is an independent copy of the serialized
		// bytes: deep-copy the payload so the late copy stays intact even
		// after the application mutates the first delivery in place.
		dup := *send
		if dup.Payload != nil {
			dup.Payload = tensor.FromSlice(dup.Payload.Rows, dup.Payload.Cols,
				append([]float64(nil), dup.Payload.Data...))
		}
		if dup.Blob != nil {
			dup.Blob = append([]byte(nil), dup.Blob...)
		}
		if err := c.inner.Send(&dup); err != nil {
			return err
		}
	}
	return nil
}

// checkCrash updates the crash schedule for this send and reports whether
// either endpoint is dead.
func (c *ChaosBus) checkCrash(e *Envelope) (bool, error) {
	if c.prof.CrashPeer == "" {
		return false, nil
	}
	var notify []string
	c.mu.Lock()
	if e.From == c.prof.CrashPeer && !c.fired {
		c.sends++
		if c.sends >= c.prof.CrashAfterSends {
			c.fired = true
			c.crashed[c.prof.CrashPeer] = true
			c.stats.Crashes++
			notify = c.prof.NotifyPeers
		}
	}
	var dead string
	switch {
	case c.crashed[e.From]:
		dead = e.From
	case c.crashed[e.To]:
		dead = e.To
	}
	c.mu.Unlock()
	for _, n := range notify {
		_ = c.inner.Send(&Envelope{From: c.prof.CrashPeer, To: n, Kind: KindPeerDown})
	}
	if dead != "" {
		return true, &PeerDeadError{Peer: dead}
	}
	return false, nil
}

// corruptible reports whether e carries tensor data the corrupt fault can
// flip a bit in: a native float64 payload or a codec-framed blob. Telemetry
// blobs (Codec zero) are exempt, matching the pre-codec behaviour.
func corruptible(e *Envelope) bool {
	if e.Payload != nil && len(e.Payload.Data) > 0 {
		return true
	}
	return e.Codec != 0 && len(e.Blob) > 0
}

// corrupt returns a copy of e with one hash-chosen payload bit flipped, so
// the original sender retains intact data for retransmission. Codec-framed
// envelopes get a bit flipped in the encoded blob — the corruption happens
// on the serialized wire representation, exactly as a network would.
func (c *ChaosBus) corrupt(e *Envelope, k chaosKey) *Envelope {
	cp := *e
	if e.Payload != nil && len(e.Payload.Data) > 0 {
		cp.Payload = tensor.FromSlice(e.Payload.Rows, e.Payload.Cols, append([]float64(nil), e.Payload.Data...))
		i := int(c.decide(k.link, k.seq, laneCorruptBit) % uint64(len(cp.Payload.Data)))
		cp.Payload.Data[i] = math.Float64frombits(math.Float64bits(cp.Payload.Data[i]) ^ 1)
	} else {
		cp.Blob = append([]byte(nil), e.Blob...)
		bit := c.decide(k.link, k.seq, laneCorruptBit) % uint64(len(cp.Blob)*8)
		cp.Blob[bit/8] ^= 1 << (bit % 8)
	}
	c.mu.Lock()
	c.stats.Corrupts++
	c.mu.Unlock()
	return &cp
}

// Revive clears a crashed peer so it can rejoin the protocol (the chaos
// analogue of restarting a process).
func (c *ChaosBus) Revive(peer string) {
	c.mu.Lock()
	delete(c.crashed, peer)
	c.mu.Unlock()
}

// Recv implements Bus, applying receive-side faults. It never blocks while
// holding a deliverable message, so reorder and delay cannot deadlock a
// lockstep protocol: a delayed envelope is released as soon as nothing can
// overtake it.
func (c *ChaosBus) Recv(to string) (*Envelope, error) {
	for {
		if e := c.popDue(to); e != nil {
			return e, nil
		}
		var e *Envelope
		if c.holding(to) {
			got, ok := c.tryInner(to)
			if !ok {
				return c.popStash(to), nil
			}
			e = got
		} else {
			got, err := c.inner.Recv(to)
			if err != nil {
				return nil, err
			}
			e = got
		}
		if e.Kind == KindHeartbeat || e.Kind == KindPeerDown {
			return e, nil
		}
		link := e.From + "->" + e.To
		seq := e.Seq
		if c.prof.ReorderPermille > 0 && hit(c.decide(link, seq, laneReorder), c.prof.ReorderPermille) {
			if next, ok := c.tryInner(to); ok {
				c.push(to, e, 0)
				c.mu.Lock()
				c.stats.Reorders++
				c.mu.Unlock()
				return next, nil
			}
		}
		if c.prof.DelayPermille > 0 && hit(c.decide(link, seq, laneDelay), c.prof.DelayPermille) {
			c.push(to, e, c.prof.MaxDelayRecvs)
			c.mu.Lock()
			c.stats.Delays++
			c.mu.Unlock()
			continue
		}
		return e, nil
	}
}

// tryInner polls the inner bus without blocking; a transport without
// TryRecv disables receive-side faults.
func (c *ChaosBus) tryInner(to string) (*Envelope, bool) {
	if tr, ok := c.inner.(TryReceiver); ok {
		return tr.TryRecv(to)
	}
	return nil, false
}

// popDue ages the recipient's stash by one receive and releases the first
// envelope whose delay has expired.
func (c *ChaosBus) popDue(to string) *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stash[to]
	for i := range s {
		s[i].age--
	}
	for i := range s {
		if s[i].age <= 0 {
			e := s[i].e
			c.stash[to] = append(s[:i], s[i+1:]...)
			return e
		}
	}
	return nil
}

func (c *ChaosBus) holding(to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stash[to]) > 0
}

// popStash force-releases the oldest held envelope — the liveness valve
// used when nothing can overtake it anyway.
func (c *ChaosBus) popStash(to string) *Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stash[to]
	e := s[0].e
	c.stash[to] = s[1:]
	return e
}

// push stashes a held-back envelope. The stash models packets in flight —
// serialized bytes, not shared memory — so the payload is deep-copied:
// once the sender's wave completes it may legitimately reuse the payload
// buffer, and a held reference would see the mutation.
func (c *ChaosBus) push(to string, e *Envelope, age int) {
	if e.Payload != nil || e.Blob != nil {
		cp := *e
		if e.Payload != nil {
			cp.Payload = tensor.FromSlice(e.Payload.Rows, e.Payload.Cols,
				append([]float64(nil), e.Payload.Data...))
		}
		if e.Blob != nil {
			cp.Blob = append([]byte(nil), e.Blob...)
		}
		e = &cp
	}
	c.mu.Lock()
	c.stash[to] = append(c.stash[to], stashed{e: e, age: age})
	c.mu.Unlock()
}

// TryRecv implements TryReceiver: held-back envelopes are released first so
// a drain between recovery attempts sees everything in flight.
func (c *ChaosBus) TryRecv(to string) (*Envelope, bool) {
	c.mu.Lock()
	if s := c.stash[to]; len(s) > 0 {
		e := s[0].e
		c.stash[to] = s[1:]
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	return c.tryInner(to)
}

// Stats implements Bus by delegating to the wrapped transport.
func (c *ChaosBus) Stats() Stats { return c.inner.Stats() }

// FaultStats snapshots the injected-fault counters.
func (c *ChaosBus) FaultStats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
