//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package silo

import (
	"math"
	"sync"
	"testing"

	"silofuse/internal/autoencoder"
	"silofuse/internal/datagen"
	"silofuse/internal/diffusion"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

func loanTable(t *testing.T, rows int) *tabular.Table {
	t.Helper()
	spec, err := datagen.ByName("loan")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(rows, 21)
}

func smallConfig(clients int) PipelineConfig {
	return PipelineConfig{
		Clients:     clients,
		AE:          autoencoder.Config{Hidden: 64, Embed: 16, LR: 2e-3},
		Diff:        diffusion.ModelConfig{Hidden: 64, Depth: 3, TimeDim: 16, T: 100, LR: 2e-3},
		AEIters:     150,
		DiffIters:   200,
		Batch:       64,
		SynthSteps:  15,
		Seed:        5,
		SplitWidths: false,
	}
}

func TestLocalBusSendRecv(t *testing.T) {
	bus := NewLocalBus()
	m := tensor.New(2, 3).Fill(1)
	if err := bus.Send(&Envelope{From: "a", To: "b", Kind: KindLatents, Payload: m}); err != nil {
		t.Fatal(err)
	}
	e, err := bus.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if e.From != "a" || e.Payload.At(1, 2) != 1 {
		t.Fatal("wrong envelope delivered")
	}
}

func TestLocalBusAccounting(t *testing.T) {
	bus := NewLocalBus()
	m := tensor.New(4, 5) // 20 float64s = 160 bytes + 64 header
	bus.Send(&Envelope{From: "a", To: "b", Kind: KindLatents, Payload: m})
	bus.Send(&Envelope{From: "b", To: "a", Kind: KindSynthReq})
	st := bus.Stats()
	if st.Messages != 2 {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Bytes != 160+64+64 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.BytesByDir["a->b"] != 224 {
		t.Fatalf("directional bytes = %v", st.BytesByDir)
	}
	// Drain so nothing leaks into other tests.
	bus.Recv("b")
	bus.Recv("a")
}

func TestLocalBusRejectsNoRecipient(t *testing.T) {
	bus := NewLocalBus()
	if err := bus.Send(&Envelope{From: "a"}); err == nil {
		t.Fatal("expected error for missing recipient")
	}
}

func TestEnvelopeWireSize(t *testing.T) {
	e := &Envelope{From: "a", To: "b", Kind: KindSynthReq}
	if e.WireSize() != 64 {
		t.Fatalf("control size = %d", e.WireSize())
	}
	e.Payload = tensor.New(10, 10)
	if e.WireSize() != 64+800 {
		t.Fatalf("payload size = %d", e.WireSize())
	}
}

func TestPipelineConstruction(t *testing.T) {
	tb := loanTable(t, 200)
	p, err := NewPipeline(NewLocalBus(), tb, smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clients) != 4 {
		t.Fatalf("clients = %d", len(p.Clients))
	}
	totalLatent := 0
	totalCols := 0
	for _, c := range p.Clients {
		totalLatent += c.LatentDim()
		totalCols += c.Data.Schema.NumColumns()
	}
	// Latent width = raw feature count, per the paper.
	if totalLatent != tb.Schema.NumColumns() || totalCols != tb.Schema.NumColumns() {
		t.Fatalf("latent %d, cols %d, want %d", totalLatent, totalCols, tb.Schema.NumColumns())
	}
}

// TestStackedTrainingSingleRound is the core communication property: the
// number of uploaded latent messages equals the number of clients no matter
// how many training iterations run, and only synthesis adds messages after.
func TestStackedTrainingSingleRound(t *testing.T) {
	tb := loanTable(t, 300)
	bus := NewLocalBus()
	cfgA := smallConfig(4)
	cfgA.AEIters, cfgA.DiffIters = 40, 50
	p, err := NewPipeline(bus, tb, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	st := bus.Stats()
	if st.Messages != 4 {
		t.Fatalf("stacked training should send exactly one message per client: %d", st.Messages)
	}

	// Train a second pipeline with 4x the iterations: identical traffic.
	bus2 := NewLocalBus()
	cfgB := smallConfig(4)
	cfgB.AEIters, cfgB.DiffIters = 160, 200
	p2, err := NewPipeline(bus2, tb, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if got, want := bus2.Stats().Bytes, st.Bytes; got != want {
		t.Fatalf("stacked bytes must be iteration-invariant: %d vs %d", got, want)
	}
}

func TestStackedSynthesisPartitioned(t *testing.T) {
	tb := loanTable(t, 400)
	bus := NewLocalBus()
	p, err := NewPipeline(bus, tb, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	parts, err := p.SynthesizePartitioned(1, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	for i, pt := range parts {
		if pt.Rows() != 50 {
			t.Fatalf("part %d rows = %d", i, pt.Rows())
		}
		if pt.Schema.NumColumns() != p.Clients[i].Data.Schema.NumColumns() {
			t.Fatal("partition schema mismatch")
		}
	}
}

func TestStackedSynthesisShared(t *testing.T) {
	tb := loanTable(t, 400)
	p, err := NewPipeline(NewLocalBus(), tb, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	out, err := p.SynthesizeShared(0, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 80 || out.Schema.NumColumns() != tb.Schema.NumColumns() {
		t.Fatal("shared synthesis shape wrong")
	}
	// Column order must match the original schema.
	for j, c := range out.Schema.Columns {
		if c.Name != tb.Schema.Columns[j].Name {
			t.Fatal("column order lost in join")
		}
	}
}

func TestSynthesizeInvalidRequester(t *testing.T) {
	tb := loanTable(t, 100)
	p, err := NewPipeline(NewLocalBus(), tb, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SynthesizePartitioned(9, 10, false); err == nil {
		t.Fatal("expected invalid requester error")
	}
}

// TestE2ECommunicationGrowsLinearly verifies the Figure 10 contrast: the
// end-to-end pipeline's traffic is proportional to iteration count.
func TestE2ECommunicationGrowsLinearly(t *testing.T) {
	tb := loanTable(t, 200)
	cfg := smallConfig(4)
	cfg.Batch = 32

	run := func(iters int) int64 {
		bus := NewLocalBus()
		p, err := NewE2EPipeline(bus, tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Train(iters); err != nil {
			t.Fatal(err)
		}
		return bus.Stats().Bytes
	}
	b10 := run(10)
	b30 := run(30)
	if b30 != 3*b10 {
		t.Fatalf("E2E traffic should scale linearly: 10 iters %d bytes, 30 iters %d bytes", b10, b30)
	}
	// Four transfers per client per iteration.
	bus := NewLocalBus()
	p, err := NewE2EPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(1); err != nil {
		t.Fatal(err)
	}
	if got := bus.Stats().Messages; got != int64(4*len(p.Clients)) {
		t.Fatalf("messages per iteration = %d, want %d", got, 4*len(p.Clients))
	}
}

// TestE2ETrainingLearns checks the joint objective actually decreases and
// the pipeline can synthesize valid tables.
func TestE2ETrainingLearns(t *testing.T) {
	tb := loanTable(t, 300)
	cfg := smallConfig(2)
	cfg.Batch = 64
	bus := NewLocalBus()
	p, err := NewE2EPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	early, err := p.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	late, err := p.Train(400)
	if err != nil {
		t.Fatal(err)
	}
	if late >= early {
		t.Fatalf("E2E loss did not decrease: %v -> %v", early, late)
	}
	out, err := p.Synthesize(30, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 30 {
		t.Fatal("synthesis failed")
	}
}

// TestLatentIrreversibility instantiates Theorem 1's argument: two distinct
// decoders agree on observed latents' provenance but reconstruct different
// data, so latents alone cannot identify the inputs. The coordinator's view
// (latents only) is also far from the real standardised features.
func TestLatentIrreversibility(t *testing.T) {
	tb := loanTable(t, 300)
	// Two clients with identical data but different private decoders
	// (different seeds): both produce valid latent spaces.
	c1 := NewClient("c0", tb, autoencoder.Config{Hidden: 64, Embed: 16, LR: 2e-3}, 1)
	c2 := NewClient("c0", tb, autoencoder.Config{Hidden: 64, Embed: 16, LR: 2e-3}, 2)
	c1.TrainLocal(200, 64)
	c2.TrainLocal(200, 64)

	z := c1.EncodeLocal()
	// Decoding with the wrong private decoder yields garbage relative to
	// decoding with the right one: ambiguity without the function.
	right, err := c1.DecodeLatents(z, false)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := c2.DecodeLatents(z, false)
	if err != nil {
		t.Fatal(err)
	}
	nCat := len(tb.Schema.CategoricalIndexes())
	var errRight, errWrong float64
	for j := nCat; j < tb.Schema.NumColumns(); j++ {
		orig := tb.NumColumn(j)
		r := right.NumColumn(j)
		w := wrong.NumColumn(j)
		for i := range orig {
			errRight += math.Abs(orig[i] - r[i])
			errWrong += math.Abs(orig[i] - w[i])
		}
	}
	if errWrong < 2*errRight {
		t.Fatalf("wrong decoder should reconstruct far worse: right %v, wrong %v", errRight, errWrong)
	}
}

func TestTCPHubRoundTrip(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	peer, err := DialHub("c0", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	m := tensor.New(3, 4).Fill(2.5)
	if err := peer.Send(&Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m}); err != nil {
		t.Fatal(err)
	}
	e, err := hub.Recv("coord")
	if err != nil {
		t.Fatal(err)
	}
	if e.From != "c0" || e.Payload.At(2, 3) != 2.5 {
		t.Fatal("hub did not receive the payload")
	}
	// Hub -> peer direction.
	if err := hub.Send(&Envelope{From: "coord", To: "c0", Kind: KindSynthLatent, Payload: m}); err != nil {
		t.Fatal(err)
	}
	e2, err := peer.Recv("c0")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Kind != KindSynthLatent {
		t.Fatal("peer did not receive")
	}
	// Real bytes were counted on the wire.
	if peer.Stats().Bytes <= 0 || hub.Stats().Bytes <= 0 {
		t.Fatal("wire bytes not counted")
	}
}

func TestTCPPeerToPeerViaHub(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := DialHub("a", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialHub("b", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Give the hub a moment to register both peers via their hellos: send
	// and receive in a goroutine pair.
	var wg sync.WaitGroup
	var recvErr error
	var got *Envelope
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, recvErr = b.Recv("b")
	}()
	m := tensor.New(1, 2).Fill(7)
	// Retry until the hub has registered b.
	for i := 0; i < 100; i++ {
		if err := a.Send(&Envelope{From: "a", To: "b", Kind: KindLatents, Payload: m}); err != nil {
			t.Fatal(err)
		}
		break
	}
	wg.Wait()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if got.From != "a" || got.Payload.At(0, 1) != 7 {
		t.Fatal("peer-to-peer forward failed")
	}
}

// TestStackedOverTCP runs the full stacked pipeline over a real loopback
// TCP transport, proving the protocol is wire-real.
func TestStackedOverTCP(t *testing.T) {
	tb := loanTable(t, 150)
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 30, 30

	// The pipeline's actors share one Bus interface; build a composite bus
	// where client sends go through peers and coordinator receives at the
	// hub.
	peers := make([]*TCPPeer, 2)
	for i := range peers {
		p, err := DialHub([]string{"c0", "c1"}[i], hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[i] = p
	}
	bus := &routedBus{hub: hub, peers: map[string]*TCPPeer{"c0": peers[0], "c1": peers[1]}}
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	out, err := p.SynthesizeShared(0, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 20 {
		t.Fatal("TCP synthesis failed")
	}
	if hub.Stats().Bytes == 0 {
		t.Fatal("no bytes crossed the wire")
	}
}

// routedBus lets in-process actors talk over real sockets: each party's
// sends/receives are routed through its own TCP endpoint.
type routedBus struct {
	hub   *TCPHub
	peers map[string]*TCPPeer
}

func (r *routedBus) Send(e *Envelope) error {
	if p, ok := r.peers[e.From]; ok {
		return p.Send(e)
	}
	return r.hub.Send(e)
}

func (r *routedBus) Recv(to string) (*Envelope, error) {
	if p, ok := r.peers[to]; ok {
		return p.Recv(to)
	}
	return r.hub.Recv(to)
}

func (r *routedBus) Stats() Stats { return r.hub.Stats() }
