package silo

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"silofuse/internal/diffusion"
	"silofuse/internal/nn"
	"silofuse/internal/tensor"
)

// snapshot is the gob wire format of a trained pipeline's state. Model
// architectures are not stored — Load rebuilds them from the same training
// table and configuration, then restores weights; the snapshot carries only
// what training produced.
type snapshot struct {
	LatentDims   []int
	LatMean      []float64
	LatStd       []float64
	ClientBlobs  [][]byte // autoencoder weights per client, in order
	BackboneBlob []byte   // coordinator diffusion weights

	// Checkpoint extensions (zero for a plain SaveState snapshot): the
	// training phase reached, phase losses, and the collected latents so a
	// resumed run can train the diffusion backbone without re-shipping.
	Phase            int
	AELoss, DiffLoss float64
	LatRows, LatCols int
	Latents          []float64
}

// SaveState writes the trained pipeline state (client autoencoders,
// coordinator backbone, latent scaler) to w. The pipeline must have been
// trained.
func (p *Pipeline) SaveState(w io.Writer) error {
	if p.Coord.Model == nil {
		return fmt.Errorf("silo: SaveState before training")
	}
	snap := snapshot{
		LatentDims: append([]int(nil), p.Coord.latentDims...),
		LatMean:    append([]float64(nil), p.Coord.latMean...),
		LatStd:     append([]float64(nil), p.Coord.latStd...),
	}
	for _, c := range p.Clients {
		var buf bytes.Buffer
		if err := c.AE.Save(&buf); err != nil {
			return fmt.Errorf("silo: save client %s: %w", c.ID, err)
		}
		snap.ClientBlobs = append(snap.ClientBlobs, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := p.Coord.Model.Save(&buf); err != nil {
		return fmt.Errorf("silo: save backbone: %w", err)
	}
	snap.BackboneBlob = buf.Bytes()
	return gob.NewEncoder(w).Encode(snap)
}

// LoadState restores state written by SaveState into a pipeline built with
// the same configuration and training table (the table supplies the schema
// and the featuriser statistics baked into each client's architecture).
func (p *Pipeline) LoadState(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("silo: decode snapshot: %w", err)
	}
	if len(snap.ClientBlobs) != len(p.Clients) {
		return fmt.Errorf("silo: snapshot has %d clients, pipeline has %d", len(snap.ClientBlobs), len(p.Clients))
	}
	for i, c := range p.Clients {
		if err := c.AE.Load(bytes.NewReader(snap.ClientBlobs[i])); err != nil {
			return fmt.Errorf("silo: load client %s: %w", c.ID, err)
		}
	}
	// Rebuild the backbone at the snapshot's latent width, then restore.
	total := 0
	for _, d := range snap.LatentDims {
		total += d
	}
	cfg := p.Cfg.Diff
	cfg.Dim = total
	model := diffusion.NewModel(p.Coord.rng, cfg)
	if err := model.Load(bytes.NewReader(snap.BackboneBlob)); err != nil {
		return fmt.Errorf("silo: load backbone: %w", err)
	}
	p.Coord.Model = model
	p.Coord.latentDims = snap.LatentDims
	p.Coord.latMean = snap.LatMean
	p.Coord.latStd = snap.LatStd
	return nil
}

// SaveCheckpoint writes a mid-training checkpoint to w: the client
// autoencoder weights from PhaseAE on, plus the collected latents from
// PhaseLatents on, plus the backbone and latent scaler once training
// completed. A checkpoint written after any phase lets a restarted process
// resume with LoadCheckpoint and TrainStackedFrom without redoing the
// completed phases.
func (p *Pipeline) SaveCheckpoint(w io.Writer, ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("silo: nil checkpoint")
	}
	snap := snapshot{Phase: int(ck.Phase), AELoss: ck.AELoss, DiffLoss: ck.DiffLoss}
	if ck.Phase >= PhaseAE {
		for _, c := range p.Clients {
			var buf bytes.Buffer
			if err := c.AE.Save(&buf); err != nil {
				return fmt.Errorf("silo: checkpoint client %s: %w", c.ID, err)
			}
			snap.ClientBlobs = append(snap.ClientBlobs, buf.Bytes())
		}
	}
	if ck.Phase >= PhaseLatents && ck.latents != nil {
		snap.LatRows, snap.LatCols = ck.latents.Rows, ck.latents.Cols
		snap.Latents = ck.latents.Data
		snap.LatentDims = append([]int(nil), p.Coord.latentDims...)
	}
	if ck.Phase >= PhaseDiffusion && p.Coord.Model != nil {
		var buf bytes.Buffer
		if err := p.Coord.Model.Save(&buf); err != nil {
			return fmt.Errorf("silo: checkpoint backbone: %w", err)
		}
		snap.BackboneBlob = buf.Bytes()
		snap.LatMean = append([]float64(nil), p.Coord.latMean...)
		snap.LatStd = append([]float64(nil), p.Coord.latStd...)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into a
// pipeline built with the same configuration and training table, returning
// the Checkpoint to hand to TrainStackedFrom.
func (p *Pipeline) LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("silo: decode checkpoint: %w", err)
	}
	ck := &Checkpoint{Phase: TrainPhase(snap.Phase), AELoss: snap.AELoss, DiffLoss: snap.DiffLoss}
	if ck.Phase >= PhaseAE {
		if len(snap.ClientBlobs) != len(p.Clients) {
			return nil, fmt.Errorf("silo: checkpoint has %d clients, pipeline has %d", len(snap.ClientBlobs), len(p.Clients))
		}
		for i, c := range p.Clients {
			if err := c.AE.Load(bytes.NewReader(snap.ClientBlobs[i])); err != nil {
				return nil, fmt.Errorf("silo: checkpoint client %s: %w", c.ID, err)
			}
		}
	}
	if ck.Phase >= PhaseLatents && snap.Latents != nil {
		ck.latents = tensor.FromSlice(snap.LatRows, snap.LatCols, snap.Latents)
		p.Coord.latentDims = snap.LatentDims
	}
	if ck.Phase >= PhaseDiffusion && snap.BackboneBlob != nil {
		total := 0
		for _, d := range snap.LatentDims {
			total += d
		}
		cfg := p.Cfg.Diff
		cfg.Dim = total
		model := diffusion.NewModel(p.Coord.rng, cfg)
		if err := model.Load(bytes.NewReader(snap.BackboneBlob)); err != nil {
			return nil, fmt.Errorf("silo: checkpoint backbone: %w", err)
		}
		p.Coord.Model = model
		p.Coord.latMean = snap.LatMean
		p.Coord.latStd = snap.LatStd
	}
	return ck, nil
}

// ParamCount reports the total trainable scalars across all actors (clients
// plus backbone, when built).
func (p *Pipeline) ParamCount() int {
	total := 0
	for _, c := range p.Clients {
		total += c.AE.ParamCount()
	}
	if p.Coord.Model != nil {
		total += nn.ParamCount(p.Coord.Model.Net.Params())
	}
	return total
}
