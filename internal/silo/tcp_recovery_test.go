//silofuse:bitwise-ok recovery tests pin bit-identical results against fault-free baselines
package silo

import (
	"testing"
	"time"
)

// testRoutedBus routes each party's traffic through its own TCP endpoint,
// the way separate processes would: clients send and receive on their
// dialed peers, the coordinator on the hub.
type testRoutedBus struct {
	hub   *TCPHub
	peers map[string]*TCPPeer
}

func (r *testRoutedBus) Send(e *Envelope) error {
	if p, ok := r.peers[e.From]; ok {
		return p.Send(e)
	}
	return r.hub.Send(e)
}

func (r *testRoutedBus) Recv(to string) (*Envelope, error) {
	if p, ok := r.peers[to]; ok {
		return p.Recv(to)
	}
	return r.hub.Recv(to)
}

// TryRecv drains only the hub inbox: dialed peers block on their socket, so
// a recovery-time drain covers the coordinator side (where interrupted
// uploads strand envelopes) and leaves client sockets untouched.
func (r *testRoutedBus) TryRecv(to string) (*Envelope, bool) {
	if _, ok := r.peers[to]; ok {
		return nil, false
	}
	return r.hub.TryRecv(to)
}

func (r *testRoutedBus) Stats() Stats { return r.hub.Stats() }

// TestTCPRecoveryAfterPeerCrash kills a client's real TCP connection before
// the latent-ship phase and drives the full recovery path under the race
// detector: the dead socket exhausts the retry budget into a typed
// PeerDeadError, the recovery hook re-dials the peer, the resilient layer
// drains the half-shipped phase, and training resumes from the checkpoint —
// without re-running the completed autoencoder phase and with results
// bit-identical to an in-process fault-free run.
func TestTCPRecoveryAfterPeerCrash(t *testing.T) {
	baseAE, baseDiff, baseOut := chaosStackedRun(t, NewLocalBus())

	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	peers := make(map[string]*TCPPeer, 2)
	for _, name := range []string{"c0", "c1"} {
		p, err := DialHub(name, hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		stop := p.StartHeartbeat(5 * time.Millisecond)
		defer stop()
		peers[name] = p
	}

	cfg := DefaultResilientConfig()
	cfg.Sleep = func(time.Duration) {}
	cfg.SendDeadline = 2 * time.Second
	rb := NewResilientBus(&testRoutedBus{hub: hub, peers: peers}, cfg)

	tb := loanTable(t, 150)
	pcfg := smallConfig(2)
	pcfg.AEIters, pcfg.DiffIters = 40, 60
	pipe, err := NewPipeline(rb, tb, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Kill c1's socket now: the autoencoder phase is silo-local and
	// completes untouched, then c1's latent upload hits the dead connection.
	if err := peers["c1"].Close(); err != nil {
		t.Fatal(err)
	}

	var revived []string
	rc := RecoveryConfig{OnPeerDead: func(peer string) error {
		revived = append(revived, peer)
		return peers["c1"].Reconnect(hub.Addr())
	}}
	ae, diff, ck, err := pipe.TrainStackedResilient(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(revived) == 0 {
		t.Fatal("recovery hook never ran: the dead socket did not surface as ErrPeerDead")
	}
	if ck.Phase != PhaseDiffusion {
		t.Fatalf("checkpoint phase %d, want %d", ck.Phase, PhaseDiffusion)
	}
	if ae != baseAE || diff != baseDiff {
		t.Fatalf("recovered losses (%v, %v) diverge from fault-free baseline (%v, %v)", ae, diff, baseAE, baseDiff)
	}
	out, err := pipe.SynthesizeShared(0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, "tcp-recovery", baseOut, out)

	// The hub's liveness view must reflect the crash story: c1 re-registered
	// at least once, and with 5ms heartbeats both peers have proven
	// themselves alive by now. Heartbeats ride the sockets asynchronously,
	// so poll briefly instead of asserting an instantaneous count.
	deadline := 200
	for ; deadline > 0; deadline-- {
		ph := hub.PeerHealth()
		if ph["c1"].Reconnects >= 1 && ph["c0"].Heartbeats > 0 && ph["c1"].Heartbeats > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatalf("peer health never converged: %+v", hub.PeerHealth())
	}
	ph := hub.PeerHealth()
	if !ph["c0"].Connected || !ph["c1"].Connected {
		t.Fatalf("peers not connected after recovery: %+v", ph)
	}
}
