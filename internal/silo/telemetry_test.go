package silo

import (
	"math/rand"
	"sync"
	"testing"

	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// TestStatsByKindLocalBus: the local bus attributes modelled wire bytes to
// every message kind it carries.
func TestStatsByKindLocalBus(t *testing.T) {
	b := NewLocalBus()
	lat := &Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: tensor.New(4, 3)}
	req := &Envelope{From: "c0", To: "coord", Kind: KindSynthReq}
	for _, e := range []*Envelope{lat, lat, req} {
		if err := b.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if got := st.ByKind[KindLatents]; got != 2*lat.WireSize() {
		t.Fatalf("latents bytes = %d, want %d", got, 2*lat.WireSize())
	}
	if got := st.ByKind[KindSynthReq]; got != req.WireSize() {
		t.Fatalf("synth-req bytes = %d, want %d", got, req.WireSize())
	}
	var sum int64
	for _, v := range st.ByKind {
		sum += v
	}
	if sum != st.Bytes {
		t.Fatalf("ByKind sums to %d, total %d", sum, st.Bytes)
	}
}

// TestStatsByKindTCP: both TCP endpoints attribute real measured bytes to
// message kinds.
func TestStatsByKindTCP(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	peer, err := DialHub("c0", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	m := tensor.New(8, 4).Randn(rand.New(rand.NewSource(1)), 1)
	for _, e := range []*Envelope{
		{From: "c0", To: "coord", Kind: KindLatents, Payload: m},
		{From: "c0", To: "coord", Kind: KindSynthReq},
	} {
		if err := peer.Send(e); err != nil {
			t.Fatal(err)
		}
		if _, err := hub.Recv("coord"); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Send(&Envelope{From: "coord", To: "c0", Kind: KindSynthLatent, Payload: m}); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Recv("c0"); err != nil {
		t.Fatal(err)
	}

	ps := peer.Stats()
	if ps.ByKind[KindLatents] <= 0 || ps.ByKind[KindSynthReq] <= 0 {
		t.Fatalf("peer ByKind = %v, want measured bytes for latents and synth-req", ps.ByKind)
	}
	if ps.ByKind[KindLatents] <= ps.ByKind[KindSynthReq] {
		t.Fatalf("payload message (%d B) should outweigh control (%d B)",
			ps.ByKind[KindLatents], ps.ByKind[KindSynthReq])
	}
	hs := hub.Stats()
	if hs.ByKind[KindSynthLatent] <= 0 {
		t.Fatalf("hub ByKind = %v, want measured bytes for synth-latent", hs.ByKind)
	}
	if hs.Messages != 1 {
		t.Fatalf("hub messages = %d, want 1", hs.Messages)
	}
}

// TestTCPHubConcurrentHammer drives concurrent sends through both endpoints
// of a live hub while stats are read in parallel; run under -race this
// guards the stats maps and the shared gob streams.
func TestTCPHubConcurrentHammer(t *testing.T) {
	const peers, msgs = 3, 40
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	ps := make([]*TCPPeer, peers)
	names := []string{"c0", "c1", "c2"}
	for i := range ps {
		p, err := DialHub(names[i], hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		ps[i] = p
	}
	// Wait until the hub has registered every peer (hello processing is
	// asynchronous): a registered peer can be sent to without error.
	for _, name := range names {
		for {
			if err := hub.Send(&Envelope{From: "coord", To: name, Kind: KindSynthReq}); err == nil {
				break
			}
		}
	}

	payload := tensor.New(4, 4).Randn(rand.New(rand.NewSource(7)), 1)
	var wg sync.WaitGroup
	// Uplink: every peer floods the hub inbox.
	for _, p := range ps {
		wg.Add(1)
		go func(p *TCPPeer) {
			defer wg.Done()
			for k := 0; k < msgs; k++ {
				kind := KindLatents
				if k%3 == 0 {
					kind = KindActivation
				}
				if err := p.Send(&Envelope{From: p.Name, To: "coord", Kind: kind, Payload: payload}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Downlink: two goroutines per peer share one gob stream, exercising the
	// per-peer send mutex.
	for _, name := range names {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for k := 0; k < msgs/2; k++ {
					if err := hub.Send(&Envelope{From: "coord", To: name, Kind: KindSynthLatent, Payload: payload}); err != nil {
						t.Error(err)
						return
					}
				}
			}(name)
		}
	}
	// Concurrent stats readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				_ = hub.Stats()
				_ = ps[0].Stats()
			}
		}()
	}
	// Drain both directions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < peers*msgs; k++ {
			if _, err := hub.Recv("coord"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, p := range ps {
		wg.Add(1)
		go func(p *TCPPeer) {
			defer wg.Done()
			for k := 0; k < msgs+1; k++ { // +1 for the registration probe
				if _, err := p.Recv(p.Name); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	hs := hub.Stats()
	wantHub := int64(peers*msgs + peers) // downlink + registration probes
	if hs.Messages != wantHub {
		t.Fatalf("hub messages = %d, want %d", hs.Messages, wantHub)
	}
	if hs.ByKind[KindSynthLatent] <= 0 {
		t.Fatalf("hub ByKind = %v", hs.ByKind)
	}
	for _, p := range ps {
		st := p.Stats()
		if st.Messages != msgs {
			t.Fatalf("peer %s messages = %d, want %d", p.Name, st.Messages, msgs)
		}
		if st.ByKind[KindLatents] <= 0 || st.ByKind[KindActivation] <= 0 {
			t.Fatalf("peer %s ByKind = %v", p.Name, st.ByKind)
		}
	}
}

// TestWireSizeTolerance pins the documented relationship between the
// WireSize cost model and real gob framing: measured bytes for a message
// stream stay within WireSizeFactor times the modelled total plus
// WireSizeSlack, for both dense payloads and control-only traffic.
func TestWireSizeTolerance(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	bound := func(modelled int64) int64 {
		return int64(WireSizeFactor*float64(modelled)) + WireSizeSlack
	}

	// Dense payloads: gob varint framing runs ~12% over the 8-bytes-per-
	// element model, plus a one-time type descriptor.
	dense, err := DialHub("dense", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	rng := rand.New(rand.NewSource(3))
	var modelled int64
	for i := 0; i < 3; i++ {
		e := &Envelope{From: "dense", To: "coord", Kind: KindLatents, Payload: tensor.New(50, 20).Randn(rng, 1)}
		modelled += e.WireSize()
		if err := dense.Send(e); err != nil {
			t.Fatal(err)
		}
		if _, err := hub.Recv("coord"); err != nil {
			t.Fatal(err)
		}
	}
	measured := dense.Stats().Bytes
	if measured > bound(modelled) {
		t.Fatalf("dense stream measured %d B, above tolerance %d B (modelled %d)", measured, bound(modelled), modelled)
	}
	if measured <= modelled {
		t.Fatalf("dense stream measured %d B, expected above the %d B model (gob overhead)", measured, modelled)
	}

	// Control messages: gob frames them in fewer bytes than the 64-byte
	// header model, so only the upper bound applies.
	ctrl, err := DialHub("ctrl", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	modelled = 0
	for i := 0; i < 5; i++ {
		e := &Envelope{From: "ctrl", To: "coord", Kind: KindSynthReq}
		modelled += e.WireSize()
		if err := ctrl.Send(e); err != nil {
			t.Fatal(err)
		}
		if _, err := hub.Recv("coord"); err != nil {
			t.Fatal(err)
		}
	}
	measured = ctrl.Stats().Bytes
	if measured <= 0 || measured > bound(modelled) {
		t.Fatalf("control stream measured %d B, want within (0, %d] (modelled %d)", measured, bound(modelled), modelled)
	}
}

// TestStackedPipelineTelemetry runs Algorithm 1 + 2 with a recorder attached
// and checks the full telemetry surface: the four phase spans, per-stage
// training counters, and per-kind transport counters that agree with the
// bus's own accounting.
func TestStackedPipelineTelemetry(t *testing.T) {
	tb := loanTable(t, 120)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 20, 20
	bus := NewLocalBus()
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	p.SetRecorder(rec)
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SynthesizePartitioned(0, 10, false); err != nil {
		t.Fatal(err)
	}

	got := map[string]bool{}
	for _, sp := range rec.Trace.Spans() {
		got[sp.Name] = true
	}
	for _, want := range []string{"ae-train", "latent-ship", "diffusion-train", "synthesis"} {
		if !got[want] {
			t.Fatalf("missing phase span %q in %v", want, got)
		}
	}

	snap := rec.Snapshot()
	if snap.Counters["ae_steps_total"] != int64(2*cfg.AEIters) {
		t.Fatalf("ae_steps_total = %d, want %d", snap.Counters["ae_steps_total"], 2*cfg.AEIters)
	}
	if snap.Counters["diffusion_steps_total"] != int64(cfg.DiffIters) {
		t.Fatalf("diffusion_steps_total = %d, want %d", snap.Counters["diffusion_steps_total"], cfg.DiffIters)
	}
	st := bus.Stats()
	for _, kind := range []Kind{KindLatents, KindSynthReq, KindSynthLatent} {
		name := "bus_bytes_total_" + string(kind)
		if snap.Counters[name] != st.ByKind[kind] {
			t.Fatalf("%s = %d, bus ByKind = %d", name, snap.Counters[name], st.ByKind[kind])
		}
	}
	if h := snap.Histograms["bus_send_seconds_latents"]; h.Count != 2 {
		t.Fatalf("latents send histogram count = %d, want 2", h.Count)
	}
}
