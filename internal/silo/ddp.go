package silo

import (
	"encoding/binary"
	"fmt"
	"math"

	"silofuse/internal/diffusion"
)

// BusGradTransport runs the data-parallel gradient protocol over the
// message bus, so grad traffic shares the sequencing, checksumming,
// retransmission and byte accounting of every other envelope kind. Frames
// ride Envelope.Blob raw (Codec 0): the resilient layer's FNV checksum
// covers the blob bytes, and the codec layer passes unframed blobs through
// untouched.
//
// Wire layout (little-endian), selected by the first byte:
//
//	tag 0 — shard gradient (worker -> root):
//	  [tag u8][worker u32][shard u32][iter u32][loss f64][len u32][grad f64 × len]
//	tag 1 — reduced update (root -> worker):
//	  [tag u8][iter u32][loss f64][len u32][grad f64 × len]
type BusGradTransport struct {
	bus Bus
}

// Party names of the data-parallel training plane.
const ddpRootParty = "ddp-root"

// DDPRootParty returns the reduce root's bus party name.
func DDPRootParty() string { return ddpRootParty }

// DDPWorkerParty returns worker w's bus party name ("ddp-w0", "ddp-w1", …).
func DDPWorkerParty(w int) string { return fmt.Sprintf("ddp-w%d", w) }

// DDPParties lists every party of an N-worker training plane, root first —
// the set the pipeline registers for lifecycle resets.
func DDPParties(workers int) []string {
	ps := make([]string, 0, workers+1)
	ps = append(ps, ddpRootParty)
	for w := 0; w < workers; w++ {
		ps = append(ps, DDPWorkerParty(w))
	}
	return ps
}

// NewBusGradTransport wraps bus as a diffusion.GradTransport.
func NewBusGradTransport(bus Bus) *BusGradTransport {
	return &BusGradTransport{bus: bus}
}

const (
	ddpTagShardGrad = 0
	ddpTagReduced   = 1
)

// SendGrad implements diffusion.GradTransport.
func (t *BusGradTransport) SendGrad(g *diffusion.ShardGrad) error {
	return t.bus.Send(&Envelope{
		From: DDPWorkerParty(g.Worker),
		To:   ddpRootParty,
		Kind: KindGrad,
		Blob: encodeShardGrad(g),
	})
}

// RecvGrad implements diffusion.GradTransport.
func (t *BusGradTransport) RecvGrad() (*diffusion.ShardGrad, error) {
	e, err := t.bus.Recv(ddpRootParty)
	if err != nil {
		return nil, err
	}
	if e.Kind != KindGrad {
		return nil, fmt.Errorf("silo: ddp root got %s from %s, want %s", e.Kind, e.From, KindGrad)
	}
	return decodeShardGrad(e.Blob)
}

// SendReduced implements diffusion.GradTransport.
func (t *BusGradTransport) SendReduced(worker int, u *diffusion.ReducedUpdate) error {
	return t.bus.Send(&Envelope{
		From: ddpRootParty,
		To:   DDPWorkerParty(worker),
		Kind: KindGrad,
		Blob: encodeReducedUpdate(u),
	})
}

// RecvReduced implements diffusion.GradTransport.
func (t *BusGradTransport) RecvReduced(worker int) (*diffusion.ReducedUpdate, error) {
	e, err := t.bus.Recv(DDPWorkerParty(worker))
	if err != nil {
		return nil, err
	}
	if e.Kind != KindGrad {
		return nil, fmt.Errorf("silo: ddp worker %d got %s from %s, want %s", worker, e.Kind, e.From, KindGrad)
	}
	return decodeReducedUpdate(e.Blob)
}

// encodeShardGrad frames g as a tag-0 blob.
func encodeShardGrad(g *diffusion.ShardGrad) []byte {
	b := make([]byte, 25+8*len(g.Grad))
	b[0] = ddpTagShardGrad
	binary.LittleEndian.PutUint32(b[1:], uint32(g.Worker))
	binary.LittleEndian.PutUint32(b[5:], uint32(g.Shard))
	binary.LittleEndian.PutUint32(b[9:], uint32(g.Iter))
	binary.LittleEndian.PutUint64(b[13:], math.Float64bits(g.Loss))
	binary.LittleEndian.PutUint32(b[21:], uint32(len(g.Grad)))
	putFloats(b[25:], g.Grad)
	return b
}

// decodeShardGrad parses a tag-0 blob.
func decodeShardGrad(b []byte) (*diffusion.ShardGrad, error) {
	if len(b) < 25 || b[0] != ddpTagShardGrad {
		return nil, fmt.Errorf("silo: malformed shard-grad frame (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[21:]))
	if len(b) != 25+8*n {
		return nil, fmt.Errorf("silo: shard-grad frame length %d, want %d for %d values", len(b), 25+8*n, n)
	}
	return &diffusion.ShardGrad{
		Worker: int(binary.LittleEndian.Uint32(b[1:])),
		Shard:  int(binary.LittleEndian.Uint32(b[5:])),
		Iter:   int(binary.LittleEndian.Uint32(b[9:])),
		Loss:   math.Float64frombits(binary.LittleEndian.Uint64(b[13:])),
		Grad:   getFloats(b[25:], n),
	}, nil
}

// encodeReducedUpdate frames u as a tag-1 blob.
func encodeReducedUpdate(u *diffusion.ReducedUpdate) []byte {
	b := make([]byte, 17+8*len(u.Grad))
	b[0] = ddpTagReduced
	binary.LittleEndian.PutUint32(b[1:], uint32(u.Iter))
	binary.LittleEndian.PutUint64(b[5:], math.Float64bits(u.Loss))
	binary.LittleEndian.PutUint32(b[13:], uint32(len(u.Grad)))
	putFloats(b[17:], u.Grad)
	return b
}

// decodeReducedUpdate parses a tag-1 blob.
func decodeReducedUpdate(b []byte) (*diffusion.ReducedUpdate, error) {
	if len(b) < 17 || b[0] != ddpTagReduced {
		return nil, fmt.Errorf("silo: malformed reduced-update frame (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[13:]))
	if len(b) != 17+8*n {
		return nil, fmt.Errorf("silo: reduced-update frame length %d, want %d for %d values", len(b), 17+8*n, n)
	}
	return &diffusion.ReducedUpdate{
		Iter: int(binary.LittleEndian.Uint32(b[1:])),
		Loss: math.Float64frombits(binary.LittleEndian.Uint64(b[5:])),
		Grad: getFloats(b[17:], n),
	}, nil
}

func putFloats(b []byte, vs []float64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

func getFloats(b []byte, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vs
}

// DDPGradWireSize returns the on-wire envelope size of one shard gradient
// of length n — the term the grad-chaos accounting test multiplies out.
func DDPGradWireSize(n int) int64 { return 64 + 25 + 8*int64(n) }

// DDPUpdateWireSize returns the on-wire envelope size of one reduced
// update of length n.
func DDPUpdateWireSize(n int) int64 { return 64 + 17 + 8*int64(n) }
