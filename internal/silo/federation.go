package silo

import (
	"fmt"
	"sync"

	"silofuse/internal/obs"
)

// Telemetry federation over the bus: parties serialize their metric deltas,
// completed spans and fault counters (obs.TelemetryUpdate) into
// KindTelemetry envelopes shipped to the coordinator at deterministic phase
// boundaries — before the latent upload and after the synthesis decode.
// Flush points derive from protocol position, never from timers, so a
// federated run's application message stream is bit-identical to a
// non-federated one and the walltime analyzer stays clean. Telemetry bytes
// land in Stats.ByKind[KindTelemetry], keeping every application kind's
// goodput accounting pure.

// TelemetryEnvelope packs one update into a bus envelope.
func TelemetryEnvelope(from, to string, u *obs.TelemetryUpdate) (*Envelope, error) {
	blob, err := obs.EncodeTelemetryUpdate(u)
	if err != nil {
		return nil, fmt.Errorf("silo: telemetry encode: %w", err)
	}
	return &Envelope{From: from, To: to, Kind: KindTelemetry, Blob: blob}, nil
}

// SendTelemetry flushes fed and ships the update from -> to. A nil federator
// or an empty party is a no-op. The returned error reports transport
// failure; callers on the training path should swallow it — telemetry must
// never fail the run it observes.
func SendTelemetry(bus Bus, from, to string, fed *obs.Federator) error {
	u := fed.Flush()
	if u == nil {
		return nil
	}
	e, err := TelemetryEnvelope(from, to, u)
	if err != nil {
		return err
	}
	return bus.Send(e)
}

// IngestTelemetry decodes and folds a telemetry envelope into agg,
// reporting whether e was telemetry at all (so receive loops can skip it
// transparently). Undecodable telemetry is dropped — a corrupt observation
// must not fail the observed run.
func IngestTelemetry(agg *obs.FleetAggregator, e *Envelope) bool {
	if e == nil || e.Kind != KindTelemetry {
		return false
	}
	if u, err := obs.DecodeTelemetryUpdate(e.Blob); err == nil {
		agg.Ingest(u)
	}
	return true
}

// Federation couples a Pipeline to the telemetry federation layer: it holds
// the coordinator-side aggregator, one federator per party, and the count of
// updates successfully sent but not yet ingested (so drain loops receive
// exactly what is in flight and a swallowed send failure never wedges a
// receive). A nil *Federation disables federation throughout.
type Federation struct {
	Agg *obs.FleetAggregator

	mu sync.Mutex
	//silofuse:guardedby mu
	feds    map[string]*obs.Federator
	coordID string // immutable after NewFederation
	//silofuse:guardedby mu
	inflight int
}

// NewFederation builds a federation sink for the named coordinator.
func NewFederation(coordID string, agg *obs.FleetAggregator) *Federation {
	if agg == nil {
		agg = obs.NewFleetAggregator()
	}
	return &Federation{Agg: agg, feds: make(map[string]*obs.Federator), coordID: coordID}
}

// Register installs a party's federator (replacing any previous one).
func (f *Federation) Register(party string, fed *obs.Federator) {
	if f == nil || fed == nil {
		return
	}
	f.mu.Lock()
	f.feds[party] = fed
	f.mu.Unlock()
}

// federator returns the registered federator for party (nil when absent).
func (f *Federation) federator(party string) *obs.Federator {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.feds[party]
}

// Flush ships party's pending telemetry to the coordinator, swallowing
// transport errors (the subsequent application send surfaces real failures,
// on its own kind's accounting). Successful sends are counted so Drain
// knows how many envelopes are in flight.
func (f *Federation) Flush(bus Bus, party string) {
	if f == nil || party == f.coordID {
		return
	}
	fed := f.federator(party)
	if fed == nil {
		return
	}
	if err := SendTelemetry(bus, party, f.coordID, fed); err == nil {
		f.mu.Lock()
		f.inflight++
		f.mu.Unlock()
	}
}

// FlushLocal folds the coordinator's own telemetry straight into the
// aggregator, no transport involved.
func (f *Federation) FlushLocal() {
	if f == nil {
		return
	}
	f.Agg.IngestLocal(f.federator(f.coordID))
}

// Observe ingests e when it is an in-flight telemetry envelope, reporting
// whether the receive loop should skip it.
func (f *Federation) Observe(e *Envelope) bool {
	if f == nil {
		return false
	}
	if !IngestTelemetry(f.Agg, e) {
		return false
	}
	f.mu.Lock()
	if f.inflight > 0 {
		f.inflight--
	}
	f.mu.Unlock()
	return true
}

// Drain receives every telemetry envelope still in flight to the
// coordinator and ingests it. Only updates whose send succeeded are counted
// in flight, so Drain never blocks on a failed flush.
func (f *Federation) Drain(bus Bus) error {
	if f == nil {
		return nil
	}
	for {
		f.mu.Lock()
		n := f.inflight
		f.mu.Unlock()
		if n == 0 {
			return nil
		}
		e, err := bus.Recv(f.coordID)
		if err != nil {
			return err
		}
		if !f.Observe(e) {
			return fmt.Errorf("silo: drain expected telemetry, got %q from %s", e.Kind, e.From)
		}
	}
}

// EnableFederation turns on telemetry federation for the pipeline: one
// federator per client over its party recorder (install them first with
// SetPartyRecorders) plus one for the coordinator, all feeding agg (created
// when nil). Returns the federation handle, also stored on the pipeline so
// the training and synthesis paths flush at their phase boundaries.
func (p *Pipeline) EnableFederation(agg *obs.FleetAggregator) *Federation {
	f := NewFederation(p.Coord.ID, agg)
	f.Register(p.Coord.ID, obs.NewFederator(p.Coord.ID, p.Rec))
	for _, c := range p.Clients {
		f.Register(c.ID, obs.NewFederator(c.ID, c.Rec))
	}
	p.Fed = f
	p.Coord.Fed = f
	return f
}
