package silo

import (
	"fmt"
	"sync"

	"silofuse/internal/autoencoder"
	"silofuse/internal/diffusion"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
)

// PipelineConfig configures a cross-silo training pipeline.
type PipelineConfig struct {
	Clients     int
	Permutation []int // optional feature permutation before partitioning
	AE          autoencoder.Config
	Diff        diffusion.ModelConfig // Dim is overridden with the latent width
	AEIters     int
	DiffIters   int
	Batch       int
	SynthSteps  int // inference denoising steps (paper: 25)
	Seed        int64
	// SplitWidths divides the autoencoder hidden/embed widths evenly across
	// clients, as the paper does with its centralized 1024/32 budget.
	SplitWidths bool
	// DisableLatentWhitening turns off the coordinator's per-dimension
	// latent standardisation (ablation switch).
	DisableLatentWhitening bool
	// LatentNoiseStd adds Gaussian noise to uploaded latents — a
	// differential-privacy style knob trading quality for obfuscation.
	LatentNoiseStd float64
}

// Pipeline wires M clients and a coordinator over a Bus and runs the
// stacked training (Algorithm 1) and distributed synthesis (Algorithm 2)
// protocols.
type Pipeline struct {
	Bus     Bus
	Schema  *tabular.Schema
	Parts   [][]int
	Clients []*Client
	Coord   *Coordinator
	Cfg     PipelineConfig
	// Rec, when non-nil, receives phase spans and per-step telemetry from
	// every actor in the pipeline. Set it with SetRecorder.
	Rec *obs.Recorder
}

// SetRecorder threads rec through the pipeline: phase spans on the pipeline
// itself, per-step telemetry on every client autoencoder and the
// coordinator's diffusion model, and per-message telemetry on the bus when
// the transport supports it. A nil rec switches everything off.
//
// Client.Rec is deliberately left nil here: per-client spans from parallel
// goroutines would garble a single tracer's B/E stack. Use SetPartyRecorders
// to give each silo its own trace lane.
func (p *Pipeline) SetRecorder(rec *obs.Recorder) {
	p.Rec = rec
	for _, c := range p.Clients {
		c.AE.Rec = rec
	}
	p.Coord.Rec = rec
	if rs, ok := p.Bus.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// SetPartyRecorders threads one recorder per party, the distributed-trace
// variant of SetRecorder: protocol phase spans and the coordinator's
// diffusion telemetry land on coord; each client's autoencoder telemetry and
// its local training span land on the matching clients[i]. Build the
// recorders with obs.NewPartyRecorder over one shared registry so metrics
// still aggregate, and give each party's transport its recorder separately
// (the pipeline's shared Bus handle is left untouched — per-party transports
// like TCPPeer own their telemetry).
func (p *Pipeline) SetPartyRecorders(coord *obs.Recorder, clients []*obs.Recorder) error {
	if len(clients) != len(p.Clients) {
		return fmt.Errorf("silo: %d client recorders for %d clients", len(clients), len(p.Clients))
	}
	p.Rec = coord
	p.Coord.Rec = coord
	for i, c := range p.Clients {
		c.Rec = clients[i]
		c.AE.Rec = clients[i]
	}
	return nil
}

// NewPipeline vertically partitions data across cfg.Clients silos and
// constructs the actors. The coordinator is a distinct actor named "coord";
// clients are "c0".."cM-1".
func NewPipeline(bus Bus, data *tabular.Table, cfg PipelineConfig) (*Pipeline, error) {
	parts, err := data.Schema.Partition(cfg.Clients, cfg.Permutation)
	if err != nil {
		return nil, err
	}
	silos := data.VerticalPartition(parts)
	names := make([]string, cfg.Clients)
	clients := make([]*Client, cfg.Clients)
	for i, local := range silos {
		names[i] = fmt.Sprintf("c%d", i)
		aeCfg := cfg.AE
		if cfg.SplitWidths {
			aeCfg.Hidden = maxInt(aeCfg.Hidden/cfg.Clients, 16)
			aeCfg.Embed = maxInt(aeCfg.Embed/cfg.Clients, 4)
		}
		aeCfg.Latent = local.Schema.NumColumns()
		clients[i] = NewClient(names[i], local, aeCfg, cfg.Seed+int64(i)*1000)
	}
	coord := NewCoordinator("coord", names, cfg.Seed+999_999)
	coord.DisableWhitening = cfg.DisableLatentWhitening
	return &Pipeline{
		Bus:     bus,
		Schema:  data.Schema,
		Parts:   parts,
		Clients: clients,
		Coord:   coord,
		Cfg:     cfg,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TrainStacked executes Algorithm 1: parallel local autoencoder training,
// a single latent upload per client, then coordinator-local diffusion
// training. It returns the mean tail losses of both phases.
func (p *Pipeline) TrainStacked() (aeLoss, diffLoss float64, err error) {
	// Step 1: local autoencoder training, clients in parallel.
	span := p.Rec.StartSpan("ae-train")
	span.SetAttr("clients", len(p.Clients))
	span.SetAttr("iters", p.Cfg.AEIters)
	losses := make([]float64, len(p.Clients))
	var wg sync.WaitGroup
	for i, c := range p.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			losses[i] = c.TrainLocal(p.Cfg.AEIters, p.Cfg.Batch)
		}(i, c)
	}
	wg.Wait()
	for _, l := range losses {
		aeLoss += l
	}
	aeLoss /= float64(len(losses))
	span.SetAttr("loss", aeLoss)
	span.End()

	// Step 2: single latent upload per client (the one communication round).
	ship := p.Rec.StartSpan("latent-ship")
	errs := make([]error, len(p.Clients))
	for i, c := range p.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			errs[i] = c.UploadLatents(p.Bus, p.Coord.ID, p.Cfg.LatentNoiseStd)
		}(i, c)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			ship.End()
			return 0, 0, e
		}
	}
	z, err := p.Coord.CollectLatents(p.Bus)
	if err != nil {
		ship.End()
		return 0, 0, err
	}
	ship.SetAttr("rows", z.Rows)
	ship.SetAttr("width", z.Cols)
	ship.End()

	// Step 3: coordinator-local diffusion training.
	dspan := p.Rec.StartSpan("diffusion-train")
	dspan.SetAttr("iters", p.Cfg.DiffIters)
	diffLoss = p.Coord.TrainDiffusion(z, p.Cfg.Diff, p.Cfg.DiffIters, p.Cfg.Batch)
	dspan.SetAttr("loss", diffLoss)
	dspan.End()
	return aeLoss, diffLoss, nil
}

// SynthesizePartitioned executes Algorithm 2: a requesting client triggers
// synthesis, the coordinator denoises fresh latents and distributes each
// partition, and every client decodes locally. The result stays vertically
// partitioned — the paper's strong-privacy mode.
func (p *Pipeline) SynthesizePartitioned(requester int, n int, sample bool) ([]*tabular.Table, error) {
	if requester < 0 || requester >= len(p.Clients) {
		return nil, fmt.Errorf("silo: invalid requesting client %d", requester)
	}
	span := p.Rec.StartSpan("synthesis")
	span.SetAttr("rows", n)
	span.SetAttr("steps", p.Cfg.SynthSteps)
	defer span.End()
	// Request message (control only).
	req := &Envelope{From: p.Clients[requester].ID, To: p.Coord.ID, Kind: KindSynthReq}
	if err := p.Bus.Send(req); err != nil {
		return nil, err
	}
	if env, err := p.Bus.Recv(p.Coord.ID); err != nil {
		return nil, err
	} else if env.Kind != KindSynthReq {
		return nil, fmt.Errorf("silo: coordinator expected synth request, got %q", env.Kind)
	}

	parts, err := p.Coord.SampleLatents(n, p.Cfg.SynthSteps)
	if err != nil {
		return nil, err
	}
	if err := p.Coord.DistributeLatents(p.Bus, parts); err != nil {
		return nil, err
	}

	out := make([]*tabular.Table, len(p.Clients))
	errs := make([]error, len(p.Clients))
	var wg sync.WaitGroup
	for i, c := range p.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			env, err := p.Bus.Recv(c.ID)
			if err != nil {
				errs[i] = err
				return
			}
			if env.Kind != KindSynthLatent {
				errs[i] = fmt.Errorf("silo: client %s expected synth latents, got %q", c.ID, env.Kind)
				return
			}
			out[i], errs[i] = c.DecodeLatents(env.Payload, sample)
		}(i, c)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// SynthesizeShared runs SynthesizePartitioned and then joins the partitions
// back into one table in the original column order — the paper's
// share-post-generation mode whose privacy risk Section V-F quantifies.
func (p *Pipeline) SynthesizeShared(requester, n int, sample bool) (*tabular.Table, error) {
	parts, err := p.SynthesizePartitioned(requester, n, sample)
	if err != nil {
		return nil, err
	}
	return tabular.JoinVertical(p.Schema, p.Parts, parts)
}
