package silo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"silofuse/internal/autoencoder"
	"silofuse/internal/diffusion"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// PipelineConfig configures a cross-silo training pipeline.
type PipelineConfig struct {
	Clients     int
	Permutation []int // optional feature permutation before partitioning
	AE          autoencoder.Config
	Diff        diffusion.ModelConfig // Dim is overridden with the latent width
	AEIters     int
	DiffIters   int
	Batch       int
	SynthSteps  int // inference denoising steps (paper: 25)
	Seed        int64
	// SplitWidths divides the autoencoder hidden/embed widths evenly across
	// clients, as the paper does with its centralized 1024/32 budget.
	SplitWidths bool
	// DisableLatentWhitening turns off the coordinator's per-dimension
	// latent standardisation (ablation switch).
	DisableLatentWhitening bool
	// LatentNoiseStd adds Gaussian noise to uploaded latents — a
	// differential-privacy style knob trading quality for obfuscation.
	LatentNoiseStd float64
	// TrainWorkers > 0 trains the coordinator's diffusion model
	// data-parallel across that many workers, with gradient traffic on the
	// bus as KindGrad envelopes. 0 keeps the single-worker in-process path.
	TrainWorkers int
	// TrainShards fixes the logical shard count of data-parallel training
	// (0 means diffusion.DefaultShards). The shard count — not the worker
	// count — decides the reduction geometry, so results are bit-identical
	// across TrainWorkers for a fixed TrainShards.
	TrainShards int
}

// Pipeline wires M clients and a coordinator over a Bus and runs the
// stacked training (Algorithm 1) and distributed synthesis (Algorithm 2)
// protocols.
type Pipeline struct {
	Bus     Bus
	Schema  *tabular.Schema
	Parts   [][]int
	Clients []*Client
	Coord   *Coordinator
	Cfg     PipelineConfig
	// Rec, when non-nil, receives phase spans and per-step telemetry from
	// every actor in the pipeline. Set it with SetRecorder.
	Rec *obs.Recorder
	// Fed, when non-nil, federates per-party telemetry to the coordinator at
	// phase boundaries. Enable it with EnableFederation (after
	// SetPartyRecorders, so each party has its own delta source).
	Fed *Federation
}

// SetRecorder threads rec through the pipeline: phase spans on the pipeline
// itself, per-step telemetry on every client autoencoder and the
// coordinator's diffusion model, and per-message telemetry on the bus when
// the transport supports it. A nil rec switches everything off.
//
// Client.Rec is deliberately left nil here: per-client spans from parallel
// goroutines would garble a single tracer's B/E stack. Use SetPartyRecorders
// to give each silo its own trace lane.
func (p *Pipeline) SetRecorder(rec *obs.Recorder) {
	p.Rec = rec
	for _, c := range p.Clients {
		c.AE.Rec = rec
	}
	p.Coord.Rec = rec
	if rs, ok := p.Bus.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// SetPartyRecorders threads one recorder per party, the distributed-trace
// variant of SetRecorder: protocol phase spans and the coordinator's
// diffusion telemetry land on coord; each client's autoencoder telemetry and
// its local training span land on the matching clients[i]. Build the
// recorders with obs.NewPartyRecorder over one shared registry so metrics
// still aggregate, and give each party's transport its recorder separately
// (the pipeline's shared Bus handle is left untouched — per-party transports
// like TCPPeer own their telemetry).
func (p *Pipeline) SetPartyRecorders(coord *obs.Recorder, clients []*obs.Recorder) error {
	if len(clients) != len(p.Clients) {
		return fmt.Errorf("silo: %d client recorders for %d clients", len(clients), len(p.Clients))
	}
	p.Rec = coord
	p.Coord.Rec = coord
	for i, c := range p.Clients {
		c.Rec = clients[i]
		c.AE.Rec = clients[i]
	}
	return nil
}

// NewPipeline vertically partitions data across cfg.Clients silos and
// constructs the actors. The coordinator is a distinct actor named "coord";
// clients are "c0".."cM-1".
func NewPipeline(bus Bus, data *tabular.Table, cfg PipelineConfig) (*Pipeline, error) {
	parts, err := data.Schema.Partition(cfg.Clients, cfg.Permutation)
	if err != nil {
		return nil, err
	}
	silos := data.VerticalPartition(parts)
	names := make([]string, cfg.Clients)
	clients := make([]*Client, cfg.Clients)
	for i, local := range silos {
		names[i] = fmt.Sprintf("c%d", i)
		aeCfg := cfg.AE
		if cfg.SplitWidths {
			aeCfg.Hidden = maxInt(aeCfg.Hidden/cfg.Clients, 16)
			aeCfg.Embed = maxInt(aeCfg.Embed/cfg.Clients, 4)
		}
		aeCfg.Latent = local.Schema.NumColumns()
		clients[i] = NewClient(names[i], local, aeCfg, cfg.Seed+int64(i)*1000)
		// Clients train concurrently in the AE phase, so per-client global
		// MemStats windows would count each other's allocations; the phase
		// is measured once, at the pipeline level, in TrainStackedFrom.
		clients[i].AE.SkipAllocStats = true
	}
	coord := NewCoordinator("coord", names, cfg.Seed+999_999)
	coord.DisableWhitening = cfg.DisableLatentWhitening
	return &Pipeline{
		Bus:     bus,
		Schema:  data.Schema,
		Parts:   parts,
		Clients: clients,
		Coord:   coord,
		Cfg:     cfg,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TrainPhase marks how far stacked training has progressed; a Checkpoint
// records the last completed phase so recovery re-runs only what a failure
// interrupted.
type TrainPhase int

// Stacked training phases, in protocol order. Phase boundaries are the
// checkpoint/resume granularity: the AE and diffusion phases are entirely
// local to their parties, so only the latent-ship phase can be interrupted
// by a transport fault.
const (
	PhaseNone      TrainPhase = iota // nothing completed
	PhaseAE                          // local autoencoder training done
	PhaseLatents                     // latents shipped and collected
	PhaseDiffusion                   // diffusion trained — run complete
)

// Checkpoint is the resumable state of one stacked training run: the last
// completed phase, the phase losses, and (once shipped) the collected
// latents. In-process recovery passes the same Checkpoint back to
// TrainStackedFrom; cross-process recovery serialises it with
// SaveCheckpoint and restores with LoadCheckpoint.
type Checkpoint struct {
	Phase    TrainPhase
	AELoss   float64
	DiffLoss float64

	latents *tensor.Matrix // collected Z, present from PhaseLatents on
}

// TrainStacked executes Algorithm 1: parallel local autoencoder training,
// a single latent upload per client, then coordinator-local diffusion
// training. It returns the mean tail losses of both phases.
func (p *Pipeline) TrainStacked() (aeLoss, diffLoss float64, err error) {
	return p.TrainStackedFrom(nil)
}

// TrainStackedFrom runs Algorithm 1 starting after the last phase recorded
// in ck (nil means from scratch), updating ck as each phase completes. On a
// transport failure the returned Checkpoint state tells the caller exactly
// where to resume: completed phases are never re-run, and re-running the
// latent-ship phase is idempotent (encoding is deterministic and draws no
// randomness when LatentNoiseStd is zero, so a recovered run is
// bit-identical to a fault-free one).
func (p *Pipeline) TrainStackedFrom(ck *Checkpoint) (aeLoss, diffLoss float64, err error) {
	if ck == nil {
		ck = &Checkpoint{}
	}
	// Phase 1: local autoencoder training, clients in parallel.
	if ck.Phase < PhaseAE {
		span := p.Rec.StartSpan("ae-train")
		span.SetAttr("clients", len(p.Clients))
		span.SetAttr("iters", p.Cfg.AEIters)
		p.Rec.ProfilePhaseStart("ae-train")
		losses := make([]float64, len(p.Clients))
		// Allocation accounting brackets the whole parallel phase: a single
		// global MemStats window over all clients is deterministic, where
		// overlapping per-client windows are not (see SkipAllocStats).
		var ms0 runtime.MemStats
		if p.Rec != nil {
			runtime.ReadMemStats(&ms0)
		}
		var wg sync.WaitGroup
		for i, c := range p.Clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				losses[i] = c.TrainLocal(p.Cfg.AEIters, p.Cfg.Batch)
			}(i, c)
		}
		wg.Wait()
		if p.Rec != nil {
			var ms1 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			p.Rec.TrainAllocs("ae", p.Cfg.AEIters*len(p.Clients), ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
		}
		for _, l := range losses {
			aeLoss += l
		}
		aeLoss /= float64(len(losses))
		p.Rec.ProfilePhaseEnd("ae-train")
		span.SetAttr("loss", aeLoss)
		span.End()
		ck.Phase, ck.AELoss = PhaseAE, aeLoss
	} else {
		aeLoss = ck.AELoss
	}

	// Phase 2: single latent upload per client (the one communication round).
	if ck.Phase < PhaseLatents {
		ship := p.Rec.StartSpan("latent-ship")
		p.Rec.ProfilePhaseStart("latent-ship")
		errs := make([]error, len(p.Clients))
		var wg sync.WaitGroup
		for i, c := range p.Clients {
			wg.Add(1)
			go func(i int, c *Client) {
				defer wg.Done()
				// Federation flush precedes the upload on the same link, so
				// the coordinator sees each client's telemetry before its
				// latents — a deterministic skip in CollectLatents.
				p.Fed.Flush(p.Bus, c.ID)
				errs[i] = c.UploadLatents(p.Bus, p.Coord.ID, p.Cfg.LatentNoiseStd)
			}(i, c)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				p.Rec.ProfilePhaseEnd("latent-ship")
				ship.End()
				return aeLoss, 0, e
			}
		}
		z, err := p.Coord.CollectLatents(p.Bus)
		if err != nil {
			p.Rec.ProfilePhaseEnd("latent-ship")
			ship.End()
			return aeLoss, 0, err
		}
		ship.SetAttr("rows", z.Rows)
		ship.SetAttr("width", z.Cols)
		p.Rec.ProfilePhaseEnd("latent-ship")
		ship.End()
		ck.Phase, ck.latents = PhaseLatents, z
	}

	// Phase 3: coordinator-local diffusion training.
	if ck.Phase < PhaseDiffusion {
		dspan := p.Rec.StartSpan("diffusion-train")
		dspan.SetAttr("iters", p.Cfg.DiffIters)
		p.Rec.ProfilePhaseStart("diffusion-train")
		if p.Cfg.TrainWorkers > 0 {
			dspan.SetAttr("workers", p.Cfg.TrainWorkers)
			diffLoss, err = p.Coord.TrainDiffusionDDP(p.Bus, ck.latents, p.Cfg.Diff,
				p.Cfg.DiffIters, p.Cfg.Batch, p.Cfg.TrainWorkers, p.Cfg.TrainShards)
			if err != nil {
				p.Rec.ProfilePhaseEnd("diffusion-train")
				dspan.End()
				return aeLoss, 0, err
			}
		} else {
			diffLoss = p.Coord.TrainDiffusion(ck.latents, p.Cfg.Diff, p.Cfg.DiffIters, p.Cfg.Batch)
		}
		p.Rec.ProfilePhaseEnd("diffusion-train")
		dspan.SetAttr("loss", diffLoss)
		dspan.End()
		p.Fed.FlushLocal()
		ck.Phase, ck.DiffLoss = PhaseDiffusion, diffLoss
	} else {
		diffLoss = ck.DiffLoss
	}
	return aeLoss, diffLoss, nil
}

// RecoveryConfig governs phase-level retry after a peer death.
type RecoveryConfig struct {
	// MaxPhaseRetries bounds recovery attempts (default 2). Non-peer-death
	// errors are never retried.
	MaxPhaseRetries int
	// OnPeerDead, when non-nil, is called with the dead peer's name (possibly
	// empty if unknown) before each retry; callers restart the failed party
	// here — re-dial its TCPPeer, revive a chaos crash. Returning an error
	// aborts recovery.
	OnPeerDead func(peer string) error
}

// parties lists every actor name on the bus, clients first. With
// data-parallel training enabled the gradient plane's parties are included,
// so a transport reset clears their in-flight state too.
func (p *Pipeline) parties() []string {
	out := make([]string, 0, len(p.Clients)+1)
	for _, c := range p.Clients {
		out = append(out, c.ID)
	}
	out = append(out, p.Coord.ID)
	if p.Cfg.TrainWorkers > 0 {
		out = append(out, DDPParties(p.Cfg.TrainWorkers)...)
	}
	return out
}

// TrainStackedResilient runs stacked training with phase-level crash
// recovery: when a peer dies mid-phase, the OnPeerDead hook lets the
// caller restart it, the transport's in-flight state is reset, and
// training resumes from the last completed phase in the checkpoint. The
// returned Checkpoint reflects the final state even on error, so a caller
// with an out-of-process recovery path can persist it via SaveCheckpoint.
func (p *Pipeline) TrainStackedResilient(rc RecoveryConfig) (aeLoss, diffLoss float64, ck *Checkpoint, err error) {
	if rc.MaxPhaseRetries <= 0 {
		rc.MaxPhaseRetries = 2
	}
	ck = &Checkpoint{}
	for attempt := 0; ; attempt++ {
		aeLoss, diffLoss, err = p.TrainStackedFrom(ck)
		if err == nil || !errors.Is(err, ErrPeerDead) || attempt >= rc.MaxPhaseRetries {
			return aeLoss, diffLoss, ck, err
		}
		if p.Rec != nil {
			p.Rec.PeerDown(DeadPeerName(err))
		}
		if rc.OnPeerDead != nil {
			if herr := rc.OnPeerDead(DeadPeerName(err)); herr != nil {
				return aeLoss, diffLoss, ck, fmt.Errorf("silo: recovery hook: %w", herr)
			}
		}
		if rs, ok := p.Bus.(Resetter); ok {
			rs.Reset(p.parties())
		}
	}
}

// SynthesizePartitioned executes Algorithm 2: a requesting client triggers
// synthesis, the coordinator denoises fresh latents and distributes each
// partition, and every client decodes locally. The result stays vertically
// partitioned — the paper's strong-privacy mode.
func (p *Pipeline) SynthesizePartitioned(requester int, n int, sample bool) ([]*tabular.Table, error) {
	if requester < 0 || requester >= len(p.Clients) {
		return nil, fmt.Errorf("silo: invalid requesting client %d", requester)
	}
	span := p.Rec.StartSpan("synthesis")
	span.SetAttr("rows", n)
	span.SetAttr("steps", p.Cfg.SynthSteps)
	defer span.End()
	p.Rec.ProfilePhaseStart("synthesis")
	defer p.Rec.ProfilePhaseEnd("synthesis")
	// Request message (control only).
	req := &Envelope{From: p.Clients[requester].ID, To: p.Coord.ID, Kind: KindSynthReq}
	if err := p.Bus.Send(req); err != nil {
		return nil, err
	}
	for {
		env, err := p.Bus.Recv(p.Coord.ID)
		if err != nil {
			return nil, err
		}
		if p.Fed.Observe(env) {
			continue // leftover federated telemetry
		}
		if env.Kind != KindSynthReq {
			return nil, fmt.Errorf("silo: coordinator expected synth request, got %q", env.Kind)
		}
		break
	}

	parts, err := p.Coord.SampleLatents(n, p.Cfg.SynthSteps)
	if err != nil {
		return nil, err
	}
	if err := p.Coord.DistributeLatents(p.Bus, parts); err != nil {
		return nil, err
	}

	out := make([]*tabular.Table, len(p.Clients))
	errs := make([]error, len(p.Clients))
	var wg sync.WaitGroup
	for i, c := range p.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			env, err := p.Bus.Recv(c.ID)
			if err != nil {
				errs[i] = err
				return
			}
			if env.Kind != KindSynthLatent {
				errs[i] = fmt.Errorf("silo: client %s expected synth latents, got %q", c.ID, env.Kind)
				return
			}
			out[i], errs[i] = c.DecodeLatents(env.Payload, sample)
			// End-of-synthesis federation flush: the run's final deterministic
			// phase boundary for this party.
			p.Fed.Flush(p.Bus, c.ID)
		}(i, c)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if err := p.Fed.Drain(p.Bus); err != nil {
		return nil, err
	}
	p.Fed.FlushLocal()
	return out, nil
}

// SynthesizeSharedBatch stacks len(ns) concurrent synthesis requests into
// one denoising ping-pong: request k receives ns[k] rows drawn from
// sampling lane k (diffusion.LaneRng(seed, k)). One protocol round serves
// all requests — one synth-req, one latent distribution, one decode per
// client — and lane independence makes request k's rows bit-identical to a
// sequential SynthesizeSharedLane(requester, seed, k, ns[k], sample) call.
func (p *Pipeline) SynthesizeSharedBatch(requester int, seed int64, ns []int, sample bool) ([]*tabular.Table, error) {
	joined, err := p.synthesizeSharedStacked(requester, seed, 0, ns, sample)
	if err != nil {
		return nil, err
	}
	out := make([]*tabular.Table, len(ns))
	off := 0
	for k, n := range ns {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = off + i
		}
		out[k] = joined.SelectRows(idx)
		off += n
	}
	return out, nil
}

// SynthesizeSharedLane serves a single synthesis request on an explicit
// sampling lane — the sequential comparator for SynthesizeSharedBatch.
func (p *Pipeline) SynthesizeSharedLane(requester int, seed int64, lane, n int, sample bool) (*tabular.Table, error) {
	return p.synthesizeSharedStacked(requester, seed, lane, []int{n}, sample)
}

// synthesizeSharedStacked runs the batched Algorithm 2 round: synth-req,
// one stacked latent batch sampled on lanes lane0..lane0+len(ns)-1,
// distribution, parallel decode, vertical join. The returned table holds
// the lanes' rows stacked in lane order.
func (p *Pipeline) synthesizeSharedStacked(requester int, seed int64, lane0 int, ns []int, sample bool) (*tabular.Table, error) {
	if requester < 0 || requester >= len(p.Clients) {
		return nil, fmt.Errorf("silo: invalid requesting client %d", requester)
	}
	total := 0
	for _, n := range ns {
		total += n
	}
	span := p.Rec.StartSpan("synthesis")
	span.SetAttr("rows", total)
	span.SetAttr("lanes", len(ns))
	span.SetAttr("steps", p.Cfg.SynthSteps)
	defer span.End()
	p.Rec.ProfilePhaseStart("synthesis")
	defer p.Rec.ProfilePhaseEnd("synthesis")
	req := &Envelope{From: p.Clients[requester].ID, To: p.Coord.ID, Kind: KindSynthReq}
	if err := p.Bus.Send(req); err != nil {
		return nil, err
	}
	for {
		env, err := p.Bus.Recv(p.Coord.ID)
		if err != nil {
			return nil, err
		}
		if p.Fed.Observe(env) {
			continue // leftover federated telemetry
		}
		if env.Kind != KindSynthReq {
			return nil, fmt.Errorf("silo: coordinator expected synth request, got %q", env.Kind)
		}
		break
	}

	parts, err := p.Coord.SampleLatentsBatch(seed, lane0, ns, p.Cfg.SynthSteps)
	if err != nil {
		return nil, err
	}
	if err := p.Coord.DistributeLatents(p.Bus, parts); err != nil {
		return nil, err
	}

	out := make([]*tabular.Table, len(p.Clients))
	errs := make([]error, len(p.Clients))
	var wg sync.WaitGroup
	for i, c := range p.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			env, err := p.Bus.Recv(c.ID)
			if err != nil {
				errs[i] = err
				return
			}
			if env.Kind != KindSynthLatent {
				errs[i] = fmt.Errorf("silo: client %s expected synth latents, got %q", c.ID, env.Kind)
				return
			}
			out[i], errs[i] = c.DecodeLatents(env.Payload, sample)
			p.Fed.Flush(p.Bus, c.ID)
		}(i, c)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if err := p.Fed.Drain(p.Bus); err != nil {
		return nil, err
	}
	p.Fed.FlushLocal()
	return tabular.JoinVertical(p.Schema, p.Parts, out)
}

// SynthesizeShared runs SynthesizePartitioned and then joins the partitions
// back into one table in the original column order — the paper's
// share-post-generation mode whose privacy risk Section V-F quantifies.
func (p *Pipeline) SynthesizeShared(requester, n int, sample bool) (*tabular.Table, error) {
	parts, err := p.SynthesizePartitioned(requester, n, sample)
	if err != nil {
		return nil, err
	}
	return tabular.JoinVertical(p.Schema, p.Parts, parts)
}
