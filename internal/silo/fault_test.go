package silo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/diffusion"
	"silofuse/internal/tensor"
)

// TestStackedTrainingSurfacesTransportFailure: a bare (unwrapped) ChaosBus
// blackhole fails every delivery, and without the resilient layer the raw
// transport error must surface from training rather than be swallowed. The
// typed-error path through the resilient stack is pinned separately by
// TestChaosBlackholeFailsTyped.
func TestStackedTrainingSurfacesTransportFailure(t *testing.T) {
	tb := loanTable(t, 100)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 10, 10
	prof, err := ChaosProfileByName("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	bus := NewChaosBus(NewLocalBus(), 1, prof)
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); !errors.Is(err, ErrDropped) {
		t.Fatalf("expected dropped-delivery error to surface, got %v", err)
	}
}

// TestCoordinatorRejectsWrongMessageKind: an envelope with an unknown kind
// in the latent-collection slot must be rejected by protocol validation.
func TestCoordinatorRejectsWrongMessageKind(t *testing.T) {
	bus := NewLocalBus()
	c := NewCoordinator("coord", []string{"c0", "c1"}, 1)
	bus.Send(&Envelope{From: "c0", To: "coord", Kind: "garbage", Payload: tensor.New(3, 2)})
	if _, err := c.CollectLatents(bus); err == nil {
		t.Fatal("expected kind-validation error")
	}
}

func TestCoordinatorRejectsDuplicateLatents(t *testing.T) {
	bus := NewLocalBus()
	c := NewCoordinator("coord", []string{"c0", "c1"}, 1)
	m := tensor.New(3, 2)
	bus.Send(&Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m})
	bus.Send(&Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m})
	if _, err := c.CollectLatents(bus); err == nil {
		t.Fatal("expected duplicate-latents error")
	}
}

func TestCoordinatorSampleBeforeTrain(t *testing.T) {
	c := NewCoordinator("coord", []string{"c0"}, 1)
	if _, err := c.SampleLatents(5, 5); err == nil {
		t.Fatal("expected no-model error")
	}
}

// TestCoordinatorWhitening verifies latent standardisation round-trips: the
// whitened data has zero mean / unit variance per dimension, and colouring
// restores the original scale.
func TestCoordinatorWhitening(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCoordinator("coord", []string{"c0"}, 1)
	z := tensor.New(500, 3)
	for i := 0; i < 500; i++ {
		z.Set(i, 0, 100+5*rng.NormFloat64())
		z.Set(i, 1, -2+0.1*rng.NormFloat64())
		z.Set(i, 2, rng.NormFloat64())
	}
	c.fitLatentScaler(z)
	w := c.whiten(z)
	for j := 0; j < 3; j++ {
		col := w.Col(j)
		var mean, v float64
		for _, x := range col {
			mean += x
		}
		mean /= float64(len(col))
		for _, x := range col {
			d := x - mean
			v += d * d
		}
		v /= float64(len(col))
		if math.Abs(mean) > 1e-9 || math.Abs(v-1) > 1e-9 {
			t.Fatalf("dim %d not whitened: mean %v var %v", j, mean, v)
		}
	}
	c.colour(w)
	for i := range z.Data {
		if math.Abs(w.Data[i]-z.Data[i]) > 1e-9 {
			t.Fatal("colour does not invert whiten")
		}
	}
}

// TestWhiteningImprovesSampleScale: without whitening, samples start from
// N(0,1) while the true latents sit at a shifted scale, so the sampled
// latent mean is far off; with whitening it matches.
func TestWhiteningImprovesSampleScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z := tensor.New(400, 2)
	for i := 0; i < 400; i++ {
		z.Set(i, 0, 10+rng.NormFloat64())
		z.Set(i, 1, -7+0.5*rng.NormFloat64())
	}
	cfg := diffusion.ModelConfig{Hidden: 32, Depth: 2, TimeDim: 8, T: 50, LR: 2e-3}

	cWhite := NewCoordinator("coord", []string{"c0"}, 2)
	cWhite.latentDims = []int{2}
	cWhite.TrainDiffusion(z, cfg, 300, 128)
	parts, err := cWhite.SampleLatents(400, 10)
	if err != nil {
		t.Fatal(err)
	}
	meanWhite := parts[0].Col(0)
	mw := 0.0
	for _, v := range meanWhite {
		mw += v
	}
	mw /= float64(len(meanWhite))

	cRaw := NewCoordinator("coord", []string{"c0"}, 2)
	cRaw.DisableWhitening = true
	cRaw.latentDims = []int{2}
	cRaw.TrainDiffusion(z, cfg, 300, 128)
	partsRaw, err := cRaw.SampleLatents(400, 10)
	if err != nil {
		t.Fatal(err)
	}
	mr := 0.0
	for _, v := range partsRaw[0].Col(0) {
		mr += v
	}
	mr /= 400

	// True mean is 10. Whitened sampling must land close; raw sampling from
	// an N(0,1) prior cannot bridge the scale gap in 300 iterations.
	if math.Abs(mw-10) > 2 {
		t.Fatalf("whitened sample mean %v, want ≈10", mw)
	}
	if math.Abs(mw-10) >= math.Abs(mr-10) {
		t.Fatalf("whitening should improve scale match: whitened err %v vs raw err %v",
			math.Abs(mw-10), math.Abs(mr-10))
	}
}
