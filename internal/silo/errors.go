package silo

import (
	"errors"
	"fmt"
)

// Transport fault classes surfaced as typed errors. Every failure mode of
// the resilient fabric resolves to one of these sentinels (via errors.Is),
// so callers can distinguish "the peer is gone, rejoin and resume from the
// last checkpoint" from "the payload failed its checksum, the message must
// be retransmitted" without string matching.
var (
	// ErrPeerDead means a party is unreachable: its connection dropped, it
	// announced a crash, or a bounded retry budget was exhausted against it.
	ErrPeerDead = errors.New("silo: peer dead")
	// ErrCorruptPayload means an envelope arrived whose payload checksum did
	// not match the sender's — the bytes were altered in flight.
	ErrCorruptPayload = errors.New("silo: corrupt payload")
	// ErrBusClosed means a send was attempted on a transport whose Close has
	// already begun; the message was not delivered and never will be.
	ErrBusClosed = errors.New("silo: bus closed")
)

// PeerDeadError carries the name of the dead peer; it unwraps to
// ErrPeerDead. Recovery drivers use the name to restart or re-dial exactly
// the party that failed.
type PeerDeadError struct {
	Peer string
	// Cause, when non-nil, is the underlying transport error.
	Cause error
}

func (e *PeerDeadError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("silo: peer %s dead: %v", e.Peer, e.Cause)
	}
	return fmt.Sprintf("silo: peer %s dead", e.Peer)
}

// Unwrap makes errors.Is(err, ErrPeerDead) true.
func (e *PeerDeadError) Unwrap() error { return ErrPeerDead }

// DeadPeerName extracts the peer name from an ErrPeerDead-class error chain,
// or "" when the error carries no peer identity.
func DeadPeerName(err error) string {
	var pd *PeerDeadError
	if errors.As(err, &pd) {
		return pd.Peer
	}
	return ""
}
