//silofuse:bitwise-ok ddp chaos and equivalence tests pin bit-identical runs with exact comparisons
package silo

import (
	"testing"

	"silofuse/internal/nn"
	"silofuse/internal/tabular"
)

// ddpStackedRun trains a small stacked pipeline with data-parallel
// diffusion training over bus and synthesises with mean decoding. It
// returns the losses, the output table, and the flattened gradient length
// of the trained diffusion backbone (the L of the grad wire-size model).
func ddpStackedRun(t *testing.T, bus Bus, workers int) (aeLoss, diffLoss float64, out *tabular.Table, gradLen int) {
	t.Helper()
	tb := loanTable(t, 150)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 60
	cfg.TrainWorkers = workers
	cfg.TrainShards = 8
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aeLoss, diffLoss, err = p.TrainStacked()
	if err != nil {
		t.Fatal(err)
	}
	out, err = p.SynthesizeShared(0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	return aeLoss, diffLoss, out, nn.GradSize(p.Coord.Model.Net.Params())
}

// TestDDPStackedWorkerEquivalence pins the tentpole guarantee at the
// pipeline level: the full stacked run — autoencoder training, data-
// parallel diffusion training over bus grad traffic, synthesis — is
// bit-identical for every worker count, because the logical shard count
// (not the worker count) is the constant of the reduction.
func TestDDPStackedWorkerEquivalence(t *testing.T) {
	baseAE, baseDiff, baseOut, _ := ddpStackedRun(t, NewLocalBus(), 1)
	for _, n := range []int{2, 3, 8} {
		ae, diff, out, _ := ddpStackedRun(t, NewLocalBus(), n)
		if ae != baseAE || diff != baseDiff {
			t.Fatalf("workers=%d: losses (%v, %v) diverge from single-worker (%v, %v)", n, ae, diff, baseAE, baseDiff)
		}
		sameTable(t, "ddp-workers", baseOut, out)
	}
}

// TestChaosMatrixGradTransparent is the gradient-traffic arm of the chaos
// matrix: data-parallel training over every transparently recoverable
// fault class recovers byte-for-byte — losses and synthesised output match
// the fault-free sharded baseline — and the byte ledger stays exact: the
// grad kind books precisely iters×S shard gradients plus iters×N reduced
// updates of goodput, total bytes decompose into the per-kind split, and
// drops are visible if and only if retransmit bytes are booked.
func TestChaosMatrixGradTransparent(t *testing.T) {
	const workers, shards, iters = 2, 8, 60
	baseAE, baseDiff, baseOut, gradLen := ddpStackedRun(t, NewLocalBus(), workers)
	wantGradBytes := int64(iters) * (int64(shards)*DDPGradWireSize(gradLen) + int64(workers)*DDPUpdateWireSize(gradLen))

	for _, name := range []string{"drop", "dup", "reorder", "delay"} {
		for _, seed := range []int64{1, 7} {
			rb, cb := resilientChaos(seed, mustProfile(t, name))
			ae, diff, out, _ := ddpStackedRun(t, rb, workers)
			label := name + "/grad"
			if ae != baseAE || diff != baseDiff {
				t.Fatalf("%s seed %d: losses (%v, %v) diverge from baseline (%v, %v)",
					label, seed, ae, diff, baseAE, baseDiff)
			}
			sameTable(t, label, baseOut, out)

			st := rb.Stats()
			if got := st.ByKind[KindGrad]; got != wantGradBytes {
				t.Fatalf("%s seed %d: grad goodput %d bytes, want %d (S=%d, N=%d, L=%d)",
					label, seed, got, wantGradBytes, shards, workers, gradLen)
			}
			var byKind int64
			for _, b := range st.ByKind {
				byKind += b
			}
			if byKind != st.Bytes {
				t.Fatalf("%s seed %d: ByKind sums to %d, Bytes = %d", label, seed, byKind, st.Bytes)
			}
			faults := cb.FaultStats()
			rexmit := st.ByKind[KindRetransmit]
			if (faults.Drops > 0) != (rexmit > 0) {
				t.Fatalf("%s seed %d: %d drops but %d retransmit bytes", label, seed, faults.Drops, rexmit)
			}
			// The grad stream is dense (iters × (S+N) messages), so every
			// profile's fault class must actually fire.
			switch name {
			case "drop":
				if faults.Drops == 0 {
					t.Fatalf("%s seed %d: drop profile injected no drops", label, seed)
				}
			case "dup":
				if faults.Dups == 0 {
					t.Fatalf("%s seed %d: dup profile injected no dups", label, seed)
				}
			case "reorder":
				if faults.Reorders == 0 {
					t.Fatalf("%s seed %d: reorder profile injected no reorders", label, seed)
				}
			case "delay":
				if faults.Delays == 0 {
					t.Fatalf("%s seed %d: delay profile injected no delays", label, seed)
				}
			}
		}
	}
}

// TestSynthesizeSharedBatchMatchesLanes pins the batched-synthesis
// property at the pipeline level: K stacked requests served in one
// denoising loop return, request for request, exactly the tables that K
// sequential single-lane calls with the same seed produce.
func TestSynthesizeSharedBatchMatchesLanes(t *testing.T) {
	tb := loanTable(t, 150)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 60
	cfg.TrainWorkers = 2
	p, err := NewPipeline(NewLocalBus(), tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	const seed = 11
	ns := []int{3, 5, 2}
	tables, err := p.SynthesizeSharedBatch(0, seed, ns, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(ns) {
		t.Fatalf("batch returned %d tables, want %d", len(tables), len(ns))
	}
	for k, n := range ns {
		if tables[k].Data.Rows != n {
			t.Fatalf("request %d got %d rows, want %d", k, tables[k].Data.Rows, n)
		}
		lane, err := p.SynthesizeSharedLane(0, seed, k, n, false)
		if err != nil {
			t.Fatal(err)
		}
		sameTable(t, "batch-lane", lane, tables[k])
	}
}
