package silo

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// traceDoc mirrors the Chrome trace envelope for test parsing.
type traceDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		PID   int            `json:"pid"`
		ID    uint64         `json:"id"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func parseTrace(t *testing.T, tr *obs.Tracer) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// flowIDs collects the ids of flow events with the given phase ("s" or "f").
func (d traceDoc) flowIDs(phase string) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, ev := range d.TraceEvents {
		if ev.Phase == phase && ev.ID != 0 {
			out[ev.ID] = true
		}
	}
	return out
}

// TestFlowContextLocalBus: a traced LocalBus stamps envelopes with flow ids
// and records matching flow-start/finish events around every delivery.
func TestFlowContextLocalBus(t *testing.T) {
	b := NewLocalBus()
	rec := obs.NewRecorder()
	b.SetRecorder(rec)

	e := &Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: tensor.New(4, 3)}
	if err := b.Send(e); err != nil {
		t.Fatal(err)
	}
	if e.Flow == 0 {
		t.Fatal("traced send left Flow zero")
	}
	got, err := b.Recv("coord")
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != e.Flow {
		t.Fatalf("received Flow = %d, want %d", got.Flow, e.Flow)
	}

	doc := parseTrace(t, rec.Trace)
	if !doc.flowIDs("s")[e.Flow] || !doc.flowIDs("f")[e.Flow] {
		t.Fatalf("trace missing flow pair for id %d", e.Flow)
	}
}

// TestFlowContextUntraced: without a recorder the envelope carries no trace
// context at all (and therefore no extra gob wire bytes).
func TestFlowContextUntraced(t *testing.T) {
	b := NewLocalBus()
	e := &Envelope{From: "c0", To: "coord", Kind: KindSynthReq}
	if err := b.Send(e); err != nil {
		t.Fatal(err)
	}
	if e.Flow != 0 {
		t.Fatalf("untraced send stamped Flow = %d", e.Flow)
	}
	if _, err := b.Recv("coord"); err != nil {
		t.Fatal(err)
	}
}

// TestTraceContextTCP: flow ids survive the gob wire format in both
// directions, each endpoint records its half of the flow on its own process
// lane, and the merged trace holds both lanes. Run under -race this also
// guards the tracer against the transports' goroutines.
func TestTraceContextTCP(t *testing.T) {
	reg := obs.NewRegistry()
	coordRec := obs.NewPartyRecorder(reg, 1, "coord")
	peerRec := obs.NewPartyRecorder(reg, 2, "c0")

	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.SetRecorder(coordRec)
	peer, err := DialHub("c0", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.SetRecorder(peerRec)

	// Uplink: the peer stamps a flow id whose high bits carry its pid.
	up := &Envelope{From: "c0", To: "coord", Kind: KindLatents,
		Payload: tensor.New(6, 2).Randn(rand.New(rand.NewSource(1)), 1)}
	if err := peer.Send(up); err != nil {
		t.Fatal(err)
	}
	gotUp, err := hub.Recv("coord")
	if err != nil {
		t.Fatal(err)
	}
	if gotUp.Flow != up.Flow || up.Flow>>32 != 2 {
		t.Fatalf("uplink flow = %d (sent %d), want pid 2 in high bits", gotUp.Flow, up.Flow)
	}

	// Downlink: the hub stamps its own id.
	down := &Envelope{From: "coord", To: "c0", Kind: KindSynthLatent}
	if err := hub.Send(down); err != nil {
		t.Fatal(err)
	}
	gotDown, err := peer.Recv("c0")
	if err != nil {
		t.Fatal(err)
	}
	if gotDown.Flow != down.Flow || down.Flow>>32 != 1 {
		t.Fatalf("downlink flow = %d (sent %d), want pid 1 in high bits", gotDown.Flow, down.Flow)
	}

	var coordBuf, peerBuf bytes.Buffer
	if err := coordRec.Trace.WriteChromeTrace(&coordBuf); err != nil {
		t.Fatal(err)
	}
	if err := peerRec.Trace.WriteChromeTrace(&peerBuf); err != nil {
		t.Fatal(err)
	}
	coordDoc, peerDoc := decodeDoc(t, coordBuf.Bytes()), decodeDoc(t, peerBuf.Bytes())
	if !peerDoc.flowIDs("s")[up.Flow] || !coordDoc.flowIDs("f")[up.Flow] {
		t.Fatal("uplink flow not recorded as peer-send / hub-recv")
	}
	if !coordDoc.flowIDs("s")[down.Flow] || !peerDoc.flowIDs("f")[down.Flow] {
		t.Fatal("downlink flow not recorded as hub-send / peer-recv")
	}

	var merged bytes.Buffer
	if err := obs.MergeChromeTraces(&merged, &coordBuf, &peerBuf); err != nil {
		t.Fatal(err)
	}
	doc := decodeDoc(t, merged.Bytes())
	pids := make(map[int]bool)
	lanes := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
		if ev.Phase == "M" && ev.Name == "process_name" {
			lanes[ev.Args["name"].(string)] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("merged pids = %v, want lanes 1 and 2", pids)
	}
	if !lanes["coord"] || !lanes["c0"] {
		t.Fatalf("merged lane labels = %v", lanes)
	}

	if got := hub.Peers(); len(got) != 1 || got[0] != "c0" {
		t.Fatalf("hub.Peers() = %v, want [c0]", got)
	}
}

func decodeDoc(t *testing.T, data []byte) traceDoc {
	t.Helper()
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestTraceContextForwarded: a peer→peer message forwarded through the hub
// keeps its flow id end to end.
func TestTraceContextForwarded(t *testing.T) {
	reg := obs.NewRegistry()
	aRec := obs.NewPartyRecorder(reg, 2, "a")
	bRec := obs.NewPartyRecorder(reg, 3, "b")

	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	pa, err := DialHub("a", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	pa.SetRecorder(aRec)
	pb, err := DialHub("b", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	pb.SetRecorder(bRec)

	e := &Envelope{From: "a", To: "b", Kind: KindActivation}
	if err := pa.Send(e); err != nil {
		t.Fatal(err)
	}
	got, err := pb.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != e.Flow || e.Flow == 0 {
		t.Fatalf("forwarded flow = %d, want %d (nonzero)", got.Flow, e.Flow)
	}
}

// TestStackedPartyRecorders runs the full pipeline with per-party recorders
// over TCP-free local transports and checks that coordinator and client
// spans land on their own lanes while metrics aggregate in the shared
// registry.
func TestStackedPartyRecorders(t *testing.T) {
	tb := loanTable(t, 120)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 10, 10
	bus := NewLocalBus()
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coordRec := obs.NewPartyRecorder(reg, 1, "coord")
	clientRecs := []*obs.Recorder{
		obs.NewPartyRecorder(reg, 2, "c0"),
		obs.NewPartyRecorder(reg, 3, "c1"),
	}
	bus.SetRecorder(coordRec)
	if err := p.SetPartyRecorders(coordRec, clientRecs); err != nil {
		t.Fatal(err)
	}
	if err := p.SetPartyRecorders(coordRec, clientRecs[:1]); err == nil {
		t.Fatal("mismatched recorder count should error")
	}

	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SynthesizePartitioned(0, 10, false); err != nil {
		t.Fatal(err)
	}

	coordSpans := map[string]bool{}
	for _, sp := range coordRec.Trace.Spans() {
		coordSpans[sp.Name] = true
	}
	for _, want := range []string{"ae-train", "diffusion-train", "synthesis"} {
		if !coordSpans[want] {
			t.Fatalf("coordinator lane missing %q in %v", want, coordSpans)
		}
	}
	for i, r := range clientRecs {
		spans := map[string]bool{}
		for _, sp := range r.Trace.Spans() {
			spans[sp.Name] = true
		}
		if !spans["ae-train-local"] || !spans["decode-local"] {
			t.Fatalf("client %d lane = %v, want ae-train-local and decode-local", i, spans)
		}
	}

	// The shared registry aggregates training steps from every client.
	snap := coordRec.Snapshot()
	if snap.Counters["ae_steps_total"] != int64(2*cfg.AEIters) {
		t.Fatalf("ae_steps_total = %d, want %d", snap.Counters["ae_steps_total"], 2*cfg.AEIters)
	}
}
