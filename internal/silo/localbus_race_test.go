package silo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLocalBusConcurrentSendRecv hammers one bus with parallel senders and a
// concurrent drainer: under -race this exercises the stats lock and the box
// map; without it, it still pins the delivery invariant that every accepted
// Send is received exactly once.
func TestLocalBusConcurrentSendRecv(t *testing.T) {
	const senders, perSender = 8, 200
	bus := NewLocalBus()

	var received int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			if _, err := bus.Recv("sink"); err != nil {
				return
			}
			atomic.AddInt64(&received, 1)
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				e := &Envelope{From: "c0", To: "sink", Kind: KindLatents}
				if err := bus.Send(e); err != nil {
					t.Errorf("sender %d: %v", id, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := bus.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-drained

	if got, want := atomic.LoadInt64(&received), int64(senders*perSender); got != want {
		t.Fatalf("received %d messages, want %d", got, want)
	}
	if st := bus.Stats(); st.Messages != int64(senders*perSender) {
		t.Fatalf("Stats.Messages = %d, want %d", st.Messages, senders*perSender)
	}
}

// TestLocalBusCloseDuringSends races Close against in-flight Sends. The
// closeMu protocol guarantees a clean partition: each Send either returns
// ErrBusClosed, or its message is delivered before the inbox closes — so the
// drained count must equal the accepted-send count exactly.
func TestLocalBusCloseDuringSends(t *testing.T) {
	const senders, perSender = 8, 300
	bus := NewLocalBus()
	// Materialise the inbox before the Close race starts: Close only closes
	// boxes that exist, and a box created after Close would block the drainer
	// forever.
	bus.TryRecv("sink")

	var received, accepted int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			if _, ok := bus.TryRecv("sink"); ok {
				atomic.AddInt64(&received, 1)
				continue
			}
			if _, err := bus.Recv("sink"); err != nil {
				return
			}
			atomic.AddInt64(&received, 1)
		}
	}()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perSender; i++ {
				err := bus.Send(&Envelope{From: "c1", To: "sink", Kind: KindLatents})
				if errors.Is(err, ErrBusClosed) {
					return
				}
				if err != nil {
					t.Errorf("Send: %v", err)
					return
				}
				atomic.AddInt64(&accepted, 1)
			}
		}()
	}
	closer := make(chan struct{})
	go func() {
		defer close(closer)
		<-start
		_ = bus.Close()
		_ = bus.Close() // idempotent under contention
	}()
	close(start)
	wg.Wait()
	<-closer
	<-drained

	if got, want := atomic.LoadInt64(&received), atomic.LoadInt64(&accepted); got != want {
		t.Fatalf("drained %d messages but bus accepted %d", got, want)
	}
	if err := bus.Send(&Envelope{From: "c1", To: "sink", Kind: KindLatents}); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("Send after Close = %v, want ErrBusClosed", err)
	}
}
