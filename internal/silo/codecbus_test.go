//silofuse:bitwise-ok codec tests pin bit-identical default paths and exact byte models
package silo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/silo/codec"
	"silofuse/internal/tensor"
)

// TestWireSizeCodecModel pins Envelope.WireSize's closed-form model per
// codec against the codec package's EncodedSize arithmetic, and checks that
// an f64-framed envelope costs exactly what the historical native-payload
// model charges — the invariant the default run's byte accounting rests on.
func TestWireSizeCodecModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{1, 1}, {7, 3}, {50, 20}, {128, 16}} {
		rows, cols := shape[0], shape[1]
		m := tensor.New(rows, cols).Randn(rng, 1)
		native := &Envelope{From: "a", To: "b", Kind: KindLatents, Payload: m}
		for _, id := range []codec.ID{codec.F64, codec.F32, codec.Q8} {
			blob, _, err := codec.Encode(id, m)
			if err != nil {
				t.Fatal(err)
			}
			framed := &Envelope{From: "a", To: "b", Kind: KindLatents, Blob: blob, Codec: id, Rows: rows, Cols: cols}
			want := int64(64 + id.EncodedSize(rows, cols))
			if got := framed.WireSize(); got != want {
				t.Fatalf("%s %dx%d: WireSize = %d, want 64+EncodedSize = %d", id, rows, cols, got, want)
			}
			n, c := rows*cols, cols
			var closed int64
			switch id {
			case codec.F64:
				closed = int64(64 + 8*n)
			case codec.F32:
				closed = int64(64 + 4*n)
			case codec.Q8:
				closed = int64(64 + 16*c + n)
			}
			if got := framed.WireSize(); got != closed {
				t.Fatalf("%s %dx%d: WireSize = %d, closed form says %d", id, rows, cols, got, closed)
			}
		}
		f64blob, _, err := codec.Encode(codec.F64, m)
		if err != nil {
			t.Fatal(err)
		}
		framed := &Envelope{From: "a", To: "b", Kind: KindLatents, Blob: f64blob, Codec: codec.F64, Rows: rows, Cols: cols}
		if framed.WireSize() != native.WireSize() {
			t.Fatalf("%dx%d: f64-framed WireSize %d != native payload WireSize %d", rows, cols, framed.WireSize(), native.WireSize())
		}
	}
}

// TestCodecBusRoundTrip sends dense payloads through a CodecBus over a
// LocalBus under each codec and checks the application sees a native tensor
// again: bit-exact under f64, within the documented error bounds under f32
// and q8, with the caller's envelope left unmutated.
func TestCodecBusRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(40, 8).Randn(rng, 2)
	for _, id := range []codec.ID{codec.F64, codec.F32, codec.Q8} {
		bus := NewCodecBus(NewLocalBus(), id)
		sent := &Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m}
		if err := bus.Send(sent); err != nil {
			t.Fatal(err)
		}
		if sent.Payload != m || sent.Blob != nil || sent.Codec != 0 {
			t.Fatalf("%s: Send mutated the caller's envelope", id)
		}
		got, err := bus.Recv("coord")
		if err != nil {
			t.Fatal(err)
		}
		if got.Payload == nil || got.Blob != nil || got.Codec != 0 || got.Rows != 0 || got.Cols != 0 {
			t.Fatalf("%s: Recv returned a still-framed envelope: %+v", id, got)
		}
		if got.Payload.Rows != m.Rows || got.Payload.Cols != m.Cols {
			t.Fatalf("%s: shape %dx%d, want %dx%d", id, got.Payload.Rows, got.Payload.Cols, m.Rows, m.Cols)
		}
		var maxErr float64
		for i, v := range m.Data {
			if d := math.Abs(got.Payload.Data[i] - v); d > maxErr {
				maxErr = d
			}
		}
		switch id {
		case codec.F64:
			for i, v := range m.Data {
				if math.Float64bits(got.Payload.Data[i]) != math.Float64bits(v) {
					t.Fatalf("f64: element %d not bit-exact", i)
				}
			}
		case codec.F32:
			// Half-ULP relative rounding bound per element.
			for i, v := range m.Data {
				if d := math.Abs(got.Payload.Data[i] - v); d > math.Abs(v)*math.Exp2(-24)*1.000001 {
					t.Fatalf("f32: element %d error %v above rounding bound for %v", i, d, v)
				}
			}
		case codec.Q8:
			rep := bus.WireReport()[string(KindLatents)]
			if maxErr > rep.MaxErr {
				t.Fatalf("q8: observed error %v above reported bound %v", maxErr, rep.MaxErr)
			}
		}
	}
}

// TestCodecBusPassthrough pins what the codec layer must NOT touch: control
// kinds, blob-only telemetry envelopes, and every kind when the codec is
// None. Untouched envelopes are delivered by identity, and no wire
// accounting is booked for them.
func TestCodecBusPassthrough(t *testing.T) {
	m := tensor.New(2, 2).Fill(3)
	bus := NewCodecBus(NewLocalBus(), codec.F32)

	ctrl := &Envelope{From: "c0", To: "coord", Kind: KindSynthReq}
	tele := &Envelope{From: "c0", To: "coord", Kind: KindTelemetry, Blob: []byte("{}")}
	for _, e := range []*Envelope{ctrl, tele} {
		if err := bus.Send(e); err != nil {
			t.Fatal(err)
		}
		got, err := bus.Recv("coord")
		if err != nil {
			t.Fatal(err)
		}
		if got != e {
			t.Fatalf("%s: passthrough envelope was copied or re-framed", e.Kind)
		}
	}

	off := NewCodecBus(NewLocalBus(), codec.None)
	if err := off.Send(&Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m}); err != nil {
		t.Fatal(err)
	}
	got, err := off.Recv("coord")
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != m || got.Codec != 0 {
		t.Fatal("codec.None must be the identity for tensor payloads")
	}
	if len(bus.WireReport()) != 0 || len(off.WireReport()) != 0 {
		t.Fatalf("passthrough traffic booked wire accounting: %v %v", bus.WireReport(), off.WireReport())
	}
}

// TestCodecBusWireReport pins the per-kind accounting arithmetic: message
// counts, the raw 64+8n model, encoded bytes equal to the framed WireSize,
// zero error under f64 and a positive bounded error under q8 — and that the
// Stats the inner bus books are the encoded (not raw) bytes, with no double
// count from the codec layer.
func TestCodecBusWireReport(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.New(10, 4).Randn(rng, 1)
	b := tensor.New(6, 4).Randn(rng, 1)
	for _, id := range []codec.ID{codec.F64, codec.Q8} {
		bus := NewCodecBus(NewLocalBus(), id)
		for _, m := range []*tensor.Matrix{a, b} {
			if err := bus.Send(&Envelope{From: "c0", To: "coord", Kind: KindLatents, Payload: m}); err != nil {
				t.Fatal(err)
			}
			if _, err := bus.Recv("coord"); err != nil {
				t.Fatal(err)
			}
		}
		rep := bus.WireReport()[string(KindLatents)]
		if rep.Codec != id.String() || rep.Messages != 2 {
			t.Fatalf("%s: report %+v", id, rep)
		}
		wantRaw := int64(2*64 + 8*(len(a.Data)+len(b.Data)))
		if rep.RawBytes != wantRaw {
			t.Fatalf("%s: raw bytes %d, want %d", id, rep.RawBytes, wantRaw)
		}
		wantEnc := int64(2*64 + id.EncodedSize(a.Rows, a.Cols) + id.EncodedSize(b.Rows, b.Cols))
		if rep.Bytes != wantEnc {
			t.Fatalf("%s: encoded bytes %d, want %d", id, rep.Bytes, wantEnc)
		}
		if got := bus.Stats().ByKind[KindLatents]; got != wantEnc {
			t.Fatalf("%s: inner stats booked %d B, want encoded %d B", id, got, wantEnc)
		}
		switch id {
		case codec.F64:
			if rep.MaxErr != 0 || rep.MeanErr != 0 {
				t.Fatalf("f64: nonzero error %+v", rep)
			}
		case codec.Q8:
			if !(rep.MaxErr > 0) || !(rep.MeanErr > 0) || rep.MeanErr > rep.MaxErr {
				t.Fatalf("q8: implausible error stats %+v", rep)
			}
		}
	}
}

// TestCodecBusDefaultBitIdentity is the headline guarantee of the wire-codec
// layer: a default (f64) CodecBus run is bit-identical to a bare LocalBus
// run — training losses, synthesised output, and the per-kind byte and
// message accounting all match exactly, so enabling the codec layer by
// default changes nothing about today's results.
func TestCodecBusDefaultBitIdentity(t *testing.T) {
	bare := NewLocalBus()
	baseAE, baseDiff, baseOut := chaosStackedRun(t, bare)

	wire := NewCodecBus(NewLocalBus(), codec.F64)
	ae, diff, out := chaosStackedRun(t, wire)
	if math.Float64bits(ae) != math.Float64bits(baseAE) || math.Float64bits(diff) != math.Float64bits(baseDiff) {
		t.Fatalf("f64 codec losses (%v, %v) diverge from bare bus (%v, %v)", ae, diff, baseAE, baseDiff)
	}
	sameTable(t, "codec-f64/stacked", baseOut, out)

	bs, ws := bare.Stats(), wire.Stats()
	if ws.Messages != bs.Messages || ws.Bytes != bs.Bytes {
		t.Fatalf("f64 codec stats (%d msgs, %d B) diverge from bare bus (%d msgs, %d B)", ws.Messages, ws.Bytes, bs.Messages, bs.Bytes)
	}
	for kind, want := range bs.ByKind {
		if ws.ByKind[kind] != want {
			t.Fatalf("f64 codec ByKind[%s] = %d, want %d", kind, ws.ByKind[kind], want)
		}
	}
	rep := wire.WireReport()
	for _, kind := range WireReportKinds(rep) {
		r := rep[kind]
		if r.MaxErr != 0 || r.MeanErr != 0 {
			t.Fatalf("f64 codec reported nonzero error for %s: %+v", kind, r)
		}
		if r.Bytes != r.RawBytes {
			t.Fatalf("f64 codec %s encoded %d B != raw %d B", kind, r.Bytes, r.RawBytes)
		}
	}
}

// TestCodecBusCompression pins the headline byte savings on a real stacked
// run: relative to the f64 framing, f32 carries the latent stream in about
// half the bytes and q8 in about a quarter, with reconstruction error
// within each codec's documented bound.
func TestCodecBusCompression(t *testing.T) {
	byteses := map[codec.ID]int64{}
	reports := map[codec.ID]WireKindStats{}
	for _, id := range []codec.ID{codec.F64, codec.F32, codec.Q8} {
		wire := NewCodecBus(NewLocalBus(), id)
		chaosStackedRun(t, wire)
		byteses[id] = wire.Stats().ByKind[KindLatents]
		reports[id] = wire.WireReport()[string(KindLatents)]
	}
	f64b, f32b, q8b := byteses[codec.F64], byteses[codec.F32], byteses[codec.Q8]
	if f64b == 0 {
		t.Fatal("no latent traffic recorded")
	}
	if ratio := float64(f32b) / float64(f64b); ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("f32/f64 latent byte ratio %.3f outside [0.4, 0.6] (%d/%d)", ratio, f32b, f64b)
	}
	if ratio := float64(q8b) / float64(f64b); ratio < 0.1 || ratio > 0.35 {
		t.Fatalf("q8/f64 latent byte ratio %.3f outside [0.1, 0.35] (%d/%d)", ratio, q8b, f64b)
	}
	if r := reports[codec.F32]; !(r.MaxErr > 0) || r.MaxErr > 1e-4 {
		t.Fatalf("f32 latent max error %v outside (0, 1e-4]", r.MaxErr)
	}
	if r := reports[codec.Q8]; !(r.MaxErr > 0) || r.MaxErr > 0.5 {
		t.Fatalf("q8 latent max error %v outside (0, 0.5]", r.MaxErr)
	}
}

// codecChaos builds the full four-layer stack under test: application ->
// CodecBus (framing) -> ResilientBus (retries, dedup, checksums) ->
// ChaosBus (fault injection) -> LocalBus.
func codecChaos(id codec.ID, seed int64, prof ChaosProfile) (*CodecBus, *ChaosBus) {
	rb, cb := resilientChaos(seed, prof)
	return NewCodecBus(rb, id), cb
}

// TestChaosMatrixCodecTransparent extends the chaos matrix across wire
// codecs: under every transparently recoverable fault class, a run framed
// with each codec recovers losses and synthesised output bit-identical to
// that codec's own fault-free baseline. Retries resend the identical
// encoded blob and dedup drops duplicate frames, so lossy framing composes
// with fault recovery without compounding error.
func TestChaosMatrixCodecTransparent(t *testing.T) {
	for _, id := range []codec.ID{codec.F32, codec.Q8} {
		base := NewCodecBus(NewLocalBus(), id)
		baseAE, baseDiff, baseOut := chaosStackedRun(t, base)
		for _, name := range []string{"drop", "dup", "reorder", "flaky"} {
			wire, cb := codecChaos(id, 7, mustProfile(t, name))
			ae, diff, out := chaosStackedRun(t, wire)
			label := id.String() + "/" + name
			if math.Float64bits(ae) != math.Float64bits(baseAE) || math.Float64bits(diff) != math.Float64bits(baseDiff) {
				t.Fatalf("%s: losses (%v, %v) diverge from codec baseline (%v, %v)", label, ae, diff, baseAE, baseDiff)
			}
			sameTable(t, label, baseOut, out)
			st := wire.Stats()
			goodput := st.Bytes - st.ByKind[KindRetransmit]
			if goodput != base.Stats().Bytes {
				t.Fatalf("%s: goodput %d B != fault-free %d B", label, goodput, base.Stats().Bytes)
			}
			if name == "drop" && (cb.FaultStats().Drops == 0 || st.ByKind[KindRetransmit] == 0) {
				t.Fatalf("%s: drop profile injected no observable faults", label)
			}
		}
	}
}

// TestChaosCodecCorruptFailsTyped: a bit flipped inside the encoded blob
// must be caught by the resilient layer's checksum and surface as the typed
// ErrCorruptPayload under every codec — compressed frames get the same
// integrity guarantee as native payloads.
func TestChaosCodecCorruptFailsTyped(t *testing.T) {
	for _, id := range []codec.ID{codec.F64, codec.F32, codec.Q8} {
		wire, cb := codecChaos(id, 4, ChaosProfile{Name: "corrupt-all", CorruptPermille: 1000})
		tb := loanTable(t, 120)
		cfg := smallConfig(2)
		cfg.AEIters, cfg.DiffIters = 10, 10
		p, err := NewPipeline(wire, tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.TrainStacked(); !errors.Is(err, ErrCorruptPayload) {
			t.Fatalf("%s: stacked over corrupt-all: err = %v, want ErrCorruptPayload", id, err)
		}
		if cb.FaultStats().Corrupts == 0 {
			t.Fatalf("%s: corrupt-all profile flipped no bits", id)
		}
	}
}

// TestChaosCrashRecoveryCodec: the crash class composed with lossy framing —
// client c1 dies on its first upload, recovery revives it and replays the
// phase, and the recovered run matches the same codec's fault-free baseline
// bit for bit (the replayed frame encodes to the identical blob).
func TestChaosCrashRecoveryCodec(t *testing.T) {
	base := NewCodecBus(NewLocalBus(), codec.Q8)
	baseAE, baseDiff, baseOut := chaosStackedRun(t, base)

	wire, cb := codecChaos(codec.Q8, 2, mustProfile(t, "crash"))
	tb := loanTable(t, 150)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 60
	p, err := NewPipeline(wire, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := RecoveryConfig{OnPeerDead: func(peer string) error {
		cb.Revive(peer)
		return nil
	}}
	ae, diff, _, err := p.TrainStackedResilient(rc)
	if err != nil {
		t.Fatal(err)
	}
	if got := cb.FaultStats().Crashes; got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
	if math.Float64bits(ae) != math.Float64bits(baseAE) || math.Float64bits(diff) != math.Float64bits(baseDiff) {
		t.Fatalf("q8 crash recovery losses (%v, %v) diverge from codec baseline (%v, %v)", ae, diff, baseAE, baseDiff)
	}
	out, err := p.SynthesizeShared(0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, "q8/crash", baseOut, out)
}

// TestCodecWireSizeToleranceTCP measures real gob framing of codec-framed
// envelopes against the WireSize model and pins the documented
// CodecWireSizeFactor/CodecWireSizeSlack tolerance for every codec: []byte
// blobs move essentially verbatim through gob, so the framed streams track
// the model far tighter than native float64 payloads do.
func TestCodecWireSizeToleranceTCP(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	rng := rand.New(rand.NewSource(6))
	m := tensor.New(50, 20).Randn(rng, 1)
	for _, id := range []codec.ID{codec.F64, codec.F32, codec.Q8} {
		peer, err := DialHub("peer-"+id.String(), hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		// Closed only after the hub shuts down: closing a live peer mid-test
		// would inject a peer-down notice into the hub inbox that the next
		// codec's Recv would trip over.
		defer peer.Close()
		var modelled int64
		for i := 0; i < 3; i++ {
			blob, _, err := codec.Encode(id, m)
			if err != nil {
				t.Fatal(err)
			}
			e := &Envelope{From: peer.Name, To: "coord", Kind: KindLatents, Blob: blob, Codec: id, Rows: m.Rows, Cols: m.Cols}
			modelled += e.WireSize()
			if err := peer.Send(e); err != nil {
				t.Fatal(err)
			}
			got, err := hub.Recv("coord")
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codec.Decode(got.Codec, got.Blob, got.Rows, got.Cols)
			if err != nil {
				t.Fatalf("%s: decode after TCP round trip: %v", id, err)
			}
			if dec.Rows != m.Rows || dec.Cols != m.Cols {
				t.Fatalf("%s: shape lost over TCP", id)
			}
		}
		measured := peer.Stats().Bytes
		bound := int64(CodecWireSizeFactor*float64(modelled)) + CodecWireSizeSlack
		if measured <= 0 || measured > bound {
			t.Fatalf("%s stream measured %d B, want within (0, %d] (modelled %d)", id, measured, bound, modelled)
		}
		// The tolerance must also be tight: the measured stream may not sit
		// below the model by more than the same slack, or the constants are
		// documenting dead air.
		if measured < modelled-CodecWireSizeSlack {
			t.Fatalf("%s stream measured %d B, more than %d B below the %d B model — tolerance is too loose", id, measured, CodecWireSizeSlack, modelled)
		}
	}
}
