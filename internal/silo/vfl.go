package silo

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"silofuse/internal/nn"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Per-iteration rng derivation: resumable training loops (VFL, E2E) draw
// each iteration's randomness from a generator seeded by (run seed, salt,
// iteration), so resuming from an iteration-boundary checkpoint replays
// exactly the stream an uninterrupted run would have drawn — the basis of
// the recovery-equals-baseline guarantee.
const (
	iterSeedStride = 1_000_003
	vflIterSalt    = 424_243
	e2eIterSalt    = 600_011
)

// derivedRng returns the deterministic generator for one training iteration.
func derivedRng(seed, salt int64, it int) *rand.Rand {
	return rand.New(rand.NewSource(seed + salt + int64(it)*iterSeedStride))
}

// VFLClassifier is the paper's future-work path made concrete: a vertical
// federated learning model for downstream tasks on data that *stays*
// vertically partitioned (real or synthetic). Each client embeds its local
// features with a private linear+GELU block; the label-holding coordinator
// concatenates the embeddings and applies a classification head. Training
// is split learning over the Bus: embeddings up, embedding-gradients down —
// so the strong-privacy synthesis mode (partitioned synthetic data) still
// supports collaborative modelling without anyone centralising features.
type VFLClassifier struct {
	Classes  int
	EmbedDim int

	bottoms []*nn.Sequential
	encs    []*tabular.Encoder
	head    *nn.Sequential
	optBot  []*nn.Adam
	optHead *nn.Adam
	rng     *rand.Rand
	seed    int64
}

// VFLConfig configures the federated classifier.
type VFLConfig struct {
	Classes  int // number of target classes
	EmbedDim int // per-client embedding width
	HeadDim  int // coordinator head hidden width
	LR       float64
	Seed     int64
}

// NewVFLClassifier builds the split model for the given per-client feature
// partitions (used only for schema/featuriser fitting).
func NewVFLClassifier(parts []*tabular.Table, cfg VFLConfig) (*VFLClassifier, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("silo: vfl needs >= 2 classes")
	}
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = 8
	}
	if cfg.HeadDim <= 0 {
		cfg.HeadDim = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := &VFLClassifier{Classes: cfg.Classes, EmbedDim: cfg.EmbedDim, rng: rng, seed: cfg.Seed}
	for _, p := range parts {
		enc := tabular.NewEncoder(p)
		bottom := nn.NewSequential(
			nn.NewLinear(rng, enc.Width(), cfg.EmbedDim), &nn.GELU{},
		)
		v.encs = append(v.encs, enc)
		v.bottoms = append(v.bottoms, bottom)
		v.optBot = append(v.optBot, nn.NewAdam(bottom.Params(), cfg.LR))
	}
	total := cfg.EmbedDim * len(parts)
	v.head = nn.NewSequential(
		nn.NewLinear(rng, total, cfg.HeadDim), &nn.GELU{},
		nn.NewLinear(rng, cfg.HeadDim, cfg.Classes),
	)
	v.optHead = nn.NewAdam(v.head.Params(), cfg.LR)
	return v, nil
}

// Train runs iters split-learning iterations over bus. parts are the
// clients' aligned feature partitions; labels live at the coordinator.
// Every iteration sends one embedding per client up and one gradient per
// client down (all byte-accounted).
func (v *VFLClassifier) Train(bus Bus, parts []*tabular.Table, labels []int, iters, batch int) (float64, error) {
	return v.TrainFrom(bus, parts, labels, 0, iters, batch)
}

// TrainFrom runs iterations [start, iters) — the resume form of Train.
// Each iteration draws its batch from a generator derived from (seed,
// iteration), so TrainFrom(…, k, iters, …) after restoring an iteration-k
// checkpoint replays exactly the stream an uninterrupted Train would have
// produced.
func (v *VFLClassifier) TrainFrom(bus Bus, parts []*tabular.Table, labels []int, start, iters, batch int) (float64, error) {
	if len(parts) != len(v.bottoms) {
		return 0, fmt.Errorf("silo: vfl built for %d clients, got %d parts", len(v.bottoms), len(parts))
	}
	rows := parts[0].Rows()
	if len(labels) != rows {
		return 0, fmt.Errorf("silo: %d labels for %d rows", len(labels), rows)
	}
	if batch > rows {
		batch = rows
	}
	var loss float64
	idx := make([]int, batch)
	for it := start; it < iters; it++ {
		rng := derivedRng(v.seed, vflIterSalt, it)
		for i := range idx {
			idx[i] = rng.Intn(rows)
		}
		// Clients: embed and upload.
		for ci, p := range parts {
			x := v.encs[ci].Transform(p.SelectRows(idx))
			emb := v.bottoms[ci].Forward(x, true)
			if err := bus.Send(&Envelope{From: fmt.Sprintf("c%d", ci), To: "coord", Kind: KindActivation, Payload: emb}); err != nil {
				return 0, err
			}
		}
		embs := make([]*tensor.Matrix, len(parts))
		for range parts {
			env, err := bus.Recv("coord")
			if err != nil {
				return 0, err
			}
			embs[clientIndex(env.From)] = env.Payload
		}
		// Coordinator: head forward/backward on the concatenated embedding.
		h := tensor.HStack(embs...)
		out := v.head.Forward(h, true)
		batchLabels := make([]int, batch)
		for i, r := range idx {
			batchLabels[i] = labels[r]
		}
		var grad *tensor.Matrix
		loss, grad = nn.CrossEntropyLoss(out, batchLabels)
		gh := v.head.Backward(grad)
		v.optHead.Step()
		// Gradients back down; clients update their bottoms.
		off := 0
		for ci := range parts {
			part := gh.SliceCols(off, off+v.EmbedDim)
			off += v.EmbedDim
			if err := bus.Send(&Envelope{From: "coord", To: fmt.Sprintf("c%d", ci), Kind: KindGradDown, Payload: part}); err != nil {
				return 0, err
			}
		}
		for ci := range parts {
			env, err := bus.Recv(fmt.Sprintf("c%d", ci))
			if err != nil {
				return 0, err
			}
			v.bottoms[ci].Backward(env.Payload)
			v.optBot[ci].Step()
		}
	}
	return loss, nil
}

// Predict classifies aligned partitioned rows (no label needed).
func (v *VFLClassifier) Predict(parts []*tabular.Table) ([]int, error) {
	if len(parts) != len(v.bottoms) {
		return nil, fmt.Errorf("silo: vfl built for %d clients, got %d parts", len(v.bottoms), len(parts))
	}
	embs := make([]*tensor.Matrix, len(parts))
	for ci, p := range parts {
		embs[ci] = v.bottoms[ci].Forward(v.encs[ci].Transform(p), false)
	}
	out := v.head.Forward(tensor.HStack(embs...), false)
	pred := make([]int, out.Rows)
	for i := range pred {
		row := out.Row(i)
		best := 0
		for j, val := range row {
			if val > row[best] {
				best = j
			}
		}
		pred[i] = best
	}
	return pred, nil
}

// vflCheckpoint is the gob wire format of a mid-training VFL checkpoint.
// Nested []byte sections keep each gob stream self-contained (a decoder
// reading from a bytes.Reader never over-reads into the next section).
type vflCheckpoint struct {
	Iter   int
	Params []byte   // all bottoms' params followed by the head's
	Opts   [][]byte // Adam state per bottom optimiser, then the head's
}

func (v *VFLClassifier) allParams() []*nn.Param {
	var ps []*nn.Param
	for _, b := range v.bottoms {
		ps = append(ps, b.Params()...)
	}
	return append(ps, v.head.Params()...)
}

func (v *VFLClassifier) opts() []*nn.Adam {
	return append(append([]*nn.Adam{}, v.optBot...), v.optHead)
}

// SaveCheckpoint writes the full mid-training state — weights, Adam momenta
// and the iteration reached — so TrainFrom can resume bit-identically.
func (v *VFLClassifier) SaveCheckpoint(w io.Writer, iter int) error {
	ck := vflCheckpoint{Iter: iter}
	var pbuf bytes.Buffer
	if err := nn.SaveParams(&pbuf, v.allParams()); err != nil {
		return err
	}
	ck.Params = pbuf.Bytes()
	for _, o := range v.opts() {
		var b bytes.Buffer
		if err := o.Save(&b); err != nil {
			return err
		}
		ck.Opts = append(ck.Opts, b.Bytes())
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint restores state written by SaveCheckpoint and returns the
// iteration to resume from.
func (v *VFLClassifier) LoadCheckpoint(r io.Reader) (int, error) {
	var ck vflCheckpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("silo: decode vfl checkpoint: %w", err)
	}
	if err := nn.LoadParams(bytes.NewReader(ck.Params), v.allParams()); err != nil {
		return 0, err
	}
	opts := v.opts()
	if len(ck.Opts) != len(opts) {
		return 0, fmt.Errorf("silo: vfl checkpoint has %d optimisers, model has %d", len(ck.Opts), len(opts))
	}
	for i, o := range opts {
		if err := o.Load(bytes.NewReader(ck.Opts[i])); err != nil {
			return 0, err
		}
	}
	return ck.Iter, nil
}

func vflParties(clients int) []string {
	ps := make([]string, 0, clients+1)
	for i := 0; i < clients; i++ {
		ps = append(ps, fmt.Sprintf("c%d", i))
	}
	return append(ps, "coord")
}

// TrainResilient runs split training with an in-memory checkpoint every
// `every` iterations. When a chunk dies with ErrPeerDead it invokes the
// recovery hook, resets the bus sequencing, restores the last checkpoint
// and replays the chunk; because each iteration's randomness is derived
// from (seed, iteration), the recovered run is bit-identical to a
// fault-free one. Non-peer-death errors (and retry exhaustion) abort.
func (v *VFLClassifier) TrainResilient(bus Bus, parts []*tabular.Table, labels []int, iters, batch, every int, rc RecoveryConfig) (float64, error) {
	if every <= 0 {
		every = 50
	}
	if rc.MaxPhaseRetries <= 0 {
		rc.MaxPhaseRetries = 2
	}
	var ckBuf bytes.Buffer
	if err := v.SaveCheckpoint(&ckBuf, 0); err != nil {
		return 0, err
	}
	var loss float64
	start, retries := 0, 0
	for start < iters {
		end := start + every
		if end > iters {
			end = iters
		}
		l, err := v.TrainFrom(bus, parts, labels, start, end, batch)
		if err != nil {
			if !errors.Is(err, ErrPeerDead) || retries >= rc.MaxPhaseRetries {
				return 0, err
			}
			retries++
			if rc.OnPeerDead != nil {
				if herr := rc.OnPeerDead(DeadPeerName(err)); herr != nil {
					return 0, fmt.Errorf("silo: vfl recovery aborted: %w", herr)
				}
			}
			if rs, ok := bus.(Resetter); ok {
				rs.Reset(vflParties(len(parts)))
			}
			if _, lerr := v.LoadCheckpoint(bytes.NewReader(ckBuf.Bytes())); lerr != nil {
				return 0, lerr
			}
			continue // replay the interrupted chunk
		}
		loss = l
		start = end
		ckBuf.Reset()
		if err := v.SaveCheckpoint(&ckBuf, start); err != nil {
			return 0, err
		}
	}
	return loss, nil
}
