package silo

import (
	"fmt"
	"math/rand"

	"silofuse/internal/nn"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// VFLClassifier is the paper's future-work path made concrete: a vertical
// federated learning model for downstream tasks on data that *stays*
// vertically partitioned (real or synthetic). Each client embeds its local
// features with a private linear+GELU block; the label-holding coordinator
// concatenates the embeddings and applies a classification head. Training
// is split learning over the Bus: embeddings up, embedding-gradients down —
// so the strong-privacy synthesis mode (partitioned synthetic data) still
// supports collaborative modelling without anyone centralising features.
type VFLClassifier struct {
	Classes  int
	EmbedDim int

	bottoms []*nn.Sequential
	encs    []*tabular.Encoder
	head    *nn.Sequential
	optBot  []*nn.Adam
	optHead *nn.Adam
	rng     *rand.Rand
}

// VFLConfig configures the federated classifier.
type VFLConfig struct {
	Classes  int // number of target classes
	EmbedDim int // per-client embedding width
	HeadDim  int // coordinator head hidden width
	LR       float64
	Seed     int64
}

// NewVFLClassifier builds the split model for the given per-client feature
// partitions (used only for schema/featuriser fitting).
func NewVFLClassifier(parts []*tabular.Table, cfg VFLConfig) (*VFLClassifier, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("silo: vfl needs >= 2 classes")
	}
	if cfg.EmbedDim <= 0 {
		cfg.EmbedDim = 8
	}
	if cfg.HeadDim <= 0 {
		cfg.HeadDim = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := &VFLClassifier{Classes: cfg.Classes, EmbedDim: cfg.EmbedDim, rng: rng}
	for _, p := range parts {
		enc := tabular.NewEncoder(p)
		bottom := nn.NewSequential(
			nn.NewLinear(rng, enc.Width(), cfg.EmbedDim), &nn.GELU{},
		)
		v.encs = append(v.encs, enc)
		v.bottoms = append(v.bottoms, bottom)
		v.optBot = append(v.optBot, nn.NewAdam(bottom.Params(), cfg.LR))
	}
	total := cfg.EmbedDim * len(parts)
	v.head = nn.NewSequential(
		nn.NewLinear(rng, total, cfg.HeadDim), &nn.GELU{},
		nn.NewLinear(rng, cfg.HeadDim, cfg.Classes),
	)
	v.optHead = nn.NewAdam(v.head.Params(), cfg.LR)
	return v, nil
}

// Train runs iters split-learning iterations over bus. parts are the
// clients' aligned feature partitions; labels live at the coordinator.
// Every iteration sends one embedding per client up and one gradient per
// client down (all byte-accounted).
func (v *VFLClassifier) Train(bus Bus, parts []*tabular.Table, labels []int, iters, batch int) (float64, error) {
	if len(parts) != len(v.bottoms) {
		return 0, fmt.Errorf("silo: vfl built for %d clients, got %d parts", len(v.bottoms), len(parts))
	}
	rows := parts[0].Rows()
	if len(labels) != rows {
		return 0, fmt.Errorf("silo: %d labels for %d rows", len(labels), rows)
	}
	if batch > rows {
		batch = rows
	}
	var loss float64
	idx := make([]int, batch)
	for it := 0; it < iters; it++ {
		for i := range idx {
			idx[i] = v.rng.Intn(rows)
		}
		// Clients: embed and upload.
		for ci, p := range parts {
			x := v.encs[ci].Transform(p.SelectRows(idx))
			emb := v.bottoms[ci].Forward(x, true)
			if err := bus.Send(&Envelope{From: fmt.Sprintf("c%d", ci), To: "coord", Kind: KindActivation, Payload: emb}); err != nil {
				return 0, err
			}
		}
		embs := make([]*tensor.Matrix, len(parts))
		for range parts {
			env, err := bus.Recv("coord")
			if err != nil {
				return 0, err
			}
			embs[clientIndex(env.From)] = env.Payload
		}
		// Coordinator: head forward/backward on the concatenated embedding.
		h := tensor.HStack(embs...)
		out := v.head.Forward(h, true)
		batchLabels := make([]int, batch)
		for i, r := range idx {
			batchLabels[i] = labels[r]
		}
		var grad *tensor.Matrix
		loss, grad = nn.CrossEntropyLoss(out, batchLabels)
		gh := v.head.Backward(grad)
		v.optHead.Step()
		// Gradients back down; clients update their bottoms.
		off := 0
		for ci := range parts {
			part := gh.SliceCols(off, off+v.EmbedDim)
			off += v.EmbedDim
			if err := bus.Send(&Envelope{From: "coord", To: fmt.Sprintf("c%d", ci), Kind: KindGradDown, Payload: part}); err != nil {
				return 0, err
			}
		}
		for ci := range parts {
			env, err := bus.Recv(fmt.Sprintf("c%d", ci))
			if err != nil {
				return 0, err
			}
			v.bottoms[ci].Backward(env.Payload)
			v.optBot[ci].Step()
		}
	}
	return loss, nil
}

// Predict classifies aligned partitioned rows (no label needed).
func (v *VFLClassifier) Predict(parts []*tabular.Table) ([]int, error) {
	if len(parts) != len(v.bottoms) {
		return nil, fmt.Errorf("silo: vfl built for %d clients, got %d parts", len(v.bottoms), len(parts))
	}
	embs := make([]*tensor.Matrix, len(parts))
	for ci, p := range parts {
		embs[ci] = v.bottoms[ci].Forward(v.encs[ci].Transform(p), false)
	}
	out := v.head.Forward(tensor.HStack(embs...), false)
	pred := make([]int, out.Rows)
	for i := range pred {
		row := out.Row(i)
		best := 0
		for j, val := range row {
			if val > row[best] {
				best = j
			}
		}
		pred[i] = best
	}
	return pred, nil
}
