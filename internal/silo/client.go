package silo

import (
	"fmt"
	"math/rand"

	"silofuse/internal/autoencoder"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// Client is one silo: it owns a vertical feature partition X_i and a
// private autoencoder (E_i, D_i). The raw features and the decoder never
// leave the client.
type Client struct {
	ID   string
	Data *tabular.Table
	AE   *autoencoder.Autoencoder
	// Rec, when non-nil, is this client's own trace lane: local training and
	// decoding record spans on it. Give each client a distinct recorder
	// (obs.NewPartyRecorder) — clients run concurrently, so sharing one
	// tracer between them would interleave their span stacks.
	Rec *obs.Recorder
	rng *rand.Rand
}

// NewClient creates a client for its local partition. The autoencoder's
// latent width defaults to the local feature count (the paper sets the
// total latent size to the raw feature count, split per client).
func NewClient(id string, data *tabular.Table, cfg autoencoder.Config, seed int64) *Client {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Latent <= 0 {
		cfg.Latent = data.Schema.NumColumns()
	}
	return &Client{ID: id, Data: data, AE: autoencoder.New(rng, data, cfg), rng: rng}
}

// TrainLocal runs the client's autoencoder training (Algorithm 1 lines
// 1-7), entirely on-premise: no messages are exchanged.
func (c *Client) TrainLocal(iters, batch int) float64 {
	span := c.Rec.StartSpan("ae-train-local")
	span.SetAttr("client", c.ID)
	span.SetAttr("iters", iters)
	loss := c.AE.Train(c.Data, iters, batch)
	span.SetAttr("loss", loss)
	span.End()
	return loss
}

// LatentDim returns the client's latent contribution s_i.
func (c *Client) LatentDim() int { return c.AE.LatentDim() }

// EncodeLocal computes Z_i = E_i(X_i) for the full local partition.
func (c *Client) EncodeLocal() *tensor.Matrix { return c.AE.Encode(c.Data) }

// UploadLatents encodes the local partition and sends the latents to the
// coordinator over bus — the single communication round of stacked
// training (Algorithm 1 lines 8-11). noiseStd > 0 adds Gaussian
// perturbation to every latent before upload (the differential-privacy
// style knob the paper discusses as a privacy/quality trade-off).
func (c *Client) UploadLatents(bus Bus, coordinator string, noiseStd float64) error {
	z := c.EncodeLocal()
	if noiseStd > 0 {
		for i := range z.Data {
			z.Data[i] += noiseStd * c.rng.NormFloat64()
		}
	}
	return bus.Send(&Envelope{From: c.ID, To: coordinator, Kind: KindLatents, Payload: z})
}

// DecodeLatents converts a partition of synthetic latents into the data
// space using the private decoder (Algorithm 2 line 7).
func (c *Client) DecodeLatents(z *tensor.Matrix, sample bool) (*tabular.Table, error) {
	span := c.Rec.StartSpan("decode-local")
	span.SetAttr("client", c.ID)
	span.SetAttr("rows", z.Rows)
	defer span.End()
	t, err := c.AE.Decode(z, sample, c.rng)
	if err != nil {
		return nil, fmt.Errorf("silo: client %s decode: %w", c.ID, err)
	}
	return t, nil
}
