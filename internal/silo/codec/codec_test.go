package codec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"silofuse/internal/tensor"
)

// randomMatrix fills an r×c matrix with mixed-scale values: standard
// normals, a heavy-tailed scale factor, and exact zeros.
func randomMatrix(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0
		case 1:
			m.Data[i] = rng.NormFloat64() * 1e6
		case 2:
			m.Data[i] = rng.NormFloat64() * 1e-6
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestF64RoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(12))
		blob, st, err := Encode(F64, m)
		if err != nil {
			t.Fatal(err)
		}
		if st.Max != 0 || st.Mean != 0 { //silofuse:bitwise-ok lossless codec must report exactly zero error
			t.Fatalf("f64 reported error %+v, want zero", st)
		}
		if len(blob) != 8*len(m.Data) {
			t.Fatalf("f64 blob %d bytes, want %d", len(blob), 8*len(m.Data))
		}
		got, err := Decode(F64, blob, m.Rows, m.Cols)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
				t.Fatalf("f64 round-trip not bit-exact at %d: %v != %v", i, got.Data[i], m.Data[i])
			}
		}
	}
}

func TestF32ErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(12))
		blob, st, err := Encode(F32, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(F32, blob, m.Rows, m.Cols)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr, sumErr float64
		for i, v := range m.Data {
			d := math.Abs(got.Data[i] - v)
			// Round-to-nearest float32: at most half a ULP, i.e. 2^-24
			// relative for normal values.
			if d > math.Abs(v)*math.Exp2(-24)*1.000001 {
				t.Fatalf("f32 error %g at value %g exceeds half-ULP bound", d, v)
			}
			if d > maxErr {
				maxErr = d
			}
			sumErr += d
		}
		if st.Max < maxErr || st.Mean < sumErr/float64(len(m.Data))*0.999999 {
			t.Fatalf("reported ErrStats %+v below observed max %g mean %g", st, maxErr, sumErr/float64(len(m.Data)))
		}
	}
}

func TestF32ExactFor24BitMantissa(t *testing.T) {
	// Values representable in a 24-bit mantissa survive the round-trip
	// bit-exactly: small integers, dyadic fractions, powers of two.
	m := tensor.FromSlice(2, 4, []float64{0, 1, -3, 1048576, 0.5, -0.25, 1.5, 123456})
	blob, st, err := Encode(F32, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max != 0 { //silofuse:bitwise-ok 24-bit-representable inputs must encode with exactly zero error
		t.Fatalf("expected zero error for 24-bit-mantissa values, got %+v", st)
	}
	got, err := Decode(F32, blob, m.Rows, m.Cols)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("value %v not exact after f32 round-trip: got %v", m.Data[i], got.Data[i])
		}
	}
}

func TestQ8ErrorBoundPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 2+rng.Intn(60), 1+rng.Intn(8)
		m := randomMatrix(rng, rows, cols)
		blob, st, err := Encode(Q8, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(Q8, blob, rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for c := 0; c < cols; c++ {
			scale := math.Float64frombits(binary.LittleEndian.Uint64(blob[16*c:]))
			bound := scale/2 + 1e-12
			for r := 0; r < rows; r++ {
				d := math.Abs(got.Data[r*cols+c] - m.Data[r*cols+c])
				if d > bound {
					t.Fatalf("q8 col %d error %g exceeds scale/2=%g", c, d, scale/2)
				}
				if d > maxErr {
					maxErr = d
				}
			}
		}
		if st.Max < maxErr {
			t.Fatalf("reported max error %g below observed %g", st.Max, maxErr)
		}
	}
}

func TestQ8ConstantColumnExact(t *testing.T) {
	m := tensor.New(7, 3)
	for r := 0; r < 7; r++ {
		m.Data[r*3+0] = 42.125
		m.Data[r*3+1] = -1e9
		m.Data[r*3+2] = 0
	}
	blob, st, err := Encode(Q8, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Max != 0 { //silofuse:bitwise-ok constant columns quantize with exactly zero error
		t.Fatalf("constant columns should encode exactly, got %+v", st)
	}
	got, err := Decode(Q8, blob, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("constant column value %v decoded as %v", m.Data[i], got.Data[i])
		}
	}
}

func TestEdgeShapes(t *testing.T) {
	shapes := []struct{ r, c int }{{0, 0}, {0, 5}, {5, 0}, {1, 1}, {1, 6}}
	rng := rand.New(rand.NewSource(4))
	for _, id := range []ID{F64, F32, Q8} {
		for _, sh := range shapes {
			m := randomMatrix(rng, sh.r, sh.c)
			blob, _, err := Encode(id, m)
			if err != nil {
				t.Fatalf("%s %dx%d: %v", id, sh.r, sh.c, err)
			}
			if len(blob) != id.EncodedSize(sh.r, sh.c) {
				t.Fatalf("%s %dx%d: blob %d bytes, EncodedSize %d", id, sh.r, sh.c, len(blob), id.EncodedSize(sh.r, sh.c))
			}
			got, err := Decode(id, blob, sh.r, sh.c)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows != sh.r || got.Cols != sh.c {
				t.Fatalf("%s: decoded shape %dx%d, want %dx%d", id, got.Rows, got.Cols, sh.r, sh.c)
			}
		}
	}
	// A nil matrix encodes like an empty one.
	blob, st, err := Encode(F64, nil)
	if err != nil || len(blob) != 0 || st.Max != 0 { //silofuse:bitwise-ok nil input has exactly zero error by definition
		t.Fatalf("nil matrix: blob=%d err=%v st=%+v", len(blob), err, st)
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	for _, id := range []ID{F64, F32, Q8} {
		if _, err := Decode(id, make([]byte, 3), 2, 2); err == nil {
			t.Fatalf("%s: expected length mismatch error", id)
		}
	}
	if _, err := Decode(F64, nil, -1, 2); err == nil {
		t.Fatal("expected negative-dimension error")
	}
	if _, err := Decode(None, nil, 0, 0); err == nil {
		t.Fatal("expected cannot-decode error for codec none")
	}
}

func TestByName(t *testing.T) {
	cases := map[string]ID{"": F64, "f64": F64, "f32": F32, "q8": Q8, "none": None}
	for name, want := range cases {
		id, err := ByName(name)
		if err != nil || id != want {
			t.Fatalf("ByName(%q) = %v, %v; want %v", name, id, err, want)
		}
	}
	if _, err := ByName("f16"); err == nil {
		t.Fatal("expected error for unknown codec name")
	}
}
