// Package codec implements the precision-tiered wire encodings for dense
// float64 matrices crossing the silo bus. Values are framed as raw
// little-endian binary — no gob per-value varint overhead — at one of three
// precision tiers:
//
//   - f64: 8 bytes/value, bit-lossless (Float64bits round-trip)
//   - f32: 4 bytes/value, IEEE round-to-nearest float32
//   - q8:  1 byte/value + a 16-byte scale/offset table per column
//     (affine int8 quantization; max error ≤ scale/2 per column)
//
// Encode reports the exact reconstruction error it introduces so transports
// can account the bytes-vs-error trade-off per message kind. Decode is a
// pure function of (id, blob, rows, cols): the tensor dimensions ride the
// envelope, never the blob, so the f64 blob is exactly 8·n bytes and the
// framing-level byte accounting of a default run matches the historical
// float64 payload model bit-for-bit.
//
// This package is the only place (together with internal/tensor's conversion
// kernels) where float64↔float32 conversions are legal; the silofuse-vet
// precisioncast rule enforces that boundary.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"silofuse/internal/tensor"
)

// ID identifies a wire codec. The zero value means "not codec-framed" (the
// payload rides the bus as a native tensor), so gob pays no wire bytes for
// the field on unframed envelopes.
type ID uint8

// Wire codec identifiers. The numeric values ride envelopes and checksum
// inputs; never renumber them.
const (
	None ID = 0 // native tensor payload, no codec framing
	F64  ID = 1 // raw little-endian float64, lossless
	F32  ID = 2 // raw little-endian float32, round-to-nearest
	Q8   ID = 3 // per-column affine int8 quantization
)

// String returns the codec's canonical name.
func (id ID) String() string {
	switch id {
	case None:
		return "none"
	case F64:
		return "f64"
	case F32:
		return "f32"
	case Q8:
		return "q8"
	}
	return fmt.Sprintf("codec(%d)", uint8(id))
}

// ByName resolves a codec name. The empty string means f64, the lossless
// default tier; "none" disables framing entirely (native tensor payloads).
func ByName(name string) (ID, error) {
	switch name {
	case "", "f64":
		return F64, nil
	case "f32":
		return F32, nil
	case "q8":
		return Q8, nil
	case "none":
		return None, nil
	}
	return None, fmt.Errorf("codec: unknown wire codec %q (want none, f64, f32 or q8)", name)
}

// q8 layout constants: each column stores a float64 scale and offset, then
// values follow row-major as one signed byte each in [-127, 127].
const (
	q8TableBytes = 16  // scale + offset, 8 bytes each
	q8Levels     = 254 // span of the symmetric int8 range [-127, 127]
)

// EncodedSize returns the exact blob size in bytes for an rows×cols matrix
// under this codec. It is the codec's contribution to Envelope.WireSize, so
// the byte model stays closed-form per codec.
func (id ID) EncodedSize(rows, cols int) int {
	n := rows * cols
	switch id {
	case F64:
		return 8 * n
	case F32:
		return 4 * n
	case Q8:
		return q8TableBytes*cols + n
	}
	return 0
}

// ErrStats is the reconstruction error an encode introduced: the maximum and
// mean absolute difference between the original values and what Decode will
// return. Both are zero for f64.
type ErrStats struct {
	Max  float64
	Mean float64
}

// Encode serializes m under the codec and reports the reconstruction error.
// A nil or empty matrix encodes to an empty (q8: table-only) blob.
func Encode(id ID, m *tensor.Matrix) ([]byte, ErrStats, error) {
	rows, cols := 0, 0
	var data []float64
	if m != nil {
		rows, cols, data = m.Rows, m.Cols, m.Data
	}
	blob := make([]byte, id.EncodedSize(rows, cols))
	switch id {
	case F64:
		for i, v := range data {
			binary.LittleEndian.PutUint64(blob[8*i:], math.Float64bits(v))
		}
		return blob, ErrStats{}, nil
	case F32:
		var st ErrStats
		var sum float64
		for i, v := range data {
			f := float32(v)
			binary.LittleEndian.PutUint32(blob[4*i:], math.Float32bits(f))
			d := math.Abs(v - float64(f))
			if d > st.Max {
				st.Max = d
			}
			sum += d
		}
		if len(data) > 0 {
			st.Mean = sum / float64(len(data))
		}
		return blob, st, nil
	case Q8:
		return encodeQ8(blob, m, rows, cols)
	}
	return nil, ErrStats{}, fmt.Errorf("codec: cannot encode with %s", id)
}

// encodeQ8 fills blob (pre-sized by EncodedSize) with the per-column affine
// quantization: offset = (min+max)/2, scale = (max-min)/254, value byte =
// round((v-offset)/scale) clamped to [-127, 127]. Constant columns store
// scale 0 and decode exactly to the offset.
func encodeQ8(blob []byte, m *tensor.Matrix, rows, cols int) ([]byte, ErrStats, error) {
	var st ErrStats
	var sum float64
	vals := blob[q8TableBytes*cols:]
	for c := 0; c < cols; c++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for r := 0; r < rows; r++ {
			v := m.Data[r*cols+c]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale, offset := 0.0, 0.0
		if rows > 0 {
			offset = (lo + hi) / 2
			scale = (hi - lo) / q8Levels
		}
		binary.LittleEndian.PutUint64(blob[q8TableBytes*c:], math.Float64bits(scale))
		binary.LittleEndian.PutUint64(blob[q8TableBytes*c+8:], math.Float64bits(offset))
		for r := 0; r < rows; r++ {
			v := m.Data[r*cols+c]
			q := 0
			if scale != 0 { //silofuse:bitwise-ok scale is set to exactly 0 for constant columns, never computed
				q = int(math.RoundToEven((v - offset) / scale))
				if q < -127 {
					q = -127
				} else if q > 127 {
					q = 127
				}
			}
			vals[r*cols+c] = byte(int8(q))
			d := math.Abs(v - (offset + scale*float64(q)))
			if d > st.Max {
				st.Max = d
			}
			sum += d
		}
	}
	if rows*cols > 0 {
		st.Mean = sum / float64(rows*cols)
	}
	return blob, st, nil
}

// Decode reconstructs an rows×cols matrix from a blob produced by Encode
// with the same codec and dimensions. The blob length must match
// EncodedSize exactly.
func Decode(id ID, blob []byte, rows, cols int) (*tensor.Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("codec: negative dimensions %dx%d", rows, cols)
	}
	if want := id.EncodedSize(rows, cols); len(blob) != want {
		return nil, fmt.Errorf("codec: %s blob for %dx%d is %d bytes, want %d", id, rows, cols, len(blob), want)
	}
	m := tensor.New(rows, cols)
	switch id {
	case F64:
		for i := range m.Data {
			m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*i:]))
		}
		return m, nil
	case F32:
		for i := range m.Data {
			m.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(blob[4*i:])))
		}
		return m, nil
	case Q8:
		vals := blob[q8TableBytes*cols:]
		for c := 0; c < cols; c++ {
			scale := math.Float64frombits(binary.LittleEndian.Uint64(blob[q8TableBytes*c:]))
			offset := math.Float64frombits(binary.LittleEndian.Uint64(blob[q8TableBytes*c+8:]))
			for r := 0; r < rows; r++ {
				m.Data[r*cols+c] = offset + scale*float64(int8(vals[r*cols+c]))
			}
		}
		return m, nil
	}
	return nil, fmt.Errorf("codec: cannot decode with %s", id)
}
