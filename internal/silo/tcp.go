package silo

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"silofuse/internal/obs"
	"silofuse/internal/silo/codec"
	"silofuse/internal/tensor"
)

// wireEnvelope is the gob wire format; tensor payloads are flattened. Flow
// carries the distributed trace context across the socket (gob omits the
// field entirely when zero, so untraced runs pay no wire bytes for it).
// Rows/Cols serve double duty: the dimensions of a native Data payload, or —
// when Codec is non-zero — of the codec-framed tensor carried in Blob.
type wireEnvelope struct {
	From, To string
	Kind     Kind
	Rows     int
	Cols     int
	Data     []float64
	Blob     []byte   // opaque payload (telemetry, codec frames); omitted when empty
	Codec    codec.ID // wire codec id for Blob tensors; omitted when zero
	Flow     uint64
	// Resilient-delivery fields; gob omits them when zero, so unwrapped
	// transports pay no wire bytes (see Envelope).
	Seq    uint64
	Sum    uint64
	Rexmit bool
}

func toWire(e *Envelope) wireEnvelope {
	w := wireEnvelope{From: e.From, To: e.To, Kind: e.Kind, Blob: e.Blob, Codec: e.Codec, Flow: e.Flow, Seq: e.Seq, Sum: e.Sum, Rexmit: e.Rexmit}
	if e.Payload != nil {
		w.Rows, w.Cols, w.Data = e.Payload.Rows, e.Payload.Cols, e.Payload.Data
	} else if e.Codec != 0 {
		w.Rows, w.Cols = e.Rows, e.Cols
	}
	return w
}

func fromWire(w wireEnvelope) *Envelope {
	e := &Envelope{From: w.From, To: w.To, Kind: w.Kind, Blob: w.Blob, Codec: w.Codec, Flow: w.Flow, Seq: w.Seq, Sum: w.Sum, Rexmit: w.Rexmit}
	if w.Data != nil {
		e.Payload = tensor.FromSlice(w.Rows, w.Cols, w.Data)
	} else if w.Codec != 0 {
		e.Rows, e.Cols = w.Rows, w.Cols
	}
	return e
}

// statKind mirrors Envelope.statKind for the wire format.
func (w *wireEnvelope) statKind() Kind {
	if w.Rexmit {
		return KindRetransmit
	}
	return w.Kind
}

// countingWriter counts bytes flowing to the underlying connection.
type countingWriter struct {
	c     net.Conn
	n     *int64
	mu    *sync.Mutex
	total *Stats
	dir   string
}

func (w countingWriter) Write(p []byte) (int, error) {
	n, err := w.c.Write(p)
	w.mu.Lock()
	*w.n += int64(n)
	w.total.Bytes += int64(n)
	w.total.BytesByDir[w.dir] += int64(n)
	w.mu.Unlock()
	return n, err
}

// hubPeer is one connected client as seen from the hub. sendMu serialises
// encodes on the shared gob stream so the byte delta observed around an
// Encode can be attributed to that message's kind.
type hubPeer struct {
	conn   net.Conn
	enc    *gob.Encoder
	sendMu sync.Mutex
	sent   int64 // bytes written to this peer; guarded by the hub mutex
}

// TCPHub is the coordinator-side transport: it listens for client
// connections and routes envelopes between parties. Envelopes addressed to
// the hub's own name land in its local inbox; everything else is forwarded
// to the destination peer. It implements Bus with real measured wire bytes.
type TCPHub struct {
	Name string

	ln net.Listener
	mu sync.Mutex
	//silofuse:guardedby mu
	peers map[string]*hubPeer
	inbox chan *Envelope
	stats Stats //silofuse:guardedby mu
	rec   *obs.Recorder
	wg    sync.WaitGroup
	//silofuse:guardedby mu
	closing bool
	//silofuse:guardedby mu
	beats map[string]int64 // heartbeats received per peer
	//silofuse:guardedby mu
	reconnects map[string]int64 // re-registrations per peer
	//silofuse:guardedby mu
	ioTimeout time.Duration // per-message write deadline; 0 = none
}

// PeerHealth is the hub-side liveness view of one peer, surfaced through
// the /healthz endpoint: whether a connection is registered, how many
// heartbeats it has delivered, and how many times it has re-registered
// after a disconnect.
type PeerHealth struct {
	Connected  bool  `json:"connected"`
	Heartbeats int64 `json:"heartbeats"`
	Reconnects int64 `json:"reconnects"`
	SentBytes  int64 `json:"sent_bytes"`
}

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:0").
func NewTCPHub(name, addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("silo: hub listen: %w", err)
	}
	h := &TCPHub{
		Name:       name,
		ln:         ln,
		peers:      make(map[string]*hubPeer),
		inbox:      make(chan *Envelope, 1024),
		stats:      Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)},
		beats:      make(map[string]int64),
		reconnects: make(map[string]int64),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// SetRecorder implements RecorderSetter.
func (h *TCPHub) SetRecorder(rec *obs.Recorder) { h.rec = rec }

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Peers lists the names of currently registered peers in sorted order —
// the hub-side liveness view a health endpoint reports.
func (h *TCPHub) Peers() []string {
	h.mu.Lock()
	names := make([]string, 0, len(h.peers))
	for name := range h.peers {
		names = append(names, name)
	}
	h.mu.Unlock()
	sort.Strings(names)
	return names
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *TCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	dec := gob.NewDecoder(conn)
	var hello wireEnvelope
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	name := hello.From
	pc := &hubPeer{conn: conn}
	pc.enc = gob.NewEncoder(countingWriter{c: conn, n: &pc.sent, mu: &h.mu, total: &h.stats, dir: h.Name + "->" + name})
	h.mu.Lock()
	// A re-dial is visible two ways: a fresh connection superseding a live
	// registration, or a hello that announces itself as a reconnect (Seq > 0)
	// after the dead conn already deregistered. Count both.
	redial := hello.Seq > 0
	if old := h.peers[name]; old != nil && old.conn != conn {
		redial = true
		old.conn.Close() // superseded; its serveConn exits without deregistering us
	}
	if redial {
		h.reconnects[name]++
	}
	h.peers[name] = pc
	h.mu.Unlock()
	if h.rec != nil && hello.Seq > 0 {
		h.rec.Reconnect(name) // peer announced a re-dial in its hello
	}
	defer func() {
		// Deregister and announce the death unless a reconnect has already
		// replaced this conn or the hub itself is shutting down.
		h.mu.Lock()
		stale := h.peers[name] != pc
		closing := h.closing
		if !stale {
			delete(h.peers, name)
		}
		h.mu.Unlock()
		if stale || closing {
			return
		}
		if h.rec != nil {
			h.rec.PeerDown(name)
		}
		select { // non-blocking: a full inbox must not wedge the accept path
		case h.inbox <- &Envelope{From: name, To: h.Name, Kind: KindPeerDown}:
		default:
		}
	}()
	for {
		var w wireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		if w.Kind == KindHeartbeat {
			h.mu.Lock()
			h.beats[name]++
			h.mu.Unlock()
			continue
		}
		e := fromWire(w)
		// Received bytes are counted by the sender side (the peer's
		// countingWriter); the hub only counts what it forwards or sends.
		if e.To == h.Name {
			h.inbox <- e
			continue
		}
		if dst := h.waitPeer(e.To); dst != nil {
			_ = h.sendWire(dst, w)
		}
	}
}

// waitPeer returns the destination's connection, waiting briefly for its
// hello to be processed: peers dial concurrently, so a forwarded message can
// otherwise race the recipient's registration and be dropped.
func (h *TCPHub) waitPeer(name string) *hubPeer {
	for i := 0; i < 1000; i++ {
		h.mu.Lock()
		pc := h.peers[name]
		h.mu.Unlock()
		if pc != nil {
			return pc
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// sendWire encodes w to pc, attributing the measured byte delta to the
// message kind. The per-peer sendMu keeps delta attribution exact when
// several goroutines send to the same peer.
func (h *TCPHub) sendWire(pc *hubPeer, w wireEnvelope) error {
	t0 := h.rec.Now()
	kind := w.statKind()
	pc.sendMu.Lock()
	h.mu.Lock()
	before := pc.sent
	timeout := h.ioTimeout
	h.mu.Unlock()
	if timeout > 0 {
		// Per-message write deadline so a dead socket fails the send instead
		// of blocking forever. The deadline is IO plumbing, never observed by
		// the deterministic protocol logic.
		//silofuse:walltime-ok socket write deadline, not on the deterministic data path
		pc.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := pc.enc.Encode(w)
	h.mu.Lock()
	delta := pc.sent - before
	h.stats.Messages++
	h.stats.ByKind[kind] += delta
	h.mu.Unlock()
	pc.sendMu.Unlock()
	if h.rec != nil {
		h.rec.Message(string(kind), delta, h.rec.Since(t0))
	}
	return err
}

// SetIOTimeout installs a per-message write deadline on hub sends; the
// resilient layer forwards its SendDeadline here. Zero disables deadlines.
func (h *TCPHub) SetIOTimeout(d time.Duration) {
	h.mu.Lock()
	h.ioTimeout = d
	h.mu.Unlock()
}

// Send implements Bus for the hub side.
func (h *TCPHub) Send(e *Envelope) error {
	if h.rec != nil {
		if e.Flow == 0 {
			e.Flow = h.rec.NextFlow()
		}
		h.rec.Trace.FlowSend(string(e.Kind), e.Flow)
	}
	if e.To == h.Name {
		h.mu.Lock()
		h.stats.Messages++
		h.mu.Unlock()
		if h.rec != nil {
			h.rec.Message(string(e.Kind), 0, 0) // local delivery, no wire bytes
		}
		h.inbox <- e
		return nil
	}
	dst := h.waitPeer(e.To)
	if dst == nil {
		return fmt.Errorf("silo: hub has no peer %q", e.To)
	}
	return h.sendWire(dst, toWire(e))
}

// Recv implements Bus for the hub side. A peer-down notice (injected when
// a peer's connection dies) surfaces as a PeerDeadError — unless the peer
// has already re-registered, in which case the stale notice is dropped.
func (h *TCPHub) Recv(to string) (*Envelope, error) {
	if to != h.Name {
		return nil, fmt.Errorf("silo: hub Recv is only for %q", h.Name)
	}
	for {
		e, ok := <-h.inbox
		if !ok {
			return nil, fmt.Errorf("silo: hub inbox closed")
		}
		if e.Kind == KindPeerDown {
			h.mu.Lock()
			revived := h.peers[e.From] != nil
			h.mu.Unlock()
			if revived {
				continue
			}
			return nil, &PeerDeadError{Peer: e.From}
		}
		if h.rec != nil {
			h.rec.Trace.FlowRecv(string(e.Kind), e.Flow)
		}
		return e, nil
	}
}

// TryRecv implements TryReceiver for the hub's own inbox; other recipients
// live behind peer sockets and cannot be polled, so the drain between
// recovery attempts only touches hub-bound traffic (a restarted peer gets
// a fresh stream anyway).
func (h *TCPHub) TryRecv(to string) (*Envelope, bool) {
	if to != h.Name {
		return nil, false
	}
	select {
	case e, ok := <-h.inbox:
		if !ok {
			return nil, false
		}
		return e, true
	default:
		return nil, false
	}
}

// PeerHealth reports the hub-side liveness view of every peer it has ever
// seen — the payload behind /healthz.
func (h *TCPHub) PeerHealth() map[string]PeerHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]PeerHealth)
	for name, pc := range h.peers {
		out[name] = PeerHealth{Connected: true, SentBytes: pc.sent}
	}
	for name, n := range h.beats {
		ph := out[name]
		ph.Heartbeats = n
		out[name] = ph
	}
	for name, n := range h.reconnects {
		ph := out[name]
		ph.Reconnects = n
		out[name] = ph
	}
	return out
}

// Stats implements Bus.
func (h *TCPHub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return copyStats(h.stats)
}

// Close shuts the hub down.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	h.closing = true
	h.mu.Unlock()
	err := h.ln.Close()
	h.mu.Lock()
	for _, pc := range h.peers {
		pc.conn.Close()
	}
	h.mu.Unlock()
	return err
}

// TCPPeer is a client-side transport connected to a TCPHub.
type TCPPeer struct {
	Name string

	conn net.Conn     //silofuse:guardedby mu
	enc  *gob.Encoder //silofuse:guardedby sendMu
	//silofuse:guardedby recvMu
	dec    *gob.Decoder
	mu     sync.Mutex
	sendMu sync.Mutex
	recvMu sync.Mutex // guards dec, so Reconnect can swap streams safely
	stats  Stats      //silofuse:guardedby mu
	rec    *obs.Recorder
	sent   int64 // written through countingWriter's pointer, under mu
	//silofuse:guardedby mu
	ioTimeout time.Duration
}

// DialHub connects to a hub and announces the peer's name.
func DialHub(name, addr string) (*TCPPeer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("silo: dial hub: %w", err)
	}
	p := &TCPPeer{Name: name, conn: conn, stats: Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)}}
	p.enc = gob.NewEncoder(countingWriter{c: conn, n: &p.sent, mu: &p.mu, total: &p.stats, dir: name + "->hub"})
	p.dec = gob.NewDecoder(conn)
	if err := p.enc.Encode(wireEnvelope{From: name, Kind: "hello"}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("silo: hello: %w", err)
	}
	return p, nil
}

// SetRecorder implements RecorderSetter.
func (p *TCPPeer) SetRecorder(rec *obs.Recorder) { p.rec = rec }

// SetIOTimeout installs a per-message write deadline on peer sends; the
// resilient layer forwards its SendDeadline here. Zero disables deadlines.
func (p *TCPPeer) SetIOTimeout(d time.Duration) {
	p.mu.Lock()
	p.ioTimeout = d
	p.mu.Unlock()
}

// Send implements Bus (all traffic is routed via the hub).
func (p *TCPPeer) Send(e *Envelope) error {
	t0 := p.rec.Now()
	if p.rec != nil && e.Kind != KindHeartbeat {
		if e.Flow == 0 {
			e.Flow = p.rec.NextFlow()
		}
		p.rec.Trace.FlowSend(string(e.Kind), e.Flow)
	}
	w := toWire(e)
	kind := w.statKind()
	p.sendMu.Lock()
	p.mu.Lock()
	before := p.sent
	conn, timeout := p.conn, p.ioTimeout
	p.mu.Unlock()
	if timeout > 0 {
		// Write deadline so a send into a dead hub fails instead of blocking;
		// IO plumbing only, never observed by the protocol logic.
		//silofuse:walltime-ok socket write deadline, not on the deterministic data path
		conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	err := p.enc.Encode(w)
	p.mu.Lock()
	delta := p.sent - before
	p.stats.Messages++
	p.stats.ByKind[kind] += delta
	p.mu.Unlock()
	p.sendMu.Unlock()
	if p.rec != nil {
		p.rec.Message(string(kind), delta, p.rec.Since(t0))
	}
	return err
}

// Recv implements Bus; only the peer's own inbox is reachable.
func (p *TCPPeer) Recv(to string) (*Envelope, error) {
	if to != p.Name {
		return nil, fmt.Errorf("silo: peer %q cannot receive for %q", p.Name, to)
	}
	p.recvMu.Lock()
	var w wireEnvelope
	err := p.dec.Decode(&w)
	p.recvMu.Unlock()
	if err != nil {
		return nil, err
	}
	if p.rec != nil {
		p.rec.Trace.FlowRecv(string(w.Kind), w.Flow)
	}
	return fromWire(w), nil
}

// Reconnect re-dials the hub after a connection loss and announces the
// peer under its existing name, superseding the dead registration at the
// hub. Any Recv blocked on the old stream is unblocked with an error
// first. The peer's traffic counters carry over — a restarted transport
// keeps its byte accounting.
func (p *TCPPeer) Reconnect(addr string) error {
	p.mu.Lock()
	old := p.conn
	p.mu.Unlock()
	old.Close()
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.recvMu.Lock()
	defer p.recvMu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("silo: reconnect %s: %w", p.Name, err)
	}
	p.mu.Lock()
	p.conn = conn
	p.mu.Unlock()
	p.enc = gob.NewEncoder(countingWriter{c: conn, n: &p.sent, mu: &p.mu, total: &p.stats, dir: p.Name + "->hub"})
	p.dec = gob.NewDecoder(conn)
	// Seq 1 in the hello marks this as a re-dial for the hub's telemetry.
	if err := p.enc.Encode(wireEnvelope{From: p.Name, Kind: "hello", Seq: 1}); err != nil {
		conn.Close()
		return fmt.Errorf("silo: reconnect hello: %w", err)
	}
	if p.rec != nil {
		p.rec.Reconnect(p.Name)
	}
	return nil
}

// StartHeartbeat launches a background goroutine that sends a KindHeartbeat
// envelope to the hub every interval, feeding the hub's per-peer liveness
// counters (PeerHealth). Send failures are ignored — a dead connection is
// precisely what the missing beats will reveal. The returned stop function
// is idempotent and waits for the goroutine to exit.
func (p *TCPPeer) StartHeartbeat(every time.Duration) (stop func()) {
	done := make(chan struct{}) //silofuse:unbuffered-ok close-only stop signal, never sent on
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = p.Send(&Envelope{From: p.Name, Kind: KindHeartbeat})
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// Stats implements Bus.
func (p *TCPPeer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return copyStats(p.stats)
}

// Close closes the connection.
func (p *TCPPeer) Close() error {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	return conn.Close()
}
