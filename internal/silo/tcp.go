package silo

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// wireEnvelope is the gob wire format; tensor payloads are flattened. Flow
// carries the distributed trace context across the socket (gob omits the
// field entirely when zero, so untraced runs pay no wire bytes for it).
type wireEnvelope struct {
	From, To string
	Kind     Kind
	Rows     int
	Cols     int
	Data     []float64
	Flow     uint64
}

func toWire(e *Envelope) wireEnvelope {
	w := wireEnvelope{From: e.From, To: e.To, Kind: e.Kind, Flow: e.Flow}
	if e.Payload != nil {
		w.Rows, w.Cols, w.Data = e.Payload.Rows, e.Payload.Cols, e.Payload.Data
	}
	return w
}

func fromWire(w wireEnvelope) *Envelope {
	e := &Envelope{From: w.From, To: w.To, Kind: w.Kind, Flow: w.Flow}
	if w.Data != nil {
		e.Payload = tensor.FromSlice(w.Rows, w.Cols, w.Data)
	}
	return e
}

// countingWriter counts bytes flowing to the underlying connection.
type countingWriter struct {
	c     net.Conn
	n     *int64
	mu    *sync.Mutex
	total *Stats
	dir   string
}

func (w countingWriter) Write(p []byte) (int, error) {
	n, err := w.c.Write(p)
	w.mu.Lock()
	*w.n += int64(n)
	w.total.Bytes += int64(n)
	w.total.BytesByDir[w.dir] += int64(n)
	w.mu.Unlock()
	return n, err
}

// hubPeer is one connected client as seen from the hub. sendMu serialises
// encodes on the shared gob stream so the byte delta observed around an
// Encode can be attributed to that message's kind.
type hubPeer struct {
	conn   net.Conn
	enc    *gob.Encoder
	sendMu sync.Mutex
	sent   int64 // bytes written to this peer; guarded by the hub mutex
}

// TCPHub is the coordinator-side transport: it listens for client
// connections and routes envelopes between parties. Envelopes addressed to
// the hub's own name land in its local inbox; everything else is forwarded
// to the destination peer. It implements Bus with real measured wire bytes.
type TCPHub struct {
	Name string

	ln    net.Listener
	mu    sync.Mutex
	peers map[string]*hubPeer
	inbox chan *Envelope
	stats Stats
	rec   *obs.Recorder
	wg    sync.WaitGroup
}

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:0").
func NewTCPHub(name, addr string) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("silo: hub listen: %w", err)
	}
	h := &TCPHub{
		Name:  name,
		ln:    ln,
		peers: make(map[string]*hubPeer),
		inbox: make(chan *Envelope, 1024),
		stats: Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)},
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// SetRecorder implements RecorderSetter.
func (h *TCPHub) SetRecorder(rec *obs.Recorder) { h.rec = rec }

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Peers lists the names of currently registered peers in sorted order —
// the hub-side liveness view a health endpoint reports.
func (h *TCPHub) Peers() []string {
	h.mu.Lock()
	names := make([]string, 0, len(h.peers))
	for name := range h.peers {
		names = append(names, name)
	}
	h.mu.Unlock()
	sort.Strings(names)
	return names
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

func (h *TCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	dec := gob.NewDecoder(conn)
	var hello wireEnvelope
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	name := hello.From
	pc := &hubPeer{conn: conn}
	pc.enc = gob.NewEncoder(countingWriter{c: conn, n: &pc.sent, mu: &h.mu, total: &h.stats, dir: h.Name + "->" + name})
	h.mu.Lock()
	h.peers[name] = pc
	h.mu.Unlock()
	for {
		var w wireEnvelope
		if err := dec.Decode(&w); err != nil {
			return
		}
		e := fromWire(w)
		// Received bytes are counted by the sender side (the peer's
		// countingWriter); the hub only counts what it forwards or sends.
		if e.To == h.Name {
			h.inbox <- e
			continue
		}
		if dst := h.waitPeer(e.To); dst != nil {
			_ = h.sendWire(dst, w)
		}
	}
}

// waitPeer returns the destination's connection, waiting briefly for its
// hello to be processed: peers dial concurrently, so a forwarded message can
// otherwise race the recipient's registration and be dropped.
func (h *TCPHub) waitPeer(name string) *hubPeer {
	for i := 0; i < 1000; i++ {
		h.mu.Lock()
		pc := h.peers[name]
		h.mu.Unlock()
		if pc != nil {
			return pc
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// sendWire encodes w to pc, attributing the measured byte delta to the
// message kind. The per-peer sendMu keeps delta attribution exact when
// several goroutines send to the same peer.
func (h *TCPHub) sendWire(pc *hubPeer, w wireEnvelope) error {
	t0 := h.rec.Now()
	pc.sendMu.Lock()
	h.mu.Lock()
	before := pc.sent
	h.mu.Unlock()
	err := pc.enc.Encode(w)
	h.mu.Lock()
	delta := pc.sent - before
	h.stats.Messages++
	h.stats.ByKind[w.Kind] += delta
	h.mu.Unlock()
	pc.sendMu.Unlock()
	if h.rec != nil {
		h.rec.Message(string(w.Kind), delta, h.rec.Since(t0))
	}
	return err
}

// Send implements Bus for the hub side.
func (h *TCPHub) Send(e *Envelope) error {
	if h.rec != nil {
		if e.Flow == 0 {
			e.Flow = h.rec.NextFlow()
		}
		h.rec.Trace.FlowSend(string(e.Kind), e.Flow)
	}
	if e.To == h.Name {
		h.mu.Lock()
		h.stats.Messages++
		h.mu.Unlock()
		if h.rec != nil {
			h.rec.Message(string(e.Kind), 0, 0) // local delivery, no wire bytes
		}
		h.inbox <- e
		return nil
	}
	dst := h.waitPeer(e.To)
	if dst == nil {
		return fmt.Errorf("silo: hub has no peer %q", e.To)
	}
	return h.sendWire(dst, toWire(e))
}

// Recv implements Bus for the hub side.
func (h *TCPHub) Recv(to string) (*Envelope, error) {
	if to != h.Name {
		return nil, fmt.Errorf("silo: hub Recv is only for %q", h.Name)
	}
	e, ok := <-h.inbox
	if !ok {
		return nil, fmt.Errorf("silo: hub inbox closed")
	}
	if h.rec != nil {
		h.rec.Trace.FlowRecv(string(e.Kind), e.Flow)
	}
	return e, nil
}

// Stats implements Bus.
func (h *TCPHub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return copyStats(h.stats)
}

// Close shuts the hub down.
func (h *TCPHub) Close() error {
	err := h.ln.Close()
	h.mu.Lock()
	for _, pc := range h.peers {
		pc.conn.Close()
	}
	h.mu.Unlock()
	return err
}

// TCPPeer is a client-side transport connected to a TCPHub.
type TCPPeer struct {
	Name string

	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	mu     sync.Mutex
	sendMu sync.Mutex
	stats  Stats
	rec    *obs.Recorder
	sent   int64
}

// DialHub connects to a hub and announces the peer's name.
func DialHub(name, addr string) (*TCPPeer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("silo: dial hub: %w", err)
	}
	p := &TCPPeer{Name: name, conn: conn, stats: Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)}}
	p.enc = gob.NewEncoder(countingWriter{c: conn, n: &p.sent, mu: &p.mu, total: &p.stats, dir: name + "->hub"})
	p.dec = gob.NewDecoder(conn)
	if err := p.enc.Encode(wireEnvelope{From: name, Kind: "hello"}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("silo: hello: %w", err)
	}
	return p, nil
}

// SetRecorder implements RecorderSetter.
func (p *TCPPeer) SetRecorder(rec *obs.Recorder) { p.rec = rec }

// Send implements Bus (all traffic is routed via the hub).
func (p *TCPPeer) Send(e *Envelope) error {
	t0 := p.rec.Now()
	if p.rec != nil {
		if e.Flow == 0 {
			e.Flow = p.rec.NextFlow()
		}
		p.rec.Trace.FlowSend(string(e.Kind), e.Flow)
	}
	w := toWire(e)
	p.sendMu.Lock()
	p.mu.Lock()
	before := p.sent
	p.mu.Unlock()
	err := p.enc.Encode(w)
	p.mu.Lock()
	delta := p.sent - before
	p.stats.Messages++
	p.stats.ByKind[w.Kind] += delta
	p.mu.Unlock()
	p.sendMu.Unlock()
	if p.rec != nil {
		p.rec.Message(string(w.Kind), delta, p.rec.Since(t0))
	}
	return err
}

// Recv implements Bus; only the peer's own inbox is reachable.
func (p *TCPPeer) Recv(to string) (*Envelope, error) {
	if to != p.Name {
		return nil, fmt.Errorf("silo: peer %q cannot receive for %q", p.Name, to)
	}
	var w wireEnvelope
	if err := p.dec.Decode(&w); err != nil {
		return nil, err
	}
	if p.rec != nil {
		p.rec.Trace.FlowRecv(string(w.Kind), w.Flow)
	}
	return fromWire(w), nil
}

// Stats implements Bus.
func (p *TCPPeer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return copyStats(p.stats)
}

// Close closes the connection.
func (p *TCPPeer) Close() error { return p.conn.Close() }
