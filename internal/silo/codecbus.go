package silo

import (
	"fmt"
	"sort"
	"sync"

	"silofuse/internal/obs"
	"silofuse/internal/silo/codec"
)

// codecEligible reports whether a message kind carries a dense tensor
// payload the wire codec should frame. Control kinds (synth-req, heartbeat,
// peer-down) and opaque blobs (telemetry) pass through untouched.
func codecEligible(k Kind) bool {
	switch k {
	case KindLatents, KindSynthLatent, KindActivation, KindDenoised, KindGradUp, KindGradDown:
		return true
	}
	return false
}

// WireKindStats is one message kind's bytes-vs-error record under a wire
// codec: how many tensor messages were framed, the modelled float64 bytes
// they would have cost (8 per value), the encoded bytes actually framed,
// and the maximum / value-weighted mean absolute reconstruction error the
// codec introduced. For the lossless f64 codec both errors are exactly 0.
type WireKindStats struct {
	Codec    string  `json:"codec"`
	Messages int64   `json:"messages"`
	RawBytes int64   `json:"raw_bytes"`
	Bytes    int64   `json:"bytes"`
	MaxErr   float64 `json:"max_err"`
	MeanErr  float64 `json:"mean_err"`
}

// wireAgg accumulates one kind's codec accounting.
type wireAgg struct {
	messages int64
	rawBytes int64
	encBytes int64
	maxErr   float64
	errSum   float64
	values   int64
}

// CodecBus is the outermost transport layer: it frames dense tensor
// payloads through the precision-tiered wire codec on Send and decodes them
// back to native tensors on Recv, so the application protocol is oblivious
// to the wire representation while every layer below it — checksums,
// retries, dedup, chaos faults, byte accounting — operates on the encoded
// blob, exactly as a real network stack would.
//
// The default f64 codec is bit-lossless and its blob is exactly 8 bytes per
// value, so a default run's losses and per-kind byte accounting are
// bit-identical to the historical native-payload path (pinned by
// TestCodecBusDefaultBitIdentity).
//
// Every framed send is accounted per kind: raw vs encoded bytes and the
// reconstruction error bound, exposed through WireReport and — when a
// recorder is attached — the wire_* metric family that BENCH_silofuse.json
// and run manifests pick up.
type CodecBus struct {
	inner Bus
	id    codec.ID
	rec   *obs.Recorder

	mu   sync.Mutex
	wire map[Kind]*wireAgg
}

// NewCodecBus wraps inner with the given wire codec. It is the identity for
// ineligible kinds; codec.None disables framing entirely.
func NewCodecBus(inner Bus, id codec.ID) *CodecBus {
	return &CodecBus{inner: inner, id: id, wire: make(map[Kind]*wireAgg)}
}

// Codec returns the bus's wire codec id.
func (b *CodecBus) Codec() codec.ID { return b.id }

// SetRecorder implements RecorderSetter: wire codec metrics land on rec,
// and the recorder is forwarded to the wrapped transport.
func (b *CodecBus) SetRecorder(rec *obs.Recorder) {
	b.rec = rec
	if rs, ok := b.inner.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// Send implements Bus: eligible tensor payloads are encoded into the
// envelope's Blob (dims ride the envelope) before the inner layers see it.
// The caller's envelope is never mutated — the frame is a shallow copy — so
// senders retain their payload for retransmission or reuse.
func (b *CodecBus) Send(e *Envelope) error {
	if b.id == codec.None || !codecEligible(e.Kind) || e.Payload == nil || e.Codec != 0 {
		return b.inner.Send(e)
	}
	blob, st, err := codec.Encode(b.id, e.Payload)
	if err != nil {
		return fmt.Errorf("silo: wire codec %s encode %s: %w", b.id, e.Kind, err)
	}
	enc := *e
	enc.Blob = blob
	enc.Codec = b.id
	enc.Rows, enc.Cols = e.Payload.Rows, e.Payload.Cols
	enc.Payload = nil
	b.record(e.Kind, int64(8*len(e.Payload.Data)), enc.WireSize(), int64(len(e.Payload.Data)), st)
	return b.inner.Send(&enc)
}

// record folds one framed send into the per-kind accounting and mirrors the
// running aggregates to the recorder's wire_* metrics.
func (b *CodecBus) record(kind Kind, rawPayload, encWire, values int64, st codec.ErrStats) {
	const header = 64 // same fixed-header model as Envelope.WireSize
	b.mu.Lock()
	a := b.wire[kind]
	if a == nil {
		a = &wireAgg{}
		b.wire[kind] = a
	}
	a.messages++
	a.rawBytes += header + rawPayload
	a.encBytes += encWire
	a.values += values
	a.errSum += st.Mean * float64(values)
	if st.Max > a.maxErr {
		a.maxErr = st.Max
	}
	maxErr, meanErr := a.maxErr, 0.0
	if a.values > 0 {
		meanErr = a.errSum / float64(a.values)
	}
	b.mu.Unlock()
	b.rec.WireCodec(b.id.String(), string(kind), header+rawPayload, encWire, maxErr, meanErr)
}

// decode reconstructs a codec-framed envelope's tensor payload; unframed
// envelopes pass through untouched. A blob that no longer matches its
// declared shape surfaces as ErrCorruptPayload — with the resilient layer
// below, its checksum catches corruption first, so this is a last line of
// defence on bare stacks.
func (b *CodecBus) decode(e *Envelope) (*Envelope, error) {
	if e.Codec == codec.None {
		return e, nil
	}
	m, err := codec.Decode(e.Codec, e.Blob, e.Rows, e.Cols)
	if err != nil {
		return nil, fmt.Errorf("silo: %s->%s %s seq %d wire codec decode: %w (%v)", e.From, e.To, e.Kind, e.Seq, ErrCorruptPayload, err)
	}
	dec := *e
	dec.Payload = m
	dec.Blob = nil
	dec.Codec = codec.None
	dec.Rows, dec.Cols = 0, 0
	return &dec, nil
}

// Recv implements Bus, decoding codec-framed envelopes back to native
// tensors before the application sees them.
func (b *CodecBus) Recv(to string) (*Envelope, error) {
	e, err := b.inner.Recv(to)
	if err != nil {
		return nil, err
	}
	return b.decode(e)
}

// TryRecv implements TryReceiver. An undecodable frame is passed through
// raw: TryRecv callers are drain loops that discard the envelope anyway.
func (b *CodecBus) TryRecv(to string) (*Envelope, bool) {
	tr, ok := b.inner.(TryReceiver)
	if !ok {
		return nil, false
	}
	e, ok := tr.TryRecv(to)
	if !ok {
		return nil, false
	}
	if dec, err := b.decode(e); err == nil {
		return dec, true
	}
	return e, true
}

// Reset implements Resetter by forwarding to the wrapped transport.
func (b *CodecBus) Reset(parties []string) {
	if rs, ok := b.inner.(Resetter); ok {
		rs.Reset(parties)
	}
}

// Stats implements Bus by delegating to the wrapped transport: the inner
// layers already account the encoded envelope's WireSize, so the codec's
// byte savings land in the existing ByKind buckets with no double count.
func (b *CodecBus) Stats() Stats { return b.inner.Stats() }

// WireReport snapshots the per-kind bytes-vs-error accounting of every
// framed kind, keyed by kind name.
func (b *CodecBus) WireReport() map[string]WireKindStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]WireKindStats, len(b.wire))
	for kind, a := range b.wire {
		meanErr := 0.0
		if a.values > 0 {
			meanErr = a.errSum / float64(a.values)
		}
		out[string(kind)] = WireKindStats{
			Codec:    b.id.String(),
			Messages: a.messages,
			RawBytes: a.rawBytes,
			Bytes:    a.encBytes,
			MaxErr:   a.maxErr,
			MeanErr:  meanErr,
		}
	}
	return out
}

// WireReportKinds lists the framed kinds in sorted order — the
// deterministic iteration companion of WireReport.
func WireReportKinds(rep map[string]WireKindStats) []string {
	kinds := make([]string, 0, len(rep))
	for k := range rep {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
