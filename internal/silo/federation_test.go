//silofuse:bitwise-ok federation must leave training bit-identical; losses compared exactly
package silo

import (
	"testing"

	"silofuse/internal/obs"
)

// federatedPipeline builds a pipeline with per-party recorders and telemetry
// federation enabled over the given bus.
func federatedPipeline(t *testing.T, bus Bus, clients int) (*Pipeline, *Federation) {
	t.Helper()
	tb := loanTable(t, 300)
	cfg := smallConfig(clients)
	cfg.AEIters, cfg.DiffIters = 40, 50
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coordRec := obs.NewPartyRecorder(reg, 1, "coord")
	recs := make([]*obs.Recorder, clients)
	for i := range recs {
		recs[i] = obs.NewPartyRecorder(reg, 2+i, p.Clients[i].ID)
	}
	if err := p.SetPartyRecorders(coordRec, recs); err != nil {
		t.Fatal(err)
	}
	return p, p.EnableFederation(nil)
}

// TestFederationDeterminism is the tentpole invariant: enabling telemetry
// federation must not perturb the model. Training losses and the application
// message traffic stay bit-identical to a non-federated run; the telemetry
// bytes land exclusively in their own accounting bucket.
func TestFederationDeterminism(t *testing.T) {
	tb := loanTable(t, 300)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 50

	plainBus := NewLocalBus()
	plain, err := NewPipeline(plainBus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aeP, diffP, err := plain.TrainStacked()
	if err != nil {
		t.Fatal(err)
	}

	fedBus := NewLocalBus()
	fed, _ := federatedPipeline(t, fedBus, 2)
	aeF, diffF, err := fed.TrainStacked()
	if err != nil {
		t.Fatal(err)
	}

	if aeP != aeF || diffP != diffF {
		t.Fatalf("federation perturbed training: ae %v vs %v, diff %v vs %v", aeP, aeF, diffP, diffF)
	}
	plainKinds := plainBus.Stats().ByKind
	fedKinds := fedBus.Stats().ByKind
	if fedKinds[KindTelemetry] == 0 {
		t.Fatal("federated run shipped no telemetry")
	}
	for kind, bytes := range plainKinds {
		if fedKinds[kind] != bytes {
			t.Fatalf("kind %s: %d bytes federated vs %d plain — app goodput must be untouched", kind, fedKinds[kind], bytes)
		}
	}
}

// TestFederationAggregates runs training plus partitioned synthesis with
// federation on and checks the coordinator's fleet view: every party
// reported, no sequence gaps, client training metrics visible fleet-wide,
// and the fleet exposition labelling every series.
func TestFederationAggregates(t *testing.T) {
	bus := NewLocalBus()
	p, fed := federatedPipeline(t, bus, 2)
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SynthesizePartitioned(1, 40, true); err != nil {
		t.Fatal(err)
	}

	agg := fed.Agg
	parties := agg.Parties()
	want := map[string]bool{"c0": true, "c1": true, "coord": true}
	if len(parties) != len(want) {
		t.Fatalf("parties = %v, want c0 c1 coord", parties)
	}
	for _, party := range parties {
		if !want[party] {
			t.Fatalf("unexpected party %q", party)
		}
		health := agg.FleetHealth()[party].(map[string]any)
		if health["updates"].(int64) == 0 {
			t.Fatalf("party %s: no updates ingested", party)
		}
		if health["seq_gaps"].(int64) != 0 {
			t.Fatalf("party %s: sequence gaps on a healthy run: %v", party, health)
		}
	}

	// Client-side autoencoder telemetry must be visible in the fleet view.
	c0 := agg.PartySnapshot("c0")
	if c0.Histograms["ae_step_seconds"].Count == 0 {
		t.Fatalf("c0 snapshot missing ae step telemetry: %+v", c0.Histograms)
	}
	// Spans shipped from the clients ride the updates too.
	if h := agg.FleetHealth()["c0"].(map[string]any); h["spans"].(int) == 0 {
		t.Fatal("c0 shipped no spans")
	}
}

// TestFederationDrain checks that after synthesis the coordinator has
// received every in-flight telemetry envelope: nothing is left queued to
// the coordinator on the bus.
func TestFederationDrain(t *testing.T) {
	bus := NewLocalBus()
	p, _ := federatedPipeline(t, bus, 2)
	if _, _, err := p.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SynthesizePartitioned(1, 30, true); err != nil {
		t.Fatal(err)
	}
	if e, ok := bus.TryRecv("coord"); ok {
		t.Fatalf("envelope still queued to the coordinator after drain: kind %s from %s", e.Kind, e.From)
	}
}

// TestTelemetryEnvelopeChecksum pins that the resilient checksum covers the
// Blob: two envelopes differing only in one blob byte must not collide.
func TestTelemetryEnvelopeChecksum(t *testing.T) {
	a := &Envelope{From: "c0", To: "coord", Kind: KindTelemetry, Blob: []byte(`{"party":"c0","seq":1}`)}
	b := &Envelope{From: "c0", To: "coord", Kind: KindTelemetry, Blob: []byte(`{"party":"c0","seq":2}`)}
	if checksumEnvelope(a) == checksumEnvelope(b) {
		t.Fatal("checksum ignores Blob contents")
	}
	if a.WireSize() != 64+int64(len(a.Blob)) {
		t.Fatalf("telemetry wire size = %d, want header + blob", a.WireSize())
	}
}
