package silo

import (
	"fmt"
	"math"
	"math/rand"

	"silofuse/internal/diffusion"
	"silofuse/internal/obs"
	"silofuse/internal/tensor"
)

// Coordinator holds the generative diffusion backbone 𝒢. In the paper the
// role is played by client C1; here it is a separate actor for clarity —
// co-locating it with a client changes nothing in the protocol.
type Coordinator struct {
	ID    string
	Model *diffusion.Model
	// DisableWhitening skips latent standardisation (ablation switch).
	DisableWhitening bool
	// Rec, when non-nil, is forwarded to the diffusion model when it is
	// built, so per-step training telemetry flows to the same recorder.
	Rec *obs.Recorder
	// Fed, when non-nil, ingests telemetry envelopes interleaved with
	// application traffic on the coordinator's inbox (set by
	// Pipeline.EnableFederation).
	Fed *Federation
	rng *rand.Rand
	// seed is the construction seed, kept so data-parallel training can
	// rebuild bit-identical model replicas on a chaos-driven phase retry —
	// the live rng stream has already been consumed by then.
	seed int64

	latents     []*tensor.Matrix // received per client, in client order
	latentDims  []int
	clientOrder []string

	// Latent standardisation: the DDPM's forward process terminates at
	// N(0, I) and sampling starts there, so the coordinator whitens the
	// collected latents per dimension before training and colours samples
	// back afterwards.
	latMean, latStd []float64
}

// NewCoordinator creates a coordinator expecting latents from the given
// clients in order, with the diffusion model built lazily once the total
// latent width is known.
func NewCoordinator(id string, clients []string, seed int64) *Coordinator {
	return &Coordinator{ID: id, rng: rand.New(rand.NewSource(seed)), seed: seed, clientOrder: clients}
}

// CollectLatents receives one latents message per client from bus and
// concatenates them in client order (Z = Z1 || ... || ZM).
func (c *Coordinator) CollectLatents(bus Bus) (*tensor.Matrix, error) {
	byClient := make(map[string]*tensor.Matrix, len(c.clientOrder))
	for len(byClient) < len(c.clientOrder) {
		env, err := bus.Recv(c.ID)
		if err != nil {
			return nil, err
		}
		if c.Fed.Observe(env) {
			continue // federated telemetry rides the same inbox
		}
		if env.Kind != KindLatents {
			return nil, fmt.Errorf("silo: coordinator expected latents, got %q from %s", env.Kind, env.From)
		}
		if _, dup := byClient[env.From]; dup {
			return nil, fmt.Errorf("silo: duplicate latents from %s", env.From)
		}
		byClient[env.From] = env.Payload
	}
	parts := make([]*tensor.Matrix, len(c.clientOrder))
	c.latentDims = make([]int, len(c.clientOrder))
	for i, id := range c.clientOrder {
		z, ok := byClient[id]
		if !ok {
			return nil, fmt.Errorf("silo: missing latents from %s", id)
		}
		parts[i] = z
		c.latentDims[i] = z.Cols
	}
	c.latents = parts
	return tensor.HStack(parts...), nil
}

// TrainDiffusion builds (if needed) and trains the backbone on the
// concatenated latents for iters steps (Algorithm 1 lines 12-17). cfg.Dim
// is overridden with the latent width; latents are whitened per dimension
// first so the diffusion prior matches the data scale.
func (c *Coordinator) TrainDiffusion(z *tensor.Matrix, cfg diffusion.ModelConfig, iters, batch int) float64 {
	zw := z
	if !c.DisableWhitening {
		c.fitLatentScaler(z)
		zw = c.whiten(z)
	}
	cfg.Dim = z.Cols
	if c.Model == nil {
		c.Model = diffusion.NewModel(c.rng, cfg)
	}
	c.Model.Rec = c.Rec
	return c.Model.Train(zw, iters, batch)
}

// TrainDiffusionDDP is the data-parallel counterpart of TrainDiffusion:
// it builds `workers` bit-identical model replicas (each from a fresh rng
// seeded with the coordinator's construction seed), shards the whitened
// latent table across `shards` logical shards, and drives
// diffusion.TrainDDP with gradient traffic carried over bus as KindGrad
// envelopes. On success the coordinator adopts replica 0 as its model; on
// error the coordinator is left without a model, and a retry rebuilds the
// replicas bit-identically because the construction seed — unlike the live
// rng stream — never advances.
func (c *Coordinator) TrainDiffusionDDP(bus Bus, z *tensor.Matrix, cfg diffusion.ModelConfig, iters, batch, workers, shards int) (float64, error) {
	zw := z
	if !c.DisableWhitening {
		c.fitLatentScaler(z)
		zw = c.whiten(z)
	}
	cfg.Dim = z.Cols
	steppers := make([]diffusion.ShardStepper, workers)
	replicas := make([]*diffusion.Model, workers)
	for w := range steppers {
		replicas[w] = diffusion.NewModel(rand.New(rand.NewSource(c.seed)), cfg)
		steppers[w] = diffusion.NewGaussianShardStepper(replicas[w], zw)
	}
	res, err := diffusion.TrainDDP(steppers, NewBusGradTransport(bus), diffusion.DDPConfig{
		Workers: workers,
		Shards:  shards,
		Iters:   iters,
		Batch:   batch,
		Rows:    zw.Rows,
		Seed:    c.seed,
		Rec:     c.Rec,
	})
	if err != nil {
		return 0, err
	}
	c.Model = replicas[0]
	c.Model.Rec = c.Rec
	return res.TailLoss, nil
}

// SampleLatents draws n synthetic latent rows with steps inference steps,
// colours them back to the training latent scale, and splits them into
// per-client partitions (Algorithm 2 lines 3-5).
func (c *Coordinator) SampleLatents(n, steps int) ([]*tensor.Matrix, error) {
	if c.Model == nil {
		return nil, fmt.Errorf("silo: coordinator has no trained model")
	}
	z := c.Model.Sample(n, steps)
	c.colour(z)
	return c.splitLatents(z)
}

// SampleLatentsBatch draws len(ns) synthesis lanes in one stacked
// denoising loop: lane k contributes ns[k] rows from the rng derived with
// diffusion.LaneRng(seed, lane0+k). Lane independence makes the stacked
// run bit-identical to len(ns) sequential single-lane calls with the same
// lane ids. Returns the stacked batch split into per-client partitions,
// like SampleLatents.
func (c *Coordinator) SampleLatentsBatch(seed int64, lane0 int, ns []int, steps int) ([]*tensor.Matrix, error) {
	if c.Model == nil {
		return nil, fmt.Errorf("silo: coordinator has no trained model")
	}
	rngs := make([]*rand.Rand, len(ns))
	for k := range rngs {
		rngs[k] = diffusion.LaneRng(seed, lane0+k)
	}
	// The batched sampler returns a workspace-aliasing matrix; clone before
	// colouring in place.
	z := c.Model.SampleBatchWithRngs(rngs, ns, steps).Clone()
	c.colour(z)
	return c.splitLatents(z)
}

// fitLatentScaler records per-dimension mean/std of the training latents.
func (c *Coordinator) fitLatentScaler(z *tensor.Matrix) {
	c.latMean = make([]float64, z.Cols)
	c.latStd = make([]float64, z.Cols)
	for j := 0; j < z.Cols; j++ {
		var mean, m2 float64
		for i := 0; i < z.Rows; i++ {
			mean += z.At(i, j)
		}
		mean /= float64(z.Rows)
		for i := 0; i < z.Rows; i++ {
			d := z.At(i, j) - mean
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(z.Rows))
		if std < 1e-9 {
			std = 1
		}
		c.latMean[j] = mean
		c.latStd[j] = std
	}
}

// whiten returns (z - mean) / std as a new matrix.
func (c *Coordinator) whiten(z *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(z.Rows, z.Cols)
	for i := 0; i < z.Rows; i++ {
		src, dst := z.Row(i), out.Row(i)
		for j := range dst {
			dst[j] = (src[j] - c.latMean[j]) / c.latStd[j]
		}
	}
	return out
}

// colour rescales whitened samples back to the latent scale, in place.
func (c *Coordinator) colour(z *tensor.Matrix) {
	if c.latMean == nil {
		return
	}
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j := range row {
			row[j] = row[j]*c.latStd[j] + c.latMean[j]
		}
	}
}

// splitLatents partitions a latent matrix by the recorded per-client dims.
func (c *Coordinator) splitLatents(z *tensor.Matrix) ([]*tensor.Matrix, error) {
	total := 0
	for _, d := range c.latentDims {
		total += d
	}
	if total != z.Cols {
		return nil, fmt.Errorf("silo: latent width %d does not match client dims (sum %d)", z.Cols, total)
	}
	out := make([]*tensor.Matrix, len(c.latentDims))
	off := 0
	for i, d := range c.latentDims {
		out[i] = z.SliceCols(off, off+d)
		off += d
	}
	return out, nil
}

// DistributeLatents sends each client its partition over bus.
func (c *Coordinator) DistributeLatents(bus Bus, parts []*tensor.Matrix) error {
	for i, id := range c.clientOrder {
		if err := bus.Send(&Envelope{From: c.ID, To: id, Kind: KindSynthLatent, Payload: parts[i]}); err != nil {
			return err
		}
	}
	return nil
}
