package silo

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"

	"silofuse/internal/diffusion"
	"silofuse/internal/nn"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
	"silofuse/internal/tensor"
)

// E2EPipeline is the end-to-end distributed baseline (the paper's
// E2EDistr, Fig. 9): encoders at the clients, the DDPM at the coordinator
// and decoders back at the clients are trained *jointly*, so every
// iteration exchanges forward activations and gradients — four matrix
// transfers per client per iteration. Its communication grows as
// O(#iterations), which Figure 10 contrasts with stacked training's single
// round.
//
// Batch row selection uses a seed shared between parties, so no index
// messages are needed; all tensor traffic flows through the Bus and is
// byte-accounted.
type E2EPipeline struct {
	Bus     Bus
	Schema  *tabular.Schema
	Parts   [][]int
	Clients []*Client
	Coord   *Coordinator
	Cfg     PipelineConfig
	// Rec, when non-nil, receives the e2e-train phase span, per-iteration
	// loss/throughput telemetry (stage "e2e") and bus message telemetry.
	Rec *obs.Recorder

	gauss *diffusion.Gaussian
	net   *nn.DiffusionMLP
	opt   *nn.Adam
	rng   *rand.Rand
}

// SetRecorder threads rec through the joint pipeline and its transport, the
// E2E counterpart of Pipeline.SetRecorder.
func (p *E2EPipeline) SetRecorder(rec *obs.Recorder) {
	p.Rec = rec
	for _, c := range p.Clients {
		c.AE.Rec = rec
	}
	p.Coord.Rec = rec
	if rs, ok := p.Bus.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// NewE2EPipeline partitions data and constructs the joint model. The
// diffusion backbone dimension equals the total latent width.
func NewE2EPipeline(bus Bus, data *tabular.Table, cfg PipelineConfig) (*E2EPipeline, error) {
	base, err := NewPipeline(bus, data, cfg)
	if err != nil {
		return nil, err
	}
	total := 0
	dims := make([]int, len(base.Clients))
	for i, c := range base.Clients {
		dims[i] = c.LatentDim()
		total += dims[i]
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 777_777))
	var sch *diffusion.Schedule
	if cfg.Diff.CosineSch {
		sch = diffusion.CosineSchedule(cfg.Diff.T)
	} else {
		sch = diffusion.LinearSchedule(cfg.Diff.T, 1e-4, 0.02)
	}
	p := &E2EPipeline{
		Bus: bus, Schema: base.Schema, Parts: base.Parts,
		Clients: base.Clients, Coord: base.Coord, Cfg: cfg,
		gauss: diffusion.NewGaussian(sch),
		net:   nn.NewDiffusionMLP(rng, total, cfg.Diff.Hidden, total, cfg.Diff.Depth, cfg.Diff.TimeDim, cfg.Diff.Dropout),
		rng:   rng,
	}
	p.net.WarmTimesteps(cfg.Diff.T)
	p.opt = nn.NewAdam(p.net.Params(), cfg.Diff.LR)
	p.Coord.latentDims = dims
	return p, nil
}

// Train runs iters joint iterations and returns the mean combined loss
// (L_G + mean L_AE) over the final 10% of steps.
func (p *E2EPipeline) Train(iters int) (float64, error) {
	return p.TrainFrom(0, iters)
}

// TrainFrom runs iterations [start, iters) — the resume form of Train.
// Batch indices and diffusion noise are drawn from a generator derived from
// (seed, iteration) — still shared between the parties, so no index
// messages are needed — which makes a resumed run replay exactly the
// stream an uninterrupted one would have drawn.
func (p *E2EPipeline) TrainFrom(start, iters int) (float64, error) {
	sum, count, err := p.trainRange(start, iters, iters)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, nil
	}
	return sum / float64(count), nil
}

// trainRange runs iterations [start, end) of a total-iteration run and
// returns the summed loss over the iterations that fall in the final 10%
// of the *total* run (so chunked resilient training recombines to the same
// tail mean as an uninterrupted run). On error the partial tail
// accumulation is discarded — the caller replays the chunk.
func (p *E2EPipeline) trainRange(start, end, total int) (float64, int, error) {
	batch := p.Cfg.Batch
	rows := p.Clients[0].Data.Rows()
	if batch > rows {
		batch = rows
	}
	span := p.Rec.StartSpan("e2e-train")
	span.SetAttr("clients", len(p.Clients))
	span.SetAttr("iters", end-start)
	defer span.End()
	p.Rec.ProfilePhaseStart("e2e-train")
	defer p.Rec.ProfilePhaseEnd("e2e-train")
	tail := total - total/10
	var tailLoss float64
	var tailCount int
	idx := make([]int, batch)
	var ms0 runtime.MemStats
	if p.Rec != nil {
		runtime.ReadMemStats(&ms0)
	}
	for it := start; it < end; it++ {
		rng := derivedRng(p.Cfg.Seed, e2eIterSalt, it)
		for i := range idx {
			idx[i] = rng.Intn(rows)
		}
		t0 := p.Rec.Now()
		loss, err := p.trainStep(rng, idx)
		if err != nil {
			return 0, 0, err
		}
		if p.Rec != nil {
			p.Rec.TrainStep("e2e", loss, batch, p.Rec.Since(t0))
		}
		if it >= tail {
			tailLoss += loss
			tailCount++
		}
	}
	if p.Rec != nil {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		p.Rec.TrainAllocs("e2e", end-start, ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc)
	}
	if tailCount > 0 {
		span.SetAttr("loss", tailLoss/float64(tailCount))
	}
	return tailLoss, tailCount, nil
}

// trainStep executes one end-to-end iteration over the bus, drawing all
// iteration randomness (timesteps, noise) from the supplied generator.
func (p *E2EPipeline) trainStep(rng *rand.Rand, idx []int) (float64, error) {
	// 1. Clients: encode the shared batch and upload activations.
	batches := make([]*tabular.Table, len(p.Clients))
	for i, c := range p.Clients {
		batches[i] = c.Data.SelectRows(idx)
		z := c.AE.ForwardEncode(batches[i], true)
		if err := p.Bus.Send(&Envelope{From: c.ID, To: p.Coord.ID, Kind: KindActivation, Payload: z}); err != nil {
			return 0, err
		}
	}
	// 2. Coordinator: collect, noise, predict, estimate x0, send down.
	zParts := make([]*tensor.Matrix, len(p.Clients))
	for range p.Clients {
		env, err := p.Bus.Recv(p.Coord.ID)
		if err != nil {
			return 0, err
		}
		if env.Kind != KindActivation {
			return 0, fmt.Errorf("silo: e2e expected activation, got %q", env.Kind)
		}
		zParts[clientIndex(env.From)] = env.Payload
	}
	z := tensor.HStack(zParts...)
	n := z.Rows
	ts := p.gauss.SampleTimesteps(rng, n)
	eps := tensor.New(n, z.Cols).Randn(rng, 1)
	zt := p.gauss.QSample(z, ts, eps)
	pred := p.net.Forward(zt, ts, true)
	lossG, gradPred := nn.MSELoss(pred, eps)

	// x0 estimate: (z_t - sqrt(1-ᾱ)·ε̂)/sqrt(ᾱ), per-row coefficients.
	x0est := tensor.New(n, z.Cols)
	sqab := make([]float64, n)
	sq1ab := make([]float64, n)
	for i := 0; i < n; i++ {
		ab := p.gauss.S.AlphaBar[ts[i]]
		sqab[i] = math.Sqrt(ab)
		sq1ab[i] = math.Sqrt(1 - ab)
		zr, pr, xr := zt.Row(i), pred.Row(i), x0est.Row(i)
		for j := range xr {
			xr[j] = (zr[j] - sq1ab[i]*pr[j]) / sqab[i]
		}
	}
	off := 0
	for _, c := range p.Clients {
		d := c.LatentDim()
		part := x0est.SliceCols(off, off+d)
		off += d
		if err := p.Bus.Send(&Envelope{From: p.Coord.ID, To: c.ID, Kind: KindDenoised, Payload: part}); err != nil {
			return 0, err
		}
	}

	// 3. Clients: decoder loss on the denoised latents, gradient back up.
	var lossAE float64
	for _, c := range p.Clients {
		env, err := p.Bus.Recv(c.ID)
		if err != nil {
			return 0, err
		}
		if env.Kind != KindDenoised {
			return 0, fmt.Errorf("silo: e2e expected denoised latents, got %q", env.Kind)
		}
		ci := clientIndex(c.ID)
		loss, gradX0 := c.AE.DecoderLossGrad(env.Payload, batches[ci], true)
		lossAE += loss
		if err := p.Bus.Send(&Envelope{From: c.ID, To: p.Coord.ID, Kind: KindGradUp, Payload: gradX0}); err != nil {
			return 0, err
		}
	}
	lossAE /= float64(len(p.Clients))

	// 4. Coordinator: exact joint backward. The x0 estimate contributes to
	// the backbone's output gradient (−sqrt(1−ᾱ)/sqrt(ᾱ) per row) and
	// directly to dz_t (1/sqrt(ᾱ)); dz = dz_t·sqrt(ᾱ) folds to
	// net-input-grad·sqrt(ᾱ) + gradX0.
	gradX0Parts := make([]*tensor.Matrix, len(p.Clients))
	for range p.Clients {
		env, err := p.Bus.Recv(p.Coord.ID)
		if err != nil {
			return 0, err
		}
		if env.Kind != KindGradUp {
			return 0, fmt.Errorf("silo: e2e expected gradient, got %q", env.Kind)
		}
		gradX0Parts[clientIndex(env.From)] = env.Payload
	}
	gradX0 := tensor.HStack(gradX0Parts...)
	combined := gradPred.Clone()
	for i := 0; i < n; i++ {
		coef := -sq1ab[i] / sqab[i]
		cr, gr := combined.Row(i), gradX0.Row(i)
		for j := range cr {
			cr[j] += coef * gr[j]
		}
	}
	dzt := p.net.Backward(combined)
	dz := tensor.New(n, z.Cols)
	for i := 0; i < n; i++ {
		dr, tr, gr := dz.Row(i), dzt.Row(i), gradX0.Row(i)
		for j := range dr {
			dr[j] = tr[j]*sqab[i] + gr[j]
		}
	}
	p.opt.Step()
	off = 0
	for _, c := range p.Clients {
		d := c.LatentDim()
		part := dz.SliceCols(off, off+d)
		off += d
		if err := p.Bus.Send(&Envelope{From: p.Coord.ID, To: c.ID, Kind: KindGradDown, Payload: part}); err != nil {
			return 0, err
		}
	}

	// 5. Clients: encoder backward and parameter step.
	for _, c := range p.Clients {
		env, err := p.Bus.Recv(c.ID)
		if err != nil {
			return 0, err
		}
		if env.Kind != KindGradDown {
			return 0, fmt.Errorf("silo: e2e expected encoder gradient, got %q", env.Kind)
		}
		c.AE.BackwardEncoder(env.Payload)
		c.AE.Step()
	}
	return lossG + lossAE, nil
}

// e2eCheckpoint is the gob wire format of a mid-training E2E checkpoint.
// Sections are nested []byte blobs so each inner gob stream decodes from
// its own bytes.Reader without over-reading the next one.
type e2eCheckpoint struct {
	Iter int
	Net  []byte   // backbone weights
	Opt  []byte   // backbone Adam state
	AEs  [][]byte // per-client autoencoder training state, in order
}

// SaveCheckpoint writes the full joint-training state — backbone weights
// plus Adam momenta, and every client autoencoder's weights plus momenta —
// so TrainFrom(iter, …) resumes bit-identically (for Dropout = 0 models,
// whose forward passes draw no randomness beyond the per-iteration stream).
func (p *E2EPipeline) SaveCheckpoint(w io.Writer, iter int) error {
	ck := e2eCheckpoint{Iter: iter}
	var buf bytes.Buffer
	if err := nn.SaveParams(&buf, p.net.Params()); err != nil {
		return err
	}
	ck.Net = buf.Bytes()
	var obuf bytes.Buffer
	if err := p.opt.Save(&obuf); err != nil {
		return err
	}
	ck.Opt = obuf.Bytes()
	for _, c := range p.Clients {
		var ab bytes.Buffer
		if err := c.AE.SaveTraining(&ab); err != nil {
			return fmt.Errorf("silo: e2e checkpoint client %s: %w", c.ID, err)
		}
		ck.AEs = append(ck.AEs, ab.Bytes())
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadCheckpoint restores state written by SaveCheckpoint and returns the
// iteration to resume from. Accumulated gradients from a half-finished
// iteration are zeroed.
func (p *E2EPipeline) LoadCheckpoint(r io.Reader) (int, error) {
	var ck e2eCheckpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("silo: decode e2e checkpoint: %w", err)
	}
	if len(ck.AEs) != len(p.Clients) {
		return 0, fmt.Errorf("silo: e2e checkpoint has %d clients, pipeline has %d", len(ck.AEs), len(p.Clients))
	}
	if err := nn.LoadParams(bytes.NewReader(ck.Net), p.net.Params()); err != nil {
		return 0, err
	}
	if err := p.opt.Load(bytes.NewReader(ck.Opt)); err != nil {
		return 0, err
	}
	for i, c := range p.Clients {
		if err := c.AE.LoadTraining(bytes.NewReader(ck.AEs[i])); err != nil {
			return 0, fmt.Errorf("silo: e2e checkpoint client %s: %w", c.ID, err)
		}
	}
	return ck.Iter, nil
}

func (p *E2EPipeline) parties() []string {
	ps := make([]string, 0, len(p.Clients)+1)
	for _, c := range p.Clients {
		ps = append(ps, c.ID)
	}
	return append(ps, p.Coord.ID)
}

// TrainResilient runs joint training with an in-memory checkpoint every
// `every` iterations. A chunk that dies with ErrPeerDead triggers the
// recovery hook, a bus reset and a replay from the last checkpoint;
// per-iteration rng derivation makes the recovered run bit-identical to a
// fault-free one. The returned loss is the same final-10% tail mean Train
// reports.
func (p *E2EPipeline) TrainResilient(iters, every int, rc RecoveryConfig) (float64, error) {
	if every <= 0 {
		every = 50
	}
	if rc.MaxPhaseRetries <= 0 {
		rc.MaxPhaseRetries = 2
	}
	var ckBuf bytes.Buffer
	if err := p.SaveCheckpoint(&ckBuf, 0); err != nil {
		return 0, err
	}
	var tailSum float64
	var tailCount int
	start, retries := 0, 0
	for start < iters {
		end := start + every
		if end > iters {
			end = iters
		}
		sum, count, err := p.trainRange(start, end, iters)
		if err != nil {
			if !errors.Is(err, ErrPeerDead) || retries >= rc.MaxPhaseRetries {
				return 0, err
			}
			retries++
			if rc.OnPeerDead != nil {
				if herr := rc.OnPeerDead(DeadPeerName(err)); herr != nil {
					return 0, fmt.Errorf("silo: e2e recovery aborted: %w", herr)
				}
			}
			if rs, ok := p.Bus.(Resetter); ok {
				rs.Reset(p.parties())
			}
			if _, lerr := p.LoadCheckpoint(bytes.NewReader(ckBuf.Bytes())); lerr != nil {
				return 0, lerr
			}
			continue // replay the interrupted chunk
		}
		tailSum += sum
		tailCount += count
		start = end
		ckBuf.Reset()
		if err := p.SaveCheckpoint(&ckBuf, start); err != nil {
			return 0, err
		}
	}
	if tailCount == 0 {
		return 0, nil
	}
	return tailSum / float64(tailCount), nil
}

// clientIndex parses the numeric suffix of a client ID ("c3" -> 3).
func clientIndex(id string) int {
	var i int
	fmt.Sscanf(id, "c%d", &i)
	return i
}

// Synthesize draws n rows end-to-end: the backbone samples latents from
// noise, partitions are distributed, and clients decode — the same
// Algorithm 2 flow as stacked synthesis.
func (p *E2EPipeline) Synthesize(n int, sample bool) (*tabular.Table, error) {
	span := p.Rec.StartSpan("synthesis")
	span.SetAttr("rows", n)
	span.SetAttr("steps", p.Cfg.SynthSteps)
	defer span.End()
	p.Rec.ProfilePhaseStart("synthesis")
	defer p.Rec.ProfilePhaseEnd("synthesis")
	z := p.gauss.Sample(p.rng, netPredictor{p.net}, n, p.net.In, p.Cfg.SynthSteps, 0)
	parts, err := p.Coord.splitLatents(z)
	if err != nil {
		return nil, err
	}
	if err := p.Coord.DistributeLatents(p.Bus, parts); err != nil {
		return nil, err
	}
	out := make([]*tabular.Table, len(p.Clients))
	for _, c := range p.Clients {
		env, err := p.Bus.Recv(c.ID)
		if err != nil {
			return nil, err
		}
		ci := clientIndex(c.ID)
		out[ci], err = c.DecodeLatents(env.Payload, sample)
		if err != nil {
			return nil, err
		}
	}
	return tabular.JoinVertical(p.Schema, p.Parts, out)
}

// netPredictor adapts a raw backbone to the diffusion.NoisePredictor
// interface in evaluation mode.
type netPredictor struct{ net *nn.DiffusionMLP }

func (n netPredictor) Predict(x *tensor.Matrix, ts []int) *tensor.Matrix {
	return n.net.Forward(x, ts, false)
}
