//silofuse:bitwise-ok chaos recovery tests pin bit-identical recovery against fault-free baselines
package silo

import (
	"errors"
	"strings"
	"testing"
	"time"

	"silofuse/internal/datagen"
	"silofuse/internal/obs"
	"silofuse/internal/tabular"
)

// resilientChaos builds the standard fault-tolerant test stack: a LocalBus
// wrapped in a seeded ChaosBus and a ResilientBus with no-op backoff sleeps
// (the retry schedule is deterministic either way; sleeping only adds
// wall-clock to the suite).
func resilientChaos(seed int64, prof ChaosProfile) (*ResilientBus, *ChaosBus) {
	cb := NewChaosBus(NewLocalBus(), seed, prof)
	cfg := DefaultResilientConfig()
	cfg.Sleep = func(time.Duration) {}
	return NewResilientBus(cb, cfg), cb
}

func mustProfile(t *testing.T, name string) ChaosProfile {
	t.Helper()
	prof, err := ChaosProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func sameTable(t *testing.T, label string, a, b *tabular.Table) {
	t.Helper()
	if a.Data.Rows != b.Data.Rows || a.Data.Cols != b.Data.Cols {
		t.Fatalf("%s: output shape %dx%d, want %dx%d", label, b.Data.Rows, b.Data.Cols, a.Data.Rows, a.Data.Cols)
	}
	for i, v := range a.Data.Data {
		if b.Data.Data[i] != v {
			t.Fatalf("%s: output diverges at element %d: %v vs %v", label, i, b.Data.Data[i], v)
		}
	}
}

// chaosStackedRun trains a small stacked pipeline over bus and synthesises
// with mean decoding, returning everything needed for bit-identity checks.
func chaosStackedRun(t *testing.T, bus Bus) (aeLoss, diffLoss float64, out *tabular.Table) {
	t.Helper()
	tb := loanTable(t, 150)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 60
	p, err := NewPipeline(bus, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aeLoss, diffLoss, err = p.TrainStacked()
	if err != nil {
		t.Fatal(err)
	}
	out, err = p.SynthesizeShared(0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	return aeLoss, diffLoss, out
}

// TestChaosMatrixStackedTransparent is the stacked-training and synthesis
// arm of the chaos matrix: under every transparently recoverable fault
// class, at several chaos seeds, training losses and synthesised output are
// bit-identical to the fault-free baseline — the resilient layer absorbs
// the faults without perturbing a single float.
func TestChaosMatrixStackedTransparent(t *testing.T) {
	baseAE, baseDiff, baseOut := chaosStackedRun(t, NewLocalBus())
	for _, name := range []string{"drop", "dup", "reorder", "delay", "flaky"} {
		for _, seed := range []int64{1, 7} {
			rb, cb := resilientChaos(seed, mustProfile(t, name))
			ae, diff, out := chaosStackedRun(t, rb)
			label := name + "/stacked"
			if ae != baseAE || diff != baseDiff {
				t.Fatalf("%s seed %d: losses (%v, %v) diverge from baseline (%v, %v)",
					label, seed, ae, diff, baseAE, baseDiff)
			}
			sameTable(t, label, baseOut, out)
			faults := cb.FaultStats()
			rexmit := rb.Stats().ByKind[KindRetransmit]
			if (faults.Drops > 0) != (rexmit > 0) {
				t.Fatalf("%s seed %d: %d drops but %d retransmit bytes", label, seed, faults.Drops, rexmit)
			}
			// A duplicated final message can sit unconsumed in the inbox
			// after training completes, so dups do not force redeliveries
			// on the sparse stacked stream; the dense VFL matrix pins that
			// implication instead.
		}
	}
}

// chaosVFLSetup builds the partitioned-features classification task shared
// by the VFL chaos tests.
func chaosVFLSetup(t *testing.T) (silos []*tabular.Table, labels []int, cfg VFLConfig) {
	t.Helper()
	spec, err := datagen.ByName("cardio")
	if err != nil {
		t.Fatal(err)
	}
	tb := spec.Generate(400, 3)
	labels = tb.CatColumn(0)
	featIdx := make([]int, 0, tb.Schema.NumColumns()-1)
	for j := 1; j < tb.Schema.NumColumns(); j++ {
		featIdx = append(featIdx, j)
	}
	features := tb.SelectColumns(featIdx)
	parts, err := features.Schema.Partition(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	silos = features.VerticalPartition(parts)
	cfg = VFLConfig{Classes: tb.Schema.Columns[0].Cardinality, EmbedDim: 8, HeadDim: 16, LR: 2e-3, Seed: 1}
	return silos, labels, cfg
}

// chaosVFLRun trains a fresh split classifier over bus and returns the
// final loss plus predictions for bit-identity comparison.
func chaosVFLRun(t *testing.T, bus Bus) (float64, []int) {
	t.Helper()
	silos, labels, cfg := chaosVFLSetup(t)
	v, err := NewVFLClassifier(silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := v.Train(bus, silos, labels, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := v.Predict(silos)
	if err != nil {
		t.Fatal(err)
	}
	return loss, pred
}

// TestChaosMatrixVFLTransparent is the split-learning arm of the matrix:
// VFL training over every transparently recoverable fault class recovers
// the exact fault-free loss and predictions. The dense message stream
// (4 messages x 100 iterations) makes every fault class actually fire,
// which the fault counters pin.
func TestChaosMatrixVFLTransparent(t *testing.T) {
	baseLoss, basePred := chaosVFLRun(t, NewLocalBus())
	for _, name := range []string{"drop", "dup", "reorder", "delay", "flaky"} {
		t.Run(name, func(t *testing.T) {
			rb, cb := resilientChaos(3, mustProfile(t, name))
			loss, pred := chaosVFLRun(t, rb)
			if loss != baseLoss {
				t.Fatalf("%s: vfl loss %v diverges from baseline %v", name, loss, baseLoss)
			}
			for i := range basePred {
				if pred[i] != basePred[i] {
					t.Fatalf("%s: prediction %d diverges", name, i)
				}
			}
			faults := cb.FaultStats()
			switch name {
			case "drop":
				if faults.Drops == 0 || rb.Stats().ByKind[KindRetransmit] == 0 {
					t.Fatalf("drop profile injected %d drops, %d retransmit bytes", faults.Drops, rb.Stats().ByKind[KindRetransmit])
				}
			case "dup":
				if faults.Dups == 0 || rb.Redeliveries() == 0 {
					t.Fatalf("dup profile injected %d dups, %d redeliveries", faults.Dups, rb.Redeliveries())
				}
			case "delay":
				if faults.Delays == 0 {
					t.Fatal("delay profile injected no delays")
				}
			}
		})
	}
}

// TestChaosCrashRecoveryStacked exercises the crash fault class end to end:
// client c1 dies on its first upload, the coordinator is notified in-band,
// TrainStackedResilient revives the peer and re-runs only the interrupted
// latent-ship phase — and the recovered run is bit-identical to the
// fault-free baseline (encoding is deterministic, so the replayed phase
// draws no randomness).
func TestChaosCrashRecoveryStacked(t *testing.T) {
	baseAE, baseDiff, baseOut := chaosStackedRun(t, NewLocalBus())

	rb, cb := resilientChaos(2, mustProfile(t, "crash"))
	tb := loanTable(t, 150)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 40, 60
	p, err := NewPipeline(rb, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	revived := ""
	rc := RecoveryConfig{OnPeerDead: func(peer string) error {
		revived = peer
		cb.Revive(peer)
		return nil
	}}
	ae, diff, ck, err := p.TrainStackedResilient(rc)
	if err != nil {
		t.Fatal(err)
	}
	if revived != "c1" {
		t.Fatalf("recovery hook revived %q, want c1", revived)
	}
	if ck.Phase != PhaseDiffusion {
		t.Fatalf("checkpoint phase %d, want %d", ck.Phase, PhaseDiffusion)
	}
	if got := cb.FaultStats().Crashes; got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
	if ae != baseAE || diff != baseDiff {
		t.Fatalf("crash recovery losses (%v, %v) diverge from baseline (%v, %v)", ae, diff, baseAE, baseDiff)
	}
	out, err := p.SynthesizeShared(0, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, "crash/stacked", baseOut, out)
}

// TestChaosCrashRecoveryVFL: the crash class against split learning — c1
// dies on its very first send, TrainResilient restores the iteration-0
// checkpoint after the revive, and the recovered run matches the fault-free
// baseline bit for bit (per-iteration rng derivation replays the exact
// batch stream).
func TestChaosCrashRecoveryVFL(t *testing.T) {
	baseLoss, basePred := chaosVFLRun(t, NewLocalBus())

	rb, cb := resilientChaos(5, mustProfile(t, "crash"))
	silos, labels, cfg := chaosVFLSetup(t)
	v, err := NewVFLClassifier(silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc := RecoveryConfig{OnPeerDead: func(peer string) error {
		cb.Revive(peer)
		return nil
	}}
	loss, err := v.TrainResilient(rb, silos, labels, 100, 64, 25, rc)
	if err != nil {
		t.Fatal(err)
	}
	if loss != baseLoss {
		t.Fatalf("vfl crash recovery loss %v diverges from baseline %v", loss, baseLoss)
	}
	pred, err := v.Predict(silos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range basePred {
		if pred[i] != basePred[i] {
			t.Fatalf("vfl crash recovery prediction %d diverges", i)
		}
	}
	if got := cb.FaultStats().Crashes; got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
}

// TestChaosCorruptFailsTyped: payload corruption must never silently poison
// training — the checksum catches the flipped bit and the run fails with
// the typed ErrCorruptPayload instead of hanging or converging on garbage.
func TestChaosCorruptFailsTyped(t *testing.T) {
	// Dense VFL traffic with the stock 12% corruption rate: a corrupt
	// message is statistically certain within the first iterations.
	rb, _ := resilientChaos(4, mustProfile(t, "corrupt"))
	silos, labels, cfg := chaosVFLSetup(t)
	v, err := NewVFLClassifier(silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Train(rb, silos, labels, 100, 64); !errors.Is(err, ErrCorruptPayload) {
		t.Fatalf("vfl over corrupt profile: err = %v, want ErrCorruptPayload", err)
	}

	// Stacked training ships only a couple of messages, so pin the path
	// with a corrupt-everything profile instead of relying on the hash.
	rb2, _ := resilientChaos(4, ChaosProfile{Name: "corrupt-all", CorruptPermille: 1000})
	tb := loanTable(t, 120)
	pcfg := smallConfig(2)
	pcfg.AEIters, pcfg.DiffIters = 10, 10
	p, err := NewPipeline(rb2, tb, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.TrainStacked(); !errors.Is(err, ErrCorruptPayload) {
		t.Fatalf("stacked over corrupt-all: err = %v, want ErrCorruptPayload", err)
	}
}

// TestChaosBlackholeFailsTyped: a link that drops everything must exhaust
// the bounded retry budget and surface the typed ErrPeerDead — promptly,
// not hang (the no-op sleep makes the whole budget run in microseconds).
func TestChaosBlackholeFailsTyped(t *testing.T) {
	rb, _ := resilientChaos(1, mustProfile(t, "blackhole"))
	tb := loanTable(t, 120)
	cfg := smallConfig(2)
	cfg.AEIters, cfg.DiffIters = 10, 10
	p, err := NewPipeline(rb, tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, trainErr := p.TrainStacked()
	if !errors.Is(trainErr, ErrPeerDead) {
		t.Fatalf("stacked over blackhole: err = %v, want ErrPeerDead", trainErr)
	}
	var pd *PeerDeadError
	if !errors.As(trainErr, &pd) || pd.Peer == "" {
		t.Fatalf("blackhole error %v does not name the dead peer", trainErr)
	}

	silos, labels, vcfg := chaosVFLSetup(t)
	v, err := NewVFLClassifier(silos, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	rb2, _ := resilientChaos(1, mustProfile(t, "blackhole"))
	if _, err := v.Train(rb2, silos, labels, 10, 64); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("vfl over blackhole: err = %v, want ErrPeerDead", err)
	}
}

// TestResilientByteAccounting pins the goodput/retransmit split the bench
// tables rely on: total modelled bytes decompose exactly into per-kind
// goodput plus the retransmit bucket, goodput is invariant across chaos
// seeds (first transmissions are the application's message stream, which
// recovery replays exactly), and a fault-free resilient run costs the same
// modelled bytes as a bare LocalBus run.
func TestResilientByteAccounting(t *testing.T) {
	bare := NewLocalBus()
	baseLoss, _ := chaosVFLRun(t, bare)
	bareBytes := bare.Stats().Bytes

	cfgR := DefaultResilientConfig()
	cfgR.Sleep = func(time.Duration) {}
	clean := NewResilientBus(NewLocalBus(), cfgR)
	if loss, _ := chaosVFLRun(t, clean); loss != baseLoss {
		t.Fatalf("fault-free resilient run loss %v diverges from bare bus %v", loss, baseLoss)
	}
	cleanStats := clean.Stats()
	if cleanStats.Bytes != bareBytes {
		t.Fatalf("fault-free resilient bytes %d != bare bus bytes %d (sequencing must not change the cost model)", cleanStats.Bytes, bareBytes)
	}
	if cleanStats.ByKind[KindRetransmit] != 0 {
		t.Fatalf("fault-free run booked %d retransmit bytes", cleanStats.ByKind[KindRetransmit])
	}

	for seed := int64(1); seed <= 5; seed++ {
		rb, cb := resilientChaos(seed, mustProfile(t, "drop"))
		if loss, _ := chaosVFLRun(t, rb); loss != baseLoss {
			t.Fatalf("seed %d: loss diverges under drop profile", seed)
		}
		st := rb.Stats()
		var byKind int64
		for _, b := range st.ByKind {
			byKind += b
		}
		if byKind != st.Bytes {
			t.Fatalf("seed %d: ByKind sums to %d, Bytes = %d", seed, byKind, st.Bytes)
		}
		goodput := st.Bytes - st.ByKind[KindRetransmit]
		if goodput != bareBytes {
			t.Fatalf("seed %d: goodput %d != fault-free bytes %d", seed, goodput, bareBytes)
		}
		if st.Messages != cleanStats.Messages {
			t.Fatalf("seed %d: %d goodput messages, want %d", seed, st.Messages, cleanStats.Messages)
		}
		for kind, b := range cleanStats.ByKind {
			if st.ByKind[kind] != b {
				t.Fatalf("seed %d: ByKind[%s] = %d, want %d (per-kind goodput must be seed-invariant)", seed, kind, st.ByKind[kind], b)
			}
		}
		if cb.FaultStats().Drops == 0 || st.ByKind[KindRetransmit] == 0 {
			t.Fatalf("seed %d: drop profile injected no observable faults", seed)
		}
		if rb.Retries() == 0 {
			t.Fatalf("seed %d: retransmit bytes booked but no retries counted", seed)
		}
	}
}

// TestResilientWireSizePinnedOverTCP pins the resilient layer's modelled
// byte accounting against real gob framing: the sequencing and checksum
// fields it adds to every envelope must stay inside the documented
// WireSizeFactor/WireSizeSlack tolerance, so Table VIII numbers computed
// from the modelled split remain faithful to measured traffic.
func TestResilientWireSizePinnedOverTCP(t *testing.T) {
	hub, err := NewTCPHub("coord", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	peers := make(map[string]*TCPPeer, 2)
	for _, name := range []string{"c0", "c1"} {
		p, err := DialHub(name, hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[name] = p
	}
	cfg := DefaultResilientConfig()
	cfg.Sleep = func(time.Duration) {}
	rb := NewResilientBus(&testRoutedBus{hub: hub, peers: peers}, cfg)

	tb := loanTable(t, 120)
	pcfg := smallConfig(2)
	pcfg.AEIters, pcfg.DiffIters = 10, 10
	pipe, err := NewPipeline(rb, tb, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pipe.TrainStacked(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.SynthesizeShared(0, 30, false); err != nil {
		t.Fatal(err)
	}

	measured := hub.Stats().Bytes
	for _, p := range peers {
		measured += p.Stats().Bytes
	}
	modelled := rb.Stats().Bytes
	// The WireSizeFactor/WireSizeSlack tolerance is documented per gob
	// stream (each encoder emits its own one-time type descriptor); this
	// run aggregates four send streams — two peer->hub, two hub->peer — so
	// the slack applies once per stream.
	const streams = 4
	bound := int64(WireSizeFactor*float64(modelled)) + streams*WireSizeSlack
	if measured == 0 || modelled == 0 {
		t.Fatalf("no traffic recorded: measured %d, modelled %d", measured, modelled)
	}
	if measured > bound {
		t.Fatalf("measured %d bytes exceed tolerance %d of modelled %d", measured, bound, modelled)
	}
}

// TestResilientRetryMetrics: the retry/redelivery path must be visible in
// the observability layer, not just the Stats split.
func TestResilientRetryMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	rb, _ := resilientChaos(3, mustProfile(t, "drop"))
	rb.SetRecorder(rec)
	silos, labels, cfg := chaosVFLSetup(t)
	v, err := NewVFLClassifier(silos, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Train(rb, silos, labels, 60, 64); err != nil {
		t.Fatal(err)
	}
	counters := rec.Snapshot().Counters
	var retries int64
	for name, val := range counters {
		if strings.HasPrefix(name, "bus_retries_total") {
			retries += val
		}
	}
	if retries == 0 {
		t.Fatalf("no bus_retries_total counters recorded: %v", counters)
	}
	if retries != rb.Retries() {
		t.Fatalf("metrics count %v retries, bus counted %d", retries, rb.Retries())
	}
}
