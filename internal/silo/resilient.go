package silo

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"silofuse/internal/obs"
)

// ResilientConfig tunes the reliable-delivery wrapper.
type ResilientConfig struct {
	// MaxAttempts bounds transmissions per message (first try + retries).
	MaxAttempts int
	// BackoffBase is the wait before the first retry; each further retry
	// doubles it, capped at BackoffCap. The schedule is a pure function of
	// the attempt number — no clock reads — so retry timing never perturbs
	// determinism.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// SendDeadline, when > 0, is forwarded to transports that support
	// per-message IO deadlines (TCPHub/TCPPeer write deadlines), so a send
	// into a dead socket fails instead of blocking forever.
	SendDeadline time.Duration
	// Sleep performs the backoff wait; nil means time.Sleep. Tests inject a
	// no-op to run dense retry schedules instantly.
	Sleep func(time.Duration)
}

// DefaultResilientConfig returns the production retry policy: 4 attempts
// with 2ms→50ms exponential backoff. The recoverable chaos profiles keep
// their consecutive-drop bounds below this attempt budget.
func DefaultResilientConfig() ResilientConfig {
	return ResilientConfig{MaxAttempts: 4, BackoffBase: 2 * time.Millisecond, BackoffCap: 50 * time.Millisecond}
}

// deadlineSetter is implemented by transports with per-message IO deadlines.
type deadlineSetter interface {
	SetIOTimeout(d time.Duration)
}

// ResilientBus wraps a Bus with reliable, idempotent, integrity-checked
// delivery: every application send is stamped with a per-link sequence
// number and an FNV-1a payload checksum, failed sends are retried up to
// MaxAttempts times under deterministic exponential backoff, and the
// receive side deduplicates and reorders by sequence number so the
// application observes exactly the fault-free message stream. Failures
// that survive the retry budget surface as typed errors: ErrPeerDead when
// a party is unreachable, ErrCorruptPayload when a checksum fails.
//
// Stats reports the modelled wire cost of every transmission attempt,
// split so Table VIII numbers stay faithful under faults: ByKind[app kind]
// counts first transmissions only (goodput, invariant across chaos seeds)
// and ByKind[KindRetransmit] collects all re-sent bytes; Bytes is their
// sum. Transport-measured bytes remain available on the wrapped bus.
type ResilientBus struct {
	inner Bus
	cfg   ResilientConfig
	rec   *obs.Recorder

	mu sync.Mutex
	//silofuse:guardedby mu
	nextSeq map[string]uint64 // link -> last assigned seq
	//silofuse:guardedby mu
	expect map[string]uint64 // link -> next expected seq
	//silofuse:guardedby mu
	pending map[string]map[uint64]*Envelope // out-of-order buffer per link
	//silofuse:guardedby mu
	ready        map[string][]*Envelope // in-order queue per recipient
	stats        Stats                  //silofuse:guardedby mu
	retries      int64                  //silofuse:guardedby mu
	redeliveries int64                  //silofuse:guardedby mu
}

// NewResilientBus wraps inner with the given retry policy; zero cfg fields
// take the DefaultResilientConfig values.
func NewResilientBus(inner Bus, cfg ResilientConfig) *ResilientBus {
	def := DefaultResilientConfig()
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = def.BackoffBase
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = def.BackoffCap
	}
	if cfg.SendDeadline > 0 {
		if ds, ok := inner.(deadlineSetter); ok {
			ds.SetIOTimeout(cfg.SendDeadline)
		}
	}
	return &ResilientBus{
		inner:   inner,
		cfg:     cfg,
		nextSeq: make(map[string]uint64),
		expect:  make(map[string]uint64),
		pending: make(map[string]map[uint64]*Envelope),
		ready:   make(map[string][]*Envelope),
		stats:   Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)},
	}
}

// SetRecorder implements RecorderSetter: retry/redelivery metrics land on
// rec, and the recorder is forwarded to the wrapped transport for its
// per-message telemetry.
func (r *ResilientBus) SetRecorder(rec *obs.Recorder) {
	r.rec = rec
	if rs, ok := r.inner.(RecorderSetter); ok {
		rs.SetRecorder(rec)
	}
}

// checksumEnvelope hashes the routing fields, sequence number and payload
// bits with 64-bit FNV-1a. Flow and Rexmit are excluded: they legitimately
// differ between transmission attempts of the same message. A zero result
// is mapped to 1 so 0 keeps meaning "no checksum".
func checksumEnvelope(e *Envelope) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, s := range []string{e.From, e.To, string(e.Kind)} {
		h = (h ^ uint64(len(s))) * prime
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
	}
	h = (h ^ e.Seq) * prime
	h = (h ^ uint64(len(e.Blob))) * prime
	for _, b := range e.Blob {
		h = (h ^ uint64(b)) * prime
	}
	// Codec-framed envelopes fold the codec id and blob dimensions in, so a
	// corrupted shape fails verification exactly like a corrupted value.
	// Unframed envelopes skip the folds, keeping their checksums identical
	// to the pre-codec wire format.
	if e.Codec != 0 {
		h = (h ^ uint64(e.Codec)) * prime
		h = (h ^ uint64(e.Rows)) * prime
		h = (h ^ uint64(e.Cols)) * prime
	}
	if e.Payload != nil {
		h = (h ^ uint64(e.Payload.Rows)) * prime
		h = (h ^ uint64(e.Payload.Cols)) * prime
		for _, v := range e.Payload.Data {
			h = (h ^ math.Float64bits(v)) * prime
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// backoff returns the deterministic wait before the given attempt (>= 2).
func (r *ResilientBus) backoff(attempt int) time.Duration {
	d := r.cfg.BackoffBase << uint(attempt-2)
	if d > r.cfg.BackoffCap || d <= 0 {
		d = r.cfg.BackoffCap
	}
	return d
}

func (r *ResilientBus) sleep(d time.Duration) {
	if r.cfg.Sleep != nil {
		r.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// account books one transmission attempt in the modelled stats.
func (r *ResilientBus) account(e *Envelope, size int64) {
	r.mu.Lock()
	if e.Rexmit {
		r.retries++
		r.stats.ByKind[KindRetransmit] += size
	} else {
		r.stats.Messages++
		r.stats.ByKind[e.Kind] += size
	}
	r.stats.Bytes += size
	r.stats.BytesByDir[e.From+"->"+e.To] += size
	r.mu.Unlock()
}

// Send implements Bus with sequencing, checksumming and bounded retries.
// Control envelopes (heartbeat, peer-down) pass through unsequenced.
func (r *ResilientBus) Send(e *Envelope) error {
	if e.Kind == KindHeartbeat || e.Kind == KindPeerDown {
		return r.inner.Send(e)
	}
	link := e.From + "->" + e.To
	r.mu.Lock()
	r.nextSeq[link]++
	e.Seq = r.nextSeq[link]
	r.mu.Unlock()
	e.Sum = checksumEnvelope(e)
	size := e.WireSize()
	var err error
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		send := e
		if attempt > 1 {
			d := r.backoff(attempt)
			if r.rec != nil {
				r.rec.Retry(string(e.Kind), d)
			}
			r.sleep(d)
			cp := *e
			cp.Rexmit = true
			cp.Flow = 0 // each attempt gets its own trace context
			send = &cp
		}
		r.account(send, size)
		err = r.inner.Send(send)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrPeerDead) {
			return err
		}
	}
	return &PeerDeadError{Peer: e.To, Cause: fmt.Errorf("%d attempts exhausted: %w", r.cfg.MaxAttempts, err)}
}

// Recv implements Bus: it delivers exactly the sender's application
// message stream per link — duplicates discarded, out-of-order envelopes
// buffered until their predecessors arrive, checksums verified. A
// peer-down notice surfaces as a PeerDeadError instead of a message.
func (r *ResilientBus) Recv(to string) (*Envelope, error) {
	for {
		r.mu.Lock()
		if q := r.ready[to]; len(q) > 0 {
			e := q[0]
			r.ready[to] = q[1:]
			r.mu.Unlock()
			return e, nil
		}
		r.mu.Unlock()
		e, err := r.inner.Recv(to)
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case KindHeartbeat:
			continue
		case KindPeerDown:
			if r.rec != nil {
				r.rec.PeerDown(e.From)
			}
			return nil, &PeerDeadError{Peer: e.From}
		}
		// Discard stale duplicates by sequence number before checksum
		// validation, as a real stack discards duplicate segments: the
		// in-order copy already delivered, so whatever this late copy's
		// payload looks like must not fail the run.
		if e.Seq != 0 {
			link := e.From + "->" + e.To
			r.mu.Lock()
			if exp := r.expect[link]; exp != 0 && e.Seq < exp {
				r.redeliveries++
				r.mu.Unlock()
				if r.rec != nil {
					r.rec.Redelivery(string(e.Kind))
				}
				continue
			}
			r.mu.Unlock()
		}
		if e.Sum != 0 && checksumEnvelope(e) != e.Sum {
			if r.rec != nil {
				r.rec.CorruptPayload(string(e.Kind))
			}
			return nil, fmt.Errorf("silo: %s->%s %s seq %d failed checksum: %w", e.From, e.To, e.Kind, e.Seq, ErrCorruptPayload)
		}
		if e.Seq == 0 {
			return e, nil // unsequenced sender (bare bus)
		}
		link := e.From + "->" + e.To
		r.mu.Lock()
		exp := r.expect[link]
		if exp == 0 {
			exp = 1
		}
		switch {
		case e.Seq < exp: // already delivered: duplicate
			r.redeliveries++
			r.mu.Unlock()
			if r.rec != nil {
				r.rec.Redelivery(string(e.Kind))
			}
		case e.Seq > exp: // early: hold until the gap fills
			pm := r.pending[link]
			if pm == nil {
				pm = make(map[uint64]*Envelope)
				r.pending[link] = pm
			}
			_, dup := pm[e.Seq]
			if !dup {
				pm[e.Seq] = e
			} else {
				r.redeliveries++
			}
			r.mu.Unlock()
			if dup && r.rec != nil {
				r.rec.Redelivery(string(e.Kind))
			}
		default: // in order: deliver, then release consecutive holds
			r.expect[link] = exp + 1
			pm := r.pending[link]
			for {
				next, ok := pm[r.expect[link]]
				if !ok {
					break
				}
				delete(pm, r.expect[link])
				r.expect[link]++
				r.ready[to] = append(r.ready[to], next)
			}
			r.mu.Unlock()
			return e, nil
		}
	}
}

// Reset implements Resetter: it drains undelivered messages for the given
// parties from the wrapped transport and clears all sequencing state, so a
// phase re-run after a failure starts from a clean channel (stale
// envelopes from the aborted attempt would otherwise collide with the
// fresh sequence numbers).
func (r *ResilientBus) Reset(parties []string) {
	if tr, ok := r.inner.(TryReceiver); ok {
		for _, p := range parties {
			for {
				if _, ok := tr.TryRecv(p); !ok {
					break
				}
			}
		}
	}
	r.mu.Lock()
	r.nextSeq = make(map[string]uint64)
	r.expect = make(map[string]uint64)
	r.pending = make(map[string]map[uint64]*Envelope)
	r.ready = make(map[string][]*Envelope)
	r.mu.Unlock()
}

// Stats implements Bus with the modelled attempt-level accounting
// described on the type.
func (r *ResilientBus) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return copyStats(r.stats)
}

// Retries reports the number of retransmission attempts issued.
func (r *ResilientBus) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Redeliveries reports the number of receiver-side duplicate discards.
func (r *ResilientBus) Redeliveries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redeliveries
}
