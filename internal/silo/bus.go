// Package silo implements the cross-silo fabric of the paper: clients that
// own vertical feature partitions and private autoencoders, a coordinator
// that owns the diffusion backbone, message transports with exact byte
// accounting, the stacked training protocol (Algorithm 1), distributed
// synthesis (Algorithm 2), and the end-to-end split-learning baseline
// (E2EDistr) whose communication grows with the iteration count.
package silo

import (
	"fmt"
	"sync"

	"silofuse/internal/tensor"
)

// Kind tags protocol messages.
type Kind string

// Protocol message kinds.
const (
	KindLatents     Kind = "latents"      // client -> coordinator, encoded latents
	KindSynthReq    Kind = "synth-req"    // client -> coordinator, synthesis request
	KindSynthLatent Kind = "synth-latent" // coordinator -> client, synthetic latent partition
	KindActivation  Kind = "activation"   // client -> coordinator, E2E forward activations
	KindDenoised    Kind = "denoised"     // coordinator -> client, E2E denoised latents
	KindGradUp      Kind = "grad-up"      // client -> coordinator, E2E decoder-loss gradients
	KindGradDown    Kind = "grad-down"    // coordinator -> client, E2E encoder gradients
)

// Envelope is one protocol message. Payload may be nil for control
// messages.
type Envelope struct {
	From, To string
	Kind     Kind
	Payload  *tensor.Matrix
}

// WireSize returns the message's size in bytes as transmitted: a fixed
// header plus 8 bytes per float64 payload element. The TCP transport's gob
// framing matches this within a few bytes; experiments use this exact
// arithmetic so Figure 10 is reproducible bit-for-bit.
func (e *Envelope) WireSize() int64 {
	const header = 64 // from/to/kind strings + matrix dims + framing
	if e.Payload == nil {
		return header
	}
	return header + int64(8*len(e.Payload.Data))
}

// Stats aggregates transport traffic.
type Stats struct {
	Messages   int64
	Bytes      int64
	BytesByDir map[string]int64 // "from->to" aggregate
}

// Bus moves envelopes between named parties and accounts for every byte.
type Bus interface {
	// Send delivers an envelope to the recipient's inbox.
	Send(e *Envelope) error
	// Recv blocks until a message for the recipient arrives.
	Recv(to string) (*Envelope, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// LocalBus is an in-process Bus using buffered channels. It is
// deterministic for single-producer/single-consumer pairs and counts wire
// sizes exactly as the TCP transport would.
type LocalBus struct {
	mu     sync.Mutex
	boxes  map[string]chan *Envelope
	stats  Stats
	closed bool
}

// NewLocalBus creates a bus with the given inbox capacity per party.
func NewLocalBus() *LocalBus {
	return &LocalBus{
		boxes: make(map[string]chan *Envelope),
		stats: Stats{BytesByDir: make(map[string]int64)},
	}
}

func (b *LocalBus) box(name string) chan *Envelope {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.boxes[name]; ok {
		return ch
	}
	ch := make(chan *Envelope, 1024)
	b.boxes[name] = ch
	return ch
}

// Send implements Bus.
func (b *LocalBus) Send(e *Envelope) error {
	if e.To == "" {
		return fmt.Errorf("silo: envelope has no recipient")
	}
	size := e.WireSize()
	b.mu.Lock()
	b.stats.Messages++
	b.stats.Bytes += size
	b.stats.BytesByDir[e.From+"->"+e.To] += size
	b.mu.Unlock()
	b.box(e.To) <- e
	return nil
}

// Recv implements Bus.
func (b *LocalBus) Recv(to string) (*Envelope, error) {
	e, ok := <-b.box(to)
	if !ok {
		return nil, fmt.Errorf("silo: inbox %q closed", to)
	}
	return e, nil
}

// Stats implements Bus.
func (b *LocalBus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := Stats{Messages: b.stats.Messages, Bytes: b.stats.Bytes, BytesByDir: make(map[string]int64, len(b.stats.BytesByDir))}
	for k, v := range b.stats.BytesByDir {
		out.BytesByDir[k] = v
	}
	return out
}
