// Package silo implements the cross-silo fabric of the paper: clients that
// own vertical feature partitions and private autoencoders, a coordinator
// that owns the diffusion backbone, message transports with exact byte
// accounting, the stacked training protocol (Algorithm 1), distributed
// synthesis (Algorithm 2), and the end-to-end split-learning baseline
// (E2EDistr) whose communication grows with the iteration count.
package silo

import (
	"fmt"
	"sync"

	"silofuse/internal/obs"
	"silofuse/internal/silo/codec"
	"silofuse/internal/tensor"
)

// Kind tags protocol messages.
type Kind string

// Protocol message kinds.
const (
	KindLatents     Kind = "latents"      // client -> coordinator, encoded latents
	KindSynthReq    Kind = "synth-req"    // client -> coordinator, synthesis request
	KindSynthLatent Kind = "synth-latent" // coordinator -> client, synthetic latent partition
	KindActivation  Kind = "activation"   // client -> coordinator, E2E forward activations
	KindDenoised    Kind = "denoised"     // coordinator -> client, E2E denoised latents
	KindGradUp      Kind = "grad-up"      // client -> coordinator, E2E decoder-loss gradients
	KindGradDown    Kind = "grad-down"    // coordinator -> client, E2E encoder gradients
	// KindGrad carries data-parallel diffusion training traffic in both
	// directions: per-shard gradients (worker -> root) and the reduced
	// update broadcast (root -> worker), as a binary frame in Blob with
	// Codec 0 (see internal/silo/ddp.go for the layout).
	KindGrad Kind = "grad"
)

// Control and accounting kinds of the fault-tolerance layer. KindRetransmit
// never appears on an envelope: it is the Stats.ByKind bucket that collects
// the bytes of every re-sent attempt, so ByKind[app kind] stays pure goodput
// (first transmissions only) and Table VIII numbers survive a lossy network.
const (
	KindRetransmit Kind = "retransmit" // accounting bucket for re-sent bytes
	KindHeartbeat  Kind = "heartbeat"  // peer -> hub liveness beacon
	KindPeerDown   Kind = "peer-down"  // transport-injected death notice; From = dead peer
)

// KindTelemetry carries telemetry federation updates (party -> coordinator,
// JSON-encoded obs.TelemetryUpdate in Envelope.Blob). It rides the same
// sequenced, checksummed delivery path as application traffic, but its bytes
// land in their own Stats.ByKind bucket so the paper's communication tables
// (goodput per application kind) never include observability overhead.
const KindTelemetry Kind = "telemetry"

// Envelope is one protocol message. Payload may be nil for control
// messages.
//
// Flow is the distributed trace context: a run-unique id stamped by the
// sending transport when a recorder is attached (obs.Recorder.NextFlow folds
// the sender's trace pid into the high bits). It travels in the wire framing,
// and both endpoints record matching flow events, so traces from separate
// processes merge into one timeline with send→recv arrows between lanes.
// Zero means "no trace context".
// Seq, Sum and Rexmit belong to the resilient delivery layer and are zero
// on a bare bus (gob omits zero fields, so unwrapped runs pay no wire
// bytes for them): Seq numbers each From->To link's messages from 1 for
// receiver-side dedup and reordering, Sum is an FNV-1a checksum over the
// routing fields and payload bits, and Rexmit marks a retry attempt so
// transports account its bytes under KindRetransmit instead of the
// message's own kind.
// Blob carries opaque non-tensor payloads: telemetry federation updates
// (Codec zero) and codec-framed tensor payloads (Codec non-zero). Like the
// resilient fields it is zero on plain application traffic, so gob pays no
// wire bytes for it when unused; its length is charged to WireSize so blob
// traffic is accounted exactly.
// Codec, Rows and Cols belong to the wire-codec layer (see CodecBus): when
// Codec is non-zero, Blob holds the tensor payload encoded by
// internal/silo/codec and Rows/Cols are its dimensions (the dims ride the
// envelope, never the blob, so the f64 blob is exactly 8 bytes per value
// and default-mode byte accounting matches the historical payload model).
// All three are zero on unframed envelopes, costing no wire bytes.
type Envelope struct {
	From, To string
	Kind     Kind
	Payload  *tensor.Matrix
	Blob     []byte
	Codec    codec.ID
	Rows     int
	Cols     int
	Flow     uint64
	Seq      uint64
	Sum      uint64
	Rexmit   bool
}

// statKind returns the Stats.ByKind bucket for this envelope: retransmitted
// attempts land under KindRetransmit so per-kind counters stay goodput.
func (e *Envelope) statKind() Kind {
	if e.Rexmit {
		return KindRetransmit
	}
	return e.Kind
}

// WireSize returns the message's size in bytes under the deterministic cost
// model: a fixed header plus 8 bytes per float64 payload element plus the
// blob length. Experiments use this exact arithmetic so Figure 10 is
// reproducible bit-for-bit.
//
// Codec-framed envelopes (Codec != 0) carry their tensor as Blob, whose
// length is exactly codec.ID.EncodedSize(Rows, Cols), so the model is
// closed-form per codec for an n-value, c-column payload:
//
//	f64: 64 + 8n   (identical to the native payload model — default runs
//	               keep bit-identical per-kind byte accounting)
//	f32: 64 + 4n
//	q8:  64 + 16c + n
//
// TestWireSizeCodecModel pins this arithmetic against the codec package.
//
// The TCP transport's gob framing does NOT match the model exactly; the
// mismatch depends on the payload representation, so the tolerance is
// per stream kind (enforced by TestWireSizeTolerance):
//
//   - Native float64 payloads: gob varint-encodes floats (dense random
//     float64 payloads measure ~9 bytes per element, ~12% over the 8-byte
//     model) and emits a one-time ~120-byte type descriptor per stream.
//     Measured <= WireSizeFactor*modelled + WireSizeSlack.
//   - Codec-framed blobs: gob moves []byte verbatim (1 byte/byte plus a
//     ~10-byte frame), so measured bytes sit slightly BELOW the modelled
//     64-byte header on small messages and within ~0.4% of the model on
//     dense ones. Measured <= CodecWireSizeFactor*modelled +
//     CodecWireSizeSlack.
func (e *Envelope) WireSize() int64 {
	const header = 64 // from/to/kind strings + matrix dims + framing
	size := int64(header) + int64(len(e.Blob))
	if e.Payload != nil {
		size += int64(8 * len(e.Payload.Data))
	}
	return size
}

// Tolerance of measured gob bytes versus the WireSize model, per stream:
// measured <= factor*modelled + slack. The native-payload constants date
// from the gob float64 framing measurements (PR 1); the codec constants
// were re-derived from measured streams of f64/f32/q8-framed envelopes
// (raw []byte framing has no per-value varint waste, so the factor is
// within rounding of 1 and the slack covers the per-stream gob type
// descriptor).
const (
	WireSizeFactor = 1.13
	WireSizeSlack  = 256

	CodecWireSizeFactor = 1.01
	CodecWireSizeSlack  = 256
)

// Stats aggregates transport traffic.
type Stats struct {
	Messages   int64
	Bytes      int64
	BytesByDir map[string]int64 // "from->to" aggregate
	ByKind     map[Kind]int64   // bytes per message kind
}

// RecorderSetter is implemented by transports that can stream per-message
// telemetry (counters, byte totals, send-latency histograms) to an
// obs.Recorder.
type RecorderSetter interface {
	// SetRecorder attaches rec; a nil rec turns telemetry off. Call before
	// traffic starts — transports read the field without synchronisation.
	SetRecorder(rec *obs.Recorder)
}

// Bus moves envelopes between named parties and accounts for every byte.
type Bus interface {
	// Send delivers an envelope to the recipient's inbox.
	Send(e *Envelope) error
	// Recv blocks until a message for the recipient arrives.
	Recv(to string) (*Envelope, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// TryReceiver is implemented by transports whose inboxes can be polled
// without blocking. It powers the chaos layer's receive-side faults and the
// resilient layer's inter-attempt drain.
type TryReceiver interface {
	// TryRecv pops a pending message for the recipient, or returns false
	// immediately when the inbox is empty (or unreachable).
	TryRecv(to string) (*Envelope, bool)
}

// Resetter is implemented by transports that can discard in-flight state
// between recovery attempts: undelivered messages for the given parties and
// any per-link sequencing.
type Resetter interface {
	Reset(parties []string)
}

// LocalBus is an in-process Bus using buffered channels. It is
// deterministic for single-producer/single-consumer pairs and counts wire
// sizes exactly as the TCP transport would.
//
// Close and Send coordinate through closeMu: Send holds the read side for
// the duration of the inbox send, Close takes the write side before closing
// any channel, so a send can never race a close (the classic
// close-then-send panic). rec is deliberately unguarded — SetRecorder's
// contract is "call before traffic starts".
type LocalBus struct {
	mu      sync.Mutex
	boxes   map[string]chan *Envelope //silofuse:guardedby mu
	stats   Stats                     //silofuse:guardedby mu
	closeMu sync.RWMutex
	closed  bool //silofuse:guardedby closeMu
	rec     *obs.Recorder
}

// NewLocalBus creates a bus with the given inbox capacity per party.
func NewLocalBus() *LocalBus {
	return &LocalBus{
		boxes: make(map[string]chan *Envelope),
		stats: Stats{BytesByDir: make(map[string]int64), ByKind: make(map[Kind]int64)},
	}
}

// SetRecorder implements RecorderSetter.
func (b *LocalBus) SetRecorder(rec *obs.Recorder) { b.rec = rec }

func (b *LocalBus) box(name string) chan *Envelope {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.boxes[name]; ok {
		return ch
	}
	ch := make(chan *Envelope, 1024)
	b.boxes[name] = ch
	return ch
}

// Send implements Bus.
func (b *LocalBus) Send(e *Envelope) error {
	if e.To == "" {
		return fmt.Errorf("silo: envelope has no recipient")
	}
	t0 := b.rec.Now()
	if b.rec != nil {
		if e.Flow == 0 {
			e.Flow = b.rec.NextFlow()
		}
		b.rec.Trace.FlowSend(string(e.Kind), e.Flow)
	}
	size := e.WireSize()
	kind := e.statKind()
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		return ErrBusClosed
	}
	b.mu.Lock()
	b.stats.Messages++
	b.stats.Bytes += size
	b.stats.BytesByDir[e.From+"->"+e.To] += size
	b.stats.ByKind[kind] += size
	b.mu.Unlock()
	b.box(e.To) <- e
	b.closeMu.RUnlock()
	if b.rec != nil {
		b.rec.Message(string(kind), size, b.rec.Since(t0))
	}
	return nil
}

// Close marks the bus closed and closes every inbox channel, so blocked
// Recv calls return an error and pollers observe termination. Subsequent
// Sends fail with ErrBusClosed. Close waits for in-flight Sends to finish
// delivering (they hold closeMu's read side), so it must not be called from
// a goroutine a pending Send is waiting on: with an inbox full and its
// reader calling Close instead of Recv, both sides would block forever.
// Close is idempotent.
func (b *LocalBus) Close() error {
	b.closeMu.Lock()
	defer b.closeMu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, ch := range b.boxes {
		close(ch)
	}
	return nil
}

// Recv implements Bus.
func (b *LocalBus) Recv(to string) (*Envelope, error) {
	e, ok := <-b.box(to)
	if !ok {
		return nil, fmt.Errorf("silo: inbox %q closed", to)
	}
	if b.rec != nil {
		b.rec.Trace.FlowRecv(string(e.Kind), e.Flow)
	}
	return e, nil
}

// TryRecv implements TryReceiver: it pops a pending message for the
// recipient without blocking. The chaos layer uses it to look ahead in an
// inbox (reorder/delay faults) and the resilient layer uses it to drain
// stale in-flight messages between recovery attempts.
func (b *LocalBus) TryRecv(to string) (*Envelope, bool) {
	select {
	case e, ok := <-b.box(to):
		if !ok {
			return nil, false
		}
		if b.rec != nil {
			b.rec.Trace.FlowRecv(string(e.Kind), e.Flow)
		}
		return e, true
	default:
		return nil, false
	}
}

// Stats implements Bus.
func (b *LocalBus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return copyStats(b.stats)
}

// copyStats deep-copies a Stats value; callers must hold the owning lock.
func copyStats(s Stats) Stats {
	out := Stats{
		Messages:   s.Messages,
		Bytes:      s.Bytes,
		BytesByDir: make(map[string]int64, len(s.BytesByDir)),
		ByKind:     make(map[Kind]int64, len(s.ByKind)),
	}
	for k, v := range s.BytesByDir {
		out.BytesByDir[k] = v
	}
	for k, v := range s.ByKind {
		out.ByKind[k] = v
	}
	return out
}
