package tensor

import "fmt"

// float32 twins of the hot matmul kernels, used by the reduced-precision
// sampling and decode paths. They mirror the float64 kernels exactly: same
// i-k-j loop order, same 4-way ILP k-row fusion with ascending-k adds per
// output element, same zero-skip scalar fallback, and the same persistent
// worker pool — so serial and pooled execution are bit-identical (in
// float32) and a steady-state call performs zero heap allocations. Halving
// the element width doubles the effective SIMD lanes and cache-resident
// footprint, which is the whole point of this path.

func checkInto32(dst, a, b *Matrix32, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
	if dst == a || dst == b || sharesData32(dst, a) || sharesData32(dst, b) {
		panic(fmt.Sprintf("tensor: %s dst aliases an operand", op))
	}
}

func sharesData32(x, y *Matrix32) bool {
	return len(x.Data) > 0 && len(y.Data) > 0 && &x.Data[0] == &y.Data[0]
}

// MatMul32Into stores a @ b into dst (which must not alias a or b) and
// returns dst — the float32 twin of MatMulInto.
//
//silofuse:noalloc
func MatMul32Into(dst, a, b *Matrix32) *Matrix32 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul32Into shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto32(dst, a, b, a.Rows, b.Cols, "MatMul32Into")
	dispatchKernel32(matmul32Rows, a, b, nil, dst, a.Rows, a.Rows*a.Cols*b.Cols)
	return dst
}

// MatMulAddRow32Into stores a @ b + bias into dst, where bias is a
// 1 x b.Cols row added after each output row's accumulation finishes — the
// float32 twin of MatMulAddRowInto, backing the f32 Linear forward.
//
//silofuse:noalloc
func MatMulAddRow32Into(dst, a, b, bias *Matrix32) *Matrix32 {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAddRow32Into shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias.Rows != 1 || bias.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAddRow32Into bias shape %dx%d, want 1x%d", bias.Rows, bias.Cols, b.Cols))
	}
	checkInto32(dst, a, b, a.Rows, b.Cols, "MatMulAddRow32Into")
	dispatchKernel32(matmulAddRow32Rows, a, b, bias, dst, a.Rows, a.Rows*a.Cols*b.Cols)
	return dst
}

func matmul32Rows(a, b, _, out *Matrix32, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		clear(orow)
		axpyRow32(a.Row(i), b, orow)
	}
}

func matmulAddRow32Rows(a, b, bias, out *Matrix32, lo, hi int) {
	brow0 := bias.Data
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		clear(orow)
		axpyRow32(a.Row(i), b, orow)
		dst := orow[:len(brow0)]
		for j, bv := range brow0 {
			dst[j] += bv
		}
	}
}

// axpyRow32 accumulates arow @ b into orow: four k-rows of b fused per
// pass, adds landing in ascending-k order per output element, zero
// coefficients falling back to the scalar skip loop — structurally
// identical to axpyRow, one rounding per float32 add.
func axpyRow32(arow []float32, b *Matrix32, orow []float32) {
	n := b.Cols
	k := 0
	for ; k+3 < len(arow); k += 4 {
		av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if av0 == 0 || av1 == 0 || av2 == 0 || av3 == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
			axpyScalar32(arow[k:k+4], b, orow, k)
			continue
		}
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		dst := orow[:len(b0)]
		b1 = b1[:len(b0)]
		b2 = b2[:len(b0)]
		b3 = b3[:len(b0)]
		for j := range dst {
			v := dst[j] + av0*b0[j]
			v += av1 * b1[j]
			v += av2 * b2[j]
			v += av3 * b3[j]
			dst[j] = v
		}
	}
	axpyScalar32(arow[k:], b, orow, k)
}

// axpyScalar32 is the one-k-row-at-a-time tail/fallback with the sparse skip.
func axpyScalar32(avs []float32, b *Matrix32, orow []float32, k0 int) {
	n := b.Cols
	for dk, av := range avs {
		if av == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
			continue
		}
		k := k0 + dk
		brow := b.Data[k*n : (k+1)*n]
		dst := orow[:len(brow)]
		for j, bv := range brow {
			dst[j] += av * bv
		}
	}
}
