package tensor

import "fmt"

// Workspace-reuse primitives. Layers and training loops keep *Matrix (or
// slice) fields that are lazily sized on first use and reused verbatim on
// every later call with the same shape — the steady-state path performs no
// allocation, and a shape change simply falls back to a fresh buffer (the
// cold-start path, identical to the old allocating code).

// Ensure returns m when it already has shape rows x cols, else a fresh
// zero matrix of that shape. The contents of a reused m are NOT cleared;
// callers that accumulate into the buffer must clear it themselves (the
// Into kernels in this package already do).
func Ensure(m *Matrix, rows, cols int) *Matrix {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	return New(rows, cols)
}

// EnsureVec returns v when it already has length n, else a fresh zero
// slice of that length.
func EnsureVec(v []float64, n int) []float64 {
	if len(v) == n {
		return v
	}
	return make([]float64, n)
}

// EnsureInts returns v when it already has length n, else a fresh zero
// slice of that length.
func EnsureInts(v []int, n int) []int {
	if len(v) == n {
		return v
	}
	return make([]int, n)
}

// CopyInto copies src into dst (shapes must match) and returns dst.
//
//silofuse:noalloc
func CopyInto(dst, src *Matrix) *Matrix {
	dst.assertSameShape(src, "CopyInto")
	copy(dst.Data, src.Data)
	return dst
}

// GatherRowsInto copies the rows of m selected by idx into dst, in order.
// dst must be len(idx) x m.Cols.
//
//silofuse:noalloc
func (m *Matrix) GatherRowsInto(dst *Matrix, idx []int) *Matrix {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
	return dst
}

// ColSumsInto accumulates the per-column sums of m into out, which must
// have length Cols and is cleared first. Summation order matches ColSums.
//
//silofuse:noalloc
func (m *Matrix) ColSumsInto(out []float64) []float64 {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSumsInto length %d != cols %d", len(out), m.Cols))
	}
	clear(out)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}
