// Package tensor provides a small dense float64 matrix engine used by all
// neural components in this repository. It is deliberately minimal: row-major
// 2-D matrices, a handful of BLAS-like kernels with goroutine parallelism,
// and seeded random initialisation. Shapes are checked eagerly; shape errors
// are programming errors and panic.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-filled matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix by copying a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d (len %d, want %d)", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol overwrites column j with v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("tensor: SetCol length %d != rows %d", len(v), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) assertSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Fill sets every element to v and returns m.
func (m *Matrix) Fill(v float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// Zero resets every element to 0 and returns m.
func (m *Matrix) Zero() *Matrix { return m.Fill(0) }

// Randn fills m with N(0, std^2) samples drawn from rng and returns m.
func (m *Matrix) Randn(rng *rand.Rand, std float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills m with uniform samples in [lo, hi) and returns m.
func (m *Matrix) RandUniform(rng *rand.Rand, lo, hi float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add stores a+b into m (m may alias a or b) and returns m.
func (m *Matrix) Add(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "Add")
	m.assertSameShape(a, "Add")
	for i := range m.Data {
		m.Data[i] = a.Data[i] + b.Data[i]
	}
	return m
}

// Sub stores a-b into m and returns m.
func (m *Matrix) Sub(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "Sub")
	m.assertSameShape(a, "Sub")
	for i := range m.Data {
		m.Data[i] = a.Data[i] - b.Data[i]
	}
	return m
}

// MulElem stores the Hadamard product a*b into m and returns m.
func (m *Matrix) MulElem(a, b *Matrix) *Matrix {
	a.assertSameShape(b, "MulElem")
	m.assertSameShape(a, "MulElem")
	for i := range m.Data {
		m.Data[i] = a.Data[i] * b.Data[i]
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled adds s*o to m in place and returns m.
func (m *Matrix) AddScaled(o *Matrix, s float64) *Matrix {
	m.assertSameShape(o, "AddScaled")
	for i := range m.Data {
		m.Data[i] += s * o.Data[i]
	}
	return m
}

// AddRowVector adds the length-Cols vector v to every row in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return m
}

// Apply sets each element to f(element) in place and returns m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i := range m.Data {
		m.Data[i] = f(m.Data[i])
	}
	return m
}

// Map returns a new matrix with f applied elementwise.
func (m *Matrix) Map(f func(float64) float64) *Matrix {
	out := m.Clone()
	return out.Apply(f)
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty matrices).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// ColSums returns the per-column sums as a length-Cols slice.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// HStack concatenates matrices column-wise. All inputs must share the same
// number of rows. It mirrors the paper's X = X1 || X2 || ... || XM operator.
func HStack(parts ...*Matrix) *Matrix {
	if len(parts) == 0 {
		return New(0, 0)
	}
	rows := parts[0].Rows
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic(fmt.Sprintf("tensor: HStack row mismatch %d vs %d", p.Rows, rows))
		}
		cols += p.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, p := range parts {
			copy(dst[off:], p.Row(i))
			off += p.Cols
		}
	}
	return out
}

// VStack concatenates matrices row-wise. All inputs must share column count.
func VStack(parts ...*Matrix) *Matrix {
	if len(parts) == 0 {
		return New(0, 0)
	}
	cols := parts[0].Cols
	rows := 0
	for _, p := range parts {
		if p.Cols != cols {
			panic(fmt.Sprintf("tensor: VStack col mismatch %d vs %d", p.Cols, cols))
		}
		rows += p.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// GatherRows returns a copy of the rows selected by idx, in order.
func (m *Matrix) GatherRows(idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// String renders a compact debug representation.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}
