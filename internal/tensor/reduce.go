package tensor

// Flat-slice reduction kernels for the data-parallel all-reduce. These run
// single-threaded by design: the DDP reduce folds per-shard gradients in a
// fixed ascending order so the result is bit-identical regardless of how
// many workers produced the shards, and fanning the fold across the pool
// would reintroduce an order dependence on chunk boundaries. Gradient
// vectors are small (one float per parameter), so a serial pass is cheap.

// ReduceAccumulate adds src into dst element by element, ascending index.
// Panics on length mismatch — a shard gradient that changed size mid-run is
// a protocol bug, not a recoverable condition.
//
//silofuse:noalloc
//silofuse:fixedreduce
func ReduceAccumulate(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: ReduceAccumulate length mismatch")
	}
	for i := 0; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// ReduceScale multiplies dst by s in place, ascending index — the final
// 1/S averaging step of the all-reduce, applied exactly once after the
// ascending fold so every worker sees the same rounding.
//
//silofuse:noalloc
//silofuse:fixedreduce
func ReduceScale(dst []float64, s float64) {
	for i := 0; i < len(dst); i++ {
		dst[i] *= s
	}
}

// ReduceZero clears dst in ascending order, readying the accumulator for
// the next iteration's fold.
//
//silofuse:noalloc
//silofuse:fixedreduce
func ReduceZero(dst []float64) {
	for i := 0; i < len(dst); i++ {
		dst[i] = 0
	}
}
