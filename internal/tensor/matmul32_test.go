//silofuse:bitwise-ok determinism tests pin bit-reproducible f32 outputs with exact comparisons
package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// The f32 kernels promise the same determinism contract as the f64 ones:
// a fixed ascending-k reduction order per output element, so serial and
// pooled execution are bit-identical and a naive triple loop in the same
// order is the exact reference.

func randMat32(rng *rand.Rand, rows, cols int) *Matrix32 {
	return New32(rows, cols).Randn32(rng, 1)
}

// naiveMatMul32 accumulates one k-row at a time in ascending order — the
// reduction order every optimised f32 kernel must reproduce exactly.
func naiveMatMul32(a, b *Matrix32) *Matrix32 {
	out := New32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		orow := out.Row(i)
		arow := a.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func assertSameBits32(t *testing.T, op string, want, got *Matrix32) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", op, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: bit mismatch at %d: %v vs %v", op, i, want.Data[i], got.Data[i])
		}
	}
}

func TestMatMul32IntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	shapes := []struct{ m, k, n int }{{1, 1, 1}, {3, 5, 7}, {17, 9, 4}, {33, 40, 21}}
	for _, sh := range shapes {
		a, b := randMat32(rng, sh.m, sh.k), randMat32(rng, sh.k, sh.n)
		// Sprinkle zeros to exercise the sparse skip path.
		for i := 0; i < len(a.Data); i += 5 {
			a.Data[i] = 0
		}
		dst := New32(sh.m, sh.n)
		for i := range dst.Data {
			dst.Data[i] = 99 // dirty: kernels must not depend on zeroed dst
		}
		assertSameBits32(t, "MatMul32Into", naiveMatMul32(a, b), MatMul32Into(dst, a, b))
	}
}

func TestMatMulAddRow32IntoMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, b := randMat32(rng, 19, 23), randMat32(rng, 23, 11)
	bias := randMat32(rng, 1, 11)
	want := naiveMatMul32(a, b)
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		for j, bv := range bias.Data {
			row[j] += bv
		}
	}
	got := MatMulAddRow32Into(New32(19, 11), a, b, bias)
	assertSameBits32(t, "MatMulAddRow32Into", want, got)
}

// TestPooled32MatchesSerial runs a matrix big enough to cross
// parallelThreshold and checks the pooled result is bit-identical to a
// serial kernel invocation.
func TestPooled32MatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(22))
	a, b := randMat32(rng, 96, 96), randMat32(rng, 96, 96)
	bias := randMat32(rng, 1, 96)

	serial := New32(96, 96)
	matmul32Rows(a, b, nil, serial, 0, 96)
	assertSameBits32(t, "pooled MatMul32Into", serial, MatMul32Into(New32(96, 96), a, b))

	serialFused := New32(96, 96)
	matmulAddRow32Rows(a, b, bias, serialFused, 0, 96)
	assertSameBits32(t, "pooled fused32", serialFused, MatMulAddRow32Into(New32(96, 96), a, b, bias))
}

func TestConvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := New(13, 7).Randn(rng, 3)
	m32 := To32(m)
	back := To64(m32)
	for i, v := range m.Data {
		// Narrowing is round-to-nearest: within half a ULP relative.
		if d := math.Abs(back.Data[i] - v); d > math.Abs(v)*math.Exp2(-24)*1.000001 {
			t.Fatalf("round trip error %g at %g exceeds half-ULP bound", d, v)
		}
	}
	// Widening an f32 matrix and narrowing again is lossless.
	again := To32(back)
	for i := range m32.Data {
		if math.Float32bits(again.Data[i]) != math.Float32bits(m32.Data[i]) {
			t.Fatalf("widen+narrow not lossless at %d", i)
		}
	}
}

// TestSteadyState32KernelAllocs pins the noalloc contract for the f32
// kernels and conversion kernels.
func TestSteadyState32KernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a, b := randMat32(rng, 64, 64), randMat32(rng, 64, 64)
	bias := randMat32(rng, 1, 64)
	dst := New32(64, 64)
	src64 := New(64, 64).Randn(rng, 1)
	dst64 := New(64, 64)
	checks := map[string]func(){
		"MatMul32Into":       func() { MatMul32Into(dst, a, b) },
		"MatMulAddRow32Into": func() { MatMulAddRow32Into(dst, a, b, bias) },
		"Add32Into":          func() { Add32Into(dst, a, b) },
		"ConvertInto32":      func() { ConvertInto32(dst, src64) },
		"ConvertInto64":      func() { ConvertInto64(dst64, a) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", name, allocs)
		}
	}
}
