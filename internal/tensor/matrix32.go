package tensor

import "fmt"

// Matrix32 is the float32 counterpart of Matrix: a dense row-major matrix
// backing the reduced-precision kernel path. It exists for compute paths
// where bit-exactness is not contracted — the diffusion sampling ping-pong
// buffers and the decode-side autoencoder trunk — and is deliberately a
// separate type so float64 code cannot drift into float32 by accident: the
// only bridges between the two worlds are the explicit conversion kernels
// in convert32.go (and the wire codecs in internal/silo/codec), a boundary
// the silofuse-vet precisioncast rule enforces.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 allocates a zeroed rows x cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice32 wraps data (not copied) as a rows x cols float32 matrix.
func FromSlice32(rows, cols int, data []float32) *Matrix32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: data}
}

// Ensure32 returns m when it already has the requested shape, else a fresh
// zeroed matrix — the float32 twin of Ensure, backing persistent f32
// workspaces.
func Ensure32(m *Matrix32, rows, cols int) *Matrix32 {
	if m != nil && m.Rows == rows && m.Cols == cols {
		return m
	}
	return New32(rows, cols)
}

// Row returns row i as a slice sharing the matrix storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix32) Clone() *Matrix32 {
	out := New32(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add32Into stores a + b elementwise into dst (shapes must match) and
// returns dst.
//
//silofuse:noalloc
func Add32Into(dst, a, b *Matrix32) *Matrix32 {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: Add32Into shape mismatch %dx%d + %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	bd := b.Data[:len(a.Data)]
	dd := dst.Data[:len(a.Data)]
	for i, av := range a.Data {
		dd[i] = av + bd[i]
	}
	return dst
}
