package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the package-level persistent worker pool that backs
// every parallel kernel in the package. Instead of spawning goroutines per
// MatMul call (scheduler churn plus one closure allocation per chunk), a
// fixed set of long-lived workers ranges over a buffered channel of
// by-value chunk descriptors. A steady-state kernel dispatch therefore
// performs zero heap allocations: the task struct is copied into the
// channel, and the per-call completion state is recycled via a sync.Pool.
//
// Chunk boundaries never change the result: every kernel keeps a fixed
// per-row (or per-output-element) reduction order, so serial and parallel
// execution are bit-identical.

// kernelFn computes output elements in the half-open range [lo, hi) of its
// parallel axis. The meaning of a, b, c depends on the kernel; c is nil for
// kernels that only need two operands (e.g. plain matmul) and carries the
// bias row for the fused matmul+bias kernel.
type kernelFn func(a, b, c, dst *Matrix, lo, hi int)

// kernel32Fn is the float32 counterpart of kernelFn, dispatched over the
// same worker pool.
type kernel32Fn func(a, b, c, dst *Matrix32, lo, hi int)

// chunkTask describes one contiguous chunk of a kernel invocation. It is
// sent by value so enqueueing does not allocate. Exactly one of kern/kern32
// is set; the worker dispatches on which.
type chunkTask struct {
	kern         kernelFn
	a, b, c, dst *Matrix

	kern32               kernel32Fn
	a32, b32, c32, dst32 *Matrix32

	lo, hi int
	state  *callState
}

// callState tracks completion of one parallel kernel invocation. done is
// buffered so the finishing worker never blocks on a caller that finished
// its own chunk last and skipped the receive.
type callState struct {
	remain atomic.Int64
	done   chan struct{}
}

var statePool = sync.Pool{New: func() any {
	return &callState{done: make(chan struct{}, 1)}
}}

var (
	poolOnce    sync.Once
	poolWorkers int
	workCh      chan chunkTask
)

// ensurePool lazily starts the worker pool on first parallel dispatch.
// Worker count is fixed at startup: GOMAXPROCS at first use, with a floor
// of 2 so the pool path stays exercisable (and race-testable) even on a
// single-CPU machine. Idle workers cost one blocked goroutine each.
func ensurePool() {
	poolOnce.Do(func() {
		poolWorkers = runtime.GOMAXPROCS(0)
		if poolWorkers < 2 {
			poolWorkers = 2
		}
		workCh = make(chan chunkTask, 4*poolWorkers)
		for w := 0; w < poolWorkers; w++ {
			go poolWorker()
		}
		startedWorkers.Store(int64(poolWorkers))
	})
}

func poolWorker() {
	for t := range workCh {
		if t.kern != nil {
			t.kern(t.a, t.b, t.c, t.dst, t.lo, t.hi)
		} else {
			t.kern32(t.a32, t.b32, t.c32, t.dst32, t.lo, t.hi)
		}
		finishChunk(t.state)
	}
}

// finishChunk records one completed chunk and reports whether it was the
// last one for its invocation (the completer signals done).
func finishChunk(s *callState) bool {
	if s.remain.Add(-1) == 0 {
		s.done <- struct{}{}
		return true
	}
	return false
}

// dispatchKernel runs kern over [0, n) on the parallel axis, either inline
// (when the work is too small, or only one P is available) or sliced into
// chunks fed to the worker pool. work is the multiply-add count used
// against parallelThreshold. The caller always executes the final chunk
// itself, so at most parts-1 chunks cross the channel.
func dispatchKernel(kern kernelFn, a, b, c, dst *Matrix, n, work int) {
	if n <= 0 {
		return
	}
	parts := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || n < 2 || parts == 1 {
		kern(a, b, c, dst, 0, n)
		return
	}
	ensurePool()
	if parts > n {
		parts = n
	}
	s := statePool.Get().(*callState)
	s.remain.Store(int64(parts))
	chunk := (n + parts - 1) / parts
	lo := 0
	for p := 0; p < parts-1; p++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		workCh <- chunkTask{kern: kern, a: a, b: b, c: c, dst: dst, lo: lo, hi: hi, state: s}
		lo = hi
	}
	kern(a, b, c, dst, lo, n)
	// Exactly one chunk completion sends on done (the last one, possibly
	// this caller's own); receiving it both waits for stragglers and
	// drains the channel so the state is clean for reuse.
	finishChunk(s)
	<-s.done
	statePool.Put(s)
}

// dispatchKernel32 is dispatchKernel for float32 kernels: same thresholds,
// same chunking, same caller-runs-the-last-chunk discipline, same pool.
// Chunk boundaries never change the result because every f32 kernel keeps a
// fixed per-output-element reduction order too.
func dispatchKernel32(kern kernel32Fn, a, b, c, dst *Matrix32, n, work int) {
	if n <= 0 {
		return
	}
	parts := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || n < 2 || parts == 1 {
		kern(a, b, c, dst, 0, n)
		return
	}
	ensurePool()
	if parts > n {
		parts = n
	}
	s := statePool.Get().(*callState)
	s.remain.Store(int64(parts))
	chunk := (n + parts - 1) / parts
	lo := 0
	for p := 0; p < parts-1; p++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		workCh <- chunkTask{kern32: kern, a32: a, b32: b, c32: c, dst32: dst, lo: lo, hi: hi, state: s}
		lo = hi
	}
	kern(a, b, c, dst, lo, n)
	finishChunk(s)
	<-s.done
	statePool.Put(s)
}

var startedWorkers atomic.Int64

// PoolWorkers reports the number of persistent kernel workers (0 until the
// first parallel dispatch starts the pool).
func PoolWorkers() int { return int(startedWorkers.Load()) }
