//go:build race

package tensor

// raceEnabled reports whether the race detector instruments this build.
// MemStats-delta allocation assertions are skipped under it: the race
// runtime performs background allocations that pollute process-wide
// Mallocs counts.
const raceEnabled = true
