//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndAccess(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %v", m)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if m.Data[1*4+2] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %v", tr)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulAgainstNaive checks the parallel kernel against a straightforward
// triple loop on random shapes, including shapes above the parallel
// threshold.
func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {64, 48, 80}, {130, 33, 70}}
	for _, s := range shapes {
		a := New(s[0], s[1]).Randn(rng, 1)
		b := New(s[1], s[2]).Randn(rng, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
				t.Fatalf("shape %v: element %d: %v vs %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(17, 9).Randn(rng, 1)
	b := New(17, 13).Randn(rng, 1)
	got := MatMulT1(a, b)
	want := MatMul(a.T(), b)
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("MatMulT1 mismatch at %d", i)
		}
	}
	c := New(11, 9).Randn(rng, 1)
	d := New(13, 9).Randn(rng, 1)
	got2 := MatMulT2(c, d)
	want2 := MatMul(c, d.T())
	for i := range got2.Data {
		if !almostEqual(got2.Data[i], want2.Data[i], 1e-9) {
			t.Fatalf("MatMulT2 mismatch at %d", i)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := New(2, 2).Add(a, b)
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add: got %v", sum.At(1, 1))
	}
	diff := New(2, 2).Sub(b, a)
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub: got %v", diff.At(0, 0))
	}
	had := New(2, 2).MulElem(a, b)
	if had.At(0, 1) != 40 {
		t.Fatalf("MulElem: got %v", had.At(0, 1))
	}
	sc := a.Clone().Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale: got %v", sc.At(1, 0))
	}
	as := a.Clone().AddScaled(b, 0.1)
	if !almostEqual(as.At(0, 0), 2, 1e-12) {
		t.Fatalf("AddScaled: got %v", as.At(0, 0))
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector([]float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector wrong: %v", m.Data)
	}
	cs := m.ColSums()
	if cs[0] != 24 || cs[1] != 46 {
		t.Fatalf("ColSums = %v", cs)
	}
}

func TestStackAndSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	h := HStack(a, b)
	if h.Cols != 3 || h.At(0, 2) != 5 || h.At(1, 0) != 3 {
		t.Fatalf("HStack wrong: %v", h.Data)
	}
	back := h.SliceCols(0, 2)
	for i := range back.Data {
		if back.Data[i] != a.Data[i] {
			t.Fatal("SliceCols does not invert HStack")
		}
	}
	v := VStack(a, a)
	if v.Rows != 4 || v.At(2, 0) != 1 {
		t.Fatalf("VStack wrong: %v", v.Data)
	}
	sr := v.SliceRows(2, 4)
	for i := range sr.Data {
		if sr.Data[i] != a.Data[i] {
			t.Fatal("SliceRows does not invert VStack")
		}
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	g := m.GatherRows([]int{2, 0})
	if g.At(0, 0) != 2 || g.At(1, 0) != 0 {
		t.Fatalf("GatherRows wrong: %v", g.Data)
	}
}

func TestReductions(t *testing.T) {
	m := FromRows([][]float64{{3, -4}})
	if m.Sum() != -1 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != -0.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !almostEqual(m.Norm(), 5, 1e-12) {
		t.Fatalf("Norm = %v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestRandnDeterminism(t *testing.T) {
	a := New(4, 4).Randn(rand.New(rand.NewSource(42)), 1)
	b := New(4, 4).Randn(rand.New(rand.NewSource(42)), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Randn not deterministic for same seed")
		}
	}
}

// Property: (AB)ᵀ == BᵀAᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := New(r, k).Randn(rng, 1)
		b := New(k, c).Randn(rng, 1)
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: HStack then SliceCols round-trips each part.
func TestHStackSliceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(6)
		c1 := 1 + rng.Intn(5)
		c2 := 1 + rng.Intn(5)
		a := New(rows, c1).Randn(rng, 1)
		b := New(rows, c2).Randn(rng, 1)
		h := HStack(a, b)
		ra := h.SliceCols(0, c1)
		rb := h.SliceCols(c1, c1+c2)
		for i := range a.Data {
			if ra.Data[i] != a.Data[i] {
				return false
			}
		}
		for i := range b.Data {
			if rb.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
