// This file holds the explicit float64 <-> float32 conversion kernels — the
// only place in internal/tensor (and, together with internal/silo/codec,
// the only place in the repository outside //silofuse:precision-ok
// annotated lines) where precision-changing casts are legal. The
// silofuse-vet precisioncast rule pins that boundary, so every narrowing is
// a deliberate, greppable decision rather than an accident of plumbing.
//
//silofuse:precision-ok this file is the tensor side of the conversion boundary
package tensor

import "math/rand"

// ConvertInto32 narrows src into dst (same shape) with IEEE
// round-to-nearest and returns dst.
//
//silofuse:noalloc
func ConvertInto32(dst *Matrix32, src *Matrix) *Matrix32 {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: ConvertInto32 shape mismatch")
	}
	dd := dst.Data[:len(src.Data)]
	for i, v := range src.Data {
		dd[i] = float32(v)
	}
	return dst
}

// ConvertInto64 widens src into dst (same shape) and returns dst. Widening
// is exact: every float32 value is representable as a float64.
//
//silofuse:noalloc
func ConvertInto64(dst *Matrix, src *Matrix32) *Matrix {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: ConvertInto64 shape mismatch")
	}
	dd := dst.Data[:len(src.Data)]
	for i, v := range src.Data {
		dd[i] = float64(v)
	}
	return dst
}

// To32 returns a freshly allocated float32 copy of m.
func To32(m *Matrix) *Matrix32 {
	return ConvertInto32(New32(m.Rows, m.Cols), m)
}

// To64 returns a freshly allocated float64 copy of m.
func To64(m *Matrix32) *Matrix {
	return ConvertInto64(New(m.Rows, m.Cols), m)
}

// VecTo32 narrows a float64 slice to a fresh float32 slice.
func VecTo32(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Randn32 fills m with std-scaled Gaussian draws narrowed to float32. The
// draws consume exactly one NormFloat64 per element — the same rng stream
// the float64 Randn would consume — so a run that switches precision keeps
// every downstream random decision aligned.
func (m *Matrix32) Randn32(rng *rand.Rand, std float64) *Matrix32 {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
	return m
}
