//silofuse:bitwise-ok determinism tests pin bit-reproducible outputs with exact comparisons
package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// The Into kernels promise bit-identical results to their allocating
// counterparts — the bench snapshot's losses must not move when training
// switches to the destination-passing path. Every parity test therefore
// compares with ==, not a tolerance, and runs against a dirty destination
// buffer to prove the kernels do not depend on a zeroed dst.

func dirty(rows, cols int) *Matrix {
	return New(rows, cols).Fill(123.456)
}

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	return New(rows, cols).Randn(rng, 1)
}

func assertSameBits(t *testing.T, op string, want, got *Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", op, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: bit mismatch at %d: %v vs %v", op, i, want.Data[i], got.Data[i])
		}
	}
}

// naiveMatMulSkip is the reference implementation: for every output element the
// reduction runs in ascending-k order, the order every optimised kernel
// (blocked, unrolled, pooled) must reproduce exactly.
func naiveMatMulSkip(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				av := a.At(i, k)
				if av == 0 {
					continue
				}
				s += av * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// sprinkleZeros forces exact zeros into a so the kernels' sparse-skip and
// mixed zero/non-zero unrolled paths are exercised.
func sprinkleZeros(rng *rand.Rand, m *Matrix) *Matrix {
	for i := range m.Data {
		if rng.Intn(3) == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

func TestMatMulMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 7, 3}, {5, 4, 9}, {128, 64, 64}, {65, 33, 47}, {31, 130, 17}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := sprinkleZeros(rng, randMat(rng, m, k))
		b := randMat(rng, k, n)
		assertSameBits(t, "MatMul vs naive", naiveMatMulSkip(a, b), MatMul(a, b))
		// xᵀ@b via the T1 kernel against the same reference on xᵀ.
		x := sprinkleZeros(rng, randMat(rng, k, m))
		assertSameBits(t, "MatMulT1 vs naive", naiveMatMulSkip(x.T(), b), MatMulT1(x, b))
		// a@bᵀ via the T2 kernel.
		bt := randMat(rng, n, k)
		assertSameBits(t, "MatMulT2 vs naive", naiveMatMulSkip(a, bt.T()), MatMulT2(a, bt))
	}
}

func TestMatMulIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {128, 64, 64}, {65, 33, 47}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		want := MatMul(a, b)
		got := MatMulInto(dirty(m, n), a, b)
		assertSameBits(t, "MatMulInto", want, got)
	}
}

func TestMatMulT1IntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{2, 3, 4}, {64, 128, 64}, {33, 65, 47}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, k, m), randMat(rng, k, n)
		want := MatMulT1(a, b)
		got := MatMulT1Into(dirty(m, n), a, b)
		assertSameBits(t, "MatMulT1Into", want, got)
	}
}

func TestMatMulT2IntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][3]int{{2, 3, 4}, {128, 64, 64}, {33, 65, 47}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, n, k)
		want := MatMulT2(a, b)
		got := MatMulT2Into(dirty(m, n), a, b)
		assertSameBits(t, "MatMulT2Into", want, got)
	}
}

// TestMatMulAddRowIntoParity proves the fused kernel matches the exact
// two-pass arithmetic it replaces (matmul, then row-broadcast bias add).
func TestMatMulAddRowIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{1, 2, 3}, {128, 64, 64}, {61, 37, 29}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		bias := randMat(rng, 1, n)
		want := MatMul(a, b).AddRowVector(bias.Data)
		got := MatMulAddRowInto(dirty(m, n), a, b, bias)
		assertSameBits(t, "MatMulAddRowInto", want, got)
	}
}

func TestElementwiseIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := randMat(rng, 70, 90), randMat(rng, 70, 90)
	assertSameBits(t, "AddInto", New(70, 90).Add(a, b), AddInto(dirty(70, 90), a, b))
	assertSameBits(t, "SubInto", New(70, 90).Sub(a, b), SubInto(dirty(70, 90), a, b))
	assertSameBits(t, "MulElemInto", New(70, 90).MulElem(a, b), MulElemInto(dirty(70, 90), a, b))
	// In-place aliasing is allowed for elementwise ops.
	want := New(70, 90).Add(a, b)
	got := AddInto(a, a, b)
	assertSameBits(t, "AddInto aliased", want, got)
}

func TestIntoAliasPanics(t *testing.T) {
	a, b := New(4, 4), New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when dst aliases an operand")
		}
	}()
	MatMulInto(a, a, b)
}

func TestGatherRowsIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randMat(rng, 40, 7)
	idx := []int{5, 0, 39, 5, 17}
	want := m.GatherRows(idx)
	got := m.GatherRowsInto(dirty(len(idx), 7), idx)
	assertSameBits(t, "GatherRowsInto", want, got)
}

func TestColSumsIntoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMat(rng, 33, 9)
	want := m.ColSums()
	got := make([]float64, 9)
	for i := range got {
		got[i] = 1e9 // dirty
	}
	m.ColSumsInto(got)
	for j := range want {
		if want[j] != got[j] {
			t.Fatalf("ColSumsInto: bit mismatch at col %d: %v vs %v", j, want[j], got[j])
		}
	}
}

// TestPoolParityUnderParallelism raises GOMAXPROCS so dispatchKernel takes
// the pooled path, and checks results stay bit-identical to serial
// execution (fixed per-row reduction order regardless of chunking).
func TestPoolParityUnderParallelism(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(8))
	// Big enough to clear parallelThreshold on every kernel.
	a, b := randMat(rng, 96, 96), randMat(rng, 96, 96)
	bias := randMat(rng, 1, 96)

	serial := New(96, 96)
	matmulRows(a, b, nil, serial, 0, 96)
	assertSameBits(t, "pooled MatMul", serial, MatMul(a, b))

	serialT1 := New(96, 96)
	matmulT1Cols(a, b, nil, serialT1, 0, 96)
	assertSameBits(t, "pooled MatMulT1", serialT1, MatMulT1(a, b))

	serialT2 := New(96, 96)
	matmulT2Rows(a, b, nil, serialT2, 0, 96)
	assertSameBits(t, "pooled MatMulT2", serialT2, MatMulT2(a, b))

	serialFused := New(96, 96)
	matmulAddRowRows(a, b, bias, serialFused, 0, 96)
	assertSameBits(t, "pooled fused", serialFused, MatMulAddRowInto(New(96, 96), a, b, bias))

	if PoolWorkers() < 2 {
		t.Fatalf("worker pool did not start: %d workers", PoolWorkers())
	}
}

// TestPoolConcurrentCallers hammers the shared pool from many goroutines to
// shake out races in the chunk channel and callState recycling (run under
// -race).
func TestPoolConcurrentCallers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(9))
	a, b := randMat(rng, 80, 80), randMat(rng, 80, 80)
	want := MatMul(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := New(80, 80)
			for it := 0; it < 50; it++ {
				MatMulInto(dst, a, b)
			}
			for i := range want.Data {
				if dst.Data[i] != want.Data[i] {
					t.Errorf("concurrent pool result diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSteadyStateKernelAllocs pins the headline claim: destination-passing
// kernels allocate nothing once buffers exist. AllocsPerRun forces
// GOMAXPROCS=1, which also exercises the serial dispatch path.
func TestSteadyStateKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := randMat(rng, 64, 64), randMat(rng, 64, 64)
	bias := randMat(rng, 1, 64)
	dst := New(64, 64)
	checks := map[string]func(){
		"MatMulInto":       func() { MatMulInto(dst, a, b) },
		"MatMulT1Into":     func() { MatMulT1Into(dst, a, b) },
		"MatMulT2Into":     func() { MatMulT2Into(dst, a, b) },
		"MatMulAddRowInto": func() { MatMulAddRowInto(dst, a, b, bias) },
		"AddInto":          func() { AddInto(dst, a, b) },
		"CopyInto":         func() { CopyInto(dst, a) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", name, allocs)
		}
	}
}

// TestPooledDispatchAllocs allows a small tolerance: the pooled path reuses
// callState via a sync.Pool, which the GC may occasionally clear.
func TestPooledDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates in the background, polluting MemStats deltas")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(11))
	a, b := randMat(rng, 96, 96), randMat(rng, 96, 96)
	dst := New(96, 96)
	MatMulInto(dst, a, b) // warm pool + state
	var total float64
	const rounds = 200
	for i := 0; i < rounds; i++ {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		MatMulInto(dst, a, b)
		runtime.ReadMemStats(&ms1)
		total += float64(ms1.Mallocs - ms0.Mallocs)
	}
	if avg := total / rounds; avg > 0.5 {
		t.Errorf("pooled MatMulInto averages %v allocs per call, want < 0.5", avg)
	}
}

const benchM, benchK, benchN = 128, 64, 64 // fast-scale diffusion step shapes

func benchOperands(bb *testing.B) (a, b, bias, dst *Matrix) {
	rng := rand.New(rand.NewSource(12))
	a = randMat(rng, benchM, benchK)
	b = randMat(rng, benchK, benchN)
	bias = randMat(rng, 1, benchN)
	dst = New(benchM, benchN)
	bb.ReportAllocs()
	bb.ResetTimer()
	return
}

func BenchmarkMatMul(b *testing.B) {
	a, m, _, _ := benchOperands(b)
	for i := 0; i < b.N; i++ {
		MatMul(a, m)
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	a, m, _, dst := benchOperands(b)
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, m)
	}
}

func BenchmarkMatMulAddRowInto(b *testing.B) {
	a, m, bias, dst := benchOperands(b)
	for i := 0; i < b.N; i++ {
		MatMulAddRowInto(dst, a, m, bias)
	}
}

func BenchmarkMatMulT1(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, benchM, benchK)
	m := randMat(rng, benchM, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT1(a, m)
	}
}

func BenchmarkMatMulT1Into(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, benchM, benchK)
	m := randMat(rng, benchM, benchN)
	dst := New(benchK, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT1Into(dst, a, m)
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, benchM, benchK)
	m := randMat(rng, benchN, benchK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT2(a, m)
	}
}

func BenchmarkMatMulT2Into(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, benchM, benchK)
	m := randMat(rng, benchN, benchK)
	dst := New(benchM, benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT2Into(dst, a, m)
	}
}
