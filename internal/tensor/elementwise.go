package tensor

// Pool-backed elementwise helpers. Unlike the matmul kernels these
// parallelise over flat element ranges; each element of dst depends only on
// the same element of a and b, so dst may alias either operand and chunk
// boundaries cannot change the result. The work estimate is one unit per
// element, so only large matrices fan out — these ops are memory-bound and
// the pool pays off later than it does for matmul.

func addElems(a, b, _, dst *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

func subElems(a, b, _, dst *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

func mulElems(a, b, _, dst *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

func elementwiseInto(kern kernelFn, dst, a, b *Matrix, op string) *Matrix {
	a.assertSameShape(b, op)
	dst.assertSameShape(a, op)
	n := len(dst.Data)
	dispatchKernel(kern, a, b, nil, dst, n, n)
	return dst
}

// AddInto stores a+b into dst (dst may alias a or b) and returns dst.
//
//silofuse:noalloc
func AddInto(dst, a, b *Matrix) *Matrix { return elementwiseInto(addElems, dst, a, b, "AddInto") }

// SubInto stores a-b into dst (dst may alias a or b) and returns dst.
//
//silofuse:noalloc
func SubInto(dst, a, b *Matrix) *Matrix { return elementwiseInto(subElems, dst, a, b, "SubInto") }

// MulElemInto stores the Hadamard product a*b into dst (dst may alias a or
// b) and returns dst.
//
//silofuse:noalloc
func MulElemInto(dst, a, b *Matrix) *Matrix {
	return elementwiseInto(mulElems, dst, a, b, "MulElemInto")
}
