package tensor

import "fmt"

// parallelThreshold is the minimum number of multiply-adds before a kernel
// spreads row blocks across the persistent worker pool. Below it, the
// scheduling overhead dominates.
const parallelThreshold = 1 << 16

// Every kernel in this file keeps a fixed per-output-row reduction order,
// so serial, pooled, and destination-passing execution are bit-identical.
// The accumulation kernels (matmulRows, matmulT1Cols, matmulAddRowRows)
// clear the destination rows they own before accumulating, which makes the
// Into variants safe on dirty destination buffers at no cost on fresh ones.

func checkInto(dst, a, b *Matrix, rows, cols int, op string) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
	if dst == a || dst == b || sharesData(dst, a) || sharesData(dst, b) {
		panic(fmt.Sprintf("tensor: %s dst aliases an operand", op))
	}
}

func sharesData(x, y *Matrix) bool {
	return len(x.Data) > 0 && len(y.Data) > 0 && &x.Data[0] == &y.Data[0]
}

// MatMul returns a @ b. The inner loops are ordered i-k-j so the b matrix is
// streamed row-wise (cache friendly), and independent row blocks of the
// output are computed on the persistent worker pool. Per-row reduction order
// is fixed, so results are bit-identical regardless of parallelism.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	dispatchKernel(matmulRows, a, b, nil, out, a.Rows, a.Rows*a.Cols*b.Cols)
	return out
}

// MatMulInto stores a @ b into dst (which must not alias a or b) and
// returns dst. It is the allocation-free form of MatMul: same kernel, same
// reduction order, same bits.
//
//silofuse:noalloc
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto(dst, a, b, a.Rows, b.Cols, "MatMulInto")
	dispatchKernel(matmulRows, a, b, nil, dst, a.Rows, a.Rows*a.Cols*b.Cols)
	return dst
}

// MatMulAddRowInto stores a @ b + bias into dst, where bias is a 1 x b.Cols
// row added to every output row after that row's accumulation finishes —
// exactly the arithmetic of MatMul followed by AddRowVector, fused into one
// pass over the output. dst must not alias a or b.
//
//silofuse:noalloc
func MatMulAddRowInto(dst, a, b, bias *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAddRowInto shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bias.Rows != 1 || bias.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAddRowInto bias shape %dx%d, want 1x%d", bias.Rows, bias.Cols, b.Cols))
	}
	checkInto(dst, a, b, a.Rows, b.Cols, "MatMulAddRowInto")
	dispatchKernel(matmulAddRowRows, a, b, bias, dst, a.Rows, a.Rows*a.Cols*b.Cols)
	return dst
}

func matmulRows(a, b, _, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		clear(orow)
		axpyRow(a.Row(i), b, orow)
	}
}

func matmulAddRowRows(a, b, bias, out *Matrix, lo, hi int) {
	brow0 := bias.Data
	for i := lo; i < hi; i++ {
		orow := out.Row(i)
		clear(orow)
		axpyRow(a.Row(i), b, orow)
		dst := orow[:len(brow0)]
		for j, bv := range brow0 {
			dst[j] += bv
		}
	}
}

// axpyRow accumulates arow @ b into orow. Four k-rows of b are fused per
// pass so the output row is loaded and stored once per four inputs, with
// four independent multiply chains in flight. Per output element the adds
// still land in ascending-k order, and any zero coefficient falls back to
// the scalar skip loop, so the result is bit-identical to one k-row at a
// time.
func axpyRow(arow []float64, b *Matrix, orow []float64) {
	n := b.Cols
	k := 0
	for ; k+3 < len(arow); k += 4 {
		av0, av1, av2, av3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if av0 == 0 || av1 == 0 || av2 == 0 || av3 == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
			axpyScalar(arow[k:k+4], b, orow, k)
			continue
		}
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		dst := orow[:len(b0)]
		b1 = b1[:len(b0)]
		b2 = b2[:len(b0)]
		b3 = b3[:len(b0)]
		for j := range dst {
			v := dst[j] + av0*b0[j]
			v += av1 * b1[j]
			v += av2 * b2[j]
			v += av3 * b3[j]
			dst[j] = v
		}
	}
	axpyScalar(arow[k:], b, orow, k)
}

// axpyScalar is the one-k-row-at-a-time tail/fallback with the sparse skip.
func axpyScalar(avs []float64, b *Matrix, orow []float64, k0 int) {
	n := b.Cols
	for dk, av := range avs {
		if av == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
			continue
		}
		k := k0 + dk
		brow := b.Data[k*n : (k+1)*n]
		dst := orow[:len(brow)]
		for j, bv := range brow {
			dst[j] += av * bv
		}
	}
}

// MatMulT1 returns aᵀ @ b without materialising the transpose.
func MatMulT1(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	dispatchKernel(matmulT1Cols, a, b, nil, out, a.Cols, a.Rows*a.Cols*b.Cols)
	return out
}

// MatMulT1Into stores aᵀ @ b into dst (which must not alias a or b) and
// returns dst.
//
//silofuse:noalloc
func MatMulT1Into(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1Into shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto(dst, a, b, a.Cols, b.Cols, "MatMulT1Into")
	dispatchKernel(matmulT1Cols, a, b, nil, dst, a.Cols, a.Rows*a.Cols*b.Cols)
	return dst
}

// matmulT1Cols accumulates aᵀ@b for output rows [lo, hi). Four r-rows are
// fused per pass (same scheme as axpyRow: ascending-r adds per output
// element, scalar skip fallback on zeros), so the b rows stay cache-hot
// across the whole i sweep.
func matmulT1Cols(a, b, _, out *Matrix, lo, hi int) {
	n := b.Cols
	clear(out.Data[lo*n : hi*n])
	r := 0
	for ; r+3 < a.Rows; r += 4 {
		a0, a1, a2, a3 := a.Row(r), a.Row(r+1), a.Row(r+2), a.Row(r+3)
		b0 := b.Data[r*n : (r+1)*n]
		b1 := b.Data[(r+1)*n : (r+2)*n][:len(b0)]
		b2 := b.Data[(r+2)*n : (r+3)*n][:len(b0)]
		b3 := b.Data[(r+3)*n : (r+4)*n][:len(b0)]
		for i := lo; i < hi; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			orow := out.Data[i*n : (i+1)*n]
			if av0 == 0 || av1 == 0 || av2 == 0 || av3 == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
				matmulT1Scalar(a, b, orow, i, r, r+4)
				continue
			}
			dst := orow[:len(b0)]
			for j := range dst {
				v := dst[j] + av0*b0[j]
				v += av1 * b1[j]
				v += av2 * b2[j]
				v += av3 * b3[j]
				dst[j] = v
			}
		}
	}
	for i := lo; i < hi; i++ {
		matmulT1Scalar(a, b, out.Data[i*n:(i+1)*n], i, r, a.Rows)
	}
}

// matmulT1Scalar accumulates rows [r0, r1) of a into output row i, one at a
// time with the sparse skip.
func matmulT1Scalar(a, b *Matrix, orow []float64, i, r0, r1 int) {
	n := b.Cols
	for r := r0; r < r1; r++ {
		av := a.Row(r)[i]
		if av == 0 { //silofuse:bitwise-ok zero-skip sparsity fast path
			continue
		}
		brow := b.Data[r*n : (r+1)*n]
		dst := orow[:len(brow)]
		for j, bv := range brow {
			dst[j] += av * bv
		}
	}
}

// MatMulT2 returns a @ bᵀ without materialising the transpose.
func MatMulT2(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	dispatchKernel(matmulT2Rows, a, b, nil, out, a.Rows, a.Rows*a.Cols*b.Rows)
	return out
}

// MatMulT2Into stores a @ bᵀ into dst (which must not alias a or b) and
// returns dst.
//
//silofuse:noalloc
func MatMulT2Into(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2Into shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkInto(dst, a, b, a.Rows, b.Rows, "MatMulT2Into")
	dispatchKernel(matmulT2Rows, a, b, nil, dst, a.Rows, a.Rows*a.Cols*b.Rows)
	return dst
}

// matmulT2Rows computes a@bᵀ rows [lo, hi). Four output columns (rows of b)
// are produced per pass with four independent dot-product accumulators —
// each still summed in ascending-k order — so the loads of arow are shared
// and the add chains pipeline instead of serialising on FP latency.
func matmulT2Rows(a, b, _, out *Matrix, lo, hi int) {
	kw := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		j := 0
		for ; j+3 < b.Rows; j += 4 {
			b0 := b.Data[j*kw : (j+1)*kw][:len(arow)]
			b1 := b.Data[(j+1)*kw : (j+2)*kw][:len(arow)]
			b2 := b.Data[(j+2)*kw : (j+3)*kw][:len(arow)]
			b3 := b.Data[(j+3)*kw : (j+4)*kw][:len(arow)]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j] = s0
			orow[j+1] = s1
			orow[j+2] = s2
			orow[j+3] = s3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)[:len(arow)]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}
