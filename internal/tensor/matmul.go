package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds before MatMul
// spreads row blocks across goroutines. Below it, the scheduling overhead
// dominates.
const parallelThreshold = 1 << 16

// MatMul returns a @ b. The inner loops are ordered i-k-j so the b matrix is
// streamed row-wise (cache friendly), and independent row blocks of the
// output are computed on separate goroutines. Per-row reduction order is
// fixed, so results are bit-identical regardless of parallelism.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Rows < 2 {
		matmulRows(a, b, out, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matmulRows(a, b, out *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT1 returns aᵀ @ b without materialising the transpose.
func MatMulT1(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Cols < 2 {
		matmulT1Cols(a, b, out, 0, a.Cols)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Cols {
		workers = a.Cols
	}
	var wg sync.WaitGroup
	chunk := (a.Cols + workers - 1) / workers
	for lo := 0; lo < a.Cols; lo += chunk {
		hi := lo + chunk
		if hi > a.Cols {
			hi = a.Cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulT1Cols(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matmulT1Cols(a, b, out *Matrix, lo, hi int) {
	n := b.Cols
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulT2 returns a @ bᵀ without materialising the transpose.
func MatMulT2(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	work := a.Rows * a.Cols * b.Rows
	if work < parallelThreshold || a.Rows < 2 {
		matmulT2Rows(a, b, out, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulT2Rows(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matmulT2Rows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}
