package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"silofuse/internal/obs"
)

// BenchSnapshot is the perf record silofuse-bench writes (by default to
// BENCH_silofuse.json): phase durations, per-stage training throughput and
// step-latency quantiles, and wire traffic by message kind, stamped with the
// runtime it ran on. Committed snapshots accumulate the repository's perf
// trajectory across changes; ReadBenchSnapshot validates the schema so CI
// can smoke-test that a fresh bench run produced a sane file.
type BenchSnapshot struct {
	CreatedAt   time.Time                     `json:"created_at"`
	Exp         string                        `json:"exp"`
	Scale       string                        `json:"scale"`
	Runtime     RuntimeInfo                   `json:"runtime"`
	WallSeconds float64                       `json:"wall_seconds"`
	Phases      []PhaseSummary                `json:"phases,omitempty"`
	RowsPerSec  map[string]float64            `json:"rows_per_sec,omitempty"`
	StepSeconds map[string]obs.HistogramStats `json:"step_seconds,omitempty"`
	// AllocsPerStep and AllocBytesPerStep are per-stage heap-allocation
	// costs of one optimisation step (runtime.MemStats deltas averaged over
	// the stage's most recent training loop). Steady-state stages should sit
	// near zero; a regression here shows up before it shows up in rows/sec.
	AllocsPerStep     map[string]float64 `json:"allocs_per_step,omitempty"`
	AllocBytesPerStep map[string]float64 `json:"alloc_bytes_per_step,omitempty"`
	WireMessages      int64              `json:"wire_messages"`
	WireBytesByKind   map[string]int64   `json:"wire_bytes_by_kind,omitempty"`
	// Wire is the codec-level bytes-vs-error accounting, keyed
	// "<codec>/<kind>" (e.g. "f32/latents"): how many bytes the precision
	// tier actually paid per message kind against the raw f64 payload model,
	// and the reconstruction error it introduced. Deterministic for a fixed
	// configuration and seed, so the bench baseline gate covers it.
	Wire map[string]WireCodecStats `json:"wire,omitempty"`
}

// WireCodecStats is one codec/kind row of the wire compression accounting.
type WireCodecStats struct {
	Messages int64   `json:"messages"`
	RawBytes int64   `json:"raw_bytes"` // modelled f64 framing bytes (header + 8·values)
	Bytes    int64   `json:"bytes"`     // bytes actually framed under the codec
	MaxErr   float64 `json:"max_err"`
	MeanErr  float64 `json:"mean_err"`
}

// mergeWire folds src into dst (allocating dst if nil): counts accumulate,
// errors keep the worst observed value, so merging several parties'
// recorders yields fleet-wide totals with the fleet-worst error.
func mergeWire(dst, src map[string]WireCodecStats) map[string]WireCodecStats {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]WireCodecStats, len(src))
	}
	for k, st := range src {
		prev := dst[k]
		prev.Messages += st.Messages
		prev.RawBytes += st.RawBytes
		prev.Bytes += st.Bytes
		if st.MaxErr > prev.MaxErr {
			prev.MaxErr = st.MaxErr
		}
		if st.MeanErr > prev.MeanErr {
			prev.MeanErr = st.MeanErr
		}
		dst[k] = prev
	}
	return dst
}

// parseWireMetrics reassembles the per-codec wire accounting from the
// wire_* metric families (see obs.Recorder.WireCodec). Codec names carry no
// underscore, so the "<codec>_<kind>" suffix splits at the first one.
func parseWireMetrics(snap obs.Snapshot) map[string]WireCodecStats {
	out := make(map[string]WireCodecStats)
	key := func(suffix string) (string, bool) {
		codec, kind, ok := strings.Cut(suffix, "_")
		return codec + "/" + kind, ok
	}
	update := func(suffix string, f func(*WireCodecStats)) {
		k, ok := key(suffix)
		if !ok {
			return
		}
		st := out[k]
		f(&st)
		out[k] = st
	}
	for name, v := range snap.Counters {
		if suffix, ok := strings.CutPrefix(name, "wire_messages_total_"); ok {
			update(suffix, func(st *WireCodecStats) { st.Messages += v })
		}
		if suffix, ok := strings.CutPrefix(name, "wire_raw_bytes_total_"); ok {
			update(suffix, func(st *WireCodecStats) { st.RawBytes += v })
		}
		if suffix, ok := strings.CutPrefix(name, "wire_bytes_total_"); ok {
			update(suffix, func(st *WireCodecStats) { st.Bytes += v })
		}
	}
	for name, v := range snap.Gauges {
		if suffix, ok := strings.CutPrefix(name, "wire_err_max_"); ok {
			update(suffix, func(st *WireCodecStats) {
				if v > st.MaxErr {
					st.MaxErr = v
				}
			})
		}
		if suffix, ok := strings.CutPrefix(name, "wire_err_mean_"); ok {
			update(suffix, func(st *WireCodecStats) {
				if v > st.MeanErr {
					st.MeanErr = v
				}
			})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// replayWireMetrics re-emits an aggregated wire accounting into rec's
// wire_* metric families: counters accumulate, error gauges keep the worst
// value already recorded. Sweeps that measure isolated runs on private
// recorders (Figure10X) use it to surface their per-codec accounting in the
// run's main recorder, and hence in the bench snapshot and manifest.
func replayWireMetrics(rec *obs.Recorder, wire map[string]WireCodecStats) {
	if rec == nil {
		return
	}
	for key, st := range wire {
		codecName, kind, ok := strings.Cut(key, "/")
		if !ok {
			continue
		}
		suffix := codecName + "_" + kind
		rec.Reg.Counter("wire_messages_total_" + suffix).Add(st.Messages)
		rec.Reg.Counter("wire_raw_bytes_total_" + suffix).Add(st.RawBytes)
		rec.Reg.Counter("wire_bytes_total_" + suffix).Add(st.Bytes)
		if g := rec.Reg.Gauge("wire_err_max_" + suffix); st.MaxErr > g.Value() {
			g.Set(st.MaxErr)
		}
		if g := rec.Reg.Gauge("wire_err_mean_" + suffix); st.MeanErr > g.Value() {
			g.Set(st.MeanErr)
		}
	}
}

// NewBenchSnapshot starts a snapshot for the named experiment and scale.
func NewBenchSnapshot(exp, scale string) *BenchSnapshot {
	return &BenchSnapshot{
		CreatedAt: time.Now().UTC(),
		Exp:       exp,
		Scale:     scale,
		Runtime:   CurrentRuntime(),
	}
}

// FromRecorder fills the perf sections from rec: top-level trace spans as
// phases, per-stage rows/sec derived from the <stage>_rows_total counters
// over the <stage>_step_seconds histogram sums, the step-latency quantiles
// themselves, wire traffic from the bus_* counters, and the codec-level
// bytes-vs-error accounting from the wire_* metric families (summing counts
// and keeping the worst error when called for several recorders). A nil
// recorder leaves the snapshot unchanged.
func (b *BenchSnapshot) FromRecorder(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	for _, sp := range rec.Trace.Spans() {
		if sp.Parent != "" {
			continue
		}
		b.Phases = append(b.Phases, PhaseSummary{
			Name: sp.Name, StartSec: sp.StartSec, DurSec: sp.DurSec, Attrs: sp.Attrs,
		})
	}
	snap := rec.Snapshot()
	b.Wire = mergeWire(b.Wire, parseWireMetrics(snap))
	for name, v := range snap.Counters {
		if kind, ok := strings.CutPrefix(name, "bus_bytes_total_"); ok {
			if b.WireBytesByKind == nil {
				b.WireBytesByKind = make(map[string]int64)
			}
			b.WireBytesByKind[kind] += v
		}
		if strings.HasPrefix(name, "bus_messages_total_") {
			b.WireMessages += v
		}
		if stage, ok := strings.CutSuffix(name, "_rows_total"); ok {
			h, ok := snap.Histograms[stage+"_step_seconds"]
			if !ok || h.Sum <= 0 {
				continue
			}
			if b.RowsPerSec == nil {
				b.RowsPerSec = make(map[string]float64)
			}
			b.RowsPerSec[stage] = float64(v) / h.Sum
		}
	}
	for name, h := range snap.Histograms {
		if stage, ok := strings.CutSuffix(name, "_step_seconds"); ok {
			if b.StepSeconds == nil {
				b.StepSeconds = make(map[string]obs.HistogramStats)
			}
			b.StepSeconds[stage] = h
		}
	}
	for name, v := range snap.Gauges {
		if stage, ok := strings.CutSuffix(name, "_allocs_per_step"); ok {
			if b.AllocsPerStep == nil {
				b.AllocsPerStep = make(map[string]float64)
			}
			b.AllocsPerStep[stage] = v
		}
		if stage, ok := strings.CutSuffix(name, "_alloc_bytes_per_step"); ok {
			if b.AllocBytesPerStep == nil {
				b.AllocBytesPerStep = make(map[string]float64)
			}
			b.AllocBytesPerStep[stage] = v
		}
	}
}

// Write stores the snapshot as indented JSON at path.
func (b *BenchSnapshot) Write(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiments: bench snapshot dir: %w", err)
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: bench snapshot encode: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("experiments: bench snapshot write: %w", err)
	}
	return nil
}

// ReadBenchSnapshot loads and validates a snapshot: it must parse, carry a
// timestamp, experiment id and runtime stamp, and report positive wall time.
func ReadBenchSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: bench snapshot read: %w", err)
	}
	var b BenchSnapshot
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: bench snapshot parse: %w", err)
	}
	switch {
	case b.CreatedAt.IsZero():
		return nil, fmt.Errorf("experiments: bench snapshot %s: missing created_at", path)
	case b.Exp == "":
		return nil, fmt.Errorf("experiments: bench snapshot %s: missing exp", path)
	case b.Runtime.GoVersion == "":
		return nil, fmt.Errorf("experiments: bench snapshot %s: missing runtime.go_version", path)
	case b.WallSeconds <= 0:
		return nil, fmt.Errorf("experiments: bench snapshot %s: non-positive wall_seconds", path)
	}
	return &b, nil
}
